#!/usr/bin/env python3
"""Gate a bench run report against checked-in deterministic-counter expectations.

Usage:
    check_report.py <report.json> <expected.json>
    check_report.py --speedups <BENCH json> [--floor 0.95]
    check_report.py --cache-floor <rate> <report.json>

The report is the flat JSON an aeropack bench writes via `--report out.json`
(obs::Report::to_json: "counters.*", "gauges.*", "timers.*" keys plus the one
string-valued "report" label). The expected file lists only the counters that
are deterministic for the smoke configuration — algorithmic counters (CG
iterations, SpMV calls, Picard passes, factorizations, subspace sweeps) that
PR 1-3's invariants make bit-identical across thread counts and machines.
Timers, gauges and scheduling counters (numeric.parallel_for.*,
numeric.pool.*) are never gated: they legitimately vary run to run.

--speedups mode gates parallel scaling instead of counters: it reads a
BENCH_*.json series (the nested grids[].threads[] layout bench_sparse_kernels
writes) and fails if any grid with n >= 32 reports steady_speedup_vs_1 below
the floor at 2 threads, or if no qualifying cell exists at all. This is the
CI tripwire that keeps dispatch-overhead regressions (threads making solves
slower) from landing silently.

--cache-floor mode gates the scenario-service artifact cache instead: it
reads counters.svc.cache.{hits,misses} from a campaign report
(bench_scenario_throughput --smoke emits them from the deterministic
workers=1 cached run) and fails if the hit rate hits/(hits+misses) falls
below the floor — the tripwire that keeps structural-hash regressions
(every lookup missing because a key accidentally hashes per-scenario data)
from landing silently.

Exit status: 0 if every expected counter matches exactly, 1 on any drift or
missing key, 2 on usage/parse errors.

Regenerating after an intentional algorithmic change:
    ./bench_<name> --smoke --report report.json
    python3 tools/check_report.py report.json bench/expected/bench_<name>.expected.json --update
"""

import json
import sys


def check_speedups(bench_path, floor):
    bench = load(bench_path)
    grids = bench.get("grids")
    if not isinstance(grids, list):
        print(f"check_report: {bench_path} has no grids[] series", file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for grid in grids:
        n = grid.get("n", 0)
        if n < 32:
            continue
        for cell in grid.get("threads", []):
            if cell.get("threads") != 2:
                continue
            checked += 1
            speedup = cell.get("steady_speedup_vs_1", 0.0)
            if speedup < floor:
                failures.append(
                    f"  n={n}^3 threads=2: steady_speedup_vs_1 = {speedup:.3f} < floor {floor}"
                )
    if checked == 0:
        print(
            f"check_report: {bench_path} has no n>=32 cell at 2 threads — "
            "nothing to gate (run the bench with --scaling or the full sweep)"
        )
        return 1
    if failures:
        print(f"check_report: parallel scaling regression in {bench_path}:")
        print("\n".join(failures))
        print(
            "\nThreads are making the steady solve slower. Check the grain "
            "thresholds (src/numeric/grain.hpp) and the dispatch_overhead_ns "
            "section of the bench output before touching the floor."
        )
        return 1
    print(
        f"check_report: {bench_path} scaling ok "
        f"({checked} cell(s) at 2 threads, floor {floor})"
    )
    return 0


def check_cache_floor(report_path, floor):
    report = load(report_path)
    hits = report.get("counters.svc.cache.hits")
    misses = report.get("counters.svc.cache.misses")
    if hits is None or misses is None:
        print(
            f"check_report: {report_path} has no counters.svc.cache.hits/misses — "
            "run the bench with a campaign section (--smoke) to emit them",
            file=sys.stderr,
        )
        return 2
    total = hits + misses
    rate = hits / total if total else 0.0
    if total == 0 or rate < floor:
        print(
            f"check_report: artifact-cache hit rate regression in {report_path}:\n"
            f"  svc.cache: {hits} hits / {misses} misses = {rate:.3f} < floor {floor}\n"
            "\nScenarios that should share structure are missing the cache. Check "
            "the structural hashes (FvModel::structural_hash, rom_key) for inputs "
            "that vary per scenario before touching the floor."
        )
        return 1
    print(
        f"check_report: {report_path} cache hit rate ok "
        f"({hits}/{total} = {rate:.3f}, floor {floor})"
    )
    return 0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_report: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    if "--speedups" in argv:
        args = [a for a in argv[1:] if a != "--speedups"]
        floor = 0.95
        if "--floor" in args:
            i = args.index("--floor")
            try:
                floor = float(args[i + 1])
            except (IndexError, ValueError):
                print("check_report: --floor needs a number", file=sys.stderr)
                return 2
            del args[i : i + 2]
        if len(args) != 1:
            print(__doc__, file=sys.stderr)
            return 2
        return check_speedups(args[0], floor)

    if "--cache-floor" in argv:
        args = [a for a in argv[1:] if a != "--cache-floor"]
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        try:
            floor = float(args[0])
        except ValueError:
            print("check_report: --cache-floor needs a rate in [0, 1]", file=sys.stderr)
            return 2
        return check_cache_floor(args[1], floor)

    update = "--update" in argv
    args = [a for a in argv if a != "--update"]
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    report_path, expected_path = args[1], args[2]
    report = load(report_path)

    if update:
        # Freeze the deterministic counters of this report as the new
        # expectation. Scheduling counters vary with the machine's core count
        # and chunking, so they are excluded at generation time — whether
        # they are bare ("counters.numeric.parallel_for.calls") or nested
        # under a scenario prefix, as bench_scenario_throughput emits
        # ("counters.<scenario>.numeric.parallel_for.calls"). The ROM
        # snapshot-build counters under rom.snapshot_build. carry wall-clock
        # microseconds (bench_rom), so they can never be gated exactly; the
        # mission marches emit theirs under mission.wallclock. (bench_mission)
        # for the same reason.
        skip = ("numeric.parallel_for.", "numeric.pool.", "rom.snapshot_build.",
                "mission.wallclock.")
        expected = {
            key: value
            for key, value in sorted(report.items())
            if key.startswith("counters.")
            and not any(fragment in key for fragment in skip)
            and value != 0
        }
        with open(expected_path, "w", encoding="utf-8") as fh:
            json.dump(expected, fh, indent=2)
            fh.write("\n")
        print(f"check_report: wrote {len(expected)} counter expectations to {expected_path}")
        return 0

    expected = load(expected_path)
    failures = []
    for key, want in sorted(expected.items()):
        if not key.startswith("counters."):
            failures.append(f"  {key}: expected file must only gate counters.* keys")
            continue
        got = report.get(key)
        if got is None:
            failures.append(f"  {key}: missing from report (expected {want})")
        elif got != want:
            failures.append(f"  {key}: {got} != expected {want}")

    if failures:
        print(f"check_report: {report_path} drifted from {expected_path}:")
        print("\n".join(failures))
        print(
            "\nIf the change is intentional (an algorithmic change that shifts "
            "iteration/assembly counts), regenerate the expectations:\n"
            f"  ./<bench_binary> --smoke --report report.json\n"
            f"  python3 tools/check_report.py report.json {expected_path} --update\n"
            "and commit the updated expected file. The obs golden baselines "
            "(tests/obs/golden/) usually need the matching refresh:\n"
            "  AEROPACK_UPDATE_GOLDEN=1 ctest -L obs"
        )
        return 1

    print(
        f"check_report: {report_path} matches {expected_path} "
        f"({len(expected)} counters, exact)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
