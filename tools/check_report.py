#!/usr/bin/env python3
"""Gate a bench run report against checked-in deterministic-counter expectations.

Usage:
    check_report.py <report.json> <expected.json>

The report is the flat JSON an aeropack bench writes via `--report out.json`
(obs::Report::to_json: "counters.*", "gauges.*", "timers.*" keys plus the one
string-valued "report" label). The expected file lists only the counters that
are deterministic for the smoke configuration — algorithmic counters (CG
iterations, SpMV calls, Picard passes, factorizations, subspace sweeps) that
PR 1-3's invariants make bit-identical across thread counts and machines.
Timers, gauges and scheduling counters (numeric.parallel_for.*,
numeric.pool.*) are never gated: they legitimately vary run to run.

Exit status: 0 if every expected counter matches exactly, 1 on any drift or
missing key, 2 on usage/parse errors.

Regenerating after an intentional algorithmic change:
    ./bench_<name> --smoke --report report.json
    python3 tools/check_report.py report.json bench/expected/bench_<name>.expected.json --update
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_report: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    update = "--update" in argv
    args = [a for a in argv if a != "--update"]
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    report_path, expected_path = args[1], args[2]
    report = load(report_path)

    if update:
        # Freeze the deterministic counters of this report as the new
        # expectation. Scheduling counters vary with the machine's core count
        # and chunking, so they are excluded at generation time — whether
        # they are bare ("counters.numeric.parallel_for.calls") or nested
        # under a scenario prefix, as bench_scenario_throughput emits
        # ("counters.<scenario>.numeric.parallel_for.calls").
        skip = ("numeric.parallel_for.", "numeric.pool.")
        expected = {
            key: value
            for key, value in sorted(report.items())
            if key.startswith("counters.")
            and not any(fragment in key for fragment in skip)
            and value != 0
        }
        with open(expected_path, "w", encoding="utf-8") as fh:
            json.dump(expected, fh, indent=2)
            fh.write("\n")
        print(f"check_report: wrote {len(expected)} counter expectations to {expected_path}")
        return 0

    expected = load(expected_path)
    failures = []
    for key, want in sorted(expected.items()):
        if not key.startswith("counters."):
            failures.append(f"  {key}: expected file must only gate counters.* keys")
            continue
        got = report.get(key)
        if got is None:
            failures.append(f"  {key}: missing from report (expected {want})")
        elif got != want:
            failures.append(f"  {key}: {got} != expected {want}")

    if failures:
        print(f"check_report: {report_path} drifted from {expected_path}:")
        print("\n".join(failures))
        print(
            "\nIf the change is intentional (an algorithmic change that shifts "
            "iteration/assembly counts), regenerate the expectations:\n"
            f"  ./<bench_binary> --smoke --report report.json\n"
            f"  python3 tools/check_report.py report.json {expected_path} --update\n"
            "and commit the updated expected file. The obs golden baselines "
            "(tests/obs/golden/) usually need the matching refresh:\n"
            "  AEROPACK_UPDATE_GOLDEN=1 ctest -L obs"
        )
        return 1

    print(
        f"check_report: {report_path} matches {expected_path} "
        f"({len(expected)} counters, exact)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
