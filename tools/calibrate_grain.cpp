// calibrate_grain — measure the dispatch overhead and per-element kernel
// costs that back the numeric::grain thresholds, and print a replacement
// constants block for src/numeric/grain.hpp.
//
// Method:
//  1. Warm dispatch round-trip: median time of an empty ThreadPool::run()
//     (one no-op task per thread) on a warm pool, per thread count. This is
//     the latency a kernel must amortize before fanning out.
//  2. Per-element cost of each grain::Cost class, measured serially on
//     resident data (median of repeated sweeps): stream (axpy), dot
//     (chunked reduction), SpMV per nonzero (7-point Poisson), FV cell fill
//     proxy, fused CG update.
//  3. kMinWorkToFanOut = dispatch round-trip at 2 threads expressed in
//     stream elements, times a 4x margin (fan out only when the win is
//     clear); kMinWorkPerThread = half of it. Both rounded up to a power of
//     two. Cost weights = class cost / stream cost.
//
// Usage: ./calibrate_grain [--threads N]   (default: up to 8)
// Paste the printed block over the constants in src/numeric/grain.hpp if it
// differs materially from what is checked in.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"

namespace an = aeropack::numeric;
using Clock = std::chrono::steady_clock;

namespace {

double median_ns(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median wall time of `reps` calls to fn(), in nanoseconds per call.
template <typename Fn>
double time_median_ns(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return median_ns(samples);
}

volatile double g_sink = 0.0;  // defeat dead-code elimination

an::CsrMatrix poisson3d(std::size_t n) {
  an::SparseBuilder b(n * n * n, n * n * n);
  const auto id = [n](std::size_t i, std::size_t j, std::size_t k) {
    return i + n * (j + n * k);
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = id(i, j, k);
        b.add(c, c, 6.0);
        if (i > 0) b.add(c, id(i - 1, j, k), -1.0);
        if (i + 1 < n) b.add(c, id(i + 1, j, k), -1.0);
        if (j > 0) b.add(c, id(i, j - 1, k), -1.0);
        if (j + 1 < n) b.add(c, id(i, j + 1, k), -1.0);
        if (k > 0) b.add(c, id(i, j, k - 1), -1.0);
        if (k + 1 < n) b.add(c, id(i, j, k + 1), -1.0);
      }
  return b.build();
}

std::size_t round_up_pow2(double v) {
  std::size_t p = 1;
  while (static_cast<double>(p) < v) p <<= 1;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      max_threads = static_cast<std::size_t>(std::atol(argv[++i]));

  constexpr int kReps = 101;
  const std::function<void(std::size_t)> noop = [](std::size_t) {};

  std::printf("# grain calibration (%d-rep medians)\n", kReps);
  std::printf("#\n# dispatch round-trip (empty run, warm pool):\n");
  double dispatch2_ns = 0.0;
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    an::ThreadPool pool(t);
    // Warm the pool so workers sit in the spin phase, not cold-parked.
    for (int w = 0; w < 32; ++w) pool.run(t, noop);
    const double ns = time_median_ns(kReps, [&] { pool.run(t, noop); });
    if (t == 2) dispatch2_ns = ns;
    std::printf("#   threads=%zu  %.0f ns\n", t, ns);
  }
  if (dispatch2_ns == 0.0) dispatch2_ns = 1000.0;  // single-core machine

  // Per-element serial costs on resident data.
  const std::size_t n_vec = 1 << 16;
  an::Vector x(n_vec, 1.0), y(n_vec, 2.0), z(n_vec), inv_d(n_vec, 0.5);
  an::Vector r(n_vec, 1.0), p(n_vec, 0.5), ap(n_vec, 0.25), xs(n_vec, 0.0);
  an::ThreadPool serial(1);

  const double stream_ns =
      time_median_ns(kReps, [&] {
        an::parallel_axpy(serial, 1e-9, x, y);
      }) /
      static_cast<double>(n_vec);
  const double dot_ns = time_median_ns(kReps, [&] {
                          g_sink = an::parallel_dot(serial, x, y);
                        }) /
                        static_cast<double>(n_vec);
  const double fused_ns =
      time_median_ns(kReps, [&] {
        const an::CgFused f =
            an::cg_fused_update(serial, 1e-9, p, ap, inv_d, xs, r, z);
        g_sink = f.rr + f.rz;
      }) /
      static_cast<double>(n_vec);

  const an::CsrMatrix a = poisson3d(32);
  an::Vector v(a.cols(), 1.0), av;
  const double spmv_ns = time_median_ns(kReps, [&] {
                           a.multiply(serial, v, av);
                         }) /
                         static_cast<double>(a.nonzeros());
  // FV cell proxy: the 7-point conductance fill is ~6x a stream element on
  // the machines measured so far; derive it from the SpMV row cost (7 nnz
  // per interior row plus indexing) rather than linking the thermal layer.
  const double cell_ns = 7.0 * spmv_ns;

  std::printf("#\n# per-element costs (serial, resident):\n");
  std::printf("#   stream  %.3f ns\n#   dot     %.3f ns\n", stream_ns, dot_ns);
  std::printf("#   spmv    %.3f ns/nnz\n#   cell    %.3f ns (proxy)\n",
              spmv_ns, cell_ns);
  std::printf("#   fusedcg %.3f ns\n", fused_ns);

  const double fan_out_elems = 4.0 * dispatch2_ns / stream_ns;
  const std::size_t min_fan_out = round_up_pow2(fan_out_elems);
  std::printf("#\n# paste over the constants in src/numeric/grain.hpp:\n");
  std::printf("inline constexpr double kMinWorkToFanOut = %zu.0;\n",
              min_fan_out);
  std::printf("inline constexpr double kMinWorkPerThread = %zu.0;\n",
              min_fan_out / 2);
  std::printf("# cost_weight suggestions (stream = 1.0):\n");
  std::printf("#   kDot %.1f  kSpmv %.1f  kCell %.1f  kFusedCg %.1f\n",
              dot_ns / stream_ns, spmv_ns / stream_ns, cell_ns / stream_ns,
              fused_ns / stream_ns);
  return 0;
}
