# Empty dependencies file for bench_qual_campaign.
# This may be replaced when dependencies are built.
