file(REMOVE_RECURSE
  "CMakeFiles/bench_qual_campaign.dir/bench_qual_campaign.cpp.o"
  "CMakeFiles/bench_qual_campaign.dir/bench_qual_campaign.cpp.o.d"
  "bench_qual_campaign"
  "bench_qual_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qual_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
