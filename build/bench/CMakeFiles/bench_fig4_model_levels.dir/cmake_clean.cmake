file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_model_levels.dir/bench_fig4_model_levels.cpp.o"
  "CMakeFiles/bench_fig4_model_levels.dir/bench_fig4_model_levels.cpp.o.d"
  "bench_fig4_model_levels"
  "bench_fig4_model_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_model_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
