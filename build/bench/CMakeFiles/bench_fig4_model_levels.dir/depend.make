# Empty dependencies file for bench_fig4_model_levels.
# This may be replaced when dependencies are built.
