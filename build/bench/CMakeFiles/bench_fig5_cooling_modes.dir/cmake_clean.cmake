file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cooling_modes.dir/bench_fig5_cooling_modes.cpp.o"
  "CMakeFiles/bench_fig5_cooling_modes.dir/bench_fig5_cooling_modes.cpp.o.d"
  "bench_fig5_cooling_modes"
  "bench_fig5_cooling_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cooling_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
