# Empty compiler generated dependencies file for bench_fig5_cooling_modes.
# This may be replaced when dependencies are built.
