# Empty compiler generated dependencies file for bench_fig2_ariane_modal.
# This may be replaced when dependencies are built.
