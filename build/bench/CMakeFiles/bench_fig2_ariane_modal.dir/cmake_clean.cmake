file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ariane_modal.dir/bench_fig2_ariane_modal.cpp.o"
  "CMakeFiles/bench_fig2_ariane_modal.dir/bench_fig2_ariane_modal.cpp.o.d"
  "bench_fig2_ariane_modal"
  "bench_fig2_ariane_modal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ariane_modal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
