# Empty dependencies file for bench_carbon_composite.
# This may be replaced when dependencies are built.
