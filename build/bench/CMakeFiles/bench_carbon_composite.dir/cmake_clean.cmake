file(REMOVE_RECURSE
  "CMakeFiles/bench_carbon_composite.dir/bench_carbon_composite.cpp.o"
  "CMakeFiles/bench_carbon_composite.dir/bench_carbon_composite.cpp.o.d"
  "bench_carbon_composite"
  "bench_carbon_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carbon_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
