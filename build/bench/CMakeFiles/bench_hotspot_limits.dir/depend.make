# Empty dependencies file for bench_hotspot_limits.
# This may be replaced when dependencies are built.
