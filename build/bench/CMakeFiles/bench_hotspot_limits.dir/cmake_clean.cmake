file(REMOVE_RECURSE
  "CMakeFiles/bench_hotspot_limits.dir/bench_hotspot_limits.cpp.o"
  "CMakeFiles/bench_hotspot_limits.dir/bench_hotspot_limits.cpp.o.d"
  "bench_hotspot_limits"
  "bench_hotspot_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotspot_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
