# Empty dependencies file for bench_fig6_module_trend.
# This may be replaced when dependencies are built.
