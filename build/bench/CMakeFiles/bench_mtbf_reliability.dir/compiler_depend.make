# Empty compiler generated dependencies file for bench_mtbf_reliability.
# This may be replaced when dependencies are built.
