file(REMOVE_RECURSE
  "CMakeFiles/bench_mtbf_reliability.dir/bench_mtbf_reliability.cpp.o"
  "CMakeFiles/bench_mtbf_reliability.dir/bench_mtbf_reliability.cpp.o.d"
  "bench_mtbf_reliability"
  "bench_mtbf_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtbf_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
