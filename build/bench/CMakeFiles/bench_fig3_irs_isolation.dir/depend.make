# Empty dependencies file for bench_fig3_irs_isolation.
# This may be replaced when dependencies are built.
