file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_irs_isolation.dir/bench_fig3_irs_isolation.cpp.o"
  "CMakeFiles/bench_fig3_irs_isolation.dir/bench_fig3_irs_isolation.cpp.o.d"
  "bench_fig3_irs_isolation"
  "bench_fig3_irs_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_irs_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
