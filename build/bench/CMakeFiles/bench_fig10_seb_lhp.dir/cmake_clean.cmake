file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_seb_lhp.dir/bench_fig10_seb_lhp.cpp.o"
  "CMakeFiles/bench_fig10_seb_lhp.dir/bench_fig10_seb_lhp.cpp.o.d"
  "bench_fig10_seb_lhp"
  "bench_fig10_seb_lhp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_seb_lhp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
