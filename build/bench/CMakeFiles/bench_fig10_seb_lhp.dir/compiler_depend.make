# Empty compiler generated dependencies file for bench_fig10_seb_lhp.
# This may be replaced when dependencies are built.
