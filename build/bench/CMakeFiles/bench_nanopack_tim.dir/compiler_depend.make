# Empty compiler generated dependencies file for bench_nanopack_tim.
# This may be replaced when dependencies are built.
