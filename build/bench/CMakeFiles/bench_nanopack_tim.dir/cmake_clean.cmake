file(REMOVE_RECURSE
  "CMakeFiles/bench_nanopack_tim.dir/bench_nanopack_tim.cpp.o"
  "CMakeFiles/bench_nanopack_tim.dir/bench_nanopack_tim.cpp.o.d"
  "bench_nanopack_tim"
  "bench_nanopack_tim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nanopack_tim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
