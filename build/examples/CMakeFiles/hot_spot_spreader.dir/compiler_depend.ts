# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hot_spot_spreader.
