file(REMOVE_RECURSE
  "CMakeFiles/hot_spot_spreader.dir/hot_spot_spreader.cpp.o"
  "CMakeFiles/hot_spot_spreader.dir/hot_spot_spreader.cpp.o.d"
  "hot_spot_spreader"
  "hot_spot_spreader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_spot_spreader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
