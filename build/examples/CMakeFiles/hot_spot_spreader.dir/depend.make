# Empty dependencies file for hot_spot_spreader.
# This may be replaced when dependencies are built.
