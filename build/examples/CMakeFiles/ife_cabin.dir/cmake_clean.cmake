file(REMOVE_RECURSE
  "CMakeFiles/ife_cabin.dir/ife_cabin.cpp.o"
  "CMakeFiles/ife_cabin.dir/ife_cabin.cpp.o.d"
  "ife_cabin"
  "ife_cabin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ife_cabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
