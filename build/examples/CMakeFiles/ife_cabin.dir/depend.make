# Empty dependencies file for ife_cabin.
# This may be replaced when dependencies are built.
