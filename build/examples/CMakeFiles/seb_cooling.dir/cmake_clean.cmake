file(REMOVE_RECURSE
  "CMakeFiles/seb_cooling.dir/seb_cooling.cpp.o"
  "CMakeFiles/seb_cooling.dir/seb_cooling.cpp.o.d"
  "seb_cooling"
  "seb_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seb_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
