# Empty dependencies file for seb_cooling.
# This may be replaced when dependencies are built.
