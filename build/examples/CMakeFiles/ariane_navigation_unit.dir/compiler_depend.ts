# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ariane_navigation_unit.
