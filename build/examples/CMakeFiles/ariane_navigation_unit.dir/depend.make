# Empty dependencies file for ariane_navigation_unit.
# This may be replaced when dependencies are built.
