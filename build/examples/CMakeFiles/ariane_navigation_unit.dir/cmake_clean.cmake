file(REMOVE_RECURSE
  "CMakeFiles/ariane_navigation_unit.dir/ariane_navigation_unit.cpp.o"
  "CMakeFiles/ariane_navigation_unit.dir/ariane_navigation_unit.cpp.o.d"
  "ariane_navigation_unit"
  "ariane_navigation_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ariane_navigation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
