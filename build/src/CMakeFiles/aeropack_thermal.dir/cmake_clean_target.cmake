file(REMOVE_RECURSE
  "libaeropack_thermal.a"
)
