# Empty compiler generated dependencies file for aeropack_thermal.
# This may be replaced when dependencies are built.
