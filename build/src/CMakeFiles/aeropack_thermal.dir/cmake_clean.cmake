file(REMOVE_RECURSE
  "CMakeFiles/aeropack_thermal.dir/thermal/convection.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/convection.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/fins.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/fins.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/forced_air.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/forced_air.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/fv.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/fv.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/heatsink.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/heatsink.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/network.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/network.cpp.o.d"
  "CMakeFiles/aeropack_thermal.dir/thermal/radiation.cpp.o"
  "CMakeFiles/aeropack_thermal.dir/thermal/radiation.cpp.o.d"
  "libaeropack_thermal.a"
  "libaeropack_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
