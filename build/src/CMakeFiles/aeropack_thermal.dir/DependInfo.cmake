
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/convection.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/convection.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/convection.cpp.o.d"
  "/root/repo/src/thermal/fins.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/fins.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/fins.cpp.o.d"
  "/root/repo/src/thermal/forced_air.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/forced_air.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/forced_air.cpp.o.d"
  "/root/repo/src/thermal/fv.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/fv.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/fv.cpp.o.d"
  "/root/repo/src/thermal/heatsink.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/heatsink.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/heatsink.cpp.o.d"
  "/root/repo/src/thermal/network.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/network.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/network.cpp.o.d"
  "/root/repo/src/thermal/radiation.cpp" "src/CMakeFiles/aeropack_thermal.dir/thermal/radiation.cpp.o" "gcc" "src/CMakeFiles/aeropack_thermal.dir/thermal/radiation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
