file(REMOVE_RECURSE
  "CMakeFiles/aeropack_numeric.dir/numeric/dense.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/dense.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/eigen.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/eigen.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/interp.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/interp.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/ode.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/ode.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/polyfit.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/polyfit.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/quadrature.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/quadrature.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/rootfind.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/rootfind.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/solve_dense.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/solve_dense.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/sparse.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/sparse.cpp.o.d"
  "CMakeFiles/aeropack_numeric.dir/numeric/stats.cpp.o"
  "CMakeFiles/aeropack_numeric.dir/numeric/stats.cpp.o.d"
  "libaeropack_numeric.a"
  "libaeropack_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
