# Empty compiler generated dependencies file for aeropack_numeric.
# This may be replaced when dependencies are built.
