file(REMOVE_RECURSE
  "libaeropack_numeric.a"
)
