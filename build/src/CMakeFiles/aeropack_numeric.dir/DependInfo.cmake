
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/dense.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/dense.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/eigen.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/eigen.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/eigen.cpp.o.d"
  "/root/repo/src/numeric/interp.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/interp.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/interp.cpp.o.d"
  "/root/repo/src/numeric/ode.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/ode.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/ode.cpp.o.d"
  "/root/repo/src/numeric/polyfit.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/polyfit.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/polyfit.cpp.o.d"
  "/root/repo/src/numeric/quadrature.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/quadrature.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/quadrature.cpp.o.d"
  "/root/repo/src/numeric/rootfind.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/rootfind.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/rootfind.cpp.o.d"
  "/root/repo/src/numeric/solve_dense.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/solve_dense.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/solve_dense.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/sparse.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/sparse.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/CMakeFiles/aeropack_numeric.dir/numeric/stats.cpp.o" "gcc" "src/CMakeFiles/aeropack_numeric.dir/numeric/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
