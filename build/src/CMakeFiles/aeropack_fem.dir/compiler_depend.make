# Empty compiler generated dependencies file for aeropack_fem.
# This may be replaced when dependencies are built.
