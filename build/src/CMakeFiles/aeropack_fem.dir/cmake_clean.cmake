file(REMOVE_RECURSE
  "CMakeFiles/aeropack_fem.dir/fem/beam.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/beam.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/beam3d.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/beam3d.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/fatigue.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/fatigue.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/frame.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/frame.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/harmonic.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/harmonic.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/plate.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/plate.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/plate_random.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/plate_random.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/random_vibration.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/random_vibration.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/sdof.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/sdof.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/shock.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/shock.cpp.o.d"
  "CMakeFiles/aeropack_fem.dir/fem/transient.cpp.o"
  "CMakeFiles/aeropack_fem.dir/fem/transient.cpp.o.d"
  "libaeropack_fem.a"
  "libaeropack_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
