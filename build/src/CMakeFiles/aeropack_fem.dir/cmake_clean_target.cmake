file(REMOVE_RECURSE
  "libaeropack_fem.a"
)
