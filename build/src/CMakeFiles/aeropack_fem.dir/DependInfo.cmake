
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/beam.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/beam.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/beam.cpp.o.d"
  "/root/repo/src/fem/beam3d.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/beam3d.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/beam3d.cpp.o.d"
  "/root/repo/src/fem/fatigue.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/fatigue.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/fatigue.cpp.o.d"
  "/root/repo/src/fem/frame.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/frame.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/frame.cpp.o.d"
  "/root/repo/src/fem/harmonic.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/harmonic.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/harmonic.cpp.o.d"
  "/root/repo/src/fem/plate.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/plate.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/plate.cpp.o.d"
  "/root/repo/src/fem/plate_random.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/plate_random.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/plate_random.cpp.o.d"
  "/root/repo/src/fem/random_vibration.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/random_vibration.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/random_vibration.cpp.o.d"
  "/root/repo/src/fem/sdof.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/sdof.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/sdof.cpp.o.d"
  "/root/repo/src/fem/shock.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/shock.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/shock.cpp.o.d"
  "/root/repo/src/fem/transient.cpp" "src/CMakeFiles/aeropack_fem.dir/fem/transient.cpp.o" "gcc" "src/CMakeFiles/aeropack_fem.dir/fem/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
