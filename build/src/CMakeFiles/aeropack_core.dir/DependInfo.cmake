
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cooling_selection.cpp" "src/CMakeFiles/aeropack_core.dir/core/cooling_selection.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/cooling_selection.cpp.o.d"
  "/root/repo/src/core/derating.cpp" "src/CMakeFiles/aeropack_core.dir/core/derating.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/derating.cpp.o.d"
  "/root/repo/src/core/design_procedure.cpp" "src/CMakeFiles/aeropack_core.dir/core/design_procedure.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/design_procedure.cpp.o.d"
  "/root/repo/src/core/equipment.cpp" "src/CMakeFiles/aeropack_core.dir/core/equipment.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/equipment.cpp.o.d"
  "/root/repo/src/core/levels.cpp" "src/CMakeFiles/aeropack_core.dir/core/levels.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/levels.cpp.o.d"
  "/root/repo/src/core/qualification.cpp" "src/CMakeFiles/aeropack_core.dir/core/qualification.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/qualification.cpp.o.d"
  "/root/repo/src/core/rack.cpp" "src/CMakeFiles/aeropack_core.dir/core/rack.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/rack.cpp.o.d"
  "/root/repo/src/core/seb.cpp" "src/CMakeFiles/aeropack_core.dir/core/seb.cpp.o" "gcc" "src/CMakeFiles/aeropack_core.dir/core/seb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_twophase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_tim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
