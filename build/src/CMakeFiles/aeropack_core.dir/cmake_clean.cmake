file(REMOVE_RECURSE
  "CMakeFiles/aeropack_core.dir/core/cooling_selection.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/cooling_selection.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/derating.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/derating.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/design_procedure.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/design_procedure.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/equipment.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/equipment.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/levels.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/levels.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/qualification.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/qualification.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/rack.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/rack.cpp.o.d"
  "CMakeFiles/aeropack_core.dir/core/seb.cpp.o"
  "CMakeFiles/aeropack_core.dir/core/seb.cpp.o.d"
  "libaeropack_core.a"
  "libaeropack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
