# Empty dependencies file for aeropack_core.
# This may be replaced when dependencies are built.
