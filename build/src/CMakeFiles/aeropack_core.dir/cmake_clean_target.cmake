file(REMOVE_RECURSE
  "libaeropack_core.a"
)
