# Empty compiler generated dependencies file for aeropack_tim.
# This may be replaced when dependencies are built.
