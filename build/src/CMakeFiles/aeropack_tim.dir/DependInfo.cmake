
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tim/aging.cpp" "src/CMakeFiles/aeropack_tim.dir/tim/aging.cpp.o" "gcc" "src/CMakeFiles/aeropack_tim.dir/tim/aging.cpp.o.d"
  "/root/repo/src/tim/d5470.cpp" "src/CMakeFiles/aeropack_tim.dir/tim/d5470.cpp.o" "gcc" "src/CMakeFiles/aeropack_tim.dir/tim/d5470.cpp.o.d"
  "/root/repo/src/tim/effective_medium.cpp" "src/CMakeFiles/aeropack_tim.dir/tim/effective_medium.cpp.o" "gcc" "src/CMakeFiles/aeropack_tim.dir/tim/effective_medium.cpp.o.d"
  "/root/repo/src/tim/tim_material.cpp" "src/CMakeFiles/aeropack_tim.dir/tim/tim_material.cpp.o" "gcc" "src/CMakeFiles/aeropack_tim.dir/tim/tim_material.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
