file(REMOVE_RECURSE
  "libaeropack_tim.a"
)
