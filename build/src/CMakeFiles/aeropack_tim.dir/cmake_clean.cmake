file(REMOVE_RECURSE
  "CMakeFiles/aeropack_tim.dir/tim/aging.cpp.o"
  "CMakeFiles/aeropack_tim.dir/tim/aging.cpp.o.d"
  "CMakeFiles/aeropack_tim.dir/tim/d5470.cpp.o"
  "CMakeFiles/aeropack_tim.dir/tim/d5470.cpp.o.d"
  "CMakeFiles/aeropack_tim.dir/tim/effective_medium.cpp.o"
  "CMakeFiles/aeropack_tim.dir/tim/effective_medium.cpp.o.d"
  "CMakeFiles/aeropack_tim.dir/tim/tim_material.cpp.o"
  "CMakeFiles/aeropack_tim.dir/tim/tim_material.cpp.o.d"
  "libaeropack_tim.a"
  "libaeropack_tim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_tim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
