# Empty compiler generated dependencies file for aeropack_twophase.
# This may be replaced when dependencies are built.
