file(REMOVE_RECURSE
  "CMakeFiles/aeropack_twophase.dir/twophase/designer.cpp.o"
  "CMakeFiles/aeropack_twophase.dir/twophase/designer.cpp.o.d"
  "CMakeFiles/aeropack_twophase.dir/twophase/heat_pipe.cpp.o"
  "CMakeFiles/aeropack_twophase.dir/twophase/heat_pipe.cpp.o.d"
  "CMakeFiles/aeropack_twophase.dir/twophase/loop_heat_pipe.cpp.o"
  "CMakeFiles/aeropack_twophase.dir/twophase/loop_heat_pipe.cpp.o.d"
  "CMakeFiles/aeropack_twophase.dir/twophase/thermosyphon.cpp.o"
  "CMakeFiles/aeropack_twophase.dir/twophase/thermosyphon.cpp.o.d"
  "CMakeFiles/aeropack_twophase.dir/twophase/vapor_chamber.cpp.o"
  "CMakeFiles/aeropack_twophase.dir/twophase/vapor_chamber.cpp.o.d"
  "libaeropack_twophase.a"
  "libaeropack_twophase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
