file(REMOVE_RECURSE
  "libaeropack_twophase.a"
)
