
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twophase/designer.cpp" "src/CMakeFiles/aeropack_twophase.dir/twophase/designer.cpp.o" "gcc" "src/CMakeFiles/aeropack_twophase.dir/twophase/designer.cpp.o.d"
  "/root/repo/src/twophase/heat_pipe.cpp" "src/CMakeFiles/aeropack_twophase.dir/twophase/heat_pipe.cpp.o" "gcc" "src/CMakeFiles/aeropack_twophase.dir/twophase/heat_pipe.cpp.o.d"
  "/root/repo/src/twophase/loop_heat_pipe.cpp" "src/CMakeFiles/aeropack_twophase.dir/twophase/loop_heat_pipe.cpp.o" "gcc" "src/CMakeFiles/aeropack_twophase.dir/twophase/loop_heat_pipe.cpp.o.d"
  "/root/repo/src/twophase/thermosyphon.cpp" "src/CMakeFiles/aeropack_twophase.dir/twophase/thermosyphon.cpp.o" "gcc" "src/CMakeFiles/aeropack_twophase.dir/twophase/thermosyphon.cpp.o.d"
  "/root/repo/src/twophase/vapor_chamber.cpp" "src/CMakeFiles/aeropack_twophase.dir/twophase/vapor_chamber.cpp.o" "gcc" "src/CMakeFiles/aeropack_twophase.dir/twophase/vapor_chamber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
