# Empty compiler generated dependencies file for aeropack_reliability.
# This may be replaced when dependencies are built.
