file(REMOVE_RECURSE
  "libaeropack_reliability.a"
)
