
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/mission.cpp" "src/CMakeFiles/aeropack_reliability.dir/reliability/mission.cpp.o" "gcc" "src/CMakeFiles/aeropack_reliability.dir/reliability/mission.cpp.o.d"
  "/root/repo/src/reliability/mtbf.cpp" "src/CMakeFiles/aeropack_reliability.dir/reliability/mtbf.cpp.o" "gcc" "src/CMakeFiles/aeropack_reliability.dir/reliability/mtbf.cpp.o.d"
  "/root/repo/src/reliability/spares.cpp" "src/CMakeFiles/aeropack_reliability.dir/reliability/spares.cpp.o" "gcc" "src/CMakeFiles/aeropack_reliability.dir/reliability/spares.cpp.o.d"
  "/root/repo/src/reliability/thermal_cycling.cpp" "src/CMakeFiles/aeropack_reliability.dir/reliability/thermal_cycling.cpp.o" "gcc" "src/CMakeFiles/aeropack_reliability.dir/reliability/thermal_cycling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
