file(REMOVE_RECURSE
  "CMakeFiles/aeropack_reliability.dir/reliability/mission.cpp.o"
  "CMakeFiles/aeropack_reliability.dir/reliability/mission.cpp.o.d"
  "CMakeFiles/aeropack_reliability.dir/reliability/mtbf.cpp.o"
  "CMakeFiles/aeropack_reliability.dir/reliability/mtbf.cpp.o.d"
  "CMakeFiles/aeropack_reliability.dir/reliability/spares.cpp.o"
  "CMakeFiles/aeropack_reliability.dir/reliability/spares.cpp.o.d"
  "CMakeFiles/aeropack_reliability.dir/reliability/thermal_cycling.cpp.o"
  "CMakeFiles/aeropack_reliability.dir/reliability/thermal_cycling.cpp.o.d"
  "libaeropack_reliability.a"
  "libaeropack_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
