# Empty dependencies file for aeropack_materials.
# This may be replaced when dependencies are built.
