file(REMOVE_RECURSE
  "CMakeFiles/aeropack_materials.dir/materials/air.cpp.o"
  "CMakeFiles/aeropack_materials.dir/materials/air.cpp.o.d"
  "CMakeFiles/aeropack_materials.dir/materials/fluids.cpp.o"
  "CMakeFiles/aeropack_materials.dir/materials/fluids.cpp.o.d"
  "CMakeFiles/aeropack_materials.dir/materials/solid.cpp.o"
  "CMakeFiles/aeropack_materials.dir/materials/solid.cpp.o.d"
  "libaeropack_materials.a"
  "libaeropack_materials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeropack_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
