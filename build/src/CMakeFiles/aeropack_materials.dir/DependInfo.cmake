
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/materials/air.cpp" "src/CMakeFiles/aeropack_materials.dir/materials/air.cpp.o" "gcc" "src/CMakeFiles/aeropack_materials.dir/materials/air.cpp.o.d"
  "/root/repo/src/materials/fluids.cpp" "src/CMakeFiles/aeropack_materials.dir/materials/fluids.cpp.o" "gcc" "src/CMakeFiles/aeropack_materials.dir/materials/fluids.cpp.o.d"
  "/root/repo/src/materials/solid.cpp" "src/CMakeFiles/aeropack_materials.dir/materials/solid.cpp.o" "gcc" "src/CMakeFiles/aeropack_materials.dir/materials/solid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
