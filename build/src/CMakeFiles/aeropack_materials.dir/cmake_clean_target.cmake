file(REMOVE_RECURSE
  "libaeropack_materials.a"
)
