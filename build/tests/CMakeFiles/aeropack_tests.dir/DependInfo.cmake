
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_cooling_selection.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_cooling_selection.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_cooling_selection.cpp.o.d"
  "/root/repo/tests/core/test_derating.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_derating.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_derating.cpp.o.d"
  "/root/repo/tests/core/test_design_procedure.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_design_procedure.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_design_procedure.cpp.o.d"
  "/root/repo/tests/core/test_equipment.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_equipment.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_equipment.cpp.o.d"
  "/root/repo/tests/core/test_levels.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_levels.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_levels.cpp.o.d"
  "/root/repo/tests/core/test_levels_airflow.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_levels_airflow.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_levels_airflow.cpp.o.d"
  "/root/repo/tests/core/test_qualification.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_qualification.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_qualification.cpp.o.d"
  "/root/repo/tests/core/test_rack.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_rack.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_rack.cpp.o.d"
  "/root/repo/tests/core/test_seb.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_seb.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_seb.cpp.o.d"
  "/root/repo/tests/core/test_seb_transient.cpp" "tests/CMakeFiles/aeropack_tests.dir/core/test_seb_transient.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/core/test_seb_transient.cpp.o.d"
  "/root/repo/tests/fem/test_beam.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_beam.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_beam.cpp.o.d"
  "/root/repo/tests/fem/test_beam3d.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_beam3d.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_beam3d.cpp.o.d"
  "/root/repo/tests/fem/test_fatigue.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_fatigue.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_fatigue.cpp.o.d"
  "/root/repo/tests/fem/test_frame.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_frame.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_frame.cpp.o.d"
  "/root/repo/tests/fem/test_harmonic.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_harmonic.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_harmonic.cpp.o.d"
  "/root/repo/tests/fem/test_plate.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate.cpp.o.d"
  "/root/repo/tests/fem/test_plate_random.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate_random.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate_random.cpp.o.d"
  "/root/repo/tests/fem/test_plate_static.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate_static.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_plate_static.cpp.o.d"
  "/root/repo/tests/fem/test_random_vibration.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_random_vibration.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_random_vibration.cpp.o.d"
  "/root/repo/tests/fem/test_sdof.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_sdof.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_sdof.cpp.o.d"
  "/root/repo/tests/fem/test_shock.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_shock.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_shock.cpp.o.d"
  "/root/repo/tests/fem/test_transient.cpp" "tests/CMakeFiles/aeropack_tests.dir/fem/test_transient.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/fem/test_transient.cpp.o.d"
  "/root/repo/tests/integration/test_bracket_3d.cpp" "tests/CMakeFiles/aeropack_tests.dir/integration/test_bracket_3d.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/integration/test_bracket_3d.cpp.o.d"
  "/root/repo/tests/integration/test_cross_module_properties.cpp" "tests/CMakeFiles/aeropack_tests.dir/integration/test_cross_module_properties.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/integration/test_cross_module_properties.cpp.o.d"
  "/root/repo/tests/integration/test_design_flow.cpp" "tests/CMakeFiles/aeropack_tests.dir/integration/test_design_flow.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/integration/test_design_flow.cpp.o.d"
  "/root/repo/tests/integration/test_paper_claims.cpp" "tests/CMakeFiles/aeropack_tests.dir/integration/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/integration/test_paper_claims.cpp.o.d"
  "/root/repo/tests/materials/test_air.cpp" "tests/CMakeFiles/aeropack_tests.dir/materials/test_air.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/materials/test_air.cpp.o.d"
  "/root/repo/tests/materials/test_fluids.cpp" "tests/CMakeFiles/aeropack_tests.dir/materials/test_fluids.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/materials/test_fluids.cpp.o.d"
  "/root/repo/tests/materials/test_solid.cpp" "tests/CMakeFiles/aeropack_tests.dir/materials/test_solid.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/materials/test_solid.cpp.o.d"
  "/root/repo/tests/numeric/test_dense.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_dense.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_dense.cpp.o.d"
  "/root/repo/tests/numeric/test_eigen.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_eigen.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_eigen.cpp.o.d"
  "/root/repo/tests/numeric/test_interp.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_interp.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_interp.cpp.o.d"
  "/root/repo/tests/numeric/test_misc_edges.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_misc_edges.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_misc_edges.cpp.o.d"
  "/root/repo/tests/numeric/test_ode.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_ode.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_ode.cpp.o.d"
  "/root/repo/tests/numeric/test_polyfit.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_polyfit.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_polyfit.cpp.o.d"
  "/root/repo/tests/numeric/test_quadrature.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_quadrature.cpp.o.d"
  "/root/repo/tests/numeric/test_rootfind.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_rootfind.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_rootfind.cpp.o.d"
  "/root/repo/tests/numeric/test_solve_dense.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_solve_dense.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_solve_dense.cpp.o.d"
  "/root/repo/tests/numeric/test_sparse.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_sparse.cpp.o.d"
  "/root/repo/tests/numeric/test_stats.cpp" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_stats.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/numeric/test_stats.cpp.o.d"
  "/root/repo/tests/reliability/test_mission.cpp" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_mission.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_mission.cpp.o.d"
  "/root/repo/tests/reliability/test_mtbf.cpp" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_mtbf.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_mtbf.cpp.o.d"
  "/root/repo/tests/reliability/test_spares.cpp" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_spares.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_spares.cpp.o.d"
  "/root/repo/tests/reliability/test_thermal_cycling.cpp" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_thermal_cycling.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/reliability/test_thermal_cycling.cpp.o.d"
  "/root/repo/tests/thermal/test_convection.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_convection.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_convection.cpp.o.d"
  "/root/repo/tests/thermal/test_fins.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fins.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fins.cpp.o.d"
  "/root/repo/tests/thermal/test_forced_air.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_forced_air.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_forced_air.cpp.o.d"
  "/root/repo/tests/thermal/test_fv.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fv.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fv.cpp.o.d"
  "/root/repo/tests/thermal/test_fv_interface.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fv_interface.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_fv_interface.cpp.o.d"
  "/root/repo/tests/thermal/test_heatsink.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_heatsink.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_heatsink.cpp.o.d"
  "/root/repo/tests/thermal/test_network.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_network.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_network.cpp.o.d"
  "/root/repo/tests/thermal/test_radiation.cpp" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_radiation.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/thermal/test_radiation.cpp.o.d"
  "/root/repo/tests/tim/test_aging.cpp" "tests/CMakeFiles/aeropack_tests.dir/tim/test_aging.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/tim/test_aging.cpp.o.d"
  "/root/repo/tests/tim/test_d5470.cpp" "tests/CMakeFiles/aeropack_tests.dir/tim/test_d5470.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/tim/test_d5470.cpp.o.d"
  "/root/repo/tests/tim/test_effective_medium.cpp" "tests/CMakeFiles/aeropack_tests.dir/tim/test_effective_medium.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/tim/test_effective_medium.cpp.o.d"
  "/root/repo/tests/tim/test_tim_material.cpp" "tests/CMakeFiles/aeropack_tests.dir/tim/test_tim_material.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/tim/test_tim_material.cpp.o.d"
  "/root/repo/tests/twophase/test_designer.cpp" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_designer.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_designer.cpp.o.d"
  "/root/repo/tests/twophase/test_heat_pipe.cpp" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_heat_pipe.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_heat_pipe.cpp.o.d"
  "/root/repo/tests/twophase/test_lhp.cpp" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_lhp.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_lhp.cpp.o.d"
  "/root/repo/tests/twophase/test_thermosyphon.cpp" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_thermosyphon.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_thermosyphon.cpp.o.d"
  "/root/repo/tests/twophase/test_vapor_chamber.cpp" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_vapor_chamber.cpp.o" "gcc" "tests/CMakeFiles/aeropack_tests.dir/twophase/test_vapor_chamber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeropack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_twophase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_tim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_materials.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeropack_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
