# Empty compiler generated dependencies file for aeropack_tests.
# This may be replaced when dependencies are built.
