// FV interlayer contact resistance (TIM / bond line between z layers).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/fv.hpp"
#include "tim/tim_material.hpp"

namespace at = aeropack::thermal;

namespace {
/// Two-layer stack: heat enters the top, leaves through the bottom face.
at::FvModel stack(double r_interface) {
  at::FvModel m(at::FvGrid::uniform(0.05, 0.05, 0.004, 2, 2, 2));
  m.set_conductivity(m.all_cells(), 150.0, 150.0, 150.0);
  m.add_power({0, 2, 0, 2, 1, 2}, 10.0);  // top layer dissipates
  m.set_boundary(at::Face::ZMin, at::BoundaryCondition::fixed(300.0));
  if (r_interface > 0.0) m.add_interface_z(0, r_interface);
  return m;
}
}  // namespace

TEST(FvInterface, ContactResistanceAddsPredictableRise) {
  // 10 W through R'' = 1e-4 K m^2/W over 25 cm^2 => dT = 10 * 1e-4 / 25e-4 = 0.4 K.
  const auto clean = stack(0.0).solve_steady();
  const auto bonded = stack(1e-4).solve_steady();
  const double rise = bonded.max_temperature - clean.max_temperature;
  EXPECT_NEAR(rise, 10.0 * 1e-4 / 25e-4, 0.02);
}

TEST(FvInterface, WorseTimWorseRise) {
  const auto grease = stack(aeropack::tim::conventional_grease().specific_resistance(0.3e6));
  const auto pad = stack(aeropack::tim::conventional_gap_pad().specific_resistance(0.3e6));
  EXPECT_GT(pad.solve_steady().max_temperature, grease.solve_steady().max_temperature + 0.2);
}

TEST(FvInterface, EnergyStillConserved) {
  const auto sol = stack(5e-4).solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.energy_residual, 1e-6);
}

TEST(FvInterface, AppliesToBothSchemes) {
  auto m = stack(1e-3);
  at::FvOptions arith;
  arith.scheme = at::FaceConductanceScheme::ArithmeticMean;
  const double t_h = m.solve_steady().max_temperature;
  const double t_a = m.solve_steady(arith).max_temperature;
  // Identical conductivities: the interface dominates and both schemes agree.
  EXPECT_NEAR(t_h, t_a, 1e-6);
}

TEST(FvInterface, InvalidPlaneThrows) {
  at::FvModel m(at::FvGrid::uniform(0.05, 0.05, 0.004, 2, 2, 2));
  EXPECT_THROW(m.add_interface_z(1, 1e-4), std::out_of_range);
  EXPECT_THROW(m.add_interface_z(0, 0.0), std::invalid_argument);
}
