// Transient FV edge cases that went untested since the seed: time steps
// larger than the horizon, zero-power sources, single-cell grids, and the
// initial-field overload.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/fv.hpp"

namespace at = aeropack::thermal;

namespace {

at::FvModel lumped_cell(double k, double rho_cp_density, double cp) {
  // 2 cm cube, single cell, convection on XMax to 300 K air.
  at::FvModel m(at::FvGrid::uniform(0.02, 0.02, 0.02, 1, 1, 1));
  aeropack::materials::SolidMaterial mat;
  mat.conductivity = k;
  mat.conductivity_through = k;
  mat.density = rho_cp_density;
  mat.specific_heat = cp;
  m.set_material(m.all_cells(), mat);
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(50.0, 300.0));
  return m;
}

}  // namespace

TEST(FvTransientEdges, RejectsNonPositiveTimeParameters) {
  auto m = lumped_cell(100.0, 2700.0, 900.0);
  EXPECT_THROW(m.solve_transient(10.0, 0.0, 300.0), std::invalid_argument);
  EXPECT_THROW(m.solve_transient(10.0, -1.0, 300.0), std::invalid_argument);
  EXPECT_THROW(m.solve_transient(0.0, 1.0, 300.0), std::invalid_argument);
  EXPECT_THROW(m.solve_transient(-10.0, 1.0, 300.0), std::invalid_argument);
}

TEST(FvTransientEdges, DtLargerThanHorizonClampsToSingleStep) {
  auto m = lumped_cell(100.0, 2700.0, 900.0);
  const auto clamped = m.solve_transient(2.0, 50.0, 350.0);
  ASSERT_EQ(clamped.times.size(), 2u);  // initial state + one implicit step
  EXPECT_DOUBLE_EQ(clamped.times.back(), 2.0);
  // Identical to asking for the step size outright.
  const auto direct = m.solve_transient(2.0, 2.0, 350.0);
  ASSERT_EQ(direct.times.size(), 2u);
  EXPECT_DOUBLE_EQ(direct.temperatures.back()[0], clamped.temperatures.back()[0]);
}

TEST(FvTransientEdges, DtEqualToHorizonTakesExactlyOneStep) {
  auto m = lumped_cell(100.0, 2700.0, 900.0);
  const auto out = m.solve_transient(5.0, 5.0, 340.0);
  ASSERT_EQ(out.times.size(), 2u);
  EXPECT_DOUBLE_EQ(out.times[0], 0.0);
  EXPECT_DOUBLE_EQ(out.times[1], 5.0);
  EXPECT_LT(out.temperatures.back()[0], 340.0);  // cooling toward the sink
  EXPECT_GT(out.temperatures.back()[0], 300.0);
}

TEST(FvTransientEdges, ZeroPowerAtSinkTemperatureStaysPut) {
  // No sources and the initial field already at the sink temperature: every
  // step must hold exactly (the warm-started CG sees a zero residual).
  auto m = lumped_cell(100.0, 2700.0, 900.0);
  const auto out = m.solve_transient(100.0, 10.0, 300.0);
  for (const auto& field : out.temperatures) EXPECT_DOUBLE_EQ(field[0], 300.0);
  EXPECT_EQ(out.structure_assemblies, 1u);
}

TEST(FvTransientEdges, ZeroPowerSingleCellMatchesLumpedDecay) {
  // Single cell + convection = the lumped-capacitance problem. Implicit
  // Euler: theta_{n+1} = theta_n / (1 + dt UA / C) with the film conductance
  // in series with the half-cell conduction path.
  const double k = 100.0, rho = 2700.0, cp = 900.0, side = 0.02;
  auto m = lumped_cell(k, rho, cp);
  const double area = side * side;
  const double g_cond = k * area / (0.5 * side);
  const double g_film = 50.0 * area;
  const double ua = 1.0 / (1.0 / g_cond + 1.0 / g_film);
  const double capacity = rho * cp * side * side * side;
  const double dt = 30.0;
  const auto out = m.solve_transient(300.0, dt, 350.0);
  double theta = 50.0;
  for (std::size_t s = 1; s < out.times.size(); ++s) {
    theta /= 1.0 + dt * ua / capacity;
    EXPECT_NEAR(out.temperatures[s][0], 300.0 + theta, 1e-6) << "step " << s;
  }
  // And the march must monotonically cool toward (never past) the sink.
  for (std::size_t s = 1; s < out.times.size(); ++s) {
    EXPECT_LT(out.temperatures[s][0], out.temperatures[s - 1][0]);
    EXPECT_GT(out.temperatures[s][0], 300.0);
  }
}

TEST(FvTransientEdges, SingleCellSteadyMatchesLumpedResistance) {
  auto m = lumped_cell(100.0, 2700.0, 900.0);
  m.add_power(m.all_cells(), 4.0);
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  const double area = 0.02 * 0.02;
  const double g_cond = 100.0 * area / 0.01;
  const double g_film = 50.0 * area;
  const double ua = 1.0 / (1.0 / g_cond + 1.0 / g_film);
  EXPECT_NEAR(sol.temperatures[0], 300.0 + 4.0 / ua, 1e-6);
  EXPECT_LT(sol.energy_residual, 1e-9);
}

TEST(FvTransientEdges, InitialFieldOverloadChecksSizeAndSeedsState) {
  at::FvModel m(at::FvGrid::uniform(0.1, 0.02, 0.02, 4, 1, 1));
  m.set_conductivity(m.all_cells(), 50.0, 50.0, 50.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  EXPECT_THROW(m.solve_transient(10.0, 1.0, aeropack::numeric::Vector(3, 300.0)),
               std::invalid_argument);
  const aeropack::numeric::Vector initial{310.0, 320.0, 330.0, 340.0};
  const auto out = m.solve_transient(10.0, 1.0, initial);
  ASSERT_FALSE(out.temperatures.empty());
  // The recorded step 0 is the seed field itself.
  for (std::size_t i = 0; i < initial.size(); ++i)
    EXPECT_DOUBLE_EQ(out.temperatures.front()[i], initial[i]);
  // Uniform-overload equivalence: a constant vector seed behaves identically.
  const auto a = m.solve_transient(10.0, 1.0, 325.0);
  const auto b = m.solve_transient(10.0, 1.0, aeropack::numeric::Vector(4, 325.0));
  for (std::size_t s = 0; s < a.temperatures.size(); ++s)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(a.temperatures[s][i], b.temperatures[s][i]);
}
