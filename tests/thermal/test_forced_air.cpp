// ARINC 600 forced-air supply, hot-spot feasibility, spreading resistance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "thermal/forced_air.hpp"

namespace at = aeropack::thermal;

TEST(ArincSupply, MassFlowPerKilowatt) {
  at::ArincAirSupply s;
  // 220 kg/h per kW: 1 kW -> 0.0611 kg/s.
  EXPECT_NEAR(s.mass_flow(1000.0), 220.0 / 3600.0, 1e-9);
  EXPECT_NEAR(s.mass_flow(500.0), 110.0 / 3600.0, 1e-9);
}

TEST(ArincSupply, AirRiseIsPowerIndependent) {
  at::ArincAirSupply s;
  // dT = Q / (mdot cp) with mdot proportional to Q: constant ~16 K.
  EXPECT_NEAR(s.air_rise(100.0), s.air_rise(1000.0), 1e-9);
  EXPECT_NEAR(s.air_rise(1000.0), 1000.0 / ((220.0 / 3600.0) * 1006.0), 0.01);
}

TEST(ArincSupply, FlowMultiplierScales) {
  at::ArincAirSupply s;
  s.flow_multiplier = 2.0;
  EXPECT_NEAR(s.air_rise(1000.0), 0.5 * 1000.0 / ((220.0 / 3600.0) * 1006.0), 0.01);
}

TEST(ArincSupply, NegativePowerThrows) {
  at::ArincAirSupply s;
  EXPECT_THROW(s.mass_flow(-1.0), std::invalid_argument);
}

TEST(HotSpot, ModerateFluxFeasible) {
  at::ArincAirSupply s;
  at::CardChannel chan;
  // 1 W/cm^2 on a 50 W module.
  const auto r = at::analyze_hot_spot(s, chan, 50.0, 1e4, 0.5, 383.15);
  EXPECT_GT(r.h, 5.0);
  EXPECT_TRUE(std::isfinite(r.film_rise));
}

TEST(HotSpot, PaperClaimHighFluxInfeasibleAtStandardFlow) {
  // The paper: hot spots of 10..100 W/cm^2 cannot be held by the standard
  // ARINC 600 flow; ~10x flow would be required.
  at::ArincAirSupply s;
  at::CardChannel chan;
  const auto r10 = at::analyze_hot_spot(s, chan, 100.0, 10.0 * 1e4, 0.5, 383.15);
  EXPECT_FALSE(r10.feasible);
  const auto r100 = at::analyze_hot_spot(s, chan, 100.0, 100.0 * 1e4, 0.5, 383.15);
  EXPECT_FALSE(r100.feasible);
  EXPECT_GT(r100.film_rise, r10.film_rise);
}

TEST(HotSpot, MoreFlowLowersSurfaceTemperature) {
  at::ArincAirSupply base;
  at::ArincAirSupply boosted = base;
  boosted.flow_multiplier = 10.0;
  at::CardChannel chan;
  const auto a = at::analyze_hot_spot(base, chan, 100.0, 5e4, 0.5, 383.15);
  const auto b = at::analyze_hot_spot(boosted, chan, 100.0, 5e4, 0.5, 383.15);
  EXPECT_LT(b.surface_temperature, a.surface_temperature);
}

TEST(HotSpot, PositionRaisesLocalAirTemperature) {
  at::ArincAirSupply s;
  at::CardChannel chan;
  const auto inlet = at::analyze_hot_spot(s, chan, 200.0, 1e4, 0.0, 383.15);
  const auto outlet = at::analyze_hot_spot(s, chan, 200.0, 1e4, 1.0, 383.15);
  EXPECT_GT(outlet.local_air_temperature, inlet.local_air_temperature);
  EXPECT_THROW(at::analyze_hot_spot(s, chan, 200.0, 1e4, 1.5, 383.15), std::invalid_argument);
}

TEST(RequiredFlow, GrowsWithFlux) {
  at::ArincAirSupply s;
  at::CardChannel chan;
  const double m_low = at::required_flow_multiplier(s, chan, 100.0, 3e3, 0.5, 383.15);
  const double m_high = at::required_flow_multiplier(s, chan, 100.0, 4e4, 0.5, 383.15);
  EXPECT_GE(m_high, m_low);
}

TEST(RequiredFlow, ImpossibleReturnsInfinity) {
  at::ArincAirSupply s;
  at::CardChannel chan;
  const double m = at::required_flow_multiplier(s, chan, 100.0, 1e6, 0.5, 383.15);
  EXPECT_TRUE(std::isinf(m));
}

TEST(SpreadingResistance, ShrinksWithLargerSource) {
  const double small = at::spreading_resistance(1e-4, 1e-2, 2e-3, 167.0, 500.0);
  const double large = at::spreading_resistance(5e-3, 1e-2, 2e-3, 167.0, 500.0);
  EXPECT_GT(small, large);
}

TEST(SpreadingResistance, FullCoverageApproaches1dPlusFilm) {
  const double r = at::spreading_resistance(1e-2 - 1e-9, 1e-2, 2e-3, 167.0, 500.0);
  const double r_1d = 2e-3 / (167.0 * 1e-2) + 1.0 / (500.0 * 1e-2);
  EXPECT_NEAR(r, r_1d, 0.05 * r_1d);
}

TEST(SpreadingResistance, HigherConductivityHelps) {
  const double r_al = at::spreading_resistance(1e-4, 1e-2, 2e-3, 167.0, 500.0);
  const double r_cfrp = at::spreading_resistance(1e-4, 1e-2, 2e-3, 5.0, 500.0);
  EXPECT_GT(r_cfrp, 3.0 * r_al);
}

TEST(SpreadingResistance, InvalidInputsThrow) {
  EXPECT_THROW(at::spreading_resistance(0.0, 1e-2, 1e-3, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(at::spreading_resistance(2e-2, 1e-2, 1e-3, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(at::spreading_resistance(1e-4, 1e-2, 1e-3, 100.0, 0.0), std::invalid_argument);
}
