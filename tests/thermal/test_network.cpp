// Lumped thermal resistance network.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/convection.hpp"
#include "thermal/network.hpp"

namespace at = aeropack::thermal;

TEST(ThermalNetwork, SingleResistorHandCalc) {
  at::ThermalNetwork net;
  const auto node = net.add_node("chip");
  const auto amb = net.add_boundary("ambient", 300.0);
  net.add_resistor(node, amb, 2.0);  // 2 K/W
  net.add_heat_load(node, 10.0);
  const auto sol = net.solve_steady();
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.temperatures[node], 320.0, 1e-9);
  EXPECT_LT(sol.energy_residual, 1e-9);
}

TEST(ThermalNetwork, SeriesChain) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto amb = net.add_boundary("ambient", 300.0);
  net.add_resistor(a, b, 1.0);
  net.add_resistor(b, amb, 0.5);
  net.add_heat_load(a, 20.0);
  const auto sol = net.solve_steady();
  EXPECT_NEAR(sol.temperatures[b], 310.0, 1e-9);
  EXPECT_NEAR(sol.temperatures[a], 330.0, 1e-9);
}

TEST(ThermalNetwork, ParallelPathsSplitHeat) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a");
  const auto amb = net.add_boundary("ambient", 300.0);
  net.add_conductor(a, amb, 1.0);
  net.add_conductor(a, amb, 3.0);
  net.add_heat_load(a, 40.0);
  const auto sol = net.solve_steady();
  EXPECT_NEAR(sol.temperatures[a], 310.0, 1e-9);  // G_total = 4 W/K
}

TEST(ThermalNetwork, TwoBoundariesPullNode) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a");
  const auto hot = net.add_boundary("hot", 400.0);
  const auto cold = net.add_boundary("cold", 300.0);
  net.add_conductor(a, hot, 1.0);
  net.add_conductor(a, cold, 1.0);
  const auto sol = net.solve_steady();
  EXPECT_NEAR(sol.temperatures[a], 350.0, 1e-9);
  // Heat flows hot -> a -> cold: check node_heat_flow signs.
  EXPECT_NEAR(net.node_heat_flow(hot, sol.temperatures), 50.0, 1e-9);
  EXPECT_NEAR(net.node_heat_flow(cold, sol.temperatures), -50.0, 1e-9);
}

TEST(ThermalNetwork, NonlinearRadiationConductor) {
  // Pure radiation: q = sigma A (T^4 - Ta^4) via the linearized conductance.
  at::ThermalNetwork net;
  const auto s = net.add_node("surface");
  const auto amb = net.add_boundary("ambient", 300.0);
  const double area = 0.1;
  net.add_nonlinear_conductor(s, amb, [area](double ta, double tb) {
    return at::h_radiation(ta, tb, 0.9) * area;
  });
  net.add_heat_load(s, 50.0);
  const auto sol = net.solve_steady();
  ASSERT_TRUE(sol.converged);
  const double q = 0.9 * at::kStefanBoltzmann * area *
                   (std::pow(sol.temperatures[s], 4.0) - std::pow(300.0, 4.0));
  EXPECT_NEAR(q, 50.0, 0.05);
}

TEST(ThermalNetwork, InvalidUsageThrows) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a");
  const auto amb = net.add_boundary("amb", 300.0);
  EXPECT_THROW(net.add_conductor(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_conductor(a, amb, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_conductor(a, 99, 1.0), std::out_of_range);
  EXPECT_THROW(net.add_heat_load(amb, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_boundary("bad", -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_boundary_temperature(a, 300.0), std::invalid_argument);
}

TEST(ThermalNetwork, BoundarySweepUpdatesSolution) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a");
  const auto amb = net.add_boundary("amb", 300.0);
  net.add_conductor(a, amb, 2.0);
  net.add_heat_load(a, 10.0);
  EXPECT_NEAR(net.solve_steady().temperatures[a], 305.0, 1e-9);
  net.set_boundary_temperature(amb, 350.0);
  EXPECT_NEAR(net.solve_steady().temperatures[a], 355.0, 1e-9);
  net.set_heat_load(a, 20.0);
  EXPECT_NEAR(net.solve_steady().temperatures[a], 360.0, 1e-9);
}

TEST(ThermalNetwork, TransientApproachesSteadyState) {
  at::ThermalNetwork net;
  const auto a = net.add_node("a", 100.0);  // 100 J/K
  const auto amb = net.add_boundary("amb", 300.0);
  net.add_conductor(a, amb, 2.0);  // tau = 50 s
  net.add_heat_load(a, 20.0);
  aeropack::numeric::Vector init{300.0, 300.0};
  const auto tr = net.solve_transient(400.0, 0.5, init);
  EXPECT_NEAR(tr.temperatures.back()[a], 310.0, 0.05);
  // At t = tau the rise should be ~63% of final.
  const std::size_t i_tau = 100;  // 50 s / 0.5 s
  const double rise = tr.temperatures[i_tau][a] - 300.0;
  EXPECT_NEAR(rise, 10.0 * (1.0 - std::exp(-1.0)), 0.15);
}

TEST(ThermalNetwork, TransientBadStepThrows) {
  at::ThermalNetwork net;
  net.add_boundary("amb", 300.0);
  EXPECT_THROW(net.solve_transient(1.0, 0.0, {300.0}), std::invalid_argument);
  EXPECT_THROW(net.solve_transient(1.0, 0.1, {300.0, 300.0}), std::invalid_argument);
}
