// Plate-fin heat sink model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "thermal/heatsink.hpp"

namespace at = aeropack::thermal;

namespace {
at::HeatSink standard_sink() { return at::HeatSink{}; }
}  // namespace

TEST(HeatSink, GeometryDerivations) {
  const auto hs = standard_sink();
  EXPECT_GE(hs.fin_count(), 10);
  EXPECT_GT(hs.fin_area(), 5.0 * hs.exposed_base_area());
  EXPECT_NO_THROW(hs.validate());
}

TEST(HeatSink, ValidationCatchesNonsense) {
  at::HeatSink hs;
  hs.fin_gap = 0.0;
  EXPECT_THROW(hs.validate(), std::invalid_argument);
  at::HeatSink wide;
  wide.fin_thickness = 0.2;  // one fin fills the base
  EXPECT_THROW(wide.validate(), std::invalid_argument);
  at::HeatSink eps;
  eps.emissivity = 1.5;
  EXPECT_THROW(eps.validate(), std::invalid_argument);
}

TEST(HeatSink, NaturalConductancePlausible) {
  // 0.15 x 0.10 m sink, 30 mm fins, 40 K over ambient: R ~ 1-2 K/W is the
  // catalogue figure for this size class under natural convection.
  const auto hs = standard_sink();
  const double g = at::heatsink_conductance_natural(hs, 353.15, 313.15);
  EXPECT_GT(g, 0.4);
  EXPECT_LT(g, 5.0);
}

TEST(HeatSink, ForcedBeatsNatural) {
  const auto hs = standard_sink();
  const double gn = at::heatsink_conductance_natural(hs, 353.15, 313.15);
  const double gf = at::heatsink_conductance_forced(hs, 4.0, 333.15);
  EXPECT_GT(gf, 2.0 * gn);
  EXPECT_THROW(at::heatsink_conductance_forced(hs, 0.0, 333.15), std::invalid_argument);
}

TEST(HeatSink, MoreVelocityMoreConductance) {
  const auto hs = standard_sink();
  EXPECT_GT(at::heatsink_conductance_forced(hs, 8.0, 333.15),
            at::heatsink_conductance_forced(hs, 2.0, 333.15));
}

TEST(HeatSink, ResistanceIncludesBaseConduction) {
  const auto hs = standard_sink();
  const double r = at::heatsink_resistance(hs, 353.15, 313.15, 4.0);
  const double r_base = hs.base_thickness / (hs.conductivity * hs.base_length * hs.base_width);
  EXPECT_GT(r, r_base);
  EXPECT_LT(r, 5.0);
}

TEST(HeatSink, BaseTemperatureSolvesEnergyBalance) {
  const auto hs = standard_sink();
  const double t_amb = 313.15;
  const double t_base = at::heatsink_base_temperature(hs, 20.0, t_amb);
  EXPECT_GT(t_base, t_amb);
  const double r = at::heatsink_resistance(hs, t_base, t_amb);
  EXPECT_NEAR((t_base - t_amb) / r, 20.0, 0.05);
  EXPECT_DOUBLE_EQ(at::heatsink_base_temperature(hs, 0.0, t_amb), t_amb);
}

TEST(HeatSink, TallerFinsHelpUntilEfficiencyBites) {
  at::HeatSink small = standard_sink();
  small.fin_height = 10e-3;
  at::HeatSink tall = standard_sink();
  tall.fin_height = 40e-3;
  const double g_small = at::heatsink_conductance_natural(small, 353.15, 313.15);
  const double g_tall = at::heatsink_conductance_natural(tall, 353.15, 313.15);
  EXPECT_GT(g_tall, g_small);
  EXPECT_LT(g_tall, 4.0 * g_small);  // sub-linear: fin efficiency drops
}

TEST(HeatSink, OptimalGapMatchesBarCohenOrder) {
  // For ~0.1 m plates at moderate dT, s_opt is in the 6-12 mm range.
  const double s = at::optimal_fin_gap_natural(0.1, 353.15, 313.15);
  EXPECT_GT(s, 4e-3);
  EXPECT_LT(s, 15e-3);
  // Altitude widens the optimum (weaker buoyancy).
  const double s_alt = at::optimal_fin_gap_natural(0.1, 353.15, 313.15, 30000.0);
  EXPECT_GT(s_alt, s);
}

TEST(HeatSink, NearOptimalGapBeatsExtremes) {
  const double t_base = 353.15, t_amb = 313.15;
  const double s_opt = at::optimal_fin_gap_natural(standard_sink().base_length, t_base, t_amb);
  const auto with_gap = [&](double gap) {
    at::HeatSink hs = standard_sink();
    hs.fin_gap = gap;
    return at::heatsink_conductance_natural(hs, t_base, t_amb);
  };
  const double g_opt = with_gap(s_opt);
  EXPECT_GT(g_opt, with_gap(0.4 * s_opt));  // choked channels
  EXPECT_GT(g_opt, with_gap(4.0 * s_opt));  // too few fins
}
