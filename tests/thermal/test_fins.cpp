// Fin conductances — the seat-structure heat sink physics.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "materials/solid.hpp"
#include "thermal/fins.hpp"

namespace at = aeropack::thermal;
namespace am = aeropack::materials;

TEST(Fin, LongFinLimitSqrtHpkA) {
  // tanh(mL) -> 1: G -> sqrt(h P k A).
  const double h = 10.0, p = 0.1, k = 167.0, a = 8e-4;
  const double g = at::fin_conductance(h, p, k, a, 100.0);
  EXPECT_NEAR(g, std::sqrt(h * p * k * a), 1e-9);
}

TEST(Fin, ShortFinLimitHPL) {
  // mL << 1: G ~ h P L (all surface at base temperature).
  const double h = 5.0, p = 0.1, k = 400.0, a = 1e-3, l = 0.01;
  const double g = at::fin_conductance(h, p, k, a, l);
  EXPECT_NEAR(g, h * p * l, 0.01 * h * p * l);
}

TEST(Fin, EfficiencyBetweenZeroAndOne) {
  for (double l : {0.01, 0.1, 0.5, 2.0}) {
    const double eta = at::fin_efficiency(12.0, 0.1, 167.0, 8e-4, l);
    EXPECT_GT(eta, 0.0);
    EXPECT_LE(eta, 1.0);
  }
}

TEST(Fin, EfficiencyDecreasesWithLength) {
  const double e1 = at::fin_efficiency(12.0, 0.1, 167.0, 8e-4, 0.1);
  const double e2 = at::fin_efficiency(12.0, 0.1, 167.0, 8e-4, 1.0);
  EXPECT_GT(e1, e2);
}

TEST(Fin, ZeroFilmGivesZeroConductance) {
  EXPECT_DOUBLE_EQ(at::fin_conductance(0.0, 0.1, 167.0, 8e-4, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(at::fin_efficiency(0.0, 0.1, 167.0, 8e-4, 0.5), 1.0);
}

TEST(Fin, InvalidInputsThrow) {
  EXPECT_THROW(at::fin_parameter(10.0, 0.0, 167.0, 1e-4), std::invalid_argument);
  EXPECT_THROW(at::fin_conductance(10.0, 0.1, 167.0, 1e-4, 0.0), std::invalid_argument);
}

TEST(RodSink, AluminumVsCarbonCompositeRatio) {
  // The paper's carbon seat observation: low-k structure is a much weaker
  // heat sink. At these proportions the ratio is large.
  const double h = 12.0, d = 0.032;
  const double g_al = at::rod_sink_conductance(h, d, am::aluminum_6061().conductivity, 0.55, 0.55);
  const double g_cf = at::rod_sink_conductance(h, d, am::carbon_composite().conductivity, 0.55, 0.55);
  EXPECT_GT(g_al, 3.0 * g_cf);
}

TEST(RodSink, AsymmetricHalvesAdd) {
  const double h = 12.0, d = 0.032, k = 167.0;
  const double g = at::rod_sink_conductance(h, d, k, 0.3, 0.7);
  const double g1 = at::rod_sink_conductance(h, d, k, 0.3, 0.3) / 2.0;
  const double g2 = at::rod_sink_conductance(h, d, k, 0.7, 0.7) / 2.0;
  EXPECT_NEAR(g, g1 * 2.0 / 2.0 + g2 * 2.0 / 2.0 + (g1 + g2) - (g1 + g2), g * 0.01);
  EXPECT_NEAR(g, g1 + g2, 1e-12);
}
