// View factors and gray-body enclosure radiosity.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/convection.hpp"
#include "thermal/radiation.hpp"

namespace at = aeropack::thermal;
namespace an = aeropack::numeric;

TEST(ViewFactor, ParallelPlatesLimits) {
  // Very close plates: F -> 1; very far: F -> 0.
  EXPECT_NEAR(at::view_factor_parallel_rectangles(1.0, 1.0, 0.001), 1.0, 0.01);
  EXPECT_LT(at::view_factor_parallel_rectangles(1.0, 1.0, 100.0), 0.001);
}

TEST(ViewFactor, ParallelSquaresHandbookValue) {
  // Unit squares at unit spacing: F ~ 0.1998 (handbook).
  EXPECT_NEAR(at::view_factor_parallel_rectangles(1.0, 1.0, 1.0), 0.1998, 0.002);
}

TEST(ViewFactor, PerpendicularHandbookValue) {
  // Equal squares sharing an edge: F ~ 0.2 (handbook 0.20004).
  EXPECT_NEAR(at::view_factor_perpendicular_rectangles(1.0, 1.0, 1.0), 0.200, 0.003);
}

TEST(ViewFactor, InvalidInputsThrow) {
  EXPECT_THROW(at::view_factor_parallel_rectangles(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(at::view_factor_perpendicular_rectangles(1.0, 1.0, 0.0),
               std::invalid_argument);
}

namespace {
/// Two infinite-parallel-plate-like surfaces closed by forcing F12 = 1.
at::RadiationEnclosure two_plates(double e1, double t1, double e2, double t2) {
  std::vector<at::RadiationSurface> s = {{"hot", 1.0, e1, t1}, {"cold", 1.0, e2, t2}};
  an::Matrix f(2, 2);
  f(0, 1) = 1.0;
  f(1, 0) = 1.0;
  return at::RadiationEnclosure(std::move(s), std::move(f));
}
}  // namespace

TEST(Radiosity, BlackParallelPlatesMatchStefanBoltzmann) {
  const auto enc = two_plates(1.0, 500.0, 1.0, 300.0);
  const auto sol = enc.solve();
  const double q_exact =
      at::kStefanBoltzmann * (std::pow(500.0, 4.0) - std::pow(300.0, 4.0));
  EXPECT_NEAR(sol.net_heat[0], q_exact, 1e-6 * q_exact);
  EXPECT_NEAR(sol.net_heat[1], -q_exact, 1e-6 * q_exact);
}

TEST(Radiosity, GrayParallelPlatesMatchClosedForm) {
  // q = sigma (T1^4 - T2^4) / (1/e1 + 1/e2 - 1) for equal-area facing plates.
  const double e1 = 0.8, e2 = 0.5;
  const auto enc = two_plates(e1, 450.0, e2, 300.0);
  const auto sol = enc.solve();
  const double q_exact = at::kStefanBoltzmann *
                         (std::pow(450.0, 4.0) - std::pow(300.0, 4.0)) /
                         (1.0 / e1 + 1.0 / e2 - 1.0);
  EXPECT_NEAR(sol.net_heat[0], q_exact, 1e-9 * std::fabs(q_exact) + 1e-9);
}

TEST(Radiosity, EnergyConservationAcrossEnclosure) {
  // Three-surface box: two prescribed, one adiabatic shield. Net heats must
  // sum to zero and the shield must carry none.
  std::vector<at::RadiationSurface> s = {{"hot", 1.0, 0.9, 420.0},
                                         {"cold", 1.0, 0.7, 300.0},
                                         {"shield", 2.0, 0.5, 0.0}};
  an::Matrix f(3, 3);
  f(0, 1) = 0.3;
  f(0, 2) = 0.7;
  f(1, 2) = 0.7;
  f(1, 0) = 0.3;  // filled by reciprocity anyway
  // Shield sees both plates: F20 = 0.35, F21 = 0.35 by reciprocity; rest self.
  f(2, 2) = 0.3;
  at::RadiationEnclosure enc(std::move(s), std::move(f));
  const auto sol = enc.solve();
  EXPECT_NEAR(sol.net_heat[0] + sol.net_heat[1] + sol.net_heat[2], 0.0, 1e-8);
  EXPECT_NEAR(sol.net_heat[2], 0.0, 1e-8);
  // The floating shield settles between the two plate temperatures.
  EXPECT_GT(sol.temperatures[2], 300.0);
  EXPECT_LT(sol.temperatures[2], 420.0);
}

TEST(Radiosity, LinearizedConductanceMatchesDirectExchange) {
  const auto enc = two_plates(0.9, 350.0, 0.9, 300.0);
  const double g = enc.linearized_conductance(0, 1);
  const auto sol = enc.solve();
  EXPECT_NEAR(g * (350.0 - 300.0), sol.net_heat[0], 1e-6 * std::fabs(sol.net_heat[0]));
}

TEST(Radiosity, BadViewFactorsRejected) {
  std::vector<at::RadiationSurface> s = {{"a", 1.0, 0.9, 400.0}, {"b", 1.0, 0.9, 300.0}};
  an::Matrix f(2, 2);  // rows sum to 0, not 1
  EXPECT_THROW(at::RadiationEnclosure(std::move(s), std::move(f)), std::invalid_argument);
  std::vector<at::RadiationSurface> bad = {{"a", 0.0, 0.9, 400.0}, {"b", 1.0, 0.9, 300.0}};
  an::Matrix f2(2, 2);
  f2(0, 1) = 1.0;
  f2(1, 0) = 1.0;
  EXPECT_THROW(at::RadiationEnclosure(std::move(bad), std::move(f2)), std::invalid_argument);
}

TEST(TwoSurfaceExchange, EnclosedBodyFormula) {
  // Small body (A1) inside a large enclosure: q -> e1 A1 sigma (T1^4 - T2^4).
  const double q = at::two_surface_exchange(0.1, 0.8, 400.0, 100.0, 0.2, 300.0);
  const double q_limit =
      0.8 * 0.1 * at::kStefanBoltzmann * (std::pow(400.0, 4.0) - std::pow(300.0, 4.0));
  EXPECT_NEAR(q, q_limit, 0.02 * q_limit);
  EXPECT_THROW(at::two_surface_exchange(0.0, 0.8, 400.0, 1.0, 0.5, 300.0),
               std::invalid_argument);
}
