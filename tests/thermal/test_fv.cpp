// 3-D finite-volume conduction solver.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "exec/context.hpp"
#include "materials/solid.hpp"
#include "numeric/grain.hpp"
#include "thermal/fv.hpp"

namespace at = aeropack::thermal;
namespace am = aeropack::materials;

namespace {
at::FvModel slab_model(std::size_t nx, double k) {
  // 1 m x 0.1 m x 0.1 m bar discretized along x.
  at::FvModel m(at::FvGrid::uniform(1.0, 0.1, 0.1, nx, 1, 1));
  at::CellRange all = m.all_cells();
  m.set_conductivity(all, k, k, k);
  return m;
}
}  // namespace

TEST(FvGrid, IndexingAndVolumes) {
  const auto g = at::FvGrid::uniform(1.0, 2.0, 3.0, 2, 4, 6);
  EXPECT_EQ(g.cell_count(), 48u);
  EXPECT_DOUBLE_EQ(g.cell_volume(0, 0, 0), 0.5 * 0.5 * 0.5);
  EXPECT_DOUBLE_EQ(g.lx(), 1.0);
  EXPECT_DOUBLE_EQ(g.lz(), 3.0);
  EXPECT_DOUBLE_EQ(g.x_center(1), 0.75);
}

TEST(FvGrid, InvalidInputsThrow) {
  EXPECT_THROW(at::FvGrid::uniform(0.0, 1.0, 1.0, 2, 2, 2), std::invalid_argument);
  EXPECT_THROW(at::FvGrid::uniform(1.0, 1.0, 1.0, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(at::FvGrid({1.0, -1.0}, {1.0}, {1.0}), std::invalid_argument);
}

TEST(FvModel, OneDFixedTemperatureLinearProfile) {
  // Fixed 400 K at x=0, 300 K at x=1: linear profile, flux = k A dT / L.
  auto m = slab_model(20, 10.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(400.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  // Cell centers: T(x) = 400 - 100 x.
  for (std::size_t i = 0; i < 20; ++i) {
    const double x = m.grid().x_center(i);
    EXPECT_NEAR(sol.temperatures[m.grid().index(i, 0, 0)], 400.0 - 100.0 * x, 1e-6);
  }
  EXPECT_LT(sol.energy_residual, 1e-8);
}

TEST(FvModel, UniformSourceParabolicProfile) {
  // Insulated except fixed ends at 300 K with uniform volumetric source:
  // T(x) = 300 + q'''/(2k) x (L - x); peak at center = 300 + q''' L^2 / (8 k).
  const double k = 5.0;
  const double power = 100.0;  // W over volume 0.01 m^3 -> q''' = 1e4 W/m^3
  auto m = slab_model(40, k);
  m.add_power(m.all_cells(), power);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
  const auto sol = m.solve_steady();
  const double qv = power / 0.01;
  const double peak_expected = 300.0 + qv * 1.0 / (8.0 * k);
  EXPECT_NEAR(sol.max_temperature, peak_expected, 0.5);
}

TEST(FvModel, ConvectionBoundaryMatchesLumpedResistance) {
  // All heat leaves through one convective face: T_cell ~ T_inf + q/(hA) + half-cell.
  auto m = slab_model(10, 100.0);
  m.add_power(m.all_cells(), 50.0);
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(20.0, 300.0));
  const auto sol = m.solve_steady();
  // Face area 0.01 m^2, h = 20: film rise = 50 / (20 * 0.01) = 250 K.
  const double t_face_cell = sol.temperatures[m.grid().index(9, 0, 0)];
  EXPECT_GT(t_face_cell, 300.0 + 250.0);
  EXPECT_LT(sol.energy_residual, 1e-6 * 50.0 + 1e-9);
}

TEST(FvModel, EnergyConservedWithMixedBoundaries) {
  at::FvModel m(at::FvGrid::uniform(0.2, 0.15, 0.002, 8, 6, 2));
  m.set_material(am::aluminum_6061());
  m.add_power({2, 5, 2, 4, 0, 2}, 30.0);
  m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(50.0, 320.0));
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(310.0));
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.energy_residual, 1e-6 * 30.0 + 1e-9);
}

TEST(FvModel, RadiationBoundaryPicardConverges) {
  auto m = slab_model(10, 50.0);
  m.add_power(m.all_cells(), 20.0);
  m.set_boundary(at::Face::XMax,
                 at::BoundaryCondition::convection_radiation(5.0, 300.0, 0.9));
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.picard_iterations, 1u);
  EXPECT_LT(sol.energy_residual, 0.01);
}

TEST(FvModel, PicardLoopAssemblesStructureOnce) {
  // Nonlinear (radiation) boundary forces multiple Picard passes, but the
  // CSR structure must be assembled exactly once — passes only rewrite the
  // boundary film terms in place.
  auto m = slab_model(10, 50.0);
  m.add_power(m.all_cells(), 20.0);
  m.set_boundary(at::Face::XMax,
                 at::BoundaryCondition::convection_radiation(5.0, 300.0, 0.9));
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.picard_iterations, 1u);
  EXPECT_EQ(sol.structure_assemblies, 1u);
}

TEST(FvModel, TransientAssemblesStructureOnceAndWarmStarts) {
  at::FvModel m(at::FvGrid::uniform(0.02, 0.02, 0.02, 4, 4, 4));
  m.set_material(am::aluminum_6061());
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(50.0, 300.0));
  const auto tr = m.solve_transient(10.0, 0.5, 350.0);
  EXPECT_EQ(tr.structure_assemblies, 1u);
  EXPECT_EQ(tr.temperatures.size(), 21u);
  // Warm-started steps converge in far fewer inner iterations than the
  // dimension bound (64 unknowns) per step would allow from a cold start.
  EXPECT_GT(tr.linear_iterations, 0u);
  EXPECT_LT(tr.linear_iterations, 20u * 64u);
}

TEST(FvModel, NoSinkThrows) {
  auto m = slab_model(4, 10.0);
  m.add_power(m.all_cells(), 1.0);
  EXPECT_THROW(m.solve_steady(), std::logic_error);
}

TEST(FvModel, HeatFluxBoundaryInjectsPower) {
  auto m = slab_model(10, 10.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::heat_flux(1000.0));  // 10 W over 0.01
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
  const auto sol = m.solve_steady();
  // Flux 1000 W/m^2 enters at x=0; the first cell center sits at x=0.05 and
  // the fixed boundary acts at the x=1 face: dT = q'' (1 - 0.05) / k = 95 K.
  const double t_hot = sol.temperatures[m.grid().index(0, 0, 0)];
  EXPECT_NEAR(t_hot, 395.0, 1.0);
}

TEST(FvModel, AnisotropicConductivityDirectional) {
  // kx >> kz (a heat-pipe drain along x): the in-plane path to the cold end
  // must lower the peak relative to a low-k isotropic board.
  const auto peak_for = [](double kx) {
    at::FvModel m(at::FvGrid::uniform(0.1, 0.02, 0.002, 10, 2, 2));
    m.set_conductivity(m.all_cells(), kx, 1.0, 0.3);
    m.add_power({0, 1, 0, 2, 0, 2}, 5.0);
    m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
    m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(5.0, 300.0));
    const auto sol = m.solve_steady();
    EXPECT_TRUE(sol.converged);
    return sol.max_temperature;
  };
  EXPECT_LT(peak_for(200.0) + 20.0, peak_for(1.0));
}

TEST(FvModel, PatchOverridesDefaultBoundary) {
  auto m = slab_model(10, 10.0);
  m.add_power(m.all_cells(), 10.0);
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::adiabatic());
  // Open a fixed-temperature window on part of the XMax face.
  at::CellRange patch{0, 0, 0, 1, 0, 1};
  m.set_boundary_patch(at::Face::XMax, patch, at::BoundaryCondition::fixed(300.0));
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.max_temperature, 300.0);
}

TEST(FvModel, TransientLumpedCoolingMatchesExponential) {
  // Small aluminum block cooling through convection: lumped tau = rho cp V / (h A).
  at::FvModel m(at::FvGrid::uniform(0.02, 0.02, 0.02, 2, 2, 2));
  m.set_material(am::aluminum_6061());
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(50.0, 300.0));
  const double rho_cp = 2700.0 * 896.0;
  const double tau = rho_cp * 8e-6 / (50.0 * 4e-4);
  const auto tr = m.solve_transient(tau, tau / 200.0, 350.0);
  const double t_end = tr.temperatures.back()[0];
  // After one time constant: dT ~ 50 * exp(-1) (Biot is small, lumped valid).
  EXPECT_NEAR(t_end - 300.0, 50.0 * std::exp(-1.0), 1.5);
}

TEST(FvModel, MeshRefinementConverges) {
  // Peak temperature of the parabolic-profile problem converges with mesh.
  const double k = 5.0;
  double prev_err = 1e9;
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    auto m = slab_model(n, k);
    m.add_power(m.all_cells(), 100.0);
    m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
    m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
    const auto sol = m.solve_steady();
    const double exact = 300.0 + 1e4 / (8.0 * k);
    const double err = std::fabs(sol.max_temperature - exact);
    EXPECT_LE(err, prev_err + 1e-9);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.5);
}

TEST(FvModel, ArithmeticSchemeDiffersOnContrast) {
  // Two-material bar: harmonic mean handles the jump correctly; arithmetic
  // overestimates the interface conductance.
  auto make = [](at::FaceConductanceScheme scheme) {
    at::FvModel m(at::FvGrid::uniform(1.0, 0.1, 0.1, 20, 1, 1));
    m.set_conductivity({0, 10, 0, 1, 0, 1}, 100.0, 100.0, 100.0);
    m.set_conductivity({10, 20, 0, 1, 0, 1}, 1.0, 1.0, 1.0);
    m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(400.0));
    m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(300.0));
    at::FvOptions opts;
    opts.scheme = scheme;
    return m.solve_steady(opts);
  };
  const auto harm = make(at::FaceConductanceScheme::HarmonicMean);
  const auto arith = make(at::FaceConductanceScheme::ArithmeticMean);
  // Exact through-flux: dT / (L1/k1 + L2/k2) per area.
  const double q_exact = 100.0 / (0.5 / 100.0 + 0.5 / 1.0) * 0.01;
  EXPECT_NEAR(harm.energy_residual, 0.0, 1e-6);
  (void)q_exact;
  // The two schemes must disagree measurably on the mid temperature.
  const double t_h = harm.temperatures[10];
  const double t_a = arith.temperatures[10];
  EXPECT_GT(std::fabs(t_h - t_a), 0.5);
}

namespace {
/// A 3-D block with a hot component footprint and convective walls — big
/// enough (24^3) that the Chebyshev polynomial has a spectrum to bite on.
at::FvModel component_block() {
  at::FvModel m(at::FvGrid::uniform(0.1, 0.1, 0.1, 24, 24, 24));
  m.set_material(am::aluminum_6061());
  m.add_power({6, 18, 6, 18, 0, 3}, 40.0);
  m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(25.0, 300.0));
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(10.0, 300.0));
  return m;
}
}  // namespace

TEST(FvChebyshev, CutsCgIterationsWithoutMovingTheField) {
  const at::FvModel m = component_block();
  const auto jacobi = m.solve_steady();
  ASSERT_TRUE(jacobi.converged);

  at::FvOptions opts;
  opts.linear.chebyshev_degree = 3;
  const auto cheby = m.solve_steady(opts);
  ASSERT_TRUE(cheby.converged);

  // The PR's acceptance bar: >= 30% fewer inner CG iterations.
  EXPECT_LE(cheby.linear_iterations, (jacobi.linear_iterations * 7) / 10)
      << "cheby " << cheby.linear_iterations << " vs jacobi " << jacobi.linear_iterations;

  // Same discrete system, same converged field (both at the default 1e-10
  // relative residual).
  double max_diff = 0.0;
  for (std::size_t i = 0; i < jacobi.temperatures.size(); ++i)
    max_diff = std::max(max_diff,
                        std::fabs(cheby.temperatures[i] - jacobi.temperatures[i]));
  EXPECT_LT(max_diff, 1e-5);
}

TEST(FvChebyshev, ContextConfigEnablesItBitIdenticallyAcrossThreads) {
  // cg_chebyshev_degree flows ExecutionConfig -> context solve_steady ->
  // IterativeOptions, and the accelerated solve stays bit-identical across
  // thread counts (forced through the real pool, not the serial fallback).
  const at::FvModel m = component_block();
  const auto plain = m.solve_steady();
  ASSERT_TRUE(plain.converged);

  aeropack::numeric::grain::ScopedForceFanOut force;
  at::FvSolution ref;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    aeropack::ExecutionConfig cfg;
    cfg.threads = t;
    cfg.cg_chebyshev_degree = 3;
    aeropack::ExecutionContext ctx(cfg);
    const at::FvSolution sol = m.solve_steady(ctx);
    ASSERT_TRUE(sol.converged);
    // The context config actually engaged the accelerated path.
    EXPECT_LT(sol.linear_iterations, plain.linear_iterations);
    if (t == 1) {
      ref = sol;
      continue;
    }
    EXPECT_EQ(sol.linear_iterations, ref.linear_iterations) << "t=" << t;
    EXPECT_EQ(sol.temperatures, ref.temperatures) << "t=" << t;
  }
}
