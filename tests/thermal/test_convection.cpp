// Convection and radiation correlations.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "materials/air.hpp"
#include "thermal/convection.hpp"

namespace at = aeropack::thermal;

TEST(NaturalConvection, VerticalPlateTypicalRange) {
  // 0.3 m plate, 40 K over ambient: handbook h ~ 4-5 W/m^2 K.
  const double h = at::h_natural_vertical_plate(340.0, 300.0, 0.3);
  EXPECT_GT(h, 3.0);
  EXPECT_LT(h, 7.0);
}

TEST(NaturalConvection, ZeroDeltaTGivesZero) {
  EXPECT_DOUBLE_EQ(at::h_natural_vertical_plate(300.0, 300.0, 0.3), 0.0);
}

TEST(NaturalConvection, HotSideUpBeatsHotSideDown) {
  const double up = at::h_natural_horizontal_up(340.0, 300.0, 0.1);
  const double down = at::h_natural_horizontal_down(340.0, 300.0, 0.1);
  EXPECT_GT(up, down);
}

TEST(NaturalConvection, IncreasesWithDeltaT) {
  const double h1 = at::h_natural_vertical_plate(310.0, 300.0, 0.2);
  const double h2 = at::h_natural_vertical_plate(360.0, 300.0, 0.2);
  EXPECT_GT(h2, h1);
}

TEST(NaturalConvection, AltitudeDerating) {
  // The paper's avionics context: convection weakens with air density.
  const double sl = at::h_natural_vertical_plate(340.0, 300.0, 0.2, 101325.0);
  const double alt = at::h_natural_vertical_plate(340.0, 300.0, 0.2, 30000.0);
  EXPECT_GT(sl, 1.5 * alt);
}

TEST(NaturalConvection, CylinderTypicalRange) {
  const double h = at::h_natural_horizontal_cylinder(340.0, 300.0, 0.03);
  EXPECT_GT(h, 5.0);
  EXPECT_LT(h, 12.0);
}

TEST(ForcedConvection, FlatPlateLaminarMatchesCorrelation) {
  // Re = 1e5 at 0.5 m needs U ~ 3.2 m/s at 300 K: Nu = 0.664 sqrt(Re) Pr^1/3.
  const auto air = aeropack::materials::air_at(300.0);
  const double u = 1e5 * air.kinematic_viscosity() / 0.5;
  const double h = at::h_forced_flat_plate(u, 0.5, 300.0);
  const double nu_expected = 0.664 * std::sqrt(1e5) * std::cbrt(air.prandtl);
  EXPECT_NEAR(h, nu_expected * air.conductivity / 0.5, 1e-6);
}

TEST(ForcedConvection, TurbulentBeatsLaminarAtSameLength) {
  const double h_lam = at::h_forced_flat_plate(2.0, 0.3, 310.0);
  const double h_turb = at::h_forced_flat_plate(30.0, 0.3, 310.0);
  EXPECT_GT(h_turb, 4.0 * h_lam);
}

TEST(ForcedConvection, DuctLaminarPlateau) {
  // Below transition, h is velocity independent (Nu = 7.54).
  const double h1 = at::h_forced_duct(0.5, 0.008, 310.0);
  const double h2 = at::h_forced_duct(1.0, 0.008, 310.0);
  EXPECT_NEAR(h1, h2, 1e-9);
  EXPECT_GT(h1, 10.0);
}

TEST(ForcedConvection, ZeroVelocityGivesZero) {
  EXPECT_DOUBLE_EQ(at::h_forced_flat_plate(0.0, 0.3, 300.0), 0.0);
  EXPECT_DOUBLE_EQ(at::h_forced_duct(0.0, 0.01, 300.0), 0.0);
}

TEST(ForcedConvection, InvalidInputsThrow) {
  EXPECT_THROW(at::h_forced_flat_plate(-1.0, 0.3, 300.0), std::invalid_argument);
  EXPECT_THROW(at::h_forced_duct(1.0, 0.0, 300.0), std::invalid_argument);
}

TEST(Radiation, LinearizedCoefficientMatchesStefanBoltzmann) {
  const double h = at::h_radiation(350.0, 300.0, 1.0);
  const double q = h * 50.0;
  const double q_exact =
      at::kStefanBoltzmann * (std::pow(350.0, 4.0) - std::pow(300.0, 4.0));
  EXPECT_NEAR(q, q_exact, 1e-9);
}

TEST(Radiation, EmissivityBoundsChecked) {
  EXPECT_THROW(at::h_radiation(350.0, 300.0, -0.1), std::invalid_argument);
  EXPECT_THROW(at::h_radiation(350.0, 300.0, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(at::h_radiation(350.0, 300.0, 0.0), 0.0);
}

TEST(Orientation, DispatcherMatchesDirectCalls) {
  EXPECT_DOUBLE_EQ(
      at::h_natural_plate(at::SurfaceOrientation::Vertical, 340.0, 300.0, 0.2),
      at::h_natural_vertical_plate(340.0, 300.0, 0.2));
  EXPECT_DOUBLE_EQ(
      at::h_natural_plate(at::SurfaceOrientation::HorizontalUp, 340.0, 300.0, 0.2),
      at::h_natural_horizontal_up(340.0, 300.0, 0.2));
}
