// Mission golden: the DO-160 thermal-shock campaign of the canonical SEB
// box frozen as a JSON baseline. The adaptive controller is deterministic
// at any thread count, so every recorded quantity — including the accepted
// step count — is an exact repeatable number. Regenerate with
// AEROPACK_UPDATE_GOLDEN=1 ctest -L verify.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "rom/canonical.hpp"
#include "verify/golden.hpp"

namespace am = aeropack::mission;
namespace ar = aeropack::rom;
namespace av = aeropack::verify;

namespace {

void expect_golden(const av::GoldenRecorder& rec) {
  std::string joined;
  for (const auto& line : rec.finish()) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

}  // namespace

TEST(MissionGolden, Do160ShockCampaignOnSebBox) {
  ar::CanonicalCase cc = ar::seb_box();
  ar::RomInputs inputs;
  inputs.sink_temperatures.assign(cc.spec.ports.size(), 228.15);
  inputs.map_powers = {40.0, 15.0};
  ar::apply_inputs(cc.model, cc.spec, inputs);

  // Compressed DO-160 shock: the full 100 K swing at an accelerated ramp so
  // the golden march stays quick, same five-phase shape as qualification.
  const am::Profile profile = am::Profile::do160_thermal_shock(228.15, 328.15, 50.0, 240.0);
  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.05;
  const am::MissionSolution sol = am::run_fv_mission(cc.model, profile, 293.15, adaptive);

  av::GoldenRecorder rec("mission_do160_shock", AEROPACK_GOLDEN_DIR);
  rec.record("sim_seconds", profile.total_duration());
  rec.record("steps_accepted", static_cast<double>(sol.steps_accepted));
  rec.record("steps_rejected", static_cast<double>(sol.steps_rejected));
  rec.record("phase_transitions", static_cast<double>(sol.phase_transitions));
  rec.record("t_final_max", sol.t_max.back());
  rec.record("t_final_min", sol.t_min.back());
  rec.record("t_final_mean", sol.t_mean.back());
  rec.record("t_peak_max", *std::max_element(sol.t_max.begin(), sol.t_max.end()));
  rec.record("t_low_min", *std::min_element(sol.t_min.begin(), sol.t_min.end()));
  expect_golden(rec);
}
