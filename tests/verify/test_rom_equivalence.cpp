// ROM-vs-full-FV equivalence ladder on the canonical compact models: the
// energy-norm error must shrink monotonically with basis rank (Galerkin
// optimality over the nested POD basis), the full-rank reduction must agree
// with the reference solve to verification accuracy, and the early-rank
// error trajectory is golden-frozen so silent snapshot/projection changes
// fail loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "rom/canonical.hpp"
#include "verify/golden.hpp"
#include "verify/rom_check.hpp"

namespace ar = aeropack::rom;
namespace av = aeropack::verify;

namespace {

const char* golden_dir() { return AEROPACK_GOLDEN_DIR; }

ar::RomInputs board_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {313.15, 318.15, 303.15};
  in.map_powers = {12.0, 8.0};
  return in;
}

ar::RomInputs seb_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {308.15, 308.15, 298.15};
  in.map_powers = {45.0, 15.0};
  return in;
}

void expect_ladder_contract(const av::RomLadderResult& ladder) {
  ASSERT_FALSE(ladder.rungs.empty());
  EXPECT_TRUE(ladder.monotone) << "energy-norm error must not grow with rank";
  // Acceptance bar: relative error at the frozen (full usable) rank.
  EXPECT_LE(ladder.full_rank_field_error, 1e-3);
  EXPECT_LE(ladder.rungs.back().energy_error, 1e-3);
  // The reference solve itself is healthy.
  EXPECT_LT(std::abs(ladder.fv_energy_residual), 1e-5);
  // The a-priori estimate tracks the truncation: wherever the estimate is
  // zero (full basis) the true error must be at verification accuracy.
  for (const auto& rung : ladder.rungs) {
    EXPECT_GE(rung.energy_error, 0.0);
    if (rung.rank < ladder.rungs.size())
      EXPECT_GT(rung.estimate, 0.0) << "truncated rank " << rung.rank;
  }
}

void freeze_early_rungs(const char* name, const av::RomLadderResult& ladder) {
  // Early-rank errors are O(1e-1..1e-4): numerically stable to freeze.
  // Near-round-off tail rungs are asserted by bound above, not frozen.
  av::GoldenRecorder rec(name, golden_dir(), "verify");
  const std::size_t n = std::min<std::size_t>(3, ladder.rungs.size());
  for (std::size_t i = 0; i < n; ++i) {
    rec.record("rank" + std::to_string(ladder.rungs[i].rank) + ".energy_error",
               ladder.rungs[i].energy_error);
    rec.record("rank" + std::to_string(ladder.rungs[i].rank) + ".port_temp_error",
               ladder.rungs[i].port_temp_error);
  }
  std::string joined;
  for (const auto& line : rec.finish(1e-5)) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

}  // namespace

TEST(RomEquivalence, Fig2BoardLadderMonotoneAndTight) {
  const ar::CanonicalCase c = ar::fig2_board();
  const av::RomLadderResult ladder =
      av::rom_equivalence_ladder(c.model, c.spec, board_inputs());
  expect_ladder_contract(ladder);
  freeze_early_rungs("rom_ladder_fig2", ladder);
}

TEST(RomEquivalence, SebBoxLadderMonotoneAndTight) {
  const ar::CanonicalCase c = ar::seb_box();
  const av::RomLadderResult ladder = av::rom_equivalence_ladder(c.model, c.spec, seb_inputs());
  expect_ladder_contract(ladder);
  freeze_early_rungs("rom_ladder_seb", ladder);
}

TEST(RomEquivalence, EnrichedBasisDoesNotDegrade) {
  // Transient enrichment adds snapshots; the steady equivalence must stay
  // within the same acceptance bar (more basis vectors, same target field).
  ar::RomOptions opts;
  opts.transient_samples_per_map = 2;
  opts.transient_time_scale = 10.0;
  const ar::CanonicalCase c = ar::fig2_board();
  const av::RomLadderResult ladder =
      av::rom_equivalence_ladder(c.model, c.spec, board_inputs(), opts);
  expect_ladder_contract(ladder);
}
