// Cross-solver equivalence: the slab / fin / conduction-card families solved
// three ways (closed form, ThermalNetwork, FvModel) must agree, and the FV
// assembly-cache + warm-start fast path must reproduce a cold solve
// bit-for-bit.
#include <gtest/gtest.h>

#include "verify/cross_check.hpp"
#include "verify/tolerance.hpp"

namespace av = aeropack::verify;
namespace at = aeropack::thermal;

namespace {

// The network chains mirror the FV discretization exactly, so those two
// levels agree to linear-solver tolerance; the analytic reference differs by
// the O(h^2) discretization error at the chosen resolutions.
void expect_three_way_agreement(const av::CrossCheckResult& r) {
  EXPECT_LT(av::abs_error(r.fv, r.network), 1e-2) << r.name;      // [K]
  EXPECT_LT(av::abs_error(r.fv, r.analytic), 5e-2) << r.name;     // [K]
  EXPECT_LT(av::abs_error(r.network, r.analytic), 5e-2) << r.name;
}

void expect_deterministic_fast_path(const av::CrossCheckResult& r) {
  EXPECT_EQ(r.fv_structure_assemblies, 1u) << r.name;
  EXPECT_TRUE(av::bitwise_equal(r.fv_field, r.fv_field_repeat))
      << r.name << ": cached vs cold solve diverge at index "
      << av::first_bitwise_difference(r.fv_field, r.fv_field_repeat);
}

}  // namespace

TEST(CrossSolver, SlabThreeWayAgreement) {
  for (auto scheme :
       {at::FaceConductanceScheme::HarmonicMean, at::FaceConductanceScheme::ArithmeticMean}) {
    const auto r = av::cross_check_slab(64, scheme);
    expect_three_way_agreement(r);
    expect_deterministic_fast_path(r);
  }
}

TEST(CrossSolver, FinThreeWayAgreement) {
  for (auto scheme :
       {at::FaceConductanceScheme::HarmonicMean, at::FaceConductanceScheme::ArithmeticMean}) {
    const auto r = av::cross_check_fin(96, scheme);
    expect_three_way_agreement(r);
    expect_deterministic_fast_path(r);
  }
}

TEST(CrossSolver, CardThreeWayAgreement) {
  for (auto scheme :
       {at::FaceConductanceScheme::HarmonicMean, at::FaceConductanceScheme::ArithmeticMean}) {
    const auto r = av::cross_check_card(12, scheme);
    expect_three_way_agreement(r);
    expect_deterministic_fast_path(r);
  }
}

TEST(CrossSolver, SlabConvergesTowardAnalyticUnderRefinement) {
  const double coarse = av::abs_error(av::cross_check_slab(16).fv,
                                      av::cross_check_slab(16).analytic);
  const double fine = av::abs_error(av::cross_check_slab(64).fv,
                                    av::cross_check_slab(64).analytic);
  EXPECT_LT(fine, coarse);
}

TEST(CrossSolver, CardSeriesResistanceIsExact) {
  // A pure 1-D series path has zero truncation error: all three levels are
  // the same resistor sum, including the bond-line contact term.
  const auto r = av::cross_check_card(12);
  EXPECT_LT(av::abs_error(r.fv, r.analytic), 1e-6);
  EXPECT_LT(av::abs_error(r.network, r.analytic), 1e-6);
}

TEST(CrossSolver, NonlinearBoxPicardWarmStartIsDeterministic) {
  // Nonlinear boundaries force a multi-pass Picard loop with warm-started
  // CG; two independent solves must still match to the last bit.
  const auto model = av::nonlinear_box_model(8);
  const auto a = model.solve_steady();
  const auto b = model.solve_steady();
  ASSERT_TRUE(a.converged);
  EXPECT_GT(a.picard_iterations, 2u);  // actually nonlinear
  EXPECT_EQ(a.structure_assemblies, 1u);
  EXPECT_TRUE(av::bitwise_equal(a.temperatures, b.temperatures))
      << "diverges at index " << av::first_bitwise_difference(a.temperatures, b.temperatures);
  EXPECT_EQ(a.picard_iterations, b.picard_iterations);
  EXPECT_EQ(a.linear_iterations, b.linear_iterations);
}
