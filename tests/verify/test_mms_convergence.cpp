// Manufactured-solutions convergence ladders for the FV conduction solver.
// The scheme is formally second order; every path (steady/transient,
// harmonic/arithmetic face conductances, uniform/graded conductivity) must
// show an observed order >= 1.9 on the 8^3 -> 32^3 refinement ladder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "verify/mms.hpp"

namespace av = aeropack::verify;
namespace at = aeropack::thermal;

namespace {

const std::vector<std::size_t>& ladder() {
  static const std::vector<std::size_t> ns{8, 12, 16, 24, 32};
  return ns;
}

av::MmsCase uniform_case() { return av::mms_uniform_k(0.1, 0.1, 0.1, 20.0, 300.0, 40.0); }

av::MmsCase graded_case() {
  // Anisotropic box + 2.5:1 conductivity grading along x: arithmetic and
  // harmonic face conductances genuinely differ here.
  return av::mms_graded_k(0.1, 0.12, 0.08, 10.0, 1.5, 300.0, 40.0);
}

void expect_second_order(const av::MmsReport& r) {
  EXPECT_GE(r.observed_order, 1.9) << av::describe(r);
  EXPECT_LE(r.observed_order, 2.3) << av::describe(r);  // superconvergence = suspicious
  EXPECT_GT(r.fit_r_squared, 0.999) << av::describe(r);
  // The ladder must actually descend: each refinement shrinks the error.
  for (std::size_t i = 1; i < r.ladder.size(); ++i)
    EXPECT_LT(r.ladder[i].l2_error, r.ladder[i - 1].l2_error) << av::describe(r);
}

}  // namespace

TEST(MmsSteady, UniformConductivityHarmonicSecondOrder) {
  expect_second_order(
      av::mms_steady_order(uniform_case(), ladder(), at::FaceConductanceScheme::HarmonicMean));
}

TEST(MmsSteady, UniformConductivityArithmeticSecondOrder) {
  expect_second_order(av::mms_steady_order(uniform_case(), ladder(),
                                           at::FaceConductanceScheme::ArithmeticMean));
}

TEST(MmsSteady, GradedConductivityHarmonicSecondOrder) {
  expect_second_order(
      av::mms_steady_order(graded_case(), ladder(), at::FaceConductanceScheme::HarmonicMean));
}

TEST(MmsSteady, GradedConductivityArithmeticSecondOrder) {
  expect_second_order(
      av::mms_steady_order(graded_case(), ladder(), at::FaceConductanceScheme::ArithmeticMean));
}

TEST(MmsSteady, SchemesDifferOnGradedConductivity) {
  // Sanity that the two schemes are distinct code paths: on graded k the
  // rung errors must not coincide (on uniform k they are identical by
  // algebra, which is why the graded case exists).
  const auto harm =
      av::mms_steady_order(graded_case(), {8, 16}, at::FaceConductanceScheme::HarmonicMean);
  const auto arith =
      av::mms_steady_order(graded_case(), {8, 16}, at::FaceConductanceScheme::ArithmeticMean);
  EXPECT_NE(harm.ladder[0].l2_error, arith.ladder[0].l2_error);
}

TEST(MmsTransient, DecayModeHarmonicSecondOrder) {
  // Fundamental decay mode on a 0.1 m box of k=20, rho*cp=2e6: tau ~ 1/lambda
  // ~ 34 s, marched to ~1.2 tau with dt ~ h^2 refinement (4 steps at n=8).
  expect_second_order(av::mms_transient_order(0.1, 0.1, 0.1, 20.0, 2.0e6, 300.0, 40.0, 40.0,
                                              ladder(), 4,
                                              at::FaceConductanceScheme::HarmonicMean));
}

TEST(MmsTransient, DecayModeArithmeticSecondOrder) {
  expect_second_order(av::mms_transient_order(0.1, 0.1, 0.1, 20.0, 2.0e6, 300.0, 40.0, 40.0,
                                              ladder(), 4,
                                              at::FaceConductanceScheme::ArithmeticMean));
}

TEST(MmsHarness, RejectsDegenerateInputs) {
  EXPECT_THROW(av::mms_uniform_k(0.1, 0.1, 0.1, -1.0, 300.0, 40.0), std::invalid_argument);
  EXPECT_THROW(av::mms_graded_k(0.1, 0.1, 0.1, 10.0, -1.5, 300.0, 40.0), std::invalid_argument);
  EXPECT_THROW(av::observed_order({}), std::invalid_argument);
  EXPECT_THROW(av::mms_transient_order(0.1, 0.1, 0.1, 20.0, -1.0, 300.0, 40.0, 40.0, {8, 16},
                                       4, at::FaceConductanceScheme::HarmonicMean),
               std::invalid_argument);
}

TEST(MmsHarness, ObservedOrderRecoversExactSlope) {
  // Synthetic ladder err = C h^2 must fit slope 2 to machine precision.
  std::vector<av::MmsPoint> pts;
  for (double h : {0.1, 0.05, 0.025}) {
    av::MmsPoint p;
    p.h = h;
    p.l2_error = 3.0 * h * h;
    pts.push_back(p);
  }
  double r2 = 0.0;
  EXPECT_NEAR(av::observed_order(pts, &r2), 2.0, 1e-12);
  EXPECT_NEAR(r2, 1.0, 1e-12);
}
