// Golden regression suite: the repo's headline figure outputs (Fig. 2 modal
// placement, Fig. 10 dT-vs-power curves, the MTBF rollup) frozen as JSON
// baselines under tests/verify/golden/. Any solver change that moves these
// numbers fails here with a diff and a ready-to-run regeneration command
// (AEROPACK_UPDATE_GOLDEN=1 ctest -L verify).
#include <gtest/gtest.h>

#include <string>

#include "core/seb.hpp"
#include "core/units.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "reliability/mtbf.hpp"
#include "verify/golden.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace ar = aeropack::reliability;
namespace av = aeropack::verify;

namespace {

const char* golden_dir() { return AEROPACK_GOLDEN_DIR; }

void expect_golden(const av::GoldenRecorder& rec) {
  std::string joined;
  for (const auto& line : rec.finish()) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

/// Fig. 2 power-supply board (the bench_fig2 design sweep, verbatim physics).
af::PlateModel ps_board(double thickness, double doubler_factor) {
  af::PlateModel p(0.16, 0.10, thickness, am::fr4(), 8, 5);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);
  p.add_point_mass(0.11, 0.05, 0.09);
  if (doubler_factor > 1.0) p.add_doubler(0.03, 0.13, 0.02, 0.08, doubler_factor);
  return p;
}

const double kCabin = ac::celsius_to_kelvin(25.0);

const ac::SebModel& seb() {
  static const ac::SebModel model{ac::SebDesign{}};
  return model;
}

std::vector<ar::Part> avionics_bom(double junction_k) {
  std::vector<ar::Part> bom;
  const auto add = [&](const char* ref, ar::PartType t, int n) {
    ar::Part p;
    p.reference = ref;
    p.type = t;
    p.count = n;
    p.junction_temperature = junction_k;
    bom.push_back(p);
  };
  add("CPU", ar::PartType::Microprocessor, 1);
  add("DRAM", ar::PartType::Memory, 4);
  add("ANALOG", ar::PartType::AnalogIc, 12);
  add("PWR-FET", ar::PartType::PowerTransistor, 6);
  add("DIODE", ar::PartType::Diode, 20);
  add("R", ar::PartType::Resistor, 300);
  add("C-CER", ar::PartType::CeramicCapacitor, 200);
  add("C-TANT", ar::PartType::TantalumCapacitor, 12);
  add("L", ar::PartType::Inductor, 10);
  add("CONN", ar::PartType::Connector, 4);
  add("XTAL", ar::PartType::Crystal, 2);
  add("ATTACH", ar::PartType::SolderJointSet, 50);
  return bom;
}

}  // namespace

TEST(GoldenRegression, Fig2ModalPlacement) {
  av::GoldenRecorder rec("fig2_modal", golden_dir());
  rec.record("f1_hz[1.6mm_bare]", ps_board(1.6e-3, 1.0).fundamental_frequency());
  rec.record("f1_hz[2.4mm]", ps_board(2.4e-3, 1.0).fundamental_frequency());
  rec.record("f1_hz[2.4mm_doubler_x1.8]", ps_board(2.4e-3, 1.8).fundamental_frequency());
  rec.record("f1_hz[3.2mm_doubler_x1.8]", ps_board(3.2e-3, 1.8).fundamental_frequency());
  expect_golden(rec);
}

TEST(GoldenRegression, Fig10SebCoolingCurves) {
  av::GoldenRecorder rec("fig10_seb", golden_dir());
  for (double q : {20.0, 40.0, 60.0, 100.0}) {
    const std::string suffix = "[" + std::to_string(static_cast<int>(q)) + "W]";
    rec.record("dt_no_lhp_k" + suffix,
               seb().solve(q, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air);
    rec.record("dt_lhp_k" + suffix,
               seb().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0).dt_pcb_air);
    rec.record("dt_lhp_tilt22_k" + suffix,
               seb().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0).dt_pcb_air);
  }
  const auto full = seb().solve(100.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  rec.record("q_lhp_path_w[100W]", full.q_lhp_path);
  rec.record("capability_w[no_lhp_dt60]",
             seb().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly));
  rec.record("capability_w[lhp_dt60]",
             seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp));
  expect_golden(rec);
}

TEST(GoldenRegression, MtbfRollup) {
  av::GoldenRecorder rec("mtbf_rollup", golden_dir());
  for (double tj_c : {55.0, 70.0, 102.0}) {
    const auto rpt = ar::predict_mtbf(avionics_bom(ac::celsius_to_kelvin(tj_c)),
                                      ar::Environment::AirborneInhabitedCargo);
    rec.record("mtbf_h[tj" + std::to_string(static_cast<int>(tj_c)) + "C]", rpt.mtbf_hours);
  }
  auto cots = avionics_bom(ac::celsius_to_kelvin(70.0));
  for (auto& p : cots) p.quality = ar::Quality::Commercial;
  rec.record("mtbf_h[tj70C_commercial]",
             ar::predict_mtbf(cots, ar::Environment::AirborneInhabitedCargo).mtbf_hours);
  expect_golden(rec);
}
