// Driven-transient ROM-vs-FV equivalence ladder: a DO-160 thermal-shock
// profile marched tight at full order and per-rank at reduced order on the
// same fixed time grid (both through core::march_fixed — the production
// engine/stepper pairing). The space-time trace error must decay
// monotonically with basis rank and the early-rank trajectory is
// golden-frozen so silent projection or stepper changes fail loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "mission/profile.hpp"
#include "rom/canonical.hpp"
#include "verify/golden.hpp"
#include "verify/rom_check.hpp"

namespace am = aeropack::mission;
namespace ar = aeropack::rom;
namespace av = aeropack::verify;

namespace {

const char* golden_dir() { return AEROPACK_GOLDEN_DIR; }

ar::RomInputs seb_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {308.15, 308.15, 298.15};
  in.map_powers = {45.0, 15.0};
  return in;
}

/// Compressed DO-160 shock (40 K/min ramps, 2 min dwells): every phase kind
/// of the real qualification profile at test-suite cost.
am::Profile shock_profile() {
  return am::Profile::do160_thermal_shock(228.15, 328.15, 40.0, 120.0);
}

void expect_ladder_contract(const av::RomTransientLadderResult& ladder) {
  ASSERT_FALSE(ladder.rungs.empty());
  EXPECT_TRUE(ladder.monotone) << "trace error must not grow with rank";
  for (const auto& rung : ladder.rungs) {
    EXPECT_GE(rung.trace_error, 0.0);
    EXPECT_GE(rung.final_error, 0.0);
    if (rung.rank < ladder.rungs.size())
      EXPECT_GT(rung.estimate, 0.0) << "truncated rank " << rung.rank;
  }
}

}  // namespace

TEST(RomTransientEquivalence, SebBoxDo160LadderMonotoneAndTight) {
  const ar::CanonicalCase c = ar::seb_box();
  av::RomTransientLadderOptions opts;
  opts.reference_steps = 120;
  // Transient snapshot enrichment: driven trajectories leave the span of
  // steady snapshots, so the driven ladder is where enrichment pays.
  opts.rom.transient_samples_per_map = 2;
  opts.rom.transient_time_scale = 10.0;
  const av::RomTransientLadderResult ladder =
      av::rom_transient_ladder(c.model, c.spec, seb_inputs(), shock_profile(), opts);
  expect_ladder_contract(ladder);
  ASSERT_EQ(ladder.steps, 120u);

  // Acceptance bar: the full usable basis resolves the driven trajectory to
  // sub-percent space-time error.
  EXPECT_LE(ladder.full_rank_trace_error, 1e-2);
  EXPECT_LE(ladder.rungs.back().final_error, 1e-2);

  // Early-rank errors are O(1e-1..1e-4): numerically stable to freeze.
  av::GoldenRecorder rec("rom_transient_ladder_seb", golden_dir(), "verify");
  const std::size_t n = std::min<std::size_t>(3, ladder.rungs.size());
  for (std::size_t i = 0; i < n; ++i) {
    rec.record("rank" + std::to_string(ladder.rungs[i].rank) + ".trace_error",
               ladder.rungs[i].trace_error);
    rec.record("rank" + std::to_string(ladder.rungs[i].rank) + ".final_error",
               ladder.rungs[i].final_error);
  }
  std::string joined;
  for (const auto& line : rec.finish(1e-5)) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

TEST(RomTransientEquivalence, LadderIsDeterministicAcrossThreadCounts) {
  const ar::CanonicalCase c = ar::seb_box();
  av::RomTransientLadderOptions opts;
  opts.reference_steps = 40;
  av::RomTransientLadderResult first =
      av::rom_transient_ladder(c.model, c.spec, seb_inputs(), shock_profile(), opts);
  const av::RomTransientLadderResult again =
      av::rom_transient_ladder(c.model, c.spec, seb_inputs(), shock_profile(), opts);
  ASSERT_EQ(first.rungs.size(), again.rungs.size());
  for (std::size_t i = 0; i < first.rungs.size(); ++i) {
    EXPECT_EQ(first.rungs[i].trace_error, again.rungs[i].trace_error) << "rank " << i + 1;
    EXPECT_EQ(first.rungs[i].final_error, again.rungs[i].final_error) << "rank " << i + 1;
  }
}
