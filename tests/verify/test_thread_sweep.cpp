// Thread-count determinism sweep: the MMS and cross-solver suites must
// produce bit-identical fields at 1, 2 and 8 threads (the runtime equivalent
// of AEROPACK_THREADS=1,2,8), locking in the deterministic-reduction
// contract of the parallel layer for every solver path the verification
// tier exercises.
#include <gtest/gtest.h>

#include <vector>

#include "numeric/parallel.hpp"
#include "thermal/fv.hpp"
#include "verify/cross_check.hpp"
#include "verify/mms.hpp"
#include "verify/tolerance.hpp"

namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace av = aeropack::verify;

namespace {

const std::vector<std::size_t> kThreadSweep{1, 2, 8};

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

template <typename Fn>
void expect_bit_identical_across_threads(const char* what, Fn&& field_at_current_threads) {
  ThreadCountGuard guard;
  an::set_thread_count(kThreadSweep.front());
  const aeropack::numeric::Vector reference = field_at_current_threads();
  for (std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const aeropack::numeric::Vector field = field_at_current_threads();
    EXPECT_TRUE(av::bitwise_equal(reference, field))
        << what << ": " << kThreadSweep.front() << " vs " << t
        << " threads diverge at index " << av::first_bitwise_difference(reference, field);
  }
}

}  // namespace

TEST(ThreadSweep, CrossSolverFieldsBitIdentical) {
  expect_bit_identical_across_threads("slab", [] { return av::cross_check_slab(64).fv_field; });
  expect_bit_identical_across_threads("fin", [] { return av::cross_check_fin(96).fv_field; });
  expect_bit_identical_across_threads("card", [] { return av::cross_check_card(12).fv_field; });
}

TEST(ThreadSweep, NonlinearPicardSolveBitIdentical) {
  const auto model = av::nonlinear_box_model(10);
  expect_bit_identical_across_threads("nonlinear box", [&] {
    const auto sol = model.solve_steady();
    EXPECT_TRUE(sol.converged);
    return sol.temperatures;
  });
}

TEST(ThreadSweep, TransientMarchBitIdentical) {
  const auto model = av::nonlinear_box_model(8);
  expect_bit_identical_across_threads("transient march", [&] {
    const auto out = model.solve_transient(120.0, 10.0, 293.15);
    return out.temperatures.back();
  });
}

TEST(ThreadSweep, MmsLadderErrorsExactlyReproducible) {
  // The MMS error norms are pure functions of the solved fields, so the
  // whole convergence report — every rung and the fitted order — must be
  // exactly equal (==, not near) at any thread count.
  ThreadCountGuard guard;
  const auto mms = av::mms_graded_k(0.1, 0.12, 0.08, 10.0, 1.5, 300.0, 40.0);
  an::set_thread_count(1);
  const auto reference =
      av::mms_steady_order(mms, {8, 16}, at::FaceConductanceScheme::HarmonicMean);
  for (std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const auto report =
        av::mms_steady_order(mms, {8, 16}, at::FaceConductanceScheme::HarmonicMean);
    ASSERT_EQ(report.ladder.size(), reference.ladder.size());
    for (std::size_t i = 0; i < report.ladder.size(); ++i) {
      EXPECT_EQ(report.ladder[i].l2_error, reference.ladder[i].l2_error) << t;
      EXPECT_EQ(report.ladder[i].max_error, reference.ladder[i].max_error) << t;
    }
    EXPECT_EQ(report.observed_order, reference.observed_order) << t;
  }
}
