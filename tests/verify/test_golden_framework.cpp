// Unit tests of the golden-file framework itself: JSON round trip, mismatch
// and staleness detection, the update-mode rewrite, and the regeneration
// hint appended to every failure report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "verify/golden.hpp"

namespace av = aeropack::verify;

namespace {

/// Scoped setenv/unsetenv for AEROPACK_UPDATE_GOLDEN.
struct UpdateModeGuard {
  explicit UpdateModeGuard(const char* value) {
    ::setenv("AEROPACK_UPDATE_GOLDEN", value, 1);
  }
  ~UpdateModeGuard() { ::unsetenv("AEROPACK_UPDATE_GOLDEN"); }
};

std::string temp_dir() { return ::testing::TempDir(); }

bool report_mentions(const std::vector<std::string>& report, const std::string& needle) {
  for (const auto& line : report)
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

}  // namespace

TEST(GoldenFile, RoundTripsValuesExactly) {
  const std::string path = temp_dir() + "roundtrip.json";
  const std::map<std::string, double> values{
      {"plain", 1.5}, {"tiny", 3.0e-17}, {"negative", -273.15}, {"irrational", 0.1 + 0.2}};
  av::write_golden_file(path, values);
  const auto back = av::read_golden_file(path);
  ASSERT_EQ(back.size(), values.size());
  for (const auto& [key, v] : values) {
    ASSERT_TRUE(back.count(key)) << key;
    EXPECT_EQ(back.at(key), v) << key;  // %.17g must round-trip to the bit
  }
}

TEST(GoldenFile, MissingFileAndMalformedContentThrow) {
  EXPECT_THROW(av::read_golden_file(temp_dir() + "does_not_exist.json"), std::runtime_error);
  const std::string path = temp_dir() + "malformed.json";
  std::ofstream(path) << "{ \"key\": not_a_number }";
  EXPECT_THROW(av::read_golden_file(path), std::runtime_error);
  std::ofstream(path) << "[1, 2, 3]";
  EXPECT_THROW(av::read_golden_file(path), std::runtime_error);
  std::ofstream(path) << "{ \"a\": 1, \"a\": 2 }";
  EXPECT_THROW(av::read_golden_file(path), std::runtime_error);
}

TEST(GoldenFile, EmptyObjectIsValid) {
  const std::string path = temp_dir() + "empty.json";
  std::ofstream(path) << "{}";
  EXPECT_TRUE(av::read_golden_file(path).empty());
}

TEST(GoldenRecorder, PassesAgainstMatchingBaseline) {
  av::write_golden_file(temp_dir() + "match.json", {{"a", 1.0}, {"b", 2.0}});
  av::GoldenRecorder rec("match", temp_dir());
  rec.record("a", 1.0);
  rec.record("b", 2.0 * (1.0 + 1e-12));  // inside the relative tolerance
  EXPECT_TRUE(rec.finish(1e-9).empty());
}

TEST(GoldenRecorder, ReportsMismatchWithRegenerationCommand) {
  av::write_golden_file(temp_dir() + "drift.json", {{"a", 1.0}});
  av::GoldenRecorder rec("drift", temp_dir());
  rec.record("a", 1.02);
  const auto report = rec.finish(1e-9);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(report_mentions(report, "golden mismatch: a"));
  EXPECT_TRUE(report_mentions(report, "AEROPACK_UPDATE_GOLDEN=1"))
      << "failure report must tell the user how to regenerate";
  EXPECT_TRUE(report_mentions(report, "ctest -L verify"));
}

TEST(GoldenRecorder, DetectsMissingAndStaleKeys) {
  av::write_golden_file(temp_dir() + "keys.json", {{"kept", 1.0}, {"stale", 2.0}});
  av::GoldenRecorder rec("keys", temp_dir());
  rec.record("kept", 1.0);
  rec.record("new", 3.0);
  const auto report = rec.finish();
  EXPECT_TRUE(report_mentions(report, "missing golden key: new"));
  EXPECT_TRUE(report_mentions(report, "stale golden key"));
}

TEST(GoldenRecorder, MissingBaselineExplainsHowToCreateIt) {
  av::GoldenRecorder rec("never_written", temp_dir());
  rec.record("a", 1.0);
  const auto report = rec.finish();
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(report_mentions(report, "missing"));
  EXPECT_TRUE(report_mentions(report, "AEROPACK_UPDATE_GOLDEN"));
}

TEST(GoldenRecorder, UpdateModeRewritesBaseline) {
  const std::string path = temp_dir() + "regen.json";
  av::write_golden_file(path, {{"a", 1.0}});
  {
    UpdateModeGuard update("1");
    EXPECT_TRUE(av::golden_update_requested());
    av::GoldenRecorder rec("regen", temp_dir());
    rec.record("a", 42.0);
    EXPECT_TRUE(rec.finish().empty());  // update mode never fails
  }
  EXPECT_FALSE(av::golden_update_requested());
  EXPECT_EQ(av::read_golden_file(path).at("a"), 42.0);
}

TEST(GoldenRecorder, UpdateModeRespectsZeroAsOff) {
  UpdateModeGuard update("0");
  EXPECT_FALSE(av::golden_update_requested());
}

TEST(GoldenRecorder, DuplicateKeyThrows) {
  av::GoldenRecorder rec("dupe", temp_dir());
  rec.record("a", 1.0);
  EXPECT_THROW(rec.record("a", 1.0), std::logic_error);
}
