// Fidelity-agnostic mission marches: the same profile and controller driven
// through the network and reduced-order steppers. Gates the adaptive
// network march's solve economy against the old fixed-dt march, the ROM
// mission's physical agreement with the FV mission it shadows, the
// drive_for_rom h_scale constraint, and the mission_rom_* service graphs
// (registration, FV-graph output-key parity, one-word fidelity swap).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/scenario_service.hpp"
#include "mission/profile.hpp"
#include "mission/service_graphs.hpp"
#include "mission/transient.hpp"
#include "rom/cache.hpp"
#include "rom/canonical.hpp"
#include "thermal/network.hpp"

namespace ac = aeropack::core;
namespace am = aeropack::mission;
namespace ar = aeropack::rom;
namespace at = aeropack::thermal;
using aeropack::numeric::Vector;

namespace {

at::ThermalNetwork flight_network() {
  at::ThermalNetwork net;
  net.add_node("equipment", 8000.0);
  net.add_node("chassis", 15000.0);
  net.add_boundary("ambient", 328.15);
  net.add_conductor(0, 1, 2.5);
  net.add_conductor(1, 2, 4.0);
  net.add_heat_load(0, 120.0);
  return net;
}

am::Profile flight_profile() { return am::Profile::arinc600_flight(328.15, 243.15, 0.02); }

ar::RomInputs seb_base_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {293.15, 293.15, 293.15};
  in.map_powers = {40.0, 15.0};
  return in;
}

}  // namespace

TEST(MissionFidelity, AdaptiveNetworkMarchSpendsFewerSolvesThanFixedDt) {
  const at::ThermalNetwork net = flight_network();
  const am::Profile profile = flight_profile();
  const double t_end = profile.total_duration();
  const Vector initial(net.node_count(), 293.15);

  // Fixed-dt reference at the old service-graph resolution (dt = 5 s scaled
  // by time_scale): 2 Picard passes per step on this linear network.
  const double fixed_dt = 5.0 * 0.02;
  const at::NetworkDrive drive = am::drive_for_network(profile);
  const at::TransientSolution fixed = net.solve_transient(t_end, fixed_dt, initial, drive);
  const std::size_t fixed_steps = fixed.times.size() - 1;

  am::AdaptiveOptions adaptive;
  adaptive.dt_initial = fixed_dt;
  adaptive.dt_max = 12.0;  // let the cruise plateau coarsen freely
  const am::NetworkMissionSolution sol = am::run_network_mission(net, profile, initial, adaptive);

  // Equal accuracy: the adaptive march's horizon state agrees with the
  // fine fixed-dt march within the controller tolerance.
  ASSERT_FALSE(sol.node_temperatures.empty());
  const Vector& adaptive_final = sol.node_temperatures.back();
  const Vector& fixed_final = fixed.temperatures.back();
  for (std::size_t i = 0; i < adaptive_final.size(); ++i)
    EXPECT_NEAR(adaptive_final[i], fixed_final[i], 5.0 * adaptive.tolerance) << "node " << i;

  // Fewer implicit solves: the fixed march spends at least one Picard pass
  // per step, so beating its step count strictly beats its solve count even
  // though the adaptive march pays 3 stepper calls per attempt.
  EXPECT_LT(sol.implicit_solves, fixed_steps)
      << sol.steps_accepted << " accepted / " << sol.steps_rejected << " rejected";
  EXPECT_GT(sol.steps_accepted, 0u);
  // Interior flight-phase boundaries are landed on exactly.
  EXPECT_EQ(sol.phase_transitions, profile.phase_count() - 1);
}

TEST(MissionFidelity, RomMissionTracksFvMission) {
  const ar::CanonicalCase c = ar::seb_box();
  const am::Profile profile = am::Profile::do160_thermal_shock(228.15, 328.15, 40.0, 120.0);
  ar::RomOptions rom_opts;
  rom_opts.transient_samples_per_map = 2;
  rom_opts.transient_time_scale = 10.0;
  const ar::RomModel rom = ar::build_rom(c.model, c.spec, rom_opts);

  // FV reference mission on the ROM-layout model (ports + maps only).
  at::FvModel fv_model = c.model;
  ar::apply_inputs(fv_model, c.spec, seb_base_inputs());
  const am::MissionSolution fv = am::run_fv_mission(fv_model, profile, 293.15);
  const am::MissionSolution reduced =
      am::run_rom_mission(rom, profile, 293.15, seb_base_inputs(), {}, &c.model.grid());

  // Same horizon, same trace shape, kelvin-level agreement on the extremes.
  EXPECT_DOUBLE_EQ(reduced.times.back(), fv.times.back());
  EXPECT_NEAR(reduced.t_max.back(), fv.t_max.back(), 1.0);
  EXPECT_NEAR(reduced.t_min.back(), fv.t_min.back(), 1.0);
  EXPECT_NEAR(reduced.t_mean.back(), fv.t_mean.back(), 1.0);
  EXPECT_EQ(reduced.phase_transitions, fv.phase_transitions);
  EXPECT_EQ(reduced.structure_assemblies, 0u);
  EXPECT_EQ(reduced.final_field.size(), fv.final_field.size());
}

TEST(MissionFidelity, DriveForRomRejectsFilmScalingProfiles) {
  // arinc600_flight scales film coefficients across phases; films are baked
  // into the projected operator, so the ROM drive must refuse.
  EXPECT_THROW(am::drive_for_rom(flight_profile(), seb_base_inputs()), std::invalid_argument);
  // DO-160 keeps h_scale == 1 everywhere: accepted.
  const am::Profile shock = am::Profile::do160_thermal_shock(228.15, 328.15, 40.0, 120.0);
  const ar::RomDrive drive = am::drive_for_rom(shock, seb_base_inputs());
  ASSERT_TRUE(static_cast<bool>(drive.inputs));
  // The drive re-evaluates profile channels: cold start vs hot dwell.
  EXPECT_NEAR(drive.inputs(0.0).sink_temperatures[0], 228.15, 1e-12);
  EXPECT_GT(drive.inputs(shock.total_duration() / 2.0).sink_temperatures[0], 300.0);
}

TEST(MissionFidelity, RomGraphsRegisterAndMatchFvOutputKeys) {
  ac::ScenarioService service;
  am::register_mission_graphs(service);
  EXPECT_TRUE(service.has_graph("mission_rom_do160"));
  EXPECT_TRUE(service.has_graph("mission_rom_eclipse"));

  // One-word fidelity swap: identical spec, graph name switched.
  ac::ScenarioSpec fv_spec;
  fv_spec.name = "shock_fv";
  fv_spec.graph = "mission_seb_do160";
  fv_spec.params["dwell_s"] = 120.0;
  fv_spec.params["ramp_rate"] = 40.0;
  fv_spec.loads["pcb_components"] = 40.0;
  fv_spec.loads["psu"] = 15.0;
  ac::ScenarioSpec rom_spec = fv_spec;
  rom_spec.name = "shock_rom";
  rom_spec.graph = "mission_rom_do160";

  const std::vector<ac::ScenarioResult> results = service.run({fv_spec, rom_spec});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[1].ok) << results[1].error;
  const auto& fv = results[0].values;
  const auto& rom = results[1].values;
  // The common output keys exist at both fidelities...
  for (const char* key : {"t_final_max", "t_final_min", "t_final_mean", "t_peak_max",
                          "t_low_min", "steps", "step_rejections", "phase_transitions",
                          "sim_seconds"}) {
    ASSERT_TRUE(fv.count(key)) << key;
    ASSERT_TRUE(rom.count(key)) << key;
  }
  // ...and agree physically: same horizon, kelvin-level field extremes.
  EXPECT_DOUBLE_EQ(rom.at("sim_seconds"), fv.at("sim_seconds"));
  EXPECT_DOUBLE_EQ(rom.at("phase_transitions"), fv.at("phase_transitions"));
  EXPECT_NEAR(rom.at("t_final_max"), fv.at("t_final_max"), 1.5);
  EXPECT_NEAR(rom.at("t_peak_max"), fv.at("t_peak_max"), 1.5);
  EXPECT_GT(rom.at("rank"), 0.0);
}

TEST(MissionFidelity, RomGraphSharesOneCompactModelAcrossMissionPoints) {
  ac::ScenarioServiceOptions opts;
  opts.workers = 1;  // serial: the second point must hit the cached ROM
  ac::ScenarioService service(opts);
  am::register_mission_graphs(service);

  ac::ScenarioSpec a;
  a.graph = "mission_rom_do160";
  a.name = "p1";
  a.params["dwell_s"] = 120.0;
  a.params["ramp_rate"] = 40.0;
  a.loads["pcb_components"] = 40.0;
  ac::ScenarioSpec b = a;
  b.name = "p2";
  b.loads["pcb_components"] = 55.0;  // different inputs, same structure

  const std::vector<ac::ScenarioResult> results = service.run({a, b});
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_GT(results[1].values.at("t_peak_max"), results[0].values.at("t_peak_max"));
  const ac::ArtifactCacheStats cache = service.cache().stats();
  EXPECT_GE(cache.hits, 1u);   // second mission point reuses the compact model
  EXPECT_LE(cache.misses, 1u);
}
