// Adaptive PI step-doubling controller: accuracy against a fine fixed-dt
// reference at a fraction of the implicit solves, phase-boundary clamping,
// rejection behavior on square-wave discontinuities and input validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "materials/solid.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "thermal/fv.hpp"

namespace am = aeropack::mission;
namespace at = aeropack::thermal;

namespace {

at::FvModel make_slab() {
  at::FvModel m(at::FvGrid::uniform(0.06, 0.02, 0.01, 6, 4, 3));
  m.set_material(aeropack::materials::aluminum_6061());
  m.add_power(m.all_cells(), 4.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(40.0, 300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(40.0, 300.0));
  return m;
}

am::Profile shock_profile() {
  am::Profile p("shock");
  p.add_phase(am::Phase::constant("soak", 60.0, 300.0));
  p.add_phase(am::Phase::ramp("heat", 120.0, 300.0, 360.0));
  p.add_phase(am::Phase::constant("hold", 60.0, 360.0));
  return p;
}

double max_abs_diff(const aeropack::numeric::Vector& a, const aeropack::numeric::Vector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

}  // namespace

TEST(MissionAdaptive, MeetsToleranceWithFewerStepsThanFixedDt) {
  const at::FvModel m = make_slab();
  const am::Profile profile = shock_profile();

  // Fine fixed-dt reference that comfortably achieves the target accuracy.
  const double dt_ref = 0.25;
  const aeropack::numeric::Vector initial(m.grid().cell_count(), 300.0);
  const at::FvTransientSolution ref = m.solve_transient(
      profile.total_duration(), dt_ref, initial, am::drive_for(profile));
  const std::size_t ref_steps = ref.times.size() - 1;  // 960 implicit solves

  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.05;
  const am::MissionSolution sol = am::run_fv_mission(m, profile, 300.0, adaptive);

  EXPECT_GT(sol.steps_accepted, 0u);
  // Accuracy: the adaptive horizon field sits within a few tolerances of
  // the fine reference.
  EXPECT_LT(max_abs_diff(sol.final_field, ref.temperatures.back()), 10.0 * adaptive.tolerance);
  // Economy: step-doubling costs 3 implicit solves per attempt; even so the
  // adaptive march undercuts the fixed-dt solve count decisively.
  const std::size_t solves = 3 * (sol.steps_accepted + sol.steps_rejected);
  EXPECT_LT(solves, ref_steps / 2) << "accepted " << sol.steps_accepted << " rejected "
                                   << sol.steps_rejected;
  // Trace bookkeeping: one row per accepted step plus the initial state.
  EXPECT_EQ(sol.times.size(), sol.steps_accepted + 1);
  EXPECT_EQ(sol.t_max.size(), sol.times.size());
  EXPECT_DOUBLE_EQ(sol.times.back(), profile.total_duration());
}

TEST(MissionAdaptive, LandsExactlyOnEveryPhaseBoundary) {
  const at::FvModel m = make_slab();
  const am::Profile profile = shock_profile();
  const am::MissionSolution sol = am::run_fv_mission(m, profile, 300.0);

  // Interior boundaries only: the final landing at t_end is not a
  // transition into anything.
  EXPECT_EQ(sol.phase_transitions, profile.phase_count() - 1);
  for (std::size_t i = 1; i < profile.phase_count(); ++i) {
    const double boundary = profile.phase_start(i);
    bool landed = false;
    for (const double t : sol.times) landed = landed || t == boundary;
    EXPECT_TRUE(landed) << "no accepted step ends exactly at t=" << boundary;
  }
}

TEST(MissionAdaptive, SquareWaveForcesRejectionsAndRecovers) {
  // Strong films (time constant ~3 min) so the slab actually swings with
  // the wave instead of riding its own dissipation.
  at::FvModel m = make_slab();
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(400.0, 300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(400.0, 300.0));
  const am::Profile profile = am::Profile::cubesat_eclipse(2, 1200.0, 0.4, 340.0, 240.0, 0.5);

  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.02;
  adaptive.dt_max = 300.0;
  adaptive.dt_initial = 300.0;  // deliberately too ambitious for a 100 K jump
  const am::MissionSolution sol = am::run_fv_mission(m, profile, 300.0, adaptive);

  EXPECT_GE(sol.steps_rejected, 1u);
  EXPECT_EQ(sol.phase_transitions, 3u);
  EXPECT_DOUBLE_EQ(sol.times.back(), profile.total_duration());
  // The march actually tracks the wave: warmer than start after a sunlit
  // phase end, colder after an eclipse end.
  EXPECT_GT(*std::max_element(sol.t_max.begin(), sol.t_max.end()), 310.0);
  EXPECT_LT(*std::min_element(sol.t_min.begin(), sol.t_min.end()), 290.0);
}

TEST(MissionAdaptive, ValidatesInputs) {
  const at::FvModel m = make_slab();
  const am::Profile profile = shock_profile();
  EXPECT_THROW(am::run_fv_mission(m, am::Profile{}, 300.0), std::invalid_argument);
  EXPECT_THROW(am::run_fv_mission(m, profile, -10.0), std::invalid_argument);
  am::AdaptiveOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(am::run_fv_mission(m, profile, 300.0, bad), std::invalid_argument);
  bad = {};
  bad.dt_max = 1e-6;  // < dt_min
  EXPECT_THROW(am::run_fv_mission(m, profile, 300.0, bad), std::invalid_argument);
  bad = {};
  bad.max_steps = 2;
  EXPECT_THROW(am::run_fv_mission(m, profile, 300.0, bad), std::runtime_error);
}
