// Driver-aware FV transients. The headline regression here is satellite
// truth the undriven overloads cannot express: solve_transient used to
// capture boundary conditions once at t = 0, so a mid-run ambient change
// had no effect on the trajectory. The driven overloads re-resolve the
// environment at every step's end time on the same steady assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "materials/solid.hpp"
#include "thermal/fv.hpp"

namespace at = aeropack::thermal;

namespace {

// Small aluminum slab, convection on both x faces, 4 W dissipated.
at::FvModel make_slab() {
  at::FvModel m(at::FvGrid::uniform(0.06, 0.02, 0.01, 6, 4, 3));
  m.set_material(aeropack::materials::aluminum_6061());
  m.add_power(m.all_cells(), 4.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(40.0, 300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(40.0, 300.0));
  return m;
}

double max_abs_diff(const aeropack::numeric::Vector& a, const aeropack::numeric::Vector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

}  // namespace

TEST(MissionDriverFv, MidRunAmbientChangeChangesTrajectory) {
  // Strong films so the slab (thermal time constant ~3 min here) visibly
  // tracks the ambient within the test window.
  at::FvModel m = make_slab();
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(400.0, 300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(400.0, 300.0));
  const aeropack::numeric::Vector initial(m.grid().cell_count(), 300.0);
  const double t_end = 120.0, dt = 4.0;

  // Frozen environment: the legacy march.
  const at::FvTransientSolution frozen = m.solve_transient(t_end, dt, initial);

  // Ambient steps from 300 K to 340 K at t = 30 s.
  at::FvDrive drive;
  drive.boundary = [](double t, at::Face, const at::BoundaryCondition& bc) {
    at::BoundaryCondition out = bc;
    if (t > 30.0) out.temperature = 340.0;
    return out;
  };
  const at::FvTransientSolution driven = m.solve_transient(t_end, dt, initial, drive);

  ASSERT_EQ(frozen.temperatures.size(), driven.temperatures.size());
  // Identical while the drive matches the stored environment (t <= 28 s)...
  EXPECT_NEAR(max_abs_diff(frozen.temperatures[7], driven.temperatures[7]), 0.0, 1e-6);
  // ...and decisively different after the ambient steps up.
  EXPECT_GT(max_abs_diff(frozen.temperatures.back(), driven.temperatures.back()), 5.0);
  EXPECT_GT(driven.temperatures.back()[0], frozen.temperatures.back()[0]);
}

TEST(MissionDriverFv, NullDriveMatchesUndrivenMarch) {
  const at::FvModel m = make_slab();
  const aeropack::numeric::Vector initial(m.grid().cell_count(), 310.0);
  const at::FvTransientSolution undriven = m.solve_transient(40.0, 4.0, initial);
  const at::FvTransientSolution driven = m.solve_transient(40.0, 4.0, initial, at::FvDrive{});
  // The driven march folds capacity/dt into a steady assembly instead of
  // baking it in, so the diagonal sums in a different order: near round-off
  // agreement, not bitwise.
  ASSERT_EQ(undriven.temperatures.size(), driven.temperatures.size());
  EXPECT_LT(max_abs_diff(undriven.temperatures.back(), driven.temperatures.back()), 1e-6);
}

TEST(MissionDriverFv, PowerScaleScalesVolumetricSourcesOnly) {
  // No volumetric source; heat enters through a prescribed flux. A drive
  // that zeroes power_scale must not touch the flux (it is an environment
  // input, not dissipation).
  at::FvModel m(at::FvGrid::uniform(0.06, 0.02, 0.01, 6, 4, 3));
  m.set_material(aeropack::materials::aluminum_6061());
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::heat_flux(500.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(40.0, 300.0));
  const aeropack::numeric::Vector initial(m.grid().cell_count(), 300.0);

  at::FvDrive zero_power;
  zero_power.power_scale = [](double) { return 0.0; };
  const at::FvTransientSolution a = m.solve_transient(30.0, 3.0, initial, at::FvDrive{});
  const at::FvTransientSolution b = m.solve_transient(30.0, 3.0, initial, zero_power);
  EXPECT_LT(max_abs_diff(a.temperatures.back(), b.temperatures.back()), 1e-12);

  // With a volumetric source the same drive freezes the slab at ambient.
  const at::FvModel heated = make_slab();
  const aeropack::numeric::Vector init2(heated.grid().cell_count(), 300.0);
  const at::FvTransientSolution c = heated.solve_transient(30.0, 3.0, init2, zero_power);
  EXPECT_LT(max_abs_diff(c.temperatures.back(), init2), 1e-9);
  const at::FvTransientSolution d = heated.solve_transient(30.0, 3.0, init2, at::FvDrive{});
  EXPECT_GT(d.temperatures.back()[0], 300.5);
}

TEST(MissionDriverFv, StepperMatchesDrivenSolveTransient) {
  const at::FvModel m = make_slab();
  const std::size_t n = m.grid().cell_count();
  at::FvDrive drive;
  drive.boundary = [](double t, at::Face, const at::BoundaryCondition& bc) {
    at::BoundaryCondition out = bc;
    out.temperature = 300.0 + 0.5 * t;
    return out;
  };

  const aeropack::numeric::Vector initial(n, 300.0);
  const at::FvTransientSolution sol = m.solve_transient(20.0, 2.0, initial, drive);

  at::FvTransientStepper stepper(m);
  aeropack::numeric::Vector temps = initial;
  for (std::size_t s = 1; s <= 10; ++s) stepper.step(temps, 2.0 * s, 2.0, &drive);
  EXPECT_EQ(max_abs_diff(sol.temperatures.back(), temps), 0.0);
}

TEST(MissionDriverFv, SharedSteadyAssemblyIsValidatedAndBitwiseEqual) {
  const at::FvModel m = make_slab();
  const std::size_t n = m.grid().cell_count();
  const aeropack::numeric::Vector initial(n, 305.0);
  at::FvDrive drive;
  drive.power_scale = [](double t) { return t < 10.0 ? 1.2 : 0.8; };

  // A transient assembly (inv_dt baked in) is the wrong artifact class.
  EXPECT_THROW(
      m.solve_transient(20.0, 2.0, initial, drive, {}, m.build_assembly({}, 1.0 / 2.0)),
      std::invalid_argument);
  // An assembly of a different structure is rejected by hash.
  at::FvModel other(at::FvGrid::uniform(0.06, 0.02, 0.01, 5, 4, 3));
  other.set_material(aeropack::materials::aluminum_6061());
  EXPECT_THROW(m.solve_transient(20.0, 2.0, initial, drive, {}, other.build_assembly()),
               std::invalid_argument);

  // The matching steady assembly skips assembly and changes nothing.
  const at::FvTransientSolution cold = m.solve_transient(20.0, 2.0, initial, drive);
  const at::FvTransientSolution shared =
      m.solve_transient(20.0, 2.0, initial, drive, {}, m.build_assembly());
  EXPECT_EQ(cold.structure_assemblies, 1u);
  EXPECT_EQ(shared.structure_assemblies, 0u);
  ASSERT_EQ(cold.temperatures.size(), shared.temperatures.size());
  for (std::size_t s = 0; s < cold.temperatures.size(); ++s)
    EXPECT_EQ(max_abs_diff(cold.temperatures[s], shared.temperatures[s]), 0.0) << "step " << s;
}

TEST(MissionDriverFv, DrivenMarchValidatesArguments) {
  const at::FvModel m = make_slab();
  const aeropack::numeric::Vector initial(m.grid().cell_count(), 300.0);
  const at::FvDrive drive;
  EXPECT_THROW(m.solve_transient(10.0, 0.0, initial, drive), std::invalid_argument);
  EXPECT_THROW(m.solve_transient(-1.0, 1.0, initial, drive), std::invalid_argument);
  const aeropack::numeric::Vector wrong(3, 300.0);
  EXPECT_THROW(m.solve_transient(10.0, 1.0, wrong, drive), std::invalid_argument);
}
