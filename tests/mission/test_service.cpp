// Mission graphs under core::ScenarioService: registration through the
// extension point, end-to-end DO-160 + eclipse campaigns, the shared
// FvAssembly hit class across mission points (and across the two profile
// families — same box, same structural hash), dedup, and value-level
// determinism across scenario thread counts.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/scenario_service.hpp"
#include "mission/service_graphs.hpp"

namespace ac = aeropack::core;
namespace am = aeropack::mission;

namespace {

ac::ScenarioSpec do160_point(const std::string& name, double pcb_w, double psu_w) {
  ac::ScenarioSpec spec;
  spec.name = name;
  spec.graph = "mission_seb_do160";
  spec.params["dwell_s"] = 120.0;
  spec.params["ramp_rate"] = 40.0;
  spec.params["tolerance"] = 0.1;
  spec.loads["pcb_components"] = pcb_w;
  spec.loads["psu"] = psu_w;
  return spec;
}

ac::ScenarioSpec eclipse_point(const std::string& name, double pcb_w) {
  ac::ScenarioSpec spec;
  spec.name = name;
  spec.graph = "mission_seb_eclipse";
  spec.params["orbits"] = 2.0;
  spec.params["period_s"] = 300.0;
  spec.params["tolerance"] = 0.1;
  spec.loads["pcb_components"] = pcb_w;
  spec.loads["psu"] = 10.0;
  return spec;
}

std::vector<ac::ScenarioSpec> campaign() {
  return {do160_point("shock_nominal", 40.0, 15.0), do160_point("shock_hot", 55.0, 20.0),
          eclipse_point("orbit_nominal", 40.0), eclipse_point("orbit_low_power", 25.0)};
}

}  // namespace

TEST(MissionService, RegistersGraphsThroughExtensionPoint) {
  ac::ScenarioService service;
  EXPECT_FALSE(service.has_graph("mission_seb_do160"));
  am::register_mission_graphs(service);
  EXPECT_TRUE(service.has_graph("mission_seb_do160"));
  EXPECT_TRUE(service.has_graph("mission_seb_eclipse"));
  EXPECT_TRUE(service.has_graph("mission_network_flight"));
}

TEST(MissionService, CampaignSharesOneAssemblyAcrossMissionPoints) {
  ac::ScenarioServiceOptions opts;
  opts.workers = 2;
  ac::ScenarioService service(opts);
  am::register_mission_graphs(service);

  const std::vector<ac::ScenarioResult> results = service.run(campaign());
  ASSERT_EQ(results.size(), 4u);
  for (const ac::ScenarioResult& r : results) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_GT(r.values.at("steps"), 0.0) << r.name;
    EXPECT_GE(r.values.at("t_peak_max"), r.values.at("t_final_min")) << r.name;
  }
  // DO-160 has 5 phases, the 2-orbit eclipse 4: interior transitions only.
  EXPECT_DOUBLE_EQ(results[0].values.at("phase_transitions"), 4.0);
  EXPECT_DOUBLE_EQ(results[2].values.at("phase_transitions"), 3.0);

  // All four mission points run the same SEB box structure, so the steady
  // assembly is built at most twice (two workers may race the first build)
  // and every later point hits the shared artifact.
  const ac::ArtifactCacheStats cache = service.cache().stats();
  EXPECT_GE(cache.hits, 2u);
  EXPECT_LE(cache.misses, 2u);
  // The hits show up in the solves too: cached points report zero symbolic
  // assemblies.
  std::size_t cached_points = 0;
  for (const ac::ScenarioResult& r : results)
    if (r.values.at("structure_assemblies") == 0.0) ++cached_points;
  EXPECT_EQ(cached_points, 4u);  // get_or_build assembles, never the march
}

TEST(MissionService, HigherPowerPointRunsHotter) {
  ac::ScenarioService service;
  am::register_mission_graphs(service);
  const std::vector<ac::ScenarioResult> results =
      service.run({do160_point("nominal", 40.0, 15.0), do160_point("hot", 80.0, 30.0)});
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_GT(results[1].values.at("t_peak_max"), results[0].values.at("t_peak_max") + 1.0);
}

TEST(MissionService, NetworkFlightGraphRuns) {
  ac::ScenarioService service;
  am::register_mission_graphs(service);
  ac::ScenarioSpec spec;
  spec.name = "flight";
  spec.graph = "mission_network_flight";
  spec.params["time_scale"] = 0.02;
  const ac::ScenarioResult r = service.run({spec}).front();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.values.at("steps"), 10.0);
  EXPECT_GE(r.values.at("t_equipment_peak"), r.values.at("t_equipment"));
  // The equipment node dissipates into the chassis: it must run warmer.
  EXPECT_GT(r.values.at("t_equipment"), r.values.at("t_chassis"));
}

TEST(MissionService, IdenticalMissionPointsDeduplicate) {
  ac::ScenarioService service;
  am::register_mission_graphs(service);
  auto a = do160_point("first", 40.0, 15.0);
  auto b = do160_point("second", 40.0, 15.0);  // same solve, different name
  const std::vector<ac::ScenarioResult> results = service.run({a, b});
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_EQ(results[0].values, results[1].values);
  EXPECT_EQ(service.stats().executed, 1u);
  EXPECT_EQ(service.stats().dedup_hits, 1u);
}

TEST(MissionService, CampaignValuesIdenticalAcrossScenarioThreadCounts) {
  std::vector<std::map<std::string, double>> per_thread_values;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ac::ScenarioServiceOptions opts;
    opts.threads_per_scenario = threads;
    ac::ScenarioService service(opts);
    am::register_mission_graphs(service);
    std::map<std::string, double> flat;
    for (const ac::ScenarioResult& r : service.run(campaign())) {
      ASSERT_TRUE(r.ok) << threads << " threads: " << r.error;
      for (const auto& [k, v] : r.values) flat[r.name + "." + k] = v;
    }
    per_thread_values.push_back(std::move(flat));
  }
  EXPECT_EQ(per_thread_values[0], per_thread_values[1]);
  EXPECT_EQ(per_thread_values[0], per_thread_values[2]);
}
