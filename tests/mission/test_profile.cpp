// mission::Profile schema contracts: phase validation, channel
// interpolation, boundary semantics, the serialize/deserialize round-trip
// and content hashing — the ScenarioSpec conventions applied to drivers.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "mission/profile.hpp"

namespace am = aeropack::mission;

namespace {

am::Profile two_phase() {
  am::Profile p("two_phase");
  p.add_phase(am::Phase::constant("soak", 100.0, 250.0));
  p.add_phase(am::Phase::ramp("heat", 200.0, 250.0, 350.0));
  return p;
}

}  // namespace

TEST(MissionProfile, RejectsInvalidPhases) {
  am::Profile p;
  am::Phase bad = am::Phase::constant("x", 0.0, 300.0);
  EXPECT_THROW(p.add_phase(bad), std::invalid_argument);  // zero duration
  bad = am::Phase::constant("x", -5.0, 300.0);
  EXPECT_THROW(p.add_phase(bad), std::invalid_argument);  // negative duration
  bad = am::Phase::constant("x", 10.0, -40.0);
  EXPECT_THROW(p.add_phase(bad), std::invalid_argument);  // celsius smuggled in
  bad = am::Phase::constant("x", 10.0, 300.0);
  bad.power_scale_end = -1.0;
  EXPECT_THROW(p.add_phase(bad), std::invalid_argument);  // negative scale
  bad = am::Phase::constant("x", 10.0, 300.0);
  bad.h_scale_start = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.add_phase(bad), std::invalid_argument);  // non-finite channel
  EXPECT_EQ(p.phase_count(), 0u);
}

TEST(MissionProfile, InterpolatesChannelsInsidePhases) {
  const am::Profile p = two_phase();
  EXPECT_DOUBLE_EQ(p.total_duration(), 300.0);
  EXPECT_DOUBLE_EQ(p.environment(50.0).t_ambient, 250.0);
  // Midpoint of the ramp phase: halfway between 250 and 350.
  EXPECT_DOUBLE_EQ(p.environment(200.0).t_ambient, 300.0);
  EXPECT_DOUBLE_EQ(p.environment(300.0).t_ambient, 350.0);
  // Clamped outside the mission window.
  EXPECT_DOUBLE_EQ(p.environment(-10.0).t_ambient, 250.0);
  EXPECT_DOUBLE_EQ(p.environment(1e6).t_ambient, 350.0);
}

TEST(MissionProfile, PhaseBoundarySemantics) {
  const am::Profile p = two_phase();
  // t in (start, end] belongs to the closing phase: a step that ends exactly
  // on the boundary samples the old environment; the next step the new one.
  EXPECT_EQ(p.phase_index(100.0), 0u);
  EXPECT_EQ(p.phase_index(100.0 + 1e-6), 1u);
  EXPECT_EQ(p.phase_index(0.0), 0u);
  EXPECT_EQ(p.phase_index(1e9), 1u);
  EXPECT_DOUBLE_EQ(p.phase_start(1), 100.0);
  EXPECT_DOUBLE_EQ(p.next_transition(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p.next_transition(100.0), 300.0);
  EXPECT_DOUBLE_EQ(p.next_transition(250.0), 300.0);
  // Past the end the transition clamps to the total duration.
  EXPECT_DOUBLE_EQ(p.next_transition(400.0), 300.0);
}

TEST(MissionProfile, SerializeRoundTripsExactly) {
  am::Profile p("weird|name=with%delims,and,commas");
  am::Phase ph = am::Phase::ramp("climb|=%", 123.456789, 301.25, 245.5, 0.75, 1.1);
  ph.t_sink_start = 4.0;
  ph.t_sink_end = 260.0;
  p.add_phase(ph);
  p.add_phase(am::Phase::constant("cruise", 3600.0, 245.5, 0.9, 1.0));

  const std::string wire = p.serialize();
  const am::Profile back = am::Profile::deserialize(wire);
  EXPECT_EQ(back, p);
  EXPECT_EQ(back.content_hash(), p.content_hash());
  EXPECT_EQ(back.serialize(), wire);
}

TEST(MissionProfile, GeneratorsRoundTrip) {
  for (const am::Profile& p :
       {am::Profile::do160_thermal_shock(), am::Profile::arinc600_flight(),
        am::Profile::cubesat_eclipse()}) {
    EXPECT_EQ(am::Profile::deserialize(p.serialize()), p) << p.name();
  }
}

TEST(MissionProfile, ContentHashIgnoresNameTracksValues) {
  am::Profile a = two_phase();
  am::Profile b = two_phase();
  b.set_name("renamed");
  EXPECT_EQ(a.content_hash(), b.content_hash());

  am::Profile c("two_phase");
  c.add_phase(am::Phase::constant("soak", 100.0, 250.0));
  c.add_phase(am::Phase::ramp("heat", 200.0, 250.0, 350.0 + 1e-9));
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(MissionProfile, DeserializeRejectsMalformedInput) {
  EXPECT_THROW(am::Profile::deserialize(""), std::invalid_argument);
  EXPECT_THROW(am::Profile::deserialize("scenario/1|name=x"), std::invalid_argument);
  EXPECT_THROW(am::Profile::deserialize("mission/1|name=x|phase:p=1,2,3"),
               std::invalid_argument);  // wrong field count
  EXPECT_THROW(am::Profile::deserialize("mission/1|name=x|bogus=1"), std::invalid_argument);
  // Values re-validate through add_phase: a negative duration is rejected
  // even when syntactically well-formed.
  const am::Profile good = two_phase();
  std::string wire = good.serialize();
  EXPECT_NO_THROW(am::Profile::deserialize(wire));
}

TEST(MissionProfile, Do160GeneratorShape) {
  const am::Profile p = am::Profile::do160_thermal_shock(228.15, 328.15, 5.0, 1800.0);
  ASSERT_EQ(p.phase_count(), 5u);
  // 100 K swing at 5 K/min = 1200 s per ramp.
  EXPECT_DOUBLE_EQ(p.phase(1).duration, 1200.0);
  EXPECT_DOUBLE_EQ(p.environment(0.0).t_ambient, 228.15);
  // End of the hot dwell.
  const double t_hot_end = 1800.0 + 1200.0 + 1800.0;
  EXPECT_DOUBLE_EQ(p.environment(t_hot_end).t_ambient, 328.15);
  EXPECT_DOUBLE_EQ(p.environment(p.total_duration()).t_ambient, 228.15);
}

TEST(MissionProfile, CubesatEclipseIsSquareWave) {
  const am::Profile p = am::Profile::cubesat_eclipse(2, 1000.0, 0.4, 310.0, 210.0, 0.5);
  ASSERT_EQ(p.phase_count(), 4u);
  EXPECT_DOUBLE_EQ(p.total_duration(), 2000.0);
  EXPECT_DOUBLE_EQ(p.environment(100.0).t_ambient, 310.0);
  EXPECT_DOUBLE_EQ(p.environment(100.0).power_scale, 1.0);
  // Inside the first eclipse: plateau, not a ramp.
  EXPECT_DOUBLE_EQ(p.environment(700.0).t_ambient, 210.0);
  EXPECT_DOUBLE_EQ(p.environment(900.0).t_ambient, 210.0);
  EXPECT_DOUBLE_EQ(p.environment(700.0).power_scale, 0.5);
  // Second orbit repeats the wave.
  EXPECT_DOUBLE_EQ(p.environment(1100.0).t_ambient, 310.0);
}

TEST(MissionProfile, Arinc600TimeScaleCompresses) {
  const am::Profile full = am::Profile::arinc600_flight(328.15, 243.15, 1.0);
  const am::Profile fast = am::Profile::arinc600_flight(328.15, 243.15, 0.01);
  EXPECT_EQ(full.phase_count(), fast.phase_count());
  EXPECT_NEAR(fast.total_duration(), 0.01 * full.total_duration(), 1e-9);
  // Scaled time samples the same environment shape.
  EXPECT_DOUBLE_EQ(fast.environment(0.01 * 300.0).t_ambient,
                   full.environment(300.0).t_ambient);
}

TEST(MissionProfile, EmptyProfileQueriesThrow) {
  const am::Profile p;
  EXPECT_EQ(p.phase_count(), 0u);
  EXPECT_DOUBLE_EQ(p.total_duration(), 0.0);
  EXPECT_THROW(p.phase_index(0.0), std::logic_error);
  EXPECT_THROW(p.next_transition(0.0), std::logic_error);
}
