// Thread-count determinism of whole mission campaigns: the adaptive
// controller is serial double arithmetic over deterministic parallel
// kernels, so an identical march — accepted times, traces, fields,
// counters — must come back bitwise identical at 1, 2 and 8 threads.
// This is the mission tier's TSan-facing contract as well: the same test
// binary runs under tsan-fem in CI.
#include <gtest/gtest.h>

#include <vector>

#include "exec/context.hpp"
#include "materials/solid.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "thermal/fv.hpp"

namespace am = aeropack::mission;
namespace at = aeropack::thermal;

namespace {

at::FvModel make_card() {
  at::FvModel m(at::FvGrid::uniform(0.16, 0.1, 0.0016, 8, 5, 2));
  m.set_material(aeropack::materials::fr4());
  m.set_conductivity({0, 8, 0, 5, 0, 1}, 20.0, 20.0, 0.5);  // copper-plane layer
  m.add_power({3, 5, 2, 4, 1, 2}, 6.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(250.0, 300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(250.0, 300.0));
  m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(12.0, 300.0));
  return m;
}

am::MissionSolution run_at(std::size_t threads) {
  const at::FvModel m = make_card();
  const am::Profile profile = am::Profile::do160_thermal_shock(258.15, 338.15, 20.0, 90.0);
  aeropack::ExecutionContext ctx(aeropack::ExecutionConfig{threads, false, 0});
  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.05;
  return am::run_fv_mission(ctx, m, profile, 300.0, adaptive);
}

}  // namespace

TEST(MissionDeterminism, CampaignBitwiseIdenticalAcrossThreadCounts) {
  const am::MissionSolution base = run_at(1);
  ASSERT_GT(base.steps_accepted, 5u);

  for (const std::size_t threads : {2u, 8u}) {
    const am::MissionSolution other = run_at(threads);
    ASSERT_EQ(other.steps_accepted, base.steps_accepted) << threads << " threads";
    ASSERT_EQ(other.steps_rejected, base.steps_rejected);
    ASSERT_EQ(other.phase_transitions, base.phase_transitions);
    ASSERT_EQ(other.linear_iterations, base.linear_iterations);
    ASSERT_EQ(other.times.size(), base.times.size());
    for (std::size_t s = 0; s < base.times.size(); ++s) {
      ASSERT_EQ(other.times[s], base.times[s]) << threads << " threads, step " << s;
      ASSERT_EQ(other.t_max[s], base.t_max[s]);
      ASSERT_EQ(other.t_min[s], base.t_min[s]);
      ASSERT_EQ(other.t_mean[s], base.t_mean[s]);
    }
    ASSERT_EQ(other.final_field.size(), base.final_field.size());
    for (std::size_t c = 0; c < base.final_field.size(); ++c)
      ASSERT_EQ(other.final_field[c], base.final_field[c]) << threads << " threads, cell " << c;
  }
}
