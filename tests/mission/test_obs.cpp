// Observability contract of the mission tier: the mission.* counters land
// in the bound registry, the algorithmic ones agree exactly with the
// MissionSolution bookkeeping, and the deliberately nondeterministic
// wall-clock key sits under the mission.wallclock. prefix that report
// gating excludes (tools/check_report.py).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "exec/context.hpp"
#include "materials/solid.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "thermal/fv.hpp"

namespace am = aeropack::mission;
namespace at = aeropack::thermal;

namespace {

std::uint64_t at_key(const std::map<std::string, std::uint64_t>& counters,
                     const std::string& key) {
  const auto it = counters.find(key);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace

TEST(MissionObs, CountersMatchSolutionBookkeeping) {
  at::FvModel m(at::FvGrid::uniform(0.06, 0.02, 0.01, 6, 4, 3));
  m.set_material(aeropack::materials::aluminum_6061());
  m.add_power(m.all_cells(), 4.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(40.0, 300.0));

  const am::Profile profile = am::Profile::cubesat_eclipse(1, 120.0, 0.4, 330.0, 250.0, 0.5);
  aeropack::ExecutionContext ctx(aeropack::ExecutionConfig{1, true, 0});
  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.02;
  adaptive.dt_initial = 30.0;
  const am::MissionSolution sol = am::run_fv_mission(ctx, m, profile, 300.0, adaptive);

  const auto counters = ctx.metrics().counters();
  EXPECT_EQ(at_key(counters, "mission.steps"), sol.steps_accepted);
  EXPECT_EQ(at_key(counters, "mission.step_rejections"), sol.steps_rejected);
  EXPECT_EQ(at_key(counters, "mission.phase_transitions"), sol.phase_transitions);
  EXPECT_EQ(at_key(counters, "mission.cg_iterations"), sol.linear_iterations);
  // Wall clock is nondeterministic by nature but must be present — gating
  // excludes it by the "mission.wallclock." prefix, so the key spelling is
  // part of the contract.
  EXPECT_EQ(counters.count("mission.wallclock.elapsed_us"), 1u);

  const auto gauges = ctx.metrics().gauges();
  EXPECT_DOUBLE_EQ(gauges.at("mission.sim_seconds"), profile.total_duration());
  EXPECT_GE(gauges.at("mission.wall_seconds"), 0.0);
}

TEST(MissionObs, CountersStayInTheirContext) {
  at::FvModel m(at::FvGrid::uniform(0.06, 0.02, 0.01, 6, 4, 3));
  m.set_material(aeropack::materials::aluminum_6061());
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(40.0, 300.0));
  am::Profile profile("p");
  profile.add_phase(am::Phase::constant("dwell", 30.0, 310.0));

  aeropack::ExecutionContext armed(aeropack::ExecutionConfig{1, true, 0});
  aeropack::ExecutionContext other(aeropack::ExecutionConfig{1, true, 0});
  (void)am::run_fv_mission(armed, m, profile, 300.0);
  EXPECT_GT(at_key(armed.metrics().counters(), "mission.steps"), 0u);
  EXPECT_EQ(at_key(other.metrics().counters(), "mission.steps"), 0u);
}
