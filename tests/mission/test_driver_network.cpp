// Driver-aware ThermalNetwork transients: the lumped counterpart of the FV
// regression — boundary temperatures and loads follow the drive at every
// step's end time, and the undriven overloads are exactly the null-drive
// special case of the same march.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/network.hpp"

namespace at = aeropack::thermal;

namespace {

struct Rig {
  at::ThermalNetwork net;
  at::NodeId box = 0, sink = 0;
};

Rig make_rig(double load_w = 50.0) {
  Rig r;
  r.box = r.net.add_node("box", 2000.0);
  r.sink = r.net.add_boundary("sink", 300.0);
  r.net.add_conductor(r.box, r.sink, 5.0);
  r.net.add_heat_load(r.box, load_w);
  return r;
}

}  // namespace

TEST(MissionDriverNetwork, NullEquivalentDriveIsBitwiseIdentical) {
  const Rig r = make_rig();
  const aeropack::numeric::Vector initial(r.net.node_count(), 300.0);
  const at::TransientSolution undriven = r.net.solve_transient(100.0, 5.0, initial);

  at::NetworkDrive identity;
  identity.boundary_temperature = [](double, at::NodeId, double stored) { return stored; };
  identity.load_scale = [](double) { return 1.0; };
  const at::TransientSolution driven = r.net.solve_transient(100.0, 5.0, initial, identity);

  ASSERT_EQ(undriven.times.size(), driven.times.size());
  for (std::size_t s = 0; s < undriven.times.size(); ++s)
    for (std::size_t i = 0; i < undriven.temperatures[s].size(); ++i)
      EXPECT_EQ(undriven.temperatures[s][i], driven.temperatures[s][i]) << s << "/" << i;
}

TEST(MissionDriverNetwork, MidRunBoundaryChangeChangesTrajectory) {
  const Rig r = make_rig();
  const aeropack::numeric::Vector initial(r.net.node_count(), 300.0);
  const at::TransientSolution frozen = r.net.solve_transient(200.0, 5.0, initial);

  at::NetworkDrive drive;
  drive.boundary_temperature = [](double t, at::NodeId, double stored) {
    return t > 100.0 ? stored + 30.0 : stored;
  };
  const at::TransientSolution driven = r.net.solve_transient(200.0, 5.0, initial, drive);

  // Same march until the jump, warmer box afterwards.
  EXPECT_DOUBLE_EQ(frozen.temperatures[10][r.box], driven.temperatures[10][r.box]);
  EXPECT_GT(driven.temperatures.back()[r.box], frozen.temperatures.back()[r.box] + 5.0);
  // The boundary row itself reports the driven value.
  EXPECT_DOUBLE_EQ(driven.temperatures.back()[r.sink], 330.0);
}

TEST(MissionDriverNetwork, LoadScaleDutyCyclesDissipation) {
  const Rig r = make_rig(80.0);
  const aeropack::numeric::Vector initial(r.net.node_count(), 316.0);  // steady: 300 + 80/5
  at::NetworkDrive off;
  off.load_scale = [](double) { return 0.0; };
  const at::TransientSolution cooled = r.net.solve_transient(4000.0, 20.0, initial, off);
  // With the load off the box relaxes to the 300 K sink.
  EXPECT_NEAR(cooled.temperatures.back()[r.box], 300.0, 0.5);
  const at::TransientSolution held = r.net.solve_transient(4000.0, 20.0, initial);
  EXPECT_NEAR(held.temperatures.back()[r.box], 316.0, 1e-6);
}
