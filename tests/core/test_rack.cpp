// ARINC rack model: flow split, exhaust, generation-growth failure mode.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/rack.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::RackDesign uniform_rack(int slots, double watts_each) {
  ac::RackDesign r;
  for (int i = 0; i < slots; ++i) {
    ac::RackSlot s;
    s.name = "slot" + std::to_string(i);
    s.power = watts_each;
    // Surface flux after in-board spreading: both card faces + 1.3x hot-spot
    // concentration.
    s.peak_flux = 1.3 * watts_each / (2.0 * s.channel.card_width * s.channel.card_length);
    r.slots.push_back(s);
  }
  r.inlet_temperature = ac::celsius_to_kelvin(40.0);
  return r;
}
}  // namespace

TEST(Rack, UniformRackUniformResults) {
  const auto rack = uniform_rack(6, 20.0);
  const auto res = ac::solve_rack(rack, ac::celsius_to_kelvin(105.0));
  ASSERT_EQ(res.slots.size(), 6u);
  for (const auto& s : res.slots) {
    EXPECT_NEAR(s.exhaust_temperature, res.slots[0].exhaust_temperature, 1e-9);
    EXPECT_TRUE(s.feasible);
  }
  // Mixed exhaust equals the common exhaust for identical slots.
  EXPECT_NEAR(res.mixed_exhaust, res.slots[0].exhaust_temperature, 1e-9);
  EXPECT_TRUE(res.all_feasible);
}

TEST(Rack, ExhaustMatchesArincRise) {
  const auto rack = uniform_rack(4, 25.0);
  const auto res = ac::solve_rack(rack, ac::celsius_to_kelvin(120.0));
  // Blower sized for the rack total: the bulk rise is the standard ~16 K.
  EXPECT_NEAR(res.mixed_exhaust - rack.inlet_temperature, 16.3, 1.0);
}

TEST(Rack, HotSlotInColdRack) {
  // One slot grows to the next module generation while the blower stays
  // sized for the original rack: that slot overheats, the rest stay fine.
  auto rack = uniform_rack(6, 10.0);
  rack.design_power = 60.0;       // blower sized for 6 x 10 W
  rack.slots[2].power = 60.0;     // generation growth in one slot
  rack.slots[2].peak_flux = 5e3;
  const auto res = ac::solve_rack(rack, ac::celsius_to_kelvin(105.0));
  EXPECT_FALSE(res.slots[2].feasible);
  for (std::size_t i = 0; i < res.slots.size(); ++i)
    if (i != 2) EXPECT_TRUE(res.slots[i].feasible) << i;
  EXPECT_FALSE(res.all_feasible);
  EXPECT_GT(res.slots[2].exhaust_temperature, res.slots[0].exhaust_temperature + 20.0);
}

TEST(Rack, WiderChannelGetsMoreFlow) {
  auto rack = uniform_rack(2, 20.0);
  rack.slots[1].channel.gap = 10e-3;  // double gap
  const auto res = ac::solve_rack(rack, ac::celsius_to_kelvin(120.0));
  // Same power, more flow: cooler exhaust in the wide slot.
  EXPECT_LT(res.slots[1].exhaust_temperature, res.slots[0].exhaust_temperature);
}

TEST(Rack, ValidationCatchesNonsense) {
  ac::RackDesign empty;
  EXPECT_THROW(ac::solve_rack(empty, 380.0), std::invalid_argument);
  auto rack = uniform_rack(2, 10.0);
  rack.slots[0].power = -1.0;
  EXPECT_THROW(ac::solve_rack(rack, 380.0), std::invalid_argument);
}
