// Qualification campaign simulator.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/qualification.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::EquipmentUnderTest healthy_eut() {
  ac::EquipmentUnderTest eut;
  eut.name = "SEB assembly";
  eut.mass = 4.0;
  eut.fundamental_frequency = 180.0;
  eut.damping_ratio = 0.05;
  eut.mount_section_modulus = 3e-7;
  eut.mount_length = 0.04;
  eut.mount_yield = 276e6;
  eut.board_edge = 0.25;
  eut.board_thickness = 2e-3;
  eut.critical_component_length = 0.03;
  eut.worst_junction_at_ambient = [](double ambient) { return ambient + 35.0; };
  return eut;
}
}  // namespace

TEST(Qualification, HealthyUnitPassesAllFour) {
  // The paper: "The seats have been submitted to all the different tests
  // without damage."
  const auto rpt = ac::run_campaign(healthy_eut());
  ASSERT_EQ(rpt.results.size(), 4u);
  for (const auto& t : rpt.results) EXPECT_TRUE(t.passed) << t.test << ": " << t.detail;
  EXPECT_TRUE(rpt.all_passed);
}

TEST(Qualification, AccelerationMarginScalesWithLevel) {
  const auto eut = healthy_eut();
  ac::CampaignOptions nine;
  nine.acceleration_g = 9.0;
  ac::CampaignOptions thirty;
  thirty.acceleration_g = 30.0;
  const auto a = ac::run_linear_acceleration(eut, nine);
  const auto b = ac::run_linear_acceleration(eut, thirty);
  EXPECT_NEAR(a.margin / b.margin, 30.0 / 9.0, 1e-9);
}

TEST(Qualification, WeakBracketFailsAcceleration) {
  auto eut = healthy_eut();
  eut.mount_section_modulus = 5e-9;  // tiny bracket
  const auto t = ac::run_linear_acceleration(eut, {});
  EXPECT_FALSE(t.passed);
  EXPECT_LT(t.margin, 1.0);
}

TEST(Qualification, SoftBoardFailsVibration) {
  auto eut = healthy_eut();
  eut.fundamental_frequency = 45.0;  // resonates inside the plateau
  eut.board_thickness = 0.8e-3;
  eut.critical_component_length = 0.06;
  ac::CampaignOptions opts;
  opts.vibration_curve = aeropack::fem::do160_curve_d1();  // severe zone
  const auto t = ac::run_random_vibration(eut, opts);
  EXPECT_FALSE(t.passed);
}

TEST(Qualification, HotterCurveLowersVibrationMargin) {
  const auto eut = healthy_eut();
  ac::CampaignOptions c1;
  c1.vibration_curve = aeropack::fem::do160_curve_c1();
  ac::CampaignOptions d1;
  d1.vibration_curve = aeropack::fem::do160_curve_d1();
  EXPECT_GT(ac::run_random_vibration(eut, c1).margin,
            ac::run_random_vibration(eut, d1).margin);
}

TEST(Qualification, ClimaticFailsWhenJunctionBlowsLimit) {
  auto eut = healthy_eut();
  eut.worst_junction_at_ambient = [](double ambient) { return ambient + 90.0; };
  ac::CampaignOptions opts;
  opts.climatic_high = ac::celsius_to_kelvin(55.0);
  const auto t = ac::run_climatic(eut, opts);
  EXPECT_FALSE(t.passed);
}

TEST(Qualification, ClimaticNeedsThermalModel) {
  auto eut = healthy_eut();
  eut.worst_junction_at_ambient = nullptr;
  EXPECT_THROW(ac::run_climatic(eut, {}), std::invalid_argument);
}

TEST(Qualification, ThermalShockMarginShrinksWithCycles) {
  const auto eut = healthy_eut();
  ac::CampaignOptions few;
  few.shock_cycles = 10;
  ac::CampaignOptions many;
  many.shock_cycles = 500;
  EXPECT_GT(ac::run_thermal_shock(eut, few).margin,
            ac::run_thermal_shock(eut, many).margin);
}

TEST(Qualification, WiderShockRangeIsHarsher) {
  const auto eut = healthy_eut();
  ac::CampaignOptions mild;
  mild.shock_low = ac::celsius_to_kelvin(-10.0);
  ac::CampaignOptions paper;  // -45 / +55 default
  EXPECT_GT(ac::run_thermal_shock(eut, mild).margin,
            ac::run_thermal_shock(eut, paper).margin);
}
