// COSEE SEB scenario model — unit-level behaviour (the quantitative paper
// reproduction lives in tests/integration/test_paper_claims.cpp).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/seb.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
const double kCabin = ac::celsius_to_kelvin(25.0);
}

TEST(SebModel, EnergySplitsAcrossPaths) {
  ac::SebModel m{ac::SebDesign{}};
  const auto pt = m.solve(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_NEAR(pt.q_lhp_path + pt.q_natural_path, 60.0, 1e-6);
  EXPECT_GT(pt.q_lhp_path, 0.0);
  EXPECT_GT(pt.q_natural_path, 0.0);
}

TEST(SebModel, LhpAlwaysImproves) {
  ac::SebModel m{ac::SebDesign{}};
  for (double q : {10.0, 30.0, 60.0, 90.0}) {
    const auto no = m.solve(q, kCabin, ac::SebCooling::NaturalOnly);
    const auto yes = m.solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp);
    EXPECT_LT(yes.dt_pcb_air, no.dt_pcb_air) << "Q=" << q;
  }
}

TEST(SebModel, TiltDegradesButWorks) {
  ac::SebModel m{ac::SebDesign{}};
  const auto flat = m.solve(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0);
  const auto tilt = m.solve(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
  EXPECT_GT(tilt.dt_pcb_air, flat.dt_pcb_air);
  EXPECT_LT(tilt.dt_pcb_air, 1.25 * flat.dt_pcb_air);  // small penalty only
  EXPECT_TRUE(tilt.lhp_within_capillary);
  EXPECT_GT(flat.lhp_capillary_margin, tilt.lhp_capillary_margin);
}

TEST(SebModel, MonotoneInPower) {
  ac::SebModel m{ac::SebDesign{}};
  double prev = 0.0;
  for (double q : {5.0, 20.0, 50.0, 80.0, 110.0}) {
    const auto pt = m.solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp);
    EXPECT_GT(pt.dt_pcb_air, prev);
    prev = pt.dt_pcb_air;
  }
}

TEST(SebModel, StageResistancesSane) {
  ac::SebModel m{ac::SebDesign{}};
  EXPECT_GT(m.heat_pipe_stage_resistance(), 0.01);
  EXPECT_LT(m.heat_pipe_stage_resistance(), 1.0);
  EXPECT_GT(m.joint_stage_resistance(), 0.01);
  EXPECT_LT(m.joint_stage_resistance(), 1.0);
}

TEST(SebModel, BetterTimShortensThePath) {
  // The paper's motivation for NANOPACK: "this technology requires the use
  // of many thermal interfaces; thus the optimization of the whole thermal
  // path implies to improve the TIM".
  ac::SebDesign pad;
  pad.joint_tim = aeropack::tim::conventional_gap_pad();
  ac::SebDesign nano;
  nano.joint_tim = aeropack::tim::nanopack_multi_epoxy_silver_sphere();
  ac::SebModel m_pad{pad};
  ac::SebModel m_nano{nano};
  const auto a = m_pad.solve(80.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const auto b = m_nano.solve(80.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_LT(b.dt_pcb_air, a.dt_pcb_air - 2.0);
  EXPECT_GT(b.q_lhp_path, a.q_lhp_path);
}

TEST(SebModel, CapabilityInvertsDeltaT) {
  ac::SebModel m{ac::SebDesign{}};
  const double q60 = m.capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const auto check = m.solve(q60, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_NEAR(check.dt_pcb_air, 60.0, 0.05);
}

TEST(SebModel, InvalidInputsThrow) {
  ac::SebModel m{ac::SebDesign{}};
  EXPECT_THROW(m.solve(-1.0, kCabin, ac::SebCooling::NaturalOnly), std::invalid_argument);
  EXPECT_THROW(m.solve(10.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 90.0),
               std::invalid_argument);
  EXPECT_THROW(m.capability_at_dt(0.0, kCabin, ac::SebCooling::NaturalOnly),
               std::invalid_argument);
  ac::SebDesign bad;
  bad.lhp_count = 0;
  EXPECT_THROW(ac::SebModel{bad}, std::invalid_argument);
}

TEST(SebModel, HotterCabinShiftsAbsoluteNotRelative) {
  ac::SebModel m{ac::SebDesign{}};
  const auto cool = m.solve(40.0, ac::celsius_to_kelvin(20.0), ac::SebCooling::HeatPipesAndLhp);
  const auto warm = m.solve(40.0, ac::celsius_to_kelvin(40.0), ac::SebCooling::HeatPipesAndLhp);
  // dT changes only weakly (via property/film variation), absolute T shifts.
  EXPECT_NEAR(warm.dt_pcb_air, cool.dt_pcb_air, 3.0);
  EXPECT_GT(warm.t_pcb, cool.t_pcb + 15.0);
}
