// The Fig.-4 three-level thermal simulation chain.
#include <gtest/gtest.h>

#include "core/levels.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::Equipment conduction_cooled_unit() {
  ac::Equipment eq;
  eq.name = "processing unit";
  ac::Module mod;
  mod.name = "M1";
  ac::Board b;
  b.name = "cpu board";
  b.length = 0.20;
  b.width = 0.15;
  b.drain_thickness = 1.0e-3;  // aluminum core: required at this power
  ac::Component cpu;
  cpu.reference = "CPU";
  cpu.power = 12.0;
  cpu.footprint_area = 9e-4;
  cpu.theta_jc = 0.8;
  cpu.x = 0.10;
  cpu.y = 0.075;
  cpu.part_type = aeropack::reliability::PartType::Microprocessor;
  ac::Component reg;
  reg.reference = "REG";
  reg.power = 5.0;
  reg.footprint_area = 2e-4;
  reg.theta_jc = 2.0;
  reg.x = 0.05;
  reg.y = 0.05;
  reg.part_type = aeropack::reliability::PartType::PowerTransistor;
  b.components = {cpu, reg};
  mod.boards.push_back(b);
  eq.modules.push_back(mod);
  return eq;
}
}  // namespace

TEST(Level1, CaseBetweenAmbientAndInternal) {
  const auto eq = conduction_cooled_unit();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto r = ac::run_level1(eq, spec, ac::CoolingTechnology::ConductionCooled);
  EXPECT_GT(r.internal_air_temperature, r.case_temperature);
  EXPECT_GT(r.case_temperature, spec.ambient_temperature);
  EXPECT_TRUE(r.within_limits);
}

TEST(Level2, ComponentsCreateHotSpots) {
  const auto eq = conduction_cooled_unit();
  ac::Specification spec;
  const auto r = ac::run_level2(eq.modules[0].boards[0], spec,
                                ac::CoolingTechnology::ConductionCooled,
                                ac::celsius_to_kelvin(50.0), 20);
  EXPECT_GT(r.max_temperature, r.mean_temperature);
  ASSERT_EQ(r.component_local_temperature.size(), 2u);
  // Local board temperature under each part exceeds the wall temperature.
  for (double t : r.component_local_temperature)
    EXPECT_GT(t, ac::celsius_to_kelvin(50.0));
  EXPECT_LT(r.energy_residual, 0.2);
  EXPECT_GT(r.cell_count, 50u);
}

TEST(Level2, ThermalDrainCoolsTheBoard) {
  // The paper's Level-2 design lever: "specific drains".
  auto eq = conduction_cooled_unit();
  ac::Specification spec;
  auto& board = eq.modules[0].boards[0];
  board.drain_thickness = 0.0;
  const auto bare = ac::run_level2(board, spec, ac::CoolingTechnology::ConductionCooled,
                                   ac::celsius_to_kelvin(50.0), 16);
  board.drain_thickness = 1.0e-3;
  const auto drained = ac::run_level2(board, spec, ac::CoolingTechnology::ConductionCooled,
                                      ac::celsius_to_kelvin(50.0), 16);
  EXPECT_LT(drained.max_temperature, bare.max_temperature - 30.0);
}

TEST(Level2, MoreCopperCoolsTheBoard) {
  // The other Level-2 lever: "copper layers".
  auto eq = conduction_cooled_unit();
  ac::Specification spec;
  auto& board = eq.modules[0].boards[0];
  board.drain_thickness = 0.0;
  board.stackup.copper_layers = 2;
  const auto thin = ac::run_level2(board, spec, ac::CoolingTechnology::ConductionCooled,
                                   ac::celsius_to_kelvin(50.0), 16);
  board.stackup.copper_layers = 10;
  const auto thick = ac::run_level2(board, spec, ac::CoolingTechnology::ConductionCooled,
                                    ac::celsius_to_kelvin(50.0), 16);
  EXPECT_LT(thick.max_temperature, thin.max_temperature - 1.0);
}

TEST(Level3, JunctionAboveBoardByThetaJc) {
  const auto eq = conduction_cooled_unit();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(45.0);
  const auto all = ac::run_thermal_levels(eq, spec, ac::CoolingTechnology::ConductionCooled, 16);
  ASSERT_EQ(all.level3.size(), 2u);
  ASSERT_EQ(all.level2.size(), 1u);
  for (std::size_t i = 0; i < all.level3.size(); ++i) {
    EXPECT_GT(all.level3[i].junction_temperature,
              all.level2[0].component_local_temperature[i]);
  }
  EXPECT_GE(all.worst_junction, all.level3[0].junction_temperature);
}

TEST(Level3, MtbfComputedAndComparedToTarget) {
  const auto eq = conduction_cooled_unit();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(45.0);
  const auto all = ac::run_thermal_levels(eq, spec, ac::CoolingTechnology::ConductionCooled, 12);
  EXPECT_GT(all.mtbf.mtbf_hours, 0.0);
  EXPECT_EQ(all.mtbf.contributions.size(), 2u);
  // Feasible design at these powers: junctions inside the 125 C limit.
  for (const auto& c : all.level3) EXPECT_TRUE(c.within_limit) << c.reference;
}

TEST(Level3, HotterAmbientRaisesJunctions) {
  const auto eq = conduction_cooled_unit();
  ac::Specification cool;
  cool.ambient_temperature = ac::celsius_to_kelvin(30.0);
  ac::Specification hot;
  hot.ambient_temperature = ac::celsius_to_kelvin(70.0);
  const auto a = ac::run_thermal_levels(eq, cool, ac::CoolingTechnology::ConductionCooled, 12);
  const auto b = ac::run_thermal_levels(eq, hot, ac::CoolingTechnology::ConductionCooled, 12);
  EXPECT_GT(b.worst_junction, a.worst_junction + 20.0);
}

TEST(Levels, MeshTooCoarseThrows) {
  const auto eq = conduction_cooled_unit();
  EXPECT_THROW(ac::run_level2(eq.modules[0].boards[0], ac::Specification{},
                              ac::CoolingTechnology::ConductionCooled, 320.0, 2),
               std::invalid_argument);
}
