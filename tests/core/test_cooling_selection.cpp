// Level-1 cooling technology selection (Fig. 5 trade).
#include <gtest/gtest.h>

#include "core/cooling_selection.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::Equipment box_with_power(double watts, std::size_t n_modules = 1) {
  ac::Equipment eq;
  eq.name = "test box";
  for (std::size_t m = 0; m < n_modules; ++m) {
    ac::Module mod;
    mod.name = "M" + std::to_string(m);
    ac::Board b;
    b.name = "board";
    ac::Component c;
    c.reference = "LOAD";
    c.power = watts / static_cast<double>(n_modules);
    b.components.push_back(c);
    mod.boards.push_back(b);
    eq.modules.push_back(mod);
  }
  return eq;
}
}  // namespace

TEST(CoolingSelection, LowPowerPicksFreeConvection) {
  const auto eq = box_with_power(8.0);
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto sel = ac::select_cooling(eq, spec);
  EXPECT_TRUE(sel.any_feasible);
  EXPECT_EQ(sel.selected, ac::CoolingTechnology::FreeConvection);
}

TEST(CoolingSelection, MediumPowerEscalatesBeyondFreeConvection) {
  const auto eq = box_with_power(150.0, 3);
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto sel = ac::select_cooling(eq, spec);
  EXPECT_TRUE(sel.any_feasible);
  EXPECT_NE(sel.selected, ac::CoolingTechnology::FreeConvection);
}

TEST(CoolingSelection, NoForcedAirDisablesAirTechnologies) {
  // The IFE situation: "they are not connected to the aircraft cooling
  // system" — the selector must not offer ARINC air.
  const auto eq = box_with_power(60.0);
  ac::Specification spec;
  spec.forced_air_available = false;
  const auto sel = ac::select_cooling(eq, spec);
  for (const auto& a : sel.assessments) {
    if (a.technology == ac::CoolingTechnology::DirectAirFlow ||
        a.technology == ac::CoolingTechnology::AirFlowAround) {
      EXPECT_FALSE(a.available);
      EXPECT_FALSE(a.feasible);
    }
  }
  EXPECT_NE(sel.selected, ac::CoolingTechnology::DirectAirFlow);
}

TEST(CoolingSelection, CapabilitiesOrderedSensibly) {
  const auto eq = box_with_power(50.0, 2);
  ac::Specification spec;
  const double free_conv =
      ac::technology_capability(ac::CoolingTechnology::FreeConvection, eq, spec);
  const double liquid =
      ac::technology_capability(ac::CoolingTechnology::LiquidFlowThrough, eq, spec);
  const double two_phase =
      ac::technology_capability(ac::CoolingTechnology::TwoPhase, eq, spec);
  // Liquid cold plates top the ladder; passive free convection (helped by
  // radiation off the painted chassis) is comparable to a two-string
  // two-phase solution for a box this size, so only assert the top rank and
  // that everything is positive.
  EXPECT_GT(liquid, two_phase);
  EXPECT_GT(liquid, free_conv);
  EXPECT_GT(two_phase, 0.0);
  EXPECT_GT(free_conv, 0.0);
}

TEST(CoolingSelection, HotAmbientKillsBudget) {
  const auto eq = box_with_power(30.0);
  ac::Specification hot;
  hot.ambient_temperature = hot.local_ambient_limit;  // zero budget
  EXPECT_DOUBLE_EQ(
      ac::technology_capability(ac::CoolingTechnology::FreeConvection, eq, hot), 0.0);
}

TEST(CoolingSelection, AltitudeDeratesFreeConvection) {
  const auto eq = box_with_power(20.0);
  ac::Specification sl;
  sl.altitude = 0.0;
  ac::Specification high = sl;
  high.altitude = 12000.0;
  const double c_sl = ac::technology_capability(ac::CoolingTechnology::FreeConvection, eq, sl);
  const double c_hi =
      ac::technology_capability(ac::CoolingTechnology::FreeConvection, eq, high);
  // Radiation is altitude-independent, so the derating is partial.
  EXPECT_GT(c_sl, 1.1 * c_hi);
}

TEST(CoolingSelection, ComplexityRanksSimplestFirst) {
  const auto eq = box_with_power(10.0);
  const auto sel = ac::select_cooling(eq, ac::Specification{});
  // Assessments are sorted by complexity after selection.
  for (std::size_t i = 1; i < sel.assessments.size(); ++i)
    EXPECT_LE(sel.assessments[i - 1].complexity, sel.assessments[i].complexity);
  EXPECT_FALSE(to_string(sel.selected).empty());
}
