// SEB warm-up transient behaviour.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/seb.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
const double kCabin = ac::celsius_to_kelvin(25.0);
}

TEST(SebTransient, ApproachesSteadyState) {
  ac::SebModel m{ac::SebDesign{}};
  const auto tr = m.warmup(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0, 14400.0, 30.0);
  ASSERT_GT(tr.t_pcb.size(), 10u);
  const double final_dt = tr.t_pcb.back() - kCabin;
  EXPECT_NEAR(final_dt, tr.steady_dt, 0.07 * tr.steady_dt);
}

TEST(SebTransient, StartsAtCabinAndRisesMonotonically) {
  ac::SebModel m{ac::SebDesign{}};
  const auto tr = m.warmup(60.0, kCabin, ac::SebCooling::NaturalOnly, 0.0, 3600.0, 30.0);
  EXPECT_NEAR(tr.t_pcb.front(), kCabin, 1e-9);
  for (std::size_t i = 1; i < tr.t_pcb.size(); ++i)
    EXPECT_GE(tr.t_pcb[i], tr.t_pcb[i - 1] - 1e-9);
}

TEST(SebTransient, TimeConstantInTensOfMinutes) {
  // A ~5 kg assembly behind ~1 K/W reaches 90 % in roughly 30-90 minutes —
  // the reason IFE boxes soak for an hour before steady measurements.
  ac::SebModel m{ac::SebDesign{}};
  const auto tr = m.warmup(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0, 14400.0, 30.0);
  EXPECT_GT(tr.time_to_90pct, 600.0);
  EXPECT_LT(tr.time_to_90pct, 7200.0);
}

TEST(SebTransient, LhpChainWarmsFasterToLowerTemperature) {
  ac::SebModel m{ac::SebDesign{}};
  const auto no = m.warmup(40.0, kCabin, ac::SebCooling::NaturalOnly, 0.0, 14400.0, 60.0);
  const auto yes =
      m.warmup(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0, 14400.0, 60.0);
  EXPECT_LT(yes.steady_dt, no.steady_dt);
  // The LHP chain couples in the seat rods' thermal mass, so its settling
  // time is comparable (slightly longer) despite the lower resistance —
  // what matters is that the PCB is cooler at every instant.
  EXPECT_LT(yes.time_to_90pct, 1.5 * no.time_to_90pct);
  for (std::size_t i = 0; i < yes.t_pcb.size(); ++i)
    EXPECT_LE(yes.t_pcb[i], no.t_pcb[i] + 1e-6);
}

TEST(SebTransient, CarbonSeatStoresLessHeat) {
  ac::SebDesign carbon;
  carbon.seat.material = aeropack::materials::carbon_composite();
  ac::SebModel mc{carbon};
  ac::SebModel ma{ac::SebDesign{}};
  const auto a = ma.warmup(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0, 14400.0, 60.0);
  const auto c = mc.warmup(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0, 14400.0, 60.0);
  // CFRP rods have ~2/3 the volumetric heat capacity of aluminum, and the
  // carbon chain runs hotter: different transient, both converge.
  EXPECT_GT(c.steady_dt, a.steady_dt);
}

TEST(SebTransient, BadTimeSpanThrows) {
  ac::SebModel m{ac::SebDesign{}};
  EXPECT_THROW(m.warmup(40.0, kCabin, ac::SebCooling::NaturalOnly, 0.0, 10.0, 20.0),
               std::invalid_argument);
  EXPECT_THROW(m.warmup(-1.0, kCabin, ac::SebCooling::NaturalOnly), std::invalid_argument);
}
