// Level-2 direct-air model: streamwise air heating (conjugate coupling).
#include <gtest/gtest.h>

#include "core/levels.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::Board board_with_two_loads() {
  ac::Board b;
  b.name = "air-cooled";
  b.length = 0.20;
  b.width = 0.15;
  b.drain_thickness = 0.0;
  ac::Component up;  // near the inlet (x small)
  up.reference = "UP";
  up.power = 6.0;
  up.footprint_area = 4e-4;
  up.x = 0.03;
  up.y = 0.075;
  ac::Component down = up;  // mirrored near the outlet
  down.reference = "DOWN";
  down.x = 0.17;
  b.components = {up, down};
  return b;
}
}  // namespace

TEST(Level2AirFlow, DownstreamComponentRunsHotter) {
  // Identical parts at inlet and outlet: the outlet part must be hotter
  // because the air arrives pre-heated — the effect the streamwise coupling
  // exists to capture.
  const auto b = board_with_two_loads();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto r = ac::run_level2(b, spec, ac::CoolingTechnology::DirectAirFlow,
                                spec.ambient_temperature, 20);
  ASSERT_EQ(r.component_local_temperature.size(), 2u);
  EXPECT_GT(r.component_local_temperature[1], r.component_local_temperature[0] + 0.5);
}

TEST(Level2AirFlow, EverythingAboveInlet) {
  const auto b = board_with_two_loads();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto r = ac::run_level2(b, spec, ac::CoolingTechnology::DirectAirFlow,
                                spec.ambient_temperature, 16);
  for (double t : r.component_local_temperature) EXPECT_GT(t, spec.ambient_temperature);
  EXPECT_GT(r.max_temperature, r.mean_temperature);
}

TEST(Level2AirFlow, MorePowerMoreRise) {
  auto b = board_with_two_loads();
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);
  const auto low = ac::run_level2(b, spec, ac::CoolingTechnology::DirectAirFlow,
                                  spec.ambient_temperature, 16);
  for (auto& c : b.components) c.power *= 2.0;
  const auto high = ac::run_level2(b, spec, ac::CoolingTechnology::DirectAirFlow,
                                   spec.ambient_temperature, 16);
  EXPECT_GT(high.max_temperature, low.max_temperature + 5.0);
}
