// Equipment hierarchy model.
#include <gtest/gtest.h>

#include "core/equipment.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::Equipment sample_equipment() {
  ac::Equipment eq;
  eq.name = "nav computer";
  ac::Module mod;
  mod.name = "CPU module";
  ac::Board b;
  b.name = "main";
  b.components.push_back({"U1", 10.0, 4e-4, 1.5, 398.15, 0.1, 0.07,
                          aeropack::reliability::PartType::Microprocessor,
                          aeropack::reliability::Quality::FullMil, 1});
  b.components.push_back({"U2", 2.5, 1e-4, 3.0, 398.15, 0.05, 0.07,
                          aeropack::reliability::PartType::Memory,
                          aeropack::reliability::Quality::FullMil, 4});
  mod.boards.push_back(b);
  eq.modules.push_back(mod);
  return eq;
}
}  // namespace

TEST(Equipment, PowerRollup) {
  const auto eq = sample_equipment();
  EXPECT_NEAR(eq.modules[0].boards[0].total_power(), 10.0 + 4 * 2.5, 1e-12);
  EXPECT_NEAR(eq.total_power(), 20.0, 1e-12);
}

TEST(Equipment, ComponentFlux) {
  const auto eq = sample_equipment();
  EXPECT_NEAR(eq.modules[0].boards[0].components[0].flux(), 10.0 / 4e-4, 1e-9);
}

TEST(Equipment, SurfaceAreaOfEnvelope) {
  ac::Equipment eq;
  eq.length = 0.3;
  eq.width = 0.2;
  eq.height = 0.1;
  EXPECT_NEAR(eq.surface_area(), 2.0 * (0.06 + 0.03 + 0.02), 1e-12);
}

TEST(Equipment, BomCarriesHierarchyAndCounts) {
  const auto eq = sample_equipment();
  const auto bom = eq.bill_of_materials(358.15);
  ASSERT_EQ(bom.size(), 2u);
  EXPECT_EQ(bom[0].reference, "CPU module/main/U1");
  EXPECT_EQ(bom[1].count, 4);
  EXPECT_DOUBLE_EQ(bom[0].junction_temperature, 358.15);
}

TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(ac::celsius_to_kelvin(125.0), 398.15);
  EXPECT_DOUBLE_EQ(ac::kelvin_to_celsius(ac::celsius_to_kelvin(-45.0)), -45.0);
}

TEST(Specification, DefaultsMatchPaperFigures) {
  const ac::Specification spec;
  EXPECT_DOUBLE_EQ(spec.junction_limit, 398.15);        // 125 C
  EXPECT_DOUBLE_EQ(spec.local_ambient_limit, 358.15);   // 85 C
  EXPECT_DOUBLE_EQ(spec.mtbf_target_hours, 40000.0);    // "about 40,000 h"
  EXPECT_DOUBLE_EQ(spec.linear_acceleration_g, 9.0);    // "up to 9 g"
  EXPECT_DOUBLE_EQ(spec.thermal_shock_low, 228.15);     // -45 C
  EXPECT_DOUBLE_EQ(spec.thermal_shock_rate, 5.0);       // 5 C/min
}
