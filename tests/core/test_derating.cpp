// Derating policy checks.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/derating.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {
ac::Equipment one_part_equipment(double power, double footprint) {
  ac::Equipment eq;
  ac::Module m;
  m.name = "M";
  ac::Board b;
  b.name = "B";
  ac::Component c;
  c.reference = "U1";
  c.power = power;
  c.footprint_area = footprint;
  b.components.push_back(c);
  m.boards.push_back(b);
  eq.modules.push_back(m);
  return eq;
}
}  // namespace

TEST(Derating, CompliantPartPasses) {
  const auto eq = one_part_equipment(2.0, 4e-4);  // 0.5 W/cm^2
  const auto rpt = ac::check_derating(eq, ac::DeratingPolicy::navmat(),
                                      {ac::celsius_to_kelvin(80.0)},
                                      ac::celsius_to_kelvin(125.0), {10.0});
  EXPECT_TRUE(rpt.compliant);
  EXPECT_EQ(rpt.findings.size(), 0u);
  EXPECT_EQ(rpt.checks, 3u);
}

TEST(Derating, HotJunctionFlagged) {
  const auto eq = one_part_equipment(2.0, 4e-4);
  const auto rpt = ac::check_derating(eq, ac::DeratingPolicy::navmat(),
                                      {ac::celsius_to_kelvin(110.0)},
                                      ac::celsius_to_kelvin(125.0));
  ASSERT_EQ(rpt.findings.size(), 1u);
  EXPECT_EQ(rpt.findings[0].rule, "junction margin");
  EXPECT_FALSE(rpt.compliant);
}

TEST(Derating, PowerRatioFlagged) {
  const auto eq = one_part_equipment(8.0, 4e-4);
  const auto rpt = ac::check_derating(eq, ac::DeratingPolicy::navmat(),
                                      {ac::celsius_to_kelvin(70.0)},
                                      ac::celsius_to_kelvin(125.0), {10.0});
  // 8 W on a 10 W part exceeds the 60% NAVMAT fraction.
  ASSERT_EQ(rpt.findings.size(), 1u);
  EXPECT_EQ(rpt.findings[0].rule, "power derating");
  EXPECT_NEAR(rpt.findings[0].allowed, 6.0, 1e-12);
}

TEST(Derating, FluxCapCatchesHotSpots) {
  // 15 W on 1 cm^2 = 15 W/cm^2: over the NAVMAT 10 W/cm^2 cap — this is the
  // rule that pushes designs toward the paper's two-phase spreaders.
  const auto eq = one_part_equipment(15.0, 1e-4);
  const auto rpt = ac::check_derating(eq, ac::DeratingPolicy::navmat(),
                                      {ac::celsius_to_kelvin(70.0)},
                                      ac::celsius_to_kelvin(125.0));
  ASSERT_EQ(rpt.findings.size(), 1u);
  EXPECT_EQ(rpt.findings[0].rule, "heat-flux cap");
}

TEST(Derating, CommercialPolicyIsLaxer) {
  const auto eq = one_part_equipment(8.0, 1e-4);  // 8 W/cm^2, 110 C junction
  const std::vector<double> tj = {ac::celsius_to_kelvin(110.0)};
  const auto navmat = ac::check_derating(eq, ac::DeratingPolicy::navmat(), tj,
                                         ac::celsius_to_kelvin(125.0), {10.0});
  const auto commercial = ac::check_derating(eq, ac::DeratingPolicy::commercial(), tj,
                                             ac::celsius_to_kelvin(125.0), {10.0});
  EXPECT_GT(navmat.findings.size(), commercial.findings.size());
}

TEST(Derating, LengthMismatchThrows) {
  const auto eq = one_part_equipment(2.0, 4e-4);
  EXPECT_THROW(
      ac::check_derating(eq, ac::DeratingPolicy::navmat(), {}, ac::celsius_to_kelvin(125.0)),
      std::invalid_argument);
  EXPECT_THROW(ac::check_derating(eq, ac::DeratingPolicy::navmat(),
                                  {350.0, 350.0}, ac::celsius_to_kelvin(125.0)),
               std::invalid_argument);
}
