// The unified transient stepping engine: loop semantics on a toy scalar
// stepper (exact implicit Euler of y' = -k y), the PI controller's contract
// (acceptance, rejection, boundary landing, max_steps guard), and the
// one-error-text convention every transient entry point in the toolkit now
// reports bad arguments through — FV, network, ROM and mission alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/transient_engine.hpp"
#include "materials/solid.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "numeric/dense.hpp"
#include "rom/canonical.hpp"
#include "rom/rom.hpp"
#include "rom/transient.hpp"
#include "thermal/fv.hpp"
#include "thermal/network.hpp"

namespace ac = aeropack::core;
namespace am = aeropack::mission;
namespace ar = aeropack::rom;
namespace at = aeropack::thermal;
using aeropack::numeric::Vector;

namespace {

/// Exact implicit Euler of dy/dt = -decay_rate * y: one scalar state, unit
/// cost per step. `drive_jump(t)` optionally injects a discontinuous source
/// so boundary-clamping behavior is observable.
struct DecayStepper {
  double decay_rate = 0.1;
  std::vector<double> attempted_dts;

  std::size_t state_size() const { return 1; }
  std::size_t step(Vector& y, double /*t_next*/, double dt) {
    attempted_dts.push_back(dt);
    y[0] = y[0] / (1.0 + decay_rate * dt);
    return 1;
  }
  double error_norm(const Vector& a, const Vector& b) const { return std::abs(a[0] - b[0]); }
};

static_assert(ac::TransientSystem<DecayStepper>);
static_assert(ac::TransientSystem<at::FvTransientStepper>);
static_assert(ac::TransientSystem<at::NetworkTransientStepper>);
static_assert(ac::TransientSystem<ar::RomTransientStepper>);

std::string thrown_text(const std::function<void()>& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "<no throw>";
}

at::FvModel lumped_cell() {
  at::FvModel m(at::FvGrid::uniform(0.02, 0.02, 0.02, 1, 1, 1));
  aeropack::materials::SolidMaterial mat;
  mat.conductivity = 100.0;
  mat.conductivity_through = 100.0;
  mat.density = 2700.0;
  mat.specific_heat = 900.0;
  m.set_material(m.all_cells(), mat);
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(50.0, 300.0));
  return m;
}

}  // namespace

TEST(TransientEngine, FixedMarchWalksTheExactProductGrid) {
  DecayStepper s;
  Vector y{100.0};
  std::vector<double> times;
  const std::size_t cost =
      ac::march_fixed(s, y, 1.0, 0.3, [&](double t, const Vector&) { times.push_back(t); });
  // ceil(1.0 / 0.3) = 4 steps at the exact products 0.3 * s.
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.3);
  EXPECT_DOUBLE_EQ(times[1], 0.6);
  EXPECT_DOUBLE_EQ(times[3], 1.2);
  EXPECT_EQ(cost, 4u);
  // Four implicit steps of the exact scalar update.
  double expect = 100.0;
  for (int i = 0; i < 4; ++i) expect /= 1.0 + 0.1 * 0.3;
  EXPECT_DOUBLE_EQ(y[0], expect);
}

TEST(TransientEngine, AdaptiveMarchLandsOnEveryTransition) {
  DecayStepper s;
  Vector y{350.0};
  std::vector<double> accepted;
  std::size_t landings = 0;
  ac::AdaptiveOptions opts;
  opts.dt_initial = 7.0;  // does not divide the boundary at t = 10
  opts.dt_max = 60.0;
  const ac::MarchStats stats = ac::march_adaptive(
      "engine-test", s, y, 30.0, opts, [](double t) { return t < 10.0 ? 10.0 : 30.0; },
      [](std::size_t) {},
      [&](double t, const Vector&, bool landed) {
        accepted.push_back(t);
        if (landed) ++landings;
      },
      [] {});
  ASSERT_FALSE(accepted.empty());
  EXPECT_DOUBLE_EQ(accepted.back(), 30.0);
  // One accepted step must end exactly on the interior transition.
  EXPECT_EQ(landings, 1u);
  EXPECT_NE(std::find(accepted.begin(), accepted.end(), 10.0), accepted.end());
  EXPECT_EQ(stats.boundary_landings, 1u);
  EXPECT_EQ(stats.steps_accepted, accepted.size());
  // Step-doubling spends exactly three unit-cost stepper calls per attempt.
  EXPECT_EQ(stats.step_cost, 3 * (stats.steps_accepted + stats.steps_rejected));
}

TEST(TransientEngine, AdaptiveMarchRejectsAndShrinksOnRoughError) {
  // A huge tolerance-violating first step: decay is fast, dt_initial huge.
  DecayStepper s;
  s.decay_rate = 50.0;
  Vector y{1000.0};
  ac::AdaptiveOptions opts;
  opts.tolerance = 1e-3;
  opts.dt_initial = 10.0;
  opts.dt_min = 1e-6;
  std::size_t rejections = 0;
  ac::march_adaptive(
      "engine-test", s, y, 1.0, opts, [](double) { return 1e9; }, [](std::size_t) {},
      [](double, const Vector&, bool) {}, [&] { ++rejections; });
  EXPECT_GT(rejections, 0u);
}

TEST(TransientEngine, AdaptiveMarchThrowsPastMaxSteps) {
  DecayStepper s;
  s.decay_rate = 50.0;
  Vector y{1000.0};
  ac::AdaptiveOptions opts;
  opts.tolerance = 1e-12;  // unreachable: every attempt rejects above dt_min
  opts.dt_min = 1e-3;
  opts.max_steps = 10;
  EXPECT_EQ(thrown_text([&] {
              ac::march_adaptive(
                  "engine-test", s, y, 3600.0, opts, [](double) { return 1e9; },
                  [](std::size_t) {}, [](double, const Vector&, bool) {}, [] {});
            }),
            "engine-test: adaptive march exceeded max_steps (tolerance too tight or dt_min too "
            "small for this model)");
}

TEST(TransientEngine, ValidationHelpersFormatOneConvention) {
  EXPECT_EQ(thrown_text([] { ac::check_step_size("x::step", 0.0); }),
            "x::step: bad time step (require dt > 0)");
  EXPECT_EQ(thrown_text([] { ac::check_march_window("x::march", -1.0, 1.0); }),
            "x::march: bad time step (require dt > 0 and t_end > 0)");
  EXPECT_EQ(thrown_text([] { ac::check_state_size("x::march", 3, 7); }),
            "x::march: state size mismatch (got 3, expected 7)");
  ac::AdaptiveOptions bad;
  bad.tolerance = -1.0;
  EXPECT_EQ(thrown_text([&] { ac::check_adaptive_options("x", bad); }),
            "x: adaptive options must satisfy tolerance > 0, 0 < dt_min <= dt_max");
  // The degenerate window clamps instead of throwing.
  EXPECT_DOUBLE_EQ(ac::check_march_window("x", 2.0, 50.0), 2.0);
}

TEST(TransientEngine, EveryFidelityReportsTheSameErrorTexts) {
  // FV: model-level march window and stepper-level per-step dt.
  at::FvModel fv = lumped_cell();
  EXPECT_EQ(thrown_text([&] { fv.solve_transient(10.0, 0.0, 300.0); }),
            "FvModel::solve_transient: bad time step (require dt > 0 and t_end > 0)");
  at::FvTransientStepper fv_stepper(fv);
  Vector one_cell{300.0};
  EXPECT_EQ(thrown_text([&] { fv_stepper.step(one_cell, 1.0, -1.0); }),
            "FvTransientStepper::step: bad time step (require dt > 0)");
  Vector two_cells{300.0, 300.0};
  EXPECT_EQ(thrown_text([&] { fv_stepper.step(two_cells, 1.0, 1.0); }),
            "FvTransientStepper::step: state size mismatch (got 2, expected 1)");

  // Network: march window and the stepper concept.
  at::ThermalNetwork net;
  net.add_node("a", 100.0);
  net.add_boundary("amb", 300.0);
  net.add_conductor(0, 1, 2.0);
  EXPECT_EQ(thrown_text([&] { net.solve_transient(10.0, 0.0, Vector{300.0, 300.0}); }),
            "ThermalNetwork::solve_transient: bad time step (require dt > 0 and t_end > 0)");
  EXPECT_EQ(thrown_text([&] { net.solve_transient(10.0, 1.0, Vector{300.0}); }),
            "ThermalNetwork::solve_transient: state size mismatch (got 1, expected 2)");
  at::NetworkTransientStepper net_stepper(net);
  Vector nodes{300.0, 300.0};
  EXPECT_EQ(thrown_text([&] { net_stepper.step(nodes, 1.0, 0.0); }),
            "NetworkTransientStepper::step: bad time step (require dt > 0)");

  // ROM: march window on the model, per-step dt + state size on the stepper.
  const ar::CanonicalCase cc = ar::fig2_board();
  ar::RomOptions rom_opts;
  rom_opts.rank = 2;
  const ar::RomModel rom = ar::build_rom(cc.model, cc.spec, rom_opts);
  ar::RomInputs inputs;
  inputs.sink_temperatures = {300.0, 300.0, 300.0};
  inputs.map_powers = {5.0, 5.0};
  EXPECT_EQ(thrown_text([&] { rom.transient(inputs, 0.0, 1.0, 300.0); }),
            "RomModel::transient: bad time step (require dt > 0 and t_end > 0)");
  ar::RomTransientStepper rom_stepper(rom, inputs);
  Vector y = rom_stepper.initial_state(300.0);
  EXPECT_EQ(thrown_text([&] { rom_stepper.step(y, 1.0, 0.0); }),
            "RomTransientStepper::step: bad time step (require dt > 0)");
  Vector wrong(rom.rank() + 1, 0.0);
  EXPECT_EQ(thrown_text([&] { rom_stepper.step(wrong, 1.0, 1.0); }),
            "RomTransientStepper::step: state size mismatch (got " +
                std::to_string(rom.rank() + 1) + ", expected " + std::to_string(rom.rank()) +
                ")");

  // Mission: the controller options funnel through the same helper.
  const am::Profile profile = am::Profile::do160_thermal_shock(228.15, 328.15, 40.0, 60.0);
  am::AdaptiveOptions bad;
  bad.dt_min = 0.0;
  EXPECT_EQ(thrown_text([&] { am::run_fv_mission(fv, profile, 300.0, bad); }),
            "mission: adaptive options must satisfy tolerance > 0, 0 < dt_min <= dt_max");
}
