// Frequency allocation plan + the full Fig.-1 design procedure.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/design_procedure.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace am = aeropack::materials;

TEST(FrequencyAllocation, BandLookupAndCompliance) {
  ac::FrequencyAllocationPlan plan;
  plan.allocate("chassis", 80.0, 150.0);
  plan.allocate("power supply", 400.0, 600.0);  // the Ariane "around 500 Hz"
  EXPECT_TRUE(plan.complies("power supply", 500.0));
  EXPECT_FALSE(plan.complies("power supply", 200.0));
  EXPECT_DOUBLE_EQ(plan.band("chassis").hi_hz, 150.0);
  EXPECT_THROW(plan.band("unknown"), std::out_of_range);
}

TEST(FrequencyAllocation, RejectsOverlapsAndDuplicates) {
  ac::FrequencyAllocationPlan plan;
  plan.allocate("a", 100.0, 200.0);
  EXPECT_THROW(plan.allocate("a", 300.0, 400.0), std::invalid_argument);
  EXPECT_THROW(plan.allocate("b", 150.0, 250.0), std::invalid_argument);
  EXPECT_THROW(plan.allocate("c", 200.0, 100.0), std::invalid_argument);
  plan.allocate("d", 200.0, 300.0);  // touching is allowed
}

namespace {
ac::DesignInputs sample_inputs() {
  ac::Equipment eq;
  eq.name = "demo unit";
  ac::Module mod;
  mod.name = "M1";
  ac::Board b;
  b.name = "board";
  ac::Component c;
  c.reference = "U1";
  c.power = 6.0;
  c.footprint_area = 4e-4;
  c.x = 0.1;
  c.y = 0.075;
  b.components.push_back(c);
  mod.boards.push_back(b);
  eq.modules.push_back(mod);

  af::PlateModel board(0.20, 0.15, 2e-3, am::fr4(), 6, 5);
  board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  board.add_smeared_mass(2.0);

  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(45.0);  // cargo-bay hot case
  ac::DesignInputs in{eq, spec, board, "board", {}, af::do160_curve_c1(),
                      0.04, 0.03, 12};
  in.plan.allocate("board", 150.0, 1200.0);
  return in;
}
}  // namespace

TEST(DesignProcedure, HealthyDesignAccepted) {
  const auto rpt = ac::run_design_procedure(sample_inputs());
  EXPECT_TRUE(rpt.cooling.any_feasible);
  EXPECT_TRUE(rpt.mechanical.frequency_allocated);
  EXPECT_TRUE(rpt.mechanical.fatigue_ok);
  EXPECT_TRUE(rpt.qualification.all_passed);
  EXPECT_TRUE(rpt.thermal.mtbf_met);
  EXPECT_TRUE(rpt.accepted);
}

TEST(DesignProcedure, MisallocatedFrequencyRejects) {
  auto in = sample_inputs();
  in.plan = {};
  in.plan.allocate("board", 2000.0, 3000.0);  // board mode is far below this
  const auto rpt = ac::run_design_procedure(in);
  EXPECT_FALSE(rpt.mechanical.frequency_allocated);
  EXPECT_FALSE(rpt.accepted);
}

TEST(DesignProcedure, ReportRendersAllSections) {
  const auto rpt = ac::run_design_procedure(sample_inputs());
  const std::string text = rpt.to_text();
  EXPECT_NE(text.find("PACKAGING DESIGN DOCUMENT"), std::string::npos);
  EXPECT_NE(text.find("Cooling selection"), std::string::npos);
  EXPECT_NE(text.find("Thermal"), std::string::npos);
  EXPECT_NE(text.find("Mechanical"), std::string::npos);
  EXPECT_NE(text.find("Qualification"), std::string::npos);
  EXPECT_NE(text.find("ACCEPTED"), std::string::npos);
}

TEST(DesignProcedure, MechanicalNumbersConsistent) {
  const auto rpt = ac::run_design_procedure(sample_inputs());
  EXPECT_GT(rpt.mechanical.fundamental_frequency, 150.0);
  EXPECT_LT(rpt.mechanical.fundamental_frequency, 1200.0);
  EXPECT_GT(rpt.mechanical.response_grms, 0.0);
  EXPECT_GT(rpt.mechanical.steinberg_margin, 1.0);
}
