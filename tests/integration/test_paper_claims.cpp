// Integration suite: every quantitative claim of Sarno & Tantolin (DATE
// 2010) reproduced as a test. Shapes and factors must hold; tolerances are
// relative (verify::rel_close) and generous where the paper is approximate
// ("about", "up to") — the old ad-hoc absolute epsilons encoded the same
// windows, this states them as fractions of the paper value.
#include <gtest/gtest.h>

#include "core/seb.hpp"
#include "core/units.hpp"
#include "thermal/forced_air.hpp"
#include "tim/tim_material.hpp"
#include "verify/tolerance.hpp"

namespace ac = aeropack::core;
using aeropack::verify::rel_close;

namespace {
const double kCabin = ac::celsius_to_kelvin(25.0);

const ac::SebModel& aluminum_seb() {
  static const ac::SebModel model{ac::SebDesign{}};
  return model;
}

const ac::SebModel& carbon_seb() {
  static const ac::SebModel model = [] {
    ac::SebDesign d;
    d.seat.material = aeropack::materials::carbon_composite();
    return ac::SebModel{d};
  }();
  return model;
}
}  // namespace

// --- Fig. 10: "Without LHP" curve ------------------------------------------
TEST(PaperFig10, WithoutLhp40WattsGivesSixtyKelvin) {
  // Paper: natural convection alone holds 40 W at ~60 C PCB-air difference.
  const auto pt = aluminum_seb().solve(40.0, kCabin, ac::SebCooling::NaturalOnly);
  EXPECT_PRED3(rel_close, pt.dt_pcb_air, 60.0, 0.10);
}

TEST(PaperFig10, CapabilityWithoutLhpIsFortyWatts) {
  const double q = aluminum_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  EXPECT_PRED3(rel_close, q, 40.0, 0.125);
}

// --- Fig. 10: "With LHP (horizontal)" ---------------------------------------
TEST(PaperFig10, CapabilityWithLhpIsAboutHundredWatts) {
  // Paper: "from 40 W up to 100 W with a constant PCB temperature".
  const double q =
      aluminum_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_PRED3(rel_close, q, 100.0, 0.12);
}

TEST(PaperFig10, CapabilityIncreaseAboutPlus150Percent) {
  const auto& m = aluminum_seb();
  const double base = m.capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  const double lhp = m.capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double increase = (lhp - base) / base;
  // Paper: +150%; accept the same +/-20%-of-ratio window as the seed.
  EXPECT_PRED3(rel_close, increase, 1.5, 0.20);
}

TEST(PaperFig10, ThirtyTwoDegreeDecreaseAtFortyWatts) {
  // Paper: "for a same dissipated power, for example 40W, the use of HP and
  // LHP allow 32 C decrease on the PCB temperature".
  const auto& m = aluminum_seb();
  const double no = m.solve(40.0, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air;
  const double yes = m.solve(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp).dt_pcb_air;
  EXPECT_PRED3(rel_close, no - yes, 32.0, 0.16);
}

TEST(PaperFig10, LhpsCarryAboutFiftyEightWatts) {
  // Paper annotation on Fig. 10: "Power dissipated by Loop heat pipes: 58 W"
  // at the full ~100 W operating point.
  const auto pt = aluminum_seb().solve(100.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_PRED3(rel_close, pt.q_lhp_path, 58.0, 0.12);
}

// --- Fig. 10: "With LHP (22 deg tilt)" --------------------------------------
TEST(PaperFig10, TiltPenaltySmallAndOperational) {
  const auto& m = aluminum_seb();
  for (double q : {20.0, 60.0, 100.0}) {
    const auto flat = m.solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0);
    const auto tilt = m.solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
    EXPECT_GT(tilt.dt_pcb_air, flat.dt_pcb_air) << q;
    EXPECT_LT(tilt.dt_pcb_air - flat.dt_pcb_air, 6.0) << q;  // curves close
    EXPECT_TRUE(tilt.lhp_within_capillary) << q;  // "good thermal behavior"
  }
}

// --- Carbon composite seat ---------------------------------------------------
TEST(PaperCarbon, CapabilityAboutSeventyWatts) {
  // Paper: "increase of 80% of the heat dissipation capability (from 38W up
  // to 70W with a constant PCB temperature)".
  const double q =
      carbon_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  EXPECT_PRED3(rel_close, q, 70.0, 0.13);
}

TEST(PaperCarbon, IncreaseAboutPlus80Percent) {
  const double base = carbon_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  const double lhp =
      carbon_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double increase = (lhp - base) / base;
  EXPECT_PRED3(rel_close, increase, 0.8, 0.38);
}

TEST(PaperCarbon, TwentyDegreeDecreaseAtFortyWatts) {
  const auto& m = carbon_seb();
  const double no = m.solve(40.0, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air;
  const double yes = m.solve(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp).dt_pcb_air;
  EXPECT_PRED3(rel_close, no - yes, 20.0, 0.25);
}

TEST(PaperCarbon, BelowAluminumButWorthwhile) {
  // "the results are slightly under those obtained with aluminum ...
  // nevertheless these results are of great interest".
  const double al =
      aluminum_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double cf =
      carbon_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double base = aluminum_seb().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  EXPECT_LT(cf, al);
  EXPECT_GT(cf, 1.4 * base);
}

// --- Section IV intro: forced-air limits -------------------------------------
TEST(PaperHotSpot, ArincFlowCannotHoldTenWattsPerCm2) {
  // "The standard approach using typical ARINC600 standard cooling
  // conditions ... are no longer applicable" for 10..100 W/cm^2 hot spots;
  // "up to ten times the standard air flow rate would be required".
  aeropack::thermal::ArincAirSupply supply;
  aeropack::thermal::CardChannel chan;
  const auto r =
      aeropack::thermal::analyze_hot_spot(supply, chan, 100.0, 10e4, 0.5, 383.15);
  EXPECT_FALSE(r.feasible);
  const double mult = aeropack::thermal::required_flow_multiplier(
      supply, chan, 100.0, 2.0e4, 0.5, 383.15);
  EXPECT_GT(mult, 2.0);   // well above the standard budget
  EXPECT_LT(mult, 40.0);  // the "up to ten times" decade
}

// --- Section IV.B: NANOPACK results ------------------------------------------
TEST(PaperNanopack, AdhesiveConductivities) {
  EXPECT_DOUBLE_EQ(aeropack::tim::nanopack_mono_epoxy_silver_flake().conductivity, 6.0);
  EXPECT_DOUBLE_EQ(aeropack::tim::nanopack_multi_epoxy_silver_sphere().conductivity, 9.5);
}

TEST(PaperNanopack, TwentyWattCompositeMeetsAllTargets) {
  // "a metal-polymer composite with effective thermal conductivity as high
  // as 20 W/mK" against the project targets (k=20, R<5 Kmm^2/W, BLT<20 um).
  EXPECT_TRUE(aeropack::tim::meets_nanopack_targets(
      aeropack::tim::nanopack_cnt_metal_polymer(), 0.5e6));
}
