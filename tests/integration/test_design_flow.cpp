// End-to-end Fig.-1 flow: an initial design fails, the Level-2 levers fix
// it — the iterate-to-accept loop the paper's procedure exists to drive.
#include <gtest/gtest.h>

#include "core/derating.hpp"
#include "core/design_procedure.hpp"
#include "core/units.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace am = aeropack::materials;

namespace {
ac::DesignInputs hot_first_pass() {
  ac::Equipment eq;
  eq.name = "iteration demo";
  ac::Module mod;
  mod.name = "M1";
  ac::Board b;
  b.name = "board";
  b.stackup.copper_layers = 4;
  b.drain_thickness = 0.0;  // first pass: no drain
  ac::Component cpu;
  cpu.reference = "CPU";
  cpu.power = 15.0;
  cpu.footprint_area = 9e-4;
  cpu.theta_jc = 0.9;
  cpu.x = 0.10;
  cpu.y = 0.075;
  cpu.part_type = aeropack::reliability::PartType::Microprocessor;
  b.components.push_back(cpu);
  mod.boards.push_back(b);
  eq.modules.push_back(mod);

  af::PlateModel plate(0.20, 0.15, 2e-3, am::fr4(), 6, 5);
  plate.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  plate.add_smeared_mass(2.5);

  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(55.0);

  ac::DesignInputs in{eq, spec, plate, "board", {}, af::do160_curve_c1(), 0.04, 0.03, 12};
  in.plan.allocate("board", 150.0, 1200.0);
  return in;
}
}  // namespace

TEST(DesignFlow, IterationTurnsRejectionIntoAcceptance) {
  auto inputs = hot_first_pass();
  const auto first = ac::run_design_procedure(inputs);
  // A 15 W CPU on a plain 4-layer board at a 55 C bay runs far too hot —
  // the first pass must not sail through.
  const bool first_clean = first.thermal.mtbf_met &&
                           first.qualification.all_passed &&
                           first.thermal.worst_junction <= inputs.spec.junction_limit;
  EXPECT_FALSE(first_clean);

  // Fig.-1 loop: drain + more copper + low-power SKU.
  auto& board = inputs.equipment.modules[0].boards[0];
  board.drain_thickness = 1.6e-3;
  board.stackup.copper_layers = 10;
  board.components[0].power = 5.0;
  board.components[0].theta_jc = 0.5;
  const auto second = ac::run_design_procedure(inputs);
  EXPECT_TRUE(second.accepted) << second.to_text();
  EXPECT_LT(second.thermal.worst_junction, first.thermal.worst_junction - 10.0);
}

TEST(DesignFlow, DeratingAgreesWithLevel3) {
  auto inputs = hot_first_pass();
  auto& board = inputs.equipment.modules[0].boards[0];
  board.drain_thickness = 1.6e-3;
  board.components[0].power = 5.0;
  const auto rpt = ac::run_design_procedure(inputs);

  std::vector<double> junctions;
  for (const auto& l3 : rpt.thermal.level3) junctions.push_back(l3.junction_temperature);
  const auto derate = ac::check_derating(inputs.equipment, ac::DeratingPolicy::commercial(),
                                         junctions, inputs.spec.junction_limit);
  // A design the procedure accepts should also clear the relaxed policy.
  EXPECT_TRUE(derate.compliant)
      << (derate.findings.empty() ? "" : derate.findings[0].rule);
}

TEST(DesignFlow, HarsherEnvironmentFlipsTheVerdict) {
  auto inputs = hot_first_pass();
  auto& board = inputs.equipment.modules[0].boards[0];
  board.drain_thickness = 1.6e-3;
  board.stackup.copper_layers = 10;
  board.components[0].power = 5.0;
  board.components[0].theta_jc = 0.5;
  ASSERT_TRUE(ac::run_design_procedure(inputs).accepted);

  inputs.spec.ambient_temperature = ac::celsius_to_kelvin(84.0);  // no budget left
  const auto hot = ac::run_design_procedure(inputs);
  EXPECT_FALSE(hot.accepted);
}
