// 3-D equipment-mounting bracket under the paper's 9 g quasi-static case:
// the space-frame substrate carrying a real qualification load path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "fem/beam3d.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;

namespace {
/// L-bracket: vertical post from the rack floor, horizontal arm carrying the
/// equipment mass at its tip.
struct Bracket {
  af::Frame3D frame;
  std::size_t tip = 0;
};

Bracket build_bracket() {
  Bracket b;
  const auto mat = am::aluminum_7075();
  const auto s = af::Section3D::rectangle(0.02, 0.03);
  const auto base = b.frame.add_node(0, 0, 0);
  const auto knee = b.frame.add_node(0, 0, 0.12);
  b.tip = b.frame.add_node(0.10, 0, 0.12);
  b.frame.fix_all(base);
  b.frame.add_beam(base, knee, mat, s);
  b.frame.add_beam(knee, b.tip, mat, s);
  b.frame.add_mass(b.tip, 6.0);  // the supported unit
  return b;
}
}  // namespace

TEST(Bracket3D, NineGAllAxesWithinYield) {
  // The paper's campaign shakes each axis at 9 g. The bracket must keep a
  // margin on Al 7075 yield in every direction.
  const double load = 6.0 * 9.0 * aeropack::core::gravity;
  for (std::size_t axis = 0; axis < 3; ++axis) {
    auto b = build_bracket();
    an::Vector f(b.frame.dof_count(), 0.0);
    f[b.frame.global_dof(b.tip, axis)] = load;
    const auto u = b.frame.solve_static(f);
    const auto stresses = b.frame.beam_stresses(u);
    for (double s : stresses) {
      EXPECT_GT(s, 0.0);
      EXPECT_LT(s, am::aluminum_7075().yield_strength / 1.25) << "axis " << axis;
    }
  }
}

TEST(Bracket3D, LateralAxisIsWorst) {
  // The y push bends both members about their weak axes through the full
  // arm + post lever — it must dominate the axial (z) case.
  const double load = 6.0 * 9.0 * aeropack::core::gravity;
  auto peak_for = [&](std::size_t axis) {
    auto b = build_bracket();
    an::Vector f(b.frame.dof_count(), 0.0);
    f[b.frame.global_dof(b.tip, axis)] = load;
    const auto stresses = b.frame.beam_stresses(b.frame.solve_static(f));
    double worst = 0.0;
    for (double s : stresses) worst = std::max(worst, s);
    return worst;
  };
  EXPECT_GT(peak_for(1), peak_for(2));
}

TEST(Bracket3D, FundamentalModeInBracketRange) {
  // A 6 kg unit on a small cantilevered bracket sits at tens of Hz — the
  // regime where the frequency-allocation discipline of Fig. 2 matters
  // (the chassis band, well below the board band).
  auto b = build_bracket();
  const auto freqs = b.frame.natural_frequencies();
  EXPECT_GT(freqs[0], 20.0);
  EXPECT_LT(freqs[0], 500.0);
  // Stiffening the section must raise it (the design lever).
  af::Frame3D stiff;
  const auto mat = am::aluminum_7075();
  const auto s = af::Section3D::rectangle(0.03, 0.045);
  const auto base = stiff.add_node(0, 0, 0);
  const auto knee = stiff.add_node(0, 0, 0.12);
  const auto tip = stiff.add_node(0.10, 0, 0.12);
  stiff.fix_all(base);
  stiff.add_beam(base, knee, mat, s);
  stiff.add_beam(knee, tip, mat, s);
  stiff.add_mass(tip, 6.0);
  EXPECT_GT(stiff.natural_frequencies()[0], 1.5 * freqs[0]);
}

TEST(Bracket3D, TipDeflectionSmallUnderOneG) {
  auto b = build_bracket();
  an::Vector f(b.frame.dof_count(), 0.0);
  f[b.frame.global_dof(b.tip, 2)] = -6.0 * aeropack::core::gravity;
  const auto u = b.frame.solve_static(f);
  EXPECT_LT(std::fabs(u[b.frame.global_dof(b.tip, 2)]), 1e-4);  // < 0.1 mm sag
}
