// Cross-module property sweeps: invariants that must hold across wide
// parameter ranges, exercising several subsystems per assertion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/seb.hpp"
#include "core/units.hpp"
#include "fem/plate.hpp"
#include "fem/sdof.hpp"
#include "materials/air.hpp"
#include "materials/solid.hpp"
#include "thermal/convection.hpp"
#include "thermal/fv.hpp"
#include "twophase/heat_pipe.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace at = aeropack::thermal;
namespace tp = aeropack::twophase;

// --- Energy conservation of the FV solver across boundary-condition mixes ---
class FvEnergyProperty : public ::testing::TestWithParam<int> {};

TEST_P(FvEnergyProperty, ResidualTinyForAnyBcMix) {
  const int variant = GetParam();
  at::FvModel m(at::FvGrid::uniform(0.1, 0.08, 0.004, 10, 8, 2));
  m.set_material(am::aluminum_6061());
  m.add_power({2, 6, 2, 6, 0, 2}, 15.0);
  switch (variant) {
    case 0:
      m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
      break;
    case 1:
      m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(40.0, 300.0));
      break;
    case 2:
      m.set_boundary(at::Face::ZMax,
                     at::BoundaryCondition::convection_radiation(10.0, 300.0, 0.8));
      break;
    case 3:
      m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(290.0));
      m.set_boundary(at::Face::XMax, at::BoundaryCondition::convection(15.0, 310.0));
      m.set_boundary(at::Face::YMin, at::BoundaryCondition::heat_flux(200.0));
      break;
    default:
      m.set_boundary(at::Face::ZMin,
                     at::BoundaryCondition::natural(at::SurfaceOrientation::HorizontalDown,
                                                    0.08, 300.0));
      m.set_boundary(at::Face::ZMax,
                     at::BoundaryCondition::natural(at::SurfaceOrientation::HorizontalUp,
                                                    0.08, 300.0));
      break;
  }
  const auto sol = m.solve_steady();
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.energy_residual, 0.01 * 15.0) << "variant " << variant;
  EXPECT_GT(sol.min_temperature, 250.0);
}

INSTANTIATE_TEST_SUITE_P(BcMixes, FvEnergyProperty, ::testing::Values(0, 1, 2, 3, 4));

// --- Natural convection h is monotone in dT for all orientations/sizes -------
class ConvectionMonotone
    : public ::testing::TestWithParam<std::tuple<at::SurfaceOrientation, double>> {};

TEST_P(ConvectionMonotone, FilmCoefficientRisesWithSuperheat) {
  const auto [orient, length] = GetParam();
  double prev = 0.0;
  for (double dt : {5.0, 15.0, 40.0, 80.0}) {
    const double h = at::h_natural_plate(orient, 300.0 + dt, 300.0, length);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvectionMonotone,
    ::testing::Combine(::testing::Values(at::SurfaceOrientation::Vertical,
                                         at::SurfaceOrientation::HorizontalUp,
                                         at::SurfaceOrientation::HorizontalDown),
                       ::testing::Values(0.05, 0.15, 0.4)));

// --- Heat pipe governing limit falls with adverse tilt everywhere ------------
class HeatPipeTilt : public ::testing::TestWithParam<double> {};

TEST_P(HeatPipeTilt, GoverningLimitMonotoneInTilt) {
  tp::HeatPipeGeometry g;
  const tp::HeatPipe pipe(am::water(), g, tp::Wick::sintered_powder(), am::copper());
  const double t = GetParam();
  double prev = 1e18;
  for (double tilt : {-0.3, 0.0, 0.2, 0.5, 0.9}) {
    const double cap = pipe.limits(t, tilt).capillary;
    EXPECT_LE(cap, prev + 1e-9);
    prev = cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Temps, HeatPipeTilt, ::testing::Values(300.0, 330.0, 360.0));

// --- Plate effective mass never exceeds total mass ---------------------------
class PlateEffectiveMass : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlateEffectiveMass, SumBoundedByTotal) {
  const std::size_t mesh = GetParam();
  af::PlateModel p(0.2, 0.16, 1.8e-3, am::fr4(), mesh, mesh);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  p.add_smeared_mass(2.0);
  const auto res = p.solve_modal();
  double sum = 0.0;
  for (double m_eff : res.effective_masses) sum += m_eff;
  EXPECT_LE(sum, p.total_mass() * 1.001);
  EXPECT_GT(sum, 0.4 * p.total_mass());  // bulk of the mass is in the w modes
  // (coarse meshes park a large tributary share on the constrained edges)
}

INSTANTIATE_TEST_SUITE_P(Meshes, PlateEffectiveMass, ::testing::Values(4u, 6u));

// --- SEB improvement factor holds across cabin temperatures ------------------
class SebAcrossCabins : public ::testing::TestWithParam<double> {};

TEST_P(SebAcrossCabins, LhpAlwaysWinsAndTiltAlwaysCosts) {
  const double cabin = ac::celsius_to_kelvin(GetParam());
  ac::SebModel m{ac::SebDesign{}};
  const auto no = m.solve(50.0, cabin, ac::SebCooling::NaturalOnly);
  const auto flat = m.solve(50.0, cabin, ac::SebCooling::HeatPipesAndLhp, 0.0);
  const auto tilt = m.solve(50.0, cabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
  EXPECT_LT(flat.dt_pcb_air, 0.65 * no.dt_pcb_air);
  EXPECT_GT(tilt.dt_pcb_air, flat.dt_pcb_air);
  EXPECT_TRUE(tilt.lhp_within_capillary);
}

INSTANTIATE_TEST_SUITE_P(Cabins, SebAcrossCabins, ::testing::Values(15.0, 25.0, 35.0));

// --- ISA + convection: capability derates smoothly with altitude -------------
class AltitudeDerating : public ::testing::TestWithParam<double> {};

TEST_P(AltitudeDerating, NaturalConvectionWeakensMonotonically) {
  const double length = GetParam();
  double prev = 1e18;
  for (double alt : {0.0, 3000.0, 8000.0, 15000.0}) {
    const auto pt = am::isa_atmosphere(alt);
    const double h = at::h_natural_vertical_plate(340.0, 300.0, length, pt.pressure);
    EXPECT_LT(h, prev);
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, AltitudeDerating, ::testing::Values(0.05, 0.1, 0.3));
