// core::ArtifactCache — typed find/insert, capacity-bounded cost-aware
// eviction, lifetime stats and the concurrent get_or_build hammer the TSan
// CI job runs to certify the sharded reader-writer locking.
#include "core/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace ac = aeropack::core;

namespace {

struct Blob {
  std::vector<double> data;
  explicit Blob(std::size_t n = 4, double fill = 0.0) : data(n, fill) {}
};

TEST(ArtifactCache, FindMissesOnEmptyThenHitsAfterInsert) {
  ac::ArtifactCache cache;
  EXPECT_EQ(cache.find<Blob>(42), nullptr);
  cache.insert<Blob>(42, std::make_shared<const Blob>(8, 1.5), 64);
  const auto hit = cache.find<Blob>(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->data.size(), 8u);
  EXPECT_EQ(hit->data[0], 1.5);

  const ac::ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 64u);
}

TEST(ArtifactCache, TypeMismatchIsAMissNotACast) {
  ac::ArtifactCache cache;
  cache.insert<Blob>(7, std::make_shared<const Blob>(), 16);
  EXPECT_EQ(cache.find<std::string>(7), nullptr);  // same key, wrong type
  EXPECT_NE(cache.find<Blob>(7), nullptr);
}

TEST(ArtifactCache, FirstWriterWinsOnDuplicateInsert) {
  ac::ArtifactCache cache;
  cache.insert<Blob>(1, std::make_shared<const Blob>(4, 1.0), 16);
  cache.insert<Blob>(1, std::make_shared<const Blob>(4, 2.0), 16);
  EXPECT_EQ(cache.find<Blob>(1)->data[0], 1.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactCache, ZeroCapacityStoresNothing) {
  ac::ArtifactCacheOptions opts;
  opts.capacity_bytes = 0;
  ac::ArtifactCache cache(opts);
  cache.insert<Blob>(1, std::make_shared<const Blob>(), 16);
  EXPECT_EQ(cache.find<Blob>(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, EvictsLowestUtilityWhenOverCapacity) {
  // One shard so the capacity bound is exact; room for two 100-byte
  // entries. The entry with hits survives, the cold one goes.
  ac::ArtifactCacheOptions opts;
  opts.shards = 1;
  opts.capacity_bytes = 200;
  ac::ArtifactCache cache(opts);
  cache.insert<Blob>(1, std::make_shared<const Blob>(), 100);
  cache.insert<Blob>(2, std::make_shared<const Blob>(), 100);
  // Heat up key 1 only.
  for (int i = 0; i < 5; ++i) EXPECT_NE(cache.find<Blob>(1), nullptr);
  cache.insert<Blob>(3, std::make_shared<const Blob>(), 100);

  EXPECT_NE(cache.find<Blob>(1), nullptr);  // hot: kept
  EXPECT_EQ(cache.find<Blob>(2), nullptr);  // cold: evicted
  EXPECT_NE(cache.find<Blob>(3), nullptr);  // new: inserted
  const ac::ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, 200u);
}

TEST(ArtifactCache, CostAwareEvictionPrefersDroppingCheapEntries) {
  // Both entries are cold (zero hits), so utility (1+hits)/cost reduces to
  // 1/cost: the large entry (1/190) ranks below the small one (1/10) and is
  // evicted first — one big eviction frees the needed room.
  ac::ArtifactCacheOptions opts;
  opts.shards = 1;
  opts.capacity_bytes = 200;
  ac::ArtifactCache cache(opts);
  cache.insert<Blob>(1, std::make_shared<const Blob>(), 10);    // cheap
  cache.insert<Blob>(2, std::make_shared<const Blob>(), 190);   // dear, cold
  cache.insert<Blob>(3, std::make_shared<const Blob>(), 100);   // forces eviction
  EXPECT_NE(cache.find<Blob>(1), nullptr);
  EXPECT_EQ(cache.find<Blob>(2), nullptr);
  EXPECT_NE(cache.find<Blob>(3), nullptr);
}

TEST(ArtifactCache, OversizedArtifactIsDroppedNotInserted) {
  ac::ArtifactCacheOptions opts;
  opts.shards = 1;
  opts.capacity_bytes = 100;
  ac::ArtifactCache cache(opts);
  cache.insert<Blob>(1, std::make_shared<const Blob>(), 1000);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, GetOrBuildBuildsOnceThenServesHits) {
  ac::ArtifactCache cache;
  std::atomic<int> builds{0};
  const auto build = [&] {
    builds.fetch_add(1);
    return std::make_shared<const Blob>(4, 9.0);
  };
  const auto cost = [](const Blob&) { return std::size_t{32}; };
  const auto a = cache.get_or_build<Blob>(5, build, cost);
  const auto b = cache.get_or_build<Blob>(5, build, cost);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(a.get(), b.get());  // the second call served the cached object
}

// The TSan target: many threads hammering overlapping keys through
// get_or_build while others evict by inserting. Any locking mistake in the
// sharded reader-writer scheme shows up here as a data race.
TEST(ArtifactCache, ConcurrentGetOrBuildIsRaceFree) {
  ac::ArtifactCacheOptions opts;
  opts.shards = 4;
  opts.capacity_bytes = 1 << 16;
  ac::ArtifactCache cache(opts);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>((t + i) % 16);
        const auto blob = cache.get_or_build<Blob>(
            key, [&] { return std::make_shared<const Blob>(16, static_cast<double>(key)); },
            [](const Blob& b) { return b.data.size() * sizeof(double); });
        ASSERT_NE(blob, nullptr);
        // Deterministic-build contract: whichever thread built it, the
        // value under a key is always the same.
        ASSERT_EQ(blob->data[0], static_cast<double>(key));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ac::ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_GT(s.hits, 0u);
}

}  // namespace
