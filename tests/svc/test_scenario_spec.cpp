// core::ScenarioSpec — schema contracts: lossless serialize round-trips
// (hexfloat doubles, escaped names), content-hash identity and the
// structural/content hash split the artifact cache keys on.
#include "core/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ac = aeropack::core;

namespace {

ac::ScenarioSpec sample_spec() {
  ac::ScenarioSpec spec;
  spec.name = "seb_p060";
  spec.graph = "seb_point";
  spec.params = {{"tilt_deg", 22.0}};
  spec.loads = {{"power_w", 60.0}};
  spec.boundaries = {{"t_ambient", 295.15}};
  return spec;
}

TEST(ScenarioSpec, SerializeRoundTripsLosslessly) {
  const ac::ScenarioSpec spec = sample_spec();
  const ac::ScenarioSpec back = ac::ScenarioSpec::deserialize(spec.serialize());
  EXPECT_EQ(spec, back);
  EXPECT_EQ(spec.content_hash(), back.content_hash());
  EXPECT_EQ(spec.structural_hash(), back.structural_hash());
}

TEST(ScenarioSpec, RoundTripPreservesExactDoubleBits) {
  ac::ScenarioSpec spec;
  spec.name = "bits";
  spec.graph = "g";
  // Values that decimal formatting would mangle: an irrational dyadic mess,
  // a denormal, a negative zero and the largest finite double.
  spec.params = {{"pi", 3.141592653589793},
                 {"denormal", 5e-324},
                 {"negzero", -0.0},
                 {"huge", std::numeric_limits<double>::max()}};
  const ac::ScenarioSpec back = ac::ScenarioSpec::deserialize(spec.serialize());
  for (const auto& [key, value] : spec.params) {
    const double b = back.params.at(key);
    EXPECT_EQ(std::signbit(value), std::signbit(b)) << key;
    EXPECT_EQ(value, b) << key;
  }
  EXPECT_EQ(spec.content_hash(), back.content_hash());
}

TEST(ScenarioSpec, EscapesStructuralCharactersInNames) {
  ac::ScenarioSpec spec;
  spec.name = "odd|name=with%chars";
  spec.graph = "g|=";
  spec.params = {{"k|e=y%", 1.0}};
  const ac::ScenarioSpec back = ac::ScenarioSpec::deserialize(spec.serialize());
  EXPECT_EQ(spec, back);
}

TEST(ScenarioSpec, NameIsExcludedFromContentHash) {
  ac::ScenarioSpec a = sample_spec();
  ac::ScenarioSpec b = sample_spec();
  b.name = "a_different_label";
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
}

TEST(ScenarioSpec, LoadsChangeContentButNotStructure) {
  ac::ScenarioSpec a = sample_spec();
  ac::ScenarioSpec b = sample_spec();
  b.loads["power_w"] = 120.0;
  b.boundaries["t_ambient"] = 300.0;
  EXPECT_NE(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
}

TEST(ScenarioSpec, ParamsAndGraphChangeBothHashes) {
  const ac::ScenarioSpec a = sample_spec();
  ac::ScenarioSpec b = sample_spec();
  b.params["tilt_deg"] = 0.0;
  EXPECT_NE(a.content_hash(), b.content_hash());
  EXPECT_NE(a.structural_hash(), b.structural_hash());
  ac::ScenarioSpec c = sample_spec();
  c.graph = "fv_slab_steady";
  EXPECT_NE(a.content_hash(), c.content_hash());
  EXPECT_NE(a.structural_hash(), c.structural_hash());
}

TEST(ScenarioSpec, HashDistinguishesWhichMapHoldsAKey) {
  // The same key/value pair in params vs loads must not collide: one keys
  // shared structure, the other does not.
  ac::ScenarioSpec a;
  a.graph = "g";
  a.params = {{"x", 1.0}};
  ac::ScenarioSpec b;
  b.graph = "g";
  b.loads = {{"x", 1.0}};
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(ScenarioSpec, DeserializeRejectsMalformedInput) {
  EXPECT_THROW(ac::ScenarioSpec::deserialize(""), std::invalid_argument);
  EXPECT_THROW(ac::ScenarioSpec::deserialize("scenario/2|name=a|graph=g"),
               std::invalid_argument);
  EXPECT_THROW(ac::ScenarioSpec::deserialize("scenario/1|name=a"), std::invalid_argument);
  EXPECT_THROW(ac::ScenarioSpec::deserialize("scenario/1|name=a|graph=g|p:x=notanumber"),
               std::invalid_argument);
  EXPECT_THROW(ac::ScenarioSpec::deserialize("scenario/1|name=a|graph=g|z:x=1"),
               std::invalid_argument);
  EXPECT_THROW(
      ac::ScenarioSpec::deserialize("scenario/1|name=a|graph=g|p:x=0x1p+0|p:x=0x1p+1"),
      std::invalid_argument);
  EXPECT_THROW(ac::ScenarioSpec::deserialize("scenario/1|name=a%2|graph=g"),
               std::invalid_argument);
}

}  // namespace
