// The determinism gate of the artifact cache: a cache-hit solve must be
// BITWISE identical to a cold-start solve, per solver family and at 1/2/8
// threads per scenario. Keys hash exact IEEE-754 bit patterns of every
// structural input, builders are deterministic, consumers copy shared
// state before mutating — so equality here is ==, never near().
//
// Runs plain and under TSan in CI (ctest -L svc): the multi-worker cases
// double as race detectors for concurrent artifact sharing.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/scenario_service.hpp"
#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "rom/cache.hpp"
#include "rom/canonical.hpp"
#include "rom/service_graphs.hpp"
#include "thermal/fv.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace ar = aeropack::rom;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;

namespace {

// ---- producer-level gates (no service, direct API) ----------------------

at::FvModel make_slab() {
  at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 4));
  slab.set_material(am::aluminum_6061());
  slab.add_power({0, 16, 0, 4, 0, 4}, 7.5);
  slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  slab.set_boundary(at::Face::XMax,
                    at::BoundaryCondition::convection_radiation(12.0, 310.0, 0.8));
  return slab;
}

TEST(ArtifactReuse, FvSharedAssemblySolvesBitIdenticalToCold) {
  const at::FvModel slab = make_slab();
  const at::FvSolution cold = slab.solve_steady();
  const auto assembly = slab.build_assembly();
  // Two consumers of the same shared assembly: the artifact is immutable,
  // each solve works on its own copy of the mutable parts.
  const at::FvSolution warm1 = slab.solve_steady(assembly);
  const at::FvSolution warm2 = slab.solve_steady(assembly);
  EXPECT_EQ(warm1.structure_assemblies, 0u);
  ASSERT_EQ(cold.temperatures.size(), warm1.temperatures.size());
  for (std::size_t i = 0; i < cold.temperatures.size(); ++i) {
    EXPECT_EQ(cold.temperatures[i], warm1.temperatures[i]) << "cell " << i;
    EXPECT_EQ(cold.temperatures[i], warm2.temperatures[i]) << "cell " << i;
  }
  EXPECT_EQ(cold.max_temperature, warm1.max_temperature);
  EXPECT_EQ(cold.energy_residual, warm1.energy_residual);
  EXPECT_EQ(cold.picard_iterations, warm1.picard_iterations);
  EXPECT_EQ(cold.linear_iterations, warm1.linear_iterations);
}

TEST(ArtifactReuse, FvMismatchedAssemblyThrows) {
  const at::FvModel slab = make_slab();
  at::FvModel other(at::FvGrid::uniform(0.1, 0.02, 0.01, 12, 3, 3));
  other.set_material(am::aluminum_6061());
  other.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  EXPECT_THROW(slab.solve_steady(other.build_assembly()), std::invalid_argument);
  EXPECT_THROW(slab.solve_steady(std::shared_ptr<const at::FvAssembly>{}),
               std::invalid_argument);
}

TEST(ArtifactReuse, FvStructuralHashIgnoresLoadsAndBoundaries) {
  at::FvModel a = make_slab();
  at::FvModel b = make_slab();
  b.add_power({0, 4, 0, 4, 0, 4}, 99.0);  // sources: not structural
  b.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(350.0));
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  at::FvModel c(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 5));  // grid: structural
  c.set_material(am::aluminum_6061());
  EXPECT_NE(a.structural_hash(), c.structural_hash());
  EXPECT_NE(a.structural_hash(at::FvOptions{}, 1.0),
            a.structural_hash());  // inv_dt: structural
}

TEST(ArtifactReuse, ModalCachedFactorizationSolvesBitIdenticalToCold) {
  af::PlateModel board(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
  board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  board.add_smeared_mass(2.5);
  board.add_point_mass(0.05, 0.05, 0.18);
  aeropack::numeric::CsrMatrix k, m;
  board.reduced_sparse(k, m);
  af::ModalOptions opts;
  opts.n_modes = 6;
  opts.path = af::ModalPath::Sparse;

  const af::ReducedModes cold = af::solve_reduced_modes(k, m, opts);
  const af::ModalFactorization factor = af::factorize_modal(k, m, opts);
  EXPECT_TRUE(factor.ladder_free);  // clamped plate: K is PD at shift 0
  const af::ReducedModes warm = af::solve_reduced_modes(k, m, opts, factor);

  ASSERT_EQ(cold.eigenvalues.size(), warm.eigenvalues.size());
  for (std::size_t i = 0; i < cold.eigenvalues.size(); ++i) {
    EXPECT_EQ(cold.eigenvalues[i], warm.eigenvalues[i]) << "mode " << i;
    EXPECT_EQ(cold.frequencies_hz[i], warm.frequencies_hz[i]) << "mode " << i;
  }
  for (std::size_t j = 0; j < cold.shapes.cols(); ++j)
    for (std::size_t i = 0; i < cold.shapes.rows(); ++i)
      ASSERT_EQ(cold.shapes(i, j), warm.shapes(i, j)) << i << "," << j;
}

TEST(ArtifactReuse, ModalFactorizationValidatesPencil) {
  af::PlateModel board(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
  board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  board.add_smeared_mass(2.5);
  aeropack::numeric::CsrMatrix k, m;
  board.reduced_sparse(k, m);
  af::ModalOptions opts;
  opts.path = af::ModalPath::Sparse;
  af::ModalFactorization factor = af::factorize_modal(k, m, opts);
  af::ModalOptions shifted = opts;
  shifted.shift = -100.0;
  EXPECT_THROW(af::solve_reduced_modes(k, m, shifted, factor), std::invalid_argument);
  factor.rows += 1;
  EXPECT_THROW(af::solve_reduced_modes(k, m, opts, factor), std::invalid_argument);
}

TEST(ArtifactReuse, RomCachedModelEvaluatesBitIdenticalToCold) {
  const ar::CanonicalCase cc = ar::fig2_board();
  ac::ArtifactCache cache;
  const auto cold = ar::get_or_build_rom(nullptr, cc.model, cc.spec, {});
  const auto miss = ar::get_or_build_rom(&cache, cc.model, cc.spec, {});
  const auto hit = ar::get_or_build_rom(&cache, cc.model, cc.spec, {});
  EXPECT_EQ(miss.get(), hit.get());  // same cached object
  EXPECT_EQ(cache.stats().hits, 1u);

  ar::RomInputs inputs;
  inputs.sink_temperatures = {313.0, 315.0, 301.0};
  inputs.map_powers = {9.0, 5.5};
  const ar::RomSteadyResult a = cold->steady(inputs);
  const ar::RomSteadyResult b = hit->steady(inputs);
  ASSERT_EQ(a.port_temperatures.size(), b.port_temperatures.size());
  for (std::size_t p = 0; p < a.port_temperatures.size(); ++p) {
    EXPECT_EQ(a.port_temperatures[p], b.port_temperatures[p]);
    EXPECT_EQ(a.port_heat_flows[p], b.port_heat_flows[p]);
  }
}

// ---- service-level gates: cold vs hit through the full stack ------------

// Run the same mixed batch twice through one service (dedup off, so the
// second pass re-executes every scenario against a warm cache) and a third
// time through a cache-less service. All three must agree to the bit, at
// every threads-per-scenario count.
void expect_cold_equals_hit(std::size_t threads_per_scenario, std::size_t workers) {
  std::vector<ac::ScenarioSpec> specs;
  {
    ac::ScenarioSpec fv;
    fv.name = "fv";
    fv.graph = "fv_slab_steady";
    fv.loads = {{"power_w", 6.0}};
    fv.boundaries = {{"t_cold", 300.0}, {"t_hot", 318.0}};
    specs.push_back(fv);
    fv.name = "fv_hot";  // same structure, different loads: shares assembly
    fv.loads = {{"power_w", 11.0}};
    specs.push_back(fv);
    ac::ScenarioSpec modal;
    modal.name = "modal";
    modal.graph = "modal_plate";
    modal.params = {{"mass_x", 0.05}};
    specs.push_back(modal);
    modal.name = "modal_slid";  // same K, different M: shares factorization
    modal.params = {{"mass_x", 0.08}};
    specs.push_back(modal);
    ac::ScenarioSpec rom;
    rom.name = "rom";
    rom.graph = "rom_board_steady";
    rom.loads = {{"cpu", 9.0}, {"psu", 5.5}};
    rom.boundaries = {{"rail_left", 313.0}, {"rail_right", 315.0}, {"top_air", 301.0}};
    specs.push_back(rom);
    rom.name = "rom_var";  // same model, different point: shares the ROM
    rom.loads = {{"cpu", 4.0}, {"psu", 2.0}};
    specs.push_back(rom);
  }

  ac::ScenarioServiceOptions cached_opts;
  cached_opts.workers = workers;
  cached_opts.threads_per_scenario = threads_per_scenario;
  cached_opts.deduplicate = false;  // make the second pass re-execute
  ac::ScenarioService cached(cached_opts);
  ar::register_rom_graphs(cached);
  const std::vector<ac::ScenarioResult> cold = cached.run(specs);
  const std::vector<ac::ScenarioResult> warm = cached.run(specs);
  EXPECT_GT(cached.cache().stats().hits, 0u) << "second pass never hit the cache";

  ac::ScenarioServiceOptions plain_opts = cached_opts;
  plain_opts.use_cache = false;
  ac::ScenarioService uncached(plain_opts);
  ar::register_rom_graphs(uncached);
  const std::vector<ac::ScenarioResult> reference = uncached.run(specs);

  ASSERT_EQ(cold.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].name << ": " << cold[i].error;
    ASSERT_TRUE(warm[i].ok) << warm[i].name << ": " << warm[i].error;
    ASSERT_TRUE(reference[i].ok) << reference[i].name << ": " << reference[i].error;
    ASSERT_EQ(cold[i].values.size(), reference[i].values.size()) << cold[i].name;
    for (const auto& [key, value] : reference[i].values) {
      EXPECT_EQ(cold[i].values.at(key), value) << cold[i].name << "." << key << " (cold)";
      EXPECT_EQ(warm[i].values.at(key), value) << warm[i].name << "." << key << " (hit)";
    }
  }
}

TEST(ArtifactReuse, ServiceCacheHitsBitIdenticalAt1Thread) { expect_cold_equals_hit(1, 1); }
TEST(ArtifactReuse, ServiceCacheHitsBitIdenticalAt2Threads) { expect_cold_equals_hit(2, 2); }
TEST(ArtifactReuse, ServiceCacheHitsBitIdenticalAt8Threads) { expect_cold_equals_hit(8, 4); }

}  // namespace
