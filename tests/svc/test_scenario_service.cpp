// core::ScenarioService — submission/dedup/wait semantics, graph registry,
// error capture, telemetry capture (counters + gauges) and the options
// validation conventions shared with ScenarioRunner.
#include "core/scenario_service.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rom/service_graphs.hpp"

namespace ac = aeropack::core;

namespace {

ac::ScenarioSpec seb_spec(const std::string& name, double power_w) {
  ac::ScenarioSpec spec;
  spec.name = name;
  spec.graph = "seb_point";
  spec.loads = {{"power_w", power_w}};
  return spec;
}

TEST(ScenarioService, ZeroWorkersThrows) {
  ac::ScenarioServiceOptions opts;
  opts.workers = 0;
  EXPECT_THROW(ac::ScenarioService service(opts), std::invalid_argument);
}

TEST(ScenarioService, EmptyOpaqueScenarioThrows) {
  ac::ScenarioService service;
  EXPECT_THROW(service.submit("nothing", ac::ScenarioFn{}), std::invalid_argument);
}

TEST(ScenarioService, WaitOnDefaultTicketThrows) {
  ac::ScenarioService service;
  EXPECT_THROW(service.wait(ac::ScenarioService::Ticket{}), std::invalid_argument);
}

TEST(ScenarioService, BuiltinGraphsAreRegistered) {
  ac::ScenarioService service;
  EXPECT_TRUE(service.has_graph("fv_slab_steady"));
  EXPECT_TRUE(service.has_graph("modal_plate"));
  EXPECT_TRUE(service.has_graph("seb_point"));
  EXPECT_FALSE(service.has_graph("rom_board_steady"));
  aeropack::rom::register_rom_graphs(service);
  EXPECT_TRUE(service.has_graph("rom_board_steady"));
  EXPECT_TRUE(service.has_graph("rom_seb_steady"));
}

TEST(ScenarioService, UnknownGraphFailsTheScenarioNotTheBatch) {
  ac::ScenarioService service;
  ac::ScenarioSpec bad;
  bad.name = "bad";
  bad.graph = "no_such_graph";
  const std::vector<ac::ScenarioResult> results = service.run({bad, seb_spec("good", 60.0)});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("no_such_graph"), std::string::npos);
  EXPECT_TRUE(results[1].ok);
  EXPECT_GT(results[1].values.at("t_pcb"), 0.0);
}

TEST(ScenarioService, DeduplicatesContentEqualSpecs) {
  ac::ScenarioServiceOptions opts;
  opts.workers = 2;
  ac::ScenarioService service(opts);
  // Same content under three names + one genuinely different point.
  const std::vector<ac::ScenarioResult> results =
      service.run({seb_spec("a", 60.0), seb_spec("b", 60.0), seb_spec("c", 60.0),
                   seb_spec("d", 120.0)});
  ASSERT_EQ(results.size(), 4u);
  for (const ac::ScenarioResult& r : results) EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
  // Each ticket keeps its own name even when the job was shared.
  EXPECT_EQ(results[0].name, "a");
  EXPECT_EQ(results[1].name, "b");
  EXPECT_EQ(results[2].name, "c");
  // Duplicates return the identical values.
  EXPECT_EQ(results[0].values, results[1].values);
  EXPECT_EQ(results[0].values, results[2].values);
  EXPECT_NE(results[0].values.at("t_pcb"), results[3].values.at("t_pcb"));

  const ac::ScenarioServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.dedup_hits, 2u);
  EXPECT_EQ(s.executed, 2u);
}

TEST(ScenarioService, MemoPersistsAcrossBatches) {
  ac::ScenarioService service;
  const auto first = service.run({seb_spec("p60", 60.0)});
  ASSERT_TRUE(first[0].ok);
  const auto again = service.run({seb_spec("p60_again", 60.0)});
  ASSERT_TRUE(again[0].ok);
  EXPECT_EQ(first[0].values, again[0].values);
  const ac::ScenarioServiceStats s = service.stats();
  EXPECT_EQ(s.executed, 1u);  // the second batch was memoized, not re-solved
  EXPECT_EQ(s.dedup_hits, 1u);
}

TEST(ScenarioService, DedupOffRunsEverySubmission) {
  ac::ScenarioServiceOptions opts;
  opts.deduplicate = false;
  ac::ScenarioService service(opts);
  service.run({seb_spec("a", 60.0), seb_spec("b", 60.0)});
  const ac::ScenarioServiceStats s = service.stats();
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.dedup_hits, 0u);
}

TEST(ScenarioService, ResultsCarryCountersAndGauges) {
  ac::ScenarioService service;
  ac::ScenarioSpec spec;
  spec.name = "slab";
  spec.graph = "fv_slab_steady";
  const auto results = service.run({spec});
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_GE(results[0].counters.at("fv.steady_solves"), 1u);
  // Gauge capture (the satellite contract): problem size + per-pass traces
  // from the scenario's isolated registry.
  EXPECT_GT(results[0].gauges.at("fv.cells"), 0.0);
  EXPECT_GT(results[0].seconds, 0.0);
}

TEST(ScenarioService, TelemetryOffLeavesProfilesEmpty) {
  ac::ScenarioServiceOptions opts;
  opts.telemetry = false;
  ac::ScenarioService service(opts);
  const auto results = service.run({seb_spec("quiet", 60.0)});
  ASSERT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].counters.empty());
  EXPECT_TRUE(results[0].gauges.empty());
}

TEST(ScenarioService, RegisteredGraphRunsAndValidates) {
  ac::ScenarioService service;
  EXPECT_THROW(service.register_graph("", [](const ac::ScenarioSpec&, aeropack::ExecutionContext&) {
    return std::map<std::string, double>{};
  }),
               std::invalid_argument);
  EXPECT_THROW(service.register_graph("g", ac::GraphFn{}), std::invalid_argument);
  service.register_graph("echo", [](const ac::ScenarioSpec& s, aeropack::ExecutionContext&) {
    return std::map<std::string, double>{{"x", s.params.at("x") * 2.0}};
  });
  ac::ScenarioSpec spec;
  spec.name = "echoed";
  spec.graph = "echo";
  spec.params = {{"x", 21.0}};
  const auto results = service.run({spec});
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].values.at("x"), 42.0);
}

TEST(ScenarioService, ThrowingGraphIsCapturedPerScenario) {
  ac::ScenarioService service;
  service.register_graph("boom", [](const ac::ScenarioSpec&, aeropack::ExecutionContext&)
                                     -> std::map<std::string, double> {
    throw std::runtime_error("scenario exploded");
  });
  ac::ScenarioSpec spec;
  spec.name = "boom1";
  spec.graph = "boom";
  const auto results = service.run({spec});
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error, "scenario exploded");
  EXPECT_TRUE(results[0].values.empty());
}

}  // namespace
