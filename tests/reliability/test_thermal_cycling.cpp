// Coffin-Manson / Norris-Landzberg thermal-cycling fatigue.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "reliability/thermal_cycling.hpp"

namespace ar = aeropack::reliability;

TEST(CoffinManson, InverseSquareDefault) {
  const double n50 = ar::coffin_manson_cycles(50.0);
  const double n100 = ar::coffin_manson_cycles(100.0);
  EXPECT_NEAR(n50 / n100, 4.0, 1e-9);
  EXPECT_THROW(ar::coffin_manson_cycles(0.0), std::invalid_argument);
}

TEST(CoffinManson, PaperShockProfileSurvivable) {
  // -45/+55 C shock: dT = 100 K. Capability must exceed a typical 50-cycle
  // qualification sequence by a wide margin ("without damage").
  const double cycles = ar::coffin_manson_cycles(100.0);
  EXPECT_GT(cycles, 500.0);
}

TEST(CoffinManson, AccelerationFactor) {
  EXPECT_NEAR(ar::coffin_manson_acceleration(100.0, 50.0), 4.0, 1e-12);
  EXPECT_NEAR(ar::coffin_manson_acceleration(100.0, 50.0, 2.5),
              std::pow(2.0, 2.5), 1e-9);
}

TEST(NorrisLandzberg, RefinesCoffinManson) {
  // Same dT, same peak, same frequency: reduces to the Coffin-Manson ratio.
  const double af = ar::norris_landzberg_acceleration(100.0, 50.0, 24.0, 24.0, 328.15, 328.15);
  EXPECT_NEAR(af, std::pow(2.0, 1.9), 1e-9);
  // A cooler service peak makes the hot test more accelerating...
  const double af_cool = ar::norris_landzberg_acceleration(100.0, 50.0, 24.0, 24.0, 328.15, 308.15);
  EXPECT_GT(af_cool, af);
  // ...while slower service cycling (creep has time to act) reduces it.
  const double af_slow = ar::norris_landzberg_acceleration(100.0, 50.0, 24.0, 6.0, 328.15, 328.15);
  EXPECT_LT(af_slow, af);
}

TEST(NorrisLandzberg, InvalidInputsThrow) {
  EXPECT_THROW(ar::norris_landzberg_acceleration(100.0, 50.0, 0.0, 6.0, 328.15, 308.15),
               std::invalid_argument);
}

TEST(ServiceLife, Scales) {
  // 500 test cycles at AF 4 against 365 service cycles/year: ~5.5 years.
  EXPECT_NEAR(ar::service_life_years(500.0, 4.0, 365.0), 2000.0 / 365.0, 1e-9);
  EXPECT_THROW(ar::service_life_years(0.0, 4.0, 365.0), std::invalid_argument);
}
