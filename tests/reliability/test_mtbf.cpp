// Failure-rate prediction and MTBF rollup.
#include <gtest/gtest.h>

#include <stdexcept>

#include "reliability/mtbf.hpp"

namespace ar = aeropack::reliability;

TEST(Arrhenius, UnityAtReference) {
  EXPECT_DOUBLE_EQ(ar::arrhenius_factor(313.15, 313.15, 0.7), 1.0);
}

TEST(Arrhenius, HotterAccelerates) {
  const double af = ar::arrhenius_factor(313.15, 398.15, 0.45);
  EXPECT_GT(af, 5.0);
  EXPECT_LT(af, 100.0);
  EXPECT_LT(ar::arrhenius_factor(313.15, 293.15, 0.45), 1.0);
}

TEST(Arrhenius, InvalidInputsThrow) {
  EXPECT_THROW(ar::arrhenius_factor(0.0, 300.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ar::arrhenius_factor(300.0, 300.0, -0.1), std::invalid_argument);
}

TEST(Factors, EnvironmentLadder) {
  EXPECT_LT(ar::environment_factor(ar::Environment::GroundBenign),
            ar::environment_factor(ar::Environment::AirborneInhabitedCargo));
  EXPECT_LT(ar::environment_factor(ar::Environment::AirborneInhabitedCargo),
            ar::environment_factor(ar::Environment::AirborneUninhabitedCargo));
}

TEST(Factors, CotsPenalty) {
  // The paper's tension: "maximum use of low-cost plastic components or COTS
  // components in severe avionics applications" — modeled as the pi_Q ladder.
  EXPECT_GT(ar::quality_factor(ar::Quality::Commercial),
            2.0 * ar::quality_factor(ar::Quality::FullMil));
}

TEST(PartRate, TemperatureAndCountScaling) {
  ar::Part p;
  p.type = ar::PartType::Microprocessor;
  p.junction_temperature = 358.15;
  const double l1 = ar::part_failure_rate(p, ar::Environment::AirborneInhabitedCargo);
  p.count = 3;
  EXPECT_NEAR(ar::part_failure_rate(p, ar::Environment::AirborneInhabitedCargo), 3.0 * l1,
              1e-12);
  p.count = 1;
  p.junction_temperature = 398.15;
  EXPECT_GT(ar::part_failure_rate(p, ar::Environment::AirborneInhabitedCargo), l1);
  p.count = 0;
  EXPECT_THROW(ar::part_failure_rate(p, ar::Environment::GroundBenign),
               std::invalid_argument);
}

namespace {
std::vector<ar::Part> typical_avionics_bom(double junction_k) {
  std::vector<ar::Part> bom;
  const auto add = [&](const char* ref, ar::PartType t, int count) {
    ar::Part p;
    p.reference = ref;
    p.type = t;
    p.count = count;
    p.junction_temperature = junction_k;
    bom.push_back(p);
  };
  add("CPU", ar::PartType::Microprocessor, 1);
  add("RAM", ar::PartType::Memory, 4);
  add("OPAMP", ar::PartType::AnalogIc, 12);
  add("FET", ar::PartType::PowerTransistor, 6);
  add("D", ar::PartType::Diode, 20);
  add("R", ar::PartType::Resistor, 300);
  add("C", ar::PartType::CeramicCapacitor, 200);
  add("CT", ar::PartType::TantalumCapacitor, 12);
  add("L", ar::PartType::Inductor, 10);
  add("J", ar::PartType::Connector, 4);
  add("XTAL", ar::PartType::Crystal, 2);
  add("ATTACH", ar::PartType::SolderJointSet, 50);
  return bom;
}
}  // namespace

TEST(Mtbf, TypicalAvionicsNearPaperFigure) {
  // The paper: "Typical MTBF for aerospace applications is about 40,000 h"
  // with junctions kept cool. A representative BOM at 70 C junction in an
  // inhabited-cargo bay should land in that decade.
  const auto rpt =
      ar::predict_mtbf(typical_avionics_bom(343.15), ar::Environment::AirborneInhabitedCargo);
  EXPECT_GT(rpt.mtbf_hours, 20000.0);
  EXPECT_LT(rpt.mtbf_hours, 120000.0);
  EXPECT_EQ(rpt.contributions.size(), 12u);
}

TEST(Mtbf, HotterJunctionsShortenLife) {
  const auto bom = typical_avionics_bom(343.15);
  const auto cool = ar::predict_mtbf(bom, ar::Environment::AirborneInhabitedCargo);
  const auto hot = ar::predict_mtbf_shifted(bom, ar::Environment::AirborneInhabitedCargo, 30.0);
  EXPECT_GT(cool.mtbf_hours, 1.5 * hot.mtbf_hours);
}

TEST(Mtbf, CoolingPaysOffLikeThePaperClaims) {
  // A 32 C junction reduction (the COSEE LHP result at 40 W) should buy a
  // substantial MTBF improvement.
  const auto bom = typical_avionics_bom(368.15);  // hot baseline
  const auto base = ar::predict_mtbf(bom, ar::Environment::AirborneInhabitedCargo);
  const auto cooled =
      ar::predict_mtbf_shifted(bom, ar::Environment::AirborneInhabitedCargo, -32.0);
  EXPECT_GT(cooled.mtbf_hours / base.mtbf_hours, 1.5);
}

TEST(Mtbf, EmptyBomThrows) {
  EXPECT_THROW(ar::predict_mtbf({}, ar::Environment::GroundBenign), std::invalid_argument);
}

// Property: total failure rate is the sum of contributions for any BOM.
class MtbfConsistency : public ::testing::TestWithParam<double> {};

TEST_P(MtbfConsistency, SeriesRollup) {
  const auto rpt = ar::predict_mtbf(typical_avionics_bom(GetParam()),
                                    ar::Environment::AirborneInhabitedCargo);
  double sum = 0.0;
  for (const auto& [ref, lambda] : rpt.contributions) sum += lambda;
  EXPECT_NEAR(sum, rpt.total_failure_rate, 1e-12);
  EXPECT_NEAR(rpt.mtbf_hours * rpt.total_failure_rate, 1e6, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Junctions, MtbfConsistency,
                         ::testing::Values(323.15, 343.15, 363.15, 398.15));
