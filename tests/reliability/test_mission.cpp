// Mission-profile reliability rollup.
#include <gtest/gtest.h>

#include <stdexcept>

#include "reliability/mission.hpp"

namespace ar = aeropack::reliability;

namespace {
std::vector<ar::Part> small_bom() {
  std::vector<ar::Part> bom;
  ar::Part cpu;
  cpu.reference = "CPU";
  cpu.type = ar::PartType::Microprocessor;
  cpu.junction_temperature = 353.15;
  bom.push_back(cpu);
  ar::Part rs;
  rs.reference = "R";
  rs.type = ar::PartType::Resistor;
  rs.count = 100;
  rs.junction_temperature = 353.15;
  bom.push_back(rs);
  return bom;
}
}  // namespace

TEST(Mission, ShortHaulProfileSane) {
  const auto p = ar::MissionProfile::short_haul();
  EXPECT_NO_THROW(p.validate());
  EXPECT_NEAR(p.mission_hours(), 3.1, 0.01);
  EXPECT_GT(p.phases.size(), 2u);
}

TEST(Mission, ValidationCatchesNonsense) {
  ar::MissionProfile p;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.phases.push_back({"x", 0.0, 0.0, ar::Environment::GroundBenign});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Mission, EffectiveRateIsDutyWeighted) {
  const auto bom = small_bom();
  const auto rpt = ar::assess_mission(bom, ar::MissionProfile::short_haul());
  // Bounded by the best and worst phase rates.
  double lo = 1e18, hi = 0.0;
  for (const auto& [name, rate] : rpt.phase_rates) {
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  EXPECT_GE(rpt.effective_failure_rate, lo);
  EXPECT_LE(rpt.effective_failure_rate, hi);
  EXPECT_NEAR(rpt.mtbf_hours * rpt.effective_failure_rate, 1e6, 1e-3);
}

TEST(Mission, HotterGroundSoakHurts) {
  const auto bom = small_bom();
  auto mild = ar::MissionProfile::short_haul();
  auto harsh = mild;
  harsh.phases[0].junction_offset = +40.0;  // desert apron
  const auto a = ar::assess_mission(bom, mild);
  const auto b = ar::assess_mission(bom, harsh);
  EXPECT_LT(b.mtbf_hours, a.mtbf_hours);
}

TEST(Mission, AttachDamageTracksSwingAndRate) {
  const auto bom = small_bom();
  auto p = ar::MissionProfile::short_haul();
  const auto base = ar::assess_mission(bom, p, 30.0);
  const auto big_swing = ar::assess_mission(bom, p, 60.0);
  EXPECT_GT(big_swing.annual_attach_damage, 3.0 * base.annual_attach_damage);
  p.missions_per_year = 1400.0;
  const auto busy = ar::assess_mission(bom, p, 30.0);
  EXPECT_NEAR(busy.annual_attach_damage, 2.0 * base.annual_attach_damage, 1e-12);
  EXPECT_LT(busy.attach_life_years, base.attach_life_years);
}

TEST(Mission, AnnualHoursRollup) {
  const auto p = ar::MissionProfile::short_haul();
  const auto rpt = ar::assess_mission(small_bom(), p);
  EXPECT_NEAR(rpt.annual_operating_hours, p.mission_hours() * p.missions_per_year, 1e-9);
}

TEST(Mission, EmptyBomThrows) {
  EXPECT_THROW(ar::assess_mission({}, ar::MissionProfile::short_haul()),
               std::invalid_argument);
}
