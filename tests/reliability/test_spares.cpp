// Fleet spares provisioning.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "reliability/spares.hpp"

namespace ar = aeropack::reliability;

TEST(Spares, PipelineDemandHandCalc) {
  // 250 boxes, 3000 h/yr each, 30,000 h MTBF, 30-day turnaround:
  // removals = 25/yr; pipeline = 25 * 30/365 ~ 2.05.
  const double d = ar::pipeline_demand(30000.0, 250, 3000.0, 30.0);
  EXPECT_NEAR(d, 25.0 * 30.0 / 365.0, 1e-9);
  EXPECT_NEAR(ar::annual_removals(30000.0, 250, 3000.0), 25.0, 1e-9);
}

TEST(Spares, PoissonCdfProperties) {
  EXPECT_DOUBLE_EQ(ar::poisson_cdf(5, 0.0), 1.0);
  EXPECT_NEAR(ar::poisson_cdf(0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(ar::poisson_cdf(1, 1.0), 2.0 * std::exp(-1.0), 1e-12);
  // CDF is monotone in k and approaches 1.
  double prev = 0.0;
  for (std::size_t k = 0; k <= 20; ++k) {
    const double c = ar::poisson_cdf(k, 5.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
  EXPECT_THROW(ar::poisson_cdf(1, -1.0), std::invalid_argument);
}

TEST(Spares, StockGrowsWithDemandAndFillRate) {
  const std::size_t modest = ar::spares_required(40000.0, 250, 3000.0, 30.0, 0.95);
  const std::size_t poor_mtbf = ar::spares_required(10000.0, 250, 3000.0, 30.0, 0.95);
  const std::size_t high_fill = ar::spares_required(40000.0, 250, 3000.0, 30.0, 0.999);
  EXPECT_GT(poor_mtbf, modest);
  EXPECT_GE(high_fill, modest);
}

TEST(Spares, BetterCoolingCutsTheStock) {
  // The paper's fleet argument in one assertion: the MTBF gained by the
  // two-phase chain (roughly 1.5x at box level) reduces the spares pool.
  const std::size_t fan_cooled = ar::spares_required(18000.0, 250, 3500.0, 45.0, 0.95);
  const std::size_t passive = ar::spares_required(27000.0, 250, 3500.0, 45.0, 0.95);
  EXPECT_LT(passive, fan_cooled);
}

TEST(Spares, InvalidInputsThrow) {
  EXPECT_THROW(ar::pipeline_demand(0.0, 10, 3000.0, 30.0), std::invalid_argument);
  EXPECT_THROW(ar::spares_required(30000.0, 10, 3000.0, 30.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ar::annual_removals(30000.0, 0, 3000.0), std::invalid_argument);
}
