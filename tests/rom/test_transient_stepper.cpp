// RomTransientStepper contracts: collapsed fixed-dt marches reproduce
// RomModel::transient bitwise, driven marches actually follow the drive,
// the exact-dt factorization ring serves changing step sizes, and — the
// determinism sweep the stepper's header promises — driven adaptive-shaped
// marches are bit-identical at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/transient_engine.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "numeric/parallel.hpp"
#include "rom/canonical.hpp"
#include "rom/rom.hpp"
#include "rom/transient.hpp"
#include "verify/tolerance.hpp"

namespace ac = aeropack::core;
namespace am = aeropack::mission;
namespace an = aeropack::numeric;
namespace ar = aeropack::rom;
namespace av = aeropack::verify;
using an::Vector;

namespace {

const std::vector<std::size_t> kThreadSweep{1, 2, 8};

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

ar::RomModel board_rom() {
  const ar::CanonicalCase c = ar::fig2_board();
  ar::RomOptions opts;
  opts.transient_samples_per_map = 2;
  opts.transient_time_scale = 10.0;
  return ar::build_rom(c.model, c.spec, opts);
}

ar::RomInputs board_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {313.15, 318.15, 303.15};
  in.map_powers = {12.0, 8.0};
  return in;
}

am::Profile shock_profile() {
  return am::Profile::do160_thermal_shock(263.15, 333.15, 40.0, 60.0);
}

/// March the driven stepper through the step-doubling dt pattern the
/// adaptive controller produces (full step + two halves, dt varying per
/// attempt) and return the final reduced state.
Vector adaptive_shaped_march(const ar::RomModel& rom, const am::Profile& profile) {
  ar::RomTransientStepper stepper(rom, board_inputs(),
                                  am::drive_for_rom(profile, board_inputs()));
  Vector y = stepper.initial_state(293.15);
  double t = 0.0;
  double dt = 3.0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    stepper.step(y, t + dt, dt);
    const double h2 = 0.5 * dt;
    stepper.step(y, t + dt + h2, h2);
    stepper.step(y, t + 2.0 * dt, dt - h2);
    t += 2.0 * dt;
    dt = (attempt % 3 == 0) ? dt * 1.5 : dt * 0.7;
  }
  return y;
}

}  // namespace

TEST(RomTransientStepper, FixedDtMarchMatchesModelTransientBitwise) {
  const ar::RomModel rom = board_rom();
  const ar::RomInputs inputs = board_inputs();
  const ar::RomTransientResult reference = rom.transient(inputs, 120.0, 7.5, 293.15);

  ar::RomTransientStepper stepper(rom, inputs);  // undriven: base inputs throughout
  Vector y = stepper.initial_state(293.15);
  std::vector<Vector> marched{y};
  ac::march_fixed(stepper, y, 120.0, 7.5,
                  [&](double, const Vector& state) { marched.push_back(state); });

  ASSERT_EQ(marched.size(), reference.reduced_states.size());
  for (std::size_t s = 0; s < marched.size(); ++s)
    EXPECT_TRUE(av::bitwise_equal(marched[s], reference.reduced_states[s]))
        << "reduced state diverges at step " << s;
}

TEST(RomTransientStepper, DriveIsResolvedAtStepEndTimes) {
  const ar::RomModel rom = board_rom();
  const am::Profile profile = shock_profile();
  const ar::RomInputs inputs = board_inputs();

  // Driven vs frozen-at-base marches must part ways once the ambient ramps.
  ar::RomTransientStepper driven(rom, inputs, am::drive_for_rom(profile, inputs));
  ar::RomTransientStepper frozen(rom, inputs);
  Vector yd = driven.initial_state(293.15);
  Vector yf = frozen.initial_state(293.15);
  const double t_end = profile.total_duration();
  ac::march_fixed(driven, yd, t_end, t_end / 40.0, [](double, const Vector&) {});
  ac::march_fixed(frozen, yf, t_end, t_end / 40.0, [](double, const Vector&) {});
  const Vector field_driven = rom.reconstruct(yd);
  const Vector field_frozen = rom.reconstruct(yf);
  double diff = 0.0;
  for (std::size_t c = 0; c < field_driven.size(); ++c)
    diff = std::max(diff, std::abs(field_driven[c] - field_frozen[c]));
  EXPECT_GT(diff, 1.0) << "drive had no effect on the marched field";
}

TEST(RomTransientStepper, FactorRingServesChangingStepSizes) {
  const ar::RomModel rom = board_rom();
  ar::RomTransientStepper stepper(rom, board_inputs());
  Vector y = stepper.initial_state(293.15);
  // Cycle through more distinct dts than the ring holds, twice, interleaved
  // — every solve must still be finite and advance the state.
  const std::vector<double> dts{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
  double t = 0.0;
  for (int cycle = 0; cycle < 2; ++cycle)
    for (const double dt : dts) {
      t += dt;
      stepper.step(y, t, dt);
      for (const double v : y) ASSERT_TRUE(std::isfinite(v));
    }
  // The marched state still reconstructs to a physical field.
  const Vector field = rom.reconstruct(y);
  for (const double v : field) EXPECT_GT(v, 200.0);
}

TEST(RomTransientStepper, DrivenMarchBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const am::Profile profile = shock_profile();
  an::set_thread_count(1);
  const ar::RomModel rom = board_rom();
  const Vector reference = adaptive_shaped_march(rom, profile);
  for (const std::size_t threads : kThreadSweep) {
    an::set_thread_count(threads);
    const Vector y = adaptive_shaped_march(rom, profile);
    EXPECT_TRUE(av::bitwise_equal(y, reference))
        << "driven march diverges at " << threads << " threads, index "
        << av::first_bitwise_difference(y, reference);
  }
}

TEST(RomTransientStepper, KeepaliveOverloadSharesTheModel) {
  auto shared = std::make_shared<const ar::RomModel>(board_rom());
  ar::RomTransientStepper stepper(shared, board_inputs());
  EXPECT_EQ(stepper.state_size(), shared->rank());
  Vector y = stepper.initial_state(293.15);
  stepper.step(y, 5.0, 5.0);
  EXPECT_EQ(y.size(), shared->rank());
}
