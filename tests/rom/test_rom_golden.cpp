// Golden compact models: the Fig. 2 board and SEB box reductions frozen as
// JSON baselines under tests/rom/golden/ — basis rank, POD modal energies,
// port-to-port resistances, power splits and steady port responses. Any
// change to snapshot policy, POD ordering or projection that moves these
// numbers fails here with a diff and the regeneration command
// (AEROPACK_UPDATE_GOLDEN=1 ctest -L rom).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "rom/canonical.hpp"
#include "rom/rom.hpp"
#include "verify/golden.hpp"

namespace ar = aeropack::rom;
namespace an = aeropack::numeric;
namespace av = aeropack::verify;

namespace {

const char* golden_dir() { return AEROPACK_ROM_GOLDEN_DIR; }

void expect_golden(const av::GoldenRecorder& rec) {
  std::string joined;
  for (const auto& line : rec.finish(1e-7)) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

void record_compact_model(av::GoldenRecorder& rec, const ar::CanonicalCase& c,
                          const ar::RomInputs& inputs) {
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);
  rec.record("usable_rank", static_cast<double>(rom.usable_rank()));
  rec.record("snapshots", static_cast<double>(rom.build_info().snapshot_count));

  // Leading POD energies: the spectral fingerprint of the snapshot set.
  const std::size_t n_modes = std::min<std::size_t>(4, rom.usable_rank());
  for (std::size_t k = 0; k < n_modes; ++k)
    rec.record("pod_energy." + std::to_string(k), rom.pod_energies()[k]);

  // Port-to-port resistances [K/W] — the DELPHI-style compact network.
  const an::Matrix kmat = rom.port_conductance_matrix();
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    for (std::size_t q = p + 1; q < rom.port_count(); ++q)
      rec.record("R." + rom.port_name(p) + "." + rom.port_name(q), -1.0 / kmat(p, q));

  // Power splits: fraction of each map's dissipation exiting each port.
  const an::Matrix w = rom.port_power_split();
  for (std::size_t m = 0; m < rom.map_count(); ++m)
    for (std::size_t p = 0; p < rom.port_count(); ++p)
      rec.record("split." + rom.map_name(m) + "." + rom.port_name(p), w(p, m));

  // Steady port response at the canonical operating point.
  const ar::RomSteadyResult steady = rom.steady(inputs);
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    rec.record("T." + rom.port_name(p), steady.port_temperatures[p]);
    rec.record("Q." + rom.port_name(p), steady.port_heat_flows[p]);
  }
}

}  // namespace

TEST(RomGolden, Fig2BoardCompactModel) {
  av::GoldenRecorder rec("rom_fig2_board", golden_dir(), "rom");
  ar::RomInputs inputs;
  inputs.sink_temperatures = {313.15, 318.15, 303.15};  // rails hot, air cooler
  inputs.map_powers = {12.0, 8.0};                      // cpu, psu [W]
  record_compact_model(rec, ar::fig2_board(), inputs);
  expect_golden(rec);
}

TEST(RomGolden, SebBoxCompactModel) {
  av::GoldenRecorder rec("rom_seb_box", golden_dir(), "rom");
  ar::RomInputs inputs;
  inputs.sink_temperatures = {308.15, 308.15, 298.15};  // seat rods, cabin air
  inputs.map_powers = {45.0, 15.0};                     // pcb_components, psu [W]
  record_compact_model(rec, ar::seb_box(), inputs);
  expect_golden(rec);
}
