// Thread-determinism sweep for the compact-model pipeline: ROM build (basis,
// reduced operators, POD energies), steady/transient evaluation and field
// reconstruction must be bit-identical at 1, 2 and 8 threads — the same
// contract the FV/fem solvers carry, extended through snapshot generation
// and Galerkin projection. TSan-gated in CI alongside the numeric/fem runs.
#include <gtest/gtest.h>

#include <vector>

#include "exec/context.hpp"
#include "numeric/parallel.hpp"
#include "rom/canonical.hpp"
#include "rom/rom.hpp"
#include "verify/tolerance.hpp"

namespace an = aeropack::numeric;
namespace ar = aeropack::rom;
namespace av = aeropack::verify;

namespace {

const std::vector<std::size_t> kThreadSweep{1, 2, 8};

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

ar::RomOptions enriched_options() {
  ar::RomOptions opts;
  opts.transient_samples_per_map = 2;
  opts.transient_time_scale = 10.0;
  return opts;
}

ar::RomInputs board_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {313.15, 318.15, 303.15};
  in.map_powers = {12.0, 8.0};
  return in;
}

void expect_matrix_identical(const an::Matrix& a, const an::Matrix& b, const char* what,
                             std::size_t threads) {
  EXPECT_TRUE(a == b) << what << " diverges at " << threads << " threads";
}

}  // namespace

TEST(RomDeterminism, BuildBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const ar::CanonicalCase c = ar::fig2_board();
  an::set_thread_count(1);
  const ar::RomModel reference = ar::build_rom(c.model, c.spec, enriched_options());
  for (std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const ar::RomModel rom = ar::build_rom(c.model, c.spec, enriched_options());
    ASSERT_EQ(rom.usable_rank(), reference.usable_rank()) << t;
    expect_matrix_identical(rom.basis(), reference.basis(), "basis", t);
    expect_matrix_identical(rom.reduced_operator(), reference.reduced_operator(), "A_r", t);
    expect_matrix_identical(rom.reduced_capacity(), reference.reduced_capacity(), "C_r", t);
    expect_matrix_identical(rom.input_map(), reference.input_map(), "B_r", t);
    EXPECT_TRUE(av::bitwise_equal(rom.pod_energies(), reference.pod_energies()))
        << "POD energies diverge at " << t << " threads, index "
        << av::first_bitwise_difference(rom.pod_energies(), reference.pod_energies());
  }
}

TEST(RomDeterminism, EvaluationBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const ar::CanonicalCase c = ar::fig2_board();
  const ar::RomInputs in = board_inputs();
  an::set_thread_count(1);
  const ar::RomModel rom1 = ar::build_rom(c.model, c.spec);
  const ar::RomSteadyResult ref_steady = rom1.steady(in);
  const an::Vector ref_field = rom1.reconstruct(ref_steady.reduced_coordinates);
  const ar::RomTransientResult ref_march = rom1.transient(in, 600.0, 30.0, 293.15);
  for (std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const ar::RomModel rom = ar::build_rom(c.model, c.spec);
    const ar::RomSteadyResult steady = rom.steady(in);
    EXPECT_TRUE(av::bitwise_equal(steady.port_temperatures, ref_steady.port_temperatures)) << t;
    EXPECT_TRUE(av::bitwise_equal(steady.port_heat_flows, ref_steady.port_heat_flows)) << t;
    EXPECT_TRUE(av::bitwise_equal(steady.reduced_coordinates, ref_steady.reduced_coordinates))
        << t;
    const an::Vector field = rom.reconstruct(steady.reduced_coordinates);
    EXPECT_TRUE(av::bitwise_equal(field, ref_field))
        << t << " threads diverge at index " << av::first_bitwise_difference(field, ref_field);
    const ar::RomTransientResult march = rom.transient(in, 600.0, 30.0, 293.15);
    ASSERT_EQ(march.times.size(), ref_march.times.size()) << t;
    for (std::size_t s = 0; s < march.times.size(); ++s)
      EXPECT_TRUE(
          av::bitwise_equal(march.port_temperatures[s], ref_march.port_temperatures[s]))
          << t << " threads, step " << s;
  }
}

TEST(RomDeterminism, ContextPinnedBuildMatchesProcessPool) {
  // Building inside an ExecutionContext (own pool, own registry) must give
  // the exact same compact model as the process-default path — this is what
  // lets ScenarioRunner campaigns mix ROM builds into isolated scenarios.
  ThreadCountGuard guard;
  const ar::CanonicalCase c = ar::seb_box();
  an::set_thread_count(1);
  const ar::RomModel reference = ar::build_rom(c.model, c.spec);
  for (std::size_t t : kThreadSweep) {
    aeropack::ExecutionContext ctx(aeropack::ExecutionConfig{t, true, 0});
    aeropack::ExecutionContext::Use use(ctx);
    const ar::RomModel rom = ar::build_rom(c.model, c.spec);
    expect_matrix_identical(rom.basis(), reference.basis(), "context basis", t);
    expect_matrix_identical(rom.input_map(), reference.input_map(), "context B_r", t);
  }
}
