// Scenario-campaign fidelity swap: the same input vectors evaluated through
// the compact model and through the full FV solve inside ScenarioRunner
// must agree on port temperatures, and each scenario's isolated counter
// profile must show which fidelity it ran (rom.steady_evals vs.
// fv.steady_solves) — ROM evaluation swapped in per scenario, not per
// process.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "core/scenario_runner.hpp"
#include "rom/campaign.hpp"
#include "rom/canonical.hpp"

namespace ar = aeropack::rom;
namespace ac = aeropack::core;

namespace {

ar::RomInputs sweep_point(double rail_k, double power_w) {
  ar::RomInputs in;
  in.sink_temperatures = {rail_k, rail_k + 5.0, 303.15};
  in.map_powers = {power_w, 0.6 * power_w};
  return in;
}

}  // namespace

TEST(RomCampaign, FidelitySwapAgreesAndCountsBothPaths) {
  const ar::CanonicalCase c = ar::fig2_board();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);

  std::vector<ar::CampaignCase> cases;
  cases.push_back({"p10.compact", sweep_point(313.15, 10.0), ar::Fidelity::Compact});
  cases.push_back({"p10.full", sweep_point(313.15, 10.0), ar::Fidelity::FullOrder});
  cases.push_back({"p25.compact", sweep_point(318.15, 25.0), ar::Fidelity::Compact});
  cases.push_back({"p25.full", sweep_point(318.15, 25.0), ar::Fidelity::FullOrder});

  ac::ScenarioRunnerOptions opts;
  opts.workers = 2;
  opts.threads_per_scenario = 1;
  opts.telemetry = true;
  ac::ScenarioRunner runner(opts);
  ar::add_campaign(runner, c.model, c.spec, rom, cases);

  const auto results = runner.run();
  ASSERT_EQ(results.size(), cases.size());
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.name << ": " << r.error;

  // Compact and full-order runs of the same point agree at ROM accuracy.
  for (std::size_t pair = 0; pair < 2; ++pair) {
    const auto& compact = results[2 * pair];
    const auto& full = results[2 * pair + 1];
    EXPECT_EQ(compact.values.at("full_order"), 0.0);
    EXPECT_EQ(full.values.at("full_order"), 1.0);
    for (const auto& [key, value] : full.values) {
      if (key.rfind("T.", 0) != 0) continue;
      EXPECT_NEAR(compact.values.at(key), value, 0.05) << compact.name << " " << key;
    }
    // Heat flows agree to a fraction of the dissipated power.
    for (const auto& [key, value] : full.values) {
      if (key.rfind("Q.", 0) != 0) continue;
      EXPECT_NEAR(compact.values.at(key), value, 0.2) << compact.name << " " << key;
    }
  }

  // Isolated per-scenario counters prove which path each scenario took.
  for (const auto& r : results) {
    const bool full = r.values.at("full_order") == 1.0;
    const auto rom_evals = r.counters.find("rom.steady_evals");
    const auto fv_solves = r.counters.find("fv.steady_solves");
    if (full) {
      ASSERT_NE(fv_solves, r.counters.end()) << r.name;
      EXPECT_GE(fv_solves->second, 1u) << r.name;
      EXPECT_TRUE(rom_evals == r.counters.end() || rom_evals->second == 0u) << r.name;
    } else {
      ASSERT_NE(rom_evals, r.counters.end()) << r.name;
      EXPECT_EQ(rom_evals->second, 1u) << r.name;
      EXPECT_TRUE(fv_solves == r.counters.end() || fv_solves->second == 0u) << r.name;
    }
  }
}

TEST(RomCampaign, RejectsMismatchedInputsAtQueueTime) {
  const ar::CanonicalCase c = ar::fig2_board();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);
  ac::ScenarioRunner runner;
  ar::RomInputs bad;
  bad.sink_temperatures = {300.0};  // 1 of 3
  bad.map_powers = {1.0, 1.0};
  EXPECT_THROW(
      ar::add_campaign(runner, c.model, c.spec, rom, {{"bad", bad, ar::Fidelity::Compact}}),
      std::invalid_argument);
  EXPECT_EQ(runner.scenario_count(), 0u);
}
