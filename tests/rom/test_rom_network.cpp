// Equipment-level embedding: a component-level compact model dropped into a
// lumped ThermalNetwork must reproduce the ROM's own steady port solution
// when its port nodes see the same sink temperatures, and must satisfy the
// network's energy balance — the Fig. 4 component -> equipment handoff made
// executable.
#include <gtest/gtest.h>

#include <stdexcept>

#include "rom/canonical.hpp"
#include "rom/network_embed.hpp"
#include "thermal/network.hpp"

namespace ar = aeropack::rom;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;

namespace {

/// Sinks stiffly coupled to the port nodes: with G >> K the node
/// temperatures pin to the sinks and the embedding must match rom.steady().
constexpr double kStiff = 1e8;

}  // namespace

TEST(RomNetwork, EmbeddingReproducesRomSteadyPortState) {
  const ar::CanonicalCase c = ar::fig2_board();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);

  ar::RomInputs inputs;
  inputs.sink_temperatures = {313.15, 318.15, 303.15};
  inputs.map_powers = {12.0, 8.0};
  const ar::RomSteadyResult reference = rom.steady(inputs);

  at::ThermalNetwork net;
  const ar::NetworkEmbedding emb = ar::embed_rom(net, rom, "board", inputs.map_powers);
  ASSERT_EQ(emb.port_nodes.size(), rom.port_count());
  EXPECT_EQ(net.node_name(emb.port_nodes[0]), "board.rail_left");

  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    const at::NodeId sink = net.add_boundary("sink." + rom.port_name(p),
                                             inputs.sink_temperatures[p]);
    net.add_conductor(emb.port_nodes[p], sink, kStiff);
  }
  const at::SteadySolution sol = net.solve_steady();
  ASSERT_TRUE(sol.converged);

  // Stiffly pinned port nodes sit at the sink temperatures, and the heat
  // crossing into each sink equals the ROM's port outflow -Q_p up to the
  // pinning error.
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    EXPECT_NEAR(sol.temperatures[emb.port_nodes[p]], inputs.sink_temperatures[p], 1e-4);
    const double into_sink =
        kStiff * (sol.temperatures[emb.port_nodes[p]] - inputs.sink_temperatures[p]);
    EXPECT_NEAR(into_sink, -reference.port_heat_flows[p], 1e-3) << rom.port_name(p);
  }

  // Global balance: everything the maps dissipate crosses into the sinks.
  double total_into_sinks = 0.0;
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    total_into_sinks +=
        kStiff * (sol.temperatures[emb.port_nodes[p]] - inputs.sink_temperatures[p]);
  EXPECT_NEAR(total_into_sinks, inputs.map_powers[0] + inputs.map_powers[1], 1e-3);
}

TEST(RomNetwork, EmbeddedModelRespondsToEquipmentNetwork) {
  // The same compact model, now coupled through finite conductances to one
  // chassis node — the equipment level decides the port temperatures. The
  // embedding must agree with evaluating the ROM at the network's solved
  // port temperatures (self-consistency of the two representations).
  const ar::CanonicalCase c = ar::seb_box();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);

  an::Vector powers{40.0, 12.0};
  at::ThermalNetwork net;
  const ar::NetworkEmbedding emb = ar::embed_rom(net, rom, "seb", powers);

  const double t_cabin = 297.15;
  const an::Vector g_cabin{4.0, 4.0, 1.5};  // rail_a, rail_b, skin couplings
  const at::NodeId cabin = net.add_boundary("cabin", t_cabin);
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    net.add_conductor(emb.port_nodes[p], cabin, g_cabin[p]);

  const at::SteadySolution sol = net.solve_steady();
  ASSERT_TRUE(sol.converged);

  // Self-consistency: evaluate the ROM with the network's solved port
  // temperatures as sinks — the heat the body pushes out of each port
  // (-Q_p) must equal what the equipment conductor carries to the cabin.
  ar::RomInputs back;
  back.sink_temperatures = {sol.temperatures[emb.port_nodes[0]],
                            sol.temperatures[emb.port_nodes[1]],
                            sol.temperatures[emb.port_nodes[2]]};
  back.map_powers = powers;
  const ar::RomSteadyResult rs = rom.steady(back);
  double total_to_cabin = 0.0;
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    const double to_cabin = g_cabin[p] * (sol.temperatures[emb.port_nodes[p]] - t_cabin);
    EXPECT_NEAR(to_cabin, -rs.port_heat_flows[p], 1e-6) << rom.port_name(p);
    EXPECT_GT(sol.temperatures[emb.port_nodes[p]], t_cabin);
    total_to_cabin += to_cabin;
  }
  // Every dissipated watt reaches the cabin.
  EXPECT_NEAR(total_to_cabin, powers[0] + powers[1], 1e-6);
}

TEST(RomNetwork, EmbedValidatesMapPowers) {
  const ar::CanonicalCase c = ar::fig2_board();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);
  at::ThermalNetwork net;
  EXPECT_THROW(ar::embed_rom(net, rom, "x", an::Vector{1.0}), std::invalid_argument);
}
