// Property/contract tests for the compact-model pipeline: input validation
// with clear messages, training-snapshot reproduction at full rank,
// rank-edge rejection, steady physics invariants (superposition, uniform
// states, zero-row-sum port coupling) and transient/steady consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rom/canonical.hpp"
#include "rom/rom.hpp"

namespace ar = aeropack::rom;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;

namespace {

/// Cached canonical reductions (the builder is deterministic, so sharing a
/// model between tests cannot couple them).
const ar::CanonicalCase& board_case() {
  static const ar::CanonicalCase c = ar::fig2_board();
  return c;
}

const ar::RomModel& board_rom() {
  static const ar::RomModel rom = ar::build_rom(board_case().model, board_case().spec);
  return rom;
}

ar::RomInputs board_inputs() {
  ar::RomInputs in;
  in.sink_temperatures = {313.15, 318.15, 303.15};
  in.map_powers = {12.0, 8.0};
  return in;
}

template <typename Ex, typename Fn>
void expect_throw_containing(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected exception containing '" << fragment << "'";
  } catch (const Ex& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace

TEST(RomContracts, ReproducesTrainingSnapshotsToRoundOff) {
  // The POD basis spans the full snapshot set at usable rank, so the worst
  // relative reconstruction error over the training set must be round-off.
  // training_residual() subtracts two nearly equal energies, so its floor is
  // ~sqrt(machine eps) relative, not eps — hence the 1e-7 bound.
  const ar::RomModel& rom = board_rom();
  EXPECT_EQ(rom.rank(), rom.usable_rank());
  EXPECT_LT(rom.training_residual(), 1e-7);
  EXPECT_LT(rom.error_estimate(), 1e-6);
}

TEST(RomContracts, SteadyMatchesUnitSnapshotResponse) {
  // Sinks all zero, map "cpu" at 1 W is exactly training snapshot #3 —
  // steady() must reproduce its port temperatures through the projection.
  const ar::RomModel& rom = board_rom();
  ar::RomInputs in;
  in.sink_temperatures = {0.0, 0.0, 0.0};
  in.map_powers = {1.0, 0.0};
  const ar::RomSteadyResult out = rom.steady(in);
  // 1 W into a railed board: small positive rise at every port.
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    EXPECT_GT(out.port_temperatures[p], 0.0);
    EXPECT_LT(out.port_temperatures[p], 5.0);
  }
  // All dissipation leaves through the ports: heat INTO the body sums to -1 W.
  double total = 0.0;
  for (double q : out.port_heat_flows) total += q;
  EXPECT_NEAR(total, -1.0, 1e-6);
}

TEST(RomContracts, UniformSinksZeroPowerIsUniformState) {
  const ar::RomModel& rom = board_rom();
  ar::RomInputs in;
  in.sink_temperatures = {293.15, 293.15, 293.15};
  in.map_powers = {0.0, 0.0};
  const ar::RomSteadyResult out = rom.steady(in);
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    EXPECT_NEAR(out.port_temperatures[p], 293.15, 1e-6);
    EXPECT_NEAR(out.port_heat_flows[p], 0.0, 1e-6);
  }
}

TEST(RomContracts, SteadyIsSuperposition) {
  const ar::RomModel& rom = board_rom();
  ar::RomInputs a, b, sum;
  a.sink_temperatures = {300.0, 310.0, 295.0};
  a.map_powers = {5.0, 0.0};
  b.sink_temperatures = {10.0, -5.0, 2.0};
  b.map_powers = {0.0, 3.0};
  sum.sink_temperatures = {310.0, 305.0, 297.0};
  sum.map_powers = {5.0, 3.0};
  const auto ra = rom.steady(a), rb = rom.steady(b), rs = rom.steady(sum);
  for (std::size_t p = 0; p < rom.port_count(); ++p) {
    EXPECT_NEAR(ra.port_temperatures[p] + rb.port_temperatures[p], rs.port_temperatures[p], 1e-8);
    EXPECT_NEAR(ra.port_heat_flows[p] + rb.port_heat_flows[p], rs.port_heat_flows[p], 1e-8);
  }
}

TEST(RomContracts, PortConductanceSymmetricZeroRowSums) {
  const an::Matrix k = board_rom().port_conductance_matrix();
  ASSERT_TRUE(k.square());
  EXPECT_LT(k.asymmetry(), 1e-10);
  for (std::size_t p = 0; p < k.rows(); ++p) {
    double row = 0.0;
    for (std::size_t q = 0; q < k.cols(); ++q) row += k(p, q);
    EXPECT_NEAR(row, 0.0, 1e-8) << "port " << p;
    EXPECT_GT(k(p, p), 0.0);
    for (std::size_t q = 0; q < k.cols(); ++q)
      if (q != p) EXPECT_LT(k(p, q), 0.0);
  }
}

TEST(RomContracts, PowerSplitColumnsSumToOne) {
  const an::Matrix w = board_rom().port_power_split();
  for (std::size_t m = 0; m < w.cols(); ++m) {
    double col = 0.0;
    for (std::size_t p = 0; p < w.rows(); ++p) {
      EXPECT_GT(w(p, m), 0.0);
      col += w(p, m);
    }
    EXPECT_NEAR(col, 1.0, 1e-8) << "map " << m;
  }
}

TEST(RomContracts, InputSizeMismatchThrows) {
  const ar::RomModel& rom = board_rom();
  ar::RomInputs bad_ports;
  bad_ports.sink_temperatures = {300.0, 300.0};  // 2 of 3
  bad_ports.map_powers = {0.0, 0.0};
  expect_throw_containing<std::invalid_argument>([&] { rom.steady(bad_ports); },
                                                 "port sink temperatures");
  expect_throw_containing<std::invalid_argument>(
      [&] { rom.transient(bad_ports, 10.0, 1.0, 293.15); }, "port sink temperatures");

  ar::RomInputs bad_maps;
  bad_maps.sink_temperatures = {300.0, 300.0, 300.0};
  bad_maps.map_powers = {1.0};  // 1 of 2
  expect_throw_containing<std::invalid_argument>([&] { rom.steady(bad_maps); }, "map powers");

  at::FvModel model = board_case().model;
  expect_throw_containing<std::invalid_argument>(
      [&] { ar::apply_inputs(model, board_case().spec, bad_maps); }, "map powers");
}

TEST(RomContracts, RankEdgeCasesRejectedWithClearMessages) {
  const ar::RomModel& rom = board_rom();
  expect_throw_containing<std::invalid_argument>([&] { rom.at_rank(0); }, "at least 1");
  expect_throw_containing<std::invalid_argument>([&] { rom.at_rank(rom.usable_rank() + 1); },
                                                 "usable basis rank");

  ar::RomOptions zero;
  zero.rank = 0;
  expect_throw_containing<std::invalid_argument>(
      [&] { ar::build_rom(board_case().model, board_case().spec, zero); }, "at least 1");

  ar::RomOptions huge;
  huge.rank = 10'000;
  expect_throw_containing<std::invalid_argument>(
      [&] { ar::build_rom(board_case().model, board_case().spec, huge); },
      "exceeds the usable basis rank");
}

TEST(RomContracts, SpecValidationRejectsBadLayouts) {
  const at::FvModel& model = board_case().model;
  {
    ar::RomSpec empty;
    expect_throw_containing<std::invalid_argument>([&] { ar::build_rom(model, empty); },
                                                   "at least one port");
  }
  {
    ar::RomSpec spec = board_case().spec;
    spec.ports[0].h = 0.0;
    expect_throw_containing<std::invalid_argument>([&] { ar::build_rom(model, spec); },
                                                   "film coefficient");
  }
  {
    ar::RomSpec spec = board_case().spec;
    spec.ports[1].name = spec.ports[0].name;
    expect_throw_containing<std::invalid_argument>([&] { ar::build_rom(model, spec); },
                                                   "duplicate port name");
  }
  {
    // Two ports on the same face cells must be rejected, not last-wins.
    ar::RomSpec spec = board_case().spec;
    ar::RomPort clone = spec.ports[0];
    clone.name = "rail_left_copy";
    spec.ports.push_back(clone);
    expect_throw_containing<std::invalid_argument>([&] { ar::build_rom(model, spec); },
                                                   "overlap");
  }
  {
    ar::RomSpec spec = board_case().spec;
    spec.maps[0].regions[0].weight = -1.0;
    expect_throw_containing<std::invalid_argument>([&] { ar::build_rom(model, spec); },
                                                   "weights must be > 0");
  }
  {
    ar::RomOptions opts;
    opts.transient_samples_per_map = 2;  // no time scale set
    expect_throw_containing<std::invalid_argument>(
        [&] { ar::build_rom(model, board_case().spec, opts); }, "transient_time_scale");
  }
}

TEST(RomContracts, AtRankIsNestedTruncation) {
  const ar::RomModel& rom = board_rom();
  const ar::RomModel same = rom.at_rank(rom.rank());
  const ar::RomInputs in = board_inputs();
  const auto a = rom.steady(in), b = same.steady(in);
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    EXPECT_EQ(a.port_temperatures[p], b.port_temperatures[p]);

  // Truncation keeps the leading modes: the rank-r reduced coordinates are a
  // prefix of the full ones only in the training sense, but the estimate
  // must grow (or stay) as modes are dropped.
  double prev = rom.error_estimate();
  for (std::size_t r = rom.usable_rank(); r-- > 1;) {
    const double est = rom.at_rank(r).error_estimate();
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(RomContracts, TransientSemanticsMatchFullSolver) {
  const ar::RomModel& rom = board_rom();
  const ar::RomInputs in = board_inputs();
  EXPECT_THROW(rom.transient(in, 10.0, 0.0, 293.15), std::invalid_argument);
  EXPECT_THROW(rom.transient(in, 0.0, 1.0, 293.15), std::invalid_argument);

  // dt > t_end clamps to a single step of t_end.
  const auto clamped = rom.transient(in, 5.0, 50.0, 293.15);
  ASSERT_EQ(clamped.times.size(), 2u);
  EXPECT_DOUBLE_EQ(clamped.times[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped.times[1], 5.0);

  // t = 0 reports the uniform initial state.
  const auto march = rom.transient(in, 2000.0, 100.0, 293.15);
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    EXPECT_NEAR(march.port_temperatures.front()[p], 293.15, 0.5);

  // A long march settles onto the steady solution.
  const auto steady = rom.steady(in);
  const auto settled = rom.transient(in, 2.0e5, 500.0, 293.15);
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    EXPECT_NEAR(settled.port_temperatures.back()[p], steady.port_temperatures[p], 1e-3);
}

TEST(RomContracts, ReconstructValidatesCoordinateSize) {
  const ar::RomModel& rom = board_rom();
  an::Vector wrong(rom.rank() + 1, 0.0);
  EXPECT_THROW(rom.reconstruct(wrong), std::invalid_argument);
  const an::Vector field = rom.steady_field(board_inputs());
  EXPECT_EQ(field.size(), rom.cell_count());
}

TEST(RomContracts, TransientEnrichmentAddsUsableModes) {
  ar::RomOptions enriched;
  enriched.transient_samples_per_map = 3;
  enriched.transient_time_scale = 5.0;
  const ar::RomModel rom = ar::build_rom(board_case().model, board_case().spec, enriched);
  EXPECT_GT(rom.build_info().snapshot_count, board_rom().build_info().snapshot_count);
  EXPECT_GE(rom.usable_rank(), board_rom().usable_rank());
  EXPECT_LT(rom.training_residual(), 1e-7);
}
