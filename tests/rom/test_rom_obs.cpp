// Observability contract for the compact-model pipeline: the rom.* counters
// land in the current registry (per-context isolation included), the
// algorithmic ones agree exactly with RomBuildInfo, and the wall-clock
// snapshot-build counter — the one deliberately nondeterministic key — is
// present so report gating must exclude it by prefix.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "exec/context.hpp"
#include "rom/canonical.hpp"
#include "rom/rom.hpp"

namespace ar = aeropack::rom;

namespace {

std::uint64_t at(const std::map<std::string, std::uint64_t>& counters, const std::string& key) {
  const auto it = counters.find(key);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace

TEST(RomObs, BuildAndEvalCountersMatchBuildInfo) {
  const ar::CanonicalCase c = ar::fig2_board();
  aeropack::ExecutionContext ctx(aeropack::ExecutionConfig{1, true, 0});
  ar::RomModel rom = [&] {
    aeropack::ExecutionContext::Use use(ctx);
    return ar::build_rom(c.model, c.spec);
  }();

  const auto counters = ctx.metrics().counters();
  EXPECT_EQ(at(counters, "rom.builds"), 1u);
  EXPECT_EQ(at(counters, "rom.snapshot_solves"), rom.build_info().snapshot_solves);
  EXPECT_EQ(at(counters, "rom.snapshot_cg_iterations"), rom.build_info().snapshot_cg_iterations);
  EXPECT_EQ(at(counters, "rom.basis_vectors"), rom.rank());
  EXPECT_EQ(ctx.metrics().gauges().at("rom.basis_rank"), static_cast<double>(rom.rank()));
  EXPECT_EQ(ctx.metrics().gauges().at("rom.snapshots"),
            static_cast<double>(rom.build_info().snapshot_count));
  // The wall-clock build counter exists (nondeterministic value — exactly
  // why tools/check_report.py excludes the rom.snapshot_build. prefix).
  EXPECT_NE(counters.find("rom.snapshot_build.elapsed_us"), counters.end());

  // Evaluations count in whatever registry is current at call time.
  ar::RomInputs in;
  in.sink_temperatures = {300.0, 300.0, 300.0};
  in.map_powers = {5.0, 5.0};
  {
    aeropack::ExecutionContext::Use use(ctx);
    (void)rom.steady(in);
    (void)rom.steady(in);
    (void)rom.transient(in, 100.0, 10.0, 293.15);
  }
  const auto after = ctx.metrics().counters();
  EXPECT_EQ(at(after, "rom.steady_evals"), 2u);
  EXPECT_EQ(at(after, "rom.transient_evals"), 1u);
  EXPECT_EQ(at(after, "rom.transient_steps"), 10u);
}

TEST(RomObs, ContextsIsolateRomCounters) {
  const ar::CanonicalCase c = ar::fig2_board();
  aeropack::ExecutionContext a(aeropack::ExecutionConfig{1, true, 0});
  aeropack::ExecutionContext b(aeropack::ExecutionConfig{1, true, 0});
  {
    aeropack::ExecutionContext::Use use(a);
    (void)ar::build_rom(c.model, c.spec);
  }
  EXPECT_EQ(at(a.metrics().counters(), "rom.builds"), 1u);
  EXPECT_EQ(at(b.metrics().counters(), "rom.builds"), 0u);
}
