// core::ScenarioRunner: batch semantics (order, errors, re-run), per-scenario
// counter isolation, and bit-identical outputs at every worker count.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario_runner.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "thermal/fv.hpp"

namespace ac = aeropack::core;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;

namespace {

/// Small FV slab solve — enough numeric work to exercise the context's pool
/// and leave a counter trail.
ac::ScenarioFn slab_scenario(double power_w) {
  return [power_w](aeropack::ExecutionContext&) {
    at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 12, 3, 3));
    slab.set_material(am::aluminum_6061());
    slab.add_power({0, 12, 0, 3, 0, 3}, power_w);
    slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
    const at::FvSolution sol = slab.solve_steady();
    return std::map<std::string, double>{{"t_max", sol.max_temperature}};
  };
}

std::uint64_t counter_of(const ac::ScenarioResult& r, const std::string& key) {
  const auto it = r.counters.find(key);
  return it == r.counters.end() ? 0u : it->second;
}

}  // namespace

TEST(ScenarioRunner, RejectsZeroWorkersAndEmptyScenarios) {
  ac::ScenarioRunnerOptions opts;
  opts.workers = 0;
  EXPECT_THROW(ac::ScenarioRunner bad(opts), std::invalid_argument);
  ac::ScenarioRunner runner;
  EXPECT_THROW(runner.add("empty", ac::ScenarioFn{}), std::invalid_argument);
}

TEST(ScenarioRunner, ResultsComeBackInAddOrder) {
  ac::ScenarioRunnerOptions opts;
  opts.workers = 4;
  ac::ScenarioRunner runner(opts);
  for (int i = 0; i < 9; ++i) {
    const double v = 1.5 * i;
    runner.add("s" + std::to_string(i),
               [v](aeropack::ExecutionContext&) {
                 return std::map<std::string, double>{{"v", v}};
               });
  }
  ASSERT_EQ(runner.scenario_count(), 9u);
  const std::vector<ac::ScenarioResult> results = runner.run();
  ASSERT_EQ(results.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(results[i].name, "s" + std::to_string(i));
    EXPECT_TRUE(results[i].ok);
    EXPECT_DOUBLE_EQ(results[i].values.at("v"), 1.5 * i);
  }
}

TEST(ScenarioRunner, ThrowingScenarioIsCapturedWithoutAbortingTheBatch) {
  ac::ScenarioRunnerOptions opts;
  opts.workers = 2;
  ac::ScenarioRunner runner(opts);
  runner.add("good", slab_scenario(4.0));
  runner.add("bad", [](aeropack::ExecutionContext&) -> std::map<std::string, double> {
    throw std::runtime_error("diverged");
  });
  runner.add("also_good", slab_scenario(6.0));
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error, "diverged");
  EXPECT_TRUE(results[1].values.empty());
  EXPECT_TRUE(results[2].ok);
}

TEST(ScenarioRunner, OutputsBitIdenticalAcrossWorkerCounts) {
  const auto run_with = [](std::size_t workers) {
    ac::ScenarioRunnerOptions opts;
    opts.workers = workers;
    ac::ScenarioRunner runner(opts);
    for (const double q : {2.0, 5.0, 9.0, 13.0})
      runner.add("q" + std::to_string(static_cast<int>(q)), slab_scenario(q));
    return runner.run();
  };
  const auto serial = run_with(1);
  for (const std::size_t w : {2u, 4u}) {
    const auto batch = run_with(w);
    ASSERT_EQ(batch.size(), serial.size()) << w << " workers";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok);
      // Exact double equality: same context config => same pool partition
      // and chunked reductions => the same bits.
      EXPECT_EQ(batch[i].values.at("t_max"), serial[i].values.at("t_max"))
          << w << " workers, scenario " << i;
    }
  }
}

TEST(ScenarioRunner, EachScenarioGetsItsOwnCounterProfile) {
  ac::ScenarioRunnerOptions opts;
  opts.workers = 2;
  opts.telemetry = true;
  ac::ScenarioRunner runner(opts);
  runner.add("one_solve", slab_scenario(5.0));
  runner.add("two_solves", [](aeropack::ExecutionContext& ctx) {
    std::map<std::string, double> out = slab_scenario(5.0)(ctx);
    out.merge(slab_scenario(7.0)(ctx));
    return out;
  });
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(counter_of(results[0], "fv.steady_solves"), 1u);
  EXPECT_EQ(counter_of(results[1], "fv.steady_solves"), 2u);
  EXPECT_GT(counter_of(results[0], "fv.cg_iterations"), 0u);
}

TEST(ScenarioRunner, TelemetryOffLeavesCountersEmpty) {
  ac::ScenarioRunnerOptions opts;
  opts.telemetry = false;
  ac::ScenarioRunner runner(opts);
  runner.add("quiet", slab_scenario(5.0));
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].counters.empty());
}

TEST(ScenarioRunner, BatchDoesNotTouchTheProcessRegistry) {
  const auto before = aeropack::obs::Registry::instance().counters();
  ac::ScenarioRunnerOptions opts;
  opts.workers = 2;
  opts.telemetry = true;
  ac::ScenarioRunner runner(opts);
  runner.add("a", slab_scenario(3.0));
  runner.add("b", slab_scenario(8.0));
  const auto results = runner.run();
  for (const auto& r : results) ASSERT_TRUE(r.ok);
  EXPECT_EQ(aeropack::obs::Registry::instance().counters(), before);
}

TEST(ScenarioRunner, RunnerIsRerunnableWithFreshCounters) {
  ac::ScenarioRunnerOptions opts;
  opts.telemetry = true;
  ac::ScenarioRunner runner(opts);
  runner.add("slab", slab_scenario(6.0));
  const auto first = runner.run();
  const auto second = runner.run();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].values.at("t_max"), second[0].values.at("t_max"));
  // Fresh context per run: counters do not accumulate across runs.
  EXPECT_EQ(counter_of(first[0], "fv.steady_solves"),
            counter_of(second[0], "fv.steady_solves"));
}

TEST(ScenarioRunner, MoreWorkersThanScenariosIsFine) {
  ac::ScenarioRunnerOptions opts;
  opts.workers = 16;
  ac::ScenarioRunner runner(opts);
  runner.add("only", slab_scenario(4.0));
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
}

TEST(ScenarioRunner, ThrowingScenarioRerunsIdenticallyWithFreshCounters) {
  // Re-run contract for failures: the second run() reproduces the same
  // ok/error outcome per scenario, and counters come from a fresh context
  // both times (no accumulation across runs, failed or not).
  ac::ScenarioRunnerOptions opts;
  opts.workers = 2;
  ac::ScenarioRunner runner(opts);
  runner.add("good", slab_scenario(4.0));
  runner.add("bad", [](aeropack::ExecutionContext&) -> std::map<std::string, double> {
    at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 8, 2, 2));
    slab.set_material(am::aluminum_6061());
    slab.add_power({0, 8, 0, 2, 0, 2}, 5.0);
    slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
    slab.solve_steady();  // leaves a counter trail before failing
    throw std::runtime_error("diverged after the solve");
  });
  const auto first = runner.run();
  const auto second = runner.run();
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_TRUE(first[0].ok);
  EXPECT_TRUE(second[0].ok);
  EXPECT_FALSE(first[1].ok);
  EXPECT_FALSE(second[1].ok);
  EXPECT_EQ(first[1].error, second[1].error);
  EXPECT_EQ(first[1].error, "diverged after the solve");
  // A failed scenario still reports the counters it accrued — identically
  // on both runs because each run drove a fresh registry.
  EXPECT_EQ(counter_of(first[1], "fv.steady_solves"), 1u);
  EXPECT_EQ(first[1].counters, second[1].counters);
  EXPECT_EQ(first[0].counters, second[0].counters);
}

TEST(ScenarioRunner, ResultsCarryGaugesFromTheScenarioRegistry) {
  ac::ScenarioRunner runner;
  runner.add("slab", slab_scenario(4.0));
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok);
  // Gauge capture rides along with counters: problem size + per-pass
  // convergence traces from the scenario's isolated registry.
  EXPECT_EQ(results[0].gauges.at("fv.cells"), 12.0 * 3.0 * 3.0);
}
