// ExecutionContext: ownership, RAII binding, and the per-context telemetry
// isolation contract (a context's counters are invisible to every other
// context and to the process default registry).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "exec/context.hpp"
#include "numeric/parallel.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"

namespace an = aeropack::numeric;
namespace obs = aeropack::obs;
using aeropack::ExecutionConfig;
using aeropack::ExecutionContext;

namespace {

/// An instrumentation site exactly like the solver hot paths use: a
/// thread-local handle that must re-resolve against whichever registry is
/// bound when it fires.
void instrumented_site() {
  static thread_local obs::CounterHandle bumps{"ctx.test.bumps"};
  bumps.add();
}

std::uint64_t bumps_in(const obs::Registry& reg) {
  const auto counters = reg.counters();
  const auto it = counters.find("ctx.test.bumps");
  return it == counters.end() ? 0u : it->second;
}

}  // namespace

TEST(ExecutionContext, FreshContextOwnsPoolAndRegistry) {
  ExecutionConfig cfg;
  cfg.threads = 2;
  cfg.telemetry = true;
  ExecutionContext ctx(cfg);
  EXPECT_EQ(ctx.threads(), 2u);
  EXPECT_TRUE(ctx.metrics().enabled());
  EXPECT_NE(&ctx.pool(), &an::ThreadPool::instance());
  EXPECT_NE(&ctx.metrics(), &obs::Registry::instance());
}

TEST(ExecutionContext, ZeroThreadsClampsToOne) {
  ExecutionConfig cfg;
  cfg.threads = 0;
  ExecutionContext ctx(cfg);
  EXPECT_EQ(ctx.threads(), 1u);
}

TEST(ExecutionContext, DefaultConfigIsSerialAndDormant) {
  ExecutionContext ctx;
  EXPECT_EQ(ctx.threads(), 1u);
  EXPECT_FALSE(ctx.metrics().enabled());
}

TEST(ExecutionContext, ConfigIsRetainedForSolverTuning) {
  // Solvers read tuning knobs (cg_chebyshev_degree) back off the context, so
  // the owning context must keep its construction config verbatim.
  ExecutionConfig cfg;
  cfg.threads = 2;
  cfg.cg_chebyshev_degree = 4;
  ExecutionContext ctx(cfg);
  EXPECT_EQ(ctx.config().cg_chebyshev_degree, 4u);
  EXPECT_EQ(ctx.config().threads, 2u);
  // The process-wrapping context carries the defaults (degree 0 = plain
  // Jacobi), so ambient solves keep their golden behavior.
  EXPECT_EQ(ExecutionContext::process().config().cg_chebyshev_degree, 0u);
}

TEST(ExecutionContext, ProcessContextWrapsTheSingletons) {
  ExecutionContext& proc = ExecutionContext::process();
  EXPECT_EQ(&proc.pool(), &an::ThreadPool::instance());
  EXPECT_EQ(&proc.metrics(), &obs::Registry::instance());
  EXPECT_EQ(&ExecutionContext::process(), &proc);
}

TEST(ExecutionContext, UseBindsPoolAndRegistryAndRestores) {
  an::ThreadPool& default_pool = an::current_pool();
  obs::Registry& default_reg = obs::current();
  ExecutionConfig cfg;
  cfg.threads = 3;
  ExecutionContext ctx(cfg);
  {
    const ExecutionContext::Use use(ctx);
    EXPECT_EQ(&an::current_pool(), &ctx.pool());
    EXPECT_EQ(&obs::current(), &ctx.metrics());
    EXPECT_EQ(an::thread_count(), 3u);  // thread_count follows the binding
  }
  EXPECT_EQ(&an::current_pool(), &default_pool);
  EXPECT_EQ(&obs::current(), &default_reg);
}

TEST(ExecutionContext, UseNestsAndRestoresInReverse) {
  ExecutionContext a, b;
  {
    const ExecutionContext::Use use_a(a);
    EXPECT_EQ(&obs::current(), &a.metrics());
    {
      const ExecutionContext::Use use_b(b);
      EXPECT_EQ(&obs::current(), &b.metrics());
      EXPECT_EQ(&an::current_pool(), &b.pool());
    }
    EXPECT_EQ(&obs::current(), &a.metrics());
    EXPECT_EQ(&an::current_pool(), &a.pool());
  }
}

TEST(ExecutionContext, SetThreadCountRefusesWhileBound) {
  ExecutionContext ctx;
  const ExecutionContext::Use use(ctx);
  EXPECT_THROW(an::set_thread_count(2), std::logic_error);
}

TEST(ExecutionContext, KernelsRunOnTheBoundPool) {
  ExecutionConfig cfg;
  cfg.threads = 4;
  ExecutionContext ctx(cfg);
  const ExecutionContext::Use use(ctx);
  an::Vector a(1000, 0.5), b(1000, 2.0);
  EXPECT_DOUBLE_EQ(an::parallel_dot(a, b), 1000.0);
}

// --- Satellite: per-context telemetry isolation ----------------------------

TEST(ContextTelemetry, CountersInContextAInvisibleInContextBAndDefault) {
  const std::uint64_t default_before = bumps_in(obs::Registry::instance());
  ExecutionConfig cfg;
  cfg.telemetry = true;
  ExecutionContext a(cfg), b(cfg);
  {
    const ExecutionContext::Use use(a);
    instrumented_site();
    instrumented_site();
    instrumented_site();
  }
  EXPECT_EQ(bumps_in(a.metrics()), 3u);
  EXPECT_EQ(bumps_in(b.metrics()), 0u);
  EXPECT_EQ(bumps_in(obs::Registry::instance()), default_before);
}

TEST(ContextTelemetry, HandleSiteFollowsTheBindingAcrossContexts) {
  // The same static thread_local handle must re-resolve when a different
  // registry is bound — this is the uid-revalidation contract that makes
  // per-site caches safe across context lifetimes.
  ExecutionConfig cfg;
  cfg.telemetry = true;
  ExecutionContext a(cfg);
  {
    ExecutionContext b(cfg);
    const ExecutionContext::Use use(b);
    instrumented_site();
    EXPECT_EQ(bumps_in(b.metrics()), 1u);
  }  // b destroyed; its registry is gone
  {
    const ExecutionContext::Use use(a);
    instrumented_site();  // must not touch b's freed registry
    instrumented_site();
  }
  EXPECT_EQ(bumps_in(a.metrics()), 2u);
}

TEST(ContextTelemetry, DormantContextRegistersKeysButRecordsNothing) {
  ExecutionContext ctx;  // telemetry off
  {
    const ExecutionContext::Use use(ctx);
    instrumented_site();
  }
  const auto counters = ctx.metrics().counters();
  const auto it = counters.find("ctx.test.bumps");
  ASSERT_NE(it, counters.end()) << "dormant sites still register their keys";
  EXPECT_EQ(it->second, 0u);
}

TEST(ContextTelemetry, EnableDisableOnContextDoesNotArmTheProcessRegistry) {
  const bool default_armed = obs::Registry::instance().enabled();
  ExecutionContext ctx;
  {
    const ExecutionContext::Use use(ctx);
    obs::enable();  // free function targets the *bound* registry
    EXPECT_TRUE(ctx.metrics().enabled());
    EXPECT_EQ(obs::Registry::instance().enabled(), default_armed);
    obs::disable();
    EXPECT_FALSE(ctx.metrics().enabled());
  }
  EXPECT_EQ(obs::Registry::instance().enabled(), default_armed);
}

TEST(ContextTelemetry, ReportCaptureOnContextEmitsSortedKeys) {
  ExecutionConfig cfg;
  cfg.telemetry = true;
  ExecutionContext ctx(cfg);
  // Register deliberately out of order.
  ctx.metrics().counter("zeta.last").add(7);
  ctx.metrics().counter("alpha.first").add(1);
  ctx.metrics().counter("mid.point").add(3);
  ctx.metrics().gauge("beta.gauge").set(2.0);

  const obs::Report report = obs::Report::capture(ctx.metrics(), "ctx_report", ctx.threads());
  const std::string json = report.to_json();
  // Flat JSON with keys in strict ascending order.
  const std::string keys[] = {"\"counters.alpha.first\"", "\"counters.mid.point\"",
                              "\"counters.zeta.last\"", "\"gauges.beta.gauge\""};
  std::size_t last = 0;
  for (const std::string& key : keys) {
    const std::size_t pos = json.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GT(pos, last) << key << " out of order";
    last = pos;
  }
  // Capture is deterministic: same registry, same serialization.
  EXPECT_EQ(obs::Report::capture(ctx.metrics(), "ctx_report", ctx.threads()).to_json(), json);
}

TEST(ContextTelemetry, BoundCaptureSeesOnlyTheBoundRegistry) {
  ExecutionConfig cfg;
  cfg.telemetry = true;
  ExecutionContext ctx(cfg);
  {
    const ExecutionContext::Use use(ctx);
    instrumented_site();
    const obs::Report report = obs::Report::capture("bound", an::thread_count());
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"counters.ctx.test.bumps\": 1"), std::string::npos) << json;
  }
}

TEST(ContextTelemetry, AddCountersMergesUnderPrefix) {
  ExecutionConfig cfg;
  cfg.telemetry = true;
  ExecutionContext ctx(cfg);
  ctx.metrics().counter("cg.iterations").add(42);
  obs::Report report = obs::Report::capture(ctx.metrics(), "merged", 1);
  report.add_counters("scenario_a", {{"cg.iterations", 17u}});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"counters.cg.iterations\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters.scenario_a.cg.iterations\": 17"), std::string::npos) << json;
}
