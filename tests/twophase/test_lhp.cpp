// Loop heat pipe: pressure budget, max power, variable conductance, tilt.
#include <gtest/gtest.h>

#include <stdexcept>

#include "materials/fluids.hpp"
#include "twophase/loop_heat_pipe.hpp"

namespace at = aeropack::twophase;
namespace am = aeropack::materials;

namespace {
at::LoopHeatPipe ammonia_lhp() { return at::LoopHeatPipe(am::ammonia(), at::LhpDesign{}); }
}  // namespace

TEST(LhpDesign, ValidationCatchesNonsense) {
  at::LhpDesign d;
  d.wick_pore_radius = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  at::LhpDesign d2;
  d2.condenser_open_fraction_min = 0.0;
  EXPECT_THROW(d2.validate(), std::invalid_argument);
}

TEST(Lhp, CapillaryPressureHuge) {
  // Micron pores + ammonia: tens of kPa of pumping head — the LHP's defining
  // feature ("particularly interesting when the heat is transferred over
  // large distance", as the paper puts it).
  const auto lhp = ammonia_lhp();
  const auto b = lhp.pressure_budget(50.0, 293.15, 0.0);
  EXPECT_GT(b.capillary_available, 20e3);
  EXPECT_GT(b.margin(), 0.0);
}

TEST(Lhp, PressureDemandGrowsWithPower) {
  const auto lhp = ammonia_lhp();
  const auto b10 = lhp.pressure_budget(10.0, 293.15, 0.0);
  const auto b100 = lhp.pressure_budget(100.0, 293.15, 0.0);
  EXPECT_GT(b100.total_demand(), b10.total_demand());
  EXPECT_GT(b100.wick, b10.wick);
}

TEST(Lhp, GravityHeadFromElevation) {
  const auto lhp = ammonia_lhp();
  const auto flat = lhp.pressure_budget(20.0, 293.15, 0.0);
  const auto raised = lhp.pressure_budget(20.0, 293.15, 0.3);
  EXPECT_DOUBLE_EQ(flat.gravity, 0.0);
  // rho_l g h ~ 610 * 9.81 * 0.3 ~ 1.8 kPa.
  EXPECT_NEAR(raised.gravity, 610.0 * 9.80665 * 0.3, 100.0);
}

TEST(Lhp, MaxPowerLargeHorizontalFiniteTilted) {
  const auto lhp = ammonia_lhp();
  const double flat = lhp.max_power(293.15, 0.0);
  const double tilted = lhp.max_power(293.15, 0.3);
  EXPECT_GT(flat, 100.0);  // far beyond the COSEE loads
  EXPECT_GT(flat, tilted);
  EXPECT_GT(tilted, 50.0);  // the 22-degree case still works (paper result)
}

TEST(Lhp, VariableConductanceAtLowPower) {
  const auto lhp = ammonia_lhp();
  const double r_low = lhp.thermal_resistance(1.0, 293.15);
  const double r_mid = lhp.thermal_resistance(30.0, 293.15);
  const double r_full = lhp.thermal_resistance(200.0, 293.15);
  EXPECT_GT(r_low, r_mid);
  EXPECT_GE(r_mid, r_full);
  // Fully open: evaporator + 1/UA.
  at::LhpDesign d;
  EXPECT_NEAR(r_full, d.evaporator_resistance + 1.0 / d.condenser_ua, 1e-9);
}

TEST(Lhp, OperatingPointConsistency) {
  const auto lhp = ammonia_lhp();
  const auto pt = lhp.operate(40.0, 293.15, 0.0);
  EXPECT_GT(pt.evaporator_temperature, pt.vapor_temperature);
  EXPECT_GT(pt.vapor_temperature, 293.15);
  EXPECT_TRUE(pt.within_capillary_limit);
  EXPECT_NEAR(pt.evaporator_temperature - 293.15, 40.0 * pt.resistance, 1e-9);
}

TEST(Lhp, NegativePowerThrows) {
  const auto lhp = ammonia_lhp();
  EXPECT_THROW(lhp.operate(-1.0, 293.15, 0.0), std::invalid_argument);
  EXPECT_THROW(lhp.pressure_budget(-1.0, 293.15, 0.0), std::invalid_argument);
}

TEST(Lhp, ExtremeElevationKillsTransport) {
  // A pathological design: huge pores can't fight a tall column.
  at::LhpDesign d;
  d.wick_pore_radius = 200e-6;  // coarse
  const at::LoopHeatPipe weak(am::ammonia(), d);
  // capillary = 2 sigma / r ~ 220 Pa; 0.1 m of ammonia ~ 600 Pa.
  EXPECT_DOUBLE_EQ(weak.max_power(293.15, 0.5), 0.0);
}

// Property: the pressure margin decreases monotonically with power.
class LhpMargin : public ::testing::TestWithParam<double> {};

TEST_P(LhpMargin, MonotoneInPower) {
  const auto lhp = ammonia_lhp();
  const double q = GetParam();
  const double m1 = lhp.pressure_budget(q, 293.15, 0.1).margin();
  const double m2 = lhp.pressure_budget(q + 10.0, 293.15, 0.1).margin();
  EXPECT_GT(m1, m2);
}

INSTANTIATE_TEST_SUITE_P(Powers, LhpMargin, ::testing::Values(0.0, 10.0, 50.0, 100.0, 300.0));
