// Two-phase thermosyphon: flooding limit and film resistances.
#include <gtest/gtest.h>

#include <numbers>
#include <stdexcept>

#include "materials/fluids.hpp"
#include "twophase/thermosyphon.hpp"

namespace at = aeropack::twophase;
namespace am = aeropack::materials;

namespace {
at::Thermosyphon water_syphon() {
  return at::Thermosyphon(am::water(), at::ThermosyphonGeometry{});
}
}  // namespace

TEST(Thermosyphon, GeometryValidation) {
  at::ThermosyphonGeometry g;
  g.inner_diameter = 0.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  at::ThermosyphonGeometry g2;
  g2.fill_ratio = 2.0;
  EXPECT_THROW(g2.validate(), std::invalid_argument);
}

TEST(Thermosyphon, FloodingLimitSubstantial) {
  // An 8 mm water thermosyphon at 60 C carries hundreds of watts vertically.
  const double q = water_syphon().flooding_limit(333.15, 0.0);
  EXPECT_GT(q, 100.0);
  EXPECT_LT(q, 5000.0);
}

TEST(Thermosyphon, InclinationDerates) {
  const auto ts = water_syphon();
  const double vertical = ts.flooding_limit(333.15, 0.0);
  const double inclined = ts.flooding_limit(333.15, std::numbers::pi / 4.0);
  EXPECT_GT(vertical, inclined);
  EXPECT_GT(inclined, 0.0);
}

TEST(Thermosyphon, HorizontalOrInvertedIsDead) {
  // The wickless pipe needs gravity return — the reason the COSEE SEB uses
  // capillary devices instead (seats recline and the aircraft pitches).
  const auto ts = water_syphon();
  EXPECT_DOUBLE_EQ(ts.flooding_limit(333.15, std::numbers::pi / 2.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.flooding_limit(333.15, 2.0), 0.0);
}

TEST(Thermosyphon, ResistanceReasonableAndFallsWithPower) {
  const auto ts = water_syphon();
  const double r10 = ts.thermal_resistance(333.15, 10.0);
  const double r100 = ts.thermal_resistance(333.15, 100.0);
  EXPECT_GT(r10, 0.001);
  EXPECT_LT(r10, 5.0);
  // Boiling improves with flux faster than condensation degrades: overall
  // resistance at higher power must not blow up.
  EXPECT_LT(r100, 3.0 * r10);
}

TEST(Thermosyphon, HigherTemperatureCarriesMore) {
  const auto ts = water_syphon();
  EXPECT_GT(ts.flooding_limit(373.15, 0.0), ts.flooding_limit(303.15, 0.0));
}
