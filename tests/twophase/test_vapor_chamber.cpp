// Vapor chamber (flat-plate heat pipe) hot-spot spreader.
#include <gtest/gtest.h>

#include <stdexcept>

#include "materials/fluids.hpp"
#include "thermal/forced_air.hpp"
#include "twophase/vapor_chamber.hpp"

namespace tp = aeropack::twophase;
namespace am = aeropack::materials;

namespace {
tp::VaporChamber chamber() {
  return tp::VaporChamber(am::water(), tp::VaporChamberGeometry{});
}
}  // namespace

TEST(VaporChamber, GeometryValidation) {
  tp::VaporChamberGeometry g;
  EXPECT_GT(g.vapor_core_thickness(), 0.0);
  g.wall_thickness = 1.2e-3;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(VaporChamber, EffectiveConductivityFarBeyondCopper) {
  // The whole point: in-plane k of thousands of W/m K.
  const double k = chamber().effective_in_plane_conductivity(330.0);
  EXPECT_GT(k, 2000.0);
  EXPECT_LT(k, 3.0e5);
}

TEST(VaporChamber, ThroughConductivityModest) {
  const double kt = chamber().effective_through_conductivity(330.0);
  EXPECT_GT(kt, 3.0);
  EXPECT_LT(kt, 400.0);
  EXPECT_LT(kt, chamber().effective_in_plane_conductivity(330.0));
}

TEST(VaporChamber, CapillaryLimitCoversHotSpotDuty) {
  // A 90 mm chamber should move >= 50 W from a central source.
  EXPECT_GT(chamber().capillary_limit(330.0), 50.0);
}

TEST(VaporChamber, BoilingLimitScalesWithSourceArea) {
  const double q1 = chamber().boiling_limit(330.0, 1e-4);
  const double q4 = chamber().boiling_limit(330.0, 4e-4);
  EXPECT_NEAR(q4 / q1, 4.0, 1e-9);
  EXPECT_THROW(chamber().boiling_limit(330.0, 0.0), std::invalid_argument);
}

TEST(VaporChamber, SpreadsBetterThanCopperPlate) {
  // Same geometry in solid copper vs the chamber: the chamber's spreading
  // resistance must be substantially lower for a 1 cm^2 source.
  const auto vc = chamber();
  const double h_back = 200.0;
  const double r_vc = vc.spreading_resistance(330.0, 1e-4, h_back);
  const double r_cu = aeropack::thermal::spreading_resistance(
      1e-4, vc.geometry().length * vc.geometry().width, vc.geometry().total_thickness,
      am::copper().conductivity, h_back);
  EXPECT_LT(r_vc, 0.75 * r_cu);
}

TEST(VaporChamber, EquivalentMaterialIsAnisotropic) {
  const auto m = chamber().as_equivalent_material();
  EXPECT_GT(m.conductivity, 50.0 * m.conductivity_through);
  EXPECT_FALSE(m.isotropic());
}

TEST(VaporChamber, InvalidWickThrows) {
  EXPECT_THROW(tp::VaporChamber(am::water(), tp::VaporChamberGeometry{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(tp::VaporChamber(am::water(), tp::VaporChamberGeometry{}, 5e-11, 20e-6, 1.5),
               std::invalid_argument);
}
