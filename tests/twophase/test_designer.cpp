// Heat-pipe sizing assistant.
#include <gtest/gtest.h>

#include <stdexcept>

#include "twophase/designer.hpp"

namespace tp = aeropack::twophase;

TEST(Designer, RequirementValidation) {
  tp::TransportRequirement req;
  req.power = 0.0;
  EXPECT_THROW(req.validate(), std::invalid_argument);
  tp::TransportRequirement m;
  m.margin = 0.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Designer, ModestDutyFindsSmallPipe) {
  tp::TransportRequirement req;
  req.power = 20.0;
  req.transport_length = 0.10;
  const auto d = tp::design_heat_pipe(req);
  ASSERT_TRUE(d.has_value());
  EXPECT_LE(d->geometry.outer_diameter, 8e-3);
  EXPECT_GE(d->capacity, req.margin * req.power);
  EXPECT_LE(d->resistance, req.max_resistance);
  EXPECT_GT(d->mass, 0.0);
}

TEST(Designer, CandidatesSortedByMass) {
  tp::TransportRequirement req;
  req.power = 15.0;
  const auto all = tp::enumerate_designs(req);
  ASSERT_GT(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LE(all[i - 1].mass, all[i].mass);
}

TEST(Designer, HarderDutyNeedsBiggerPipe) {
  tp::TransportRequirement easy;
  easy.power = 10.0;
  tp::TransportRequirement hard;
  hard.power = 80.0;
  const auto de = tp::design_heat_pipe(easy);
  const auto dh = tp::design_heat_pipe(hard);
  ASSERT_TRUE(de.has_value());
  ASSERT_TRUE(dh.has_value());
  EXPECT_GE(dh->geometry.outer_diameter, de->geometry.outer_diameter);
  EXPECT_GT(dh->mass, de->mass);
}

TEST(Designer, AdverseTiltPrunesGroovedWicks) {
  // Against gravity, only fine wicks survive — no axial-groove winner.
  tp::TransportRequirement req;
  req.power = 25.0;
  req.adverse_tilt_rad = 0.5;  // ~30 degrees
  const auto all = tp::enumerate_designs(req);
  for (const auto& c : all) EXPECT_NE(c.wick.kind, "axial grooves");
}

TEST(Designer, ImpossibleDutyReturnsNullopt) {
  tp::TransportRequirement req;
  req.power = 5000.0;           // far beyond a single miniature pipe
  req.transport_length = 1.0;
  req.max_resistance = 0.05;
  const auto d = tp::design_heat_pipe(req);
  EXPECT_FALSE(d.has_value());  // -> escalate to LHP (the paper's regime)
}

TEST(Designer, ColdDutySelectsAmmonia) {
  tp::TransportRequirement req;
  req.power = 15.0;
  req.t_vapor = 253.15;  // -20 C: water is frozen, ammonia shines
  const auto d = tp::design_heat_pipe(req);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->fluid, "ammonia");
}
