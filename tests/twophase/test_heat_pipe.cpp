// Heat-pipe operating limits and resistance.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "materials/fluids.hpp"
#include "twophase/heat_pipe.hpp"

namespace at = aeropack::twophase;
namespace am = aeropack::materials;

namespace {
at::HeatPipe water_pipe() {
  at::HeatPipeGeometry g;  // defaults: 6 mm OD copper/water
  return at::HeatPipe(am::water(), g, at::Wick::sintered_powder(), am::copper());
}
}  // namespace

TEST(Wick, EffectiveConductivityBetweenConstituents) {
  const auto w = at::Wick::sintered_powder();
  const double k = w.effective_conductivity(0.6, 390.0);
  EXPECT_GT(k, 0.6);
  EXPECT_LT(k, 390.0);
  EXPECT_THROW(w.effective_conductivity(0.0, 390.0), std::invalid_argument);
}

TEST(Geometry, DerivedAreasConsistent) {
  at::HeatPipeGeometry g;
  EXPECT_NEAR(g.vapor_radius(), 0.5 * 6e-3 - 0.5e-3 - 0.75e-3, 1e-12);
  EXPECT_NEAR(g.vapor_area(), std::numbers::pi * std::pow(g.vapor_radius(), 2.0), 1e-15);
  EXPECT_GT(g.wick_area(), 0.0);
  EXPECT_NEAR(g.effective_length(),
              g.adiabatic_length + 0.5 * (g.evaporator_length + g.condenser_length), 1e-15);
}

TEST(Geometry, ValidationCatchesNonsense) {
  at::HeatPipeGeometry g;
  g.wick_thickness = 3e-3;  // wall+wick exceed radius
  EXPECT_THROW(g.validate(), std::invalid_argument);
  at::HeatPipeGeometry g2;
  g2.evaporator_length = 0.0;
  EXPECT_THROW(g2.validate(), std::invalid_argument);
}

TEST(HeatPipe, LimitsPositiveAndGoverningIsMin) {
  const auto hp = water_pipe();
  const auto lim = hp.limits(330.0, 0.0);
  EXPECT_GT(lim.capillary, 0.0);
  EXPECT_GT(lim.sonic, 0.0);
  EXPECT_GT(lim.entrainment, 0.0);
  EXPECT_GT(lim.boiling, 0.0);
  EXPECT_GT(lim.viscous, 0.0);
  const double min_all = std::min({lim.capillary, lim.sonic, lim.entrainment, lim.boiling,
                                   lim.viscous});
  EXPECT_DOUBLE_EQ(lim.governing, min_all);
  EXPECT_FALSE(lim.governing_name.empty());
}

TEST(HeatPipe, CapillaryLimitTypicalMagnitude) {
  // A 6 mm copper/water sintered pipe carries tens of watts horizontally.
  const auto hp = water_pipe();
  const double q = hp.limits(330.0, 0.0).capillary;
  EXPECT_GT(q, 10.0);
  EXPECT_LT(q, 500.0);
}

TEST(HeatPipe, AdverseTiltReducesCapillary) {
  const auto hp = water_pipe();
  const double flat = hp.limits(330.0, 0.0).capillary;
  const double tilted = hp.limits(330.0, 0.3).capillary;  // ~17 deg adverse
  const double aided = hp.limits(330.0, -0.3).capillary;
  EXPECT_LT(tilted, flat);
  EXPECT_GT(aided, flat);
}

TEST(HeatPipe, GravityCanShutDownCoarseWick) {
  // Grooved aluminum/ammonia pipe against full gravity: capillary collapses.
  at::HeatPipeGeometry g;
  g.outer_diameter = 10e-3;
  g.wall_thickness = 1e-3;
  g.wick_thickness = 1e-3;
  g.adiabatic_length = 0.5;
  const at::HeatPipe hp(am::ammonia(), g, at::Wick::axial_grooves(), am::aluminum_6061());
  const double vertical = hp.limits(293.15, std::numbers::pi / 2.0).capillary;
  EXPECT_DOUBLE_EQ(vertical, 0.0);
}

TEST(HeatPipe, SonicLimitGrowsWithTemperature) {
  const auto hp = water_pipe();
  EXPECT_GT(hp.limits(360.0).sonic, hp.limits(300.0).sonic);
}

TEST(HeatPipe, ViscousLimitCollapsesAtLowTemperature) {
  // At low vapor pressure the viscous limit collapses much faster than the
  // sonic limit — the classic cold-start bottleneck of water pipes.
  const auto hp = water_pipe();
  const auto cold = hp.limits(295.0);
  const auto hot = hp.limits(360.0);
  EXPECT_LT(cold.viscous / cold.sonic, 0.1 * (hot.viscous / hot.sonic));
  EXPECT_LT(cold.viscous, 0.01 * hot.viscous);
}

TEST(HeatPipe, ResistanceSmallAndLengthScaled) {
  const auto hp = water_pipe();
  const double r = hp.thermal_resistance(330.0);
  EXPECT_GT(r, 0.005);
  EXPECT_LT(r, 2.0);
  // Longer condenser lowers the condenser-side resistance.
  at::HeatPipeGeometry g2;
  g2.condenser_length = 0.2;
  const at::HeatPipe hp2(am::water(), g2, at::Wick::sintered_powder(), am::copper());
  EXPECT_LT(hp2.thermal_resistance(330.0), r);
}

TEST(HeatPipe, FinerWickPumpsHarderButFlowsWorse) {
  // Smaller pores raise capillary pressure but cut permeability: with the
  // same geometry the sintered wick beats grooves against gravity, while
  // grooves win horizontally (low flow resistance).
  at::HeatPipeGeometry g;
  const at::HeatPipe sintered(am::water(), g, at::Wick::sintered_powder(), am::copper());
  const at::HeatPipe grooved(am::water(), g, at::Wick::axial_grooves(), am::copper());
  const double tilt = 0.35;  // rad, ~0.07 m head
  EXPECT_GT(grooved.limits(330.0, 0.0).capillary, sintered.limits(330.0, 0.0).capillary);
  const double s_frac = sintered.limits(330.0, tilt).capillary /
                        sintered.limits(330.0, 0.0).capillary;
  const double g_frac = grooved.limits(330.0, tilt).capillary /
                        std::max(grooved.limits(330.0, 0.0).capillary, 1e-9);
  EXPECT_GT(s_frac, g_frac);  // sintered is the tilt-tolerant choice
}

// Property: capillary limit versus temperature exhibits the classical
// bell-ish shape and stays positive over the useful band.
class CapillaryVsTemperature : public ::testing::TestWithParam<double> {};

TEST_P(CapillaryVsTemperature, PositiveOverUsefulBand) {
  const auto hp = water_pipe();
  EXPECT_GT(hp.limits(GetParam()).capillary, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Temps, CapillaryVsTemperature,
                         ::testing::Values(300.0, 320.0, 340.0, 360.0, 390.0));
