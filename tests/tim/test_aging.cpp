// TIM degradation (pump-out / dry-out) models.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tim/aging.hpp"

namespace ap = aeropack::tim;

TEST(TimAging, FreshJointHasUnityFactor) {
  EXPECT_DOUBLE_EQ(ap::aging_factor(ap::AgingModel::grease(), 0.0, 40.0, 0.0, 353.15), 1.0);
}

TEST(TimAging, FactorGrowsWithCyclesLogarithmically) {
  const auto m = ap::AgingModel::grease();
  const double f100 = ap::aging_factor(m, 100.0, 40.0, 0.0, 353.15);
  const double f10000 = ap::aging_factor(m, 10000.0, 40.0, 0.0, 353.15);
  EXPECT_GT(f100, 1.0);
  // Two extra decades -> twice the pump-out increment.
  EXPECT_NEAR(f10000 - 1.0, 2.0 * (f100 - 1.0), 1e-9);
}

TEST(TimAging, SwingScalesQuadratically) {
  const auto m = ap::AgingModel::grease();
  const double f40 = ap::aging_factor(m, 1000.0, 40.0, 0.0, 353.15) - 1.0;
  const double f80 = ap::aging_factor(m, 1000.0, 80.0, 0.0, 353.15) - 1.0;
  EXPECT_NEAR(f80 / f40, 4.0, 1e-9);
}

TEST(TimAging, DryOutArrhenius) {
  const auto m = ap::AgingModel::grease();
  const double cool = ap::aging_factor(m, 0.0, 0.0, 10000.0, 333.15);
  const double hot = ap::aging_factor(m, 0.0, 0.0, 10000.0, 373.15);
  EXPECT_GT(hot, cool);
}

TEST(TimAging, AdhesivesBarelyAge) {
  const double grease =
      ap::aging_factor(ap::AgingModel::grease(), 5000.0, 60.0, 20000.0, 363.15);
  const double adhesive =
      ap::aging_factor(ap::AgingModel::cured_adhesive(), 5000.0, 60.0, 20000.0, 363.15);
  EXPECT_GT(grease, 1.3);
  EXPECT_LT(adhesive, 1.15);
}

TEST(TimAging, AgedMaterialResistanceGrows) {
  const auto fresh = ap::conventional_grease();
  const auto old =
      ap::aged(fresh, ap::AgingModel::grease(), 5000.0, 60.0, 20000.0, 363.15);
  EXPECT_GT(old.specific_resistance(0.3e6), 1.2 * fresh.specific_resistance(0.3e6));
  EXPECT_DOUBLE_EQ(old.conductivity, fresh.conductivity);  // bulk unchanged
}

TEST(TimAging, ServiceLifeOrdering) {
  // Grease joints need maintenance long before cured NANOPACK adhesives.
  const double grease_life = ap::service_hours_to_budget(
      ap::conventional_grease(), ap::AgingModel::grease(), 1.5, 50.0, 60.0, 363.15);
  const double adhesive_life = ap::service_hours_to_budget(
      ap::nanopack_mono_epoxy_silver_flake(), ap::AgingModel::cured_adhesive(), 1.5, 50.0,
      60.0, 363.15);
  EXPECT_LT(grease_life, 1e5);
  EXPECT_GT(adhesive_life, 2.0 * grease_life);
}

TEST(TimAging, InvalidInputsThrow) {
  EXPECT_THROW(ap::aging_factor(ap::AgingModel::grease(), -1.0, 40.0, 0.0, 353.15),
               std::invalid_argument);
  EXPECT_THROW(ap::service_hours_to_budget(ap::conventional_grease(),
                                           ap::AgingModel::grease(), 0.9, 50.0, 60.0, 363.15),
               std::invalid_argument);
}
