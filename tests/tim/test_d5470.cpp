// Virtual ASTM D5470 tester: measurement physics + achieved accuracy.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tim/d5470.hpp"

namespace ap = aeropack::tim;

TEST(D5470, NoiselessMeasurementIsExact) {
  ap::D5470Config cfg;
  cfg.thermocouple_noise = 0.0;
  cfg.thickness_noise = 0.0;
  cfg.parasitic_loss_fraction = 0.0;
  const auto m = ap::measure_once(ap::conventional_grease(), 0.3e6, cfg);
  EXPECT_NEAR(m.measured_resistance, m.true_resistance, 1e-12);
  EXPECT_DOUBLE_EQ(m.measured_blt, m.true_blt);
  EXPECT_NEAR(m.error_kmm2, 0.0, 1e-6);
}

TEST(D5470, NoisyMeasurementWithinSpec) {
  // The paper's tester: accuracy +/-1 K mm^2/W, thickness +/-2 um.
  const auto m = ap::measure_once(ap::conventional_grease(), 0.3e6, {});
  EXPECT_LT(std::fabs(m.error_kmm2), 3.0);  // 3-sigma-ish single shot
}

TEST(D5470, CharacterizationRecoversConductivity) {
  // Grease squeezed at several pressures gives several bond lines; the ASTM
  // line fit must recover bulk k and contact resistance.
  ap::D5470Config cfg;
  cfg.thermocouple_noise = 0.01;
  const auto c =
      ap::characterize(ap::conventional_grease(), {0.05e6, 0.15e6, 0.4e6, 1.0e6}, 8, cfg);
  EXPECT_NEAR(c.conductivity, 3.0, 0.5);
  EXPECT_NEAR(c.contact_resistance, 2.0e-6, 1.0e-6);
}

TEST(D5470, AccuracyMatchesPaperFigures) {
  // With the instrument's nominal noise, achieved accuracies reproduce the
  // published +/-1 K mm^2/W and +/-2 um.
  const auto c = ap::characterize(ap::conventional_grease(),
                                  {0.05e6, 0.1e6, 0.2e6, 0.5e6, 1.0e6}, 10, {});
  EXPECT_LT(c.resistance_accuracy_kmm2, 1.0);
  EXPECT_LT(c.thickness_accuracy_um, 3.0);
  EXPECT_GT(c.thickness_accuracy_um, 1.0);  // ~2 um rms by construction
}

TEST(D5470, DeterministicForSameSeed) {
  const auto a = ap::measure_once(ap::conventional_grease(), 0.3e6, {});
  const auto b = ap::measure_once(ap::conventional_grease(), 0.3e6, {});
  EXPECT_DOUBLE_EQ(a.measured_resistance, b.measured_resistance);
}

TEST(D5470, InputValidation) {
  EXPECT_THROW(ap::characterize(ap::conventional_grease(), {0.3e6}, 5, {}),
               std::invalid_argument);
  EXPECT_THROW(ap::characterize(ap::conventional_grease(), {0.1e6, 0.3e6}, 0, {}),
               std::invalid_argument);
  ap::D5470Config cfg;
  cfg.thermocouples_per_bar = 1;
  EXPECT_THROW(ap::measure_once(ap::conventional_grease(), 0.3e6, cfg),
               std::invalid_argument);
}

TEST(D5470, ParasiticLossBiasesMeasurement) {
  ap::D5470Config clean;
  clean.thermocouple_noise = 0.0;
  clean.thickness_noise = 0.0;
  clean.parasitic_loss_fraction = 0.0;
  ap::D5470Config lossy = clean;
  lossy.parasitic_loss_fraction = 0.05;
  const auto a = ap::measure_once(ap::conventional_gap_pad(), 0.3e6, clean);
  const auto b = ap::measure_once(ap::conventional_gap_pad(), 0.3e6, lossy);
  EXPECT_NEAR(a.error_kmm2, 0.0, 1e-6);
  // Flux metering in the lower bar removes first-order loss error.
  EXPECT_LT(std::fabs(b.error_kmm2), 0.1 * b.true_resistance * 1e6);
}
