// TIM material models and the NANOPACK catalogue.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tim/tim_material.hpp"

namespace ap = aeropack::tim;

TEST(TimMaterial, BltFallsWithPressure) {
  const auto g = ap::conventional_grease();
  EXPECT_GT(g.blt(0.0), g.blt(0.3e6));
  EXPECT_GT(g.blt(0.3e6), g.blt(3e6));
  EXPECT_GE(g.blt(100e6), g.blt_min);
  EXPECT_THROW(g.blt(-1.0), std::invalid_argument);
}

TEST(TimMaterial, AdhesiveBltIsPressureIndependent) {
  const auto a = ap::nanopack_mono_epoxy_silver_flake();
  EXPECT_DOUBLE_EQ(a.blt(0.0), a.blt(1e6));
}

TEST(TimMaterial, ResistanceDecomposition) {
  const auto g = ap::conventional_grease();
  const double p = 0.3e6;
  EXPECT_NEAR(g.specific_resistance(p),
              g.blt(p) / g.conductivity + 2.0 * g.contact_resistance, 1e-15);
  EXPECT_NEAR(g.specific_resistance_kmm2(p), g.specific_resistance(p) * 1e6, 1e-12);
  EXPECT_NEAR(g.joint_resistance(1e-3, p), g.specific_resistance(p) / 1e-3, 1e-12);
  EXPECT_THROW(g.joint_resistance(0.0, p), std::invalid_argument);
}

TEST(TimMaterial, NanopackAdhesivesMatchPaperConductivities) {
  EXPECT_DOUBLE_EQ(ap::nanopack_mono_epoxy_silver_flake().conductivity, 6.0);
  EXPECT_DOUBLE_EQ(ap::nanopack_multi_epoxy_silver_sphere().conductivity, 9.5);
  EXPECT_DOUBLE_EQ(ap::nanopack_cnt_metal_polymer().conductivity, 20.0);
  // Shear strength "measured to 14 MPa" for the mono-epoxy product.
  EXPECT_DOUBLE_EQ(ap::nanopack_mono_epoxy_silver_flake().shear_strength, 14e6);
}

TEST(TimMaterial, NanopackAdhesivesElectricallyConductive) {
  // "These adhesives are electrically conductive (10^-4 .. 10^-5 Ohm cm)".
  const double r1 = ap::nanopack_mono_epoxy_silver_flake().electrical_resistivity;
  const double r2 = ap::nanopack_multi_epoxy_silver_sphere().electrical_resistivity;
  EXPECT_NEAR(r1, 1e-6, 1e-7);   // 10^-4 Ohm cm in Ohm m
  EXPECT_NEAR(r2, 1e-7, 1e-8);   // 10^-5 Ohm cm
  EXPECT_DOUBLE_EQ(ap::conventional_grease().electrical_resistivity, 0.0);
}

TEST(TimMaterial, CntCompositeMeetsProjectTargets) {
  // Project objective: k up to 20 W/m K, R < 5 K mm^2/W at BLT < 20 um.
  const auto cnt = ap::nanopack_cnt_metal_polymer();
  const double p = 0.5e6;
  EXPECT_TRUE(ap::meets_nanopack_targets(cnt, p));
  EXPECT_LT(cnt.specific_resistance_kmm2(p), 5.0);
  EXPECT_LT(cnt.blt(p), 20e-6);
}

TEST(TimMaterial, ConventionalMaterialsMissTargets) {
  for (const auto& m : {ap::conventional_grease(), ap::conventional_gap_pad(),
                        ap::conventional_adhesive(), ap::dry_contact()}) {
    EXPECT_FALSE(ap::meets_nanopack_targets(m, 0.5e6)) << m.name;
  }
}

TEST(TimMaterial, RankingNanopackBeatsConventional) {
  const double p = 0.3e6;
  const double best = ap::nanopack_gold_nanosponge().specific_resistance_kmm2(p);
  const double grease = ap::conventional_grease().specific_resistance_kmm2(p);
  const double pad = ap::conventional_gap_pad().specific_resistance_kmm2(p);
  const double dry = ap::dry_contact().specific_resistance_kmm2(p);
  EXPECT_LT(best, grease);
  EXPECT_LT(grease, pad);
  EXPECT_LT(pad, dry);
}

TEST(HncSurface, ReducesBltByTwentyPercent) {
  // "micromachined hierarchical nested channels (HNC) ... reduce the final
  // bond line thickness by > 20%".
  const auto base = ap::conventional_grease();
  const auto hnc = ap::with_hnc_surface(base);
  const double p = 0.3e6;
  EXPECT_NEAR(hnc.blt(p), 0.78 * base.blt(p), 1e-9);
  EXPECT_LT(hnc.specific_resistance(p), base.specific_resistance(p));
  EXPECT_THROW(ap::with_hnc_surface(base, 1.5), std::invalid_argument);
}

TEST(TimCatalogue, AllMaterialsSane) {
  for (const auto& m : ap::all_tim_materials()) {
    EXPECT_GT(m.conductivity, 0.0) << m.name;
    EXPECT_GT(m.blt_min, 0.0) << m.name;
    EXPECT_GE(m.blt_zero_pressure, m.blt_min) << m.name;
    EXPECT_GE(m.contact_resistance, 0.0) << m.name;
  }
  EXPECT_EQ(ap::all_tim_materials().size(), 8u);
}
