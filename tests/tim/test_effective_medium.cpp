// Effective-medium conductivity models for filled TIMs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tim/effective_medium.hpp"

namespace ap = aeropack::tim;

TEST(Maxwell, ZeroFillerReturnsMatrix) {
  EXPECT_DOUBLE_EQ(ap::k_maxwell(0.2, 400.0, 0.0), 0.2);
}

TEST(Maxwell, DiluteLimitSlope) {
  // For k_f >> k_m: k/k_m ~ 1 + 3 phi at small phi.
  const double km = 0.2;
  const double k = ap::k_maxwell(km, 400.0, 0.01);
  EXPECT_NEAR(k / km, 1.0 + 3.0 * 0.01, 5e-3);
}

TEST(Bruggeman, ReducesToConstituentsAtLimits) {
  EXPECT_NEAR(ap::k_bruggeman(0.2, 400.0, 0.0), 0.2, 1e-9);
  EXPECT_NEAR(ap::k_bruggeman(0.2, 400.0, 1.0), 400.0, 1e-6);
}

TEST(Bruggeman, PercolatesAboveOneThird) {
  // Symmetric Bruggeman has a percolation threshold at phi = 1/3 for high
  // contrast: conductivity takes off there, unlike Maxwell.
  const double km = 0.2, kf = 400.0;
  const double below = ap::k_bruggeman(km, kf, 0.30);
  const double above = ap::k_bruggeman(km, kf, 0.40);
  EXPECT_GT(above, 20.0 * below);
  EXPECT_GT(above / kf, 0.05);
}

TEST(LewisNielsen, MatchesMaxwellAtLowFill) {
  const double km = 0.2, kf = 400.0;
  EXPECT_NEAR(ap::k_lewis_nielsen(km, kf, 0.05), ap::k_maxwell(km, kf, 0.05),
              0.1 * ap::k_maxwell(km, kf, 0.05));
}

TEST(LewisNielsen, DivergesNearMaxPacking) {
  const double km = 0.2, kf = 400.0;
  const double k50 = ap::k_lewis_nielsen(km, kf, 0.50);
  const double k62 = ap::k_lewis_nielsen(km, kf, 0.62);
  EXPECT_GT(k62, 3.0 * k50);
  EXPECT_THROW(ap::k_lewis_nielsen(km, kf, 0.64), std::invalid_argument);
}

TEST(LewisNielsen, FlakesBeatSpheresAtSameLoading) {
  // Higher shape factor (flakes/rods) conducts better at equal phi — why
  // NANOPACK used silver *flakes*.
  const double km = 0.2, kf = 400.0, phi = 0.3;
  const double spheres = ap::k_lewis_nielsen(km, kf, phi, 1.5, 0.637);
  const double flakes = ap::k_lewis_nielsen(km, kf, phi, 5.0, 0.52);
  EXPECT_GT(flakes, spheres);
}

TEST(LewisNielsen, NanopackSixWattTargetReachable) {
  // The paper's 6 W/m K silver-flake epoxy implies a realistic loading.
  const double phi = ap::filler_fraction_for(6.0, 0.2, 420.0, 5.0, 0.52);
  EXPECT_GT(phi, 0.15);
  EXPECT_LT(phi, 0.50);
  EXPECT_NEAR(ap::k_lewis_nielsen(0.2, 420.0, phi, 5.0, 0.52), 6.0, 1e-6);
}

TEST(FillerFractionFor, UnreachableTargetThrows) {
  // Weak filler cannot make the matrix 100x better.
  EXPECT_THROW(ap::filler_fraction_for(20.0, 0.2, 1.0), std::runtime_error);
  EXPECT_THROW(ap::filler_fraction_for(0.1, 0.2, 400.0), std::invalid_argument);
}

TEST(CntArray, LinearInFractionAndEfficiency) {
  // 3000 W/m K tubes, 10% areal fraction, 7% contact efficiency ~ 20 W/m K
  // (the paper's metal-polymer CNT composite figure).
  EXPECT_NEAR(ap::k_cnt_array(0.10, 3000.0, 0.0667), 20.0, 0.1);
  EXPECT_THROW(ap::k_cnt_array(1.5, 3000.0, 0.1), std::invalid_argument);
}

// Property: all three models are monotone in phi and bounded by constituents.
class EmtMonotone : public ::testing::TestWithParam<double> {};

TEST_P(EmtMonotone, BoundedAndIncreasing) {
  const double km = 0.25, kf = 390.0;
  const double phi = GetParam();
  for (auto model : {ap::k_maxwell, ap::k_bruggeman}) {
    const double k = model(km, kf, phi);
    const double k_more = model(km, kf, phi + 0.02);
    EXPECT_GE(k, km);
    EXPECT_LE(k, kf);
    EXPECT_GT(k_more, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, EmtMonotone,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.6));
