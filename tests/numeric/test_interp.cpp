// Interpolation tables: linear, log-log (PSD curves), cubic spline.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/interp.hpp"

namespace an = aeropack::numeric;

TEST(LinearTable, InterpolatesAndClamps) {
  an::LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t(-5.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(t(9.0), 40.0);   // clamp high
}

TEST(LinearTable, ExtrapolateUsesEndSlopes) {
  an::LinearTable t({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(t.extrapolate(2.0), 4.0);
  EXPECT_DOUBLE_EQ(t.extrapolate(-1.0), -2.0);
}

TEST(LinearTable, RejectsBadInput) {
  EXPECT_THROW(an::LinearTable({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(an::LinearTable({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(an::LinearTable({2.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(an::LinearTable({0.0, 1.0}, {0.0, 1.0, 2.0}), std::invalid_argument);
}

TEST(LinearTable, TrapezoidalIntegral) {
  an::LinearTable t({0.0, 2.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(t.integral(), 4.0);
}

TEST(LogLogTable, PowerLawIsExact) {
  // y = x^2 sampled at two points: log-log interpolation is exact between.
  an::LogLogTable t({1.0, 100.0}, {1.0, 10000.0});
  EXPECT_NEAR(t(10.0), 100.0, 1e-9);
  EXPECT_NEAR(t(3.0), 9.0, 1e-9);
}

TEST(LogLogTable, IntegralOfPowerLaw) {
  // Integral of x^2 from 1 to 10 = 333.
  an::LogLogTable t({1.0, 10.0}, {1.0, 100.0});
  EXPECT_NEAR(t.integral(1.0, 10.0), 333.0, 0.5);
}

TEST(LogLogTable, IntegralOfOneOverX) {
  // y = 1/x: integral over [1, e] = 1.
  an::LogLogTable t({1.0, 3.0}, {1.0, 1.0 / 3.0});
  EXPECT_NEAR(t.integral(1.0, std::exp(1.0)), 1.0, 1e-3);
}

TEST(LogLogTable, RejectsNonPositive) {
  EXPECT_THROW(an::LogLogTable({0.0, 1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(an::LogLogTable({1.0, 2.0}, {1.0, -1.0}), std::invalid_argument);
}

TEST(CubicSpline, ReproducesLinearDataExactly) {
  an::CubicSpline s({0.0, 1.0, 2.0, 3.0}, {1.0, 3.0, 5.0, 7.0});
  EXPECT_NEAR(s(0.5), 2.0, 1e-12);
  EXPECT_NEAR(s(2.5), 6.0, 1e-12);
  EXPECT_NEAR(s.derivative(1.5), 2.0, 1e-10);
}

TEST(CubicSpline, InterpolatesSmoothCurve) {
  an::Vector x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(0.1 * i);
    y.push_back(std::sin(x.back()));
  }
  an::CubicSpline s(x, y);
  EXPECT_NEAR(s(0.95), std::sin(0.95), 1e-5);
  EXPECT_NEAR(s.derivative(1.0), std::cos(1.0), 1e-3);
}

TEST(CubicSpline, ClampsOutsideRange) {
  an::CubicSpline s({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(s(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s(5.0), 0.0);
}
