// Concurrent FV solves on isolated ExecutionContexts (TSan-gated under the
// numeric label): two FvModel::solve_steady runs driven from two distinct
// std::threads, each on its own context, must be data-race free and
// bit-identical to the serial runs of the same models.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exec/context.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "thermal/fv.hpp"

namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;
using aeropack::ExecutionConfig;
using aeropack::ExecutionContext;

namespace {

at::FvModel slab(double power_w) {
  at::FvModel m(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 4));
  m.set_material(am::aluminum_6061());
  m.add_power({0, 16, 0, 4, 0, 4}, power_w);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(320.0));
  return m;
}

void expect_bit_identical(const an::Vector& got, const an::Vector& want,
                          const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << label << ", cell " << i;
}

}  // namespace

TEST(ConcurrentContexts, TwoSteadySolvesMatchSerialBitForBit) {
  const at::FvModel model_a = slab(5.0);
  const at::FvModel model_b = slab(11.0);

  // Serial references on fresh contexts with the same per-context config.
  ExecutionConfig cfg;
  cfg.threads = 2;
  an::Vector ref_a, ref_b;
  {
    ExecutionContext ctx(cfg);
    ref_a = model_a.solve_steady(ctx).temperatures;
  }
  {
    ExecutionContext ctx(cfg);
    ref_b = model_b.solve_steady(ctx).temperatures;
  }

  // A few rounds so TSan gets real interleavings, not one lucky schedule.
  for (int round = 0; round < 4; ++round) {
    an::Vector got_a, got_b;
    std::thread ta([&] {
      ExecutionContext ctx(cfg);
      got_a = model_a.solve_steady(ctx).temperatures;
    });
    std::thread tb([&] {
      ExecutionContext ctx(cfg);
      got_b = model_b.solve_steady(ctx).temperatures;
    });
    ta.join();
    tb.join();
    expect_bit_identical(got_a, ref_a, "model A");
    expect_bit_identical(got_b, ref_b, "model B");
  }
}

TEST(ConcurrentContexts, ConcurrentTransientMatchesSerial) {
  const at::FvModel model = slab(7.0);
  ExecutionConfig cfg;
  cfg.threads = 2;
  an::Vector ref;
  {
    ExecutionContext ctx(cfg);
    ref = model.solve_transient(ctx, 5.0, 1.0, 300.0).temperatures.back();
  }
  an::Vector got_a, got_b;
  std::thread ta([&] {
    ExecutionContext ctx(cfg);
    got_a = model.solve_transient(ctx, 5.0, 1.0, 300.0).temperatures.back();
  });
  std::thread tb([&] {
    ExecutionContext ctx(cfg);
    got_b = model.solve_transient(ctx, 5.0, 1.0, 300.0).temperatures.back();
  });
  ta.join();
  tb.join();
  expect_bit_identical(got_a, ref, "thread A");
  expect_bit_identical(got_b, ref, "thread B");
}

TEST(ConcurrentContexts, ConcurrentKernelsOnDistinctPoolsAgreeWithSerial) {
  an::Vector x(20000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.25 + 0.5 * static_cast<double>(i % 97);
  ExecutionConfig cfg;
  cfg.threads = 3;
  double ref = 0.0;
  {
    ExecutionContext ctx(cfg);
    const ExecutionContext::Use use(ctx);
    ref = an::parallel_norm2(x);
  }
  double got_a = 0.0, got_b = 0.0;
  std::thread ta([&] {
    ExecutionContext ctx(cfg);
    const ExecutionContext::Use use(ctx);
    for (int r = 0; r < 50; ++r) got_a = an::parallel_norm2(x);
  });
  std::thread tb([&] {
    ExecutionContext ctx(cfg);
    const ExecutionContext::Use use(ctx);
    for (int r = 0; r < 50; ++r) got_b = an::parallel_norm2(x);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, ref);
  EXPECT_EQ(got_b, ref);
}
