// Granularity-aware dispatch + fused CG kernels: the grain serial fallback
// must be invisible in results (bit-identical either side of the fan-out
// threshold), the fused single-pass kernels must reproduce the exact bits of
// the unfused kernel sequence at every thread count, and the spin-then-park
// pool must survive park/wake churn. Runs under the numeric TSan gate.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "numeric/grain.hpp"
#include "numeric/parallel.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;
namespace grain = an::grain;

namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

an::Vector random_vector(std::size_t n, unsigned seed) {
  an::Rng rng(seed);
  an::Vector v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

const std::size_t kThreadSweep[] = {1, 2, 8};

}  // namespace

TEST(Grain, PlanThreadsSerializesSmallWork) {
  EXPECT_EQ(grain::plan_threads(grain::Work::elements(8, grain::Cost::kStream), 8), 1u);
  EXPECT_EQ(grain::plan_threads(
                grain::Work{grain::kMinWorkToFanOut - 1.0}, 8),
            1u);
  // A single-thread pool never fans out regardless of work.
  EXPECT_EQ(grain::plan_threads(grain::Work{1e12}, 1), 1u);
}

TEST(Grain, PlanThreadsCapsAtPoolAndHardware) {
  const std::size_t hw = grain::hardware_parallelism();
  ASSERT_GE(hw, 1u);
  const auto planned = grain::plan_threads(grain::Work{1e12}, 64);
  EXPECT_LE(planned, hw);
  EXPECT_LE(planned, 64u);
  // Each extra thread needs kMinWorkPerThread: just past the fan-out
  // threshold only 1 + units/kMinWorkPerThread threads are justified.
  const auto narrow = grain::plan_threads(grain::Work{grain::kMinWorkToFanOut}, 64);
  EXPECT_LE(narrow,
            1 + static_cast<std::size_t>(grain::kMinWorkToFanOut / grain::kMinWorkPerThread));
}

TEST(Grain, ScopedForceFanOutOverridesTheGate) {
  EXPECT_FALSE(grain::fan_out_forced());
  {
    grain::ScopedForceFanOut outer;
    EXPECT_TRUE(grain::fan_out_forced());
    EXPECT_EQ(grain::plan_threads(grain::Work{1.0}, 8), 8u);
    {
      grain::ScopedForceFanOut inner;  // nests
      EXPECT_TRUE(grain::fan_out_forced());
    }
    EXPECT_TRUE(grain::fan_out_forced());
  }
  EXPECT_FALSE(grain::fan_out_forced());
}

TEST(Grain, SerialThresholdBoundaryIsBitInvisible) {
  // Sizes straddling the fan-out boundary for each cost class: the dispatch
  // decision flips between n-1 and n+1, the bits must not.
  ThreadCountGuard guard;
  for (const grain::Cost c : {grain::Cost::kDot, grain::Cost::kStream}) {
    const std::size_t boundary = grain::fan_out_elements(c);
    for (const std::size_t n : {boundary - 1, boundary, boundary + 1}) {
      const an::Vector x = random_vector(n, 11u + static_cast<unsigned>(n));
      const an::Vector y = random_vector(n, 23u + static_cast<unsigned>(n));
      an::set_thread_count(1);
      const double serial_dot = an::parallel_dot(x, y);
      const double serial_norm = an::parallel_norm2(x);
      an::Vector serial_axpy = y;
      an::parallel_axpy(0.37, x, serial_axpy);
      for (const std::size_t t : kThreadSweep) {
        an::set_thread_count(t);
        EXPECT_EQ(an::parallel_dot(x, y), serial_dot) << "n=" << n << " t=" << t;
        EXPECT_EQ(an::parallel_norm2(x), serial_norm) << "n=" << n << " t=" << t;
        an::Vector z = y;
        an::parallel_axpy(0.37, x, z);
        EXPECT_EQ(z, serial_axpy) << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(Grain, ForcedFanOutMatchesSerialBits) {
  // The same reduction with the gate forced open (real pool chunks) and
  // naturally closed (serial fallback) — the fixed-chunk summation order
  // makes them identical, which is the whole determinism contract.
  ThreadCountGuard guard;
  an::set_thread_count(8);
  const std::size_t n = 4096;  // well below the fan-out threshold
  const an::Vector x = random_vector(n, 5);
  const an::Vector y = random_vector(n, 7);
  const double gated = an::parallel_dot(x, y);
  double forced = 0.0;
  {
    grain::ScopedForceFanOut force;
    forced = an::parallel_dot(x, y);
  }
  EXPECT_EQ(gated, forced);
}

TEST(FusedCg, UpdateMatchesUnfusedSequenceBitwise) {
  // cg_fused_update must reproduce, bit for bit, the four-kernel sequence it
  // replaced: x += alpha p; r += (-alpha) ap; z = inv_d ∘ r; rr = <r,r>;
  // rz = <r,z> — at every thread count, forced through the real pool.
  ThreadCountGuard guard;
  const std::size_t n = 50000;
  const double alpha = 0.8235;
  const an::Vector p = random_vector(n, 1);
  const an::Vector ap = random_vector(n, 2);
  an::Vector inv_d = random_vector(n, 3);
  for (double& d : inv_d) d = 1.0 + d * d;  // positive diagonal

  // Unfused reference at 1 thread.
  an::set_thread_count(1);
  an::Vector x_ref = random_vector(n, 4);
  an::Vector r_ref = random_vector(n, 5);
  an::parallel_axpy(alpha, p, x_ref);
  an::parallel_axpy(-alpha, ap, r_ref);
  an::Vector z_ref(n);
  for (std::size_t i = 0; i < n; ++i) z_ref[i] = inv_d[i] * r_ref[i];
  const double rr_ref = an::parallel_dot(r_ref, r_ref);
  const double rz_ref = an::parallel_dot(r_ref, z_ref);

  grain::ScopedForceFanOut force;
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    an::Vector x = random_vector(n, 4);
    an::Vector r = random_vector(n, 5);
    an::Vector z(n);
    const an::CgFused f =
        an::cg_fused_update(an::ThreadPool::instance(), alpha, p, ap, inv_d, x, r, z);
    EXPECT_EQ(x, x_ref) << "t=" << t;
    EXPECT_EQ(r, r_ref) << "t=" << t;
    EXPECT_EQ(z, z_ref) << "t=" << t;
    EXPECT_EQ(f.rr, rr_ref) << "t=" << t;
    EXPECT_EQ(f.rz, rz_ref) << "t=" << t;
  }
}

TEST(FusedCg, HadamardDotMatchesUnfusedBitwise) {
  ThreadCountGuard guard;
  const std::size_t n = 50000;
  an::Vector d = random_vector(n, 8);
  for (double& v : d) v = 1.0 + v * v;
  const an::Vector r = random_vector(n, 9);

  an::set_thread_count(1);
  an::Vector z_ref(n);
  for (std::size_t i = 0; i < n; ++i) z_ref[i] = d[i] * r[i];
  const double rz_ref = an::parallel_dot(r, z_ref);

  grain::ScopedForceFanOut force;
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    an::Vector z(n);
    const double rz = an::fused_hadamard_dot(an::ThreadPool::instance(), d, r, z);
    EXPECT_EQ(z, z_ref) << "t=" << t;
    EXPECT_EQ(rz, rz_ref) << "t=" << t;
  }
}

TEST(SpinPark, WorkersParkBetweenJobsAndWakeCorrectly) {
  // Long idle gaps force every worker past the spin window into the parked
  // state; each subsequent job must still be claimed exactly once. This is
  // the lost-wakeup regression test for the spin-then-park protocol.
  an::ThreadPool pool(4);
  std::atomic<std::size_t> visited{0};
  const std::function<void(std::size_t)> count = [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  };
  for (int round = 0; round < 6; ++round) {
    pool.run(16, count);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // all park
    pool.run(16, count);
  }
  EXPECT_EQ(visited.load(), 6u * 2u * 16u);
}

TEST(SpinPark, RapidFireJobsDoNotLoseTasks) {
  // Back-to-back publishes keep workers inside the spin window: the job
  // sequence bump alone must hand them the next claim window.
  an::ThreadPool pool(4);
  std::atomic<std::size_t> visited{0};
  const std::function<void(std::size_t)> count = [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  };
  constexpr std::size_t kJobs = 2000;
  for (std::size_t j = 0; j < kJobs; ++j) pool.run(4, count);
  EXPECT_EQ(visited.load(), kJobs * 4u);
}

TEST(SpinPark, ExceptionsPropagateAfterParking) {
  an::ThreadPool pool(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // park first
  const std::function<void(std::size_t)> boom = [](std::size_t task) {
    if (task == 1) throw std::runtime_error("parked boom");
  };
  EXPECT_THROW(pool.run(2, boom), std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<std::size_t> visited{0};
  const std::function<void(std::size_t)> count = [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  };
  pool.run(8, count);
  EXPECT_EQ(visited.load(), 8u);
}
