// Jacobi symmetric and generalized eigensolvers.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/eigen.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

TEST(EigenSymmetric, DiagonalMatrixReturnsSortedDiagonal) {
  const auto res = an::eigen_symmetric(an::Matrix::diagonal({3.0, 1.0, 2.0}));
  EXPECT_NEAR(res.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenSymmetric, TwoByTwoClosedForm) {
  an::Matrix a{{2, 1}, {1, 2}};
  const auto res = an::eigen_symmetric(a);
  EXPECT_NEAR(res.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSymmetric, RejectsAsymmetric) {
  an::Matrix a{{1, 2}, {0, 1}};
  EXPECT_THROW(an::eigen_symmetric(a), std::invalid_argument);
}

TEST(EigenSymmetric, EigenvectorsOrthonormalAndSatisfyDefinition) {
  an::Rng rng(7);
  const std::size_t n = 8;
  an::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto res = an::eigen_symmetric(a);
  // V^T V = I
  const an::Matrix vtv = res.eigenvectors.transposed() * res.eigenvectors;
  EXPECT_LT((vtv - an::Matrix::identity(n)).norm(), 1e-8);
  // A v = lambda v for each pair
  for (std::size_t j = 0; j < n; ++j) {
    an::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = res.eigenvectors(i, j);
    const an::Vector av = a * v;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], res.eigenvalues[j] * v[i], 1e-8);
  }
}

TEST(EigenGeneralized, SdofPairRecoversOmegaSquared) {
  // k = 100 N/m, m = 4 kg -> lambda = 25, f = 5/(2 pi) Hz.
  an::Matrix k{{100.0}};
  an::Matrix m{{4.0}};
  const auto res = an::eigen_generalized(k, m);
  EXPECT_NEAR(res.eigenvalues[0], 25.0, 1e-10);
  const an::Vector f = an::natural_frequencies_hz(res);
  EXPECT_NEAR(f[0], 5.0 / (2.0 * std::numbers::pi), 1e-10);
}

TEST(EigenGeneralized, TwoMassChainMatchesClosedForm) {
  // Two equal masses m, springs k-k (fixed-free chain):
  // lambda = (k/m) (3 -+ sqrt(5))/2
  const double k = 200.0, m = 2.0;
  an::Matrix km{{2.0 * k, -k}, {-k, k}};
  an::Matrix mm{{m, 0.0}, {0.0, m}};
  const auto res = an::eigen_generalized(km, mm);
  const double l1 = k / m * (3.0 - std::sqrt(5.0)) / 2.0;
  const double l2 = k / m * (3.0 + std::sqrt(5.0)) / 2.0;
  EXPECT_NEAR(res.eigenvalues[0], l1, 1e-8 * l2);
  EXPECT_NEAR(res.eigenvalues[1], l2, 1e-8 * l2);
}

TEST(EigenGeneralized, EigenvectorsMassOrthonormal) {
  an::Rng rng(21);
  const std::size_t n = 6;
  an::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  an::Matrix k = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) k(i, i) += 1.0;
  an::Matrix m = an::Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0 + rng.uniform();
  const auto res = an::eigen_generalized(k, m);
  const an::Matrix xtmx = res.eigenvectors.transposed() * m * res.eigenvectors;
  EXPECT_LT((xtmx - an::Matrix::identity(n)).norm(), 1e-7);
  // All eigenvalues positive for SPD K.
  for (double lam : res.eigenvalues) EXPECT_GT(lam, 0.0);
}

TEST(EigenGeneralized, ShapeMismatchThrows) {
  EXPECT_THROW(an::eigen_generalized(an::Matrix(2, 2), an::Matrix(3, 3)),
               std::invalid_argument);
}

TEST(NaturalFrequencies, ClampsNegativeNoise) {
  an::EigenResult r;
  r.eigenvalues = {-1e-9, 4.0 * std::numbers::pi * std::numbers::pi};
  r.eigenvectors = an::Matrix::identity(2);
  const an::Vector f = an::natural_frequencies_hz(r);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_NEAR(f[1], 1.0, 1e-12);
}
