// Jacobi symmetric, generalized, and sparse shift-invert eigensolvers.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/eigen.hpp"
#include "numeric/sparse.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

namespace {

/// Fixed-fixed spring-mass chain: K tridiagonal, M diagonal with a gentle
/// gradient — a banded SPD pencil with a known-good dense reference.
void chain_pencil(std::size_t n, an::CsrMatrix& k, an::CsrMatrix& m) {
  an::SparseBuilder kb(n, n), mb(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    kb.add(i, i, 2000.0);
    if (i + 1 < n) {
      kb.add(i, i + 1, -1000.0);
      kb.add(i + 1, i, -1000.0);
    }
    mb.add(i, i, 1.0 + 0.01 * static_cast<double>(i));
  }
  k = kb.build();
  m = mb.build();
}

}  // namespace

TEST(EigenSymmetric, DiagonalMatrixReturnsSortedDiagonal) {
  const auto res = an::eigen_symmetric(an::Matrix::diagonal({3.0, 1.0, 2.0}));
  EXPECT_NEAR(res.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenSymmetric, TwoByTwoClosedForm) {
  an::Matrix a{{2, 1}, {1, 2}};
  const auto res = an::eigen_symmetric(a);
  EXPECT_NEAR(res.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSymmetric, RejectsAsymmetric) {
  an::Matrix a{{1, 2}, {0, 1}};
  EXPECT_THROW(an::eigen_symmetric(a), std::invalid_argument);
}

TEST(EigenSymmetric, EigenvectorsOrthonormalAndSatisfyDefinition) {
  an::Rng rng(7);
  const std::size_t n = 8;
  an::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto res = an::eigen_symmetric(a);
  // V^T V = I
  const an::Matrix vtv = res.eigenvectors.transposed() * res.eigenvectors;
  EXPECT_LT((vtv - an::Matrix::identity(n)).norm(), 1e-8);
  // A v = lambda v for each pair
  for (std::size_t j = 0; j < n; ++j) {
    an::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = res.eigenvectors(i, j);
    const an::Vector av = a * v;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], res.eigenvalues[j] * v[i], 1e-8);
  }
}

TEST(EigenGeneralized, SdofPairRecoversOmegaSquared) {
  // k = 100 N/m, m = 4 kg -> lambda = 25, f = 5/(2 pi) Hz.
  an::Matrix k{{100.0}};
  an::Matrix m{{4.0}};
  const auto res = an::eigen_generalized(k, m);
  EXPECT_NEAR(res.eigenvalues[0], 25.0, 1e-10);
  const an::Vector f = an::natural_frequencies_hz(res);
  EXPECT_NEAR(f[0], 5.0 / (2.0 * std::numbers::pi), 1e-10);
}

TEST(EigenGeneralized, TwoMassChainMatchesClosedForm) {
  // Two equal masses m, springs k-k (fixed-free chain):
  // lambda = (k/m) (3 -+ sqrt(5))/2
  const double k = 200.0, m = 2.0;
  an::Matrix km{{2.0 * k, -k}, {-k, k}};
  an::Matrix mm{{m, 0.0}, {0.0, m}};
  const auto res = an::eigen_generalized(km, mm);
  const double l1 = k / m * (3.0 - std::sqrt(5.0)) / 2.0;
  const double l2 = k / m * (3.0 + std::sqrt(5.0)) / 2.0;
  EXPECT_NEAR(res.eigenvalues[0], l1, 1e-8 * l2);
  EXPECT_NEAR(res.eigenvalues[1], l2, 1e-8 * l2);
}

TEST(EigenGeneralized, EigenvectorsMassOrthonormal) {
  an::Rng rng(21);
  const std::size_t n = 6;
  an::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  an::Matrix k = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) k(i, i) += 1.0;
  an::Matrix m = an::Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0 + rng.uniform();
  const auto res = an::eigen_generalized(k, m);
  const an::Matrix xtmx = res.eigenvectors.transposed() * m * res.eigenvectors;
  EXPECT_LT((xtmx - an::Matrix::identity(n)).norm(), 1e-7);
  // All eigenvalues positive for SPD K.
  for (double lam : res.eigenvalues) EXPECT_GT(lam, 0.0);
}

TEST(EigenGeneralized, ShapeMismatchThrows) {
  EXPECT_THROW(an::eigen_generalized(an::Matrix(2, 2), an::Matrix(3, 3)),
               std::invalid_argument);
}

TEST(EigenGeneralized, IndefiniteMassThrowsDomainError) {
  an::Matrix k{{2.0, 0.0}, {0.0, 2.0}};
  an::Matrix m{{1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW(an::eigen_generalized(k, m), std::domain_error);
}

TEST(NaturalFrequencies, ClampsNegativeNoise) {
  an::EigenResult r;
  r.eigenvalues = {-1e-9, 4.0 * std::numbers::pi * std::numbers::pi};
  r.eigenvectors = an::Matrix::identity(2);
  const an::Vector f = an::natural_frequencies_hz(r);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_NEAR(f[1], 1.0, 1e-12);
}

TEST(NaturalFrequencies, GenuinelyNegativeEigenvalueThrows) {
  // -1 is far outside rigid-body noise relative to the spectrum: report it.
  EXPECT_THROW(an::natural_frequencies_hz(an::Vector{-1.0, 40.0}), std::domain_error);
  // But noise-level negatives still clamp via the vector overload.
  const an::Vector f = an::natural_frequencies_hz(an::Vector{-1e-12, 40.0});
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

TEST(EigenGeneralizedSparse, MatchesDenseOnBandedPencil) {
  const std::size_t n = 60, nm = 6;
  an::CsrMatrix k, m;
  chain_pencil(n, k, m);
  const auto dense = an::eigen_generalized(k.to_dense(), m.to_dense());
  const auto sparse = an::eigen_generalized_sparse(k, m, nm);
  ASSERT_EQ(sparse.eigenvalues.size(), nm);
  for (std::size_t j = 0; j < nm; ++j)
    EXPECT_NEAR(sparse.eigenvalues[j], dense.eigenvalues[j],
                1e-9 * dense.eigenvalues[j]);
  // Shapes match the dense ones up to sign: |phi_s . M phi_d| = 1.
  for (std::size_t j = 0; j < nm; ++j) {
    an::Vector pd(n), ps(n);
    for (std::size_t i = 0; i < n; ++i) {
      pd[i] = dense.eigenvectors(i, j);
      ps[i] = sparse.eigenvectors(i, j);
    }
    const an::Vector mpd = m.multiply(pd);
    double overlap = 0.0;
    for (std::size_t i = 0; i < n; ++i) overlap += ps[i] * mpd[i];
    EXPECT_NEAR(std::fabs(overlap), 1.0, 1e-7);
  }
}

TEST(EigenGeneralizedSparse, ResidualAndMassOrthonormality) {
  const std::size_t n = 80, nm = 5;
  an::CsrMatrix k, m;
  chain_pencil(n, k, m);
  const auto res = an::eigen_generalized_sparse(k, m, nm);
  for (std::size_t j = 0; j < nm; ++j) {
    an::Vector phi(n);
    for (std::size_t i = 0; i < n; ++i) phi[i] = res.eigenvectors(i, j);
    const an::Vector kp = k.multiply(phi);
    const an::Vector mp = m.multiply(phi);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(kp[i], res.eigenvalues[j] * mp[i], 1e-6 * res.eigenvalues[j]);
    for (std::size_t jj = 0; jj <= j; ++jj) {
      an::Vector other(n);
      for (std::size_t i = 0; i < n; ++i) other[i] = res.eigenvectors(i, jj);
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += other[i] * mp[i];
      EXPECT_NEAR(dot, jj == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenGeneralizedSparse, CgFallbackMatchesSkylinePath) {
  const std::size_t n = 40, nm = 4;
  an::CsrMatrix k, m;
  chain_pencil(n, k, m);
  const auto direct = an::eigen_generalized_sparse(k, m, nm);
  an::SparseEigenOptions opts;
  opts.max_envelope = 1;  // force the conjugate-gradient inner solver
  const auto iterative = an::eigen_generalized_sparse(k, m, nm, opts);
  for (std::size_t j = 0; j < nm; ++j)
    EXPECT_NEAR(iterative.eigenvalues[j], direct.eigenvalues[j],
                1e-8 * direct.eigenvalues[j]);
}

TEST(EigenGeneralizedSparse, InvalidArgumentsThrow) {
  an::CsrMatrix k, m;
  chain_pencil(8, k, m);
  EXPECT_THROW(an::eigen_generalized_sparse(k, m, 0), std::invalid_argument);
  EXPECT_THROW(an::eigen_generalized_sparse(k, m, 9), std::invalid_argument);
  an::CsrMatrix k2, m2;
  chain_pencil(5, k2, m2);
  EXPECT_THROW(an::eigen_generalized_sparse(k, m2, 2), std::invalid_argument);
}
