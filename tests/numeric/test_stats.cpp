// Statistics helpers and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

TEST(Stats, MeanStdRms) {
  an::Vector v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(an::mean(v), 2.5);
  EXPECT_NEAR(an::stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(an::rms(v), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(an::mean({}), std::invalid_argument);
  EXPECT_THROW(an::rms({}), std::invalid_argument);
}

TEST(Stats, StddevOfSingleValueIsZero) { EXPECT_DOUBLE_EQ(an::stddev({5.0}), 0.0); }

TEST(Rng, DeterministicForSameSeed) {
  an::Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  an::Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff = any_diff || (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  an::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  an::Rng rng(7);
  an::Vector samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal());
  EXPECT_NEAR(an::mean(samples), 0.0, 0.03);
  EXPECT_NEAR(an::stddev(samples), 1.0, 0.03);
}

TEST(Rng, ScaledNormal) {
  an::Rng rng(11);
  an::Vector samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(an::mean(samples), 10.0, 0.1);
  EXPECT_NEAR(an::stddev(samples), 2.0, 0.1);
}
