// Direct solvers: LU, Cholesky, tridiagonal, complex.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/dense.hpp"
#include "numeric/solve_dense.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;
using an::operator+;
using an::operator-;

TEST(LuFactorization, SolvesKnownSystem) {
  an::Matrix a{{2, 1}, {1, 3}};
  const an::Vector x = an::solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuFactorization, DeterminantMatchesClosedForm) {
  an::Matrix a{{2, 1}, {1, 3}};
  EXPECT_NEAR(an::LuFactorization(a).determinant(), 5.0, 1e-12);
}

TEST(LuFactorization, PivotsOnZeroDiagonal) {
  an::Matrix a{{0, 1}, {1, 0}};
  const an::Vector x = an::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuFactorization, SingularDetection) {
  an::Matrix a{{1, 2}, {2, 4}};
  an::LuFactorization lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(an::Vector{1.0, 1.0}), std::domain_error);
}

TEST(LuFactorization, InverseTimesOriginalIsIdentity) {
  an::Matrix a{{4, 2, 1}, {2, 5, 3}, {1, 3, 6}};
  const an::Matrix inv = an::inverse(a);
  const an::Matrix prod = a * inv;
  EXPECT_LT((prod - an::Matrix::identity(3)).norm(), 1e-10);
}

// Property: random SPD systems solve to small residual with both LU and
// Cholesky, and the two agree.
class SpdSolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveProperty, ResidualSmallAndFactorizationsAgree) {
  const int n = GetParam();
  an::Rng rng(1234u + static_cast<unsigned>(n));
  an::Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  // SPD: A = B^T B + n I
  an::Matrix a = b.transposed() * b;
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += static_cast<double>(n);
  an::Vector rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) v = rng.normal();

  const an::Vector x_lu = an::solve(a, rhs);
  const an::Vector x_ch = an::CholeskyFactorization(a).solve(rhs);
  const an::Vector residual = a * x_lu - rhs;
  EXPECT_LT(an::norm2(residual), 1e-9 * (1.0 + an::norm2(rhs)));
  EXPECT_LT(an::norm2(x_lu - x_ch), 1e-8 * (1.0 + an::norm2(x_lu)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveProperty, ::testing::Values(2, 5, 10, 20, 40));

TEST(Cholesky, RejectsIndefiniteMatrix) {
  an::Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(an::CholeskyFactorization{a}, std::domain_error);
}

TEST(Cholesky, LowerTriangularSolvesRoundTrip) {
  an::Matrix a{{4, 2}, {2, 5}};
  an::CholeskyFactorization chol(a);
  const an::Matrix l = chol.lower();
  // L L^T == A
  EXPECT_LT((l * l.transposed() - a).norm(), 1e-12);
  const an::Vector y = chol.solve_lower({2.0, 3.0});
  // L y = b
  const an::Vector check = l * y;
  EXPECT_NEAR(check[0], 2.0, 1e-12);
  EXPECT_NEAR(check[1], 3.0, 1e-12);
}

TEST(Tridiagonal, MatchesDenseSolve) {
  // -1 2 -1 Poisson system.
  const std::size_t n = 8;
  an::Vector lower(n - 1, -1.0), diag(n, 2.0), upper(n - 1, -1.0), rhs(n, 1.0);
  const an::Vector x = an::solve_tridiagonal(lower, diag, upper, rhs);
  an::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -1.0;
  }
  const an::Vector xd = an::solve(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xd[i], 1e-10);
}

TEST(Tridiagonal, SizeMismatchThrows) {
  EXPECT_THROW(an::solve_tridiagonal({1.0}, {1.0, 1.0, 1.0}, {1.0}, {1.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(ComplexSolve, MatchesAnalyticComplexInverse) {
  // (1 + i) x = 2  => x = 1 - i
  an::Matrix ar{{1.0}};
  an::Matrix ai{{1.0}};
  an::Vector xr, xi;
  an::solve_complex(ar, ai, {2.0}, {0.0}, xr, xi);
  EXPECT_NEAR(xr[0], 1.0, 1e-12);
  EXPECT_NEAR(xi[0], -1.0, 1e-12);
}
