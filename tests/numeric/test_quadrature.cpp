// Gauss-Legendre and Simpson quadrature.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/quadrature.hpp"

namespace an = aeropack::numeric;

TEST(GaussLegendre, WeightsSumToTwo) {
  for (std::size_t n = 1; n <= 8; ++n) {
    double sum = 0.0;
    for (const auto& p : an::gauss_legendre(n)) sum += p.weight;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "n=" << n;
  }
}

TEST(GaussLegendre, OutOfRangeThrows) {
  EXPECT_THROW(an::gauss_legendre(0), std::invalid_argument);
  EXPECT_THROW(an::gauss_legendre(9), std::invalid_argument);
}

// Property: an n-point rule integrates polynomials up to degree 2n-1 exactly.
class GaussExactness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussExactness, IntegratesMaxDegreePolynomialExactly) {
  const std::size_t n = GetParam();
  const std::size_t degree = 2 * n - 1;
  const auto f = [degree](double x) { return std::pow(x, static_cast<double>(degree)); };
  // Integral of x^d over [0, 1] = 1/(d+1).
  const double got = an::integrate_gauss(f, 0.0, 1.0, n);
  EXPECT_NEAR(got, 1.0 / static_cast<double>(degree + 1), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussExactness, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(IntegrateGauss, SineOverHalfPeriod) {
  EXPECT_NEAR(an::integrate_gauss([](double x) { return std::sin(x); }, 0.0,
                                  3.14159265358979323846, 8),
              2.0, 1e-10);
}

TEST(IntegrateSimpson, MatchesAnalytic) {
  EXPECT_NEAR(an::integrate_simpson([](double x) { return x * x; }, 0.0, 3.0, 4), 9.0, 1e-12);
  EXPECT_NEAR(an::integrate_simpson([](double x) { return std::exp(x); }, 0.0, 1.0, 128),
              std::exp(1.0) - 1.0, 1e-9);
}

TEST(IntegrateSimpson, OddPanelsThrow) {
  EXPECT_THROW(an::integrate_simpson([](double x) { return x; }, 0.0, 1.0, 3),
               std::invalid_argument);
}
