// Edge-coverage sweeps for the numeric layer: stream output, degenerate
// tables, tiny systems — the paths the happy-path tests skip.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "numeric/dense.hpp"
#include "numeric/eigen.hpp"
#include "numeric/interp.hpp"
#include "numeric/ode.hpp"
#include "numeric/solve_dense.hpp"

namespace an = aeropack::numeric;

TEST(MatrixStream, PrintsRowMajor) {
  an::Matrix m{{1, 2}, {3, 4}};
  std::ostringstream os;
  os << m;
  EXPECT_EQ(os.str(), "1 2\n3 4\n");
}

TEST(MatrixEdge, OneByOne) {
  an::Matrix m{{4.0}};
  EXPECT_TRUE(m.square());
  EXPECT_DOUBLE_EQ(an::inverse(m)(0, 0), 0.25);
  const auto eig = an::eigen_symmetric(m);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 4.0);
}

TEST(MatrixEdge, SymmetrizeRejectsRectangular) {
  an::Matrix m(2, 3);
  EXPECT_THROW(m.symmetrize(), std::logic_error);
  EXPECT_THROW(m.asymmetry(), std::logic_error);
}

TEST(LinearTableEdge, TwoPointTable) {
  an::LinearTable t({1.0, 3.0}, {10.0, 30.0});
  EXPECT_DOUBLE_EQ(t(2.0), 20.0);
  EXPECT_DOUBLE_EQ(t.integral(), 40.0);
  EXPECT_DOUBLE_EQ(t.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(t.x_max(), 3.0);
  EXPECT_EQ(t.size(), 2u);
}

TEST(CubicSplineEdge, TwoPointsReducesToLinear) {
  an::CubicSpline s({0.0, 2.0}, {0.0, 4.0});
  EXPECT_NEAR(s(1.0), 2.0, 1e-12);
  EXPECT_NEAR(s.derivative(1.0), 2.0, 1e-12);
}

TEST(LogLogTableEdge, QueryAtKnots) {
  an::LogLogTable t({1.0, 10.0, 100.0}, {1.0, 4.0, 2.0});
  EXPECT_NEAR(t(1.0), 1.0, 1e-12);
  EXPECT_NEAR(t(10.0), 4.0, 1e-9);
  EXPECT_NEAR(t(100.0), 2.0, 1e-9);
  EXPECT_THROW(t(-1.0), std::invalid_argument);
  EXPECT_THROW(t.integral(5.0, 2.0), std::invalid_argument);
}

TEST(EigenEdge, RepeatedEigenvaluesHandled) {
  // 2x identity: both eigenvalues 1, eigenvectors still orthonormal.
  const auto res = an::eigen_symmetric(an::Matrix::identity(4));
  for (double lam : res.eigenvalues) EXPECT_NEAR(lam, 1.0, 1e-12);
  const an::Matrix vtv = res.eigenvectors.transposed() * res.eigenvectors;
  EXPECT_LT((vtv - an::Matrix::identity(4)).norm(), 1e-10);
}

TEST(OdeEdge, Rk45HitsEndpointExactly) {
  const auto f = [](double, const an::Vector& y) { return an::Vector{-y[0]}; };
  const auto tr = an::rk45(f, {1.0}, 0.0, 0.37);
  EXPECT_NEAR(tr.times.back(), 0.37, 1e-12);
  EXPECT_NEAR(tr.states.back()[0], std::exp(-0.37), 1e-6);
}

TEST(SolveEdge, LargeWellConditionedSystem) {
  // 100x100 diagonally dominant system solves to machine-level residual.
  const std::size_t n = 100;
  an::Matrix a(n, n);
  an::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 4.0;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -1.0;
    b[i] = static_cast<double>(i % 7);
  }
  const an::Vector x = an::solve(a, b);
  const an::Vector r = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

TEST(CholeskyEdge, LowerTriangleAccess) {
  an::Matrix a{{9.0, 3.0}, {3.0, 5.0}};
  const an::CholeskyFactorization chol(a);
  EXPECT_DOUBLE_EQ(chol.lower()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(chol.lower()(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(chol.lower()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(chol.lower()(1, 1), 2.0);
}
