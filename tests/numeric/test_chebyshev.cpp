// Chebyshev-accelerated Jacobi preconditioning: spectral bound estimation
// must cover the Jacobi-preconditioned spectrum, the accelerated CG must cut
// iterations without moving the answer, and the whole path must stay
// bit-identical across thread counts (it is built from the same
// deterministic kernels as everything else).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "numeric/cheby.hpp"
#include "numeric/grain.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"

namespace an = aeropack::numeric;

namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

/// 3-D 7-point Poisson matrix on an n^3 grid (SPD), via the builder.
an::CsrMatrix poisson3d(std::size_t n) {
  const std::size_t total = n * n * n;
  an::SparseBuilder b(total, total);
  const auto idx = [n](std::size_t i, std::size_t j, std::size_t k) {
    return i + n * (j + n * k);
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = idx(i, j, k);
        b.add(c, c, 6.0 + 1.0);
        if (i > 0) b.add(c, idx(i - 1, j, k), -1.0);
        if (i + 1 < n) b.add(c, idx(i + 1, j, k), -1.0);
        if (j > 0) b.add(c, idx(i, j - 1, k), -1.0);
        if (j + 1 < n) b.add(c, idx(i, j + 1, k), -1.0);
        if (k > 0) b.add(c, idx(i, j, k - 1), -1.0);
        if (k + 1 < n) b.add(c, idx(i, j, k + 1), -1.0);
      }
  return b.build();
}

an::Vector inverse_diagonal(const an::CsrMatrix& a) {
  an::Vector inv_d(a.rows(), 1.0);
  const auto& row_ptr = a.row_ptr();
  const auto& cols = a.col_idx();
  const auto& vals = a.values();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (cols[k] == i && vals[k] != 0.0) inv_d[i] = 1.0 / vals[k];
  return inv_d;
}

}  // namespace

TEST(ChebyshevSpectrum, BoundsCoverTheJacobiPoissonSpectrum) {
  const an::CsrMatrix a = poisson3d(8);
  const an::Vector inv_d = inverse_diagonal(a);
  an::ThreadPool pool(1);
  const an::SpectralBounds bounds = an::estimate_jacobi_spectrum(pool, a, inv_d);
  ASSERT_TRUE(bounds.usable());
  // D^-1 A for this matrix has spectrum inside (0, 13/7]; the Gershgorin
  // upper bound is exactly 13/7 and must never be undershot — eigenvalues
  // above lambda_max are amplified by the polynomial.
  EXPECT_NEAR(bounds.lambda_max, 13.0 / 7.0, 1e-12);
  EXPECT_GT(bounds.lambda_min, 0.0);
  EXPECT_LT(bounds.lambda_min, bounds.lambda_max);
}

TEST(ChebyshevSpectrum, DeterministicAcrossCalls) {
  const an::CsrMatrix a = poisson3d(6);
  const an::Vector inv_d = inverse_diagonal(a);
  an::ThreadPool pool(1);
  const an::SpectralBounds b1 = an::estimate_jacobi_spectrum(pool, a, inv_d);
  const an::SpectralBounds b2 = an::estimate_jacobi_spectrum(pool, a, inv_d);
  EXPECT_EQ(b1.lambda_min, b2.lambda_min);
  EXPECT_EQ(b1.lambda_max, b2.lambda_max);
}

TEST(ChebyshevJacobi, RejectsDegenerateSetups) {
  const an::CsrMatrix a = poisson3d(4);
  const an::Vector inv_d = inverse_diagonal(a);
  an::SpectralBounds bad;  // lambda_min = lambda_max = 0: unusable
  EXPECT_THROW(an::ChebyshevJacobi(a, inv_d, bad, 3), std::invalid_argument);
  an::SpectralBounds ok{0.1, 1.9};
  EXPECT_THROW(an::ChebyshevJacobi(a, inv_d, ok, 0), std::invalid_argument);
}

TEST(ChebyshevJacobi, DegreeOneIsScaledJacobi) {
  // With degree 1 the polynomial is z = (1/theta) D^-1 r — a scaled Jacobi
  // application; verify the closed form element-wise.
  const an::CsrMatrix a = poisson3d(4);
  const an::Vector inv_d = inverse_diagonal(a);
  an::ThreadPool pool(1);
  const an::SpectralBounds bounds = an::estimate_jacobi_spectrum(pool, a, inv_d);
  ASSERT_TRUE(bounds.usable());
  an::ChebyshevJacobi cheby(a, inv_d, bounds, 1);
  const std::size_t n = a.rows();
  an::Vector r(n, 2.0), jac(n), z;
  for (std::size_t i = 0; i < n; ++i) jac[i] = inv_d[i] * r[i];
  cheby.apply(pool, r, jac, z);
  const double inv_theta = 2.0 / (bounds.lambda_max + bounds.lambda_min);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(z[i], inv_theta * jac[i]);
}

TEST(ChebyshevCg, CutsIterationsWithoutMovingTheAnswer) {
  ThreadCountGuard guard;
  an::set_thread_count(1);
  const an::CsrMatrix a = poisson3d(16);
  const an::Vector b(a.rows(), 1.0);
  an::IterativeOptions plain;
  plain.tolerance = 1e-10;
  const an::IterativeResult jacobi = an::conjugate_gradient(a, b, plain);
  ASSERT_TRUE(jacobi.converged);

  an::IterativeOptions accel = plain;
  accel.chebyshev_degree = 3;
  const an::IterativeResult cheby = an::conjugate_gradient(a, b, accel);
  ASSERT_TRUE(cheby.converged);

  // The acceptance bar is >= 30% fewer iterations on FV steady solves; the
  // same polynomial on the raw Poisson operator clears it with margin.
  EXPECT_LE(cheby.iterations, (jacobi.iterations * 7) / 10)
      << "cheby " << cheby.iterations << " vs jacobi " << jacobi.iterations;

  // Same linear system, same answer (both converged to 1e-10).
  double max_diff = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(cheby.x[i] - jacobi.x[i]));
  EXPECT_LT(max_diff, 1e-7);
}

TEST(ChebyshevCg, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const an::CsrMatrix a = poisson3d(12);
  const an::Vector b(a.rows(), 1.0);
  an::IterativeOptions opts;
  opts.tolerance = 1e-9;
  opts.chebyshev_degree = 4;

  an::set_thread_count(1);
  const an::IterativeResult ref = an::conjugate_gradient(a, b, opts);
  ASSERT_TRUE(ref.converged);

  // Force the pool path so the sweep exercises real cross-thread chunking.
  an::grain::ScopedForceFanOut force;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    an::set_thread_count(t);
    const an::IterativeResult run = an::conjugate_gradient(a, b, opts);
    ASSERT_TRUE(run.converged);
    EXPECT_EQ(run.iterations, ref.iterations) << "t=" << t;
    EXPECT_EQ(run.x, ref.x) << "t=" << t;
  }
}
