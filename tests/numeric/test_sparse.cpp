// Sparse CSR structure and iterative Krylov solvers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "numeric/sparse.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

namespace {
/// 1-D Poisson matrix (SPD tridiagonal) as CSR.
an::CsrMatrix poisson1d(std::size_t n) {
  an::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}
}  // namespace

TEST(SparseBuilder, AccumulatesDuplicates) {
  an::SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 0, -1.0);
  const an::CsrMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(SparseBuilder, OutOfRangeThrows) {
  an::SparseBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const an::CsrMatrix m = poisson1d(6);
  const an::Matrix d = m.to_dense();
  an::Vector x{1, 2, 3, 4, 5, 6};
  const an::Vector ys = m.multiply(x);
  const an::Vector yd = d * x;
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const an::CsrMatrix m = poisson1d(4);
  const an::Vector d = m.diagonal();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(CsrMatrix, SymmetryCheck) {
  EXPECT_DOUBLE_EQ(poisson1d(5).asymmetry(), 0.0);
  an::SparseBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(b.build().asymmetry(), 1.0);
}

TEST(ConjugateGradient, SolvesPoisson) {
  const std::size_t n = 50;
  const an::CsrMatrix a = poisson1d(n);
  an::Vector rhs(n, 1.0);
  const auto res = an::conjugate_gradient(a, rhs);
  ASSERT_TRUE(res.converged);
  const an::Vector check = a.multiply(res.x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(check[i], 1.0, 1e-7);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const auto res = an::conjugate_gradient(poisson1d(5), an::Vector(5, 0.0));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConjugateGradient, ShapeMismatchThrows) {
  EXPECT_THROW(an::conjugate_gradient(poisson1d(4), an::Vector(5, 1.0)), std::invalid_argument);
}

TEST(BiCgStab, SolvesNonsymmetricSystem) {
  an::SparseBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 5.0);
  b.add(1, 2, 1.0);
  b.add(2, 1, 1.0);
  b.add(2, 2, 3.0);
  const an::CsrMatrix a = b.build();
  an::Vector rhs{1.0, 2.0, 3.0};
  const auto res = an::bicgstab(a, rhs);
  ASSERT_TRUE(res.converged);
  const an::Vector check = a.multiply(res.x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(check[i], rhs[i], 1e-7);
}

// Property: CG converges on random SPD systems of growing size within n
// iterations (exact arithmetic guarantee, with slack for rounding).
class CgProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgProperty, ConvergesWithinDimensionBound) {
  const std::size_t n = GetParam();
  an::Rng rng(99u + n);
  an::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 4.0 + rng.uniform());
    if (i + 1 < n) {
      const double off = -rng.uniform();
      b.add(i, i + 1, off);
      b.add(i + 1, i, off);
    }
  }
  const an::CsrMatrix a = b.build();
  an::Vector rhs(n);
  for (double& v : rhs) v = rng.normal();
  const auto res = an::conjugate_gradient(a, rhs);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2 * n + 10);
  EXPECT_LT(res.residual, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgProperty, ::testing::Values(4u, 16u, 64u, 256u));
