// Parallel execution layer: ThreadPool semantics and bit-exact equivalence
// of the parallel kernels across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

namespace {

/// Restores the ambient thread count when a test exits (even on failure).
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

/// 3-D 7-point Poisson matrix on an n^3 grid (SPD), via the builder.
an::CsrMatrix poisson3d(std::size_t n) {
  const std::size_t total = n * n * n;
  an::SparseBuilder b(total, total);
  const auto idx = [n](std::size_t i, std::size_t j, std::size_t k) {
    return i + n * (j + n * k);
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = idx(i, j, k);
        b.add(c, c, 6.0 + 1.0);  // +1: keep it SPD with Neumann-like edges
        if (i > 0) b.add(c, idx(i - 1, j, k), -1.0);
        if (i + 1 < n) b.add(c, idx(i + 1, j, k), -1.0);
        if (j > 0) b.add(c, idx(i, j - 1, k), -1.0);
        if (j + 1 < n) b.add(c, idx(i, j + 1, k), -1.0);
        if (k > 0) b.add(c, idx(i, j, k - 1), -1.0);
        if (k + 1 < n) b.add(c, idx(i, j, k + 1), -1.0);
      }
  return b.build();
}

an::Vector random_vector(std::size_t n, unsigned seed) {
  an::Rng rng(seed);
  an::Vector v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

const std::size_t kThreadSweep[] = {1, 2, 8};

}  // namespace

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadCountGuard guard;
  an::set_thread_count(4);
  std::atomic<int> calls{0};
  an::ThreadPool::instance().run(0, [&](std::size_t) { ++calls; });
  an::parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  an::parallel_for(7, 3, [&](std::size_t, std::size_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RangeSmallerThanThreadCountVisitsEachIndexOnce) {
  ThreadCountGuard guard;
  an::set_thread_count(8);
  std::vector<std::atomic<int>> visits(3);
  an::parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, LargeRangePartitionCoversEverything) {
  ThreadCountGuard guard;
  an::set_thread_count(5);
  const std::size_t n = 1003;  // not divisible by 5: uneven chunks
  std::vector<std::atomic<int>> visits(n);
  an::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, AlternatingSmallAndLargeJobsVisitEachTaskOnce) {
  // Regression: a worker lingering in the previous job's claim loop used to
  // grab a stale counter value during the next job's setup. A small job
  // followed immediately by a much larger one (the per-CG-iteration
  // parallel_for + chunked-reduce pattern) could then run a task twice and
  // deadlock the completion wait. Hammer that hand-off.
  ThreadCountGuard guard;
  an::set_thread_count(8);
  auto& pool = an::ThreadPool::instance();
  for (int round = 0; round < 200; ++round) {
    std::vector<std::atomic<int>> small(4);
    pool.run(small.size(), [&](std::size_t t) { ++small[t]; });
    std::vector<std::atomic<int>> large(128);
    pool.run(large.size(), [&](std::size_t t) { ++large[t]; });
    for (const auto& v : small) ASSERT_EQ(v.load(), 1) << "round " << round;
    for (const auto& v : large) ASSERT_EQ(v.load(), 1) << "round " << round;
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadCountGuard guard;
  an::set_thread_count(4);
  EXPECT_THROW(an::parallel_for(0, 100,
                                [](std::size_t lo, std::size_t) {
                                  if (lo == 0) throw std::runtime_error("task failed");
                                }),
               std::runtime_error);
  // The pool must stay usable after a throwing job.
  std::atomic<int> sum{0};
  an::parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SerialFallbackPropagatesExceptionsDirectly) {
  ThreadCountGuard guard;
  an::set_thread_count(1);
  EXPECT_THROW(
      an::parallel_for(0, 4, [](std::size_t, std::size_t) { throw std::logic_error("serial"); }),
      std::logic_error);
}

TEST(ParallelKernels, DotAndNormBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const an::Vector a = random_vector(10000, 1u);
  const an::Vector b = random_vector(10000, 2u);
  an::set_thread_count(1);
  const double dot_ref = an::parallel_dot(a, b);
  const double norm_ref = an::parallel_norm2(a);
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    EXPECT_EQ(an::parallel_dot(a, b), dot_ref) << t << " threads";
    EXPECT_EQ(an::parallel_norm2(a), norm_ref) << t << " threads";
  }
}

TEST(ParallelKernels, AxpyMatchesSerialExactly) {
  ThreadCountGuard guard;
  const an::Vector x = random_vector(5000, 3u);
  an::Vector y_ref = random_vector(5000, 4u);
  an::Vector y1 = y_ref;
  an::set_thread_count(1);
  an::parallel_axpy(0.37, x, y_ref);
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    an::Vector y = y1;
    an::parallel_axpy(0.37, x, y);
    for (std::size_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], y_ref[i]) << t << " threads";
  }
}

TEST(ParallelKernels, SpmvEquivalentAcrossThreadCounts) {
  ThreadCountGuard guard;
  const an::CsrMatrix a = poisson3d(12);  // 1728 rows
  const an::Vector x = random_vector(a.cols(), 5u);
  an::set_thread_count(1);
  const an::Vector y_ref = a.multiply(x);
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const an::Vector y = a.multiply(x);
    ASSERT_EQ(y.size(), y_ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-12) << t << " threads, row " << i;
  }
}

TEST(ParallelKernels, CgEquivalentAcrossThreadCounts) {
  ThreadCountGuard guard;
  const an::CsrMatrix a = poisson3d(10);  // 1000 unknowns
  const an::Vector b = random_vector(a.rows(), 6u);
  an::set_thread_count(1);
  const auto ref = an::conjugate_gradient(a, b);
  ASSERT_TRUE(ref.converged);
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const auto res = an::conjugate_gradient(a, b);
    ASSERT_TRUE(res.converged) << t << " threads";
    EXPECT_EQ(res.iterations, ref.iterations) << t << " threads";
    for (std::size_t i = 0; i < res.x.size(); ++i)
      ASSERT_NEAR(res.x[i], ref.x[i], 1e-12) << t << " threads, entry " << i;
  }
}

TEST(ParallelKernels, WarmStartedCgMatchesColdSolution) {
  ThreadCountGuard guard;
  an::set_thread_count(2);
  const an::CsrMatrix a = poisson3d(8);
  const an::Vector b = random_vector(a.rows(), 7u);
  const auto cold = an::conjugate_gradient(a, b);
  ASSERT_TRUE(cold.converged);
  // Warm start from a perturbed copy of the solution: same answer, far
  // fewer iterations.
  an::Vector x0 = cold.x;
  for (double& v : x0) v += 1e-6;
  const auto warm = an::conjugate_gradient(a, b, {}, &x0);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations / 2);
  for (std::size_t i = 0; i < warm.x.size(); ++i) ASSERT_NEAR(warm.x[i], cold.x[i], 1e-8);
}

TEST(ParallelKernels, SetThreadCountZeroRestoresDefault) {
  ThreadCountGuard guard;
  an::set_thread_count(3);
  EXPECT_EQ(an::thread_count(), 3u);
  an::set_thread_count(0);
  EXPECT_GE(an::thread_count(), 1u);
}

TEST(ThreadPool, InstanceReferenceStaysValidAcrossSetThreadCount) {
  // Regression: set_thread_count() used to tear the default pool down and
  // build a new one, leaving every previously returned instance() reference
  // dangling. The pool now resizes in place: same address, new worker set,
  // old handles fully usable.
  ThreadCountGuard guard;
  an::set_thread_count(2);
  an::ThreadPool& before = an::ThreadPool::instance();
  EXPECT_EQ(before.threads(), 2u);

  an::set_thread_count(6);
  EXPECT_EQ(&an::ThreadPool::instance(), &before);
  EXPECT_EQ(before.threads(), 6u);

  // The held reference must be live after every resize direction.
  an::set_thread_count(1);
  EXPECT_EQ(&an::ThreadPool::instance(), &before);
  std::vector<std::atomic<int>> visits(100);
  before.run(0, [](std::size_t) {});
  an::set_thread_count(4);
  an::parallel_for(0, visits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, SetThreadCountZeroReReadsEnvironment) {
  // set_thread_count(0) restores the *default*, and the default re-reads
  // AEROPACK_THREADS at restore time (not the value cached at startup).
  ThreadCountGuard guard;
  const char* old_env = std::getenv("AEROPACK_THREADS");
  const std::string saved = old_env != nullptr ? old_env : "";

  setenv("AEROPACK_THREADS", "5", 1);
  an::set_thread_count(0);
  EXPECT_EQ(an::thread_count(), 5u);

  setenv("AEROPACK_THREADS", "2", 1);
  an::set_thread_count(0);
  EXPECT_EQ(an::thread_count(), 2u);

  // Unset (or unparsable) falls back to hardware concurrency, min 1.
  unsetenv("AEROPACK_THREADS");
  an::set_thread_count(0);
  EXPECT_GE(an::thread_count(), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_EQ(an::thread_count(), static_cast<std::size_t>(hw));

  if (old_env != nullptr)
    setenv("AEROPACK_THREADS", saved.c_str(), 1);
  else
    unsetenv("AEROPACK_THREADS");
}
