// Root finding and fixed-point iteration.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/rootfind.hpp"

namespace an = aeropack::numeric;

TEST(Brent, FindsSqrtTwo) {
  const double r = an::brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Brent, FindsTranscendentalRoot) {
  const double r = an::brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-9);
}

TEST(Brent, ExactEndpointRoots) {
  EXPECT_DOUBLE_EQ(an::brent([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(an::brent([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Brent, NonBracketingThrows) {
  EXPECT_THROW(an::brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, MatchesBrent) {
  const auto f = [](double x) { return std::exp(x) - 3.0; };
  const double rb = an::brent(f, 0.0, 2.0);
  const double rs = an::bisect(f, 0.0, 2.0, {.tolerance = 1e-12, .max_iterations = 200});
  EXPECT_NEAR(rb, rs, 1e-9);
  EXPECT_NEAR(rb, std::log(3.0), 1e-9);
}

TEST(FixedPoint, ConvergesToCosineFixedPoint) {
  const double r = an::fixed_point([](double x) { return std::cos(x); }, 1.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-7);
}

TEST(FixedPoint, RelaxationStabilizesDivergentMap) {
  // g(x) = 3.5 - x^2 near x ~ 1.37 has |g'| > 1: plain iteration diverges,
  // heavy under-relaxation converges.
  const double r = an::fixed_point([](double x) { return 3.5 - x * x; }, 1.0, 0.2,
                                   {.tolerance = 1e-10, .max_iterations = 2000});
  EXPECT_NEAR(r + r * r, 3.5, 1e-6);
}

TEST(FixedPoint, BadRelaxationThrows) {
  EXPECT_THROW(an::fixed_point([](double x) { return x; }, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(an::fixed_point([](double x) { return x; }, 0.0, 1.5), std::invalid_argument);
}

TEST(BrentAutoBracket, ExpandsUntilBracketFound) {
  const auto f = [](double x) { return x - 100.0; };
  const double r = an::brent_auto_bracket(f, 0.0, 1.0, 1e6);
  EXPECT_NEAR(r, 100.0, 1e-6);
}

TEST(BrentAutoBracket, GivesUpAtLimit) {
  const auto f = [](double) { return 1.0; };
  EXPECT_THROW(an::brent_auto_bracket(f, 0.0, 1.0, 100.0), std::runtime_error);
}
