// Least-squares polynomial fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numeric/polyfit.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

TEST(PolyFit, RecoversExactQuadratic) {
  an::Vector x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(0.5 * i);
    y.push_back(2.0 - 3.0 * x.back() + 0.5 * x.back() * x.back());
  }
  const auto fit = an::polyfit(x, y, 2);
  for (double probe : {0.3, 2.2, 4.9})
    EXPECT_NEAR(fit(probe), 2.0 - 3.0 * probe + 0.5 * probe * probe, 1e-9);
  EXPECT_NEAR(fit.derivative(2.0), -3.0 + 1.0 * 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_LT(fit.rms_residual, 1e-9);
}

TEST(PolyFit, LinearFitUncenteredFrame) {
  an::Vector x{1.0, 2.0, 3.0, 4.0};
  an::Vector y{5.0, 7.0, 9.0, 11.0};  // y = 2x + 3
  double slope = 0.0, intercept = 0.0;
  an::linear_fit(x, y, slope, intercept);
  EXPECT_NEAR(slope, 2.0, 1e-12);
  EXPECT_NEAR(intercept, 3.0, 1e-12);
}

TEST(PolyFit, NoisyDataRSquaredBelowOne) {
  an::Rng rng(5);
  an::Vector x, y;
  for (int i = 0; i < 60; ++i) {
    x.push_back(0.1 * i);
    y.push_back(1.0 + 2.0 * x.back() + rng.normal(0.0, 0.3));
  }
  const auto fit = an::polyfit(x, y, 1);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.95);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_NEAR(fit.rms_residual, 0.3, 0.1);
}

TEST(PolyFit, CenteringHandlesLargeOffsets) {
  // x around 1e6 would destroy an uncentered normal-equation fit.
  an::Vector x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(1e6 + i);
    y.push_back(4.0 * (x.back() - 1e6) - 7.0);
  }
  const auto fit = an::polyfit(x, y, 1);
  EXPECT_NEAR(fit(1e6 + 10.5), 4.0 * 10.5 - 7.0, 1e-6);
}

TEST(PolyFit, InvalidInputsThrow) {
  EXPECT_THROW(an::polyfit({1.0, 2.0}, {1.0}, 1), std::invalid_argument);
  EXPECT_THROW(an::polyfit({1.0, 2.0}, {1.0, 2.0}, 2), std::invalid_argument);
}
