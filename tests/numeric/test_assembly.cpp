// SparseAssembler scatter semantics, skyline Cholesky, and add_scaled.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numeric/assembly.hpp"
#include "numeric/solve_dense.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_cholesky.hpp"
#include "numeric/stats.hpp"

namespace an = aeropack::numeric;

namespace {

/// Banded SPD test matrix: 1-D stiffness chain with a heavier diagonal.
an::CsrMatrix chain_spd(std::size_t n, double diag_boost = 0.5) {
  an::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0 + diag_boost);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  return b.build();
}

}  // namespace

TEST(SparseAssembler, ScatterAccumulatesElementMatrix) {
  an::SparseAssembler asm3(3, 3);
  an::Matrix e{{1.0, 2.0}, {3.0, 4.0}};
  asm3.scatter({0, 2}, e);
  asm3.scatter({0, 2}, e);  // duplicate contributions accumulate
  const an::CsrMatrix a = asm3.finalize();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 8.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(SparseAssembler, DiscardedDofsAreDropped) {
  an::SparseAssembler asm2(2, 2);
  an::Matrix e{{1.0, 2.0}, {3.0, 4.0}};
  asm2.scatter({an::SparseAssembler::kDiscard, 1}, e);
  const an::CsrMatrix a = asm2.finalize();
  EXPECT_EQ(a.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(SparseAssembler, ScatterShapeMismatchThrows) {
  an::SparseAssembler a(3, 3);
  EXPECT_THROW(a.scatter({0, 1, 2}, an::Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(a.scatter({0, 1}, an::Matrix(2, 3)), std::invalid_argument);
}

TEST(SparseAssembler, MatchesDenseScatterLoop) {
  an::Rng rng(11);
  const std::size_t n = 12;
  an::SparseAssembler sp(n, n);
  an::Matrix dense(n, n);
  for (int e = 0; e < 20; ++e) {
    std::vector<std::size_t> dofs(3);
    for (auto& d : dofs) d = static_cast<std::size_t>(rng.uniform() * n) % n;
    if (dofs[0] == dofs[1] || dofs[1] == dofs[2] || dofs[0] == dofs[2]) continue;
    an::Matrix el(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) el(i, j) = rng.normal();
    sp.scatter(dofs, el);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) dense(dofs[i], dofs[j]) += el(i, j);
  }
  // Insertion-order duplicate accumulation makes this exact, not approximate.
  EXPECT_EQ((sp.finalize().to_dense() - dense).norm(), 0.0);
}

TEST(SkylineCholesky, SolvesBandedSpdSystem) {
  const std::size_t n = 50;
  const an::CsrMatrix a = chain_spd(n);
  an::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(0.3 * static_cast<double>(i));
  const an::SkylineCholesky chol(a);
  const an::Vector x = chol.solve(b);
  const an::Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-11);
  EXPECT_EQ(chol.size(), n);
  // Chain envelope: row 0 holds 1 entry, each later row 2.
  EXPECT_EQ(chol.envelope_size(), 2 * n - 1);
}

TEST(SkylineCholesky, MatchesDenseCholesky) {
  const std::size_t n = 30;
  const an::CsrMatrix a = chain_spd(n, 1.25);
  an::Vector b(n, 1.0);
  const an::Vector xs = an::SkylineCholesky(a).solve(b);
  const an::Vector xd = an::CholeskyFactorization(a.to_dense()).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
}

TEST(SkylineCholesky, ThrowsOnIndefiniteMatrix) {
  an::SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);
  EXPECT_THROW(an::SkylineCholesky{b.build()}, std::domain_error);
}

TEST(SkylineCholesky, EnvelopeBudgetThrowsLengthError) {
  const an::CsrMatrix a = chain_spd(16);
  EXPECT_THROW(an::SkylineCholesky(a, /*max_envelope=*/4), std::length_error);
}

TEST(AddScaled, MergesDisjointAndOverlappingStructure) {
  an::SparseBuilder ba(2, 3), bb(2, 3);
  ba.add(0, 0, 1.0);
  ba.add(0, 2, 2.0);
  ba.add(1, 1, 3.0);
  bb.add(0, 1, 4.0);
  bb.add(0, 2, 5.0);
  bb.add(1, 0, 6.0);
  const an::CsrMatrix c = an::add_scaled(ba.build(), -2.0, bb.build());
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), -8.0);
  EXPECT_DOUBLE_EQ(c.at(0, 2), 2.0 - 10.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), -12.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 3.0);
}

TEST(AddScaled, ShapeMismatchThrows) {
  an::SparseBuilder a(2, 2), b(3, 3);
  a.add(0, 0, 1.0);
  b.add(0, 0, 1.0);
  EXPECT_THROW(an::add_scaled(a.build(), 1.0, b.build()), std::invalid_argument);
}
