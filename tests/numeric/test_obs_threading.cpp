// Telemetry thread-safety under the numeric TSan gate: instrumented parallel
// kernels run with telemetry ENABLED while worker threads bump counters,
// record high-water marks and open nested spans. Any data race in the
// registry (instrument creation, the span tree, the enable gate) fails the
// sanitized run of `ctest -L numeric`.
#include <gtest/gtest.h>

#include <cstddef>

#include "numeric/grain.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "obs/registry.hpp"

namespace an = aeropack::numeric;
namespace obs = aeropack::obs;

namespace {

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

struct TelemetryGuard {
  TelemetryGuard() {
    obs::enable();
    obs::Registry::instance().reset();
  }
  ~TelemetryGuard() { obs::disable(); }
};

/// Small SPD pentadiagonal system, enough rows for every worker to get work.
an::CsrMatrix banded_spd(std::size_t n) {
  an::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 5.0);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
    if (i + 2 < n) {
      b.add(i, i + 2, -0.5);
      b.add(i + 2, i, -0.5);
    }
  }
  return b.build();
}

}  // namespace

TEST(ObsThreading, InstrumentedParallelCgWithTelemetryEnabled) {
  TelemetryGuard telemetry;
  ThreadCountGuard threads;
  an::set_thread_count(8);
  // Force full fan-out: this suite exists to race worker threads against the
  // registry, so grain must not serialize the kernels on small machines.
  an::grain::ScopedForceFanOut force;

  const an::CsrMatrix a = banded_spd(20000);
  const an::Vector b(a.rows(), 1.0);
  const an::IterativeResult res = an::conjugate_gradient(a, b, {});
  ASSERT_TRUE(res.converged);

  const auto counters = obs::Registry::instance().counters();
  EXPECT_EQ(counters.at("numeric.cg.solves"), 1u);
  EXPECT_EQ(counters.at("numeric.cg.iterations"), res.iterations);
  // One SpMV per CG iteration (the zero-start path skips the x0 residual).
  EXPECT_EQ(counters.at("numeric.spmv.calls"), res.iterations);
  EXPECT_GE(counters.at("numeric.pool.queue_depth_highwater"), 1u);
  EXPECT_EQ(obs::Registry::instance().gauges().at("numeric.cg.last_iterations"),
            static_cast<double>(res.iterations));
}

TEST(ObsThreading, WorkerThreadsShareInstrumentsRacelessly) {
  TelemetryGuard telemetry;
  ThreadCountGuard threads;
  an::set_thread_count(8);
  an::grain::ScopedForceFanOut force;

  obs::Counter& events = obs::Registry::instance().counter("test.worker.events");
  obs::Highwater& widest = obs::Registry::instance().highwater("test.worker.widest");
  constexpr std::size_t kItems = 100000;
  an::parallel_for(0, kItems, [&](std::size_t lo, std::size_t hi) {
    // Spans, counter adds, high-water records and first-use instrument
    // creation all race here unless the registry synchronizes them.
    obs::ScopedTimer span("test.worker.chunk");
    obs::Registry::instance().counter("test.worker.created_in_flight").add();
    events.add(hi - lo);
    widest.record(hi - lo);
  });

  EXPECT_EQ(obs::Registry::instance().counters().at("test.worker.events"), kItems);
  EXPECT_GE(obs::Registry::instance().counters().at("test.worker.widest"), kItems / 8);
  bool saw_span = false;
  for (const auto& t : obs::Registry::instance().timers())
    if (t.path == "test.worker.chunk") {
      saw_span = true;
      EXPECT_GE(t.calls, 1u);
    }
  EXPECT_TRUE(saw_span);
}

TEST(ObsThreading, EnableDisableRacesWithWorkerMutations) {
  // The gate flips while workers mutate instruments: adds may or may not
  // land (the gate is advisory), but the process must stay race-free.
  TelemetryGuard telemetry;
  ThreadCountGuard threads;
  an::set_thread_count(4);
  an::grain::ScopedForceFanOut force;
  obs::Counter& c = obs::Registry::instance().counter("test.gate.race");
  for (int round = 0; round < 20; ++round) {
    if (round % 2 == 0)
      obs::enable();
    else
      obs::disable();
    an::parallel_for(0, 5000, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) c.add();
    });
  }
  obs::enable();
  EXPECT_LE(c.value(), 20u * 5000u);
}
