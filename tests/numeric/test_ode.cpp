// Time integrators: RK4, adaptive RK45, Newmark-beta.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/ode.hpp"

namespace an = aeropack::numeric;

TEST(Rk4, ExponentialDecayMatchesAnalytic) {
  const auto f = [](double, const an::Vector& y) { return an::Vector{-2.0 * y[0]}; };
  const auto tr = an::rk4(f, {1.0}, 0.0, 1.0, 200);
  EXPECT_NEAR(tr.states.back()[0], std::exp(-2.0), 1e-9);
}

TEST(Rk4, FourthOrderConvergence) {
  const auto f = [](double, const an::Vector& y) { return an::Vector{-y[0]}; };
  const double exact = std::exp(-1.0);
  const double e1 = std::fabs(an::rk4(f, {1.0}, 0.0, 1.0, 10).states.back()[0] - exact);
  const double e2 = std::fabs(an::rk4(f, {1.0}, 0.0, 1.0, 20).states.back()[0] - exact);
  // Halving the step should reduce error by ~16x.
  EXPECT_GT(e1 / e2, 12.0);
}

TEST(Rk4, InvalidSpanThrows) {
  const auto f = [](double, const an::Vector& y) { return y; };
  EXPECT_THROW(an::rk4(f, {1.0}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(an::rk4(f, {1.0}, 1.0, 0.0, 10), std::invalid_argument);
}

TEST(Rk45, HarmonicOscillatorEnergyAccuracy) {
  // y'' = -y as first-order system; after one period returns to start.
  const auto f = [](double, const an::Vector& y) { return an::Vector{y[1], -y[0]}; };
  const double period = 2.0 * std::numbers::pi;
  an::Rk45Options opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  const auto tr = an::rk45(f, {1.0, 0.0}, 0.0, period, opts);
  EXPECT_NEAR(tr.states.back()[0], 1.0, 1e-6);
  EXPECT_NEAR(tr.states.back()[1], 0.0, 1e-6);
}

TEST(Rk45, AdaptsStepOnStiffRamp) {
  const auto f = [](double t, const an::Vector& y) {
    return an::Vector{(t < 0.5) ? -y[0] : -50.0 * y[0]};
  };
  const auto tr = an::rk45(f, {1.0}, 0.0, 1.0);
  EXPECT_GT(tr.times.size(), 10u);
  EXPECT_GT(tr.states.back()[0], 0.0);
  EXPECT_LT(tr.states.back()[0], std::exp(-0.5));
}

TEST(Newmark, SdofFreeVibrationConservesAmplitude) {
  // m x'' + k x = 0, x0 = 1: average acceleration is energy-conserving.
  an::Matrix m{{1.0}};
  an::Matrix c{{0.0}};
  an::Matrix k{{(2.0 * std::numbers::pi) * (2.0 * std::numbers::pi)}};  // fn = 1 Hz
  const auto force = [](double) { return an::Vector{0.0}; };
  const auto tr = an::newmark(m, c, k, force, {1.0}, {0.0}, 0.0, 1.0, 400);
  // After one full period the displacement returns near 1.
  EXPECT_NEAR(tr.displacement.back()[0], 1.0, 1e-3);
}

TEST(Newmark, StaticLoadConvergesToDeflection) {
  an::Matrix m{{1.0}};
  an::Matrix c{{30.0}};  // heavy damping
  an::Matrix k{{100.0}};
  const auto force = [](double) { return an::Vector{50.0}; };
  const auto tr = an::newmark(m, c, k, force, {0.0}, {0.0}, 0.0, 10.0, 2000);
  EXPECT_NEAR(tr.displacement.back()[0], 0.5, 1e-4);
  EXPECT_NEAR(tr.velocity.back()[0], 0.0, 1e-4);
}

TEST(Newmark, ShapeMismatchThrows) {
  an::Matrix m{{1.0}};
  const auto force = [](double) { return an::Vector{0.0}; };
  EXPECT_THROW(an::newmark(m, m, m, force, {0.0, 0.0}, {0.0}, 0.0, 1.0, 10),
               std::invalid_argument);
}

TEST(Newmark, BaseExcitationPhaseLagAtResonance) {
  // Harmonic force at resonance: response grows then saturates by damping.
  const double wn = 2.0 * std::numbers::pi;
  an::Matrix m{{1.0}};
  an::Matrix c{{2.0 * 0.05 * wn}};
  an::Matrix k{{wn * wn}};
  const auto force = [wn](double t) { return an::Vector{std::sin(wn * t)}; };
  const auto tr = an::newmark(m, c, k, force, {0.0}, {0.0}, 0.0, 30.0, 6000);
  double peak = 0.0;
  for (std::size_t i = tr.displacement.size() / 2; i < tr.displacement.size(); ++i)
    peak = std::max(peak, std::fabs(tr.displacement[i][0]));
  // Steady amplitude ~ Q/k = (1/(2*0.05)) / wn^2
  EXPECT_NEAR(peak, 10.0 / (wn * wn), 0.05 * 10.0 / (wn * wn));
}
