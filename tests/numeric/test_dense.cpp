// Dense matrix / vector foundations.
#include <gtest/gtest.h>

#include <stdexcept>

#include "numeric/dense.hpp"

namespace an = aeropack::numeric;
// Vector is std::vector<double>; its operators live in aeropack::numeric and
// are not found by ADL from here.
using an::operator+;
using an::operator-;

TEST(DenseMatrix, ConstructsWithFill) {
  an::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(DenseMatrix, RejectsZeroDimension) {
  EXPECT_THROW(an::Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(an::Matrix(3, 0), std::invalid_argument);
}

TEST(DenseMatrix, InitializerListAndEquality) {
  an::Matrix a{{1, 2}, {3, 4}};
  an::Matrix b{{1, 2}, {3, 4}};
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((an::Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(DenseMatrix, IdentityAndDiagonal) {
  const an::Matrix i = an::Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const an::Matrix d = an::Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(DenseMatrix, AtThrowsOutOfRange) {
  an::Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(DenseMatrix, ArithmeticOperators) {
  an::Matrix a{{1, 2}, {3, 4}};
  an::Matrix b{{4, 3}, {2, 1}};
  const an::Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const an::Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const an::Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  an::Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(DenseMatrix, MatrixProductMatchesHandComputation) {
  an::Matrix a{{1, 2}, {3, 4}};
  an::Matrix b{{5, 6}, {7, 8}};
  const an::Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrix, MatrixVectorProduct) {
  an::Matrix a{{1, 2}, {3, 4}};
  const an::Vector y = a * an::Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseMatrix, TransposeInvolution) {
  an::Matrix a{{1, 2, 3}, {4, 5, 6}};
  const an::Matrix att = a.transposed().transposed();
  EXPECT_EQ(a, att);
  EXPECT_DOUBLE_EQ(a.transposed()(2, 1), 6.0);
}

TEST(DenseMatrix, AsymmetryAndSymmetrize) {
  an::Matrix a{{1, 2}, {4, 1}};
  EXPECT_DOUBLE_EQ(a.asymmetry(), 2.0);
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a.asymmetry(), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(DenseVector, DotNormAxpy) {
  an::Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(an::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(an::dot(a, a), 25.0);
  an::Vector y{1.0, 1.0};
  an::axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(DenseVector, SizeMismatchThrows) {
  an::Vector a{1.0}, b{1.0, 2.0};
  EXPECT_THROW(an::dot(a, b), std::invalid_argument);
  EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(DenseVector, Linspace) {
  const an::Vector v = an::linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_THROW(an::linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(DenseVector, MinMaxElements) {
  an::Vector v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(an::max_element(v), 7.0);
  EXPECT_DOUBLE_EQ(an::min_element(v), -1.0);
  EXPECT_THROW(an::max_element({}), std::invalid_argument);
}
