// Air properties and the ICAO standard atmosphere.
#include <gtest/gtest.h>

#include <stdexcept>

#include "materials/air.hpp"

namespace am = aeropack::materials;

TEST(Air, SeaLevelStandardValues) {
  const auto a = am::air_at(288.15);
  EXPECT_NEAR(a.density, 1.225, 0.005);
  EXPECT_NEAR(a.viscosity, 1.79e-5, 0.05e-5);
  EXPECT_NEAR(a.conductivity, 0.0253, 0.001);
  EXPECT_NEAR(a.prandtl, 0.71, 0.02);
}

TEST(Air, HotAirIsLessDenseMoreViscous) {
  const auto cold = am::air_at(273.15);
  const auto hot = am::air_at(373.15);
  EXPECT_GT(cold.density, hot.density);
  EXPECT_LT(cold.viscosity, hot.viscosity);
  EXPECT_LT(cold.conductivity, hot.conductivity);
}

TEST(Air, OutOfRangeThrows) {
  EXPECT_THROW(am::air_at(100.0), std::invalid_argument);
  EXPECT_THROW(am::air_at(2000.0), std::invalid_argument);
  EXPECT_THROW(am::air_at(300.0, -1.0), std::invalid_argument);
}

TEST(Air, DerivedQuantitiesConsistent) {
  const auto a = am::air_at(320.0);
  EXPECT_NEAR(a.kinematic_viscosity(), a.viscosity / a.density, 1e-15);
  EXPECT_NEAR(a.diffusivity(), a.conductivity / (a.density * a.specific_heat), 1e-15);
  EXPECT_NEAR(a.beta, 1.0 / 320.0, 1e-12);
}

TEST(Isa, SeaLevel) {
  const auto p = am::isa_atmosphere(0.0);
  EXPECT_NEAR(p.temperature, 288.15, 1e-9);
  EXPECT_NEAR(p.pressure, 101325.0, 1e-6);
  EXPECT_NEAR(p.density, 1.225, 0.001);
}

TEST(Isa, StandardAltitudes) {
  // 11 km tropopause: T = 216.65 K, p ~ 22632 Pa.
  const auto p11 = am::isa_atmosphere(11000.0);
  EXPECT_NEAR(p11.temperature, 216.65, 0.01);
  EXPECT_NEAR(p11.pressure, 22632.0, 50.0);
  // Cabin altitude 2400 m: p ~ 75.2 kPa.
  const auto cabin = am::isa_atmosphere(2400.0);
  EXPECT_NEAR(cabin.pressure, 75200.0, 500.0);
}

TEST(Isa, StratosphereIsothermal) {
  const auto a = am::isa_atmosphere(12000.0);
  const auto b = am::isa_atmosphere(15000.0);
  EXPECT_DOUBLE_EQ(a.temperature, b.temperature);
  EXPECT_GT(a.pressure, b.pressure);
}

TEST(Isa, OutOfRangeThrows) {
  EXPECT_THROW(am::isa_atmosphere(-1000.0), std::invalid_argument);
  EXPECT_THROW(am::isa_atmosphere(30000.0), std::invalid_argument);
}

TEST(BayAir, AltitudeDeratesDensity) {
  const auto sl = am::bay_air(0.0, 328.15);
  const auto fl = am::bay_air(8000.0, 328.15);
  EXPECT_GT(sl.density, 1.8 * fl.density);
  EXPECT_DOUBLE_EQ(sl.temperature, fl.temperature);
}
