// Solid material catalogue and PCB stackup mixing rules.
#include <gtest/gtest.h>

#include <stdexcept>

#include "materials/solid.hpp"

namespace am = aeropack::materials;

TEST(SolidCatalogue, RepresentativeValues) {
  const auto al = am::aluminum_6061();
  EXPECT_NEAR(al.density, 2700.0, 1.0);
  EXPECT_NEAR(al.conductivity, 167.0, 1.0);
  EXPECT_TRUE(al.isotropic());
  const auto cu = am::copper();
  EXPECT_GT(cu.conductivity, 10.0 * am::steel_304().conductivity);
  EXPECT_GT(am::aluminum_7075().yield_strength, am::aluminum_6061().yield_strength);
}

TEST(SolidCatalogue, Fr4IsTransverselyIsotropic) {
  const auto fr4 = am::fr4();
  EXPECT_FALSE(fr4.isotropic());
  EXPECT_GT(fr4.conductivity, fr4.conductivity_through);
}

TEST(SolidCatalogue, CarbonCompositeIsPoorConductor) {
  // The paper: "Compared to the aluminum, this material has a rather poor
  // thermal conductivity".
  EXPECT_LT(am::carbon_composite().conductivity, 0.1 * am::aluminum_6061().conductivity);
}

TEST(SolidCatalogue, DiffusivityPositive) {
  for (const auto& m : {am::aluminum_6061(), am::copper(), am::fr4(), am::silicon(),
                        am::carbon_composite(), am::titanium_6al4v()}) {
    EXPECT_GT(m.diffusivity(), 0.0) << m.name;
  }
}

TEST(PcbStackup, MoreCopperRaisesInPlaneConductivity) {
  am::PcbStackup two;
  two.copper_layers = 2;
  am::PcbStackup eight;
  eight.copper_layers = 8;
  EXPECT_GT(eight.conductivity_in_plane(), two.conductivity_in_plane());
  EXPECT_GT(eight.copper_fraction(), two.copper_fraction());
}

TEST(PcbStackup, InPlaneExceedsThroughThickness) {
  am::PcbStackup s;
  EXPECT_GT(s.conductivity_in_plane(), 10.0 * s.conductivity_through());
}

TEST(PcbStackup, ZeroCopperDegeneratesToFr4) {
  am::PcbStackup s;
  s.copper_layers = 0;
  EXPECT_NEAR(s.conductivity_in_plane(), am::fr4().conductivity, 1e-9);
  EXPECT_NEAR(s.conductivity_through(), am::fr4().conductivity_through, 1e-9);
  EXPECT_NEAR(s.density(), am::fr4().density, 1e-9);
}

TEST(PcbStackup, InvalidGeometryThrows) {
  am::PcbStackup s;
  s.board_thickness = 0.0;
  EXPECT_THROW(s.copper_fraction(), std::invalid_argument);
  am::PcbStackup too_much;
  too_much.copper_layers = 100;
  too_much.copper_layer_thickness = 105e-6;
  EXPECT_THROW(too_much.copper_fraction(), std::invalid_argument);
}

TEST(PcbStackup, AsMaterialCarriesEffectiveProperties) {
  am::PcbStackup s;
  const auto m = s.as_material();
  EXPECT_NEAR(m.conductivity, s.conductivity_in_plane(), 1e-12);
  EXPECT_NEAR(m.conductivity_through, s.conductivity_through(), 1e-12);
  EXPECT_GT(m.density, am::fr4().density);
}

// Property sweep: copper fraction is monotone in layer count.
class StackupSweep : public ::testing::TestWithParam<int> {};

TEST_P(StackupSweep, ConductivityBoundedByConstituents) {
  am::PcbStackup s;
  s.copper_layers = GetParam();
  const double k = s.conductivity_in_plane();
  EXPECT_GE(k, am::fr4().conductivity);
  EXPECT_LE(k, am::copper().conductivity);
}

INSTANTIATE_TEST_SUITE_P(Layers, StackupSweep, ::testing::Values(0, 2, 4, 8, 12, 16));
