// Two-phase working fluid saturation tables.
#include <gtest/gtest.h>

#include <stdexcept>

#include "materials/fluids.hpp"

namespace am = aeropack::materials;

TEST(Water, AtmosphericBoilingPoint) {
  const auto s = am::water().saturation(373.15);
  EXPECT_NEAR(s.pressure, 101300.0, 500.0);
  EXPECT_NEAR(s.h_fg, 2.257e6, 5e3);
  EXPECT_NEAR(s.rho_liquid, 958.0, 1.0);
}

TEST(Water, SaturationTemperatureInverse) {
  EXPECT_NEAR(am::water().saturation_temperature(101325.0), 373.15, 0.3);
  EXPECT_NEAR(am::water().saturation_temperature(2340.0), 293.15, 0.3);
}

TEST(Fluids, OutOfRangeThrows) {
  EXPECT_THROW(am::water().saturation(250.0), std::out_of_range);
  EXPECT_THROW(am::water().saturation(500.0), std::out_of_range);
  EXPECT_THROW(am::ammonia().saturation(400.0), std::out_of_range);
  EXPECT_THROW(am::water().saturation_temperature(-1.0), std::invalid_argument);
}

TEST(Fluids, AmmoniaHighPressureLowTension) {
  const auto nh3 = am::ammonia().saturation(293.15);
  const auto h2o = am::water().saturation(293.15 + 1e-9);
  EXPECT_GT(nh3.pressure, 100.0 * h2o.pressure);
  EXPECT_LT(nh3.sigma, h2o.sigma);
}

TEST(Fluids, MeritNumberRanking) {
  // Water has the highest figure of merit near 100 C among common HP fluids;
  // ammonia dominates at low temperature where water is frozen/weak.
  const double m_water = am::water().saturation(373.15).merit_number();
  const double m_meth = am::methanol().saturation(345.0).merit_number();
  const double m_acet = am::acetone().saturation(345.0).merit_number();
  EXPECT_GT(m_water, 5.0 * m_meth);
  EXPECT_GT(m_water, 5.0 * m_acet);
  EXPECT_GT(m_water, 1e10);  // ~5e10 at 100 C
}

TEST(Fluids, GasConstantFromMolarMass) {
  EXPECT_NEAR(am::water().saturation(323.15).gas_constant(), 461.5, 1.0);
  EXPECT_NEAR(am::ammonia().saturation(273.15).gas_constant(), 488.2, 1.0);
}

// Property: thermodynamic monotonicity along each saturation curve.
class FluidMonotonicity : public ::testing::TestWithParam<const am::WorkingFluid*> {};

TEST_P(FluidMonotonicity, SaturationTrendsWithTemperature) {
  const am::WorkingFluid& f = *GetParam();
  const double lo = f.t_min();
  const double hi = f.t_max();
  double prev_p = 0.0, prev_rho_v = 0.0;
  double prev_rho_l = 1e12, prev_hfg = 1e12, prev_sigma = 1e12, prev_mu = 1e12;
  for (int i = 0; i <= 20; ++i) {
    const double t = lo + (hi - lo) * i / 20.0;
    const auto s = f.saturation(t);
    EXPECT_GT(s.pressure, prev_p) << f.name() << " T=" << t;
    EXPECT_GE(s.rho_vapor, prev_rho_v) << f.name();
    EXPECT_LE(s.rho_liquid, prev_rho_l) << f.name();
    EXPECT_LE(s.h_fg, prev_hfg) << f.name();
    EXPECT_LE(s.sigma, prev_sigma) << f.name();
    EXPECT_LE(s.mu_liquid, prev_mu) << f.name();
    EXPECT_GT(s.h_fg, 0.0);
    EXPECT_GT(s.k_liquid, 0.0);
    EXPECT_GT(s.cp_liquid, 0.0);
    EXPECT_GT(s.mu_vapor, 0.0);
    EXPECT_LT(s.mu_vapor, s.mu_liquid);
    prev_p = s.pressure;
    prev_rho_v = s.rho_vapor;
    prev_rho_l = s.rho_liquid;
    prev_hfg = s.h_fg;
    prev_sigma = s.sigma;
    prev_mu = s.mu_liquid;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFluids, FluidMonotonicity,
                         ::testing::Values(&am::water(), &am::ammonia(), &am::acetone(),
                                           &am::methanol(), &am::ethanol()));

TEST(Fluids, CatalogueComplete) {
  const auto all = am::all_working_fluids();
  EXPECT_EQ(all.size(), 5u);
  for (const auto* f : all) EXPECT_FALSE(f->name().empty());
}
