// Dormant-telemetry overhead contract: the instrumented CG hot loop on a
// 64^3 7-point Laplacian must cost the same with telemetry compiled in but
// dormant as with it fully enabled — within run-to-run noise (<2%). Every
// instrumentation site in the loop is one relaxed atomic load and branch, so
// if this fails the null-registry fast path has regressed.
//
// Paired, order-alternating timing: each repetition times one dormant and
// one enabled solve back to back (swapping which goes first on every rep, so
// monotonic machine drift — frequency scaling, a noisy neighbor ramping up —
// cannot systematically tax one side), and the assertion takes the best
// paired ratio: a single quiet repetition proves the instrumentation itself
// is cheap, while a genuine hot-path regression inflates every pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "obs/registry.hpp"

namespace an = aeropack::numeric;
namespace obs = aeropack::obs;

namespace {

/// SPD 7-point stencil on an n^3 grid: -1 per neighbor, neighbors + 1/2 on
/// the diagonal. Columns emitted in ascending order (CSR invariant).
an::CsrMatrix laplacian_3d(std::size_t n) {
  const std::size_t total = n * n * n;
  const std::size_t sxy = n * n;
  std::vector<std::size_t> row_ptr(total + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(7 * total);
  values.reserve(7 * total);
  const auto cell = [n, sxy](std::size_t i, std::size_t j, std::size_t k) {
    return i + n * j + sxy * k;
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = cell(i, j, k);
        double diag = 0.5;
        const auto neighbor = [&](std::size_t col) {
          col_idx.push_back(col);
          values.push_back(-1.0);
          diag += 1.0;
        };
        if (k > 0) neighbor(c - sxy);
        if (j > 0) neighbor(c - n);
        if (i > 0) neighbor(c - 1);
        const std::size_t dpos = values.size();
        col_idx.push_back(c);
        values.push_back(0.0);
        if (i + 1 < n) neighbor(c + 1);
        if (j + 1 < n) neighbor(c + n);
        if (k + 1 < n) neighbor(c + sxy);
        values[dpos] = diag;
        row_ptr[c + 1] = values.size();
      }
  return an::CsrMatrix(total, total, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
}

double time_solve_seconds(const an::CsrMatrix& a, const an::Vector& b,
                          const an::IterativeOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const an::IterativeResult res = an::conjugate_gradient(a, b, opts);
  const auto t1 = std::chrono::steady_clock::now();
  // tolerance 0 pins the work: every timed solve runs max_iterations.
  EXPECT_EQ(res.iterations, opts.max_iterations);
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

}  // namespace

TEST(ObsOverhead, DormantTelemetryIsFreeOnCg64) {
  ThreadCountGuard threads;
  an::set_thread_count(1);  // serial: tightest timing variance

  const an::CsrMatrix a = laplacian_3d(64);
  const an::Vector b(a.rows(), 1.0);
  an::IterativeOptions opts;
  opts.tolerance = 0.0;  // never converges early: fixed iteration count
  opts.max_iterations = 150;

  obs::disable();
  time_solve_seconds(a, b, opts);  // warm caches and the thread pool

  const auto timed_dormant = [&] {
    obs::disable();
    return time_solve_seconds(a, b, opts);
  };
  const auto timed_enabled = [&] {
    obs::enable();
    obs::Registry::instance().reset();
    return time_solve_seconds(a, b, opts);
  };

  constexpr int kReps = 6;
  double best_ratio = 1e300;
  double last_dormant = 0.0, last_enabled = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    if (rep % 2 == 0) {
      last_dormant = timed_dormant();
      last_enabled = timed_enabled();
    } else {
      last_enabled = timed_enabled();
      last_dormant = timed_dormant();
    }
    ASSERT_GT(last_dormant, 0.0);
    best_ratio = std::min(best_ratio, last_enabled / last_dormant);
  }
  obs::disable();

  // Fully-enabled telemetry bounds the dormant fast path from above: if even
  // live counters cost <2% in the quietest paired repetition, the dormant
  // branch is certainly in the noise.
  EXPECT_LT(best_ratio, 1.02) << "telemetry overhead on 64^3 CG: best paired ratio "
                              << best_ratio << " (last pair: dormant " << last_dormant
                              << " s/solve, enabled " << last_enabled << " s/solve)";
}
