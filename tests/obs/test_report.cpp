// obs::Report serialization: flat BENCH_*.json-style output with stable
// section-prefixed keys, written reports parse back with the golden-file
// reader (modulo the one string-valued "report" label).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "obs/report.hpp"
#include "verify/golden.hpp"

namespace obs = aeropack::obs;
namespace av = aeropack::verify;

namespace {

struct TelemetryGuard {
  TelemetryGuard() {
    obs::enable();
    obs::Registry::instance().reset();
  }
  ~TelemetryGuard() { obs::disable(); }
};

obs::Report sample_report() {
  obs::Registry::instance().counter("sample.solves").add(3);
  obs::Registry::instance().gauge("sample.residual").set(1.5e-11);
  obs::Registry::instance().highwater("sample.queue").record(7);
  {
    obs::ScopedTimer outer("sample.outer");
    obs::ScopedTimer inner("sample.inner");
  }
  obs::Report r = obs::Report::capture("unit_test", 2);
  r.set_meta("cells", 4096.0);
  return r;
}

}  // namespace

TEST(ObsReport, CaptureSnapshotsRegistry) {
  TelemetryGuard guard;
  const obs::Report r = sample_report();
  EXPECT_EQ(r.name(), "unit_test");
  EXPECT_EQ(r.threads(), 2u);
  EXPECT_EQ(r.counters().at("sample.solves"), 3u);
  EXPECT_EQ(r.counters().at("sample.queue"), 7u);
  EXPECT_EQ(r.gauges().at("sample.residual"), 1.5e-11);
  ASSERT_FALSE(r.timers().empty());
}

TEST(ObsReport, JsonIsFlatSectionPrefixedAndOrdered) {
  TelemetryGuard guard;
  const std::string json = sample_report().to_json();
  EXPECT_NE(json.find("\"report\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"meta.cells\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"counters.sample.solves\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"counters.sample.queue\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges.sample.residual\": 1.5e-11"), std::string::npos);
  EXPECT_NE(json.find("\"timers.sample.outer.calls\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"timers.sample.outer/sample.inner.calls\": 1"), std::string::npos);
  // Sections appear in a fixed order so diffs between reports stay minimal.
  EXPECT_LT(json.find("\"threads\""), json.find("\"meta."));
  EXPECT_LT(json.find("\"meta."), json.find("\"counters."));
  EXPECT_LT(json.find("\"counters."), json.find("\"gauges."));
  EXPECT_LT(json.find("\"gauges."), json.find("\"timers."));
}

TEST(ObsReport, WrittenFileRoundTripsThroughGoldenReader) {
  TelemetryGuard guard;
  const std::string path = ::testing::TempDir() + "obs_report_roundtrip.json";
  obs::Report r = sample_report();
  r.write(path);
  // The golden reader wants pure numbers; strip the one string-valued label
  // the same way tools/check_report.py does before gating counters.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const std::size_t pos = content.find("  \"report\": \"unit_test\",\n");
  ASSERT_NE(pos, std::string::npos);
  content.erase(pos, std::string("  \"report\": \"unit_test\",\n").size());
  {
    std::ofstream out(path);
    out << content;
  }
  const auto values = av::read_golden_file(path);
  EXPECT_EQ(values.at("threads"), 2.0);
  EXPECT_EQ(values.at("meta.cells"), 4096.0);
  EXPECT_EQ(values.at("counters.sample.solves"), 3.0);
  EXPECT_EQ(values.at("gauges.sample.residual"), 1.5e-11);
  EXPECT_GE(values.at("timers.sample.outer.seconds"), 0.0);
  std::remove(path.c_str());
}

TEST(ObsReport, WriteToUnwritablePathThrows) {
  TelemetryGuard guard;
  EXPECT_THROW(sample_report().write("/nonexistent_dir_for_obs/report.json"),
               std::runtime_error);
}
