// Deterministic-counter contracts: three canonical solves (linear slab FV,
// nonlinear-box Picard, Fig. 2 board sparse modal) run with telemetry
// enabled, and their algorithmic counters — Picard passes, CG iterations,
// SpMV calls, factorizations, subspace sweeps — are frozen as exact golden
// baselines under tests/obs/golden/. The PR 1-3 determinism invariants make
// these counters bit-identical across thread counts, so the same snapshot is
// asserted at 1, 2 and 8 threads: an accidental algorithmic regression (an
// extra Picard pass, a fallback silently engaging, a lost warm start) fails
// here even on noisy CI runners where timings prove nothing.
//
// Scheduling telemetry (numeric.parallel_for.*, numeric.pool.*) is
// thread-dependent by design and excluded from the contract.
//
// Regenerate after an intentional algorithmic change:
//   AEROPACK_UPDATE_GOLDEN=1 ctest -L obs -R CounterContracts
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "obs/registry.hpp"
#include "verify/cross_check.hpp"
#include "verify/golden.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace av = aeropack::verify;
namespace obs = aeropack::obs;

namespace {

const std::vector<std::size_t> kThreadSweep{1, 2, 8};

struct ThreadCountGuard {
  ThreadCountGuard() : saved_(an::thread_count()) {}
  ~ThreadCountGuard() { an::set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

struct TelemetryGuard {
  TelemetryGuard() { obs::enable(); }
  ~TelemetryGuard() { obs::disable(); }
};

bool is_scheduling_counter(const std::string& name) {
  return name.rfind("numeric.parallel_for.", 0) == 0 || name.rfind("numeric.pool.", 0) == 0;
}

/// Run `solve` on a clean registry and return its algorithmic counters.
/// Zero values are dropped: the process-wide registry holds every counter any
/// earlier test created, so keeping them would make the snapshot (and the
/// golden baseline) depend on test execution order. A counter regressing from
/// k to 0 still fails — its key goes missing against the baseline.
template <typename Fn>
std::map<std::string, std::uint64_t> counters_of(Fn&& solve) {
  obs::Registry::instance().reset();
  solve();
  std::map<std::string, std::uint64_t> snap;
  for (const auto& [name, value] : obs::Registry::instance().counters())
    if (value != 0 && !is_scheduling_counter(name)) snap[name] = value;
  return snap;
}

/// Assert the counters are exactly equal at every sweep thread count, then
/// check the 1-thread snapshot against the golden baseline.
template <typename Fn>
void expect_counter_contract(const std::string& golden_name, Fn&& solve) {
  TelemetryGuard telemetry;
  ThreadCountGuard threads;
  an::set_thread_count(kThreadSweep.front());
  const auto reference = counters_of(solve);
  EXPECT_FALSE(reference.empty());
  for (const std::size_t t : kThreadSweep) {
    an::set_thread_count(t);
    const auto run = counters_of(solve);
    EXPECT_EQ(run, reference) << golden_name << ": counters diverge at " << t << " threads";
  }
  av::GoldenRecorder rec(golden_name, AEROPACK_OBS_GOLDEN_DIR, "obs");
  for (const auto& [name, value] : reference)
    rec.record(name, static_cast<double>(value));
  std::string joined;
  for (const auto& line : rec.finish(0.0)) joined += "\n  " + line;
  EXPECT_TRUE(joined.empty()) << rec.path() << ":" << joined;
}

/// Linear slab: fixed temperatures on both x faces, uniform source. One
/// Picard pass, one structure assembly, a fixed CG iteration count.
at::FvModel slab_model() {
  at::FvModel m(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 4));
  m.set_material(am::aluminum_6061());
  m.add_power(m.all_cells(), 5.0);
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  m.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(320.0));
  return m;
}

/// Fig. 2 power-supply board (same physics as the golden regression model),
/// forced down the sparse shift-invert modal path.
af::PlateModel ps_board() {
  af::PlateModel p(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);
  p.add_point_mass(0.11, 0.05, 0.09);
  p.add_doubler(0.03, 0.13, 0.02, 0.08, 1.8);
  return p;
}

}  // namespace

TEST(CounterContracts, SlabFvSteady) {
  const at::FvModel model = slab_model();
  expect_counter_contract("obs_slab_fv", [&model] {
    const auto sol = model.solve_steady();
    ASSERT_TRUE(sol.converged);
  });
}

TEST(CounterContracts, NonlinearBoxPicard) {
  const at::FvModel model = av::nonlinear_box_model(8);
  expect_counter_contract("obs_nonlinear_box", [&model] {
    const auto sol = model.solve_steady();
    ASSERT_TRUE(sol.converged);
    ASSERT_GT(sol.picard_iterations, 1u);  // the nonlinear loop must engage
  });
}

TEST(CounterContracts, Fig2BoardSparseModal) {
  const af::PlateModel board = ps_board();
  af::ModalOptions opts;
  opts.n_modes = 6;
  opts.path = af::ModalPath::Sparse;
  expect_counter_contract("obs_fig2_modal", [&board, &opts] {
    const auto modes = board.solve_modal(opts);
    ASSERT_EQ(modes.frequencies_hz.size(), 6u);
  });
}

TEST(CounterContracts, SlabTransientWarmStartsEveryStep) {
  // Not golden-frozen (the step count is pinned by the arguments), but the
  // warm-start depth must be visible in telemetry: a zero-power march from
  // the exact fixed point converges in zero CG iterations every step.
  TelemetryGuard telemetry;
  at::FvModel m(at::FvGrid::uniform(0.05, 0.02, 0.01, 8, 4, 2));
  m.set_material(am::aluminum_6061());
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
  obs::Registry::instance().reset();
  const auto out = m.solve_transient(10.0, 1.0, 300.0);
  const auto counters = obs::Registry::instance().counters();
  EXPECT_EQ(counters.at("fv.transient_steps"), 10u);
  EXPECT_EQ(counters.at("fv.structure_assemblies"), 1u);
  EXPECT_EQ(counters.at("fv.boundary_updates"), 10u);
  EXPECT_EQ(counters.at("fv.warmstart_hits"), 10u);
  EXPECT_EQ(out.linear_iterations, 0u);
}
