// Unit tests for the telemetry registry: instrument semantics, the
// enable/disable gate, address stability across reset(), and the span tree.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace obs = aeropack::obs;

namespace {

/// Every obs test enables telemetry on a clean registry and restores the
/// dormant default on exit so the suites stay order-independent.
struct TelemetryGuard {
  TelemetryGuard() {
    obs::enable();
    obs::Registry::instance().reset();
  }
  ~TelemetryGuard() { obs::disable(); }
};

}  // namespace

TEST(ObsRegistry, CounterAccumulatesAndResets) {
  TelemetryGuard guard;
  obs::Counter& c = obs::Registry::instance().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, InstrumentReferencesAreStableAcrossLookupAndReset) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& first = reg.counter("test.stable");
  // Force rebalancing inserts around it.
  for (int i = 0; i < 100; ++i) reg.counter("test.stable." + std::to_string(i));
  reg.reset();
  EXPECT_EQ(&first, &reg.counter("test.stable"));
}

TEST(ObsRegistry, DormantInstrumentsRecordNothing) {
  obs::Registry::instance().reset();
  obs::disable();
  obs::Counter& c = obs::Registry::instance().counter("test.dormant.counter");
  obs::Gauge& g = obs::Registry::instance().gauge("test.dormant.gauge");
  obs::Highwater& h = obs::Registry::instance().highwater("test.dormant.hw");
  c.add(7);
  g.set(3.5);
  h.record(9);
  {
    obs::ScopedTimer span("test.dormant.span");
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.value(), 0u);
  for (const auto& t : obs::Registry::instance().timers())
    EXPECT_NE(t.path, "test.dormant.span");
}

TEST(ObsRegistry, EnableDisableGateIsLive) {
  TelemetryGuard guard;
  obs::Counter& c = obs::Registry::instance().counter("test.gate");
  c.add();
  obs::disable();
  c.add();
  obs::enable();
  c.add();
  EXPECT_EQ(c.value(), 2u);
}

TEST(ObsRegistry, GaugeKeepsLastWriteAndHighwaterKeepsMax) {
  TelemetryGuard guard;
  obs::Gauge& g = obs::Registry::instance().gauge("test.gauge");
  g.set(10.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  obs::Highwater& h = obs::Registry::instance().highwater("test.hw");
  h.record(3);
  h.record(17);
  h.record(5);
  EXPECT_EQ(h.value(), 17u);
}

TEST(ObsRegistry, CountersSnapshotMergesHighwaters) {
  TelemetryGuard guard;
  obs::Registry::instance().counter("test.snap.count").add(4);
  obs::Registry::instance().highwater("test.snap.hw").record(9);
  const auto snap = obs::Registry::instance().counters();
  EXPECT_EQ(snap.at("test.snap.count"), 4u);
  EXPECT_EQ(snap.at("test.snap.hw"), 9u);
}

TEST(ObsRegistry, ScopedTimerBuildsNestedPaths) {
  TelemetryGuard guard;
  {
    obs::ScopedTimer outer("outer");
    {
      obs::ScopedTimer inner("inner");
    }
    {
      obs::ScopedTimer inner("inner");
    }
  }
  {
    obs::ScopedTimer outer("outer");
  }
  bool saw_outer = false, saw_inner = false;
  for (const auto& t : obs::Registry::instance().timers()) {
    if (t.path == "outer") {
      saw_outer = true;
      EXPECT_EQ(t.calls, 2u);
      EXPECT_EQ(t.depth, 0u);
      EXPECT_GE(t.seconds, 0.0);
    }
    if (t.path == "outer/inner") {
      saw_inner = true;
      EXPECT_EQ(t.calls, 2u);
      EXPECT_EQ(t.depth, 1u);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(ObsRegistry, SpanOpenedWhileEnabledClosesCleanlyAfterDisable) {
  TelemetryGuard guard;
  {
    obs::ScopedTimer span("test.straddle");
    obs::disable();
  }  // must still accumulate into the node it opened
  obs::enable();
  bool found = false;
  for (const auto& t : obs::Registry::instance().timers())
    if (t.path == "test.straddle") {
      found = true;
      EXPECT_EQ(t.calls, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, TimersFromWorkerThreadsNestPerThread) {
  TelemetryGuard guard;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        obs::ScopedTimer outer("worker_span");
        obs::ScopedTimer inner("inner");
      }
    });
  for (auto& t : workers) t.join();
  std::uint64_t outer_calls = 0, inner_calls = 0;
  for (const auto& t : obs::Registry::instance().timers()) {
    if (t.path == "worker_span") outer_calls = t.calls;
    if (t.path == "worker_span/inner") inner_calls = t.calls;
  }
  EXPECT_EQ(outer_calls, 200u);
  EXPECT_EQ(inner_calls, 200u);
}

TEST(ObsRegistry, ConcurrentCounterAddsAreLossless) {
  TelemetryGuard guard;
  obs::Counter& c = obs::Registry::instance().counter("test.concurrent");
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w)
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(ObsRegistry, IndexedKeyPadsToTwoDigits) {
  EXPECT_EQ(obs::indexed_key("fv.picard", 3, "residual"), "fv.picard.03.residual");
  EXPECT_EQ(obs::indexed_key("fv.picard", 12, "residual"), "fv.picard.12.residual");
}
