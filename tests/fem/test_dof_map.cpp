// DofMap: the shared fix/reduce/expand bookkeeping for the FEM models.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fem/dof_map.hpp"
#include "numeric/assembly.hpp"

namespace af = aeropack::fem;
namespace an = aeropack::numeric;

TEST(DofMap, MapsFreeDofsInAscendingOrder) {
  af::DofMap map(6);
  map.fix(1);
  map.fix(4);
  EXPECT_EQ(map.full_count(), 6u);
  EXPECT_EQ(map.free_count(), 4u);
  const std::vector<std::size_t> expected{0, 2, 3, 5};
  EXPECT_EQ(map.free_to_full(), expected);
  EXPECT_EQ(map.to_free(0), 0u);
  EXPECT_EQ(map.to_free(1), af::DofMap::kFixed);
  EXPECT_EQ(map.to_free(2), 1u);
  EXPECT_EQ(map.to_free(5), 3u);
  EXPECT_TRUE(map.is_fixed(4));
  EXPECT_FALSE(map.is_fixed(3));
}

TEST(DofMap, FixIsIdempotentAndRebuildsLazily) {
  af::DofMap map(4);
  map.fix(2);
  map.fix(2);
  EXPECT_EQ(map.free_count(), 3u);
  map.fix(0);  // mutate after a query: maps must rebuild
  EXPECT_EQ(map.free_count(), 2u);
  EXPECT_EQ(map.to_free(1), 0u);
}

TEST(DofMap, ReduceExpandRoundTrip) {
  af::DofMap map(5);
  map.fix(0);
  map.fix(3);
  const an::Vector full{10.0, 11.0, 12.0, 13.0, 14.0};
  const an::Vector reduced = map.reduce(full);
  const an::Vector expected{11.0, 12.0, 14.0};
  EXPECT_EQ(reduced, expected);
  const an::Vector back = map.expand(reduced);
  const an::Vector expected_full{0.0, 11.0, 12.0, 0.0, 14.0};
  EXPECT_EQ(back, expected_full);
}

TEST(DofMap, MapDofsFeedsScatterDirectly) {
  af::DofMap map(4);
  map.fix(1);
  const auto mapped = map.map_dofs({0, 1, 3});
  ASSERT_EQ(mapped.size(), 3u);
  EXPECT_EQ(mapped[0], 0u);
  EXPECT_EQ(mapped[1], af::DofMap::kFixed);
  EXPECT_EQ(mapped[2], 2u);
  // kFixed rows/columns are discarded by the assembler.
  an::SparseAssembler a(map.free_count(), map.free_count());
  an::Matrix el{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  a.scatter(mapped, el);
  const an::CsrMatrix c = a.finalize();
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(c.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(c.at(2, 2), 9.0);
  EXPECT_EQ(c.nonzeros(), 4u);
}

TEST(DofMap, ErrorsOnBadIndicesAndEmptyMap) {
  EXPECT_THROW(af::DofMap(0), std::invalid_argument);
  af::DofMap map(3);
  EXPECT_THROW(map.fix(3), std::out_of_range);
  EXPECT_THROW(map.to_free(7), std::out_of_range);
  EXPECT_THROW(map.reduce(an::Vector(2, 0.0)), std::invalid_argument);
  EXPECT_THROW(map.expand(an::Vector(5, 0.0)), std::invalid_argument);
}
