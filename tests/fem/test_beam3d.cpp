// 3-D space-frame element and model.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fem/beam3d.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;

TEST(Section3D, Factories) {
  const auto r = af::Section3D::rectangle(0.02, 0.04);
  EXPECT_DOUBLE_EQ(r.area, 8e-4);
  EXPECT_GT(r.iz, r.iy);  // taller than wide in z-bending sense
  EXPECT_GT(r.j, 0.0);
  const auto rod = af::Section3D::rod(0.01);
  EXPECT_NEAR(rod.j, 2.0 * rod.iy, 1e-15);
  EXPECT_THROW(af::Section3D::tube(0.01, 0.006), std::invalid_argument);
}

TEST(Beam3D, StiffnessSymmetricWithRigidBodyNullspace) {
  const auto s = af::Section3D::rod(0.01);
  const an::Matrix k = af::beam3d_stiffness_local(am::aluminum_6061(), s, 0.5);
  EXPECT_LT(k.asymmetry(), 1e-6 * k.norm());
  // Rigid translation in each direction gives zero force.
  for (std::size_t dir = 0; dir < 3; ++dir) {
    an::Vector rigid(12, 0.0);
    rigid[dir] = 1.0;
    rigid[6 + dir] = 1.0;
    const an::Vector f = k * rigid;
    for (double v : f) EXPECT_NEAR(v, 0.0, 1e-3);
  }
}

TEST(Beam3D, TransformationOrthogonal) {
  const an::Matrix t = af::beam3d_transformation(0, 0, 0, 1, 2, 3);
  const an::Matrix id = t * t.transposed();
  EXPECT_LT((id - an::Matrix::identity(12)).norm(), 1e-12);
  // Vertical member path (reference-vector switch).
  const an::Matrix tv = af::beam3d_transformation(0, 0, 0, 0, 0, 2);
  EXPECT_LT((tv * tv.transposed() - an::Matrix::identity(12)).norm(), 1e-12);
}

TEST(Frame3D, CantileverTipDeflectionBothPlanes) {
  // delta = P L^3 / (3 E I) in y (Iz) and z (Iy).
  const double l = 0.5, p = 100.0;
  const auto s = af::Section3D::rectangle(0.01, 0.02);
  const auto mat = am::aluminum_6061();
  af::Frame3D f;
  const auto a = f.add_node(0, 0, 0);
  const auto b = f.add_node(l, 0, 0);
  f.fix_all(a);
  f.add_beam(a, b, mat, s);
  an::Vector loads(f.dof_count(), 0.0);
  loads[f.global_dof(b, 1)] = p;  // y force
  loads[f.global_dof(b, 2)] = p;  // z force
  const auto u = f.solve_static(loads);
  const double e = mat.youngs_modulus;
  EXPECT_NEAR(u[f.global_dof(b, 1)], p * l * l * l / (3.0 * e * s.iz), 1e-9);
  EXPECT_NEAR(u[f.global_dof(b, 2)], p * l * l * l / (3.0 * e * s.iy), 1e-9);
}

TEST(Frame3D, TorsionOfShaft) {
  // theta = T L / (G J).
  const double l = 0.4, torque = 5.0;
  const auto s = af::Section3D::rod(0.012);
  const auto mat = am::steel_304();
  af::Frame3D f;
  const auto a = f.add_node(0, 0, 0);
  const auto b = f.add_node(l, 0, 0);
  f.fix_all(a);
  f.add_beam(a, b, mat, s);
  an::Vector loads(f.dof_count(), 0.0);
  loads[f.global_dof(b, 3)] = torque;
  const auto u = f.solve_static(loads);
  const double g = mat.youngs_modulus / (2.0 * (1.0 + mat.poisson_ratio));
  EXPECT_NEAR(u[f.global_dof(b, 3)], torque * l / (g * s.j), 1e-9);
}

TEST(Frame3D, CantileverFrequencyMatchesAnalytic) {
  const double l = 0.3;
  const auto s = af::Section3D::rectangle(0.015, 0.003);
  const auto mat = am::aluminum_6061();
  af::Frame3D f;
  std::size_t prev = f.add_node(0, 0, 0);
  f.fix_all(prev);
  const std::size_t n = 6;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t node = f.add_node(l * static_cast<double>(i) / n, 0, 0);
    f.add_beam(prev, node, mat, s);
    prev = node;
  }
  const auto freqs = f.natural_frequencies();
  const double beta = 1.8751040687;
  // Weak axis (min I) governs the first mode.
  const double imin = std::min(s.iy, s.iz);
  const double f1 = beta * beta / (2.0 * std::numbers::pi) *
                    std::sqrt(mat.youngs_modulus * imin /
                              (mat.density * s.area * std::pow(l, 4.0)));
  EXPECT_NEAR(freqs[0], f1, 0.02 * f1);
}

TEST(Frame3D, OutOfPlanePortalMode) {
  // A 3-D portal frame has an out-of-plane sway mode a 2-D model cannot
  // represent: check it exists and is the lowest.
  const auto mat = am::aluminum_6061();
  const auto s = af::Section3D::tube(0.02, 0.002);
  af::Frame3D f;
  const auto b1 = f.add_node(0, 0, 0);
  const auto b2 = f.add_node(0.4, 0, 0);
  const auto t1 = f.add_node(0, 0, 0.3);
  const auto t2 = f.add_node(0.4, 0, 0.3);
  f.fix_all(b1);
  f.fix_all(b2);
  f.add_beam(b1, t1, mat, s);
  f.add_beam(b2, t2, mat, s);
  f.add_beam(t1, t2, mat, s);
  f.add_mass(t1, 1.0);
  f.add_mass(t2, 1.0);
  const auto freqs = f.natural_frequencies();
  EXPECT_GT(freqs[0], 5.0);
  EXPECT_LT(freqs[0], 500.0);
  EXPECT_GT(freqs[1], freqs[0]);
}

TEST(Frame3D, StressRecoveryCantilever) {
  // sigma = M c / I at the root: M = P L, c = sqrt(A)/2 (model's estimate).
  const double l = 0.5, p = 50.0;
  const auto s = af::Section3D::rectangle(0.02, 0.02);
  const auto mat = am::aluminum_6061();
  af::Frame3D f;
  const auto a = f.add_node(0, 0, 0);
  const auto b = f.add_node(l, 0, 0);
  f.fix_all(a);
  f.add_beam(a, b, mat, s);
  an::Vector loads(f.dof_count(), 0.0);
  loads[f.global_dof(b, 1)] = p;
  const auto u = f.solve_static(loads);
  const auto stresses = f.beam_stresses(u);
  ASSERT_EQ(stresses.size(), 1u);
  const double c = std::sqrt(s.area) / 2.0;
  EXPECT_NEAR(stresses[0], p * l * c / s.iz, 0.02 * p * l * c / s.iz);
}

TEST(Frame3D, InvalidUsageThrows) {
  af::Frame3D f;
  const auto a = f.add_node(0, 0, 0);
  EXPECT_THROW(f.add_beam(a, a, am::copper(), af::Section3D::rod(0.01)),
               std::invalid_argument);
  EXPECT_THROW(f.add_mass(a, 0.0), std::invalid_argument);
  EXPECT_THROW(f.fix(a, 6), std::invalid_argument);
  f.fix_all(a);
  EXPECT_THROW(f.natural_frequencies(), std::logic_error);
}
