// Steinberg PCB fatigue and Basquin/Miner accumulation.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/fatigue.hpp"

namespace af = aeropack::fem;

TEST(Steinberg, AllowableDeflectionHandCalc) {
  // B = 8 in, h = 0.08 in, L = 2 in, C = 1, r = 1:
  // Z = 0.00022 * 8 / (0.08 * sqrt(2)) = 0.01556 in.
  const double in = 0.0254;
  const double z = af::steinberg_allowable_deflection(8.0 * in, 0.08 * in, 2.0 * in, 1.0, 1.0);
  EXPECT_NEAR(z / in, 0.00022 * 8.0 / (0.08 * std::sqrt(2.0)), 1e-6);
}

TEST(Steinberg, ThickerBoardAllowsLess) {
  // Allowable deflection shrinks with board thickness (stiffer board bends
  // the leads more for the same curvature).
  const double thin = af::steinberg_allowable_deflection(0.2, 1.6e-3, 0.03, 1.0, 1.0);
  const double thick = af::steinberg_allowable_deflection(0.2, 3.2e-3, 0.03, 1.0, 1.0);
  EXPECT_GT(thin, thick);
}

TEST(Steinberg, BgaPackagingFactorPenalizes) {
  const double dip = af::steinberg_allowable_deflection(0.2, 1.6e-3, 0.03, 1.0, 1.0);
  const double bga = af::steinberg_allowable_deflection(0.2, 1.6e-3, 0.03, 1.0, 2.25);
  EXPECT_NEAR(dip / bga, 2.25, 1e-9);
}

TEST(Steinberg, DynamicDeflectionScalesInverseFrequencySquared) {
  const double z100 = af::steinberg_dynamic_deflection(100.0, 5.0);
  const double z200 = af::steinberg_dynamic_deflection(200.0, 5.0);
  EXPECT_NEAR(z100 / z200, 4.0, 1e-9);
}

TEST(Steinberg, AssessmentPassFailBoundary) {
  // High frequency + modest response: passes easily.
  const auto good = af::steinberg_assess(0.2, 1.6e-3, 0.03, 1.0, 1.0, 400.0, 3.0);
  EXPECT_TRUE(good.acceptable);
  EXPECT_GT(good.margin, 1.0);
  // Low frequency + violent response: fails.
  const auto bad = af::steinberg_assess(0.2, 1.6e-3, 0.03, 1.0, 1.0, 40.0, 15.0);
  EXPECT_FALSE(bad.acceptable);
  EXPECT_LT(bad.margin, 1.0);
  EXPECT_GT(good.life_hours_at_20m_cycles, bad.life_hours_at_20m_cycles);
}

TEST(Basquin, EnduranceScaling) {
  // Halving stress with b = 0.1 multiplies life by 2^10 = 1024.
  const double n1 = af::basquin_cycles_to_failure(500e6, 0.1, 100e6);
  const double n2 = af::basquin_cycles_to_failure(500e6, 0.1, 50e6);
  EXPECT_NEAR(n2 / n1, std::pow(2.0, 10.0), 1.0);
}

TEST(Basquin, StressAboveCoefficientFailsImmediately) {
  EXPECT_DOUBLE_EQ(af::basquin_cycles_to_failure(100e6, 0.1, 200e6), 1.0);
  EXPECT_THROW(af::basquin_cycles_to_failure(0.0, 0.1, 1e6), std::invalid_argument);
}

TEST(MinerThreeBand, DamageScalesLinearlyWithTime) {
  const double d1 = af::miner_damage_three_band(120.0, 3600.0, 30e6, 500e6, 0.12);
  const double d2 = af::miner_damage_three_band(120.0, 7200.0, 30e6, 500e6, 0.12);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-9 * d2);
}

TEST(MinerThreeBand, HigherStressMoreDamage) {
  const double low = af::miner_damage_three_band(120.0, 3600.0, 20e6, 500e6, 0.12);
  const double high = af::miner_damage_three_band(120.0, 3600.0, 60e6, 500e6, 0.12);
  EXPECT_GT(high, 5.0 * low);
}
