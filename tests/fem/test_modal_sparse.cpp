// Dense-vs-sparse modal equivalence on the plate stack: the shift-invert
// subspace iteration must reproduce the dense Jacobi spectrum on both a
// textbook simply-supported plate and the Fig. 2 power-supply board, and be
// bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;

namespace {

af::PlateModel ss_plate() {
  af::PlateModel p(0.30, 0.20, 2e-3, am::fr4(), 10, 8);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  return p;
}

/// Fig. 2 power-supply board (same physics as the golden regression model).
af::PlateModel ps_board(double thickness, double doubler_factor) {
  af::PlateModel p(0.16, 0.10, thickness, am::fr4(), 8, 5);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);
  p.add_point_mass(0.11, 0.05, 0.09);
  if (doubler_factor > 1.0) p.add_doubler(0.03, 0.13, 0.02, 0.08, doubler_factor);
  return p;
}

void expect_paths_agree(const af::PlateModel& plate, std::size_t n_modes, double freq_rtol) {
  af::ModalOptions dense_opts, sparse_opts;
  dense_opts.n_modes = n_modes;
  dense_opts.path = af::ModalPath::Dense;
  sparse_opts.n_modes = n_modes;
  sparse_opts.path = af::ModalPath::Sparse;
  const auto dense = plate.solve_modal(dense_opts);
  const auto sparse = plate.solve_modal(sparse_opts);
  ASSERT_EQ(dense.frequencies_hz.size(), n_modes);
  ASSERT_EQ(sparse.frequencies_hz.size(), n_modes);

  an::CsrMatrix k, m;
  plate.reduced_sparse(k, m);
  const std::size_t nr = k.rows();
  // Antisymmetric modes have participation factors that are pure numerical
  // noise; compare against the largest factor, not mode-by-mode magnitude.
  double pf_scale = 0.0;
  for (std::size_t j = 0; j < n_modes; ++j)
    pf_scale = std::max(pf_scale, std::fabs(dense.participation_factors[j]));
  for (std::size_t j = 0; j < n_modes; ++j) {
    EXPECT_NEAR(sparse.frequencies_hz[j], dense.frequencies_hz[j],
                freq_rtol * dense.frequencies_hz[j])
        << "mode " << j;
    // Shapes agree up to sign: both are M-orthonormal, so |phi_s . M phi_d| = 1.
    an::Vector pd(nr);
    for (std::size_t i = 0; i < nr; ++i) pd[i] = dense.shapes(i, j);
    const an::Vector mpd = m.multiply(pd);
    double overlap = 0.0;
    for (std::size_t i = 0; i < nr; ++i) overlap += sparse.shapes(i, j) * mpd[i];
    EXPECT_NEAR(std::fabs(overlap), 1.0, 1e-6) << "mode " << j;
    EXPECT_NEAR(std::fabs(sparse.participation_factors[j]),
                std::fabs(dense.participation_factors[j]), 1e-5 * pf_scale)
        << "mode " << j;
  }
}

}  // namespace

TEST(ModalSparse, SimplySupportedPlateDenseVsSparse) {
  expect_paths_agree(ss_plate(), 6, 1e-7);
}

TEST(ModalSparse, Fig2BoardDenseVsSparse) {
  expect_paths_agree(ps_board(1.6e-3, 1.0), 6, 1e-7);
  expect_paths_agree(ps_board(2.4e-3, 2.0), 6, 1e-7);
}

TEST(ModalSparse, SparseFundamentalTracksAnalyticSolution) {
  const auto plate = ss_plate();
  af::ModalOptions opts;
  opts.n_modes = 3;
  opts.path = af::ModalPath::Sparse;
  const auto modes = plate.solve_modal(opts);
  const double analytic = af::ss_plate_frequency(0.30, 0.20, 2e-3, am::fr4(), 1, 1);
  EXPECT_NEAR(modes.frequencies_hz[0], analytic, 0.05 * analytic);
}

TEST(ModalSparse, BitIdenticalAcrossThreadCounts) {
  const std::size_t original = an::thread_count();
  const auto plate = ps_board(1.6e-3, 2.0);
  af::ModalOptions opts;
  opts.n_modes = 5;
  opts.path = af::ModalPath::Sparse;

  an::set_thread_count(1);
  const auto baseline = plate.solve_modal(opts);
  for (const std::size_t threads : {2u, 8u}) {
    an::set_thread_count(threads);
    const auto run = plate.solve_modal(opts);
    ASSERT_EQ(run.frequencies_hz.size(), baseline.frequencies_hz.size());
    for (std::size_t j = 0; j < baseline.frequencies_hz.size(); ++j) {
      EXPECT_EQ(run.frequencies_hz[j], baseline.frequencies_hz[j])
          << "threads=" << threads << " mode=" << j;
      EXPECT_EQ(run.participation_factors[j], baseline.participation_factors[j])
          << "threads=" << threads << " mode=" << j;
    }
    for (std::size_t j = 0; j < baseline.frequencies_hz.size(); ++j)
      for (std::size_t i = 0; i < baseline.free_to_full.size(); ++i)
        ASSERT_EQ(run.shapes(i, j), baseline.shapes(i, j))
            << "threads=" << threads << " mode=" << j << " dof=" << i;
  }
  an::set_thread_count(original);
}
