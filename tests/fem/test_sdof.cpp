// SDOF design formulas: transmissibility, Miles, deflections.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fem/sdof.hpp"

namespace af = aeropack::fem;

TEST(Transmissibility, UnityAtZeroFrequency) {
  EXPECT_NEAR(af::transmissibility(0.0, 100.0, 0.05), 1.0, 1e-12);
}

TEST(Transmissibility, PeakAtResonanceEqualsQ) {
  const double zeta = 0.05;
  const double t_res = af::transmissibility(100.0, 100.0, zeta);
  // At r = 1: |T| = sqrt(1 + 4 z^2) / (2 z).
  EXPECT_NEAR(t_res, std::sqrt(1.0 + 4.0 * zeta * zeta) / (2.0 * zeta), 1e-9);
}

TEST(Transmissibility, CrossoverAtSqrtTwo) {
  const double fn = 50.0;
  const double f_cross = af::isolation_start_frequency(fn);
  EXPECT_NEAR(af::transmissibility(f_cross, fn, 0.1), 1.0, 1e-9);
  EXPECT_LT(af::transmissibility(2.0 * f_cross, fn, 0.1), 1.0);
  EXPECT_GT(af::transmissibility(0.9 * f_cross, fn, 0.1), 1.0);
}

TEST(Transmissibility, MoreDampingLowersPeakRaisesHighFrequency) {
  const double light = af::transmissibility(100.0, 100.0, 0.02);
  const double heavy = af::transmissibility(100.0, 100.0, 0.2);
  EXPECT_GT(light, heavy);
  // Above crossover, damping *hurts* isolation.
  EXPECT_LT(af::transmissibility(500.0, 100.0, 0.02),
            af::transmissibility(500.0, 100.0, 0.2));
}

TEST(ResonantAmplification, LightDampingApproximation) {
  EXPECT_NEAR(af::resonant_amplification(0.05), 10.0, 0.05);
  EXPECT_THROW(af::resonant_amplification(0.0), std::invalid_argument);
  EXPECT_THROW(af::resonant_amplification(1.0), std::invalid_argument);
}

TEST(Miles, HandbookExample) {
  // fn = 100 Hz, Q = 10 (zeta = 0.05), ASD = 0.04 g^2/Hz:
  // grms = sqrt(pi/2 * 100 * 10 * 0.04) = sqrt(62.8) ~ 7.93.
  EXPECT_NEAR(af::miles_grms(100.0, 0.05, 0.04), 7.93, 0.02);
}

TEST(Miles, ScalesWithSqrtAsd) {
  const double a = af::miles_grms(80.0, 0.05, 0.01);
  const double b = af::miles_grms(80.0, 0.05, 0.04);
  EXPECT_NEAR(b, 2.0 * a, 1e-9);
}

TEST(NaturalFrequency, MatchesFormula) {
  EXPECT_NEAR(af::natural_frequency_hz(4e4, 2.5),
              std::sqrt(4e4 / 2.5) / (2.0 * std::numbers::pi), 1e-12);
}

TEST(StaticDeflection, OneHertzIsquarterMeter) {
  // delta = g / (2 pi f)^2: for 1 Hz, ~0.248 m — the classic isolator rule.
  EXPECT_NEAR(af::static_deflection(1.0), 0.2485, 0.001);
  // 25 Hz isolator: ~0.4 mm.
  EXPECT_NEAR(af::static_deflection(25.0), 0.000397, 1e-5);
}
