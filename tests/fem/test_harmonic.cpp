// Harmonic base-excitation sweeps (the Fig. 3 mechanical-filtering study).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/harmonic.hpp"
#include "fem/sdof.hpp"

namespace af = aeropack::fem;
namespace an = aeropack::numeric;

namespace {
af::FrameModel sdof_model(double k, double mass) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  m.add_ground_spring(n, af::Dof::Uy, k);
  m.add_mass(n, mass);
  return m;
}
}  // namespace

TEST(RayleighCoefficients, ReproduceTargetDamping) {
  double alpha = 0.0, beta = 0.0;
  af::rayleigh_coefficients(0.05, 50.0, 500.0, alpha, beta);
  for (double f : {50.0, 500.0}) {
    const double w = 2.0 * 3.14159265358979 * f;
    const double zeta = 0.5 * (alpha / w + beta * w);
    EXPECT_NEAR(zeta, 0.05, 1e-10);
  }
  EXPECT_THROW(af::rayleigh_coefficients(0.0, 50.0, 500.0, alpha, beta),
               std::invalid_argument);
}

TEST(HarmonicSweep, SdofPeaksNearResonanceWithQ) {
  const double k = 4e5, mass = 1.0, zeta = 0.05;
  auto m = sdof_model(k, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  const an::Vector freqs = an::linspace(0.2 * fn, 2.0 * fn, 241);
  // Anchor the Rayleigh fit at fn so the modal damping ratio is exact there.
  const auto sweep = af::harmonic_base_sweep(m, freqs, zeta, 0, af::Dof::Uy, 0.0, 1.0,
                                             0.999 * fn, 1.001 * fn);
  // Peak location and level.
  std::size_t imax = 0;
  for (std::size_t i = 1; i < sweep.amplitude.size(); ++i)
    if (sweep.amplitude[i] > sweep.amplitude[imax]) imax = i;
  EXPECT_NEAR(sweep.frequencies_hz[imax], fn, 0.03 * fn);
  EXPECT_NEAR(sweep.amplitude[imax], af::resonant_amplification(zeta), 0.6);
  // Low-frequency transmissibility ~ 1.
  EXPECT_NEAR(sweep.amplitude[0], 1.0, 0.05);
}

TEST(HarmonicSweep, IsolationAboveCrossover) {
  const double k = 1e5, mass = 4.0;  // fn ~ 25 Hz isolator
  auto m = sdof_model(k, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  const an::Vector freqs{4.0 * fn};
  const auto sweep = af::harmonic_base_sweep(m, freqs, 0.05, 0, af::Dof::Uy);
  EXPECT_LT(sweep.amplitude[0], 0.25);  // strong attenuation well above fn
}

TEST(HarmonicSweep, MatchesAnalyticTransmissibilityOffResonance) {
  const double k = 2e5, mass = 2.0, zeta = 0.08;
  auto m = sdof_model(k, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  // Anchor the Rayleigh fit at fn so c = 2 zeta m wn exactly as the
  // analytic transmissibility formula assumes.
  for (double r : {0.5, 1.5, 3.0}) {
    const double f = r * fn;
    const auto sweep = af::harmonic_base_sweep(m, {f}, zeta, 0, af::Dof::Uy, 0.0, 1.0,
                                               0.999 * fn, 1.001 * fn);
    EXPECT_NEAR(sweep.amplitude[0], af::transmissibility(f, fn, zeta), 0.01)
        << "r=" << r;
  }
}

TEST(HarmonicSweep, WatchOnConstrainedDofThrows) {
  auto m = sdof_model(1e5, 1.0);
  EXPECT_THROW(af::harmonic_base_sweep(m, {10.0}, 0.05, 0, af::Dof::Ux),
               std::invalid_argument);
}

TEST(FindPeaks, LocatesResonances) {
  af::HarmonicSweep sweep;
  sweep.frequencies_hz = {1, 2, 3, 4, 5};
  sweep.amplitude = {1.0, 3.0, 1.0, 5.0, 1.0};
  const auto peaks = af::find_peaks(sweep, 2.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1u);
  EXPECT_EQ(peaks[1], 3u);
}

TEST(TwoStageIsolation, SoftStageProtectsPayload) {
  // The paper's IRS: rack sees the full environment, the isolated sensor
  // sees a filtered one. Two-mass model: isolator (soft) under payload.
  af::FrameModel m;
  const std::size_t rack = m.add_node(0.0, 0.0);
  const std::size_t imu = m.add_node(0.0, 0.1);
  for (auto n : {rack, imu}) {
    m.fix(n, af::Dof::Ux);
    m.fix(n, af::Dof::Rz);
  }
  m.add_ground_spring(rack, af::Dof::Uy, 5e7);  // stiff rack mount ~ 500 Hz
  m.add_mass(rack, 5.0);
  m.add_spring(rack, imu, af::Dof::Uy, 3e5);  // soft isolator ~ 40 Hz
  m.add_mass(imu, 4.0);
  const an::Vector freqs{400.0};
  const auto at_rack = af::harmonic_base_sweep(m, freqs, 0.1, rack, af::Dof::Uy);
  const auto at_imu = af::harmonic_base_sweep(m, freqs, 0.1, imu, af::Dof::Uy);
  EXPECT_LT(at_imu.amplitude[0], 0.3 * at_rack.amplitude[0]);
}
