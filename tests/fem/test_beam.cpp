// Beam element matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/beam.hpp"
#include "numeric/solve_dense.hpp"

namespace af = aeropack::fem;
namespace an = aeropack::numeric;

TEST(BeamSection, RectangleProperties) {
  const auto s = af::BeamSection::rectangle(0.02, 0.04);
  EXPECT_DOUBLE_EQ(s.area, 8e-4);
  EXPECT_NEAR(s.inertia, 0.02 * std::pow(0.04, 3) / 12.0, 1e-15);
  EXPECT_THROW(af::BeamSection::rectangle(0.0, 0.1), std::invalid_argument);
}

TEST(BeamSection, TubeProperties) {
  const auto s = af::BeamSection::tube(0.05, 0.002);
  EXPECT_GT(s.area, 0.0);
  EXPECT_GT(s.inertia, 0.0);
  EXPECT_THROW(af::BeamSection::tube(0.05, 0.03), std::invalid_argument);
}

TEST(BeamStiffness, SymmetricAndSingularAsFreeBody) {
  const auto s = af::BeamSection::rectangle(0.01, 0.01);
  const an::Matrix k = af::beam_stiffness_local(70e9, s, 0.5);
  EXPECT_LT(k.asymmetry(), 1e-6 * k.norm());
  // Rigid-body translation produces zero force.
  an::Vector rigid{1.0, 0.0, 0.0, 1.0, 0.0, 0.0};
  const an::Vector f = k * rigid;
  for (double v : f) EXPECT_NEAR(v, 0.0, 1e-3);
}

TEST(BeamStiffness, CantileverTipDeflection) {
  // Tip force P on cantilever: delta = P L^3 / (3 E I). Single element is
  // exact for Euler-Bernoulli.
  const double e = 70e9, l = 0.5, p = 100.0;
  const auto s = af::BeamSection::rectangle(0.01, 0.01);
  const an::Matrix k = af::beam_stiffness_local(e, s, l);
  // Fix node 1 (DOFs 0-2), load v2: reduced 3x3 system on (u2, v2, t2).
  an::Matrix kr(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) kr(i, j) = k(3 + i, 3 + j);
  const an::Vector u = an::solve(kr, {0.0, p, 0.0});
  EXPECT_NEAR(u[1], p * l * l * l / (3.0 * e * s.inertia), 1e-12);
}

TEST(BeamMass, TotalMassPreserved) {
  const double rho = 2700.0, l = 0.4;
  const auto s = af::BeamSection::rectangle(0.01, 0.02);
  const an::Matrix m = af::beam_mass_local(rho, s, l);
  // Sum of translational (v) entries against a rigid unit translation gives
  // the element mass.
  an::Vector rigid{0.0, 1.0, 0.0, 0.0, 1.0, 0.0};
  const an::Vector mv = m * rigid;
  double total = 0.0;
  for (std::size_t i : {1u, 4u}) total += mv[i];
  EXPECT_NEAR(total, rho * s.area * l, 1e-9);
}

TEST(BeamTransformation, NinetyDegreesSwapsAxes) {
  const an::Matrix t = af::beam_transformation(M_PI / 2.0);
  // Local x maps to global y.
  an::Vector g{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // global ux at node 1
  const an::Vector local = t * g;
  EXPECT_NEAR(local[0], 0.0, 1e-12);
  EXPECT_NEAR(local[1], -1.0, 1e-12);
}

TEST(BeamTransformation, OrthogonalMatrix) {
  const an::Matrix t = af::beam_transformation(0.7);
  const an::Matrix id = t * t.transposed();
  EXPECT_LT((id - an::Matrix::identity(6)).norm(), 1e-12);
}
