// Time-domain base-excitation (virtual shaker).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fem/sdof.hpp"
#include "fem/shock.hpp"
#include "fem/transient.hpp"

namespace af = aeropack::fem;

namespace {
af::FrameModel sdof(double k, double mass) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  m.add_ground_spring(n, af::Dof::Uy, k);
  m.add_mass(n, mass);
  return m;
}
}  // namespace

TEST(BaseTransient, SineDwellReachesSteadyTransmissibility) {
  const double k = 4e5, mass = 1.0, zeta = 0.05;
  auto m = sdof(k, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  const double f = 0.6 * fn;
  const double w = 2.0 * std::numbers::pi * f;
  const auto input = [w](double t) { return std::sin(w * t); };
  const auto res = af::base_excitation_transient(m, input, 40.0 / f, 1.0 / (40.0 * f), zeta,
                                                 0, af::Dof::Uy, 0.0, 1.0, 0.999 * fn,
                                                 1.001 * fn);
  // Steady peak of the absolute acceleration = |T(f)| * input amplitude.
  double steady_peak = 0.0;
  for (std::size_t i = res.acceleration.size() / 2; i < res.acceleration.size(); ++i)
    steady_peak = std::max(steady_peak, std::fabs(res.acceleration[i]));
  EXPECT_NEAR(steady_peak, af::transmissibility(f, fn, zeta), 0.05);
}

TEST(BaseTransient, HalfSinePeakMatchesSrs) {
  const double k = 5e5, mass = 1.2, zeta = 0.05;
  auto m = sdof(k, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  const double peak = 100.0, dur = 0.011;
  const auto pulse = af::half_sine_pulse(peak, dur);
  const auto res = af::base_excitation_transient(m, pulse, dur + 0.5, 1e-4, zeta, 0,
                                                 af::Dof::Uy, 0.0, 1.0, 0.999 * fn,
                                                 1.001 * fn);
  const auto srs = af::shock_response_spectrum(pulse, dur, {fn}, zeta);
  EXPECT_NEAR(res.peak_acceleration, srs[0], 0.05 * srs[0]);
}

TEST(BaseTransient, StartsFromRest) {
  auto m = sdof(1e5, 1.0);
  const auto res = af::base_excitation_transient(
      m, [](double) { return 0.0; }, 0.1, 1e-3, 0.05, 0, af::Dof::Uy);
  EXPECT_DOUBLE_EQ(res.peak_acceleration, 0.0);
  EXPECT_DOUBLE_EQ(res.peak_displacement, 0.0);
}

TEST(BaseTransient, InvalidInputsThrow) {
  auto m = sdof(1e5, 1.0);
  EXPECT_THROW(af::base_excitation_transient(m, nullptr, 1.0, 1e-3, 0.05, 0, af::Dof::Uy),
               std::invalid_argument);
  EXPECT_THROW(af::base_excitation_transient(
                   m, [](double) { return 0.0; }, 1e-3, 1e-2, 0.05, 0, af::Dof::Uy),
               std::invalid_argument);
  EXPECT_THROW(af::base_excitation_transient(
                   m, [](double) { return 0.0; }, 1.0, 1e-3, 0.05, 0, af::Dof::Ux),
               std::invalid_argument);
}

TEST(BaseTransient, IsolatorCutsShockThrough) {
  // Two-mass chain: isolated payload sees far less of a 50 g / 6 ms shock.
  af::FrameModel m;
  const std::size_t rack = m.add_node(0.0, 0.0);
  const std::size_t payload = m.add_node(0.0, 0.1);
  for (auto n : {rack, payload}) {
    m.fix(n, af::Dof::Ux);
    m.fix(n, af::Dof::Rz);
  }
  m.add_ground_spring(rack, af::Dof::Uy, 5e7);
  m.add_mass(rack, 5.0);
  m.add_spring(rack, payload, af::Dof::Uy, 5e4);  // ~18 Hz isolator
  m.add_mass(payload, 4.0);
  const auto pulse = af::half_sine_pulse(50.0 * 9.80665, 0.006);
  const auto at_rack =
      af::base_excitation_transient(m, pulse, 0.3, 5e-5, 0.1, rack, af::Dof::Uy);
  const auto at_payload =
      af::base_excitation_transient(m, pulse, 0.3, 5e-5, 0.1, payload, af::Dof::Uy);
  EXPECT_LT(at_payload.peak_acceleration, 0.5 * at_rack.peak_acceleration);
}
