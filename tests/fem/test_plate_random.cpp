// Plate-level random vibration assessment.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fem/plate_random.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;

namespace {
af::PlateModel pcb() {
  af::PlateModel p(0.2, 0.15, 1.6e-3, am::fr4(), 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  p.add_smeared_mass(3.0);
  return p;
}
}  // namespace

TEST(PlateRandom, CenterComponentAssessed) {
  const auto plate = pcb();
  const auto a = af::assess_plate_random(plate, af::do160_curve_c1(), 0.04, 0.10, 0.075,
                                         0.03);
  EXPECT_GT(a.response_grms, 0.0);
  EXPECT_GT(a.dominant_frequency, 50.0);
  EXPECT_GT(a.modes_used, 2u);
  EXPECT_GT(a.fatigue.margin, 0.0);
}

TEST(PlateRandom, CenterWorseThanCorner) {
  // Fundamental mode peaks at the center: a part there sees more motion
  // than one near a supported edge.
  const auto plate = pcb();
  const auto center = af::assess_plate_random(plate, af::do160_curve_d1(), 0.04, 0.10,
                                              0.075, 0.03);
  const auto near_edge = af::assess_plate_random(plate, af::do160_curve_d1(), 0.04, 0.035,
                                                 0.03, 0.03);
  EXPECT_GT(center.response_grms, near_edge.response_grms);
}

TEST(PlateRandom, HarsherCurveWorseMargin) {
  const auto plate = pcb();
  const auto c1 = af::assess_plate_random(plate, af::do160_curve_c1(), 0.04, 0.10, 0.075,
                                          0.03);
  const auto d1 = af::assess_plate_random(plate, af::do160_curve_d1(), 0.04, 0.10, 0.075,
                                          0.03);
  EXPECT_GT(c1.fatigue.margin, d1.fatigue.margin);
}

TEST(PlateRandom, BgaPenalizedVsDip) {
  const auto plate = pcb();
  const auto dip = af::assess_plate_random(plate, af::do160_curve_d1(), 0.04, 0.10, 0.075,
                                           0.03, 1.0);
  const auto bga = af::assess_plate_random(plate, af::do160_curve_d1(), 0.04, 0.10, 0.075,
                                           0.03, 2.25);
  EXPECT_GT(dip.fatigue.margin, bga.fatigue.margin);
}

TEST(PlateRandom, StiffeningImprovesMargin) {
  // The design loop: thicker board -> higher modes -> less ASD + less
  // deflection -> larger Steinberg margin.
  af::PlateModel thin(0.2, 0.15, 1.2e-3, am::fr4(), 6, 5);
  thin.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  thin.add_smeared_mass(3.0);
  af::PlateModel thick(0.2, 0.15, 2.4e-3, am::fr4(), 6, 5);
  thick.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  thick.add_smeared_mass(3.0);
  const auto a = af::assess_plate_random(thin, af::do160_curve_d1(), 0.04, 0.10, 0.075, 0.03);
  const auto b = af::assess_plate_random(thick, af::do160_curve_d1(), 0.04, 0.10, 0.075, 0.03);
  EXPECT_GT(b.fatigue.margin, a.fatigue.margin);
}

TEST(PlateRandom, SupportedNodeRejected) {
  const auto plate = pcb();
  EXPECT_THROW(af::assess_plate_random(plate, af::do160_curve_c1(), 0.04, 0.0, 0.0, 0.03),
               std::invalid_argument);
  EXPECT_THROW(af::assess_plate_random(plate, af::do160_curve_c1(), 0.0, 0.1, 0.075, 0.03),
               std::invalid_argument);
}
