// ASD curves (DO-160) and modal random-vibration response.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/random_vibration.hpp"
#include "fem/sdof.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;

TEST(AsdCurve, GrmsOfFlatSpectrum) {
  // Flat 0.01 g^2/Hz over 20..2000 Hz: grms = sqrt(0.01 * 1980) ~ 4.45.
  af::AsdCurve flat("flat", {20.0, 2000.0}, {0.01, 0.01});
  EXPECT_NEAR(flat.grms(), std::sqrt(0.01 * 1980.0), 0.01);
}

TEST(AsdCurve, ScaledChangesGrmsBySqrt) {
  const auto c = af::do160_curve_c1();
  const auto c4 = c.scaled(4.0);
  EXPECT_NEAR(c4.grms(), 2.0 * c.grms(), 1e-6);
  EXPECT_THROW(c.scaled(0.0), std::invalid_argument);
}

TEST(Do160Curves, SeverityOrdering) {
  // D1 (severe zone) > B1 (fuselage) > C1 (instrument panel).
  const double gb = af::do160_curve_b1().grms();
  const double gc = af::do160_curve_c1().grms();
  const double gd = af::do160_curve_d1().grms();
  EXPECT_GT(gd, gb);
  EXPECT_GT(gb, gc);
  // All in plausible ranges (~1-8 grms).
  EXPECT_GT(gc, 0.5);
  EXPECT_LT(gd, 10.0);
}

TEST(Do160Curves, CurveC1PlateauLevel) {
  const auto c1 = af::do160_curve_c1();
  EXPECT_NEAR(c1(100.0), 0.002, 1e-4);
  EXPECT_LT(c1(2000.0), c1(100.0));
}

TEST(NavySpectrum, HitsRequestedGrms) {
  const auto s = af::navy_ps_spectrum(6.0);
  EXPECT_NEAR(s.grms(), 6.0, 0.01);
}

TEST(RandomResponse, SdofMatchesMiles) {
  // Spring-mass model: the modal method must reduce exactly to Miles.
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  const double k = 5e5, mass = 2.0;
  m.add_ground_spring(n, af::Dof::Uy, k);
  m.add_mass(n, mass);
  const double fn = af::natural_frequency_hz(k, mass);
  af::AsdCurve flat("flat", {10.0, 2000.0}, {0.01, 0.01});
  const auto res = af::random_response(m, flat, 0.05, n, af::Dof::Uy);
  EXPECT_NEAR(res.response_grms, af::miles_grms(fn, 0.05, 0.01), 0.01);
  EXPECT_NEAR(res.three_sigma_g, 3.0 * res.response_grms, 1e-12);
}

TEST(RandomResponse, OutOfBandModeContributesNothing) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  m.add_ground_spring(n, af::Dof::Uy, 1e3);  // fn ~ 3.6 Hz, below 10 Hz band
  m.add_mass(n, 2.0);
  af::AsdCurve flat("flat", {10.0, 2000.0}, {0.01, 0.01});
  const auto res = af::random_response(m, flat, 0.05, n, af::Dof::Uy);
  EXPECT_DOUBLE_EQ(res.response_grms, 0.0);
}

TEST(RandomResponse, InvalidDampingThrows) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.add_ground_spring(n, af::Dof::Uy, 1e3);
  m.add_mass(n, 1.0);
  af::AsdCurve flat("flat", {10.0, 2000.0}, {0.01, 0.01});
  EXPECT_THROW(af::random_response(m, flat, 0.0, n, af::Dof::Uy), std::invalid_argument);
}

TEST(RandomResponse, CantileverBeamMultiMode) {
  af::FrameModel m;
  const auto mat = am::aluminum_6061();
  const auto s = af::BeamSection::rectangle(0.02, 0.003);
  std::size_t prev = m.add_node(0.0, 0.0);
  m.fix_all(prev);
  for (int i = 1; i <= 6; ++i) {
    const std::size_t node = m.add_node(0.05 * i, 0.0);
    m.add_beam(prev, node, mat, s);
    prev = node;
  }
  const auto res =
      af::random_response(m, af::do160_curve_d1(), 0.04, prev, af::Dof::Uy, 0.0, 1.0, 6);
  EXPECT_GT(res.response_grms, 0.0);
  EXPECT_GE(res.modes.size(), 2u);
  // RSS combination is self-consistent across the per-mode contributions.
  double sum_sq = 0.0;
  for (const auto& mode : res.modes) {
    EXPECT_GE(mode.grms_contribution, 0.0);
    sum_sq += mode.grms_contribution * mode.grms_contribution;
  }
  EXPECT_NEAR(std::sqrt(sum_sq), res.response_grms, 1e-9);
}
