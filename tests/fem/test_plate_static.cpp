// Plate static pressure / quasi-static g-loading.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/fatigue.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;

TEST(PlateStatic, SimplySupportedUniformPressureMatchesNavier) {
  // Square SS plate under uniform q: w_max = 0.00406 q a^4 / D.
  const auto al = am::aluminum_6061();
  const double a = 0.2, t = 2e-3, q = 1000.0;
  af::PlateModel p(a, a, t, al, 8, 8);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const auto u = p.solve_static_pressure(q);
  double w_max = 0.0;
  for (std::size_t n = 0; n < p.node_count(); ++n)
    w_max = std::max(w_max, std::fabs(u[3 * n]));
  const double d = af::plate_rigidity(al, t);
  EXPECT_NEAR(w_max, 0.00406 * q * std::pow(a, 4.0) / d, 0.05 * w_max);
}

TEST(PlateStatic, ClampedPlateDeflectsLess) {
  const auto fr4 = am::fr4();
  af::PlateModel ss(0.2, 0.15, 1.6e-3, fr4, 8, 6);
  ss.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  af::PlateModel cl(0.2, 0.15, 1.6e-3, fr4, 8, 6);
  cl.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  const auto us = ss.solve_static_pressure(500.0);
  const auto uc = cl.solve_static_pressure(500.0);
  double ws = 0.0, wc = 0.0;
  for (std::size_t n = 0; n < ss.node_count(); ++n) {
    ws = std::max(ws, std::fabs(us[3 * n]));
    wc = std::max(wc, std::fabs(uc[3 * n]));
  }
  EXPECT_LT(wc, 0.5 * ws);
}

TEST(PlateStatic, DeflectionLinearInPressure) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const auto u1 = p.solve_static_pressure(100.0);
  const auto u2 = p.solve_static_pressure(200.0);
  for (std::size_t i = 0; i < u1.size(); ++i) EXPECT_NEAR(u2[i], 2.0 * u1[i], 1e-12);
}

TEST(PlateStatic, NineGDeflectionWellUnderSteinbergAllowable) {
  // The paper's 9 g case: a populated avionics board barely moves compared
  // to the vibration allowable — quasi-static acceleration is not the
  // board-bending driver (vibration is).
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  p.add_smeared_mass(3.0);
  const double w9g = p.max_deflection_under_g(9.0);
  EXPECT_GT(w9g, 0.0);
  const double allowable = af::steinberg_allowable_deflection(0.2, 1.6e-3, 0.03, 1.0, 1.0);
  EXPECT_LT(w9g, allowable);
}

TEST(PlateStatic, GSignIrrelevant) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  EXPECT_DOUBLE_EQ(p.max_deflection_under_g(9.0), p.max_deflection_under_g(-9.0));
}

TEST(PlateStress, SimplySupportedCenterMomentMatchesNavier) {
  // Square SS plate: M_max = 0.0479 q a^2 at the center; sigma = 6 M / t^2.
  const auto al = am::aluminum_6061();
  const double a = 0.2, t = 2e-3, q = 2000.0;
  af::PlateModel p(a, a, t, al, 10, 10);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const auto u = p.solve_static_pressure(q);
  const double sigma = p.max_bending_stress(u);
  const double sigma_exact = 6.0 * 0.0479 * q * a * a / (t * t);
  EXPECT_NEAR(sigma, sigma_exact, 0.08 * sigma_exact);
}

TEST(PlateStress, ScalesLinearlyWithPressure) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const double s1 = p.max_bending_stress(p.solve_static_pressure(100.0));
  const double s2 = p.max_bending_stress(p.solve_static_pressure(300.0));
  EXPECT_NEAR(s2 / s1, 3.0, 1e-6);
}

TEST(PlateStress, NineGStressFarBelowYield) {
  // The paper's 9 g case on a populated board: stresses are tiny compared to
  // the laminate allowable — consistent with the quasi-static test passing.
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  p.add_smeared_mass(3.0);
  const double pressure = p.total_mass() / (0.2 * 0.15) * 9.0 * 9.80665;
  const double sigma = p.max_bending_stress(p.solve_static_pressure(pressure));
  EXPECT_LT(sigma, 0.05 * fr4.yield_strength);
}

TEST(PlateStress, DisplacementSizeChecked) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 4, 4);
  EXPECT_THROW(p.max_bending_stress(aeropack::numeric::Vector(5, 0.0)),
               std::invalid_argument);
}
