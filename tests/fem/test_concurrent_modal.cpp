// Concurrent sparse modal solves on isolated ExecutionContexts (TSan-gated
// under the fem label): two shift-invert solves driven from two distinct
// std::threads, each on its own context, must be data-race free and
// bit-identical to the serial runs.
#include <gtest/gtest.h>

#include <thread>

#include "exec/context.hpp"
#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;
using aeropack::ExecutionConfig;
using aeropack::ExecutionContext;

namespace {

/// Fig. 2 power-supply board with the heavy component at `mass_x`.
af::PlateModel board(double mass_x) {
  af::PlateModel p(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(mass_x, 0.05, 0.18);
  p.add_doubler(0.03, 0.13, 0.02, 0.08, 1.8);
  return p;
}

af::ModalOptions sparse_opts() {
  af::ModalOptions opts;
  opts.n_modes = 6;
  opts.path = af::ModalPath::Sparse;
  return opts;
}

void expect_modes_bit_identical(const af::ReducedModes& got, const af::ReducedModes& want,
                                const char* label) {
  ASSERT_EQ(got.eigenvalues.size(), want.eigenvalues.size()) << label;
  for (std::size_t j = 0; j < got.eigenvalues.size(); ++j) {
    ASSERT_EQ(got.eigenvalues[j], want.eigenvalues[j]) << label << ", mode " << j;
    ASSERT_EQ(got.frequencies_hz[j], want.frequencies_hz[j]) << label << ", mode " << j;
  }
  ASSERT_EQ(got.shapes.rows(), want.shapes.rows()) << label;
  for (std::size_t j = 0; j < got.shapes.cols(); ++j)
    for (std::size_t i = 0; i < got.shapes.rows(); ++i)
      ASSERT_EQ(got.shapes(i, j), want.shapes(i, j)) << label << " shape (" << i << "," << j << ")";
}

}  // namespace

TEST(ConcurrentModal, TwoSparseSolvesMatchSerialBitForBit) {
  an::CsrMatrix ka, ma, kb, mb;
  board(0.05).reduced_sparse(ka, ma);
  board(0.11).reduced_sparse(kb, mb);

  ExecutionConfig cfg;
  cfg.threads = 2;
  af::ReducedModes ref_a, ref_b;
  {
    ExecutionContext ctx(cfg);
    ref_a = af::solve_reduced_modes(ctx, ka, ma, sparse_opts());
  }
  {
    ExecutionContext ctx(cfg);
    ref_b = af::solve_reduced_modes(ctx, kb, mb, sparse_opts());
  }
  EXPECT_TRUE(ref_a.used_sparse);

  for (int round = 0; round < 3; ++round) {
    af::ReducedModes got_a, got_b;
    std::thread ta([&] {
      ExecutionContext ctx(cfg);
      got_a = af::solve_reduced_modes(ctx, ka, ma, sparse_opts());
    });
    std::thread tb([&] {
      ExecutionContext ctx(cfg);
      got_b = af::solve_reduced_modes(ctx, kb, mb, sparse_opts());
    });
    ta.join();
    tb.join();
    expect_modes_bit_identical(got_a, ref_a, "board A");
    expect_modes_bit_identical(got_b, ref_b, "board B");
  }
}

TEST(ConcurrentModal, ContextSolveMatchesUnboundProcessSolve) {
  // The ambient (unbound) path and a 1-thread context must produce the same
  // bits — the refactor's "default context preserves today's behavior"
  // contract, applied to the sparse modal stack.
  an::CsrMatrix k, m;
  board(0.08).reduced_sparse(k, m);
  const af::ReducedModes unbound = af::solve_reduced_modes(k, m, sparse_opts());
  ExecutionContext ctx;  // 1 thread, dormant telemetry
  const af::ReducedModes bound = af::solve_reduced_modes(ctx, k, m, sparse_opts());
  expect_modes_bit_identical(bound, unbound, "1-thread context vs unbound");
}
