// Frame model assembly, statics, modal analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fem/frame.hpp"
#include "fem/sdof.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;

namespace {
/// Cantilever of n elements along x.
af::FrameModel cantilever(std::size_t n, double length, const af::BeamSection& s) {
  af::FrameModel m;
  const auto mat = am::aluminum_6061();
  std::size_t prev = m.add_node(0.0, 0.0);
  m.fix_all(prev);
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t node = m.add_node(length * static_cast<double>(i) / n, 0.0);
    m.add_beam(prev, node, mat, s);
    prev = node;
  }
  return m;
}
}  // namespace

TEST(FrameModel, StaticCantileverTipDeflection) {
  const double l = 0.5;
  const auto s = af::BeamSection::rectangle(0.02, 0.005);
  auto m = cantilever(4, l, s);
  aeropack::numeric::Vector loads(m.dof_count(), 0.0);
  const std::size_t tip = m.node_count() - 1;
  loads[m.global_dof(tip, af::Dof::Uy)] = -50.0;
  const auto u = m.solve_static(loads);
  const double e = am::aluminum_6061().youngs_modulus;
  const double expected = -50.0 * l * l * l / (3.0 * e * s.inertia);
  EXPECT_NEAR(u[m.global_dof(tip, af::Dof::Uy)], expected, 1e-3 * std::fabs(expected));
}

TEST(FrameModel, CantileverFundamentalFrequencyMatchesAnalytic) {
  // f1 = (1.875^2 / 2 pi) sqrt(E I / (rho A L^4)).
  const double l = 0.4;
  const auto s = af::BeamSection::rectangle(0.02, 0.004);
  auto m = cantilever(8, l, s);
  const auto modes = m.solve_modal(0.0, 1.0);
  const auto mat = am::aluminum_6061();
  const double beta = 1.8751040687;
  const double f1 = beta * beta / (2.0 * std::numbers::pi) *
                    std::sqrt(mat.youngs_modulus * s.inertia /
                              (mat.density * s.area * std::pow(l, 4.0)));
  EXPECT_NEAR(modes.frequencies_hz[0], f1, 0.01 * f1);
}

TEST(FrameModel, SpringMassMatchesSdof) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  m.add_ground_spring(n, af::Dof::Uy, 4e4);
  m.add_mass(n, 2.5);
  const auto modes = m.solve_modal();
  EXPECT_NEAR(modes.frequencies_hz[0], af::natural_frequency_hz(4e4, 2.5), 1e-6);
}

TEST(FrameModel, EffectiveMassSumsToTotalForSdof) {
  af::FrameModel m;
  const std::size_t n = m.add_node(0.0, 0.0);
  m.fix(n, af::Dof::Ux);
  m.fix(n, af::Dof::Rz);
  m.add_ground_spring(n, af::Dof::Uy, 1e5);
  m.add_mass(n, 3.0);
  const auto modes = m.solve_modal(0.0, 1.0);
  EXPECT_NEAR(modes.effective_masses[0], 3.0, 1e-6);
}

TEST(FrameModel, TwoMassChainEigenvalues) {
  af::FrameModel m;
  const std::size_t a = m.add_node(0.0, 0.0);
  const std::size_t b = m.add_node(0.0, 1.0);
  for (auto n : {a, b}) {
    m.fix(n, af::Dof::Ux);
    m.fix(n, af::Dof::Rz);
  }
  const double k = 1000.0, mass = 1.0;
  m.add_ground_spring(a, af::Dof::Uy, k);
  m.add_spring(a, b, af::Dof::Uy, k);
  m.add_mass(a, mass);
  m.add_mass(b, mass);
  const auto modes = m.solve_modal(0.0, 1.0);
  const double w1 = std::sqrt(k / mass * (3.0 - std::sqrt(5.0)) / 2.0);
  const double w2 = std::sqrt(k / mass * (3.0 + std::sqrt(5.0)) / 2.0);
  EXPECT_NEAR(modes.frequencies_hz[0], w1 / (2.0 * std::numbers::pi), 1e-6);
  EXPECT_NEAR(modes.frequencies_hz[1], w2 / (2.0 * std::numbers::pi), 1e-6);
}

TEST(FrameModel, TotalMassAccounting) {
  const auto s = af::BeamSection::rectangle(0.01, 0.01);
  auto m = cantilever(4, 1.0, s);
  m.add_mass(2, 1.5);
  EXPECT_NEAR(m.total_mass(), am::aluminum_6061().density * s.area * 1.0 + 1.5, 1e-9);
}

TEST(FrameModel, InvalidUsageThrows) {
  af::FrameModel m;
  const std::size_t a = m.add_node(0.0, 0.0);
  EXPECT_THROW(m.add_beam(a, a, am::aluminum_6061(), af::BeamSection::rectangle(0.01, 0.01)),
               std::invalid_argument);
  EXPECT_THROW(m.add_beam(a, 5, am::aluminum_6061(), af::BeamSection::rectangle(0.01, 0.01)),
               std::out_of_range);
  EXPECT_THROW(m.add_mass(a, -1.0), std::invalid_argument);
  EXPECT_THROW(m.add_ground_spring(a, af::Dof::Uy, 0.0), std::invalid_argument);
}

TEST(FrameModel, AllFixedThrows) {
  af::FrameModel m;
  const std::size_t a = m.add_node(0.0, 0.0);
  m.fix_all(a);
  aeropack::numeric::Matrix k, mm;
  std::vector<std::size_t> map;
  EXPECT_THROW(m.reduced_system(k, mm, map), std::logic_error);
}

// Property: mesh refinement converges the cantilever frequency monotonically
// from above (consistent mass overestimates stiffness-to-mass slightly).
class CantileverConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CantileverConvergence, FrequencyWithinTwoPercent) {
  const std::size_t n = GetParam();
  const double l = 0.3;
  const auto s = af::BeamSection::rectangle(0.015, 0.003);
  auto m = cantilever(n, l, s);
  const auto modes = m.solve_modal(0.0, 1.0);
  const auto mat = am::aluminum_6061();
  const double beta = 1.8751040687;
  const double f1 = beta * beta / (2.0 * std::numbers::pi) *
                    std::sqrt(mat.youngs_modulus * s.inertia /
                              (mat.density * s.area * std::pow(l, 4.0)));
  EXPECT_NEAR(modes.frequencies_hz[0], f1, 0.02 * f1);
}

INSTANTIATE_TEST_SUITE_P(Meshes, CantileverConvergence, ::testing::Values(2u, 4u, 8u, 16u));
