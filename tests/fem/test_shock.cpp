// Shock response spectra and quasi-static acceleration checks.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/shock.hpp"

namespace af = aeropack::fem;
namespace an = aeropack::numeric;

TEST(Pulses, HalfSineShape) {
  const auto p = af::half_sine_pulse(100.0, 0.011);
  EXPECT_DOUBLE_EQ(p(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(p(0.02), 0.0);
  EXPECT_NEAR(p(0.0055), 100.0, 1e-9);
  EXPECT_THROW(af::half_sine_pulse(1.0, 0.0), std::invalid_argument);
}

TEST(Pulses, SawtoothShape) {
  const auto p = af::sawtooth_pulse(50.0, 0.01);
  EXPECT_NEAR(p(0.01), 50.0, 1e-9);
  EXPECT_NEAR(p(0.005), 25.0, 1e-9);
}

TEST(Srs, HighFrequencyAsymptoteEqualsPeak) {
  // fn >> 1/duration: the oscillator tracks the input; SRS -> pulse peak.
  const double peak = 100.0, dur = 0.011;
  const auto pulse = af::half_sine_pulse(peak, dur);
  const auto srs = af::shock_response_spectrum(pulse, dur, {2000.0}, 0.05);
  EXPECT_NEAR(srs[0], peak, 0.05 * peak);
}

TEST(Srs, MidFrequencyAmplification) {
  // Half-sine SRS peaks ~1.7-1.8x input near fn ~ 0.8/duration (Q >= 10).
  const double peak = 100.0, dur = 0.011;
  const auto pulse = af::half_sine_pulse(peak, dur);
  const double f_peak = 0.8 / dur;
  const auto srs = af::shock_response_spectrum(pulse, dur, {f_peak}, 0.05);
  EXPECT_GT(srs[0], 1.5 * peak);
  EXPECT_LT(srs[0], 2.0 * peak);
}

TEST(Srs, LowFrequencyRollsOff) {
  const double peak = 100.0, dur = 0.011;
  const auto pulse = af::half_sine_pulse(peak, dur);
  const auto srs = af::shock_response_spectrum(pulse, dur, {5.0, 2000.0}, 0.05);
  EXPECT_LT(srs[0], 0.5 * srs[1]);
}

TEST(Srs, MonotoneSetupChecks) {
  const auto pulse = af::half_sine_pulse(1.0, 0.01);
  EXPECT_THROW(af::shock_response_spectrum(pulse, 0.01, {100.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(af::shock_response_spectrum(pulse, 0.01, {0.0}, 0.05),
               std::invalid_argument);
}

TEST(QuasiStatic, NineGBracketStress) {
  // 5 kg on a 5 cm arm with S = 2e-7 m^3 at 9 g:
  // M = 5 * 9 * 9.807 * 0.05 = 22.06 N m; sigma = 110.3 MPa.
  const double s = af::quasi_static_cantilever_stress(9.0, 5.0, 0.05, 2e-7);
  EXPECT_NEAR(s, 5.0 * 9.0 * 9.80665 * 0.05 / 2e-7, 1.0);
  EXPECT_LT(s, 276e6);  // within 6061-T6 yield: the paper's test passes
}

TEST(QuasiStatic, SignIndependent) {
  EXPECT_DOUBLE_EQ(af::quasi_static_cantilever_stress(9.0, 1.0, 0.1, 1e-6),
                   af::quasi_static_cantilever_stress(-9.0, 1.0, 0.1, 1e-6));
  EXPECT_THROW(af::quasi_static_cantilever_stress(9.0, 0.0, 0.1, 1e-6),
               std::invalid_argument);
}
