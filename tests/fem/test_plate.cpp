// ACM plate element and PCB plate model.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fem/plate.hpp"
#include "materials/solid.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;

TEST(PlateRigidity, ClosedForm) {
  const auto al = am::aluminum_6061();
  const double d = af::plate_rigidity(al, 2e-3);
  const double expected = al.youngs_modulus * 8e-9 /
                          (12.0 * (1.0 - al.poisson_ratio * al.poisson_ratio));
  EXPECT_NEAR(d, expected, 1e-9 * expected);
  EXPECT_THROW(af::plate_rigidity(al, 0.0), std::invalid_argument);
}

TEST(AcmElement, StiffnessSymmetricWithRigidBodyNullspace) {
  const an::Matrix k = af::acm_plate_stiffness(0.1, 0.08, 50.0, 0.3);
  EXPECT_LT(k.asymmetry(), 1e-8 * k.norm());
  // Rigid translation w = 1 everywhere (wx = wy = 0): zero strain energy.
  an::Vector w(12, 0.0);
  for (std::size_t n = 0; n < 4; ++n) w[3 * n] = 1.0;
  const an::Vector f = k * w;
  for (double v : f) EXPECT_NEAR(v, 0.0, 1e-6 * k.norm());
}

TEST(AcmElement, TiltNullspace) {
  // Rigid tilt w = x: w = x_i at corners, wx = 1, wy = 0.
  const double a = 0.1, b = 0.08;
  const an::Matrix k = af::acm_plate_stiffness(a, b, 50.0, 0.3);
  const double xs[4] = {0.0, a, a, 0.0};
  an::Vector w(12, 0.0);
  for (std::size_t n = 0; n < 4; ++n) {
    w[3 * n] = xs[n];
    w[3 * n + 1] = 1.0;
  }
  const an::Vector f = k * w;
  for (double v : f) EXPECT_NEAR(v, 0.0, 1e-6 * k.norm());
}

TEST(AcmElement, MassPreservesTotal) {
  const double a = 0.1, b = 0.08, mpa = 3.2;
  const an::Matrix m = af::acm_plate_mass(a, b, mpa);
  an::Vector ones(12, 0.0);
  for (std::size_t n = 0; n < 4; ++n) ones[3 * n] = 1.0;
  const an::Vector mv = m * ones;
  double total = 0.0;
  for (std::size_t n = 0; n < 4; ++n) total += mv[3 * n];
  EXPECT_NEAR(total, mpa * a * b, 1e-9);
}

TEST(PlateModel, SimplySupportedFundamentalMatchesAnalytic) {
  const auto al = am::aluminum_6061();
  af::PlateModel plate(0.3, 0.2, 2e-3, al, 8, 6);
  plate.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const double f_fem = plate.fundamental_frequency();
  const double f_exact = af::ss_plate_frequency(0.3, 0.2, 2e-3, al, 1, 1);
  EXPECT_NEAR(f_fem, f_exact, 0.03 * f_exact);
}

TEST(PlateModel, HigherModesOrderedAndClose) {
  const auto al = am::aluminum_6061();
  af::PlateModel plate(0.24, 0.24, 1.5e-3, al, 8, 8);
  plate.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const auto res = plate.solve_modal();
  const double f11 = af::ss_plate_frequency(0.24, 0.24, 1.5e-3, al, 1, 1);
  const double f21 = af::ss_plate_frequency(0.24, 0.24, 1.5e-3, al, 2, 1);
  EXPECT_NEAR(res.frequencies_hz[0], f11, 0.03 * f11);
  // Modes 2 and 3 are the degenerate (2,1)/(1,2) pair on a square plate.
  EXPECT_NEAR(res.frequencies_hz[1], f21, 0.05 * f21);
  EXPECT_NEAR(res.frequencies_hz[2], f21, 0.05 * f21);
}

TEST(PlateModel, ClampedStifferThanSimplySupported) {
  const auto fr4 = am::fr4();
  af::PlateModel ss(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  ss.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  af::PlateModel cl(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  cl.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  EXPECT_GT(cl.fundamental_frequency(), 1.4 * ss.fundamental_frequency());
}

TEST(PlateModel, SmearedMassLowersFrequency) {
  const auto fr4 = am::fr4();
  af::PlateModel bare(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  bare.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  af::PlateModel loaded(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  loaded.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  loaded.add_smeared_mass(4.0);  // components
  EXPECT_LT(loaded.fundamental_frequency(), bare.fundamental_frequency());
  // Analytic check with extra mass per area.
  const double f_exact = af::ss_plate_frequency(0.2, 0.15, 1.6e-3, fr4, 1, 1, 4.0);
  EXPECT_NEAR(loaded.fundamental_frequency(), f_exact, 0.04 * f_exact);
}

TEST(PlateModel, PointMassLowersFrequency) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const double f0 = p.fundamental_frequency();
  p.add_point_mass(0.1, 0.075, 0.1);  // 100 g at center
  EXPECT_LT(p.fundamental_frequency(), f0);
}

TEST(PlateModel, DoublerRaisesFrequency) {
  // The paper's Fig. 2 design lever: stiffen the power supply board to move
  // its main mode to the allocated ~500 Hz band.
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const double f0 = p.fundamental_frequency();
  af::PlateModel stiff(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  stiff.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  stiff.add_doubler(0.05, 0.15, 0.04, 0.11, 2.0);
  EXPECT_GT(stiff.fundamental_frequency(), 1.2 * f0);
}

TEST(PlateModel, PointSupportsRaiseFreePlate) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  // Corners on standoffs only.
  p.add_point_support(0.0, 0.0);
  p.add_point_support(0.2, 0.0);
  p.add_point_support(0.0, 0.15);
  p.add_point_support(0.2, 0.15);
  const double f = p.fundamental_frequency();
  EXPECT_GT(f, 10.0);  // no longer a free body
  af::PlateModel ss(0.2, 0.15, 1.6e-3, fr4, 6, 5);
  ss.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  EXPECT_LT(f, ss.fundamental_frequency());  // corner supports are softer
}

TEST(PlateModel, TotalMassAccounting) {
  const auto fr4 = am::fr4();
  af::PlateModel p(0.2, 0.1, 1.6e-3, fr4, 4, 4);
  p.add_smeared_mass(2.0);
  p.add_point_mass(0.1, 0.05, 0.25);
  const double expected = (fr4.density * 1.6e-3 + 2.0) * 0.02 + 0.25;
  EXPECT_NEAR(p.total_mass(), expected, 1e-9);
}

TEST(PlateModel, InvalidInputsThrow) {
  const auto fr4 = am::fr4();
  EXPECT_THROW(af::PlateModel(0.0, 0.1, 1e-3, fr4, 4, 4), std::invalid_argument);
  af::PlateModel p(0.2, 0.1, 1.6e-3, fr4, 4, 4);
  EXPECT_THROW(p.add_point_mass(0.1, 0.05, 0.0), std::invalid_argument);
  EXPECT_THROW(p.add_doubler(0.0, 0.1, 0.0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(af::ss_plate_frequency(0.2, 0.1, 1e-3, fr4, 0, 1), std::invalid_argument);
}

// Property: SS plate FEM frequency converges to analytic with refinement.
class PlateConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlateConvergence, WithinFivePercent) {
  const std::size_t n = GetParam();
  const auto al = am::aluminum_6061();
  af::PlateModel p(0.25, 0.18, 2e-3, al, n, n);
  p.set_edge(af::EdgeSupport::SimplySupported, true, true, true, true);
  const double exact = af::ss_plate_frequency(0.25, 0.18, 2e-3, al, 1, 1);
  EXPECT_NEAR(p.fundamental_frequency(), exact, 0.05 * exact);
}

INSTANTIATE_TEST_SUITE_P(Meshes, PlateConvergence, ::testing::Values(4u, 6u, 8u));
