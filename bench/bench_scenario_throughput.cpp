// BENCH-SCENARIO — co-design batch throughput on isolated ExecutionContexts.
//
// The paper's co-design loop (Fig. 1) evaluates thermal and mechanical
// models against one specification; a trade study multiplies that into a
// batch of independent what-if scenarios. This bench drives a mixed batch —
// an SEB power sweep (Fig. 10), modal placement variants of the Fig. 2
// avionics board, and FV slab heat-load variants — through
// core::ScenarioRunner, sweeping the worker count and recording
// scenarios/sec. Every scenario runs on its own ExecutionContext, so the
// numbers also demonstrate the isolation contract: per-scenario counters
// come back deterministic and identical at every worker count.
//
// --smoke freezes a reduced batch at workers {1, 2} for the CI bench-smoke
// job; the per-scenario counters land in the obs report under
// "<scenario>.<counter>" keys and are gated against bench/expected/.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/qualification.hpp"
#include "core/scenario_runner.hpp"
#include "core/scenario_service.hpp"
#include "core/seb.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "obs/report.hpp"
#include "rom/service_graphs.hpp"
#include "thermal/fv.hpp"

namespace ac = aeropack::core;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;
namespace af = aeropack::fem;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// SEB operating point at one sweep power (Fig. 10 ordinate, LHP chain).
ac::ScenarioFn seb_scenario(double power_w, double tilt_deg) {
  return [power_w, tilt_deg](aeropack::ExecutionContext&) {
    const ac::SebModel seb{ac::SebDesign{}};
    const ac::SebOperatingPoint op =
        seb.solve(power_w, 295.15, ac::SebCooling::HeatPipesAndLhp, tilt_deg);
    return std::map<std::string, double>{
        {"dt_pcb_air", op.dt_pcb_air},
        {"q_lhp_path", op.q_lhp_path},
        {"t_pcb", op.t_pcb},
    };
  };
}

/// Fig. 2 style placement variant: the heavy component slides along the
/// board, the fundamental frequency is the scenario output. Sparse modal
/// path so the context's pool does the work.
ac::ScenarioFn modal_scenario(double mass_x) {
  return [mass_x](aeropack::ExecutionContext&) {
    af::PlateModel board(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
    board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
    board.add_smeared_mass(2.5);
    board.add_point_mass(mass_x, 0.05, 0.18);
    board.add_doubler(0.03, 0.13, 0.02, 0.08, 1.8);
    af::ModalOptions opts;
    opts.n_modes = 6;
    opts.path = af::ModalPath::Sparse;
    const af::PlateModalResult modes = board.solve_modal(opts);
    return std::map<std::string, double>{
        {"f1_hz", modes.frequencies_hz[0]},
        {"f2_hz", modes.frequencies_hz[1]},
    };
  };
}

/// FV slab at one heat load: the qualification-campaign style thermal check.
ac::ScenarioFn fv_scenario(double power_w) {
  return [power_w](aeropack::ExecutionContext&) {
    at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 4));
    slab.set_material(am::aluminum_6061());
    slab.add_power({0, 16, 0, 4, 0, 4}, power_w);
    slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
    slab.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(320.0));
    const at::FvSolution sol = slab.solve_steady();
    return std::map<std::string, double>{
        {"t_max", sol.max_temperature},
    };
  };
}

/// Full qualification campaign for a board variant: the modal solve feeds
/// the EUT's fundamental frequency, an FV solve feeds its junction
/// temperature model, then the DO-160-style campaign runs end to end.
ac::ScenarioFn qual_scenario(double thickness) {
  return [thickness](aeropack::ExecutionContext&) {
    af::PlateModel board(0.16, 0.10, thickness, am::fr4(), 8, 5);
    board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
    board.add_smeared_mass(2.5);
    board.add_point_mass(0.05, 0.05, 0.18);
    af::ModalOptions opts;
    opts.n_modes = 1;
    opts.path = af::ModalPath::Sparse;
    const double f1 = board.solve_modal(opts).frequencies_hz[0];

    ac::EquipmentUnderTest eut;
    eut.name = "board";
    eut.fundamental_frequency = f1;
    eut.board_thickness = thickness;
    eut.worst_junction_at_ambient = [](double ambient) {
      at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 12, 3, 3));
      slab.set_material(am::aluminum_6061());
      slab.add_power({0, 12, 0, 3, 0, 3}, 6.0);
      slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(ambient));
      return slab.solve_steady().max_temperature;
    };
    const ac::CampaignReport report = ac::run_campaign(eut);
    double min_margin = 1e300;
    for (const ac::TestResult& r : report.results) min_margin = std::min(min_margin, r.margin);
    return std::map<std::string, double>{
        {"f1_hz", f1},
        {"all_passed", report.all_passed ? 1.0 : 0.0},
        {"min_margin", min_margin},
    };
  };
}

void add_scenarios(ac::ScenarioRunner& runner, bool smoke) {
  const std::vector<double> powers =
      smoke ? std::vector<double>{60.0, 120.0}
            : std::vector<double>{40.0, 60.0, 80.0, 100.0, 120.0};
  for (const double p : powers) {
    char name[32];
    std::snprintf(name, sizeof name, "seb_p%03d", static_cast<int>(p));
    runner.add(name, seb_scenario(p, p >= 100.0 ? 22.0 : 0.0));
  }
  const std::vector<double> xs =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.03, 0.05, 0.08, 0.11};
  for (const double x : xs) {
    char name[32];
    std::snprintf(name, sizeof name, "modal_x%03d", static_cast<int>(x * 1e3));
    runner.add(name, modal_scenario(x));
  }
  const std::vector<double> loads =
      smoke ? std::vector<double>{5.0} : std::vector<double>{2.0, 5.0, 8.0, 12.0};
  for (const double q : loads) {
    char name[32];
    std::snprintf(name, sizeof name, "fv_q%03d", static_cast<int>(q));
    runner.add(name, fv_scenario(q));
  }
  if (!smoke) {
    for (const double t : {1.2e-3, 1.6e-3, 2.0e-3}) {
      char name[32];
      std::snprintf(name, sizeof name, "qual_t%03d", static_cast<int>(t * 1e5));
      runner.add(name, qual_scenario(t));
    }
  }
}

struct SweepPoint {
  std::size_t workers = 1;
  double seconds = 0.0;
  double scenarios_per_sec = 0.0;
};

// ---- campaign mode: ScenarioService over ScenarioSpec schemas -----------
//
// A design campaign interleaves four spec families block by block:
//   - seb_point power sweep (Fig. 10 ordinate) — closed form, no artifact;
//   - modal_plate placement variants (Fig. 2) — every variant moves point
//     mass only, so all share ONE cached stiffness factorization;
//   - fv_slab_steady load variants — all share ONE cached FV assembly;
//   - rom_board_steady operating points — all share ONE cached RomModel
//     (the expensive build amortized over the whole campaign).
// Every block also re-submits an earlier SEB point under a new name, so
// content-hash deduplication fires throughout.
std::vector<ac::ScenarioSpec> make_campaign(std::size_t n_points) {
  std::vector<ac::ScenarioSpec> specs;
  specs.reserve(n_points);
  char name[48];
  for (std::size_t b = 0; specs.size() < n_points; ++b) {
    const std::size_t block_start = specs.size();
    for (std::size_t j = 0; j < 2 && specs.size() < n_points; ++j) {
      const double power = 40.0 + static_cast<double>((2 * b + j) % 160) * 0.5;
      ac::ScenarioSpec seb;
      std::snprintf(name, sizeof name, "seb_b%zu_%zu", b, j);
      seb.name = name;
      seb.graph = "seb_point";
      seb.loads = {{"power_w", power}};
      specs.push_back(seb);
    }
    for (std::size_t j = 0; j < 2 && specs.size() < n_points; ++j) {
      const double x = 0.030 + static_cast<double>((2 * b + j) % 40) * 0.002;
      ac::ScenarioSpec modal;
      std::snprintf(name, sizeof name, "modal_b%zu_%zu", b, j);
      modal.name = name;
      modal.graph = "modal_plate";
      modal.params = {{"mass_x", x}};
      specs.push_back(modal);
    }
    if (specs.size() < n_points) {
      ac::ScenarioSpec fv;
      std::snprintf(name, sizeof name, "fv_b%zu", b);
      fv.name = name;
      fv.graph = "fv_slab_steady";
      fv.loads = {{"power_w", 2.0 + static_cast<double>(b % 60) * 0.25}};
      fv.boundaries = {{"t_hot", 310.0 + static_cast<double>(b % 5)}};
      specs.push_back(fv);
    }
    for (std::size_t j = 0; j < 6 && specs.size() < n_points; ++j) {
      ac::ScenarioSpec rom;
      std::snprintf(name, sizeof name, "rom_b%zu_%zu", b, j);
      rom.name = name;
      rom.graph = "rom_board_steady";
      rom.loads = {{"cpu", static_cast<double>((6 * b + j) % 100) * 0.2},
                   {"psu", static_cast<double>((b + j) % 50) * 0.1}};
      rom.boundaries = {{"rail_left", 313.0}, {"rail_right", 315.0},
                        {"top_air", 300.0 + static_cast<double>(b % 8)}};
      specs.push_back(rom);
    }
    if (specs.size() < n_points) {  // duplicate of this block's first SEB point
      ac::ScenarioSpec dup = specs[block_start];
      dup.name += "_dup";
      specs.push_back(dup);
    }
  }
  return specs;
}

ac::ScenarioServiceOptions campaign_options(std::size_t workers, bool use_cache) {
  ac::ScenarioServiceOptions opts;
  opts.workers = workers;
  opts.threads_per_scenario = 1;
  // Counters come from ArtifactCache/ScenarioService lifetime stats, not
  // per-scenario registries — campaign scenarios are microsolves, so
  // per-scenario registry setup would dominate what we measure.
  opts.telemetry = false;
  opts.use_cache = use_cache;
  opts.deduplicate = use_cache;  // baseline = legacy semantics: every spec solves
  return opts;
}

int fail_campaign(const char* what) {
  std::fprintf(stderr, "campaign gate failed: %s\n", what);
  return 1;
}

void write_json(const std::string& path, std::size_t hardware, std::size_t n_scenarios,
                const std::vector<SweepPoint>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"scenario_throughput\",\n";
  out << "  \"hardware_threads\": " << hardware << ",\n";
  out << "  \"scenarios\": " << n_scenarios << ",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out << "    {\"workers\": " << p.workers << ", \"seconds\": " << p.seconds
        << ", \"scenarios_per_sec\": " << p.scenarios_per_sec
        << ", \"speedup_vs_1\": "
        << (p.seconds > 0.0 ? sweep.front().seconds / p.seconds : 0.0) << "}"
        << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("  series written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  // --smoke: reduced batch + workers {1, 2}, the configuration the CI
  // bench-smoke job freezes per-scenario counter expectations for.
  // --report <out.json>: write the obs run report with every scenario's
  // counters merged under "<scenario>." prefixes.
  bool smoke = false;
  std::string report_path;
  std::size_t campaign_points = 0;  // 0 = default for the mode
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else if (arg == "--campaign" && i + 1 < argc) {
      campaign_points = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg.rfind("--campaign=", 0) == 0) {
      campaign_points =
          static_cast<std::size_t>(std::stoul(arg.substr(std::string("--campaign=").size())));
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s (supported: --smoke, --report <out.json>, "
                   "--campaign <points>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (campaign_points == 0) campaign_points = smoke ? 240 : 10080;
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-SCENARIO — co-design batch throughput on isolated contexts\n");
  std::printf("SEB sweep + modal placement + FV loads via core::ScenarioRunner\n");
  std::printf("================================================================\n");

  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts{1, 2, 4};
  if (hardware > 4) worker_counts.push_back(hardware);
  if (smoke) {
    worker_counts = {1, 2};
    std::printf("  smoke mode: reduced batch, workers {1, 2}\n");
  }
  std::printf("  hardware threads: %zu\n\n", hardware);

  std::vector<SweepPoint> sweep;
  std::vector<ac::ScenarioResult> reference;  // workers=1 run, for the report
  for (const std::size_t w : worker_counts) {
    ac::ScenarioRunnerOptions opts;
    opts.workers = w;
    opts.threads_per_scenario = 1;
    opts.telemetry = !report_path.empty() || w == worker_counts.front();
    ac::ScenarioRunner runner(opts);
    add_scenarios(runner, smoke);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ac::ScenarioResult> results = runner.run();
    SweepPoint point;
    point.workers = w;
    point.seconds = seconds_since(t0);
    point.scenarios_per_sec =
        point.seconds > 0.0 ? static_cast<double>(results.size()) / point.seconds : 0.0;
    sweep.push_back(point);

    for (const ac::ScenarioResult& r : results)
      if (!r.ok) {
        std::fprintf(stderr, "scenario %s failed: %s\n", r.name.c_str(), r.error.c_str());
        return 1;
      }
    // Isolation contract: outputs at w workers match the serial run exactly.
    if (w == worker_counts.front()) {
      reference = std::move(results);
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        for (const auto& [key, value] : results[i].values)
          if (value != reference[i].values.at(key)) {
            std::fprintf(stderr, "scenario %s: %s drifted at %zu workers (%.17g != %.17g)\n",
                         results[i].name.c_str(), key.c_str(), w, value,
                         reference[i].values.at(key));
            return 1;
          }
    }
    std::printf("  workers=%2zu: %5.2f s, %6.2f scenarios/sec (speedup %.2fx)\n", w,
                point.seconds, point.scenarios_per_sec,
                point.seconds > 0.0 ? sweep.front().seconds / point.seconds : 0.0);
  }

  std::printf("\n  %-8s | %-10s | %-16s | %-10s\n", "workers", "wall [s]", "scenarios/sec",
              "speedup");
  std::printf("  ---------+------------+------------------+----------\n");
  for (const SweepPoint& p : sweep)
    std::printf("  %8zu | %10.3f | %16.2f | %9.2fx\n", p.workers, p.seconds,
                p.scenarios_per_sec, p.seconds > 0.0 ? sweep.front().seconds / p.seconds : 0.0);
  const SweepPoint& best =
      *std::max_element(sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.scenarios_per_sec < b.scenarios_per_sec;
      });
  std::printf("\n  headline: %zu scenarios, best %.2f scenarios/sec at %zu workers"
              " (%.2fx over serial)\n\n",
              reference.size(), best.scenarios_per_sec, best.workers,
              best.seconds > 0.0 ? sweep.front().seconds / best.seconds : 0.0);

  write_json("BENCH_scenario_throughput.json", hardware, reference.size(), sweep);

  // ---- campaign section: ScenarioService + artifact cache ---------------
  //
  // The same bench binary drives the schema-first path: a >= 10^4-point
  // design campaign (240 in smoke) through ScenarioService three ways —
  // cached at 1 worker (the deterministic run whose cache counters CI
  // gates), cached at several workers (throughput), and cache-less at 1
  // worker (the cold baseline the cached run must beat and match to the
  // bit). Smoke self-gates: hit rate >= 0.5, speedup >= 2x, bitwise equal.
  std::printf("\n----------------------------------------------------------------\n");
  std::printf("campaign: %zu design points via core::ScenarioService\n", campaign_points);
  std::printf("----------------------------------------------------------------\n");
  const std::vector<ac::ScenarioSpec> campaign = make_campaign(campaign_points);

  ac::ScenarioService cached(campaign_options(1, true));
  aeropack::rom::register_rom_graphs(cached);
  auto t0c = std::chrono::steady_clock::now();
  const std::vector<ac::ScenarioResult> cached_results = cached.run(campaign);
  const double cached_secs = seconds_since(t0c);
  const ac::ArtifactCacheStats cstats = cached.cache().stats();
  const ac::ScenarioServiceStats sstats = cached.stats();

  ac::ScenarioService plain(campaign_options(1, false));
  aeropack::rom::register_rom_graphs(plain);
  t0c = std::chrono::steady_clock::now();
  const std::vector<ac::ScenarioResult> plain_results = plain.run(campaign);
  const double plain_secs = seconds_since(t0c);

  const std::size_t campaign_workers = smoke ? 2 : std::min<std::size_t>(hardware, 8);
  ac::ScenarioService wide(campaign_options(campaign_workers, true));
  aeropack::rom::register_rom_graphs(wide);
  t0c = std::chrono::steady_clock::now();
  const std::vector<ac::ScenarioResult> wide_results = wide.run(campaign);
  const double wide_secs = seconds_since(t0c);

  for (const auto* results : {&cached_results, &plain_results, &wide_results})
    for (const ac::ScenarioResult& r : *results)
      if (!r.ok) {
        std::fprintf(stderr, "campaign scenario %s failed: %s\n", r.name.c_str(),
                     r.error.c_str());
        return 1;
      }
  // Bit-identity gate: cached (1 and N workers) vs the cache-less baseline.
  for (std::size_t i = 0; i < campaign.size(); ++i)
    for (const auto& [key, value] : plain_results[i].values) {
      if (cached_results[i].values.at(key) != value)
        return fail_campaign("cached values drifted from the no-cache baseline");
      if (wide_results[i].values.at(key) != value)
        return fail_campaign("multi-worker cached values drifted from the baseline");
    }

  const double hit_total = static_cast<double>(cstats.hits + cstats.misses);
  const double hit_rate = hit_total > 0.0 ? static_cast<double>(cstats.hits) / hit_total : 0.0;
  const double cached_rate =
      cached_secs > 0.0 ? static_cast<double>(campaign.size()) / cached_secs : 0.0;
  const double plain_rate =
      plain_secs > 0.0 ? static_cast<double>(campaign.size()) / plain_secs : 0.0;
  const double speedup = plain_secs > 0.0 && cached_secs > 0.0 ? plain_secs / cached_secs : 0.0;
  std::printf("  cache:   %llu hits / %llu misses (hit rate %.3f), %llu insertions, "
              "%llu evictions\n",
              static_cast<unsigned long long>(cstats.hits),
              static_cast<unsigned long long>(cstats.misses), hit_rate,
              static_cast<unsigned long long>(cstats.insertions),
              static_cast<unsigned long long>(cstats.evictions));
  std::printf("  dedup:   %llu of %llu submissions resolved without a solve\n",
              static_cast<unsigned long long>(sstats.dedup_hits),
              static_cast<unsigned long long>(sstats.submitted));
  std::printf("  cached   w=1:  %7.2f s, %9.1f scenarios/sec\n", cached_secs, cached_rate);
  std::printf("  no-cache w=1:  %7.2f s, %9.1f scenarios/sec\n", plain_secs, plain_rate);
  std::printf("  cached   w=%zu:  %7.2f s, %9.1f scenarios/sec\n", campaign_workers, wide_secs,
              wide_secs > 0.0 ? static_cast<double>(campaign.size()) / wide_secs : 0.0);
  std::printf("  campaign headline: %.2fx scenarios/sec over no-cache at 1 worker\n\n", speedup);

  if (smoke) {
    if (hit_rate < 0.5) return fail_campaign("artifact-cache hit rate below 0.5");
    if (speedup < 2.0) return fail_campaign("cached throughput below 2x the no-cache baseline");
  }

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_scenario_throughput", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.set_meta("scenarios", static_cast<double>(reference.size()));
    report.set_meta("best_workers", static_cast<double>(best.workers));
    // Per-scenario isolated cost profiles from the serial reference run —
    // deterministic at any worker count, so CI gates them.
    for (const ac::ScenarioResult& r : reference) {
      report.add_counters(r.name, r.counters);
      report.add_gauges(r.name, r.gauges);
    }
    // Campaign cache/dedup totals from the serial cached run: submit order
    // is fixed and the worker drains FIFO, so these are exact constants CI
    // gates (check_report.py, plus the --cache-floor tripwire).
    report.set_meta("campaign.points", static_cast<double>(campaign.size()));
    report.set_meta("campaign.hit_rate", hit_rate);
    report.set_meta("campaign.speedup_vs_no_cache", speedup);
    report.add_counters("svc", {{"cache.hits", cstats.hits},
                                {"cache.misses", cstats.misses},
                                {"cache.insertions", cstats.insertions},
                                {"cache.evictions", cstats.evictions},
                                {"cache.dedup_hits", sstats.dedup_hits},
                                {"scenarios.submitted", sstats.submitted},
                                {"scenarios.executed", sstats.executed}});
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
