// BENCH-SCENARIO — co-design batch throughput on isolated ExecutionContexts.
//
// The paper's co-design loop (Fig. 1) evaluates thermal and mechanical
// models against one specification; a trade study multiplies that into a
// batch of independent what-if scenarios. This bench drives a mixed batch —
// an SEB power sweep (Fig. 10), modal placement variants of the Fig. 2
// avionics board, and FV slab heat-load variants — through
// core::ScenarioRunner, sweeping the worker count and recording
// scenarios/sec. Every scenario runs on its own ExecutionContext, so the
// numbers also demonstrate the isolation contract: per-scenario counters
// come back deterministic and identical at every worker count.
//
// --smoke freezes a reduced batch at workers {1, 2} for the CI bench-smoke
// job; the per-scenario counters land in the obs report under
// "<scenario>.<counter>" keys and are gated against bench/expected/.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/qualification.hpp"
#include "core/scenario_runner.hpp"
#include "core/seb.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "obs/report.hpp"
#include "thermal/fv.hpp"

namespace ac = aeropack::core;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;
namespace af = aeropack::fem;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// SEB operating point at one sweep power (Fig. 10 ordinate, LHP chain).
ac::ScenarioFn seb_scenario(double power_w, double tilt_deg) {
  return [power_w, tilt_deg](aeropack::ExecutionContext&) {
    const ac::SebModel seb{ac::SebDesign{}};
    const ac::SebOperatingPoint op =
        seb.solve(power_w, 295.15, ac::SebCooling::HeatPipesAndLhp, tilt_deg);
    return std::map<std::string, double>{
        {"dt_pcb_air", op.dt_pcb_air},
        {"q_lhp_path", op.q_lhp_path},
        {"t_pcb", op.t_pcb},
    };
  };
}

/// Fig. 2 style placement variant: the heavy component slides along the
/// board, the fundamental frequency is the scenario output. Sparse modal
/// path so the context's pool does the work.
ac::ScenarioFn modal_scenario(double mass_x) {
  return [mass_x](aeropack::ExecutionContext&) {
    af::PlateModel board(0.16, 0.10, 1.6e-3, am::fr4(), 8, 5);
    board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
    board.add_smeared_mass(2.5);
    board.add_point_mass(mass_x, 0.05, 0.18);
    board.add_doubler(0.03, 0.13, 0.02, 0.08, 1.8);
    af::ModalOptions opts;
    opts.n_modes = 6;
    opts.path = af::ModalPath::Sparse;
    const af::PlateModalResult modes = board.solve_modal(opts);
    return std::map<std::string, double>{
        {"f1_hz", modes.frequencies_hz[0]},
        {"f2_hz", modes.frequencies_hz[1]},
    };
  };
}

/// FV slab at one heat load: the qualification-campaign style thermal check.
ac::ScenarioFn fv_scenario(double power_w) {
  return [power_w](aeropack::ExecutionContext&) {
    at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 16, 4, 4));
    slab.set_material(am::aluminum_6061());
    slab.add_power({0, 16, 0, 4, 0, 4}, power_w);
    slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(300.0));
    slab.set_boundary(at::Face::XMax, at::BoundaryCondition::fixed(320.0));
    const at::FvSolution sol = slab.solve_steady();
    return std::map<std::string, double>{
        {"t_max", sol.max_temperature},
    };
  };
}

/// Full qualification campaign for a board variant: the modal solve feeds
/// the EUT's fundamental frequency, an FV solve feeds its junction
/// temperature model, then the DO-160-style campaign runs end to end.
ac::ScenarioFn qual_scenario(double thickness) {
  return [thickness](aeropack::ExecutionContext&) {
    af::PlateModel board(0.16, 0.10, thickness, am::fr4(), 8, 5);
    board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
    board.add_smeared_mass(2.5);
    board.add_point_mass(0.05, 0.05, 0.18);
    af::ModalOptions opts;
    opts.n_modes = 1;
    opts.path = af::ModalPath::Sparse;
    const double f1 = board.solve_modal(opts).frequencies_hz[0];

    ac::EquipmentUnderTest eut;
    eut.name = "board";
    eut.fundamental_frequency = f1;
    eut.board_thickness = thickness;
    eut.worst_junction_at_ambient = [](double ambient) {
      at::FvModel slab(at::FvGrid::uniform(0.1, 0.02, 0.01, 12, 3, 3));
      slab.set_material(am::aluminum_6061());
      slab.add_power({0, 12, 0, 3, 0, 3}, 6.0);
      slab.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(ambient));
      return slab.solve_steady().max_temperature;
    };
    const ac::CampaignReport report = ac::run_campaign(eut);
    double min_margin = 1e300;
    for (const ac::TestResult& r : report.results) min_margin = std::min(min_margin, r.margin);
    return std::map<std::string, double>{
        {"f1_hz", f1},
        {"all_passed", report.all_passed ? 1.0 : 0.0},
        {"min_margin", min_margin},
    };
  };
}

void add_scenarios(ac::ScenarioRunner& runner, bool smoke) {
  const std::vector<double> powers =
      smoke ? std::vector<double>{60.0, 120.0}
            : std::vector<double>{40.0, 60.0, 80.0, 100.0, 120.0};
  for (const double p : powers) {
    char name[32];
    std::snprintf(name, sizeof name, "seb_p%03d", static_cast<int>(p));
    runner.add(name, seb_scenario(p, p >= 100.0 ? 22.0 : 0.0));
  }
  const std::vector<double> xs =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.03, 0.05, 0.08, 0.11};
  for (const double x : xs) {
    char name[32];
    std::snprintf(name, sizeof name, "modal_x%03d", static_cast<int>(x * 1e3));
    runner.add(name, modal_scenario(x));
  }
  const std::vector<double> loads =
      smoke ? std::vector<double>{5.0} : std::vector<double>{2.0, 5.0, 8.0, 12.0};
  for (const double q : loads) {
    char name[32];
    std::snprintf(name, sizeof name, "fv_q%03d", static_cast<int>(q));
    runner.add(name, fv_scenario(q));
  }
  if (!smoke) {
    for (const double t : {1.2e-3, 1.6e-3, 2.0e-3}) {
      char name[32];
      std::snprintf(name, sizeof name, "qual_t%03d", static_cast<int>(t * 1e5));
      runner.add(name, qual_scenario(t));
    }
  }
}

struct SweepPoint {
  std::size_t workers = 1;
  double seconds = 0.0;
  double scenarios_per_sec = 0.0;
};

void write_json(const std::string& path, std::size_t hardware, std::size_t n_scenarios,
                const std::vector<SweepPoint>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"scenario_throughput\",\n";
  out << "  \"hardware_threads\": " << hardware << ",\n";
  out << "  \"scenarios\": " << n_scenarios << ",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out << "    {\"workers\": " << p.workers << ", \"seconds\": " << p.seconds
        << ", \"scenarios_per_sec\": " << p.scenarios_per_sec
        << ", \"speedup_vs_1\": "
        << (p.seconds > 0.0 ? sweep.front().seconds / p.seconds : 0.0) << "}"
        << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("  series written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  // --smoke: reduced batch + workers {1, 2}, the configuration the CI
  // bench-smoke job freezes per-scenario counter expectations for.
  // --report <out.json>: write the obs run report with every scenario's
  // counters merged under "<scenario>." prefixes.
  bool smoke = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --smoke, --report <out.json>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-SCENARIO — co-design batch throughput on isolated contexts\n");
  std::printf("SEB sweep + modal placement + FV loads via core::ScenarioRunner\n");
  std::printf("================================================================\n");

  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts{1, 2, 4};
  if (hardware > 4) worker_counts.push_back(hardware);
  if (smoke) {
    worker_counts = {1, 2};
    std::printf("  smoke mode: reduced batch, workers {1, 2}\n");
  }
  std::printf("  hardware threads: %zu\n\n", hardware);

  std::vector<SweepPoint> sweep;
  std::vector<ac::ScenarioResult> reference;  // workers=1 run, for the report
  for (const std::size_t w : worker_counts) {
    ac::ScenarioRunnerOptions opts;
    opts.workers = w;
    opts.threads_per_scenario = 1;
    opts.telemetry = !report_path.empty() || w == worker_counts.front();
    ac::ScenarioRunner runner(opts);
    add_scenarios(runner, smoke);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ac::ScenarioResult> results = runner.run();
    SweepPoint point;
    point.workers = w;
    point.seconds = seconds_since(t0);
    point.scenarios_per_sec =
        point.seconds > 0.0 ? static_cast<double>(results.size()) / point.seconds : 0.0;
    sweep.push_back(point);

    for (const ac::ScenarioResult& r : results)
      if (!r.ok) {
        std::fprintf(stderr, "scenario %s failed: %s\n", r.name.c_str(), r.error.c_str());
        return 1;
      }
    // Isolation contract: outputs at w workers match the serial run exactly.
    if (w == worker_counts.front()) {
      reference = std::move(results);
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        for (const auto& [key, value] : results[i].values)
          if (value != reference[i].values.at(key)) {
            std::fprintf(stderr, "scenario %s: %s drifted at %zu workers (%.17g != %.17g)\n",
                         results[i].name.c_str(), key.c_str(), w, value,
                         reference[i].values.at(key));
            return 1;
          }
    }
    std::printf("  workers=%2zu: %5.2f s, %6.2f scenarios/sec (speedup %.2fx)\n", w,
                point.seconds, point.scenarios_per_sec,
                point.seconds > 0.0 ? sweep.front().seconds / point.seconds : 0.0);
  }

  std::printf("\n  %-8s | %-10s | %-16s | %-10s\n", "workers", "wall [s]", "scenarios/sec",
              "speedup");
  std::printf("  ---------+------------+------------------+----------\n");
  for (const SweepPoint& p : sweep)
    std::printf("  %8zu | %10.3f | %16.2f | %9.2fx\n", p.workers, p.seconds,
                p.scenarios_per_sec, p.seconds > 0.0 ? sweep.front().seconds / p.seconds : 0.0);
  const SweepPoint& best =
      *std::max_element(sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.scenarios_per_sec < b.scenarios_per_sec;
      });
  std::printf("\n  headline: %zu scenarios, best %.2f scenarios/sec at %zu workers"
              " (%.2fx over serial)\n\n",
              reference.size(), best.scenarios_per_sec, best.workers,
              best.seconds > 0.0 ? sweep.front().seconds / best.seconds : 0.0);

  write_json("BENCH_scenario_throughput.json", hardware, reference.size(), sweep);

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_scenario_throughput", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.set_meta("scenarios", static_cast<double>(reference.size()));
    report.set_meta("best_workers", static_cast<double>(best.workers));
    // Per-scenario isolated cost profiles from the serial reference run —
    // deterministic at any worker count, so CI gates them.
    for (const ac::ScenarioResult& r : reference) report.add_counters(r.name, r.counters);
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
