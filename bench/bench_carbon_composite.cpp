// TAB-CARBON — the carbon-composite seat variant: the paper reports +80%
// capability (38 W -> 70 W at constant PCB temperature) and a 20 C decrease
// at 40 W, "slightly under those obtained with aluminum".
#include "bench_util.hpp"
#include "core/seb.hpp"
#include "core/units.hpp"
#include "materials/solid.hpp"

namespace ac = aeropack::core;

namespace {

const double kCabin = ac::celsius_to_kelvin(25.0);

const ac::SebModel& carbon() {
  static const ac::SebModel m = [] {
    ac::SebDesign d;
    d.seat.material = aeropack::materials::carbon_composite();
    return ac::SebModel{d};
  }();
  return m;
}

const ac::SebModel& aluminum() {
  static const ac::SebModel m{ac::SebDesign{}};
  return m;
}

void report() {
  bench_util::banner("TAB-CARBON — carbon-composite seat structure",
                     "COSEE SEB power sweep with the CFRP seat as the LHP heat sink");

  std::printf("\n  %-8s | %-18s | %-18s\n", "Q [W]", "carbon LHP dT [K]", "aluminum LHP dT [K]");
  std::printf("  ---------+--------------------+-------------------\n");
  for (double q : {10.0, 20.0, 38.0, 40.0, 50.0, 60.0, 70.0}) {
    const auto c = carbon().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp);
    const auto a = aluminum().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp);
    std::printf("  %-8.0f | %-18.1f | %-18.1f\n", q, c.dt_pcb_air, a.dt_pcb_air);
  }

  const double base = carbon().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  const double cap = carbon().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double cap_al =
      aluminum().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double dt_no = carbon().solve(40.0, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air;
  const double dt_lhp =
      carbon().solve(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp).dt_pcb_air;

  std::printf("\n");
  bench_util::header();
  bench_util::row("baseline capability @ dT=60K [W]", "38", bench_util::fmt(base),
                  bench_util::check(std::fabs(base - 38.0) < 5.0));
  bench_util::row("capability with LHP, carbon seat [W]", "70", bench_util::fmt(cap),
                  bench_util::check(std::fabs(cap - 70.0) < 9.0));
  bench_util::row("capability increase [%]", "+80",
                  "+" + bench_util::fmt(100.0 * (cap - base) / base, 0),
                  bench_util::check((cap - base) / base > 0.5));
  bench_util::row("PCB temperature decrease @ 40 W [K]", "20",
                  bench_util::fmt(dt_no - dt_lhp),
                  bench_util::check(std::fabs(dt_no - dt_lhp - 20.0) < 5.0));
  bench_util::row("carbon vs aluminum capability ratio", "slightly under 1",
                  bench_util::fmt(cap / cap_al, 2), bench_util::check(cap < cap_al));
  std::printf("\n");
}

void bm_carbon_operating_point(benchmark::State& state) {
  for (auto _ : state) {
    auto pt = carbon().solve(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(bm_carbon_operating_point);

void bm_material_swap_study(benchmark::State& state) {
  // The full design study: both materials, both modes, capability search.
  for (auto _ : state) {
    double acc = carbon().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp) +
                 aluminum().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_material_swap_study)->Unit(benchmark::kMillisecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
