// TAB-MTBF — "The temperature will be used as an input data for the safety
// and reliability calculations. Typical MTBF for aerospace applications is
// about 40,000 h" with junction limit 125 C / ambient 85 C. We roll up a
// representative avionics BOM versus junction temperature and show the
// payoff of the paper's cooling work (a 32 C junction decrease).
#include <cstdio>

#include "bench_util.hpp"
#include "core/units.hpp"
#include "reliability/mtbf.hpp"

namespace ar = aeropack::reliability;
namespace ac = aeropack::core;

namespace {

std::vector<ar::Part> avionics_bom(double junction_k) {
  std::vector<ar::Part> bom;
  const auto add = [&](const char* ref, ar::PartType t, int n) {
    ar::Part p;
    p.reference = ref;
    p.type = t;
    p.count = n;
    p.junction_temperature = junction_k;
    bom.push_back(p);
  };
  add("CPU", ar::PartType::Microprocessor, 1);
  add("DRAM", ar::PartType::Memory, 4);
  add("ANALOG", ar::PartType::AnalogIc, 12);
  add("PWR-FET", ar::PartType::PowerTransistor, 6);
  add("DIODE", ar::PartType::Diode, 20);
  add("R", ar::PartType::Resistor, 300);
  add("C-CER", ar::PartType::CeramicCapacitor, 200);
  add("C-TANT", ar::PartType::TantalumCapacitor, 12);
  add("L", ar::PartType::Inductor, 10);
  add("CONN", ar::PartType::Connector, 4);
  add("XTAL", ar::PartType::Crystal, 2);
  add("ATTACH", ar::PartType::SolderJointSet, 50);
  return bom;
}

void report() {
  bench_util::banner("TAB-MTBF — reliability vs junction temperature",
                     "217F-style rollup of a single-CPU avionics unit, airborne inhabited cargo");

  std::printf("\n  %-14s | %-14s | %-22s\n", "junction [C]", "MTBF [h]", "vs 40,000 h target");
  std::printf("  ---------------+----------------+----------------------\n");
  double mtbf_55 = 0.0, mtbf_70 = 0.0, mtbf_102 = 0.0;
  for (double tj_c : {55.0, 70.0, 85.0, 102.0, 125.0}) {
    const auto rpt = ar::predict_mtbf(avionics_bom(ac::celsius_to_kelvin(tj_c)),
                                      ar::Environment::AirborneInhabitedCargo);
    std::printf("  %-14.0f | %-14.0f | %-22s\n", tj_c, rpt.mtbf_hours,
                rpt.mtbf_hours >= 40000.0 ? "meets" : "misses");
    if (tj_c == 55.0) mtbf_55 = rpt.mtbf_hours;
    if (tj_c == 70.0) mtbf_70 = rpt.mtbf_hours;
    if (tj_c == 102.0) mtbf_102 = rpt.mtbf_hours;
  }

  // COTS sensitivity: the paper's "maximum use of low-cost plastic / COTS
  // components in severe avionics applications" concern.
  auto cots = avionics_bom(ac::celsius_to_kelvin(70.0));
  for (auto& p : cots) p.quality = ar::Quality::Commercial;
  const auto rpt_mil = ar::predict_mtbf(avionics_bom(ac::celsius_to_kelvin(70.0)),
                                        ar::Environment::AirborneInhabitedCargo);
  const auto rpt_cots =
      ar::predict_mtbf(cots, ar::Environment::AirborneInhabitedCargo);

  std::printf("\n");
  bench_util::header();
  bench_util::row("MTBF at healthy junctions (55 C) [h]", "~40,000 typical",
                  bench_util::fmt(mtbf_55, 0),
                  bench_util::check(mtbf_55 > 30000.0 && mtbf_55 < 150000.0));
  (void)mtbf_70;
  bench_util::row("cooling payoff: 102 C -> 70 C junctions", "major (paper's -32 C)",
                  "x" + bench_util::fmt(mtbf_70 / mtbf_102, 2),
                  bench_util::check(mtbf_70 / mtbf_102 > 1.5));
  bench_util::row("COTS (commercial) quality penalty", "the COTS dilemma",
                  "x" + bench_util::fmt(rpt_cots.mtbf_hours / rpt_mil.mtbf_hours, 2),
                  bench_util::check(rpt_cots.mtbf_hours < 0.5 * rpt_mil.mtbf_hours));
  std::printf("\n");
}

void bm_rollup(benchmark::State& state) {
  const auto bom = avionics_bom(343.15);
  for (auto _ : state) {
    auto rpt = ar::predict_mtbf(bom, ar::Environment::AirborneInhabitedCargo);
    benchmark::DoNotOptimize(rpt);
  }
}
BENCHMARK(bm_rollup);

void bm_temperature_sweep(benchmark::State& state) {
  const auto bom = avionics_bom(343.15);
  for (auto _ : state) {
    double acc = 0.0;
    for (double d = -30.0; d <= 60.0; d += 5.0)
      acc += ar::predict_mtbf_shifted(bom, ar::Environment::AirborneInhabitedCargo, d)
                 .mtbf_hours;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_temperature_sweep)->Unit(benchmark::kMicrosecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
