// FIG4 — "From the equipment to the component level": the same equipment
// modelled at the paper's three simulation levels, comparing what each level
// resolves and what it costs. Level 1 selects the technology; Level 2 gives
// the PCB temperature map; Level 3 gives junction temperatures for the
// safety/reliability calculations.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/levels.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {

ac::Equipment demo_equipment() {
  ac::Equipment eq;
  eq.name = "avionics computer";
  for (int m = 0; m < 2; ++m) {
    ac::Module mod;
    mod.name = "M" + std::to_string(m + 1);
    ac::Board b;
    b.name = "board";
    b.drain_thickness = 1.5e-3;
    ac::Component cpu{"CPU", 8.0, 9e-4, 0.7, 398.15, 0.10, 0.075,
                      aeropack::reliability::PartType::Microprocessor,
                      aeropack::reliability::Quality::FullMil, 1};
    ac::Component mem{"MEM", 1.2, 1.5e-4, 2.5, 398.15, 0.15, 0.10,
                      aeropack::reliability::PartType::Memory,
                      aeropack::reliability::Quality::FullMil, 4};
    ac::Component reg{"REG", 3.0, 2e-4, 1.8, 398.15, 0.04, 0.04,
                      aeropack::reliability::PartType::PowerTransistor,
                      aeropack::reliability::Quality::FullMil, 1};
    b.components = {cpu, mem, reg};
    mod.boards.push_back(b);
    eq.modules.push_back(mod);
  }
  return eq;
}

ac::Specification demo_spec() {
  ac::Specification spec;
  spec.ambient_temperature = ac::celsius_to_kelvin(40.0);  // conditioned bay
  return spec;
}

void report() {
  bench_util::banner("FIG 4 — three thermal simulation levels",
                     "Equipment (L1) -> PCB (L2) -> component (L3) on the same unit");

  const auto eq = demo_equipment();
  const auto spec = demo_spec();
  const auto tech = ac::CoolingTechnology::ConductionCooled;

  using clock = std::chrono::steady_clock;

  const auto t0 = clock::now();
  const auto l1 = ac::run_level1(eq, spec, tech);
  const auto t1 = clock::now();
  const auto l2 = ac::run_level2(eq.modules[0].boards[0], spec, tech,
                                 spec.ambient_temperature + 10.0, 32);
  const auto t2 = clock::now();
  const auto all = ac::run_thermal_levels(eq, spec, tech, 32);
  const auto t3 = clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  std::printf("\n  %-10s | %-26s | %-10s | %-10s\n", "level", "resolved quantity",
              "cells", "time [ms]");
  std::printf("  -----------+----------------------------+------------+-----------\n");
  std::printf("  %-10s | case %.1f C / internal %.1f C | %-10zu | %-10.2f\n", "1 equip.",
              ac::kelvin_to_celsius(l1.case_temperature),
              ac::kelvin_to_celsius(l1.internal_air_temperature), l1.node_count, ms(t0, t1));
  std::printf("  %-10s | board max %.1f C            | %-10zu | %-10.2f\n", "2 PCB",
              ac::kelvin_to_celsius(l2.max_temperature), l2.cell_count, ms(t1, t2));
  std::printf("  %-10s | worst junction %.1f C       | %-10zu | %-10.2f\n", "3 comp.",
              ac::kelvin_to_celsius(all.worst_junction),
              l2.cell_count * eq.modules.size(), ms(t2, t3));

  std::printf("\n");
  bench_util::header();
  bench_util::row("temperatures refine monotonically", "L1 < L2 < L3 detail",
                  (l1.internal_air_temperature < l2.max_temperature &&
                   l2.max_temperature < all.worst_junction)
                      ? "yes"
                      : "no",
                  bench_util::check(l1.internal_air_temperature < all.worst_junction));
  bench_util::row("junction temperature (for MTBF) [C]", "<= 125",
                  bench_util::fmt(ac::kelvin_to_celsius(all.worst_junction)),
                  bench_util::check(all.worst_junction <= spec.junction_limit));
  bench_util::row("predicted MTBF [h]", "~40,000 typical",
                  bench_util::fmt(all.mtbf.mtbf_hours, 0),
                  bench_util::check(all.mtbf.mtbf_hours > spec.mtbf_target_hours));
  std::printf("\n");
}

void bm_level1(benchmark::State& state) {
  const auto eq = demo_equipment();
  const auto spec = demo_spec();
  for (auto _ : state) {
    auto r = ac::run_level1(eq, spec, ac::CoolingTechnology::ConductionCooled);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_level1);

void bm_level2_mesh(benchmark::State& state) {
  const auto eq = demo_equipment();
  const auto spec = demo_spec();
  const auto mesh = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = ac::run_level2(eq.modules[0].boards[0], spec,
                            ac::CoolingTechnology::ConductionCooled,
                            spec.ambient_temperature + 10.0, mesh);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cells"] = static_cast<double>(mesh * mesh);
}
BENCHMARK(bm_level2_mesh)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

void bm_full_three_levels(benchmark::State& state) {
  const auto eq = demo_equipment();
  const auto spec = demo_spec();
  for (auto _ : state) {
    auto r = ac::run_thermal_levels(eq, spec, ac::CoolingTechnology::ConductionCooled, 24);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_full_three_levels)->Unit(benchmark::kMillisecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
