// FIG2 — Ariane navigation unit: "the power supply has been designed so that
// its main resonant mode be located around 500 Hz as specified in the
// initial frequency allocation plan". We reproduce the design loop: start
// from an unstiffened power-supply board, sweep stiffening options until the
// fundamental lands in the allocated 450-550 Hz band, and verify the plan.
#include <cstdio>

#include "bench_util.hpp"
#include "core/design_procedure.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"

namespace ac = aeropack::core;
namespace af = aeropack::fem;
namespace am = aeropack::materials;

namespace {

/// Power-supply board: 160x100 CCA, heavy magnetics as point masses.
af::PlateModel ps_board(double thickness, double doubler_factor) {
  af::PlateModel p(0.16, 0.10, thickness, am::fr4(), 8, 5);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);  // bolted frame
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);  // transformer
  p.add_point_mass(0.11, 0.05, 0.09);  // inductor
  if (doubler_factor > 1.0) p.add_doubler(0.03, 0.13, 0.02, 0.08, doubler_factor);
  return p;
}

void report() {
  bench_util::banner(
      "FIG 2 — Ariane navigation unit: power-supply modal placement",
      "Design sweep to put the main resonant mode ~500 Hz per the frequency allocation plan");

  ac::FrequencyAllocationPlan plan;
  plan.allocate("chassis", 80.0, 200.0);
  plan.allocate("power supply", 450.0, 550.0);
  plan.allocate("cca stack", 600.0, 900.0);

  std::printf("\n  %-36s | %-12s | %-10s\n", "design iteration", "f1 [Hz]", "in band?");
  std::printf("  -------------------------------------+--------------+-----------\n");
  struct Option {
    const char* name;
    double thickness;
    double doubler;
  };
  double accepted_f1 = 0.0;
  const char* accepted_name = "none";
  for (const Option& opt : {Option{"1.6 mm bare board", 1.6e-3, 1.0},
                            Option{"2.4 mm board", 2.4e-3, 1.0},
                            Option{"2.4 mm + stiffener doubler x1.8", 2.4e-3, 1.8},
                            Option{"3.2 mm + stiffener doubler x1.8", 3.2e-3, 1.8}}) {
    const double f1 = ps_board(opt.thickness, opt.doubler).fundamental_frequency();
    const bool ok = plan.complies("power supply", f1);
    std::printf("  %-36s | %-12.0f | %-10s\n", opt.name, f1, ok ? "yes" : "no");
    if (ok && accepted_f1 == 0.0) {
      accepted_f1 = f1;
      accepted_name = opt.name;
    }
  }

  std::printf("\n");
  bench_util::header();
  bench_util::row("power-supply main mode [Hz]", "~500", bench_util::fmt(accepted_f1, 0),
                  bench_util::check(accepted_f1 >= 450.0 && accepted_f1 <= 550.0));
  bench_util::row("design achieving it", "stiffened PS board", accepted_name, "");
  bench_util::row("allocation plan bands", "3 (no overlap)",
                  std::to_string(plan.bands().size()), bench_util::check(true));
  std::printf("\n");
}

void bm_modal_solve(benchmark::State& state) {
  const auto mesh = static_cast<std::size_t>(state.range(0));
  af::PlateModel p(0.16, 0.10, 2.4e-3, am::fr4(), mesh, mesh / 2 + 1);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  for (auto _ : state) {
    auto res = p.solve_modal();
    benchmark::DoNotOptimize(res);
  }
  state.counters["dof"] = static_cast<double>(p.dof_count());
}
BENCHMARK(bm_modal_solve)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_design_sweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double t : {1.6e-3, 2.4e-3, 3.2e-3})
      acc += ps_board(t, 1.8).fundamental_frequency();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_design_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
