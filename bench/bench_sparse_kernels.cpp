// BENCH-SPARSE — multithreaded sparse kernels + FV assembly caching.
//
// Sweeps FV grid sizes (8^3 -> 64^3) and thread counts, timing the hot
// kernels the Picard/transient loops sit on: SpMV, preconditioned CG, the
// one-time structure assembly vs the per-pass boundary rewrite, and the full
// steady FV solve. Emits BENCH_sparse_kernels.json (machine-readable) so
// later PRs can track the perf trajectory, plus the usual table on stdout.
//
// Headline numbers: 64^3 steady-solve speedup at 4 threads vs 1 thread, and
// the assembly time removed per Picard pass by structure caching.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "obs/report.hpp"
#include "thermal/fv.hpp"

namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace am = aeropack::materials;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Median-of-reps wall time of fn() in milliseconds. Medians (not best-of)
/// because the reported speedup cells are ratios of two timings: a lucky
/// best-of outlier in either operand made the small-grid speedups pure
/// noise. Callers pass reps >= 5.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e3;
}

/// Round-trip of an empty parallel dispatch (one no-op task per thread) on a
/// warm pool, median over many reps. Uses ThreadPool::run directly so the
/// grain layer cannot serialize it away — this is the raw scheduling cost
/// the grain thresholds exist to amortize.
double dispatch_overhead_ns(std::size_t threads) {
  an::ThreadPool pool(threads);
  const std::function<void(std::size_t)> noop = [](std::size_t) {};
  for (int w = 0; w < 32; ++w) pool.run(threads, noop);
  constexpr int kReps = 201;
  std::vector<double> samples;
  samples.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(threads, noop);
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e9;
}

/// An aluminum block with a hot component footprint and convective walls —
/// the same shape of problem the Fig. 4 model levels solve.
at::FvModel make_model(std::size_t n) {
  at::FvModel m(at::FvGrid::uniform(0.1, 0.1, 0.1, n, n, n));
  m.set_material(am::aluminum_6061());
  m.add_power({n / 4, (3 * n) / 4, n / 4, (3 * n) / 4, 0, std::max<std::size_t>(1, n / 8)},
              40.0);
  m.set_boundary(at::Face::ZMax, at::BoundaryCondition::convection(25.0, 300.0));
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::convection(10.0, 300.0));
  return m;
}

struct ThreadTiming {
  std::size_t threads = 1;
  double spmv_ms = 0.0;
  double cg_ms = 0.0;
  std::size_t cg_iterations = 0;
  double steady_ms = 0.0;
  // Chebyshev(3)-preconditioned CG on the same system; measured for grids
  // >= 32^3, where the iteration cut pays for the extra SpMVs.
  double cheby_cg_ms = 0.0;
  std::size_t cheby_cg_iterations = 0;
};

struct GridResult {
  std::size_t n = 0;
  std::size_t cells = 0;
  std::size_t nonzeros = 0;
  double triplet_assembly_ms = 0.0;  ///< legacy path: builder + sort per pass
  double structure_build_ms = 0.0;   ///< cached path: one-time symbolic build
  double boundary_update_ms = 0.0;   ///< cached path: per-pass rewrite
  std::vector<ThreadTiming> timings;
};

/// Rebuild-from-triplets cost the old Picard loop paid on every pass.
double legacy_assembly_ms(const an::CsrMatrix& pattern, int reps) {
  return time_ms(reps, [&] {
    an::SparseBuilder b(pattern.rows(), pattern.cols());
    for (std::size_t i = 0; i < pattern.rows(); ++i)
      for (std::size_t k = pattern.row_ptr()[i]; k < pattern.row_ptr()[i + 1]; ++k)
        b.add(i, pattern.col_idx()[k], pattern.values()[k]);
    const an::CsrMatrix rebuilt = b.build();
    (void)rebuilt;
  });
}

void write_json(const std::string& path, std::size_t hardware,
                const std::vector<std::size_t>& thread_counts,
                const std::vector<double>& dispatch_ns,
                const std::vector<GridResult>& grids) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"sparse_kernels\",\n";
  out << "  \"hardware_threads\": " << hardware << ",\n";
  out << "  \"thread_counts\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    out << thread_counts[i] << (i + 1 < thread_counts.size() ? ", " : "");
  out << "],\n  \"dispatch_overhead_ns\": [\n";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    out << "    {\"threads\": " << thread_counts[i] << ", \"ns\": " << dispatch_ns[i]
        << "}" << (i + 1 < thread_counts.size() ? ",\n" : "\n");
  out << "  ],\n  \"grids\": [\n";
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const GridResult& r = grids[g];
    out << "    {\n      \"n\": " << r.n << ", \"cells\": " << r.cells
        << ", \"nonzeros\": " << r.nonzeros << ",\n";
    out << "      \"triplet_assembly_ms\": " << r.triplet_assembly_ms
        << ", \"structure_build_ms\": " << r.structure_build_ms
        << ", \"boundary_update_ms\": " << r.boundary_update_ms << ",\n";
    out << "      \"threads\": [\n";
    for (std::size_t t = 0; t < r.timings.size(); ++t) {
      const ThreadTiming& tt = r.timings[t];
      out << "        {\"threads\": " << tt.threads << ", \"spmv_ms\": " << tt.spmv_ms
          << ", \"cg_ms\": " << tt.cg_ms << ", \"cg_iterations\": " << tt.cg_iterations
          << ", \"cheby_cg_ms\": " << tt.cheby_cg_ms
          << ", \"cheby_cg_iterations\": " << tt.cheby_cg_iterations
          << ", \"steady_ms\": " << tt.steady_ms
          << ", \"steady_speedup_vs_1\": "
          << (tt.steady_ms > 0.0 ? r.timings.front().steady_ms / tt.steady_ms : 0.0) << "}"
          << (t + 1 < r.timings.size() ? ",\n" : "\n");
    }
    out << "      ]\n    }" << (g + 1 < grids.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("  series written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  // --smoke: smallest grid + fixed {1,2} thread sweep, the configuration the
  // CI bench-smoke job freezes counter expectations for (bench/expected/).
  // --scaling: 32^3 only, threads {1, 2} — the cheap configuration the CI
  // speedup-floor gate (tools/check_report.py --speedups) runs against;
  // writes BENCH_sparse_scaling.json.
  // --report <out.json>: enable telemetry and write the obs run report.
  bool smoke = false;
  bool scaling = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--scaling") {
      scaling = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s (supported: --smoke, --scaling, --report <out.json>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-SPARSE — multithreaded sparse kernels + FV assembly caching\n");
  std::printf("SpMV / CG / steady FV solve vs grid size and AEROPACK_THREADS\n");
  std::printf("================================================================\n");

  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);
  std::vector<std::size_t> sizes{8, 16, 32, 64};
  if (smoke) {
    sizes = {8};
    thread_counts = {1, 2};
    std::printf("  smoke mode: n=8^3 only, threads {1, 2}\n");
  } else if (scaling) {
    sizes = {32};
    thread_counts = {1, 2};
    std::printf("  scaling mode: n=32^3 only, threads {1, 2}\n");
  }
  std::printf("  hardware threads: %zu\n\n", hardware);

  std::printf("  dispatch overhead (empty parallel dispatch, warm pool):\n");
  std::vector<double> dispatch_ns;
  for (const std::size_t t : thread_counts) {
    dispatch_ns.push_back(dispatch_overhead_ns(t));
    std::printf("    threads=%zu  %8.0f ns\n", t, dispatch_ns.back());
  }
  std::printf("\n");

  std::vector<GridResult> results;

  for (const std::size_t n : sizes) {
    GridResult res;
    res.n = n;
    res.cells = n * n * n;
    // Median-of-k needs k >= 5 on every cell — the former single-shot 64^3
    // timing is exactly what made speedup columns unreproducible.
    const int reps = 5;

    const at::FvModel model = make_model(n);

    an::set_thread_count(1);
    at::FvOptions opts;

    // 7-point matrix equivalent to the FV system for kernel micro-benches.
    {
      an::SparseBuilder b(res.cells, res.cells);
      const auto idx = [n](std::size_t i, std::size_t j, std::size_t k) {
        return i + n * (j + n * k);
      };
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j)
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = idx(i, j, k);
            double diag = 1e-3;  // boundary film-like shift keeps it SPD
            const auto nb = [&](std::size_t q) {
              b.add(c, q, -1.0);
              diag += 1.0;
            };
            if (i > 0) nb(idx(i - 1, j, k));
            if (i + 1 < n) nb(idx(i + 1, j, k));
            if (j > 0) nb(idx(i, j - 1, k));
            if (j + 1 < n) nb(idx(i, j + 1, k));
            if (k > 0) nb(idx(i, j, k - 1));
            if (k + 1 < n) nb(idx(i, j, k + 1));
            b.add(c, c, diag);
          }
      const an::CsrMatrix a = b.build();
      res.nonzeros = a.nonzeros();
      res.triplet_assembly_ms = legacy_assembly_ms(a, reps);

      an::Vector x(res.cells, 1.0);
      an::Vector rhs(res.cells, 1.0);
      for (const std::size_t t : thread_counts) {
        an::set_thread_count(t);
        ThreadTiming tt;
        tt.threads = t;
        tt.spmv_ms = time_ms(std::max(reps, 3), [&] {
          const an::Vector y = a.multiply(x);
          (void)y;
        });
        an::IterativeResult cg;
        tt.cg_ms = time_ms(reps, [&] { cg = an::conjugate_gradient(a, rhs); });
        tt.cg_iterations = cg.iterations;
        if (n >= 32) {
          an::IterativeOptions copts;
          copts.chebyshev_degree = 3;
          an::IterativeResult ccg;
          tt.cheby_cg_ms = time_ms(reps, [&] { ccg = an::conjugate_gradient(a, rhs, copts); });
          tt.cheby_cg_iterations = ccg.iterations;
        }
        tt.steady_ms = time_ms(reps, [&] {
          const auto sol = model.solve_steady(opts);
          (void)sol;
        });
        res.timings.push_back(tt);
      }
    }

    // Cached-assembly costs, measured through a transient micro-march: the
    // first step pays the structure build, subsequent steps only the
    // boundary rewrite. Separate them by comparing 2-step and 12-step runs.
    an::set_thread_count(1);
    {
      const double t2 = time_ms(reps, [&] {
        const auto tr = model.solve_transient(2.0, 1.0, 300.0, opts);
        (void)tr;
      });
      const double t12 = time_ms(reps, [&] {
        const auto tr = model.solve_transient(12.0, 1.0, 300.0, opts);
        (void)tr;
      });
      // 10 extra steps of (boundary rewrite + warm CG); the per-step cost
      // bounds the boundary update from above.
      res.boundary_update_ms = std::max(0.0, (t12 - t2) / 10.0);
      res.structure_build_ms = std::max(0.0, t2 - 2.0 * res.boundary_update_ms);
    }

    results.push_back(res);
    std::printf("  n=%2zu^3 (%7zu cells, %8zu nnz): triplet rebuild %8.3f ms/pass, "
                "cached boundary rewrite+step %8.3f ms\n",
                n, res.cells, res.nonzeros, res.triplet_assembly_ms, res.boundary_update_ms);
  }
  an::set_thread_count(0);

  std::printf("\n  %-8s | %-8s | %-10s | %-10s | %-12s | %-10s\n", "grid", "threads",
              "spmv [ms]", "cg [ms]", "steady [ms]", "speedup");
  std::printf("  ---------+----------+------------+------------+--------------+----------\n");
  for (const GridResult& r : results)
    for (const ThreadTiming& tt : r.timings)
      std::printf("  %2zu^3     | %8zu | %10.3f | %10.3f | %12.3f | %9.2fx\n", r.n, tt.threads,
                  tt.spmv_ms, tt.cg_ms, tt.steady_ms,
                  tt.steady_ms > 0.0 ? r.timings.front().steady_ms / tt.steady_ms : 0.0);

  const GridResult& big = results.back();
  const auto four = std::find_if(big.timings.begin(), big.timings.end(),
                                 [](const ThreadTiming& t) { return t.threads == 4; });
  if (four != big.timings.end() && four->steady_ms > 0.0)
    std::printf("\n  headline: 64^3 steady solve %.2fx at 4 threads vs 1 thread"
                " (%zu hardware threads available)\n",
                big.timings.front().steady_ms / four->steady_ms, hardware);
  std::printf("  headline: structure caching removes %.3f ms of triplet rebuild per"
              " Picard pass on 64^3\n\n",
              big.triplet_assembly_ms);

  // Chebyshev headline (printed whenever a grid measured it).
  for (const GridResult& r : results) {
    if (r.timings.empty() || r.timings.front().cheby_cg_iterations == 0) continue;
    const ThreadTiming& tt = r.timings.front();
    std::printf("  cheby(3) CG on %zu^3: %zu -> %zu iterations (%.0f%% cut), %.3f -> %.3f ms\n",
                r.n, tt.cg_iterations, tt.cheby_cg_iterations,
                100.0 * (1.0 - static_cast<double>(tt.cheby_cg_iterations) /
                                   static_cast<double>(tt.cg_iterations)),
                tt.cg_ms, tt.cheby_cg_ms);
  }

  write_json(scaling ? "BENCH_sparse_scaling.json" : "BENCH_sparse_kernels.json", hardware,
             thread_counts, dispatch_ns, results);

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_sparse_kernels", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.set_meta("largest_cells", static_cast<double>(results.back().cells));
    report.set_meta("largest_nonzeros", static_cast<double>(results.back().nonzeros));
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
