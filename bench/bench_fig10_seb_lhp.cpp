// FIG10 — the paper's headline result (COSEE): T_pcb - T_air versus SEB
// power for (a) without LHP, (b) with LHP horizontal, (c) with LHP at 22 deg
// tilt; plus the derived claims (+150% capability at constant PCB
// temperature, -32 C at 40 W, 58 W carried by the LHPs).
#include "bench_util.hpp"
#include "core/seb.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {

const double kCabin = ac::celsius_to_kelvin(25.0);

const ac::SebModel& model() {
  static const ac::SebModel m{ac::SebDesign{}};
  return m;
}

void report() {
  bench_util::banner("FIG 10 — SEB cooling with heat pipes + loop heat pipes",
                     "T_pcb - T_air vs dissipated power; aluminum seat, cabin air 25 C");

  std::printf("\n  %-8s | %-14s | %-18s | %-18s\n", "Q [W]", "no LHP dT [K]",
              "LHP horiz dT [K]", "LHP 22deg dT [K]");
  std::printf("  ---------+----------------+--------------------+-------------------\n");
  std::vector<std::vector<double>> series;
  for (double q : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0}) {
    const auto a = model().solve(q, kCabin, ac::SebCooling::NaturalOnly);
    const auto b = model().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0);
    const auto c = model().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
    std::printf("  %-8.0f | %-14.1f | %-18.1f | %-18.1f\n", q, a.dt_pcb_air, b.dt_pcb_air,
                c.dt_pcb_air);
    series.push_back({q, a.dt_pcb_air, b.dt_pcb_air, c.dt_pcb_air, b.q_lhp_path});
  }
  bench_util::write_csv("fig10_seb_lhp.csv",
                        {"power_w", "dt_no_lhp_k", "dt_lhp_k", "dt_lhp_tilt22_k",
                         "q_lhp_path_w"},
                        series);

  const double cap_no = model().capability_at_dt(60.0, kCabin, ac::SebCooling::NaturalOnly);
  const double cap_lhp =
      model().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
  const double cap_tilt =
      model().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
  const double dt_no = model().solve(40.0, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air;
  const double dt_lhp =
      model().solve(40.0, kCabin, ac::SebCooling::HeatPipesAndLhp).dt_pcb_air;
  const auto full = model().solve(100.0, kCabin, ac::SebCooling::HeatPipesAndLhp);

  std::printf("\n");
  bench_util::header();
  bench_util::row("capability without LHP @ dT=60K [W]", "40", bench_util::fmt(cap_no),
                  bench_util::check(std::fabs(cap_no - 40.0) < 5.0));
  bench_util::row("capability with LHP @ dT=60K [W]", "100", bench_util::fmt(cap_lhp),
                  bench_util::check(std::fabs(cap_lhp - 100.0) < 12.0));
  bench_util::row("capability increase [%]", "+150",
                  "+" + bench_util::fmt(100.0 * (cap_lhp - cap_no) / cap_no, 0),
                  bench_util::check((cap_lhp - cap_no) / cap_no > 1.2));
  bench_util::row("capability with LHP tilted 22deg [W]", "slightly less",
                  bench_util::fmt(cap_tilt),
                  bench_util::check(cap_tilt < cap_lhp && cap_tilt > 0.85 * cap_lhp));
  bench_util::row("PCB temperature decrease @ 40 W [K]", "32",
                  bench_util::fmt(dt_no - dt_lhp),
                  bench_util::check(std::fabs(dt_no - dt_lhp - 32.0) < 5.0));
  bench_util::row("power carried by the two LHPs @ 100 W [W]", "58",
                  bench_util::fmt(full.q_lhp_path),
                  bench_util::check(std::fabs(full.q_lhp_path - 58.0) < 7.0));
  bench_util::row("LHP within capillary limit at 22deg", "yes (tests passed)",
                  full.lhp_within_capillary ? "yes" : "no",
                  bench_util::check(full.lhp_within_capillary));
  std::printf("\n");
}

void bm_solve_operating_point(benchmark::State& state) {
  const double q = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto pt = model().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(bm_solve_operating_point)->Arg(10)->Arg(40)->Arg(100);

void bm_capability_search(benchmark::State& state) {
  for (auto _ : state) {
    double cap = model().capability_at_dt(60.0, kCabin, ac::SebCooling::HeatPipesAndLhp);
    benchmark::DoNotOptimize(cap);
  }
}
BENCHMARK(bm_capability_search);

void bm_full_fig10_sweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double q = 10.0; q <= 110.0; q += 10.0) {
      acc += model().solve(q, kCabin, ac::SebCooling::NaturalOnly).dt_pcb_air;
      acc += model().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 0.0).dt_pcb_air;
      acc += model().solve(q, kCabin, ac::SebCooling::HeatPipesAndLhp, 22.0).dt_pcb_air;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_full_fig10_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
