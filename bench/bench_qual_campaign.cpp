// TAB-QUAL — the COSEE qualification campaign: "linear acceleration (up to
// 9 g, 3 minutes in each axis), vibrations (according to DO160 Curve C1),
// climatic tests (-25..+55 C), thermal shock (-45/+55 C, 5 C/min). The seats
// have been submitted to all the different tests without damage."
#include <cstdio>

#include "bench_util.hpp"
#include "core/qualification.hpp"
#include "core/seb.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {

/// The SEB + seat assembly as the unit under test, with the SEB thermal
/// model supplying the climatic behaviour.
ac::EquipmentUnderTest seb_eut() {
  static const ac::SebModel model{ac::SebDesign{}};
  ac::EquipmentUnderTest eut;
  eut.name = "COSEE seat + SEB";
  eut.mass = 4.5;
  eut.fundamental_frequency = 170.0;  // boxed SEB on the seat structure
  eut.damping_ratio = 0.05;
  eut.mount_section_modulus = 3.5e-7;
  eut.mount_length = 0.05;
  eut.mount_yield = 276e6;  // Al 6061 seat fittings
  eut.board_edge = 0.30;
  eut.board_thickness = 2.0e-3;
  eut.critical_component_length = 0.035;
  eut.worst_junction_at_ambient = [](double ambient_k) {
    // SEB at 40 W with the LHP chain; junction ~ PCB + attach rise.
    const auto pt = model.solve(40.0, ambient_k, ac::SebCooling::HeatPipesAndLhp, 0.0);
    return pt.t_pcb + 12.0;
  };
  return eut;
}

ac::CampaignOptions paper_campaign() {
  ac::CampaignOptions opts;  // defaults already encode the paper's levels
  opts.climatic_low = ac::celsius_to_kelvin(-25.0);
  opts.climatic_high = ac::celsius_to_kelvin(55.0);
  return opts;
}

void report() {
  bench_util::banner("TAB-QUAL — COSEE qualification campaign",
                     "9 g / DO-160 C1 / climatic -25..+55 C / thermal shock -45..+55 C @5 C/min");

  const auto eut = seb_eut();
  const auto opts = paper_campaign();
  const auto rpt = ac::run_campaign(eut, opts);

  std::printf("\n  %-52s | %-8s | %-8s\n", "test", "margin", "result");
  std::printf("  -----------------------------------------------------+----------+---------\n");
  for (const auto& t : rpt.results)
    std::printf("  %-52s | %-8.2f | %-8s\n", t.test.c_str(), t.margin,
                t.passed ? "PASS" : "FAIL");
  std::printf("\n  detail:\n");
  for (const auto& t : rpt.results) std::printf("    %s: %s\n", t.test.c_str(), t.detail.c_str());

  std::printf("\n");
  bench_util::header();
  bench_util::row("all tests passed", "yes (\"without damage\")",
                  rpt.all_passed ? "yes" : "no", bench_util::check(rpt.all_passed));
  // Margin sensitivity: a harsher D1 environment is the discriminating case.
  auto harsher = opts;
  harsher.vibration_curve = aeropack::fem::do160_curve_d1();
  const auto vib_c1 = ac::run_random_vibration(eut, opts);
  const auto vib_d1 = ac::run_random_vibration(eut, harsher);
  bench_util::row("C1 vs D1 vibration margin ratio", "> 1 (C1 is benign)",
                  bench_util::fmt(vib_c1.margin / vib_d1.margin, 2),
                  bench_util::check(vib_c1.margin > vib_d1.margin));
  std::printf("\n");
}

void bm_full_campaign(benchmark::State& state) {
  const auto eut = seb_eut();
  const auto opts = paper_campaign();
  for (auto _ : state) {
    auto rpt = ac::run_campaign(eut, opts);
    benchmark::DoNotOptimize(rpt);
  }
}
BENCHMARK(bm_full_campaign)->Unit(benchmark::kMillisecond);

void bm_single_tests(benchmark::State& state) {
  const auto eut = seb_eut();
  const auto opts = paper_campaign();
  for (auto _ : state) {
    auto a = ac::run_linear_acceleration(eut, opts);
    auto v = ac::run_random_vibration(eut, opts);
    auto s = ac::run_thermal_shock(eut, opts);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(v);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(bm_single_tests);

}  // namespace

AEROPACK_BENCH_MAIN(report)
