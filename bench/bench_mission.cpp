// BENCH-MISSION — mission-profile transient campaigns through the scenario
// service.
//
// The qualification story of the paper is not one operating point but a
// campaign: DO-160 thermal-shock cycles and orbital eclipse waves swept
// across power cases, all on the same equipment structure. This bench runs
// both mission families end-to-end through core::ScenarioService and gates
// the properties the mission tier promises:
//  - every mission point of the SEB box reuses ONE cached steady FvAssembly
//    (the same artifact class steady solves key), so the campaign's
//    structure cost is O(1), not O(points);
//  - campaign outputs are bitwise identical across service worker counts
//    (1 vs 4) — the adaptive controller is deterministic;
//  - the adaptive march stays decisively cheaper than the fixed-dt march a
//    naive driver would use (implicit solves compared at equal accuracy
//    targets);
//  - the ROM-fidelity mission points (mission_rom_*) share ONE cached
//    compact model across the campaign and the reduced march beats the FV
//    march of the same profile by >= 10x wall clock — the fidelity-swap
//    payoff the unified transient engine exists to deliver.
//
// --smoke runs the reduced campaign for the CI bench-smoke job; the
// deterministic mission.* / fv.* / svc counters land in the --report JSON
// and are gated against bench/expected/bench_mission.expected.json. The
// wall-clock counter mission.wallclock.elapsed_us is deliberately excluded
// from the expectation file (tools/check_report.py skips the
// mission.wallclock. prefix at --update time).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "core/scenario_service.hpp"
#include "mission/profile.hpp"
#include "mission/service_graphs.hpp"
#include "mission/transient.hpp"
#include "numeric/parallel.hpp"
#include "obs/report.hpp"
#include "rom/canonical.hpp"
#include "thermal/fv.hpp"

namespace ac = aeropack::core;
namespace am = aeropack::mission;
namespace an = aeropack::numeric;
namespace ar = aeropack::rom;
namespace at = aeropack::thermal;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<ac::ScenarioSpec> build_campaign(std::size_t power_cases) {
  std::vector<ac::ScenarioSpec> specs;
  for (std::size_t i = 0; i < power_cases; ++i) {
    ac::ScenarioSpec shock;
    shock.name = "do160_p" + std::to_string(i);
    shock.graph = "mission_seb_do160";
    shock.params["dwell_s"] = 240.0;
    shock.params["ramp_rate"] = 25.0;
    shock.loads["pcb_components"] = 30.0 + 10.0 * static_cast<double>(i);
    shock.loads["psu"] = 15.0;
    specs.push_back(shock);

    ac::ScenarioSpec orbit;
    orbit.name = "eclipse_p" + std::to_string(i);
    orbit.graph = "mission_seb_eclipse";
    orbit.params["orbits"] = 2.0;
    orbit.params["period_s"] = 600.0;
    orbit.loads["pcb_components"] = 30.0 + 10.0 * static_cast<double>(i);
    orbit.loads["psu"] = 10.0;
    specs.push_back(orbit);
  }
  // The same mission points at reduced-order fidelity: identical spec
  // shape, graph name swapped. All of them march one cached compact model.
  for (std::size_t i = 0; i < power_cases; ++i) {
    ac::ScenarioSpec rom_shock;
    rom_shock.name = "rom_do160_p" + std::to_string(i);
    rom_shock.graph = "mission_rom_do160";
    rom_shock.params["dwell_s"] = 240.0;
    rom_shock.params["ramp_rate"] = 25.0;
    rom_shock.loads["pcb_components"] = 30.0 + 10.0 * static_cast<double>(i);
    rom_shock.loads["psu"] = 15.0;
    specs.push_back(rom_shock);

    ac::ScenarioSpec rom_orbit;
    rom_orbit.name = "rom_eclipse_p" + std::to_string(i);
    rom_orbit.graph = "mission_rom_eclipse";
    rom_orbit.params["orbits"] = 2.0;
    rom_orbit.params["period_s"] = 600.0;
    rom_orbit.loads["pcb_components"] = 30.0 + 10.0 * static_cast<double>(i);
    rom_orbit.loads["psu"] = 10.0;
    specs.push_back(rom_orbit);
  }
  ac::ScenarioSpec flight;
  flight.name = "arinc_flight";
  flight.graph = "mission_network_flight";
  flight.params["time_scale"] = 0.02;
  specs.push_back(flight);
  return specs;
}

struct CampaignRun {
  std::vector<ac::ScenarioResult> results;
  ac::ArtifactCacheStats cache;
  double seconds = 0.0;
};

CampaignRun run_campaign(const std::vector<ac::ScenarioSpec>& specs, std::size_t workers,
                         bool telemetry) {
  ac::ScenarioServiceOptions opts;
  opts.workers = workers;
  opts.telemetry = telemetry;
  ac::ScenarioService service(opts);
  am::register_mission_graphs(service);
  const auto t0 = std::chrono::steady_clock::now();
  CampaignRun run;
  run.results = service.run(specs);
  run.seconds = seconds_since(t0);
  run.cache = service.cache().stats();
  return run;
}

/// Adaptive-vs-fixed economy on one DO-160 shock of the SEB box: implicit
/// solves each march spends to cover the mission at the same accuracy class.
struct EconomyPoint {
  std::size_t adaptive_solves = 0;
  std::size_t fixed_steps = 0;
  double ratio = 0.0;
};

EconomyPoint adaptive_economy() {
  ar::CanonicalCase cc = ar::seb_box();
  ar::RomInputs inputs;
  inputs.sink_temperatures.assign(cc.spec.ports.size(), 228.15);
  inputs.map_powers = {40.0, 15.0};
  ar::apply_inputs(cc.model, cc.spec, inputs);
  const am::Profile profile = am::Profile::do160_thermal_shock(228.15, 328.15, 25.0, 240.0);

  am::AdaptiveOptions adaptive;
  adaptive.tolerance = 0.05;
  const am::MissionSolution sol = am::run_fv_mission(cc.model, profile, 293.15, adaptive);

  EconomyPoint point;
  point.adaptive_solves = 3 * (sol.steps_accepted + sol.steps_rejected);
  // The fixed-dt march that reaches the same accuracy class: first-order
  // implicit Euler needs dt comparable to the smallest step the controller
  // was forced to (the ramps bound the error budget globally).
  const double dt_fixed = 2.0;
  point.fixed_steps = static_cast<std::size_t>(profile.total_duration() / dt_fixed);
  point.ratio = static_cast<double>(point.fixed_steps) /
                static_cast<double>(point.adaptive_solves > 0 ? point.adaptive_solves : 1);
  return point;
}

/// ROM-vs-FV march economy on one DO-160 shock: the identical profile and
/// controller driven through thermal::FvTransientStepper and
/// rom::RomTransientStepper (compact-model build excluded — campaigns
/// amortize it through the artifact cache, which Gate 1b verifies).
struct RomFidelityPoint {
  double fv_seconds = 0.0;
  double rom_seconds = 0.0;
  double speedup = 0.0;
  std::size_t fv_steps = 0;
  std::size_t rom_steps = 0;
};

RomFidelityPoint rom_fidelity_economy() {
  const ar::CanonicalCase cc = ar::seb_box();
  ar::RomInputs inputs;
  inputs.sink_temperatures.assign(cc.spec.ports.size(), 228.15);
  inputs.map_powers = {40.0, 15.0};
  const am::Profile profile = am::Profile::do160_thermal_shock(228.15, 328.15, 25.0, 240.0);
  const ar::RomModel rom = ar::build_rom(cc.model, cc.spec, {});

  at::FvModel fv_model = cc.model;
  ar::apply_inputs(fv_model, cc.spec, inputs);

  RomFidelityPoint point;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const am::MissionSolution sol = am::run_fv_mission(fv_model, profile, 293.15);
    point.fv_seconds = seconds_since(t0);
    point.fv_steps = sol.steps_accepted;
  }
  // Best of three reduced marches: the march is sub-millisecond, so one
  // scheduler hiccup would otherwise dominate the measurement.
  point.rom_seconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const am::MissionSolution sol =
        am::run_rom_mission(rom, profile, 293.15, inputs, {}, &cc.model.grid());
    point.rom_seconds = std::min(point.rom_seconds, seconds_since(t0));
    point.rom_steps = sol.steps_accepted;
  }
  point.speedup = point.fv_seconds / (point.rom_seconds > 0.0 ? point.rom_seconds : 1e-30);
  return point;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --smoke, --report <out.json>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-MISSION — flight/orbital transient campaigns via the\n");
  std::printf("scenario service: shared assemblies, deterministic adaptivity\n");
  std::printf("================================================================\n");
  if (smoke) std::printf("  smoke mode: reduced campaign\n");

  const std::size_t power_cases = smoke ? 2 : 6;
  const std::vector<ac::ScenarioSpec> specs = build_campaign(power_cases);
  const std::size_t fv_points = 2 * power_cases;   // do160 + eclipse per case
  const std::size_t rom_points = 2 * power_cases;  // rom_do160 + rom_eclipse per case

  // Reference pass: one worker, telemetry on (per-scenario counters feed
  // the report and the gates below).
  const CampaignRun ref = run_campaign(specs, 1, true);
  // Parallel pass: the determinism gate.
  const CampaignRun par = run_campaign(specs, 4, false);

  bool ok = true;
  std::printf("\n  %-14s | %6s | %7s | %6s | %10s | %10s\n", "scenario", "steps", "rejects",
              "phase", "t_peak [K]", "t_end [K]");
  std::printf("  ---------------+--------+---------+--------+------------+-----------\n");
  for (const ac::ScenarioResult& r : ref.results) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: %s: %s\n", r.name.c_str(), r.error.c_str());
      ok = false;
      continue;
    }
    const bool field_graph = r.values.count("t_peak_max") > 0;
    std::printf("  %-14s | %6.0f | %7.0f | %6.0f | %10.2f | %10.2f\n", r.name.c_str(),
                r.values.at("steps"), r.values.at("step_rejections"),
                r.values.at("phase_transitions"),
                field_graph ? r.values.at("t_peak_max") : r.values.at("t_equipment_peak"),
                field_graph ? r.values.at("t_final_max") : r.values.at("t_equipment"));
  }

  // Gate 1: one shared steady assembly serves every FV mission point and
  // one shared compact model serves every ROM mission point. The first
  // point of each artifact class builds (two misses in total); every other
  // point hits the cache.
  if (ref.cache.hits + 2 < fv_points + rom_points || ref.cache.misses != 2) {
    std::fprintf(stderr,
                 "FAIL: campaign artifact sharing: %llu hits / %llu misses over %zu FV + %zu ROM"
                 " points (want %zu hits, 2 misses)\n",
                 static_cast<unsigned long long>(ref.cache.hits),
                 static_cast<unsigned long long>(ref.cache.misses), fv_points, rom_points,
                 fv_points + rom_points - 2);
    ok = false;
  }

  // Gate 2: bitwise-identical campaign outputs across worker counts.
  for (std::size_t i = 0; i < ref.results.size(); ++i) {
    if (!par.results[i].ok || par.results[i].values != ref.results[i].values) {
      std::fprintf(stderr, "FAIL: %s differs between 1 and 4 service workers\n",
                   ref.results[i].name.c_str());
      ok = false;
    }
  }

  // Gate 3: the adaptive march undercuts the equal-accuracy fixed-dt march.
  const EconomyPoint economy = adaptive_economy();
  if (economy.ratio < 2.0) {
    std::fprintf(stderr, "FAIL: adaptive economy %.2fx < 2x bar (%zu solves vs %zu steps)\n",
                 economy.ratio, economy.adaptive_solves, economy.fixed_steps);
    ok = false;
  }

  // Gate 4: the reduced march of the same profile beats the FV march by
  // >= 10x wall clock (compact-model build amortized by the cache above).
  const RomFidelityPoint rom_economy = rom_fidelity_economy();
  if (rom_economy.speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: ROM fidelity speedup %.1fx < 10x bar (FV %.4fs / ROM %.4fs)\n",
                 rom_economy.speedup, rom_economy.fv_seconds, rom_economy.rom_seconds);
    ok = false;
  }

  std::printf("\n  campaign: %zu points, %.2fs @1 worker, %.2fs @4 workers\n", specs.size(),
              ref.seconds, par.seconds);
  std::printf("  assembly cache: %llu hits / %llu misses (one build serves the campaign)\n",
              static_cast<unsigned long long>(ref.cache.hits),
              static_cast<unsigned long long>(ref.cache.misses));
  std::printf("  adaptive economy: %zu implicit solves vs %zu fixed-dt steps (%.1fx)\n",
              economy.adaptive_solves, economy.fixed_steps, economy.ratio);
  std::printf("  rom fidelity: FV march %.4fs (%zu steps) vs ROM march %.4fs (%zu steps)"
              " — %.0fx\n",
              rom_economy.fv_seconds, rom_economy.fv_steps, rom_economy.rom_seconds,
              rom_economy.rom_steps, rom_economy.speedup);

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_mission", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.set_meta("campaign.points", static_cast<double>(specs.size()));
    report.set_meta("campaign.seconds_1w", ref.seconds);
    report.set_meta("campaign.seconds_4w", par.seconds);
    report.set_meta("economy.ratio", economy.ratio);
    report.set_meta("rom.speedup", rom_economy.speedup);
    report.set_meta("rom.fv_seconds", rom_economy.fv_seconds);
    report.set_meta("rom.rom_seconds", rom_economy.rom_seconds);
    for (const ac::ScenarioResult& r : ref.results) report.add_counters(r.name, r.counters);
    report.add_counters("svc", {{"cache.hits", ref.cache.hits},
                                {"cache.misses", ref.cache.misses},
                                {"cache.insertions", ref.cache.insertions}});
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }

  if (ok)
    std::printf("\n  headline: %zu-point mission campaign on one cached assembly,"
                " bitwise stable across workers\n\n",
                specs.size());
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
