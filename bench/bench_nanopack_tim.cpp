// TAB-NANOPACK — Section IV.B results: adhesive conductivities (6 and
// 9.5 W/m K, electrically conductive, 14 MPa shear), HNC machining (-20%
// BLT), 20 W/m K CNT metal-polymer composite, and the ASTM D5470 tester
// (accuracy +/-1 K mm^2/W, thickness +/-2 um). Plus the effective-medium
// sweep behind the material development.
#include <cstdio>

#include "bench_util.hpp"
#include "tim/d5470.hpp"
#include "tim/effective_medium.hpp"
#include "tim/tim_material.hpp"

namespace ap = aeropack::tim;

namespace {

void report() {
  bench_util::banner("TAB-NANOPACK — thermal interface materials",
                     "Material catalogue, effective-medium design sweep, virtual D5470 tester");

  const double p = 0.3e6;  // typical clamp pressure
  std::printf("\n  %-36s | %-10s | %-10s | %-14s\n", "material", "k [W/mK]", "BLT [um]",
              "R [K mm^2/W]");
  std::printf("  -------------------------------------+------------+------------+--------------\n");
  for (const auto& m : ap::all_tim_materials()) {
    std::printf("  %-36s | %-10.1f | %-10.1f | %-14.2f\n", m.name.c_str(), m.conductivity,
                m.blt(p) * 1e6, m.specific_resistance_kmm2(p));
  }

  // Effective-medium design curve: silver flakes in epoxy.
  std::printf("\n  Ag-flake/epoxy design sweep (Lewis-Nielsen, A=5, phi_max=0.52):\n");
  std::printf("  %-10s | %-12s\n", "phi [-]", "k [W/m K]");
  std::printf("  -----------+-------------\n");
  for (double phi : {0.1, 0.2, 0.3, 0.4, 0.48}) {
    std::printf("  %-10.2f | %-12.2f\n", phi, ap::k_lewis_nielsen(0.2, 420.0, phi, 5.0, 0.52));
  }
  const double phi6 = ap::filler_fraction_for(6.0, 0.2, 420.0, 5.0, 0.52);

  // Virtual D5470 characterization of the grease reference.
  const auto d = ap::characterize(ap::conventional_grease(),
                                  {0.05e6, 0.1e6, 0.2e6, 0.5e6, 1.0e6}, 10, {});

  const auto mono = ap::nanopack_mono_epoxy_silver_flake();
  const auto multi = ap::nanopack_multi_epoxy_silver_sphere();
  const auto cnt = ap::nanopack_cnt_metal_polymer();
  const auto hnc = ap::with_hnc_surface(ap::conventional_grease());

  std::printf("\n");
  bench_util::header();
  bench_util::row("mono-epoxy Ag-flake adhesive k [W/m K]", "6", bench_util::fmt(mono.conductivity),
                  bench_util::check(mono.conductivity == 6.0));
  bench_util::row("multi-epoxy Ag-sphere adhesive k [W/m K]", "9.5",
                  bench_util::fmt(multi.conductivity),
                  bench_util::check(multi.conductivity == 9.5));
  bench_util::row("mono-epoxy shear strength [MPa]", "14",
                  bench_util::fmt(mono.shear_strength / 1e6),
                  bench_util::check(mono.shear_strength == 14e6));
  bench_util::row("adhesive electrical resistivity [Ohm cm]", "1e-4 .. 1e-5",
                  bench_util::fmt(mono.electrical_resistivity * 100.0, 6),
                  bench_util::check(mono.electrical_resistivity > 0.0));
  bench_util::row("CNT metal-polymer composite k [W/m K]", "20",
                  bench_util::fmt(cnt.conductivity),
                  bench_util::check(cnt.conductivity == 20.0));
  bench_util::row("CNT composite meets R<5 Kmm2/W @ BLT<20um", "project target",
                  ap::meets_nanopack_targets(cnt, 0.5e6) ? "yes" : "no",
                  bench_util::check(ap::meets_nanopack_targets(cnt, 0.5e6)));
  bench_util::row("HNC bond-line reduction [%]", ">20",
                  bench_util::fmt(100.0 * (1.0 - hnc.blt(p) / ap::conventional_grease().blt(p)),
                                  0),
                  bench_util::check(hnc.blt(p) < 0.8 * ap::conventional_grease().blt(p)));
  bench_util::row("Ag-flake loading for 6 W/m K [vol frac]", "realistic (<0.5)",
                  bench_util::fmt(phi6, 2), bench_util::check(phi6 < 0.5));
  bench_util::row("D5470 resistance accuracy [K mm^2/W]", "+/-1",
                  "+/-" + bench_util::fmt(d.resistance_accuracy_kmm2, 2),
                  bench_util::check(d.resistance_accuracy_kmm2 < 1.0));
  bench_util::row("D5470 thickness accuracy [um]", "+/-2",
                  "+/-" + bench_util::fmt(d.thickness_accuracy_um, 2),
                  bench_util::check(d.thickness_accuracy_um < 3.0));
  bench_util::row("D5470 recovered grease k [W/m K]", "3 (truth)",
                  bench_util::fmt(d.conductivity, 2),
                  bench_util::check(std::fabs(d.conductivity - 3.0) < 0.5));
  std::printf("\n");
}

void bm_lewis_nielsen_sweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double phi = 0.02; phi < 0.5; phi += 0.02)
      acc += ap::k_lewis_nielsen(0.2, 420.0, phi, 5.0, 0.52);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_lewis_nielsen_sweep);

void bm_bruggeman_solve(benchmark::State& state) {
  for (auto _ : state) {
    double k = ap::k_bruggeman(0.2, 400.0, 0.35);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_bruggeman_solve);

void bm_d5470_characterization(benchmark::State& state) {
  const auto grease = ap::conventional_grease();
  for (auto _ : state) {
    auto c = ap::characterize(grease, {0.05e6, 0.2e6, 1.0e6}, 5, {});
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(bm_d5470_characterization)->Unit(benchmark::kMicrosecond);

}  // namespace

AEROPACK_BENCH_MAIN(report)
