// TAB-HOTSPOT — the paper's Section-IV argument: component heat densities
// "are surpassing 10 W/cm^2 and will reach 100 W/cm^2"; the ARINC 600 global
// airflow "cannot cope with the hot spot problems (up to ten times the
// standard air flow rate would be required)"; two-phase spreading is the
// alternative. We sweep the hot-spot flux and compare the required forced-air
// flow multiplier against a heat-pipe spreader solution.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/units.hpp"
#include "materials/fluids.hpp"
#include "materials/solid.hpp"
#include "thermal/forced_air.hpp"
#include "twophase/heat_pipe.hpp"

namespace at = aeropack::thermal;
namespace ac = aeropack::core;
namespace tp = aeropack::twophase;

namespace {

void report() {
  bench_util::banner("TAB-HOTSPOT — hot-spot flux sweep, forced air vs two-phase",
                     "1 cm^2 source on a 100 W module; surface limit 110 C, 40 C supply");

  at::ArincAirSupply supply;
  at::CardChannel chan;
  const double t_limit = ac::celsius_to_kelvin(110.0);

  // Two-phase alternative: a 6 mm copper/water pipe spreads the spot onto a
  // 10x10 cm plate cooled by the same standard airflow.
  tp::HeatPipeGeometry g;
  const tp::HeatPipe pipe(aeropack::materials::water(), g, tp::Wick::sintered_powder(),
                          aeropack::materials::copper());
  const auto hs_ref = at::analyze_hot_spot(supply, chan, 100.0, 1.0, 0.5, t_limit);
  const double plate_area = 0.01;  // m^2
  const double source_area = 1e-4;

  std::printf("\n  %-12s | %-16s | %-18s | %-18s\n", "flux [W/cm2]", "air-only T [C]",
              "required flow [x]", "HP spreader T [C]");
  std::printf("  -------------+------------------+--------------------+-------------------\n");
  bool ten_needs_much_more_air = false;
  bool hp_holds_ten = false;
  for (double flux_wcm2 : {1.0, 3.0, 10.0, 30.0, 100.0}) {
    const double flux = flux_wcm2 * 1e4;
    const double q_spot = flux * source_area;
    const auto air = at::analyze_hot_spot(supply, chan, 100.0, flux, 0.5, t_limit);
    const double mult =
        at::required_flow_multiplier(supply, chan, 100.0, flux, 0.5, t_limit);
    // Two-phase: spot -> heat pipe (R_hp) -> plate -> air film over plate.
    const double r_spread = at::spreading_resistance(source_area, plate_area, 2e-3,
                                                     aeropack::materials::copper().conductivity,
                                                     hs_ref.h);
    const double r_hp = pipe.thermal_resistance(330.0);
    const double t_hp = air.local_air_temperature + q_spot * (r_hp + r_spread);
    std::printf("  %-12.0f | %-16.0f | %-18s | %-18.1f\n", flux_wcm2,
                ac::kelvin_to_celsius(air.surface_temperature),
                std::isinf(mult) ? ">100" : bench_util::fmt(mult, 1).c_str(),
                ac::kelvin_to_celsius(t_hp));
    if (flux_wcm2 == 10.0) {
      ten_needs_much_more_air = std::isinf(mult) || mult > 3.0;
      hp_holds_ten = t_hp <= t_limit;
    }
  }

  std::printf("\n");
  bench_util::header();
  bench_util::row("10 W/cm^2 with standard ARINC flow", "not applicable",
                  ten_needs_much_more_air ? "infeasible" : "feasible",
                  bench_util::check(ten_needs_much_more_air));
  bench_util::row("flow increase needed (order)", "up to ~10x", "see sweep above", "");
  bench_util::row("10 W/cm^2 with HP spreading to plate", "the two-phase promise",
                  hp_holds_ten ? "feasible" : "infeasible", bench_util::check(hp_holds_ten));
  bench_util::row("heat pipe capillary limit @ 330 K [W]", ">> 10 W spot",
                  bench_util::fmt(pipe.max_power(330.0), 0),
                  bench_util::check(pipe.max_power(330.0) > 30.0));
  std::printf("\n");
}

void bm_flow_multiplier_search(benchmark::State& state) {
  at::ArincAirSupply supply;
  at::CardChannel chan;
  for (auto _ : state) {
    double m = at::required_flow_multiplier(supply, chan, 100.0, 2e4, 0.5, 383.15);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(bm_flow_multiplier_search);

void bm_spreading_resistance(benchmark::State& state) {
  for (auto _ : state) {
    double r = at::spreading_resistance(1e-4, 1e-2, 2e-3, 390.0, 80.0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_spreading_resistance);

void bm_hp_limit_curve(benchmark::State& state) {
  tp::HeatPipeGeometry g;
  const tp::HeatPipe pipe(aeropack::materials::water(), g, tp::Wick::sintered_powder(),
                          aeropack::materials::copper());
  for (auto _ : state) {
    double acc = 0.0;
    for (double t = 300.0; t <= 390.0; t += 5.0) acc += pipe.max_power(t);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_hp_limit_curve);

}  // namespace

AEROPACK_BENCH_MAIN(report)
