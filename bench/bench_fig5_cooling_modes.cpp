// FIG5 — "Cooling modes": conduction cooled / direct air flow / air-or-
// liquid flow through / air flow around (+ the Section-IV two-phase route).
// For one representative equipment we compute each technology's power
// capability and the selector's choice, reproducing the paper's doctrine
// that direct air is "the most widespread ... simple to implement" until
// power/hot-spots exceed it.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cooling_selection.hpp"
#include "core/units.hpp"

namespace ac = aeropack::core;

namespace {

ac::Equipment rack_equipment(double watts, std::size_t modules) {
  ac::Equipment eq;
  eq.name = "rack unit";
  for (std::size_t m = 0; m < modules; ++m) {
    ac::Module mod;
    mod.name = "M" + std::to_string(m);
    ac::Board b;
    b.name = "b";
    ac::Component c;
    c.reference = "LOAD";
    c.power = watts / static_cast<double>(modules);
    b.components.push_back(c);
    mod.boards.push_back(b);
    eq.modules.push_back(mod);
  }
  return eq;
}

void report() {
  bench_util::banner("FIG 5 — cooling modes trade (Level 1)",
                     "Capability of each Fig.-5 technique for a 3-module equipment, 55 C bay");

  const auto eq = rack_equipment(60.0, 3);
  ac::Specification spec;  // 55 C ambient, 85 C internal limit, 2400 m
  const auto sel = ac::select_cooling(eq, spec);

  std::printf("\n  %-32s | %-14s | %-10s | %-9s\n", "technology", "capability [W]",
              "complexity", "feasible");
  std::printf("  ---------------------------------+----------------+------------+----------\n");
  for (const auto& a : sel.assessments) {
    std::printf("  %-32s | %-14.0f | %-10d | %-9s\n", ac::to_string(a.technology).c_str(),
                a.max_power, a.complexity, a.feasible ? "yes" : "no");
  }
  std::printf("\n  selected: %s\n", ac::to_string(sel.selected).c_str());

  // Escalation study: demand sweep shows where each principle runs out —
  // the paper's ">100 W/module no longer possible with standard approaches".
  std::printf("\n  %-12s | %-30s\n", "demand [W]", "selected technology");
  std::printf("  -------------+------------------------------\n");
  for (double q : {15.0, 60.0, 150.0, 300.0, 600.0}) {
    const auto s = ac::select_cooling(rack_equipment(q, 3), spec);
    std::printf("  %-12.0f | %-30s\n", q,
                s.any_feasible ? ac::to_string(s.selected).c_str() : "none feasible");
  }

  const auto low = ac::select_cooling(rack_equipment(15.0, 3), spec);
  const auto high = ac::select_cooling(rack_equipment(300.0, 3), spec);
  std::printf("\n");
  bench_util::header();
  bench_util::row("low power choice", "simple (free conv / air)",
                  ac::to_string(low.selected),
                  bench_util::check(low.selected == ac::CoolingTechnology::FreeConvection ||
                                    low.selected == ac::CoolingTechnology::DirectAirFlow ||
                                    low.selected == ac::CoolingTechnology::AirFlowAround));
  bench_util::row("high power choice", "advanced (2-phase / liquid)",
                  high.any_feasible ? ac::to_string(high.selected) : "none",
                  bench_util::check(!high.any_feasible ||
                                    high.selected == ac::CoolingTechnology::TwoPhase ||
                                    high.selected == ac::CoolingTechnology::LiquidFlowThrough ||
                                    high.selected == ac::CoolingTechnology::ConductionCooled));
  std::printf("\n");
}

void bm_selection(benchmark::State& state) {
  const auto eq = rack_equipment(static_cast<double>(state.range(0)), 3);
  const ac::Specification spec;
  for (auto _ : state) {
    auto s = ac::select_cooling(eq, spec);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(bm_selection)->Arg(15)->Arg(150)->Arg(600);

void bm_capability_single(benchmark::State& state) {
  const auto eq = rack_equipment(100.0, 3);
  const ac::Specification spec;
  for (auto _ : state) {
    double c = ac::technology_capability(ac::CoolingTechnology::FreeConvection, eq, spec);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(bm_capability_single);

}  // namespace

AEROPACK_BENCH_MAIN(report)
