// BENCH-FEM-ASSEMBLY — shared DofMap/SparseAssembler layer + sparse modal path.
//
// Sweeps the Fig. 2 power-supply board across mesh refinements and thread
// counts, timing the CSR assembly (DofMap + triplet scatter + build), the
// dense Jacobi generalized eigensolve, and the sparse shift-invert subspace
// iteration. Emits BENCH_fem_assembly.json (machine-readable) so later PRs
// can track the perf trajectory, plus the usual table on stdout.
//
// Headline numbers: the dense-vs-sparse crossover mesh, and the finest-mesh
// speedup of the shift-invert path over the dense eigensolve.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "obs/report.hpp"

namespace af = aeropack::fem;
namespace am = aeropack::materials;
namespace an = aeropack::numeric;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Median-of-reps wall time of fn() in milliseconds. Medians (not best-of)
/// because the table's dense/sparse and cross-thread columns are ratios of
/// two timings: a lucky best-of outlier in either operand made them noise.
/// Callers pass reps >= 5.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e3;
}

/// Round-trip of an empty parallel dispatch (one no-op task per thread) on a
/// warm pool, median over many reps. Uses ThreadPool::run directly so the
/// grain layer cannot serialize it away — this is the raw scheduling cost
/// the grain thresholds exist to amortize.
double dispatch_overhead_ns(std::size_t threads) {
  an::ThreadPool pool(threads);
  const std::function<void(std::size_t)> noop = [](std::size_t) {};
  for (int w = 0; w < 32; ++w) pool.run(threads, noop);
  constexpr int kReps = 201;
  std::vector<double> samples;
  samples.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(threads, noop);
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e9;
}

/// The Fig. 2 power-supply board (clamped, smeared + point masses, doubler)
/// at an arbitrary mesh refinement.
af::PlateModel ps_board(std::size_t nx, std::size_t ny) {
  af::PlateModel p(0.16, 0.10, 1.6e-3, am::fr4(), nx, ny);
  p.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);
  p.add_point_mass(0.11, 0.05, 0.09);
  p.add_doubler(0.03, 0.13, 0.02, 0.08, 2.0);
  return p;
}

struct ThreadTiming {
  std::size_t threads = 1;
  double sparse_modal_ms = 0.0;
};

struct MeshResult {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t free_dofs = 0;
  std::size_t nonzeros = 0;
  double assembly_ms = 0.0;     ///< DofMap + element scatter + CSR build
  double dense_modal_ms = 0.0;  ///< full-spectrum Jacobi on the dense pencil
  std::vector<ThreadTiming> timings;
};

void write_json(const std::string& path, std::size_t hardware, std::size_t n_modes,
                const std::vector<std::size_t>& thread_counts,
                const std::vector<double>& dispatch_ns,
                const std::vector<MeshResult>& meshes) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fem_assembly\",\n";
  out << "  \"hardware_threads\": " << hardware << ",\n";
  out << "  \"n_modes\": " << n_modes << ",\n";
  out << "  \"dispatch_overhead_ns\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    out << "{\"threads\": " << thread_counts[i] << ", \"ns\": " << dispatch_ns[i] << "}"
        << (i + 1 < thread_counts.size() ? ", " : "");
  out << "],\n  \"thread_counts\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    out << thread_counts[i] << (i + 1 < thread_counts.size() ? ", " : "");
  out << "],\n  \"meshes\": [\n";
  for (std::size_t g = 0; g < meshes.size(); ++g) {
    const MeshResult& r = meshes[g];
    out << "    {\n      \"nx\": " << r.nx << ", \"ny\": " << r.ny
        << ", \"free_dofs\": " << r.free_dofs << ", \"nonzeros\": " << r.nonzeros << ",\n";
    out << "      \"assembly_ms\": " << r.assembly_ms
        << ", \"dense_modal_ms\": " << r.dense_modal_ms << ",\n";
    out << "      \"threads\": [\n";
    for (std::size_t t = 0; t < r.timings.size(); ++t) {
      const ThreadTiming& tt = r.timings[t];
      out << "        {\"threads\": " << tt.threads
          << ", \"sparse_modal_ms\": " << tt.sparse_modal_ms
          << ", \"dense_over_sparse\": "
          << (tt.sparse_modal_ms > 0.0 ? r.dense_modal_ms / tt.sparse_modal_ms : 0.0) << "}"
          << (t + 1 < r.timings.size() ? ",\n" : "\n");
    }
    out << "      ]\n    }" << (g + 1 < meshes.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("  series written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  // --smoke: coarsest mesh + fixed {1,2} thread sweep, the configuration the
  // CI bench-smoke job freezes counter expectations for (bench/expected/).
  // --report <out.json>: enable telemetry and write the obs run report.
  bool smoke = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --smoke, --report <out.json>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-FEM-ASSEMBLY — DofMap/SparseAssembler + sparse modal path\n");
  std::printf("CSR assembly / dense Jacobi / shift-invert vs mesh and threads\n");
  std::printf("================================================================\n");

  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);
  const std::size_t n_modes = 8;
  std::vector<std::pair<std::size_t, std::size_t>> sizes{
      {8, 5}, {12, 8}, {16, 10}, {20, 13}, {24, 15}};
  if (smoke) {
    sizes = {{8, 5}};
    thread_counts = {1, 2};
    std::printf("  smoke mode: 8x5 mesh only, threads {1, 2}\n");
  }
  std::printf("  hardware threads: %zu, modes requested: %zu\n\n", hardware, n_modes);

  std::printf("  dispatch overhead (empty parallel dispatch, warm pool):\n");
  std::vector<double> dispatch_ns;
  for (const std::size_t t : thread_counts) {
    dispatch_ns.push_back(dispatch_overhead_ns(t));
    std::printf("    threads=%zu %9.0f ns\n", t, dispatch_ns.back());
  }
  std::printf("\n");

  std::vector<MeshResult> results;

  for (const auto& [nx, ny] : sizes) {
    MeshResult res;
    res.nx = nx;
    res.ny = ny;
    const af::PlateModel plate = ps_board(nx, ny);
    // Medians need odd reps >= 5. Smoke stays at 5: the frozen counter
    // expectations (bench/expected/) count iterations across all reps.
    const int reps = smoke ? 5 : (nx <= 12 ? 7 : 5);

    an::set_thread_count(1);
    an::CsrMatrix k, m;
    res.assembly_ms = time_ms(std::max(reps, 3), [&] { plate.reduced_sparse(k, m); });
    res.free_dofs = k.rows();
    res.nonzeros = k.nonzeros();

    af::ModalOptions dense_opts;
    dense_opts.n_modes = n_modes;
    dense_opts.path = af::ModalPath::Dense;
    res.dense_modal_ms = time_ms(reps, [&] {
      const auto modes = plate.solve_modal(dense_opts);
      (void)modes;
    });

    af::ModalOptions sparse_opts;
    sparse_opts.n_modes = n_modes;
    sparse_opts.path = af::ModalPath::Sparse;
    for (const std::size_t t : thread_counts) {
      an::set_thread_count(t);
      ThreadTiming tt;
      tt.threads = t;
      tt.sparse_modal_ms = time_ms(reps, [&] {
        const auto modes = plate.solve_modal(sparse_opts);
        (void)modes;
      });
      res.timings.push_back(tt);
    }
    results.push_back(res);
    std::printf("  %2zux%-2zu (%4zu free dofs, %7zu nnz): assembly %7.3f ms, "
                "dense %9.3f ms, sparse@1t %8.3f ms\n",
                nx, ny, res.free_dofs, res.nonzeros, res.assembly_ms, res.dense_modal_ms,
                res.timings.front().sparse_modal_ms);
  }
  an::set_thread_count(0);

  std::printf("\n  %-8s | %-9s | %-8s | %-12s | %-12s | %-10s\n", "mesh", "free dof", "threads",
              "dense [ms]", "sparse [ms]", "dense/sparse");
  std::printf("  ---------+-----------+----------+--------------+--------------+------------\n");
  for (const MeshResult& r : results)
    for (const ThreadTiming& tt : r.timings)
      std::printf("  %2zux%-5zu | %9zu | %8zu | %12.3f | %12.3f | %9.2fx\n", r.nx, r.ny,
                  r.free_dofs, tt.threads, r.dense_modal_ms, tt.sparse_modal_ms,
                  tt.sparse_modal_ms > 0.0 ? r.dense_modal_ms / tt.sparse_modal_ms : 0.0);

  // Crossover: the coarsest mesh where shift-invert already beats dense.
  for (const MeshResult& r : results) {
    if (r.dense_modal_ms > r.timings.front().sparse_modal_ms) {
      std::printf("\n  headline: dense/sparse crossover at %zux%zu (%zu free dofs)\n", r.nx,
                  r.ny, r.free_dofs);
      break;
    }
  }
  const MeshResult& big = results.back();
  double best_sparse = 1e300;
  for (const ThreadTiming& tt : big.timings) best_sparse = std::min(best_sparse, tt.sparse_modal_ms);
  std::printf("  headline: %zux%zu (%zu free dofs) sparse shift-invert %.2fx faster than "
              "dense Jacobi (best thread count)\n\n",
              big.nx, big.ny, big.free_dofs,
              best_sparse > 0.0 ? big.dense_modal_ms / best_sparse : 0.0);

  write_json("BENCH_fem_assembly.json", hardware, n_modes, thread_counts, dispatch_ns, results);

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_fem_assembly", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.set_meta("largest_free_dofs", static_cast<double>(results.back().free_dofs));
    report.set_meta("largest_nonzeros", static_cast<double>(results.back().nonzeros));
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
