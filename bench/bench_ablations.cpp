// ABLATIONS — design-choice studies called out in DESIGN.md:
//  (a) FV face-conductance scheme: harmonic vs arithmetic mean on a
//      high-contrast board (drain + laminate);
//  (b) effective-medium model choice (Maxwell / Bruggeman / Lewis-Nielsen)
//      against the percolation behaviour real filled TIMs show;
//  (c) Level-1 resistive network vs Level-2 finite volume: accuracy vs cost;
//  (d) LHP fixed-conductance vs variable-conductance condenser at low power;
//  (e) telemetry cost: the instrumented CG loop with the obs registry
//      dormant vs fully enabled (the observability layer must be free).
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/levels.hpp"
#include "core/units.hpp"
#include "materials/solid.hpp"
#include "numeric/sparse.hpp"
#include "obs/registry.hpp"
#include "thermal/fv.hpp"
#include "tim/effective_medium.hpp"
#include "twophase/loop_heat_pipe.hpp"

namespace at = aeropack::thermal;
namespace ac = aeropack::core;
namespace an = aeropack::numeric;
namespace ap = aeropack::tim;
namespace tp = aeropack::twophase;
namespace obs = aeropack::obs;

namespace {

/// SPD 7-point stencil on an n^3 grid (columns in ascending order), the same
/// operator the telemetry overhead test pins down in tests/obs.
an::CsrMatrix laplacian_3d(std::size_t n) {
  an::SparseBuilder b(n * n * n, n * n * n);
  const auto idx = [n](std::size_t i, std::size_t j, std::size_t k) {
    return i + n * (j + n * k);
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = idx(i, j, k);
        double diag = 0.5;
        const auto nb = [&](std::size_t q) {
          b.add(c, q, -1.0);
          diag += 1.0;
        };
        if (i > 0) nb(idx(i - 1, j, k));
        if (i + 1 < n) nb(idx(i + 1, j, k));
        if (j > 0) nb(idx(i, j - 1, k));
        if (j + 1 < n) nb(idx(i, j + 1, k));
        if (k > 0) nb(idx(i, j, k - 1));
        if (k + 1 < n) nb(idx(i, j, k + 1));
        b.add(c, c, diag);
      }
  return b.build();
}

/// Fixed-work CG solve (tolerance 0 never converges early) for timing.
an::IterativeOptions fixed_work_cg(std::size_t iterations) {
  an::IterativeOptions opts;
  opts.tolerance = 0.0;
  opts.max_iterations = iterations;
  return opts;
}

at::FvModel contrast_bar() {
  // Heavy-copper board section (k~150 drain) feeding a plain section
  // (k~20 with copper planes), sink at the drained end: the heat crosses
  // the material interface where the face-conductance scheme matters.
  at::FvModel m(at::FvGrid::uniform(0.2, 0.02, 0.0016, 40, 2, 2));
  m.set_conductivity({0, 20, 0, 2, 0, 2}, 150.0, 150.0, 0.3);   // drained half
  m.set_conductivity({20, 40, 0, 2, 0, 2}, 20.0, 20.0, 0.3);    // plain half
  m.add_power({36, 40, 0, 2, 0, 2}, 1.0);                        // far-end component
  m.set_boundary(at::Face::XMin, at::BoundaryCondition::fixed(328.15));
  return m;
}

void report() {
  bench_util::banner("ABLATIONS — design choices of the toolkit",
                     "Scheme / model / fidelity trades with quantitative deltas");

  // (a) Face conductance scheme.
  {
    auto m = contrast_bar();
    at::FvOptions harm;
    at::FvOptions arith;
    arith.scheme = at::FaceConductanceScheme::ArithmeticMean;
    const double t_h = m.solve_steady(harm).max_temperature;
    const double t_a = m.solve_steady(arith).max_temperature;
    std::printf("\n  (a) FV face conductance on a drain/laminate board:\n");
    std::printf("      harmonic mean peak:   %.1f C\n", ac::kelvin_to_celsius(t_h));
    std::printf("      arithmetic mean peak: %.1f C  (interface barrier misrepresented by %.2f K)\n",
                ac::kelvin_to_celsius(t_a), t_h - t_a);
  }

  // (b) Effective-medium model choice at 35% silver in epoxy.
  {
    const double km = 0.2, kf = 400.0, phi = 0.35;
    std::printf("\n  (b) Effective-medium models @ phi=0.35 Ag/epoxy:\n");
    std::printf("      Maxwell-Garnett: %6.2f W/m K (dilute theory, low)\n",
                ap::k_maxwell(km, kf, phi));
    std::printf("      Bruggeman:       %6.2f W/m K (percolating)\n",
                ap::k_bruggeman(km, kf, phi));
    std::printf("      Lewis-Nielsen:   %6.2f W/m K (engineering fit; used by the toolkit)\n",
                ap::k_lewis_nielsen(km, kf, phi, 5.0, 0.52));
  }

  // (c) Level-1 network vs Level-2 FV on the same board.
  {
    ac::Equipment eq;
    eq.name = "ablation unit";
    ac::Module mod;
    mod.name = "M";
    ac::Board b;
    b.name = "b";
    b.drain_thickness = 1e-3;
    ac::Component c{"U", 12.0, 9e-4, 1.0, 398.15, 0.1, 0.075,
                    aeropack::reliability::PartType::Microprocessor,
                    aeropack::reliability::Quality::FullMil, 1};
    b.components.push_back(c);
    mod.boards.push_back(b);
    eq.modules.push_back(mod);
    ac::Specification spec;
    spec.ambient_temperature = ac::celsius_to_kelvin(45.0);
    const auto l1 = ac::run_level1(eq, spec, ac::CoolingTechnology::ConductionCooled);
    const auto l2 = ac::run_level2(b, spec, ac::CoolingTechnology::ConductionCooled,
                                   spec.ambient_temperature + 10.0, 32);
    std::printf("\n  (c) Level-1 network vs Level-2 finite volume:\n");
    std::printf("      L1 internal estimate: %.1f C (%zu nodes)\n",
                ac::kelvin_to_celsius(l1.internal_air_temperature), l1.node_count);
    std::printf("      L2 board peak:        %.1f C (%zu cells) — the hot spot L1 cannot see\n",
                ac::kelvin_to_celsius(l2.max_temperature), l2.cell_count);
  }

  // (d) LHP condenser model at low power.
  {
    tp::LhpDesign var;  // defaults: variable conductance
    tp::LhpDesign fixed = var;
    fixed.condenser_open_fraction_min = 1.0;  // forces the fixed-UA model
    const tp::LoopHeatPipe lhp_var(aeropack::materials::ammonia(), var);
    const tp::LoopHeatPipe lhp_fix(aeropack::materials::ammonia(), fixed);
    std::printf("\n  (d) LHP condenser model, evaporator-to-sink resistance [K/W]:\n");
    std::printf("      %-8s | %-18s | %-16s\n", "Q [W]", "variable conduct.", "fixed UA");
    for (double q : {2.0, 10.0, 30.0, 100.0}) {
      std::printf("      %-8.0f | %-18.3f | %-16.3f\n", q,
                  lhp_var.thermal_resistance(q, 300.0), lhp_fix.thermal_resistance(q, 300.0));
    }
    std::printf("      (the flooded-condenser penalty at low power is what the fixed-UA\n"
                "       model misses; both agree once the condenser is fully open)\n");
  }

  // (e) Telemetry cost on the CG hot loop: dormant vs fully enabled.
  // Interleaved best-of-N so slow drift hits both sides equally.
  {
    const bool was_enabled = obs::enabled();
    const an::CsrMatrix a = laplacian_3d(32);
    const an::Vector b(a.rows(), 1.0);
    const an::IterativeOptions opts = fixed_work_cg(100);
    const auto time_solve = [&] {
      const auto t0 = std::chrono::steady_clock::now();
      const an::IterativeResult res = an::conjugate_gradient(a, b, opts);
      (void)res;
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };
    obs::disable();
    time_solve();  // warm caches
    double dormant = 1e300, enabled = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      obs::disable();
      dormant = std::min(dormant, time_solve());
      obs::enable();
      enabled = std::min(enabled, time_solve());
    }
    if (!was_enabled) obs::disable();
    std::printf("\n  (e) Telemetry on the 32^3 CG loop (100 fixed iterations):\n");
    std::printf("      dormant registry: %8.3f ms/solve\n", dormant * 1e3);
    std::printf("      enabled registry: %8.3f ms/solve  (%.2f%% overhead — the dormant\n"
                "       path is a single relaxed load, so even live counters are noise)\n",
                enabled * 1e3, (enabled / dormant - 1.0) * 100.0);
  }
  std::printf("\n");
}

void bm_fv_harmonic(benchmark::State& state) {
  auto m = contrast_bar();
  for (auto _ : state) {
    auto sol = m.solve_steady();
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(bm_fv_harmonic)->Unit(benchmark::kMillisecond);

void bm_fv_arithmetic(benchmark::State& state) {
  auto m = contrast_bar();
  at::FvOptions opts;
  opts.scheme = at::FaceConductanceScheme::ArithmeticMean;
  for (auto _ : state) {
    auto sol = m.solve_steady(opts);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(bm_fv_arithmetic)->Unit(benchmark::kMillisecond);

void bm_cg_telemetry_dormant(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::disable();
  const an::CsrMatrix a = laplacian_3d(24);
  const an::Vector b(a.rows(), 1.0);
  const an::IterativeOptions opts = fixed_work_cg(50);
  for (auto _ : state) {
    auto res = an::conjugate_gradient(a, b, opts);
    benchmark::DoNotOptimize(res);
  }
  if (was_enabled) obs::enable();
}
BENCHMARK(bm_cg_telemetry_dormant)->Unit(benchmark::kMillisecond);

void bm_cg_telemetry_enabled(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::enable();
  const an::CsrMatrix a = laplacian_3d(24);
  const an::Vector b(a.rows(), 1.0);
  const an::IterativeOptions opts = fixed_work_cg(50);
  for (auto _ : state) {
    auto res = an::conjugate_gradient(a, b, opts);
    benchmark::DoNotOptimize(res);
  }
  if (!was_enabled) obs::disable();
}
BENCHMARK(bm_cg_telemetry_enabled)->Unit(benchmark::kMillisecond);

void bm_emt_models(benchmark::State& state) {
  for (auto _ : state) {
    double acc = ap::k_maxwell(0.2, 400.0, 0.35) + ap::k_bruggeman(0.2, 400.0, 0.35) +
                 ap::k_lewis_nielsen(0.2, 400.0, 0.35, 5.0, 0.52);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_emt_models);

}  // namespace

AEROPACK_BENCH_MAIN(report)
