// BENCH-ROM — compact-model evaluation speed vs. the full FV solve.
//
// The paper's Fig. 4 hierarchy only works if the component-level compact
// model is cheap enough to embed by the dozen inside an equipment network:
// a DELPHI-style multi-port model must answer a boundary-condition change in
// microseconds where the detailed model needs a full linear solve. This
// bench builds the Fig. 2 board and SEB box compact models (aeropack::rom),
// then times one steady evaluation of each against the full FV solve of the
// identical operating point on a warm model (structure assembled, solver
// caches hot) and reports the speedup. The acceptance bar — ROM >= 100x
// faster than the cached full-order solve — is enforced: the bench exits
// nonzero below it, so CI keeps the reduction honest.
//
// --smoke runs a reduced repetition count for the CI bench-smoke job; the
// deterministic rom.* / fv.* counters land in the --report JSON and are
// gated against bench/expected/bench_rom.expected.json. The wall-clock
// counter rom.snapshot_build.elapsed_us is deliberately excluded from the
// expectation file (tools/check_report.py skips the rom.snapshot_build.
// prefix at --update time).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "numeric/parallel.hpp"
#include "obs/report.hpp"
#include "rom/canonical.hpp"
#include "rom/rom.hpp"
#include "thermal/fv.hpp"

namespace ar = aeropack::rom;
namespace an = aeropack::numeric;
namespace at = aeropack::thermal;
namespace obs = aeropack::obs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct CasePoint {
  std::string name;
  std::size_t cells = 0;
  std::size_t rank = 0;
  double build_s = 0.0;
  double fv_us = 0.0;
  double rom_us = 0.0;
  double speedup = 0.0;
  double port_temp_diff = 0.0;  // max |T_rom - T_fv| at the ports [K]
};

/// Time one case: build the compact model, then race a ROM steady
/// evaluation against the full FV solve of the same operating point. The FV
/// model is configured once and solved repeatedly, so its structure cache is
/// warm — the comparison is against the *cached* full-order path, the
/// cheapest solve the detailed model can offer.
CasePoint run_case(const std::string& name, const ar::CanonicalCase& c,
                   const ar::RomInputs& inputs, std::size_t fv_reps, std::size_t rom_reps) {
  CasePoint point;
  point.name = name;
  point.cells = c.model.grid().cell_count();

  auto t0 = std::chrono::steady_clock::now();
  const ar::RomModel rom = ar::build_rom(c.model, c.spec);
  point.build_s = seconds_since(t0);
  point.rank = rom.rank();

  at::FvModel full = c.model;
  ar::apply_inputs(full, c.spec, inputs);
  at::FvSolution fv_sol = full.solve_steady();  // warm the caches
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < fv_reps; ++i) fv_sol = full.solve_steady();
  point.fv_us = 1e6 * seconds_since(t0) / static_cast<double>(fv_reps);

  ar::RomSteadyResult rom_sol = rom.steady(inputs);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < rom_reps; ++i) rom_sol = rom.steady(inputs);
  point.rom_us = 1e6 * seconds_since(t0) / static_cast<double>(rom_reps);

  point.speedup = point.rom_us > 0.0 ? point.fv_us / point.rom_us : 0.0;

  const an::Vector fv_ports =
      ar::port_surface_temperatures(c.model, c.spec, fv_sol.temperatures);
  for (std::size_t p = 0; p < rom.port_count(); ++p)
    point.port_temp_diff =
        std::max(point.port_temp_diff, std::abs(rom_sol.port_temperatures[p] - fv_ports[p]));
  return point;
}

void write_json(const std::string& path, const std::vector<CasePoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"rom\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CasePoint& p = points[i];
    out << "    {\"name\": \"" << p.name << "\", \"cells\": " << p.cells
        << ", \"rank\": " << p.rank << ", \"build_s\": " << p.build_s
        << ", \"fv_us\": " << p.fv_us << ", \"rom_us\": " << p.rom_us
        << ", \"speedup\": " << p.speedup << ", \"port_temp_diff_k\": " << p.port_temp_diff
        << "}" << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("  series written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(std::string("--report=").size());
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --smoke, --report <out.json>)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!report_path.empty()) obs::enable();

  std::printf("\n================================================================\n");
  std::printf("BENCH-ROM — compact-model evaluation vs. cached full FV solve\n");
  std::printf("Fig. 4 component-level reduction: microseconds per what-if\n");
  std::printf("================================================================\n");
  if (smoke) std::printf("  smoke mode: reduced repetitions\n");

  const std::size_t fv_reps = smoke ? 3 : 20;
  const std::size_t rom_reps = smoke ? 2000 : 20000;

  ar::RomInputs board_in;
  board_in.sink_temperatures = {313.15, 318.15, 303.15};
  board_in.map_powers = {12.0, 8.0};
  ar::RomInputs seb_in;
  seb_in.sink_temperatures = {308.15, 308.15, 298.15};
  seb_in.map_powers = {45.0, 15.0};

  std::vector<CasePoint> points;
  points.push_back(run_case("fig2_board", ar::fig2_board(), board_in, fv_reps, rom_reps));
  points.push_back(run_case("seb_box", ar::seb_box(), seb_in, fv_reps, rom_reps));

  std::printf("\n  %-12s | %6s | %4s | %9s | %10s | %9s | %9s | %10s\n", "case", "cells",
              "rank", "build [s]", "fv [us]", "rom [us]", "speedup", "dT_port[K]");
  std::printf("  -------------+--------+------+-----------+------------+-----------+-----------+-----------\n");
  for (const CasePoint& p : points)
    std::printf("  %-12s | %6zu | %4zu | %9.3f | %10.1f | %9.3f | %8.0fx | %10.2e\n",
                p.name.c_str(), p.cells, p.rank, p.build_s, p.fv_us, p.rom_us, p.speedup,
                p.port_temp_diff);

  write_json("BENCH_rom.json", points);

  if (!report_path.empty()) {
    obs::Report report = obs::Report::capture("bench_rom", an::thread_count());
    report.set_meta("smoke", smoke ? 1.0 : 0.0);
    report.write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }

  // Acceptance bar from the reduction pipeline: a compact model that is not
  // at least 100x cheaper than the cached detailed solve defeats the point
  // of the Fig. 4 hierarchy. Fail loudly so CI catches the regression.
  bool ok = true;
  for (const CasePoint& p : points)
    if (p.speedup < 100.0) {
      std::fprintf(stderr, "FAIL: %s speedup %.1fx < 100x acceptance bar\n", p.name.c_str(),
                   p.speedup);
      ok = false;
    }
  if (ok)
    std::printf("\n  headline: ROM evaluation %.0fx / %.0fx faster than the cached"
                " full-order solve (bar: 100x)\n\n",
                points[0].speedup, points[1].speedup);
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}
