// Shared helpers for the reproduction benches: headline banner + a tiny
// fixed-width table printer so every bench emits the same style of
// paper-vs-measured report before its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace bench_util {

inline void banner(const std::string& experiment, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, const std::string& paper,
                const std::string& measured, const std::string& verdict = "") {
  std::printf("  %-44s | %-16s | %-16s %s\n", label.c_str(), paper.c_str(), measured.c_str(),
              verdict.c_str());
}

inline void header() {
  std::printf("  %-44s | %-16s | %-16s\n", "quantity", "paper", "this repro");
  std::printf("  %.44s-+-%.16s-+-%.16s\n",
              "--------------------------------------------------",
              "--------------------------------", "--------------------------------");
}

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline const char* check(bool ok) { return ok ? "[ok]" : "[DEVIATES]"; }

/// Dump a numeric series to CSV next to the binary so the figure can be
/// replotted (one file per bench, overwritten on each run).
inline void write_csv(const std::string& path, const std::vector<std::string>& columns,
                      const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  for (std::size_t i = 0; i < columns.size(); ++i)
    out << columns[i] << (i + 1 < columns.size() ? ',' : '\n');
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i)
      out << row[i] << (i + 1 < row.size() ? ',' : '\n');
  }
  std::printf("  series written to %s\n", path.c_str());
}

/// Standard main body: print the table, then run the registered benchmarks.
inline int run(int argc, char** argv, void (*print_report)()) {
  print_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_util

#define AEROPACK_BENCH_MAIN(report_fn)                     \
  int main(int argc, char** argv) {                        \
    return bench_util::run(argc, argv, &(report_fn));      \
  }
