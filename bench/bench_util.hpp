// Shared helpers for the reproduction benches: headline banner + a tiny
// fixed-width table printer so every bench emits the same style of
// paper-vs-measured report before its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "numeric/parallel.hpp"
#include "obs/report.hpp"

namespace bench_util {

inline void banner(const std::string& experiment, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, const std::string& paper,
                const std::string& measured, const std::string& verdict = "") {
  std::printf("  %-44s | %-16s | %-16s %s\n", label.c_str(), paper.c_str(), measured.c_str(),
              verdict.c_str());
}

inline void header() {
  std::printf("  %-44s | %-16s | %-16s\n", "quantity", "paper", "this repro");
  std::printf("  %.44s-+-%.16s-+-%.16s\n",
              "--------------------------------------------------",
              "--------------------------------", "--------------------------------");
}

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline const char* check(bool ok) { return ok ? "[ok]" : "[DEVIATES]"; }

/// Dump a numeric series to CSV next to the binary so the figure can be
/// replotted (one file per bench, overwritten on each run).
inline void write_csv(const std::string& path, const std::vector<std::string>& columns,
                      const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  for (std::size_t i = 0; i < columns.size(); ++i)
    out << columns[i] << (i + 1 < columns.size() ? ',' : '\n');
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i)
      out << row[i] << (i + 1 < row.size() ? ',' : '\n');
  }
  std::printf("  series written to %s\n", path.c_str());
}

/// Pull `--report <path>` / `--report=<path>` out of argv before
/// google-benchmark sees it and return the path ("" if absent). Requesting a
/// report turns telemetry on for the whole run so the captured counters cover
/// every solve the bench performs.
inline std::string extract_report_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--report" && r + 1 < argc) {
      path = argv[++r];
    } else if (arg.rfind("--report=", 0) == 0) {
      path = arg.substr(std::string("--report=").size());
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  if (!path.empty()) aeropack::obs::enable();
  return path;
}

/// Run label for the report: the binary name without its directory.
inline std::string bench_name(const char* argv0) {
  std::string name = (argv0 != nullptr && *argv0 != '\0') ? argv0 : "bench";
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

/// Standard main body: print the table, run the registered benchmarks, then
/// write the run report if one was requested. An escaping exception becomes a
/// nonzero exit with the message on stderr — CI needs red, not a bench that
/// dies mid-print with status 0 lost in a pipe.
inline int run(int argc, char** argv, void (*print_report)()) try {
  const std::string report_path = extract_report_path(argc, argv);
  const std::string name = bench_name(argc > 0 ? argv[0] : nullptr);
  print_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!report_path.empty()) {
    aeropack::obs::Report::capture(name, aeropack::numeric::thread_count()).write(report_path);
    std::printf("  run report written to %s\n", report_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench failed: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "bench failed: unknown exception\n");
  return 1;
}

}  // namespace bench_util

#define AEROPACK_BENCH_MAIN(report_fn)                     \
  int main(int argc, char** argv) {                        \
    return bench_util::run(argc, argv, &(report_fn));      \
  }
