// FIG3 — inertial reference system: "design of the mechanical filtering
// function and dampers of an inertial measurement unit". The figure contrasts
// the measured rack response with the expected (filtered) PCB response. We
// reproduce the two-stage isolation: a stiff rack mount carries the IRS
// chassis; a soft damped isolator stage protects the sensor block, so the
// transmissibility at the sensor rolls off far below the rack's.
#include <cstdio>

#include "bench_util.hpp"
#include "fem/harmonic.hpp"
#include "fem/random_vibration.hpp"
#include "fem/sdof.hpp"

namespace af = aeropack::fem;
namespace an = aeropack::numeric;

namespace {

struct IrsModel {
  af::FrameModel model;
  std::size_t rack_node = 0;
  std::size_t sensor_node = 0;
};

IrsModel build_irs() {
  IrsModel irs;
  irs.rack_node = irs.model.add_node(0.0, 0.0);
  irs.sensor_node = irs.model.add_node(0.0, 0.08);
  for (auto n : {irs.rack_node, irs.sensor_node}) {
    irs.model.fix(n, af::Dof::Ux);
    irs.model.fix(n, af::Dof::Rz);
  }
  // Rack structure: stiff mount, chassis mass.
  irs.model.add_ground_spring(irs.rack_node, af::Dof::Uy, 4.5e7);  // ~430 Hz with 6 kg
  irs.model.add_mass(irs.rack_node, 6.0);
  // Isolator stage: elastomer mounts around 45 Hz with the 3 kg sensor block.
  irs.model.add_spring(irs.rack_node, irs.sensor_node, af::Dof::Uy, 2.4e5);
  irs.model.add_mass(irs.sensor_node, 3.0);
  return irs;
}

void report() {
  bench_util::banner("FIG 3 — IRS mechanical filtering",
                     "Rack response vs expected (isolated) sensor response, base sine sweep");

  auto irs = build_irs();
  const double zeta = 0.12;  // damped elastomer isolators
  const an::Vector freqs = an::linspace(10.0, 2000.0, 160);
  const auto rack =
      af::harmonic_base_sweep(irs.model, freqs, zeta, irs.rack_node, af::Dof::Uy);
  const auto sensor =
      af::harmonic_base_sweep(irs.model, freqs, zeta, irs.sensor_node, af::Dof::Uy);

  std::printf("\n  %-10s | %-16s | %-18s\n", "f [Hz]", "rack |T| [-]", "sensor |T| [-]");
  std::printf("  -----------+------------------+-------------------\n");
  for (double f : {20.0, 45.0, 100.0, 200.0, 430.0, 800.0, 1500.0}) {
    const auto rr = af::harmonic_base_sweep(irs.model, {f}, zeta, irs.rack_node, af::Dof::Uy);
    const auto sr =
        af::harmonic_base_sweep(irs.model, {f}, zeta, irs.sensor_node, af::Dof::Uy);
    std::printf("  %-10.0f | %-16.2f | %-18.3f\n", f, rr.amplitude[0], sr.amplitude[0]);
  }

  // Key figures: isolator resonance, attenuation at the rack mode.
  const auto peaks = af::find_peaks(sensor, 1.2);
  double f_iso = 0.0;
  if (!peaks.empty()) f_iso = sensor.frequencies_hz[peaks.front()];
  const auto rack_at_430 =
      af::harmonic_base_sweep(irs.model, {430.0}, zeta, irs.rack_node, af::Dof::Uy);
  const auto sens_at_430 =
      af::harmonic_base_sweep(irs.model, {430.0}, zeta, irs.sensor_node, af::Dof::Uy);
  const double attenuation = sens_at_430.amplitude[0] / rack_at_430.amplitude[0];

  // Random environment: what the sensor sees of DO-160 D1 vs the rack.
  const auto rack_rms = af::random_response(irs.model, af::do160_curve_d1(), zeta,
                                            irs.rack_node, af::Dof::Uy);
  const auto sens_rms = af::random_response(irs.model, af::do160_curve_d1(), zeta,
                                            irs.sensor_node, af::Dof::Uy);

  std::printf("\n");
  bench_util::header();
  bench_util::row("isolator mode [Hz]", "tens of Hz (soft stage)",
                  bench_util::fmt(f_iso, 0),
                  bench_util::check(f_iso > 20.0 && f_iso < 80.0));
  bench_util::row("sensor/rack transmissibility @ rack mode", "<< 1 (filtered)",
                  bench_util::fmt(attenuation, 3), bench_util::check(attenuation < 0.1));
  bench_util::row("rack grms under DO-160 D1", "full environment",
                  bench_util::fmt(rack_rms.response_grms, 2), "");
  bench_util::row("sensor grms under DO-160 D1", "strongly reduced",
                  bench_util::fmt(sens_rms.response_grms, 2),
                  bench_util::check(sens_rms.response_grms < 0.8 * rack_rms.response_grms));
  std::printf("\n");
}

void bm_sweep_160_points(benchmark::State& state) {
  auto irs = build_irs();
  const an::Vector freqs = an::linspace(10.0, 2000.0, 160);
  for (auto _ : state) {
    auto sweep = af::harmonic_base_sweep(irs.model, freqs, 0.12, irs.sensor_node, af::Dof::Uy);
    benchmark::DoNotOptimize(sweep);
  }
}
BENCHMARK(bm_sweep_160_points)->Unit(benchmark::kMillisecond);

void bm_random_response(benchmark::State& state) {
  auto irs = build_irs();
  const auto curve = af::do160_curve_d1();
  for (auto _ : state) {
    auto r = af::random_response(irs.model, curve, 0.12, irs.sensor_node, af::Dof::Uy);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_random_response);

}  // namespace

AEROPACK_BENCH_MAIN(report)
