// FIG6 — computer racks: "the thermal dissipation still increases: from
// 10 W/module, it will reach 20/30 W/module in the near future and
// 60 W/module in the next developments. In the same time, the module sizes
// are reduced or at the best remain unchanged." We run the module-generation
// sweep under the ARINC 600 air budget and show where forced air runs out.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/rack.hpp"
#include "core/units.hpp"
#include "thermal/forced_air.hpp"

namespace at = aeropack::thermal;
namespace ac = aeropack::core;

namespace {

struct Generation {
  const char* era;
  double module_power;   // [W]
  double card_length;    // [m] (sizes shrink over generations)
  double flow_cap_w;     // bay flow allocation sized for this power [W]
};

// The bay blower and rack plenums are sized once: later generations draw the
// same allocation even as the modules dissipate more (the physical reason
// the paper calls >100 W/module "no longer applicable" with forced air).
constexpr Generation kGenerations[] = {
    {"current (A340/A380 era)", 10.0, 0.20, 10.0},
    {"near future", 30.0, 0.20, 30.0},
    {"next developments", 60.0, 0.18, 60.0},
    {"beyond (paper's >100 W concern)", 120.0, 0.18, 60.0},
};

void report() {
  bench_util::banner("FIG 6 — module dissipation trend under ARINC 600 air",
                     "10 -> 30 -> 60 W/module at constant/shrinking size, 40 C supply");

  at::ArincAirSupply supply;   // 220 kg/h/kW, 40 C inlet
  const double t_limit = ac::celsius_to_kelvin(105.0);  // component surface limit

  std::printf("\n  %-34s | %-8s | %-12s | %-12s | %-9s\n", "generation", "W/module",
              "h [W/m^2 K]", "surface [C]", "feasible");
  std::printf("  -----------------------------------+----------+--------------+--------------+----------\n");
  bool gen60_ok = false;
  bool gen120_ok = true;
  for (const auto& g : kGenerations) {
    at::CardChannel chan;
    chan.card_length = g.card_length;
    // Uniform dissipation over both card faces.
    const double flux = g.module_power / (2.0 * chan.card_width * chan.card_length);
    at::ArincAirSupply alloc = supply;
    alloc.flow_multiplier = std::min(1.0, g.flow_cap_w / g.module_power);
    const auto r = at::analyze_hot_spot(alloc, chan, g.module_power, flux, 1.0, t_limit);
    std::printf("  %-34s | %-8.0f | %-12.1f | %-12.1f | %-9s\n", g.era, g.module_power, r.h,
                ac::kelvin_to_celsius(r.surface_temperature), r.feasible ? "yes" : "no");
    if (g.module_power == 60.0) gen60_ok = r.feasible;
    if (g.module_power == 120.0) gen120_ok = r.feasible;
  }

  // Rack view of the same story: six 10 W slots with one slot grown to
  // 60 W while the blower stays sized for the original rack.
  {
    ac::RackDesign rack;
    for (int i = 0; i < 6; ++i) {
      ac::RackSlot s;
      s.name = "slot" + std::to_string(i);
      s.power = 10.0;
      s.peak_flux = 1.3 * s.power / (2.0 * s.channel.card_width * s.channel.card_length);
      rack.slots.push_back(s);
    }
    rack.design_power = 60.0;
    rack.inlet_temperature = ac::celsius_to_kelvin(40.0);
    rack.slots[3].power = 60.0;
    rack.slots[3].peak_flux = 5e3;
    const auto res = ac::solve_rack(rack, ac::celsius_to_kelvin(105.0));
    std::printf("\n  rack study (blower sized for 6 x 10 W, slot3 grown to 60 W):\n");
    std::printf("  %-8s | %-8s | %-12s | %-12s | %-9s\n", "slot", "W", "exhaust [C]",
                "surface [C]", "feasible");
    for (std::size_t i = 0; i < res.slots.size(); ++i)
      std::printf("  %-8s | %-8.0f | %-12.1f | %-12.1f | %-9s\n", res.slots[i].name.c_str(),
                  rack.slots[i].power, ac::kelvin_to_celsius(res.slots[i].exhaust_temperature),
                  ac::kelvin_to_celsius(res.slots[i].surface_temperature),
                  res.slots[i].feasible ? "yes" : "NO");
    std::printf("  mixed exhaust: %.1f C\n", ac::kelvin_to_celsius(res.mixed_exhaust));
  }

  std::printf("\n");
  bench_util::header();
  bench_util::row("air rise across equipment [K]", "fixed by 220 kg/h/kW",
                  bench_util::fmt(supply.air_rise(1000.0)),
                  bench_util::check(std::fabs(supply.air_rise(1000.0) - 16.3) < 1.0));
  bench_util::row("60 W/module with ARINC air", "at the edge of practice",
                  gen60_ok ? "feasible" : "infeasible", "");
  bench_util::row(">100 W/module with ARINC air", "no longer applicable",
                  gen120_ok ? "feasible" : "infeasible", bench_util::check(!gen120_ok));
  std::printf("\n");
}

void bm_generation_sweep(benchmark::State& state) {
  at::ArincAirSupply supply;
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& g : kGenerations) {
      at::CardChannel chan;
      chan.card_length = g.card_length;
      const double flux = g.module_power / (2.0 * chan.card_width * chan.card_length);
      at::ArincAirSupply alloc = supply;
      alloc.flow_multiplier = std::min(1.0, g.flow_cap_w / g.module_power);
      acc += at::analyze_hot_spot(alloc, chan, g.module_power, flux, 1.0, 378.15)
                 .surface_temperature;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_generation_sweep);

}  // namespace

AEROPACK_BENCH_MAIN(report)
