// aeropack::ExecutionContext — one isolated execution environment for the
// solver stack: a thread pool, an obs telemetry registry and the run
// configuration, owned together so independent solves can run concurrently
// without sharing mutable process state.
//
// Ownership model (see DESIGN.md "Execution contexts"):
//  - The numeric kernels and the obs instrumentation sites resolve
//    thread-local "current" handles (numeric::current_pool(),
//    obs::current()). With nothing bound they fall back to the process-wide
//    singletons — today's behavior, bit-for-bit, which is what keeps every
//    existing golden valid.
//  - ExecutionContext::Use binds a context's pool and registry to the
//    calling thread (RAII, restores the previous binding), so a whole solve
//    — FvModel, ThermalNetwork, the sparse modal path — lands on that
//    context without threading a handle through every call.
//  - One context serves one driving thread at a time; distinct contexts on
//    distinct threads are fully independent (no shared instruments, no
//    shared task queue). This is the contract core::ScenarioRunner builds
//    on.
#pragma once

#include <cstddef>
#include <memory>

#include "numeric/parallel.hpp"
#include "obs/registry.hpp"

namespace aeropack::core {
class ArtifactCache;  // core/artifact_cache.hpp — exec never links against core
}

namespace aeropack {

/// Run configuration for a fresh context.
struct ExecutionConfig {
  /// Total threads the context's pool runs kernels on (0 is clamped to 1).
  /// Deliberately NOT defaulted from AEROPACK_THREADS: batch executors size
  /// contexts explicitly against their worker count.
  std::size_t threads = 1;
  /// Arm the context's registry from birth (per-context telemetry does not
  /// read AEROPACK_TELEMETRY — that variable governs the process default).
  bool telemetry = false;
  /// Chebyshev degree for CG preconditioning in solvers pinned to this
  /// context (numeric::IterativeOptions::chebyshev_degree): solvers that
  /// leave their own degree at 0 inherit this one. 0 (default) keeps plain
  /// Jacobi everywhere — the setting existing goldens were recorded under.
  std::size_t cg_chebyshev_degree = 0;
  /// Optional shared artifact cache (non-owning; must outlive the context).
  /// Solver graphs that run under core::ScenarioService probe it for
  /// reusable immutable artifacts — FV assemblies, modal factorizations,
  /// ROM models. Null (default) means every solve builds from scratch,
  /// which is the behavior all existing goldens were recorded under.
  core::ArtifactCache* artifact_cache = nullptr;
};

class ExecutionContext {
 public:
  /// Fresh isolated context: its own pool and its own registry.
  explicit ExecutionContext(const ExecutionConfig& config = {});
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The process-default context, wrapping ThreadPool::instance() and
  /// obs::Registry::instance() (non-owning, process lifetime). Binding it is
  /// a no-op by construction: unbound threads already resolve to the same
  /// singletons.
  static ExecutionContext& process();

  numeric::ThreadPool& pool() { return *pool_; }
  obs::Registry& metrics() { return *registry_; }
  const obs::Registry& metrics() const { return *registry_; }
  std::size_t threads() const { return pool_->threads(); }
  /// The configuration this context was built from (process() reports the
  /// defaults). Solvers pinned to the context read tuning knobs — currently
  /// cg_chebyshev_degree — from here.
  const ExecutionConfig& config() const { return config_; }
  /// The shared artifact cache this context may consult, or nullptr when the
  /// run is uncached (direct solves, the ScenarioRunner compatibility path).
  core::ArtifactCache* artifact_cache() const { return config_.artifact_cache; }

  /// RAII binding: while alive, the constructing thread's parallel kernels
  /// run on this context's pool and its instrumentation records into this
  /// context's registry. Nests (restores the previous binding); must be
  /// destroyed on the thread that created it, and the context must outlive
  /// every Use of it.
  class Use {
   public:
    explicit Use(ExecutionContext& ctx)
        : prev_pool_(numeric::exchange_current_pool(ctx.pool_)),
          prev_registry_(obs::exchange_current(ctx.registry_)) {}
    ~Use() {
      obs::exchange_current(prev_registry_);
      numeric::exchange_current_pool(prev_pool_);
    }
    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;

   private:
    numeric::ThreadPool* prev_pool_;
    obs::Registry* prev_registry_;
  };

 private:
  ExecutionContext(numeric::ThreadPool* pool, obs::Registry* registry);  // process()

  ExecutionConfig config_;
  std::unique_ptr<numeric::ThreadPool> owned_pool_;
  std::unique_ptr<obs::Registry> owned_registry_;
  numeric::ThreadPool* pool_;
  obs::Registry* registry_;
};

}  // namespace aeropack
