#include "exec/context.hpp"

namespace aeropack {

ExecutionContext::ExecutionContext(const ExecutionConfig& config)
    : config_(config),
      owned_pool_(std::make_unique<numeric::ThreadPool>(config.threads)),
      owned_registry_(std::make_unique<obs::Registry>(config.telemetry)),
      pool_(owned_pool_.get()),
      registry_(owned_registry_.get()) {}

ExecutionContext::ExecutionContext(numeric::ThreadPool* pool, obs::Registry* registry)
    : pool_(pool), registry_(registry) {}

ExecutionContext::~ExecutionContext() = default;

ExecutionContext& ExecutionContext::process() {
  // Leaked for the same reason the wrapped singletons are: telemetry and
  // kernels may still fire during static teardown.
  static ExecutionContext* const ctx =
      new ExecutionContext(&numeric::ThreadPool::instance(), &obs::Registry::instance());
  return *ctx;
}

}  // namespace aeropack
