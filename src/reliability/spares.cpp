#include "reliability/spares.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::reliability {

double pipeline_demand(double mtbf_hours, std::size_t fleet_size,
                       double operating_hours_per_year, double turnaround_days) {
  if (mtbf_hours <= 0.0 || fleet_size == 0 || operating_hours_per_year <= 0.0 ||
      turnaround_days <= 0.0)
    throw std::invalid_argument("pipeline_demand: invalid parameters");
  const double failures_per_year =
      static_cast<double>(fleet_size) * operating_hours_per_year / mtbf_hours;
  return failures_per_year * turnaround_days / 365.0;
}

double poisson_cdf(std::size_t k, double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("poisson_cdf: negative rate");
  if (lambda == 0.0) return 1.0;
  double term = std::exp(-lambda);
  double cdf = term;
  for (std::size_t i = 1; i <= k; ++i) {
    term *= lambda / static_cast<double>(i);
    cdf += term;
  }
  return cdf;
}

std::size_t spares_required(double mtbf_hours, std::size_t fleet_size,
                            double operating_hours_per_year, double turnaround_days,
                            double fill_rate) {
  if (fill_rate <= 0.0 || fill_rate >= 1.0)
    throw std::invalid_argument("spares_required: fill rate must be in (0, 1)");
  const double lambda =
      pipeline_demand(mtbf_hours, fleet_size, operating_hours_per_year, turnaround_days);
  for (std::size_t k = 0; k < 10000; ++k)
    if (poisson_cdf(k, lambda) >= fill_rate) return k;
  throw std::runtime_error("spares_required: demand unreasonably large");
}

double annual_removals(double mtbf_hours, std::size_t fleet_size,
                       double operating_hours_per_year) {
  if (mtbf_hours <= 0.0 || fleet_size == 0 || operating_hours_per_year <= 0.0)
    throw std::invalid_argument("annual_removals: invalid parameters");
  return static_cast<double>(fleet_size) * operating_hours_per_year / mtbf_hours;
}

}  // namespace aeropack::reliability
