#include "reliability/thermal_cycling.hpp"

#include <cmath>
#include <stdexcept>

#include "reliability/mtbf.hpp"

namespace aeropack::reliability {

double coffin_manson_cycles(double delta_t, double coefficient, double exponent) {
  if (delta_t <= 0.0 || coefficient <= 0.0 || exponent <= 0.0)
    throw std::invalid_argument("coffin_manson_cycles: invalid parameters");
  return coefficient * std::pow(delta_t, -exponent);
}

double coffin_manson_acceleration(double delta_t_test, double delta_t_service, double exponent) {
  if (delta_t_test <= 0.0 || delta_t_service <= 0.0 || exponent <= 0.0)
    throw std::invalid_argument("coffin_manson_acceleration: invalid parameters");
  return std::pow(delta_t_test / delta_t_service, exponent);
}

double norris_landzberg_acceleration(double delta_t_test, double delta_t_service,
                                     double freq_test_per_day, double freq_service_per_day,
                                     double t_max_test_k, double t_max_service_k,
                                     double exponent, double freq_exponent,
                                     double activation_energy_ev) {
  if (freq_test_per_day <= 0.0 || freq_service_per_day <= 0.0 || t_max_test_k <= 0.0 ||
      t_max_service_k <= 0.0)
    throw std::invalid_argument("norris_landzberg_acceleration: invalid parameters");
  const double ratio = coffin_manson_acceleration(delta_t_test, delta_t_service, exponent);
  const double freq = std::pow(freq_service_per_day / freq_test_per_day, freq_exponent);
  // Cooler service peak => test is more accelerating (standard NL form).
  const double arr = std::exp(activation_energy_ev / kBoltzmannEv *
                              (1.0 / t_max_service_k - 1.0 / t_max_test_k));
  return ratio * freq * arr;
}

double service_life_years(double test_cycles, double af_test_over_service,
                          double service_cycles_per_year) {
  if (test_cycles <= 0.0 || af_test_over_service <= 0.0 || service_cycles_per_year <= 0.0)
    throw std::invalid_argument("service_life_years: invalid parameters");
  return test_cycles * af_test_over_service / service_cycles_per_year;
}

}  // namespace aeropack::reliability
