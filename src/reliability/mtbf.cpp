#include "reliability/mtbf.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::reliability {

double arrhenius_factor(double t_ref_k, double t_op_k, double activation_energy_ev) {
  if (t_ref_k <= 0.0 || t_op_k <= 0.0)
    throw std::invalid_argument("arrhenius_factor: temperatures must be absolute");
  if (activation_energy_ev < 0.0)
    throw std::invalid_argument("arrhenius_factor: negative activation energy");
  return std::exp(activation_energy_ev / kBoltzmannEv * (1.0 / t_ref_k - 1.0 / t_op_k));
}

double environment_factor(Environment e) {
  switch (e) {
    case Environment::GroundBenign: return 0.5;
    case Environment::GroundFixed: return 2.0;
    case Environment::AirborneInhabitedCargo: return 4.0;
    case Environment::AirborneInhabitedFighter: return 5.0;
    case Environment::AirborneUninhabitedCargo: return 5.5;
    case Environment::SpaceFlight: return 0.5;
  }
  throw std::logic_error("environment_factor: unknown environment");
}

double quality_factor(Quality q) {
  switch (q) {
    case Quality::Space: return 0.5;
    case Quality::FullMil: return 1.0;
    case Quality::Commercial: return 3.0;  // the paper's "COTS in severe
                                           // avionics applications" penalty
  }
  throw std::logic_error("quality_factor: unknown quality");
}

double base_failure_rate(PartType t) {
  // [failures / 1e6 h] at 40 C junction, representative of 217F part models.
  switch (t) {
    case PartType::Microprocessor: return 0.12;
    case PartType::Memory: return 0.06;
    case PartType::AnalogIc: return 0.04;
    case PartType::PowerTransistor: return 0.05;
    case PartType::Diode: return 0.01;
    case PartType::Resistor: return 0.002;
    case PartType::CeramicCapacitor: return 0.003;
    case PartType::TantalumCapacitor: return 0.02;
    case PartType::Inductor: return 0.005;
    case PartType::Connector: return 0.03;
    case PartType::SolderJointSet: return 0.01;
    case PartType::Crystal: return 0.02;
  }
  throw std::logic_error("base_failure_rate: unknown part type");
}

double activation_energy(PartType t) {
  switch (t) {
    case PartType::Microprocessor:
    case PartType::Memory:
    case PartType::AnalogIc: return 0.45;
    case PartType::PowerTransistor:
    case PartType::Diode: return 0.40;
    case PartType::TantalumCapacitor: return 0.35;
    case PartType::CeramicCapacitor: return 0.30;
    case PartType::Resistor:
    case PartType::Inductor: return 0.20;
    case PartType::Connector:
    case PartType::Crystal: return 0.15;
    case PartType::SolderJointSet: return 0.25;
  }
  throw std::logic_error("activation_energy: unknown part type");
}

double part_failure_rate(const Part& p, Environment env) {
  if (p.count < 1) throw std::invalid_argument("part_failure_rate: count must be >= 1");
  constexpr double t_ref = 313.15;  // 40 C reference junction
  const double pi_t = arrhenius_factor(t_ref, p.junction_temperature, activation_energy(p.type));
  return base_failure_rate(p.type) * pi_t * quality_factor(p.quality) *
         environment_factor(env) * static_cast<double>(p.count);
}

MtbfReport predict_mtbf(const std::vector<Part>& bom, Environment env) {
  if (bom.empty()) throw std::invalid_argument("predict_mtbf: empty bill of materials");
  MtbfReport rpt;
  for (const Part& p : bom) {
    const double lambda = part_failure_rate(p, env);
    rpt.total_failure_rate += lambda;
    rpt.contributions.emplace_back(p.reference, lambda);
  }
  rpt.mtbf_hours = 1e6 / rpt.total_failure_rate;
  return rpt;
}

MtbfReport predict_mtbf_shifted(const std::vector<Part>& bom, Environment env, double delta_k) {
  std::vector<Part> shifted = bom;
  for (Part& p : shifted) p.junction_temperature += delta_k;
  return predict_mtbf(shifted, env);
}

}  // namespace aeropack::reliability
