#include "reliability/mission.hpp"

#include <algorithm>
#include <stdexcept>

#include "reliability/thermal_cycling.hpp"

namespace aeropack::reliability {

double MissionProfile::mission_hours() const {
  double h = 0.0;
  for (const MissionPhase& p : phases) h += p.duration_hours;
  return h;
}

void MissionProfile::validate() const {
  if (phases.empty()) throw std::invalid_argument("MissionProfile: no phases");
  for (const MissionPhase& p : phases)
    if (p.duration_hours <= 0.0)
      throw std::invalid_argument("MissionProfile: non-positive phase duration");
  if (missions_per_year <= 0.0)
    throw std::invalid_argument("MissionProfile: missions_per_year must be > 0");
}

MissionProfile MissionProfile::short_haul() {
  MissionProfile m;
  m.name = "short haul";
  m.phases = {
      {"ground soak (hot apron)", 0.75, +15.0, Environment::GroundFixed},
      {"climb", 0.35, +5.0, Environment::AirborneInhabitedCargo},
      {"cruise", 1.5, -10.0, Environment::AirborneInhabitedCargo},
      {"descent / taxi", 0.5, 0.0, Environment::AirborneInhabitedCargo},
  };
  m.missions_per_year = 700.0;
  return m;
}

MissionReliabilityReport assess_mission(const std::vector<Part>& bom,
                                        const MissionProfile& profile,
                                        double attach_swing_k) {
  profile.validate();
  if (bom.empty()) throw std::invalid_argument("assess_mission: empty BOM");

  MissionReliabilityReport out;
  const double total_h = profile.mission_hours();
  double lo = 1e9, hi = -1e9;
  for (const MissionPhase& phase : profile.phases) {
    const auto rpt = predict_mtbf_shifted(bom, phase.environment, phase.junction_offset);
    out.phase_rates.emplace_back(phase.name, rpt.total_failure_rate);
    out.effective_failure_rate +=
        rpt.total_failure_rate * phase.duration_hours / total_h;
    lo = std::min(lo, phase.junction_offset);
    hi = std::max(hi, phase.junction_offset);
  }
  out.mtbf_hours = 1e6 / out.effective_failure_rate;
  out.annual_operating_hours = total_h * profile.missions_per_year;

  const double swing = (attach_swing_k > 0.0) ? attach_swing_k : std::max(hi - lo, 1.0);
  const double cycles_capable = coffin_manson_cycles(swing);
  out.annual_attach_damage = profile.missions_per_year / cycles_capable;
  out.attach_life_years =
      (out.annual_attach_damage > 0.0) ? 1.0 / out.annual_attach_damage : 1e9;
  return out;
}

}  // namespace aeropack::reliability
