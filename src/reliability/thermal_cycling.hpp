// Thermal-cycling fatigue: Coffin-Manson for solder attach and plated
// through-holes — the failure mode behind the paper's thermo-mechanical
// induced stress concern and the -45/+55 C thermal-shock qualification.
#pragma once

namespace aeropack::reliability {

/// Coffin-Manson cycles to failure: N = C * dT^-n.
/// Defaults represent SnPb/SAC solder attach (n ~ 2.0-2.7).
double coffin_manson_cycles(double delta_t, double coefficient = 6.0e6, double exponent = 2.0);

/// Acceleration factor between a test cycle and a service cycle:
/// AF = (dT_test / dT_service)^n.
double coffin_manson_acceleration(double delta_t_test, double delta_t_service,
                                  double exponent = 2.0);

/// Norris-Landzberg refinement adding cycle frequency and peak temperature:
/// AF = (dT_t/dT_s)^n (f_s/f_t)^m exp(Ea/k (1/Tmax_s - 1/Tmax_t))
double norris_landzberg_acceleration(double delta_t_test, double delta_t_service,
                                     double freq_test_per_day, double freq_service_per_day,
                                     double t_max_test_k, double t_max_service_k,
                                     double exponent = 1.9, double freq_exponent = 0.33,
                                     double activation_energy_ev = 0.122);

/// Service life [years] of an attach that survives `test_cycles` of the test
/// profile, given `service_cycles_per_year` of the service profile.
double service_life_years(double test_cycles, double af_test_over_service,
                          double service_cycles_per_year);

}  // namespace aeropack::reliability
