// Failure-rate prediction in the MIL-HDBK-217F tradition: per-part base
// failure rates scaled by temperature (Arrhenius), quality and environment
// factors, rolled up in series to an equipment MTBF. The paper's design
// target: "Typical Mean Time Between Failure (MTBF) for aerospace
// applications is about 40,000 h", with junction temperatures kept under
// 125 C (85 C ambient) as the input to this calculation.
#pragma once

#include <string>
#include <vector>

namespace aeropack::reliability {

constexpr double kBoltzmannEv = 8.617333262e-5;  ///< [eV/K]

/// Arrhenius acceleration factor between a reference junction temperature
/// and an operating one (both [K]), for activation energy [eV].
double arrhenius_factor(double t_ref_k, double t_op_k, double activation_energy_ev);

/// Operating environment per 217F nomenclature (subset).
enum class Environment {
  GroundBenign,        ///< G_B
  GroundFixed,         ///< G_F
  AirborneInhabitedCargo,    ///< A_IC — avionics bay
  AirborneInhabitedFighter,  ///< A_IF
  AirborneUninhabitedCargo,  ///< A_UC
  SpaceFlight,         ///< S_F
};
double environment_factor(Environment e);

enum class Quality { Space, FullMil, Commercial };  ///< pi_Q ladder
double quality_factor(Quality q);

/// Part archetypes with representative 217F-style base failure rates.
enum class PartType {
  Microprocessor,     ///< VLSI digital
  Memory,
  AnalogIc,
  PowerTransistor,
  Diode,
  Resistor,
  CeramicCapacitor,
  TantalumCapacitor,
  Inductor,
  Connector,
  SolderJointSet,     ///< per-component attach (thermal cycling driven)
  Crystal,
};

struct Part {
  std::string reference;      ///< e.g. "U12"
  PartType type = PartType::Resistor;
  int count = 1;
  double junction_temperature = 358.15;  ///< [K] from the thermal analysis
  Quality quality = Quality::FullMil;
};

/// Base failure rate [failures / 1e6 h] at 40 C junction, pi factors = 1.
double base_failure_rate(PartType t);
/// Activation energy used for the type's temperature scaling. [eV]
double activation_energy(PartType t);

/// Failure rate of one part line item in its environment. [f/1e6 h]
double part_failure_rate(const Part& p, Environment env);

struct MtbfReport {
  double total_failure_rate = 0.0;  ///< [f/1e6 h]
  double mtbf_hours = 0.0;
  std::vector<std::pair<std::string, double>> contributions;  ///< per part line
};

/// Series-system rollup of a bill of materials.
MtbfReport predict_mtbf(const std::vector<Part>& bom, Environment env);

/// Same BOM with all junction temperatures shifted by `delta_k` — the lever
/// the paper's cooling work pulls (cooler junctions => longer MTBF).
MtbfReport predict_mtbf_shifted(const std::vector<Part>& bom, Environment env, double delta_k);

}  // namespace aeropack::reliability
