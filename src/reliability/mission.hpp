// Mission-profile reliability: an aircraft equipment does not sit at one
// junction temperature — it cycles through ground-soak, climb, cruise and
// descent phases. The effective failure rate is the duty-weighted average,
// and the daily temperature swing drives the thermal-cycling damage of the
// attach (paper: thermo-mechanical stress is a leading failure cause).
#pragma once

#include <string>
#include <vector>

#include "reliability/mtbf.hpp"

namespace aeropack::reliability {

struct MissionPhase {
  std::string name;
  double duration_hours = 1.0;      ///< per mission
  double junction_offset = 0.0;     ///< shift vs the BOM's nominal junctions [K]
  Environment environment = Environment::AirborneInhabitedCargo;
};

struct MissionProfile {
  std::string name;
  std::vector<MissionPhase> phases;
  double missions_per_year = 600.0;

  double mission_hours() const;
  void validate() const;  ///< throws std::invalid_argument

  /// Typical short-haul airliner day: ground soak, climb, cruise, descent.
  static MissionProfile short_haul();
};

struct MissionReliabilityReport {
  double effective_failure_rate = 0.0;  ///< duty-weighted [f/1e6 h]
  double mtbf_hours = 0.0;
  double annual_operating_hours = 0.0;
  /// Attach thermal-cycling damage per year (Miner fraction) given the
  /// per-mission junction swing.
  double annual_attach_damage = 0.0;
  double attach_life_years = 0.0;
  std::vector<std::pair<std::string, double>> phase_rates;  ///< per phase [f/1e6 h]
};

/// Roll a BOM over a mission profile. `attach_swing_k` is the junction
/// swing per mission driving the Coffin-Manson attach damage (defaults to
/// the max phase offset spread).
MissionReliabilityReport assess_mission(const std::vector<Part>& bom,
                                        const MissionProfile& profile,
                                        double attach_swing_k = -1.0);

}  // namespace aeropack::reliability
