// Fleet spares provisioning: once an MTBF is predicted, the airline question
// is "how many spare boxes do I stock?". Poisson demand over the repair
// turnaround time gives the protection level — the fleet-economics argument
// behind the paper's IFE reliability concern ("reliability and maintenance
// concern" multiplied by the seat count).
#pragma once

#include <cstddef>

namespace aeropack::reliability {

/// Expected number of units in the repair pipeline:
/// demand = fleet_size * operating_hours_per_year * turnaround_days /
///          (MTBF * 365).
double pipeline_demand(double mtbf_hours, std::size_t fleet_size,
                       double operating_hours_per_year, double turnaround_days);

/// Poisson CDF P(X <= k) for rate lambda.
double poisson_cdf(std::size_t k, double lambda);

/// Minimum spare count such that the probability of not stocking out over
/// the turnaround pipeline is at least `fill_rate` (e.g. 0.95).
std::size_t spares_required(double mtbf_hours, std::size_t fleet_size,
                            double operating_hours_per_year, double turnaround_days,
                            double fill_rate);

/// Annual removals for the fleet.
double annual_removals(double mtbf_hours, std::size_t fleet_size,
                       double operating_hours_per_year);

}  // namespace aeropack::reliability
