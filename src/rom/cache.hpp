// rom + core::ArtifactCache glue: build-once / evaluate-many lookup for
// compact models (DESIGN.md "Scenario service").
//
// A RomModel is the most expensive artifact in the stack (dozens of
// full-order snapshot solves) and the cheapest to reuse (its steady() is a
// const rank x rank solve in microseconds), so it is the headline win of
// the cross-scenario cache: one build amortizes over thousands of
// load/boundary variants. rom_key() hashes everything build_rom consumes —
// the source model's structural hash (geometry, materials, interfaces,
// scheme), the full port/map layout and every RomOptions knob — over exact
// bit patterns, so key-equal builds are bitwise-equal models and a cache
// hit evaluates identically to a cold build.
#pragma once

#include <cstdint>
#include <memory>

#include "core/artifact_cache.hpp"
#include "rom/rom.hpp"

namespace aeropack::rom {

/// Structural identity of build_rom(model, spec, opts): FNV-1a over the
/// model's structural hash, the spec layout and the options. Sources and
/// boundaries on `model` are deliberately excluded — build_rom rebases onto
/// `spec`, so models differing only in loads share a key (and a ROM).
std::uint64_t rom_key(const thermal::FvModel& model, const RomSpec& spec,
                      const RomOptions& opts = {});

/// Approximate resident size of a built model for cache cost accounting
/// (basis + reduced operators + training projections).
std::size_t rom_cost_bytes(const RomModel& model);

/// Cache-aware build: probe `cache` under rom_key(), build on miss (outside
/// the cache locks) and insert. A null cache always builds fresh — the
/// uncached ScenarioRunner/solo path. The returned model is immutable and
/// safe to evaluate concurrently from any number of threads.
std::shared_ptr<const RomModel> get_or_build_rom(core::ArtifactCache* cache,
                                                 const thermal::FvModel& model,
                                                 const RomSpec& spec, const RomOptions& opts = {});

}  // namespace aeropack::rom
