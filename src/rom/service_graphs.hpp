// ROM-backed solver graphs for core::ScenarioService.
//
// These live in rom (not core) because the library layering puts rom above
// core: core::ScenarioService registers only graphs over layers it links
// (thermal, fem, its own SEB model), and rom contributes its graphs through
// the service's extension point. Call register_rom_graphs() on a service to
// add:
//  - "rom_board_steady": steady port response of the canonical Fig. 2
//    board compact model (rom::fig2_board).
//  - "rom_seb_steady":   steady port response of the canonical SEB box
//    compact model (rom::seb_box).
// Both build the RomModel once per structure through the service's
// ArtifactCache (rom/cache.hpp) and evaluate each spec's loads/boundaries
// on the reduced system — the build-once / evaluate-many pattern that
// makes 10^4-point campaigns tractable.
//
// Spec conventions (defaults in parentheses):
//  params:     rank (0 = automatic POD-energy rank)
//  loads:      one entry per power map, keyed by map name, watts (0)
//  boundaries: one entry per port, keyed by port name, sink kelvin (300)
// Outputs: "t_<port>" area-weighted port temperature [K], "q_<port>" heat
// into the body [W], "error_estimate" (POD tail), "rank".
#pragma once

namespace aeropack::core {
class ScenarioService;
}

namespace aeropack::rom {

void register_rom_graphs(core::ScenarioService& service);

}  // namespace aeropack::rom
