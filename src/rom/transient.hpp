// Driven reduced-order transient stepping: the rom implementation of the
// core::TransientSystem concept (core/transient_engine.hpp).
//
// A RomTransientStepper marches the reduced coordinates of a RomModel with
// implicit Euler on the *cached projected operator*: the r x r reduced
// conduction and capacity matrices were projected once at build time (and
// are typically reused across whole campaigns through get_or_build_rom), so
// a time-varying environment costs zero reprojection — a RomDrive merely
// re-evaluates the model's inputs (port sink temperatures, map powers) at
// the end time of every step and the reduced right-hand side is refreshed
// from the constant input map. This is what makes orbit-scale mission
// horizons tractable: each step is an r x r dense solve in nanoseconds
// instead of a full-order CG solve.
//
// Step sizes may change freely between calls — (C_r/dt + A_r) is
// re-factorized per distinct dt through a small exact-dt cache sized for
// the step-doubling pattern of the adaptive march — so the same stepper
// serves fixed-dt marches and the PI-controlled mission march.
//
// Determinism contract: all arithmetic is serial dense algebra over the
// deterministic reduced operators, so marches are bit-identical across
// 1/2/8 threads and across ExecutionContexts (gated by
// tests/rom/test_transient_stepper.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "numeric/dense.hpp"
#include "numeric/solve_dense.hpp"
#include "rom/rom.hpp"

namespace aeropack::rom {

/// Time-varying reduced-input drive: the rom counterpart of
/// thermal::FvDrive. `inputs(t)` returns the full RomInputs vector at
/// mission time `t` (sizes must match the model's spec) and must be pure —
/// same t, same inputs — for the march to stay deterministic. An empty
/// callback means the stepper's base inputs throughout (the undriven
/// special case). The mission layer builds rom drives from
/// mission::Profile (mission::drive_for_rom); hand-written drives are
/// equally valid.
struct RomDrive {
  std::function<RomInputs(double t)> inputs;
};

/// Reusable implicit-Euler stepper over a RomModel's reduced coordinates.
/// The state vector of the concept is the reduced coordinate vector y
/// (rank entries); use RomModel::reconstruct to lift any state back to the
/// full per-cell field. Counts one rom.transient_evals per stepper and one
/// rom.transient_steps per step, so a collapsed fixed-dt march reports the
/// same counters the hand-rolled loop did.
class RomTransientStepper {
 public:
  /// Build over `model` with the given base inputs (validated against the
  /// spec; std::invalid_argument on size mismatch). The model must outlive
  /// the stepper.
  RomTransientStepper(const RomModel& model, RomInputs base_inputs, RomDrive drive = {});
  /// Shared-ownership overload: keeps the (typically cache-held) model
  /// alive for the stepper's lifetime.
  RomTransientStepper(std::shared_ptr<const RomModel> model, RomInputs base_inputs,
                      RomDrive drive = {});

  // --- core::TransientSystem concept ------------------------------------
  std::size_t state_size() const;
  /// One implicit Euler step of size `dt` ending at mission time `t_next`:
  /// refresh the reduced right-hand side from the drive-resolved inputs at
  /// `t_next`, solve (C_r/dt + A_r) y' = b + C_r/dt y. Returns 1 (one
  /// dense solve).
  std::size_t step(numeric::Vector& y, double t_next, double dt);
  /// Controller error metric: max-norm of the *reconstructed* field
  /// difference [K] — kelvin units, so one mission tolerance means the same
  /// thing at ROM and FV fidelity.
  double error_norm(const numeric::Vector& a, const numeric::Vector& b) const;

  /// Reduced coordinates of a uniform initial temperature field
  /// (t_initial * V^T 1) — the same initial state RomModel::transient uses.
  numeric::Vector initial_state(double t_initial) const;

  const RomModel& model() const { return *model_; }
  /// Base inputs resolved at construction (the undriven inputs).
  const RomInputs& base_inputs() const { return base_; }

 private:
  const numeric::CholeskyFactorization& factor_for(double dt);

  std::shared_ptr<const RomModel> keepalive_;
  const RomModel* model_;
  RomInputs base_;
  RomDrive drive_;
  numeric::Vector b_base_;  ///< reduced_rhs(base_), reused when undriven

  /// Exact-dt factorization ring: step-doubling touches at most two
  /// distinct dts per attempt, fixed-dt marches one, so a handful of slots
  /// gives every loop shape an O(1) hit path. Replacement is deterministic
  /// round-robin.
  struct DtFactor {
    double dt = 0.0;
    numeric::CholeskyFactorization factor;
  };
  std::vector<DtFactor> factors_;
  std::size_t next_slot_ = 0;
};

}  // namespace aeropack::rom
