#include "rom/cache.hpp"

#include <string_view>

#include "numeric/hashing.hpp"

namespace aeropack::rom {

namespace {

void hash_range(numeric::StructuralHasher& h, const thermal::CellRange& r) {
  h.add(static_cast<std::uint64_t>(r.i0)).add(static_cast<std::uint64_t>(r.i1));
  h.add(static_cast<std::uint64_t>(r.j0)).add(static_cast<std::uint64_t>(r.j1));
  h.add(static_cast<std::uint64_t>(r.k0)).add(static_cast<std::uint64_t>(r.k1));
}

}  // namespace

std::uint64_t rom_key(const thermal::FvModel& model, const RomSpec& spec,
                      const RomOptions& opts) {
  numeric::StructuralHasher h;
  h.add(std::string_view("rom.model"));
  // Geometry, materials, interfaces and the face-conductance scheme.
  h.add(model.structural_hash(opts.fv, 0.0));
  h.add(static_cast<std::uint64_t>(spec.ports.size()));
  for (const RomPort& p : spec.ports) {
    h.add(std::string_view(p.name));
    h.add(static_cast<std::uint64_t>(p.face));
    hash_range(h, p.patch);
    h.add(p.h);
  }
  h.add(static_cast<std::uint64_t>(spec.maps.size()));
  for (const RomPowerMap& m : spec.maps) {
    h.add(std::string_view(m.name));
    h.add(static_cast<std::uint64_t>(m.regions.size()));
    for (const RomPowerMap::Region& r : m.regions) {
      hash_range(h, r.cells);
      h.add(r.weight);
    }
  }
  // Every knob the builder reads, including the snapshot solver's.
  h.add(opts.rank ? static_cast<std::uint64_t>(*opts.rank) : ~std::uint64_t{0});
  h.add(opts.energy_tolerance);
  h.add(opts.snapshot_tolerance);
  h.add(static_cast<std::uint64_t>(opts.transient_samples_per_map));
  h.add(opts.transient_time_scale);
  h.add(static_cast<std::uint64_t>(opts.fv.max_picard_iterations));
  h.add(opts.fv.picard_tolerance);
  h.add(static_cast<std::uint64_t>(opts.fv.linear.max_iterations));
  h.add(opts.fv.linear.tolerance);
  h.add(static_cast<std::uint64_t>(opts.fv.linear.chebyshev_degree));
  return h.value();
}

std::size_t rom_cost_bytes(const RomModel& model) {
  const std::size_t cells = model.cell_count();
  const std::size_t r = model.usable_rank();
  const std::size_t cols = model.port_count() + model.map_count();
  // basis (cells x r), three r x r operators, input map, selectors,
  // training projections — doubles throughout.
  return sizeof(RomModel) +
         8 * (cells * r + 3 * r * r + r * cols + 2 * model.port_count() * r +
              r * model.build_info().snapshot_count);
}

std::shared_ptr<const RomModel> get_or_build_rom(core::ArtifactCache* cache,
                                                 const thermal::FvModel& model,
                                                 const RomSpec& spec, const RomOptions& opts) {
  if (!cache) return std::make_shared<const RomModel>(build_rom(model, spec, opts));
  return cache->get_or_build<RomModel>(
      rom_key(model, spec, opts),
      [&] { return std::make_shared<const RomModel>(build_rom(model, spec, opts)); },
      [](const RomModel& m) { return rom_cost_bytes(m); });
}

}  // namespace aeropack::rom
