#include "rom/campaign.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace aeropack::rom {

void add_campaign(core::ScenarioRunner& runner, const thermal::FvModel& model,
                  const RomSpec& spec, const RomModel& rom,
                  const std::vector<CampaignCase>& cases, const thermal::FvOptions& fv) {
  if (rom.port_count() != spec.ports.size() || rom.map_count() != spec.maps.size())
    throw std::invalid_argument("add_campaign: rom does not match the spec layout");
  // Shared read-only state: ScenarioFn is copied into worker threads, so the
  // captured model/spec/rom live behind shared_ptr and are only read.
  auto shared_rom = std::make_shared<const RomModel>(rom);
  auto shared_spec = std::make_shared<const RomSpec>(spec);

  for (const CampaignCase& c : cases) {
    check_inputs(spec, c.inputs);
    if (c.fidelity == Fidelity::Compact) {
      runner.add(c.name, [shared_rom, inputs = c.inputs](ExecutionContext&) {
        const RomSteadyResult r = shared_rom->steady(inputs);
        std::map<std::string, double> out;
        for (std::size_t p = 0; p < shared_rom->port_count(); ++p) {
          out["T." + shared_rom->port_name(p)] = r.port_temperatures[p];
          out["Q." + shared_rom->port_name(p)] = r.port_heat_flows[p];
        }
        out["full_order"] = 0.0;
        return out;
      });
    } else {
      // Configure the full-order copy once, at queue time; the scenario only
      // solves it (on its own context) and extracts port outputs.
      auto configured = std::make_shared<thermal::FvModel>(model);
      apply_inputs(*configured, spec, c.inputs);
      runner.add(c.name, [configured, shared_spec, shared_rom, inputs = c.inputs,
                          fv](ExecutionContext& ctx) {
        const thermal::FvSolution sol = configured->solve_steady(ctx, fv);
        const numeric::Vector temps =
            port_surface_temperatures(*configured, *shared_spec, sol.temperatures);
        const numeric::Vector flows =
            port_heat_flows(*configured, *shared_spec, inputs, sol.temperatures, fv);
        std::map<std::string, double> out;
        for (std::size_t p = 0; p < shared_rom->port_count(); ++p) {
          out["T." + shared_rom->port_name(p)] = temps[p];
          out["Q." + shared_rom->port_name(p)] = flows[p];
        }
        out["full_order"] = 1.0;
        return out;
      });
    }
  }
}

}  // namespace aeropack::rom
