#include "rom/canonical.hpp"

#include "materials/solid.hpp"

namespace aeropack::rom {

using thermal::CellRange;
using thermal::Face;
using thermal::FvGrid;
using thermal::FvModel;

CanonicalCase fig2_board() {
  const std::size_t nx = 16, ny = 10, nz = 2;
  FvModel model(FvGrid::uniform(0.16, 0.10, 1.6e-3, nx, ny, nz));
  materials::PcbStackup stack;
  model.set_material(stack.as_material());

  RomSpec spec;
  // Wedge-lock rails along the two short edges; effective clamp film.
  spec.ports.push_back({"rail_left", Face::XMin, CellRange{0, 0, 0, ny, 0, nz}, 400.0});
  spec.ports.push_back({"rail_right", Face::XMax, CellRange{0, 0, 0, ny, 0, nz}, 400.0});
  // Component side washed by cabin air.
  spec.ports.push_back({"top_air", Face::ZMax, CellRange{0, nx, 0, ny, 0, 0}, 15.0});

  RomPowerMap cpu;
  cpu.name = "cpu";
  cpu.regions.push_back({CellRange{6, 9, 4, 7, nz - 1, nz}, 1.0});
  spec.maps.push_back(cpu);

  RomPowerMap psu;
  psu.name = "psu";
  psu.regions.push_back({CellRange{12, 15, 2, 5, nz - 1, nz}, 1.0});
  spec.maps.push_back(psu);

  return {std::move(model), std::move(spec)};
}

CanonicalCase seb_box() {
  const std::size_t nx = 15, ny = 12, nz = 4;
  FvModel model(FvGrid::uniform(0.30, 0.25, 0.036, nx, ny, nz));
  // Chassis floor (k = 0) in aluminum, the card volume above in FR4.
  model.set_material(materials::fr4());
  model.set_material(CellRange{0, nx, 0, ny, 0, 1}, materials::aluminum_6061());
  // Bond line between the floor and the card stack.
  model.add_interface_z(0, 2.0e-4);

  RomSpec spec;
  // Seat-rod attachment saddles: patches on the two long sides of the floor.
  spec.ports.push_back({"seat_rail_a", Face::YMin, CellRange{3, 12, 0, 0, 0, 1}, 250.0});
  spec.ports.push_back({"seat_rail_b", Face::YMax, CellRange{3, 12, 0, 0, 0, 1}, 250.0});
  // Box skin to cabin air (natural convection, linearized film).
  spec.ports.push_back({"skin", Face::ZMax, CellRange{0, nx, 0, ny, 0, 0}, 6.0});

  RomPowerMap pcb;
  pcb.name = "pcb_components";
  pcb.regions.push_back({CellRange{2, 6, 3, 9, 2, 3}, 2.0});
  pcb.regions.push_back({CellRange{9, 13, 3, 9, 2, 3}, 1.0});
  spec.maps.push_back(pcb);

  RomPowerMap psu;
  psu.name = "psu";
  psu.regions.push_back({CellRange{6, 9, 8, 11, 1, 2}, 1.0});
  spec.maps.push_back(psu);

  return {std::move(model), std::move(spec)};
}

}  // namespace aeropack::rom
