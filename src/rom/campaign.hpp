// Scenario-campaign bridge: evaluate one port/power layout over many input
// vectors through core::ScenarioRunner, choosing compact-model or full-order
// fidelity per scenario.
//
// This is ROADMAP item 1's "millions of scenario queries" shape: a campaign
// sweeps sink temperatures and dissipation levels; most scenarios run the
// microsecond RomModel evaluation, while spot-check scenarios re-run the
// same inputs through the full FvModel steady solve. Both fidelities report
// the same keys ("T.<port>" / "Q.<port>"), so downstream consumers compare
// them directly, and each scenario's isolated counter profile shows which
// path it took (rom.steady_evals vs. fv.steady_solves).
#pragma once

#include <string>
#include <vector>

#include "core/scenario_runner.hpp"
#include "rom/rom.hpp"

namespace aeropack::rom {

enum class Fidelity {
  Compact,    ///< evaluate the RomModel (microseconds)
  FullOrder,  ///< configure + solve the full FvModel (reference)
};

struct CampaignCase {
  std::string name;
  RomInputs inputs;
  Fidelity fidelity = Fidelity::Compact;
};

/// Queue one scenario per case onto `runner`. Compact cases share `rom`
/// (const evaluation, thread-safe); full-order cases own a copy of `model`
/// configured via apply_inputs at queue time and solve it on the scenario's
/// ExecutionContext. Every scenario returns "T.<port>" [K] and "Q.<port>"
/// [W, into the body] for each port, plus "full_order" (0/1).
/// Throws std::invalid_argument if any case's inputs do not match the spec.
void add_campaign(core::ScenarioRunner& runner, const thermal::FvModel& model,
                  const RomSpec& spec, const RomModel& rom,
                  const std::vector<CampaignCase>& cases,
                  const thermal::FvOptions& fv = {});

}  // namespace aeropack::rom
