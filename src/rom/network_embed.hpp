// Equipment-level embedding: drop a component-level RomModel into a lumped
// ThermalNetwork as a handful of nodes and conductors.
//
// The paper's Fig. 4 equipment level reasons about boxes and boards through
// resistive networks; a DELPHI-style compact model is exactly a multi-port
// resistive equivalent. At steady state the ROM's port behavior is
//   Q_p = sum_q K(p,q) T_q - sum_m W(p,m) P_m
// with K the symmetric zero-row-sum port conductance matrix and W the power
// split. That is reproduced exactly by: one network node per port, a linear
// conductor -K(p,q) between every port pair, and a heat load
// sum_m W(p,m) P_m injected at each port node. The caller then couples the
// port nodes to the surrounding equipment network (rails, chassis, air
// nodes) — the compact model itself stays boundary-condition independent.
#pragma once

#include <string>
#include <vector>

#include "rom/rom.hpp"
#include "thermal/network.hpp"

namespace aeropack::rom {

struct NetworkEmbedding {
  /// One diffusion node per port, in port order, named "prefix.port_name".
  std::vector<thermal::NodeId> port_nodes;
  /// The port conductance matrix the conductors were built from [W/K].
  numeric::Matrix port_conductance;
  /// Heat load injected at each port node [W] (the power-split image of
  /// `map_powers`).
  numeric::Vector port_loads;
};

/// Add the ROM's steady port equivalent to `net`. `map_powers` holds one
/// total power [W] per ROM power map (throws std::invalid_argument on size
/// mismatch). Port-pair conductances below `min_conductance` [W/K] are
/// dropped (roundoff-negative couplings never enter the network).
NetworkEmbedding embed_rom(thermal::ThermalNetwork& net, const RomModel& rom,
                           const std::string& prefix, const numeric::Vector& map_powers,
                           double min_conductance = 1e-12);

}  // namespace aeropack::rom
