#include "rom/network_embed.hpp"

#include <stdexcept>

namespace aeropack::rom {

NetworkEmbedding embed_rom(thermal::ThermalNetwork& net, const RomModel& rom,
                           const std::string& prefix, const numeric::Vector& map_powers,
                           double min_conductance) {
  if (map_powers.size() != rom.map_count())
    throw std::invalid_argument("embed_rom: expected " + std::to_string(rom.map_count()) +
                                " map powers, got " + std::to_string(map_powers.size()));

  NetworkEmbedding out;
  out.port_conductance = rom.port_conductance_matrix();
  const numeric::Matrix split = rom.port_power_split();
  const std::size_t p_count = rom.port_count();

  out.port_nodes.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p)
    out.port_nodes.push_back(net.add_node(prefix + "." + rom.port_name(p)));

  for (std::size_t p = 0; p < p_count; ++p)
    for (std::size_t q = p + 1; q < p_count; ++q) {
      const double g = -out.port_conductance(p, q);
      if (g > min_conductance) net.add_conductor(out.port_nodes[p], out.port_nodes[q], g);
    }

  out.port_loads.assign(p_count, 0.0);
  for (std::size_t p = 0; p < p_count; ++p) {
    double load = 0.0;
    for (std::size_t m = 0; m < rom.map_count(); ++m) load += split(p, m) * map_powers[m];
    out.port_loads[p] = load;
    if (load != 0.0) net.add_heat_load(out.port_nodes[p], load);
  }
  return out;
}

}  // namespace aeropack::rom
