// Canonical reduction targets shared by the golden suite, the verification
// ladder and bench_rom.
//
// Two fixed models anchor the rom tier the way the slab/fin/card trio
// anchors the cross-solver checks:
//  - fig2_board: the paper's Fig. 2 electronic board unit — a conduction-
//    cooled PCB clamped into two wedge-lock rails, its top face washed by
//    cabin air, with CPU and PSU dissipation zones. Three ports, two maps.
//  - seb_box: a conduction model of the Fig. 10 seat electronic box — an
//    aluminum chassis floor under an FR4 card stack (TIM plane between),
//    heat leaving through two seat-rod attachment patches and the box skin.
//    Three ports, two maps.
//
// Geometry, materials, grids and specs are fixed constants: the golden files
// in tests/rom/golden/ freeze the reduced models of exactly these functions.
#pragma once

#include "rom/rom.hpp"

namespace aeropack::rom {

/// A model plus the port/power-map layout to reduce it with.
struct CanonicalCase {
  thermal::FvModel model;
  RomSpec spec;
};

/// Fig. 2 board: 160 x 100 x 1.6 mm 4-layer PCB, 16 x 10 x 2 cells.
/// Ports: rail_left (XMin, h=400), rail_right (XMax, h=400),
/// top_air (ZMax, h=15). Maps: cpu (center), psu (right edge).
CanonicalCase fig2_board();

/// SEB conduction box: 300 x 250 x 36 mm, 15 x 12 x 4 cells; aluminum floor
/// layer, FR4 card volume above, TIM interface between (k-plane 0).
/// Ports: seat_rail_a (YMin patch, h=250), seat_rail_b (YMax patch, h=250),
/// skin (ZMax, h=6). Maps: pcb_components (two zones), psu (one zone).
CanonicalCase seb_box();

}  // namespace aeropack::rom
