#include "rom/transient.hpp"

#include <cmath>
#include <utility>

#include "core/transient_engine.hpp"
#include "obs/registry.hpp"

namespace aeropack::rom {

using numeric::Matrix;
using numeric::Vector;

namespace {
/// Factorization ring capacity: the adaptive march alternates between the
/// full-step dt and its half per attempt; fixed-dt marches use one slot.
constexpr std::size_t kMaxDtFactors = 6;
}  // namespace

RomTransientStepper::RomTransientStepper(const RomModel& model, RomInputs base_inputs,
                                         RomDrive drive)
    : model_(&model), base_(std::move(base_inputs)), drive_(std::move(drive)) {
  static thread_local obs::CounterHandle evals{"rom.transient_evals"};
  model_->check(base_);
  evals.add();
  b_base_ = model_->reduced_rhs(base_);
}

RomTransientStepper::RomTransientStepper(std::shared_ptr<const RomModel> model,
                                         RomInputs base_inputs, RomDrive drive)
    : RomTransientStepper(*model, std::move(base_inputs), std::move(drive)) {
  keepalive_ = std::move(model);
}

std::size_t RomTransientStepper::state_size() const { return model_->rank_; }

Vector RomTransientStepper::initial_state(double t_initial) const {
  const std::size_t rank = model_->rank_;
  Vector y(rank);
  for (std::size_t k = 0; k < rank; ++k) y[k] = t_initial * model_->ones_proj_[k];
  return y;
}

double RomTransientStepper::error_norm(const Vector& a, const Vector& b) const {
  // Reconstructed-field max-norm, computed without materializing the two
  // full fields: max_c |sum_k V(c,k) (a_k - b_k)|. Serial, deterministic.
  const Matrix& v = model_->basis_;
  const std::size_t n = v.rows();
  const std::size_t rank = model_->rank_;
  double err = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    double acc = 0.0;
    for (std::size_t k = 0; k < rank; ++k) acc += v(c, k) * (a[k] - b[k]);
    err = std::max(err, std::abs(acc));
  }
  return err;
}

const numeric::CholeskyFactorization& RomTransientStepper::factor_for(double dt) {
  for (const DtFactor& f : factors_)
    if (f.dt == dt) return f.factor;
  const double inv_dt = 1.0 / dt;
  const std::size_t rank = model_->rank_;
  Matrix m(rank, rank);
  for (std::size_t i = 0; i < rank; ++i)
    for (std::size_t j = 0; j < rank; ++j)
      m(i, j) = model_->c_r_(i, j) * inv_dt + model_->a_r_(i, j);
  numeric::CholeskyFactorization factor(m);
  if (factors_.size() < kMaxDtFactors) {
    factors_.push_back(DtFactor{dt, std::move(factor)});
    return factors_.back().factor;
  }
  factors_[next_slot_] = DtFactor{dt, std::move(factor)};
  const DtFactor& slot = factors_[next_slot_];
  next_slot_ = (next_slot_ + 1) % kMaxDtFactors;
  return slot.factor;
}

std::size_t RomTransientStepper::step(Vector& y, double t_next, double dt) {
  core::check_step_size("RomTransientStepper::step", dt);
  core::check_state_size("RomTransientStepper::step", y.size(), model_->rank_);
  static thread_local obs::CounterHandle steps_counter{"rom.transient_steps"};
  const double inv_dt = 1.0 / dt;
  const numeric::CholeskyFactorization& march = factor_for(dt);

  // Implicit Euler samples the environment at the step's end time; the
  // undriven path reuses the base right-hand side computed once.
  Vector b_driven;
  if (drive_.inputs) {
    RomInputs in = drive_.inputs(t_next);
    model_->check(in);
    b_driven = model_->reduced_rhs(in);
  }
  const Vector& b = drive_.inputs ? b_driven : b_base_;

  const std::size_t rank = model_->rank_;
  Vector rhs(rank, 0.0);
  for (std::size_t i = 0; i < rank; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < rank; ++j) acc += model_->c_r_(i, j) * inv_dt * y[j];
    rhs[i] = acc;
  }
  y = march.solve(rhs);
  steps_counter.add();
  return 1;
}

}  // namespace aeropack::rom
