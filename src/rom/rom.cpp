#include "rom/rom.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "core/transient_engine.hpp"
#include "numeric/eigen.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "obs/registry.hpp"
#include "rom/transient.hpp"

namespace aeropack::rom {

using numeric::Matrix;
using numeric::Vector;
using thermal::BoundaryCondition;
using thermal::CellRange;
using thermal::Face;
using thermal::FvGrid;
using thermal::FvModel;

namespace {

/// Relative eigenvalue floor below which a POD mode is numerically
/// dependent on the preceding ones and unusable as a basis direction.
constexpr double kPodRankFloor = 1e-13;

/// Visit every boundary cell of a port: cell index, in-plane flattened
/// index (the set_boundary_patch convention) and face area of that cell.
template <typename Fn>
void for_each_port_cell(const FvGrid& g, const RomPort& port, Fn&& fn) {
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const CellRange& r = port.patch;
  switch (port.face) {
    case Face::XMin:
    case Face::XMax: {
      const std::size_t i = port.face == Face::XMin ? 0 : nx - 1;
      for (std::size_t k = r.k0; k < r.k1; ++k)
        for (std::size_t j = r.j0; j < r.j1; ++j)
          fn(g.index(i, j, k), j + ny * k, g.dy(j) * g.dz(k));
      break;
    }
    case Face::YMin:
    case Face::YMax: {
      const std::size_t j = port.face == Face::YMin ? 0 : ny - 1;
      for (std::size_t k = r.k0; k < r.k1; ++k)
        for (std::size_t i = r.i0; i < r.i1; ++i)
          fn(g.index(i, j, k), i + nx * k, g.dx(i) * g.dz(k));
      break;
    }
    case Face::ZMin:
    case Face::ZMax: {
      const std::size_t k = port.face == Face::ZMin ? 0 : nz - 1;
      for (std::size_t j = r.j0; j < r.j1; ++j)
        for (std::size_t i = r.i0; i < r.i1; ++i)
          fn(g.index(i, j, k), i + nx * j, g.dx(i) * g.dy(j));
      break;
    }
  }
}

void validate_spec(const FvGrid& grid, const RomSpec& spec) {
  if (spec.ports.empty())
    throw std::invalid_argument("rom: spec must declare at least one port");
  for (const RomPort& p : spec.ports) {
    if (p.name.empty()) throw std::invalid_argument("rom: port name must not be empty");
    if (!(p.h > 0.0))
      throw std::invalid_argument("rom: port '" + p.name +
                                  "' film coefficient must be > 0");
  }
  for (std::size_t a = 0; a < spec.ports.size(); ++a)
    for (std::size_t b = a + 1; b < spec.ports.size(); ++b)
      if (spec.ports[a].name == spec.ports[b].name)
        throw std::invalid_argument("rom: duplicate port name '" + spec.ports[a].name + "'");
  for (const RomPowerMap& m : spec.maps) {
    if (m.name.empty()) throw std::invalid_argument("rom: power-map name must not be empty");
    if (m.regions.empty())
      throw std::invalid_argument("rom: power map '" + m.name + "' has no regions");
    for (const RomPowerMap::Region& reg : m.regions)
      if (!(reg.weight > 0.0))
        throw std::invalid_argument("rom: power map '" + m.name +
                                    "' region weights must be > 0");
  }
  for (std::size_t a = 0; a < spec.maps.size(); ++a)
    for (std::size_t b = a + 1; b < spec.maps.size(); ++b)
      if (spec.maps[a].name == spec.maps[b].name)
        throw std::invalid_argument("rom: duplicate power-map name '" + spec.maps[a].name + "'");

  // Two ports claiming the same boundary cell would silently overwrite each
  // other's film patch — reject the layout outright.
  std::array<std::vector<const char*>, 6> claimed;
  claimed[0].assign(grid.ny() * grid.nz(), nullptr);
  claimed[1].assign(grid.ny() * grid.nz(), nullptr);
  claimed[2].assign(grid.nx() * grid.nz(), nullptr);
  claimed[3].assign(grid.nx() * grid.nz(), nullptr);
  claimed[4].assign(grid.nx() * grid.ny(), nullptr);
  claimed[5].assign(grid.nx() * grid.ny(), nullptr);
  for (const RomPort& p : spec.ports) {
    auto& face_claims = claimed[static_cast<std::size_t>(p.face)];
    for_each_port_cell(grid, p, [&](std::size_t, std::size_t plane_idx, double) {
      if (plane_idx >= face_claims.size())
        throw std::out_of_range("rom: port '" + p.name + "' patch outside the grid");
      if (face_claims[plane_idx] != nullptr)
        throw std::invalid_argument("rom: ports '" + std::string(face_claims[plane_idx]) +
                                    "' and '" + p.name + "' overlap on the same face");
      face_claims[plane_idx] = p.name.c_str();
    });
  }
}

/// Rebase a copy of the source model onto the spec's layout: no sources, no
/// inherited boundary overrides, every face adiabatic, port patches as
/// fixed-h films at the given sink temperatures.
void apply_layout(FvModel& model, const RomSpec& spec, const Vector& sink_temps) {
  model.clear_power();
  model.clear_boundary_overrides();
  for (Face f : {Face::XMin, Face::XMax, Face::YMin, Face::YMax, Face::ZMin, Face::ZMax})
    model.set_boundary(f, BoundaryCondition::adiabatic());
  for (std::size_t p = 0; p < spec.ports.size(); ++p)
    model.set_boundary_patch(spec.ports[p].face, spec.ports[p].patch,
                             BoundaryCondition::convection(spec.ports[p].h, sink_temps[p]));
}

void apply_map_power(FvModel& model, const RomPowerMap& map, double watts) {
  double total = 0.0;
  for (const RomPowerMap::Region& reg : map.regions) total += reg.weight;
  for (const RomPowerMap::Region& reg : map.regions)
    model.add_power(reg.cells, watts * reg.weight / total);
}

}  // namespace

void check_inputs(const RomSpec& spec, const RomInputs& inputs) {
  if (inputs.sink_temperatures.size() != spec.ports.size())
    throw std::invalid_argument(
        "rom: expected " + std::to_string(spec.ports.size()) +
        " port sink temperatures, got " + std::to_string(inputs.sink_temperatures.size()));
  if (inputs.map_powers.size() != spec.maps.size())
    throw std::invalid_argument("rom: expected " + std::to_string(spec.maps.size()) +
                                " map powers, got " +
                                std::to_string(inputs.map_powers.size()));
}

void apply_inputs(FvModel& model, const RomSpec& spec, const RomInputs& inputs) {
  validate_spec(model.grid(), spec);
  check_inputs(spec, inputs);
  apply_layout(model, spec, inputs.sink_temperatures);
  for (std::size_t m = 0; m < spec.maps.size(); ++m)
    if (inputs.map_powers[m] != 0.0) apply_map_power(model, spec.maps[m], inputs.map_powers[m]);
}

Vector port_surface_temperatures(const FvModel& model, const RomSpec& spec,
                                 const Vector& cell_temperatures) {
  validate_spec(model.grid(), spec);
  if (cell_temperatures.size() != model.grid().cell_count())
    throw std::invalid_argument("rom: field size does not match the model grid");
  Vector temps(spec.ports.size(), 0.0);
  for (std::size_t p = 0; p < spec.ports.size(); ++p) {
    double acc = 0.0, total_area = 0.0;
    for_each_port_cell(model.grid(), spec.ports[p],
                       [&](std::size_t cell, std::size_t, double area) {
                         acc += area * cell_temperatures[cell];
                         total_area += area;
                       });
    temps[p] = acc / total_area;
  }
  return temps;
}

Vector port_heat_flows(const FvModel& model, const RomSpec& spec, const RomInputs& inputs,
                       const Vector& cell_temperatures, const thermal::FvOptions& fv) {
  validate_spec(model.grid(), spec);
  check_inputs(spec, inputs);
  if (cell_temperatures.size() != model.grid().cell_count())
    throw std::invalid_argument("rom: field size does not match the model grid");
  // Recover each port's per-cell film conductance column by unit-sink RHS
  // differencing on a rebased copy (two assemblies per port, no solves).
  FvModel work = model;
  apply_layout(work, spec, Vector(spec.ports.size(), 0.0));
  const thermal::LinearSteadySystem base = work.linearize_steady(fv);
  Vector flows(spec.ports.size(), 0.0);
  for (std::size_t p = 0; p < spec.ports.size(); ++p) {
    work.set_boundary_patch(spec.ports[p].face, spec.ports[p].patch,
                            BoundaryCondition::convection(spec.ports[p].h, 1.0));
    const thermal::LinearSteadySystem excited = work.linearize_steady(fv);
    work.set_boundary_patch(spec.ports[p].face, spec.ports[p].patch,
                            BoundaryCondition::convection(spec.ports[p].h, 0.0));
    double q = 0.0;
    for (std::size_t c = 0; c < cell_temperatures.size(); ++c) {
      const double g = excited.rhs[c] - base.rhs[c];
      q += g * (inputs.sink_temperatures[p] - cell_temperatures[c]);
    }
    flows[p] = q;
  }
  return flows;
}

// --- RomBuilder ---------------------------------------------------------------

/// Friend of RomModel: runs the snapshot → POD → Galerkin pipeline.
class RomBuilder {
 public:
  static RomModel build(const FvModel& source, const RomSpec& spec, const RomOptions& opts);
};

RomModel RomBuilder::build(const FvModel& source, const RomSpec& spec, const RomOptions& opts) {
  static thread_local obs::CounterHandle builds{"rom.builds"};
  static thread_local obs::CounterHandle snapshot_solves{"rom.snapshot_solves"};
  static thread_local obs::CounterHandle snapshot_cg{"rom.snapshot_cg_iterations"};
  static thread_local obs::CounterHandle basis_vectors{"rom.basis_vectors"};
  // Wall-clock build cost in integer microseconds. Deliberately a counter so
  // it lands in bench reports next to the solve counters — but it is NOT
  // deterministic, so tools/check_report.py excludes the rom.snapshot_build.
  // prefix when freezing expectations (like the scheduling counters).
  static thread_local obs::CounterHandle build_elapsed{"rom.snapshot_build.elapsed_us"};
  builds.add();
  obs::ScopedTimer span("rom.build");
  const auto t0 = std::chrono::steady_clock::now();

  validate_spec(source.grid(), spec);
  if (opts.rank && *opts.rank == 0)
    throw std::invalid_argument("rom: RomOptions::rank must be at least 1 (got 0)");
  if (opts.transient_samples_per_map > 0 && !(opts.transient_time_scale > 0.0))
    throw std::invalid_argument(
        "rom: transient snapshot enrichment requires transient_time_scale > 0");

  const std::size_t n_ports = spec.ports.size();
  const std::size_t n_maps = spec.maps.size();
  const std::size_t n = source.grid().cell_count();

  // 1. Rebase a working copy onto the port layout and extract the constant
  //    operator plus one right-hand-side column per input.
  FvModel work = source;
  apply_layout(work, spec, Vector(n_ports, 0.0));
  const thermal::LinearSteadySystem base = work.linearize_steady(opts.fv);

  std::vector<Vector> input_cols;  // ports then maps, spec order
  input_cols.reserve(n_ports + n_maps);
  for (std::size_t p = 0; p < n_ports; ++p) {
    work.set_boundary_patch(spec.ports[p].face, spec.ports[p].patch,
                            BoundaryCondition::convection(spec.ports[p].h, 1.0));
    thermal::LinearSteadySystem excited = work.linearize_steady(opts.fv);
    numeric::axpy(-1.0, base.rhs, excited.rhs);
    input_cols.push_back(std::move(excited.rhs));
    work.set_boundary_patch(spec.ports[p].face, spec.ports[p].patch,
                            BoundaryCondition::convection(spec.ports[p].h, 0.0));
  }
  for (std::size_t m = 0; m < n_maps; ++m) {
    apply_map_power(work, spec.maps[m], 1.0);
    thermal::LinearSteadySystem powered = work.linearize_steady(opts.fv);
    numeric::axpy(-1.0, base.rhs, powered.rhs);
    input_cols.push_back(std::move(powered.rhs));
    work.clear_power();
  }

  // 2. Snapshots: the exact steady response of each unit input, then the
  //    optional step-response enrichment per power map. Order is fixed, so
  //    the POD problem — and everything downstream — is deterministic.
  numeric::IterativeOptions cg = opts.fv.linear;
  cg.tolerance = opts.snapshot_tolerance;
  RomBuildInfo info;
  std::vector<Vector> snapshots;
  snapshots.reserve(input_cols.size() +
                    n_maps * opts.transient_samples_per_map);
  {
    obs::ScopedTimer snap_span("rom.snapshots");
    for (const Vector& b : input_cols) {
      const auto lin = numeric::conjugate_gradient(base.matrix, b, cg);
      if (!lin.converged)
        throw std::runtime_error("rom: snapshot solve failed to converge");
      snapshot_solves.add();
      snapshot_cg.add(lin.iterations);
      info.snapshot_solves += 1;
      info.snapshot_cg_iterations += lin.iterations;
      snapshots.push_back(lin.x);
    }
    if (opts.transient_samples_per_map > 0) {
      const Vector cap = work.cell_capacities();
      const double inv_dt = 1.0 / opts.transient_time_scale;
      numeric::CsrMatrix euler = base.matrix;  // A + C/dt on the diagonal
      {
        const auto& row_ptr = euler.row_ptr();
        const auto& col_idx = euler.col_idx();
        auto& values = euler.values();
        for (std::size_t row = 0; row < n; ++row)
          for (std::size_t e = row_ptr[row]; e < row_ptr[row + 1]; ++e)
            if (col_idx[e] == row) values[e] += cap[row] * inv_dt;
      }
      for (std::size_t m = 0; m < n_maps; ++m) {
        const Vector& q = input_cols[n_ports + m];
        Vector x(n, 0.0);  // step response from the all-zero-sink state
        std::size_t next_sample = 1;
        std::size_t recorded = 0;
        for (std::size_t step = 1; recorded < opts.transient_samples_per_map; ++step) {
          Vector rhs(n);
          for (std::size_t c = 0; c < n; ++c) rhs[c] = cap[c] * inv_dt * x[c] + q[c];
          const auto lin = numeric::conjugate_gradient(euler, rhs, cg, &x);
          if (!lin.converged)
            throw std::runtime_error("rom: transient snapshot solve failed to converge");
          snapshot_solves.add();
          snapshot_cg.add(lin.iterations);
          info.snapshot_solves += 1;
          info.snapshot_cg_iterations += lin.iterations;
          x = lin.x;
          if (step == next_sample) {  // dt, 2dt, 4dt, ...
            snapshots.push_back(x);
            next_sample *= 2;
            ++recorded;
          }
        }
      }
    }
  }
  const std::size_t n_snap = snapshots.size();
  info.snapshot_count = n_snap;

  // 3. Deterministic POD: Gram matrix with the fixed-chunk parallel_dot,
  //    serial cyclic-Jacobi eigensolve, modes assembled in descending-energy
  //    order and tightened with one modified Gram-Schmidt pass.
  std::vector<Vector> modes;
  Vector energies;
  {
    obs::ScopedTimer pod_span("rom.pod");
    Matrix gram(n_snap, n_snap);
    for (std::size_t i = 0; i < n_snap; ++i)
      for (std::size_t j = i; j < n_snap; ++j) {
        const double g = numeric::parallel_dot(snapshots[i], snapshots[j]);
        gram(i, j) = g;
        gram(j, i) = g;
      }
    const numeric::EigenResult eig = numeric::eigen_symmetric(gram);
    double lambda_max = 0.0;
    for (double lambda : eig.eigenvalues) lambda_max = std::max(lambda_max, lambda);
    if (!(lambda_max > 0.0))
      throw std::runtime_error("rom: snapshot set is identically zero");
    // eigen_symmetric returns ascending order; walk from the top. Every
    // positive eigenvalue is tracked as energy (the tail-energy estimate
    // needs the full spectrum); only eigenvalues above the relative floor
    // become basis directions, and since the walk is descending the first
    // floored one closes the basis.
    for (std::size_t k = n_snap; k-- > 0;) {
      const double lambda = eig.eigenvalues[k];
      if (lambda <= 0.0) break;
      energies.push_back(lambda);
      if (lambda <= lambda_max * kPodRankFloor) continue;
      Vector v(n, 0.0);
      for (std::size_t j = 0; j < n_snap; ++j)
        if (eig.eigenvectors(j, k) != 0.0)
          numeric::parallel_axpy(eig.eigenvectors(j, k), snapshots[j], v);
      const double scale = 1.0 / std::sqrt(lambda);
      numeric::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) v[c] *= scale;
      });
      modes.push_back(std::move(v));
    }
    // One modified Gram-Schmidt pass tightens the near-orthonormal modes to
    // round-off, keeping the basis nested (mode k only changes within
    // span(modes[0..k])) so at_rank() truncation stays exact.
    for (std::size_t k = 0; k < modes.size(); ++k) {
      for (std::size_t i = 0; i < k; ++i) {
        const double proj = numeric::parallel_dot(modes[i], modes[k]);
        numeric::parallel_axpy(-proj, modes[i], modes[k]);
      }
      const double nrm = numeric::parallel_norm2(modes[k]);
      numeric::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) modes[k][c] /= nrm;
      });
    }
  }
  const std::size_t usable = modes.size();
  info.usable_rank = usable;

  // Basis rank: explicit (validated) or smallest tail-energy-tolerant rank.
  std::size_t rank;
  if (opts.rank) {
    if (*opts.rank > usable)
      throw std::invalid_argument(
          "rom: requested rank " + std::to_string(*opts.rank) + " exceeds the usable basis rank " +
          std::to_string(usable) + " (" + std::to_string(n_snap) +
          " snapshots); enrich the snapshot set or lower the rank");
    rank = *opts.rank;
  } else {
    const double total = std::accumulate(energies.begin(), energies.end(), 0.0);
    rank = usable;
    double tail = total;
    for (std::size_t k = 0; k < usable; ++k) {
      tail -= energies[k];
      if (tail <= opts.energy_tolerance * total) {
        rank = k + 1;
        break;
      }
    }
  }

  // 4. Galerkin projection of the operator, capacity, inputs and outputs.
  RomModel rom;
  {
    obs::ScopedTimer proj_span("rom.project");
    rom.basis_ = Matrix(n, usable);
    for (std::size_t k = 0; k < usable; ++k)
      for (std::size_t c = 0; c < n; ++c) rom.basis_(c, k) = modes[k][c];

    rom.a_r_ = Matrix(usable, usable);
    Vector work_vec(n);
    for (std::size_t k = 0; k < usable; ++k) {
      base.matrix.multiply(modes[k], work_vec);
      for (std::size_t i = 0; i < usable; ++i)
        rom.a_r_(i, k) = numeric::parallel_dot(modes[i], work_vec);
    }
    rom.a_r_.symmetrize();

    const Vector cap = work.cell_capacities();
    rom.c_r_ = Matrix(usable, usable);
    for (std::size_t k = 0; k < usable; ++k) {
      for (std::size_t c = 0; c < n; ++c) work_vec[c] = cap[c] * modes[k][c];
      for (std::size_t i = 0; i < usable; ++i)
        rom.c_r_(i, k) = numeric::parallel_dot(modes[i], work_vec);
    }
    rom.c_r_.symmetrize();

    rom.b_r_ = Matrix(usable, n_ports + n_maps);
    for (std::size_t j = 0; j < input_cols.size(); ++j)
      for (std::size_t k = 0; k < usable; ++k)
        rom.b_r_(k, j) = numeric::parallel_dot(modes[k], input_cols[j]);

    rom.port_temp_sel_ = Matrix(n_ports, usable);
    rom.port_film_sel_ = Matrix(n_ports, usable);
    rom.port_film_total_.assign(n_ports, 0.0);
    for (std::size_t p = 0; p < n_ports; ++p) {
      double total_area = 0.0;
      for_each_port_cell(source.grid(), spec.ports[p],
                         [&](std::size_t, std::size_t, double area) { total_area += area; });
      for (std::size_t k = 0; k < usable; ++k) {
        double sel = 0.0;
        for_each_port_cell(source.grid(), spec.ports[p],
                           [&](std::size_t cell, std::size_t, double area) {
                             sel += area / total_area * modes[k][cell];
                           });
        rom.port_temp_sel_(p, k) = sel;
        rom.port_film_sel_(p, k) = numeric::parallel_dot(input_cols[p], modes[k]);
      }
      rom.port_film_total_[p] =
          std::accumulate(input_cols[p].begin(), input_cols[p].end(), 0.0);
    }

    const Vector ones(n, 1.0);
    rom.ones_proj_.assign(usable, 0.0);
    for (std::size_t k = 0; k < usable; ++k)
      rom.ones_proj_[k] = numeric::parallel_dot(modes[k], ones);

    rom.train_coeff_ = Matrix(usable, n_snap);
    rom.train_norm2_.assign(n_snap, 0.0);
    for (std::size_t j = 0; j < n_snap; ++j) {
      rom.train_norm2_[j] = numeric::parallel_dot(snapshots[j], snapshots[j]);
      for (std::size_t k = 0; k < usable; ++k)
        rom.train_coeff_(k, j) = numeric::parallel_dot(modes[k], snapshots[j]);
    }
  }

  rom.pod_energy_ = energies;
  for (const RomPort& p : spec.ports) rom.port_names_.push_back(p.name);
  for (const RomPowerMap& m : spec.maps) rom.map_names_.push_back(m.name);
  info.build_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  rom.info_ = info;
  rom.activate_rank(rank);

  static thread_local obs::GaugeHandle rank_gauge{"rom.basis_rank"};
  static thread_local obs::GaugeHandle snap_gauge{"rom.snapshots"};
  basis_vectors.add(rank);
  rank_gauge.set(static_cast<double>(rank));
  snap_gauge.set(static_cast<double>(n_snap));
  build_elapsed.add(static_cast<std::uint64_t>(info.build_seconds * 1e6));
  return rom;
}

RomModel build_rom(const FvModel& model, const RomSpec& spec, const RomOptions& opts) {
  return RomBuilder::build(model, spec, opts);
}

// --- RomModel -----------------------------------------------------------------

void RomModel::activate_rank(std::size_t r) {
  if (r == 0) throw std::invalid_argument("rom: rank must be at least 1 (got 0)");
  if (r > info_.usable_rank)
    throw std::invalid_argument("rom: rank " + std::to_string(r) +
                                " exceeds the usable basis rank " +
                                std::to_string(info_.usable_rank));
  rank_ = r;
  Matrix a(r, r);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < r; ++j) a(i, j) = a_r_(i, j);
  steady_factor_.emplace(a);
}

RomModel RomModel::at_rank(std::size_t r) const {
  RomModel copy = *this;
  copy.activate_rank(r);
  return copy;
}

void RomModel::check(const RomInputs& inputs) const {
  if (inputs.sink_temperatures.size() != port_count())
    throw std::invalid_argument("RomModel: expected " + std::to_string(port_count()) +
                                " port sink temperatures, got " +
                                std::to_string(inputs.sink_temperatures.size()));
  if (inputs.map_powers.size() != map_count())
    throw std::invalid_argument("RomModel: expected " + std::to_string(map_count()) +
                                " map powers, got " +
                                std::to_string(inputs.map_powers.size()));
}

Vector RomModel::reduced_rhs(const RomInputs& inputs) const {
  Vector rhs(rank_, 0.0);
  const std::size_t p_count = port_count();
  for (std::size_t k = 0; k < rank_; ++k) {
    double acc = 0.0;
    for (std::size_t p = 0; p < p_count; ++p)
      acc += b_r_(k, p) * inputs.sink_temperatures[p];
    for (std::size_t m = 0; m < map_count(); ++m)
      acc += b_r_(k, p_count + m) * inputs.map_powers[m];
    rhs[k] = acc;
  }
  return rhs;
}

void RomModel::port_outputs(const Vector& y, const RomInputs& inputs,
                            Vector& temperatures, Vector& heat_flows) const {
  const std::size_t p_count = port_count();
  temperatures.assign(p_count, 0.0);
  heat_flows.assign(p_count, 0.0);
  for (std::size_t p = 0; p < p_count; ++p) {
    double t = 0.0, film = 0.0;
    for (std::size_t k = 0; k < rank_; ++k) {
      t += port_temp_sel_(p, k) * y[k];
      film += port_film_sel_(p, k) * y[k];
    }
    temperatures[p] = t;
    heat_flows[p] = port_film_total_[p] * inputs.sink_temperatures[p] - film;
  }
}

RomSteadyResult RomModel::steady(const RomInputs& inputs) const {
  static thread_local obs::CounterHandle evals{"rom.steady_evals"};
  check(inputs);
  evals.add();
  RomSteadyResult out;
  out.reduced_coordinates = steady_factor_->solve(reduced_rhs(inputs));
  port_outputs(out.reduced_coordinates, inputs, out.port_temperatures, out.port_heat_flows);
  return out;
}

RomTransientResult RomModel::transient(const RomInputs& inputs, double t_end, double dt,
                                       double t_initial) const {
  check(inputs);
  // Same clamp semantics as FvModel::solve_transient.
  dt = core::check_march_window("RomModel::transient", t_end, dt);
  RomTransientStepper stepper(*this, inputs);
  Vector y = stepper.initial_state(t_initial);

  RomTransientResult out;
  Vector temps, flows;
  out.times.push_back(0.0);
  port_outputs(y, inputs, temps, flows);
  out.port_temperatures.push_back(temps);
  out.reduced_states.push_back(y);
  core::march_fixed(stepper, y, t_end, dt, [&](double t_next, const Vector& state) {
    out.times.push_back(t_next);
    port_outputs(state, inputs, temps, flows);
    out.port_temperatures.push_back(temps);
    out.reduced_states.push_back(state);
  });
  return out;
}

Vector RomModel::reconstruct(const Vector& reduced_coordinates) const {
  if (reduced_coordinates.size() != rank_)
    throw std::invalid_argument("RomModel::reconstruct: expected " + std::to_string(rank_) +
                                " reduced coordinates, got " +
                                std::to_string(reduced_coordinates.size()));
  const std::size_t n = basis_.rows();
  Vector field(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double acc = 0.0;
    for (std::size_t k = 0; k < rank_; ++k) acc += basis_(c, k) * reduced_coordinates[k];
    field[c] = acc;
  }
  return field;
}

Vector RomModel::steady_field(const RomInputs& inputs) const {
  return reconstruct(steady(inputs).reduced_coordinates);
}

double RomModel::error_estimate() const {
  double total = 0.0, tail = 0.0;
  for (std::size_t k = 0; k < pod_energy_.size(); ++k) {
    total += pod_energy_[k];
    if (k >= rank_) tail += pod_energy_[k];
  }
  return total > 0.0 ? std::sqrt(tail / total) : 0.0;
}

double RomModel::training_residual() const {
  double worst = 0.0;
  for (std::size_t j = 0; j < train_norm2_.size(); ++j) {
    if (train_norm2_[j] <= 0.0) continue;
    double captured = 0.0;
    for (std::size_t k = 0; k < rank_; ++k)
      captured += train_coeff_(k, j) * train_coeff_(k, j);
    const double err2 = std::max(0.0, train_norm2_[j] - captured);
    worst = std::max(worst, std::sqrt(err2 / train_norm2_[j]));
  }
  return worst;
}

Matrix RomModel::port_conductance_matrix() const {
  const std::size_t p_count = port_count();
  Matrix k(p_count, p_count);
  for (std::size_t q = 0; q < p_count; ++q) {
    Vector col(rank_);
    for (std::size_t i = 0; i < rank_; ++i) col[i] = b_r_(i, q);
    const Vector z = steady_factor_->solve(col);
    for (std::size_t p = 0; p < p_count; ++p) {
      double coupling = 0.0;
      for (std::size_t i = 0; i < rank_; ++i) coupling += port_film_sel_(p, i) * z[i];
      k(p, q) = (p == q ? port_film_total_[p] : 0.0) - coupling;
    }
  }
  k.symmetrize();
  return k;
}

Matrix RomModel::port_power_split() const {
  const std::size_t p_count = port_count();
  Matrix w(p_count, map_count());
  for (std::size_t m = 0; m < map_count(); ++m) {
    Vector col(rank_);
    for (std::size_t i = 0; i < rank_; ++i) col[i] = b_r_(i, p_count + m);
    const Vector z = steady_factor_->solve(col);
    for (std::size_t p = 0; p < p_count; ++p) {
      double share = 0.0;
      for (std::size_t i = 0; i < rank_; ++i) share += port_film_sel_(p, i) * z[i];
      w(p, m) = share;
    }
  }
  return w;
}

}  // namespace aeropack::rom
