// aeropack::rom — boundary-condition-independent compact thermal models
// (DELPHI-style multi-port reduction) extracted from any linear FvModel.
//
// The paper's Fig. 4 three-level flow (component → PCB → equipment) demands
// that a component-level model be usable inside a board- or equipment-level
// model without re-solving the component's 3-D field. This subsystem makes
// that executable: a RomSpec names the model's thermal ports (boundary film
// patches) and power maps (named source distributions); build_rom() solves
// deterministically ordered full-order snapshots — one unit boundary
// excitation per port, one unit power injection per map, plus optional
// step-response enrichment — and Galerkin-projects the FV operator onto the
// POD basis of those snapshots. The resulting RomModel evaluates steady and
// transient port responses on an r×r dense system (r ≈ 4–16) in
// microseconds, reports its own truncation-error estimate, and exposes the
// port-level conductance matrix so an equipment-level ThermalNetwork can
// embed the component as a handful of conductors (rom/network_embed.hpp).
//
// Determinism contract (the same one the FV/fem solvers carry): snapshot
// solves use the deterministic warm-startable CG, inner products use the
// fixed-chunk parallel_dot, and POD runs the serial cyclic-Jacobi
// eigensolver — so bases, reduced operators and every evaluated output are
// bit-identical across 1/2/8 threads and across ExecutionContexts. The rom
// ctest tier freezes that contract alongside golden port resistances and
// modal coefficients.
//
// All temperatures are absolute [K]; port powers are [W].
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "numeric/dense.hpp"
#include "numeric/solve_dense.hpp"
#include "thermal/fv.hpp"

namespace aeropack::rom {

/// One thermal port: a rectangular boundary patch coupled to its sink
/// through a fixed film coefficient. The sink temperature is the port's
/// input; the area-weighted surface temperature and the heat flow through
/// the film are its outputs.
struct RomPort {
  std::string name;
  thermal::Face face = thermal::Face::XMin;
  /// In-plane index box on `face`, in the same convention as
  /// FvModel::set_boundary_patch (the range along the face normal is
  /// ignored).
  thermal::CellRange patch;
  double h = 0.0;  ///< film coefficient to the sink [W/m^2 K], > 0
};

/// One named power map: a fixed spatial distribution of dissipation,
/// normalized to 1 W total. The map's input is its total power [W].
struct RomPowerMap {
  struct Region {
    thermal::CellRange cells;
    double weight = 1.0;  ///< share of the map's power in this box, > 0
  };
  std::string name;
  std::vector<Region> regions;
};

/// Port + power-map layout of a compact model. The builder rebases the
/// source model onto exactly this layout: every non-port boundary face is
/// adiabatic, so the reduced model is boundary-condition independent — port
/// sink temperatures and map powers are the only inputs.
struct RomSpec {
  std::vector<RomPort> ports;
  std::vector<RomPowerMap> maps;
};

/// Inputs of one evaluation: one sink temperature per port [K], one total
/// power per map [W]. Sizes must match the spec (std::invalid_argument).
struct RomInputs {
  numeric::Vector sink_temperatures;
  numeric::Vector map_powers;
};

struct RomOptions {
  /// Basis rank. Unset: smallest rank whose POD tail energy fraction is
  /// below `energy_tolerance`. Explicit values are validated — 0 or a rank
  /// beyond the usable (numerically independent) snapshot modes throws
  /// std::invalid_argument with the admissible range in the message.
  std::optional<std::size_t> rank;
  double energy_tolerance = 1e-10;
  /// Relative CG tolerance of the full-order snapshot solves. Tight by
  /// default so the full-rank ROM reproduces its training snapshots to
  /// near round-off.
  double snapshot_tolerance = 1e-12;
  /// Step-response enrichment: per power map, sample the implicit-Euler
  /// step response at `transient_samples_per_map` geometrically spaced
  /// times (dt, 2dt, 4dt, ...; dt = transient_time_scale). 0 keeps the
  /// steady snapshot set only. Requires transient_time_scale > 0 when set.
  std::size_t transient_samples_per_map = 0;
  double transient_time_scale = 0.0;  ///< [s]
  /// Options for the underlying FV operator (face-conductance scheme).
  thermal::FvOptions fv;
};

/// Steady response at one input vector.
struct RomSteadyResult {
  numeric::Vector port_temperatures;  ///< area-weighted port surface T [K]
  numeric::Vector port_heat_flows;    ///< heat INTO the body per port [W]
  numeric::Vector reduced_coordinates;
};

/// Implicit-Euler transient response (port temperatures per step).
struct RomTransientResult {
  numeric::Vector times;
  std::vector<numeric::Vector> port_temperatures;
  std::vector<numeric::Vector> reduced_states;
};

/// Build-time diagnostics.
struct RomBuildInfo {
  std::size_t snapshot_count = 0;       ///< snapshots fed to POD
  std::size_t snapshot_solves = 0;      ///< full-order CG solves performed
  std::size_t snapshot_cg_iterations = 0;
  std::size_t usable_rank = 0;          ///< numerically independent POD modes
  double build_seconds = 0.0;
};

/// The reduced model. Evaluation is const and thread-safe: concurrent
/// steady()/transient() calls from ScenarioRunner workers share no mutable
/// state. All data is dense and small except the basis (cells × rank), kept
/// for field reconstruction and verification.
class RomModel {
 public:
  std::size_t port_count() const { return port_names_.size(); }
  std::size_t map_count() const { return map_names_.size(); }
  std::size_t rank() const { return rank_; }
  std::size_t usable_rank() const { return info_.usable_rank; }
  std::size_t cell_count() const { return basis_.rows(); }
  const std::string& port_name(std::size_t p) const { return port_names_[p]; }
  const std::string& map_name(std::size_t m) const { return map_names_[m]; }
  const RomBuildInfo& build_info() const { return info_; }

  /// Steady port response: solve the rank×rank reduced system. Microseconds
  /// at compact ranks; bit-identical across threads and contexts.
  RomSteadyResult steady(const RomInputs& inputs) const;

  /// Implicit-Euler transient from a uniform initial temperature with
  /// inputs held constant. Same time-step semantics as the full solver
  /// (dt clamps to t_end; non-positive dt/t_end throws).
  RomTransientResult transient(const RomInputs& inputs, double t_end, double dt,
                               double t_initial) const;

  /// Lift reduced coordinates back to the full per-cell field [K].
  numeric::Vector reconstruct(const numeric::Vector& reduced_coordinates) const;
  /// Convenience: steady() + reconstruct().
  numeric::Vector steady_field(const RomInputs& inputs) const;

  /// Truncate to a smaller rank (the POD basis is nested, so this reuses
  /// the stored projections — no re-solve). Throws std::invalid_argument on
  /// rank 0 or rank > usable_rank().
  RomModel at_rank(std::size_t r) const;

  /// A-priori truncation-error estimate: sqrt of the POD tail energy
  /// fraction at the active rank — the share of snapshot "energy" the
  /// basis cannot represent. 0 means the basis spans every snapshot.
  double error_estimate() const;
  /// Worst relative L2 reconstruction error over the training snapshots at
  /// the active rank (exact, from stored projection coefficients).
  double training_residual() const;

  /// DELPHI-style port coupling: K(p,q) = ∂Q_p/∂T_sink_q [W/K], where Q_p
  /// is the heat INTO the body through port p. Symmetric, zero row sums
  /// (every watt entering a port leaves through another). The off-diagonal
  /// negated entries are the port-to-port conductances an equipment-level
  /// network embeds.
  numeric::Matrix port_conductance_matrix() const;
  /// W(p,m): fraction of map m's dissipation exiting through port p at
  /// steady state. Columns sum to 1.
  numeric::Matrix port_power_split() const;

  /// Full-precision basis/operator accessors for the determinism sweeps and
  /// the verification ladder (stored at usable_rank; leading blocks are the
  /// active model).
  const numeric::Matrix& basis() const { return basis_; }
  const numeric::Matrix& reduced_operator() const { return a_r_; }
  const numeric::Matrix& reduced_capacity() const { return c_r_; }
  const numeric::Matrix& input_map() const { return b_r_; }
  const numeric::Vector& pod_energies() const { return pod_energy_; }

 private:
  friend class RomBuilder;
  friend class RomTransientStepper;
  RomModel() = default;
  void activate_rank(std::size_t r);
  void check(const RomInputs& inputs) const;
  numeric::Vector reduced_rhs(const RomInputs& inputs) const;
  void port_outputs(const numeric::Vector& y, const RomInputs& inputs,
                    numeric::Vector& temperatures, numeric::Vector& heat_flows) const;

  std::vector<std::string> port_names_, map_names_;
  numeric::Matrix basis_;   // cells × usable_rank, POD modes (nested)
  numeric::Matrix a_r_;     // usable_rank × usable_rank, V^T A V
  numeric::Matrix c_r_;     // usable_rank × usable_rank, V^T C V
  numeric::Matrix b_r_;     // usable_rank × (ports + maps), V^T [g | q]
  numeric::Matrix port_temp_sel_;  // ports × usable_rank, s_p^T V
  numeric::Matrix port_film_sel_;  // ports × usable_rank, g_p^T V
  numeric::Vector port_film_total_;  // H_p = Σ g_p [W/K]
  numeric::Vector ones_proj_;        // V^T 1, for uniform initial states
  numeric::Vector pod_energy_;       // POD eigenvalues, descending
  numeric::Matrix train_coeff_;      // usable_rank × snapshots, V^T X
  numeric::Vector train_norm2_;      // per-snapshot squared L2 norms
  RomBuildInfo info_;

  std::size_t rank_ = 0;
  std::optional<numeric::CholeskyFactorization> steady_factor_;  // leading rank block
};

/// Extract a compact model. The source model provides geometry, materials
/// and internal interfaces; `spec` provides the complete boundary/source
/// layout (existing boundary conditions and sources on `model` are ignored).
/// Deterministic: bit-identical results at any thread count.
/// Throws std::invalid_argument on an invalid spec (no ports, non-positive
/// film coefficients or weights, duplicate names, overlapping port patches,
/// out-of-range ranks) and std::out_of_range on patches outside the grid.
RomModel build_rom(const thermal::FvModel& model, const RomSpec& spec,
                   const RomOptions& opts = {});

/// Configure a copy of the source model with concrete inputs: port patches
/// become fixed-h convection boundaries at the given sink temperatures, all
/// other faces adiabatic, and each map injects its power. This is the
/// full-order reference configuration the ROM approximates — the
/// verification ladder and benches solve it with FvModel::solve_steady.
void apply_inputs(thermal::FvModel& model, const RomSpec& spec, const RomInputs& inputs);

/// Validate `inputs` against `spec` (sizes); throws std::invalid_argument
/// naming the mismatch.
void check_inputs(const RomSpec& spec, const RomInputs& inputs);

/// Area-weighted port surface temperatures [K] of a full-order cell field —
/// the same output RomModel::steady() reports, computed from an FvModel
/// solution so ROM and full FV results are directly comparable.
numeric::Vector port_surface_temperatures(const thermal::FvModel& model, const RomSpec& spec,
                                          const numeric::Vector& cell_temperatures);

/// Heat INTO the body through each port [W] of a full-order cell field at
/// the given inputs — the FV-consistent counterpart of
/// RomSteadyResult::port_heat_flows, computed from the exact per-cell film
/// conductances of the rebased model.
numeric::Vector port_heat_flows(const thermal::FvModel& model, const RomSpec& spec,
                                const RomInputs& inputs,
                                const numeric::Vector& cell_temperatures,
                                const thermal::FvOptions& fv = {});

}  // namespace aeropack::rom
