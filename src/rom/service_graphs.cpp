#include "rom/service_graphs.hpp"

#include <map>
#include <stdexcept>
#include <string>

#include "core/scenario_service.hpp"
#include "rom/cache.hpp"
#include "rom/canonical.hpp"

namespace aeropack::rom {

namespace {

double get_or(const std::map<std::string, double>& m, const std::string& key, double fallback) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

// One steady evaluation of a canonical compact model: the RomModel comes
// from the artifact cache (built on the first scenario that needs this
// structure), the spec's loads/boundaries become the reduced system's
// input vector. Everything downstream of the lookup is const on shared
// data — safe from any number of workers at once.
std::map<std::string, double> rom_steady(CanonicalCase (*make_case)(),
                                         const core::ScenarioSpec& scenario,
                                         aeropack::ExecutionContext& ctx) {
  const CanonicalCase cc = make_case();
  RomOptions opts;
  const double rank = get_or(scenario.params, "rank", 0.0);
  if (rank > 0.0) opts.rank = static_cast<std::size_t>(rank);

  const std::shared_ptr<const RomModel> model =
      get_or_build_rom(ctx.artifact_cache(), cc.model, cc.spec, opts);

  RomInputs inputs;
  inputs.sink_temperatures.reserve(cc.spec.ports.size());
  for (const RomPort& p : cc.spec.ports)
    inputs.sink_temperatures.push_back(get_or(scenario.boundaries, p.name, 300.0));
  inputs.map_powers.reserve(cc.spec.maps.size());
  for (const RomPowerMap& m : cc.spec.maps)
    inputs.map_powers.push_back(get_or(scenario.loads, m.name, 0.0));

  const RomSteadyResult res = model->steady(inputs);
  std::map<std::string, double> out;
  for (std::size_t p = 0; p < model->port_count(); ++p) {
    out["t_" + model->port_name(p)] = res.port_temperatures[p];
    out["q_" + model->port_name(p)] = res.port_heat_flows[p];
  }
  out["error_estimate"] = model->error_estimate();
  out["rank"] = static_cast<double>(model->rank());
  return out;
}

}  // namespace

void register_rom_graphs(core::ScenarioService& service) {
  service.register_graph("rom_board_steady",
                         [](const core::ScenarioSpec& spec, aeropack::ExecutionContext& ctx) {
                           return rom_steady(&fig2_board, spec, ctx);
                         });
  service.register_graph("rom_seb_steady",
                         [](const core::ScenarioSpec& spec, aeropack::ExecutionContext& ctx) {
                           return rom_steady(&seb_box, spec, ctx);
                         });
}

}  // namespace aeropack::rom
