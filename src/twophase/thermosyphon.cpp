#include "twophase/thermosyphon.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::twophase {

using std::numbers::pi;

void ThermosyphonGeometry::validate() const {
  if (inner_diameter <= 0.0 || evaporator_length <= 0.0 || condenser_length <= 0.0)
    throw std::invalid_argument("ThermosyphonGeometry: non-positive dimension");
  if (fill_ratio <= 0.0 || fill_ratio > 1.5)
    throw std::invalid_argument("ThermosyphonGeometry: fill ratio out of range");
}

Thermosyphon::Thermosyphon(const materials::WorkingFluid& fluid, ThermosyphonGeometry geometry)
    : fluid_(&fluid), geometry_(geometry) {
  geometry_.validate();
}

double Thermosyphon::flooding_limit(double t_vapor_k, double inclination_rad) const {
  if (inclination_rad >= 0.5 * pi) return 0.0;
  const auto s = fluid_->saturation(t_vapor_k);
  constexpr double g_accel = 9.80665;
  const double area = 0.25 * pi * geometry_.inner_diameter * geometry_.inner_diameter;
  // Kutateladze number ~ 3.2 for the counter-current flooding limit.
  constexpr double kutateladze = 3.2;
  const double q_vertical =
      kutateladze * area * s.h_fg * std::sqrt(s.rho_vapor) *
      std::pow(g_accel * s.sigma * (s.rho_liquid - s.rho_vapor), 0.25);
  // Inclination derating (ESDU-style cosine factor on the gravity head).
  return q_vertical * std::pow(std::cos(inclination_rad), 0.25);
}

double Thermosyphon::thermal_resistance(double t_vapor_k, double q_w) const {
  const auto s = fluid_->saturation(t_vapor_k);
  constexpr double g_accel = 9.80665;
  const double d = geometry_.inner_diameter;
  const double q = std::max(q_w, 1.0);

  // Condenser: Nusselt falling-film condensation on the tube inner wall.
  const double area_c = pi * d * geometry_.condenser_length;
  const double flux_c = q / area_c;
  // Film dT from Nusselt theory, solved via h = C * dT^{-1/4} form:
  // h = 0.943 [rho_l (rho_l-rho_v) g h_fg k_l^3 / (mu_l L dT)]^{1/4}
  const double c_cond = 0.943 * std::pow(s.rho_liquid * (s.rho_liquid - s.rho_vapor) * g_accel *
                                             s.h_fg * std::pow(s.k_liquid, 3.0) /
                                             (s.mu_liquid * geometry_.condenser_length),
                                         0.25);
  // flux = h dT = C dT^{3/4}  =>  dT = (flux / C)^{4/3}
  const double dt_cond = std::pow(flux_c / c_cond, 4.0 / 3.0);

  // Evaporator: nucleate pool boiling, Rohsenow with Csf = 0.013.
  const double area_e = pi * d * geometry_.evaporator_length;
  const double flux_e = q / area_e;
  const double pr_l = s.mu_liquid * s.cp_liquid / s.k_liquid;
  const double lc = std::sqrt(s.sigma / (g_accel * (s.rho_liquid - s.rho_vapor)));
  constexpr double csf = 0.013;
  // flux = mu_l h_fg / Lc * (cp dT / (Csf h_fg Pr))^3  =>  solve for dT
  const double dt_boil = csf * s.h_fg * std::pow(pr_l, 1.0) / s.cp_liquid *
                         std::cbrt(flux_e * lc / (s.mu_liquid * s.h_fg));
  return (dt_cond + dt_boil) / q;
}

}  // namespace aeropack::twophase
