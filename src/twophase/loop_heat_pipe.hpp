// Loop heat pipe (LHP) model (paper refs [4,5]: Maidanik; Launay, Sartre,
// Bonjour). LHPs carry heat over long distances through small-bore vapor and
// liquid lines, pumped by a fine-pore evaporator wick; the paper's COSEE
// demonstrator uses two of them between the seat electronic box and the
// seat structure, including a 22-degree tilt sensitivity case.
//
// The model covers:
//  - the capillary pressure budget (wick, lines, gravity head from adverse
//    elevation), giving the maximum transportable power;
//  - the thermal resistance from evaporator saddle to condenser sink,
//    including a variable-conductance condenser at low power (flooded
//    condenser area);
//  - operating-point solution against a sink temperature.
#pragma once

#include <string>

#include "materials/fluids.hpp"

namespace aeropack::twophase {

struct LhpDesign {
  // Evaporator / primary wick.
  double wick_pore_radius = 1.2e-6;   ///< [m] (sintered nickel/titanium: ~1 um)
  double wick_permeability = 4e-14;   ///< [m^2]
  double wick_thickness = 5e-3;       ///< radial flow length [m]
  double wick_area = 15e-4;           ///< flow cross-section [m^2]
  double evaporator_resistance = 0.08;///< saddle + wall + evaporation [K/W]

  // Transport lines.
  double vapor_line_length = 0.8;     ///< [m]
  double vapor_line_diameter = 3e-3;  ///< [m]
  double liquid_line_length = 0.8;    ///< [m]
  double liquid_line_diameter = 2e-3; ///< [m]

  // Condenser.
  double condenser_length = 0.5;      ///< tube length bonded to the sink [m]
  double condenser_ua = 4.0;          ///< full-open condenser conductance [W/K]
  double condenser_full_power = 60.0; ///< power at which the condenser is fully open [W]
  double condenser_open_fraction_min = 0.15;  ///< flooded fraction floor at Q->0

  void validate() const;  ///< throws std::invalid_argument
};

/// Breakdown of the pressure budget at a given power.
struct LhpPressureBudget {
  double capillary_available = 0.0;  ///< 2 sigma / r_p [Pa]
  double wick = 0.0;                 ///< Darcy drop through the wick [Pa]
  double vapor_line = 0.0;
  double liquid_line = 0.0;
  double gravity = 0.0;              ///< adverse elevation head [Pa]
  double total_demand() const { return wick + vapor_line + liquid_line + gravity; }
  double margin() const { return capillary_available - total_demand(); }
};

struct LhpOperatingPoint {
  double power = 0.0;                ///< [W]
  double vapor_temperature = 0.0;    ///< [K]
  double evaporator_temperature = 0.0;  ///< saddle temperature [K]
  double resistance = 0.0;           ///< evaporator-to-sink [K/W]
  LhpPressureBudget budget;
  bool within_capillary_limit = false;
};

class LoopHeatPipe {
 public:
  LoopHeatPipe(const materials::WorkingFluid& fluid, LhpDesign design);

  /// Pressure budget at power `q_w`, vapor temperature `t_vapor_k`, and
  /// adverse elevation `elevation_m` (evaporator above condenser positive).
  LhpPressureBudget pressure_budget(double q_w, double t_vapor_k, double elevation_m) const;

  /// Maximum transportable power at the given state (bisection on the
  /// pressure budget). [W]
  double max_power(double t_vapor_k, double elevation_m) const;

  /// Evaporator-to-sink thermal resistance at power `q_w` (variable
  /// conductance condenser: partially flooded at low power). [K/W]
  double thermal_resistance(double q_w, double t_vapor_k) const;

  /// Solve the operating point for a given load and sink temperature.
  /// Throws std::runtime_error if the fluid table range is exceeded.
  LhpOperatingPoint operate(double q_w, double t_sink_k, double elevation_m) const;

  const LhpDesign& design() const { return design_; }
  const materials::WorkingFluid& fluid() const { return *fluid_; }

 private:
  const materials::WorkingFluid* fluid_;
  LhpDesign design_;
};

}  // namespace aeropack::twophase
