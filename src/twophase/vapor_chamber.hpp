// Flat-plate heat pipe ("vapor chamber") model for hot-spot spreading —
// the natural two-phase answer to the paper's 10..100 W/cm^2 local heat
// densities: the chamber behaves as a plate with a very high effective
// in-plane conductivity as long as its capillary and boiling limits hold.
#pragma once

#include "materials/fluids.hpp"
#include "materials/solid.hpp"

namespace aeropack::twophase {

struct VaporChamberGeometry {
  double length = 0.09;          ///< [m]
  double width = 0.09;           ///< [m]
  double total_thickness = 3e-3; ///< [m]
  double wall_thickness = 0.5e-3;
  double wick_thickness = 0.5e-3;

  double vapor_core_thickness() const {
    return total_thickness - 2.0 * wall_thickness - 2.0 * wick_thickness;
  }
  void validate() const;
};

class VaporChamber {
 public:
  VaporChamber(const materials::WorkingFluid& fluid, VaporChamberGeometry geometry,
               double wick_permeability = 5e-11, double wick_pore_radius = 20e-6,
               double wick_porosity = 0.45,
               materials::SolidMaterial wall = materials::copper());

  /// Effective in-plane conductivity of the chamber treated as a solid
  /// plate (vapor-space isothermality folded into an equivalent k). [W/m K]
  double effective_in_plane_conductivity(double t_vapor_k) const;

  /// Effective through-thickness conductivity (walls + wick evaporation /
  /// condensation films in series). [W/m K]
  double effective_through_conductivity(double t_vapor_k) const;

  /// Capillary-limited power for a source at the plate center (radial
  /// return flow from the rim). [W]
  double capillary_limit(double t_vapor_k) const;

  /// Evaporator-side boiling limit for a source of `source_area` [m^2]. [W]
  double boiling_limit(double t_vapor_k, double source_area) const;

  /// Spreading resistance of a centered source of `source_area` on the
  /// chamber with film coefficient `h_back` on the opposite face (Lee et
  /// al. on the equivalent solid plate). [K/W]
  double spreading_resistance(double t_vapor_k, double source_area, double h_back) const;

  /// The chamber rendered as an equivalent anisotropic material (for FV
  /// board models). Uses 330 K properties.
  materials::SolidMaterial as_equivalent_material() const;

  const VaporChamberGeometry& geometry() const { return geometry_; }

 private:
  const materials::WorkingFluid* fluid_;
  VaporChamberGeometry geometry_;
  double permeability_, pore_radius_, porosity_;
  materials::SolidMaterial wall_;
};

}  // namespace aeropack::twophase
