#include "twophase/vapor_chamber.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "thermal/forced_air.hpp"
#include "twophase/heat_pipe.hpp"

namespace aeropack::twophase {

using std::numbers::pi;

void VaporChamberGeometry::validate() const {
  if (length <= 0.0 || width <= 0.0 || total_thickness <= 0.0 || wall_thickness <= 0.0 ||
      wick_thickness <= 0.0)
    throw std::invalid_argument("VaporChamberGeometry: non-positive dimension");
  if (vapor_core_thickness() <= 0.0)
    throw std::invalid_argument("VaporChamberGeometry: walls + wicks leave no vapor core");
}

VaporChamber::VaporChamber(const materials::WorkingFluid& fluid, VaporChamberGeometry geometry,
                           double wick_permeability, double wick_pore_radius,
                           double wick_porosity, materials::SolidMaterial wall)
    : fluid_(&fluid),
      geometry_(geometry),
      permeability_(wick_permeability),
      pore_radius_(wick_pore_radius),
      porosity_(wick_porosity),
      wall_(std::move(wall)) {
  geometry_.validate();
  if (permeability_ <= 0.0 || pore_radius_ <= 0.0 || porosity_ <= 0.0 || porosity_ >= 1.0)
    throw std::invalid_argument("VaporChamber: invalid wick parameters");
}

double VaporChamber::effective_in_plane_conductivity(double t_vapor_k) const {
  const auto s = fluid_->saturation(t_vapor_k);
  // Vapor-space "conductivity" from the kinetic saturation-line argument:
  // k_vap = h_fg^2 rho_v P_v t_core^2 / (12 mu_v R T^2) per unit thickness —
  // use the standard effective form; result is huge (1e4..1e5 W/mK), so the
  // chamber behaves nearly isothermal until its limits.
  const double t_core = geometry_.vapor_core_thickness();
  const double r_gas = s.gas_constant();
  const double k_vapor = s.h_fg * s.h_fg * s.rho_vapor * s.pressure * t_core * t_core /
                         (12.0 * s.mu_vapor * r_gas * t_vapor_k * t_vapor_k);
  // Parallel with the copper walls / wick sharing the cross-section.
  const double f_wall = 2.0 * geometry_.wall_thickness / geometry_.total_thickness;
  const double f_wick = 2.0 * geometry_.wick_thickness / geometry_.total_thickness;
  const double f_core = t_core / geometry_.total_thickness;
  Wick w;
  w.permeability = permeability_;
  w.porosity = porosity_;
  w.effective_pore_radius = pore_radius_;
  const double k_wick = w.effective_conductivity(s.k_liquid, wall_.conductivity);
  return f_wall * wall_.conductivity + f_wick * k_wick + f_core * std::min(k_vapor, 2e5);
}

double VaporChamber::effective_through_conductivity(double t_vapor_k) const {
  const auto s = fluid_->saturation(t_vapor_k);
  Wick w;
  w.permeability = permeability_;
  w.porosity = porosity_;
  w.effective_pore_radius = pore_radius_;
  const double k_wick = w.effective_conductivity(s.k_liquid, wall_.conductivity);
  // Series: wall + wick + (isothermal core) + wick + wall.
  const double r_per_area = 2.0 * geometry_.wall_thickness / wall_.conductivity +
                            2.0 * geometry_.wick_thickness / k_wick;
  return geometry_.total_thickness / r_per_area;
}

double VaporChamber::capillary_limit(double t_vapor_k) const {
  const auto s = fluid_->saturation(t_vapor_k);
  // Radial Darcy return flow from rim (R2) to center (R1 ~ source radius):
  // dP = mu Q ln(R2/R1) / (2 pi rho h_fg K t_wick). Use R1 = R2/10.
  const double r2 = 0.5 * std::min(geometry_.length, geometry_.width);
  const double r1 = r2 / 10.0;
  const double dp_cap = 2.0 * s.sigma / pore_radius_;
  return dp_cap * 2.0 * pi * s.rho_liquid * s.h_fg * permeability_ *
         geometry_.wick_thickness / (s.mu_liquid * std::log(r2 / r1));
}

double VaporChamber::boiling_limit(double t_vapor_k, double source_area) const {
  if (source_area <= 0.0) throw std::invalid_argument("boiling_limit: source area");
  const auto s = fluid_->saturation(t_vapor_k);
  // Critical evaporator flux ~ conduction across the wick at the superheat
  // that nucleates (2 sigma / r_n budget), same form as the tube pipe.
  Wick w;
  w.permeability = permeability_;
  w.porosity = porosity_;
  w.effective_pore_radius = pore_radius_;
  const double k_eff = w.effective_conductivity(s.k_liquid, wall_.conductivity);
  constexpr double r_nucleation = 2.54e-7;
  const double dp_nucleate = 2.0 * s.sigma / r_nucleation - 2.0 * s.sigma / pore_radius_;
  const double superheat =
      dp_nucleate * t_vapor_k / (s.h_fg * s.rho_vapor);  // Clausius-Clapeyron
  const double flux_crit = k_eff * superheat / geometry_.wick_thickness;
  return flux_crit * source_area;
}

double VaporChamber::spreading_resistance(double t_vapor_k, double source_area,
                                          double h_back) const {
  const double k_eff = effective_in_plane_conductivity(t_vapor_k);
  return thermal::spreading_resistance(source_area, geometry_.length * geometry_.width,
                                       geometry_.total_thickness, k_eff, h_back);
}

materials::SolidMaterial VaporChamber::as_equivalent_material() const {
  materials::SolidMaterial m = wall_;
  m.name = "vapor chamber (equivalent)";
  m.conductivity = effective_in_plane_conductivity(330.0);
  m.conductivity_through = effective_through_conductivity(330.0);
  m.density = 3000.0;  // shell + fluid average
  m.specific_heat = 600.0;
  return m;
}

}  // namespace aeropack::twophase
