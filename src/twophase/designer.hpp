// Heat-pipe sizing assistant: given a transport requirement (power, length,
// operating temperature, worst-case adverse tilt), search the catalogue of
// wick structures and diameters for the lightest pipe that carries the load
// with margin — the kind of design iteration the paper's packaging group
// does when laying out a drain ("the board can be fitted with a thermal
// drain - heat pipes").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "twophase/heat_pipe.hpp"

namespace aeropack::twophase {

struct TransportRequirement {
  double power = 30.0;               ///< [W]
  double transport_length = 0.15;    ///< adiabatic length [m]
  double evaporator_length = 0.05;   ///< [m]
  double condenser_length = 0.06;    ///< [m]
  double t_vapor = 330.0;            ///< operating vapor temperature [K]
  double adverse_tilt_rad = 0.0;     ///< worst orientation
  double margin = 1.5;               ///< required capacity / load
  double max_resistance = 0.5;       ///< end-to-end budget [K/W]

  void validate() const;  ///< throws std::invalid_argument
};

struct DesignCandidate {
  HeatPipeGeometry geometry;
  Wick wick;
  std::string fluid;
  double capacity = 0.0;      ///< governing limit at the requirement state [W]
  double resistance = 0.0;    ///< [K/W]
  double mass = 0.0;          ///< shell + wick estimate [kg]
  std::string governing_limit;
};

/// All catalogue candidates that satisfy the requirement, lightest first.
std::vector<DesignCandidate> enumerate_designs(const TransportRequirement& req);

/// The lightest satisfying candidate, or nullopt if nothing in the
/// catalogue works (the caller should escalate to an LHP — the paper's
/// "heat transferred over large distance" regime).
std::optional<DesignCandidate> design_heat_pipe(const TransportRequirement& req);

}  // namespace aeropack::twophase
