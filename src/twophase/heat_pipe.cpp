#include "twophase/heat_pipe.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::twophase {

using std::numbers::pi;

double Wick::effective_conductivity(double k_liquid, double k_solid) const {
  if (k_liquid <= 0.0 || k_solid <= 0.0)
    throw std::invalid_argument("Wick::effective_conductivity: conductivities must be > 0");
  const double e = porosity;
  // Maxwell's relation for a liquid-filled sintered matrix (Chi's form).
  return k_liquid * ((2.0 * k_liquid + k_solid - 2.0 * e * (k_liquid - k_solid)) /
                     (2.0 * k_liquid + k_solid + e * (k_liquid - k_solid)));
}

Wick Wick::sintered_powder() {
  Wick w;
  w.kind = "sintered copper powder";
  w.permeability = 5e-11;
  w.porosity = 0.45;
  w.effective_pore_radius = 20e-6;
  return w;
}

Wick Wick::screen_mesh() {
  Wick w;
  w.kind = "100-mesh screen";
  w.permeability = 1.5e-10;
  w.porosity = 0.65;
  w.effective_pore_radius = 70e-6;
  return w;
}

Wick Wick::axial_grooves() {
  Wick w;
  w.kind = "axial grooves";
  w.permeability = 1e-9;
  w.porosity = 0.7;
  w.effective_pore_radius = 200e-6;
  return w;
}

double HeatPipeGeometry::vapor_area() const {
  const double rv = vapor_radius();
  return pi * rv * rv;
}

double HeatPipeGeometry::wick_area() const {
  const double ri = inner_radius();
  const double rv = vapor_radius();
  return pi * (ri * ri - rv * rv);
}

void HeatPipeGeometry::validate() const {
  if (outer_diameter <= 0.0 || wall_thickness <= 0.0 || wick_thickness <= 0.0 ||
      evaporator_length <= 0.0 || adiabatic_length < 0.0 || condenser_length <= 0.0)
    throw std::invalid_argument("HeatPipeGeometry: non-positive dimension");
  if (vapor_radius() <= 0.0)
    throw std::invalid_argument("HeatPipeGeometry: wall + wick leave no vapor core");
}

HeatPipe::HeatPipe(const materials::WorkingFluid& fluid, HeatPipeGeometry geometry, Wick wick,
                   materials::SolidMaterial wall)
    : fluid_(&fluid), geometry_(std::move(geometry)), wick_(std::move(wick)),
      wall_(std::move(wall)) {
  geometry_.validate();
  if (wick_.permeability <= 0.0 || wick_.effective_pore_radius <= 0.0 || wick_.porosity <= 0.0 ||
      wick_.porosity >= 1.0)
    throw std::invalid_argument("HeatPipe: invalid wick");
}

HeatPipeLimits HeatPipe::limits(double t_vapor_k, double tilt_rad) const {
  const auto s = fluid_->saturation(t_vapor_k);
  const auto& g = geometry_;
  constexpr double g_accel = 9.80665;

  HeatPipeLimits lim;

  // --- Capillary limit: 2 sigma / r_eff >= dP_l + dP_v + dP_g ---
  const double dp_cap_max = 2.0 * s.sigma / wick_.effective_pore_radius;
  const double dp_gravity = s.rho_liquid * g_accel * g.total_length() * std::sin(tilt_rad);
  // Liquid friction per watt (Darcy flow through the wick annulus).
  const double f_l = s.mu_liquid * g.effective_length() /
                     (s.rho_liquid * s.h_fg * wick_.permeability * g.wick_area());
  // Vapor friction per watt (Hagen-Poiseuille in the vapor core).
  const double rv = g.vapor_radius();
  const double f_v =
      8.0 * s.mu_vapor * g.effective_length() / (s.rho_vapor * s.h_fg * pi * rv * rv * rv * rv);
  const double dp_avail = dp_cap_max - dp_gravity;
  lim.capillary = (dp_avail > 0.0) ? dp_avail / (f_l + f_v) : 0.0;

  // --- Sonic limit (Busse) ---
  lim.sonic = g.vapor_area() * s.rho_vapor * s.h_fg *
              std::sqrt(s.gamma * s.gas_constant() * t_vapor_k / (2.0 * (s.gamma + 1.0)));

  // --- Entrainment limit (Weber criterion on the wick surface) ---
  lim.entrainment =
      g.vapor_area() * s.h_fg * std::sqrt(s.sigma * s.rho_vapor /
                                          (2.0 * wick_.effective_pore_radius));

  // --- Boiling limit (nucleation in the evaporator wick) ---
  const double k_eff = wick_.effective_conductivity(s.k_liquid, wall_.conductivity);
  constexpr double r_nucleation = 2.54e-7;  // [m] standard assumption
  const double ri = g.inner_radius();
  const double dp_cap_operating = dp_cap_max;  // conservative
  lim.boiling = (2.0 * pi * g.evaporator_length * k_eff * t_vapor_k) /
                (s.h_fg * s.rho_vapor * std::log(ri / rv)) *
                (2.0 * s.sigma / r_nucleation - dp_cap_operating);
  lim.boiling = std::max(lim.boiling, 0.0);

  // --- Viscous (vapor-pressure) limit ---
  lim.viscous = g.vapor_area() * rv * rv * s.h_fg * s.rho_vapor * s.pressure /
                (16.0 * s.mu_vapor * g.effective_length());

  const struct {
    const char* name;
    double value;
  } entries[] = {{"capillary", lim.capillary},
                 {"sonic", lim.sonic},
                 {"entrainment", lim.entrainment},
                 {"boiling", lim.boiling},
                 {"viscous", lim.viscous}};
  lim.governing = entries[0].value;
  lim.governing_name = entries[0].name;
  for (const auto& e : entries)
    if (e.value < lim.governing) {
      lim.governing = e.value;
      lim.governing_name = e.name;
    }
  return lim;
}

double HeatPipe::max_power(double t_vapor_k, double tilt_rad) const {
  return limits(t_vapor_k, tilt_rad).governing;
}

double HeatPipe::thermal_resistance(double t_vapor_k) const {
  const auto s = fluid_->saturation(t_vapor_k);
  const auto& g = geometry_;
  const double ro = 0.5 * g.outer_diameter;
  const double ri = g.inner_radius();
  const double rv = g.vapor_radius();
  const double k_eff = wick_.effective_conductivity(s.k_liquid, wall_.conductivity);

  const double r_wall_e = std::log(ro / ri) / (2.0 * pi * g.evaporator_length * wall_.conductivity);
  const double r_wick_e = std::log(ri / rv) / (2.0 * pi * g.evaporator_length * k_eff);
  const double r_wall_c = std::log(ro / ri) / (2.0 * pi * g.condenser_length * wall_.conductivity);
  const double r_wick_c = std::log(ri / rv) / (2.0 * pi * g.condenser_length * k_eff);
  return r_wall_e + r_wick_e + r_wick_c + r_wall_c;
}

}  // namespace aeropack::twophase
