#include "twophase/loop_heat_pipe.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/rootfind.hpp"

namespace aeropack::twophase {

using std::numbers::pi;

void LhpDesign::validate() const {
  if (wick_pore_radius <= 0.0 || wick_permeability <= 0.0 || wick_thickness <= 0.0 ||
      wick_area <= 0.0 || evaporator_resistance <= 0.0 || vapor_line_length <= 0.0 ||
      vapor_line_diameter <= 0.0 || liquid_line_length <= 0.0 || liquid_line_diameter <= 0.0 ||
      condenser_length <= 0.0 || condenser_ua <= 0.0 || condenser_full_power <= 0.0)
    throw std::invalid_argument("LhpDesign: non-positive parameter");
  if (condenser_open_fraction_min <= 0.0 || condenser_open_fraction_min > 1.0)
    throw std::invalid_argument("LhpDesign: open fraction floor must be in (0, 1]");
}

LoopHeatPipe::LoopHeatPipe(const materials::WorkingFluid& fluid, LhpDesign design)
    : fluid_(&fluid), design_(design) {
  design_.validate();
}

namespace {
/// Laminar/turbulent pressure drop of mass flow mdot in a tube.
double tube_pressure_drop(double mdot, double length, double diameter, double rho, double mu) {
  if (mdot <= 0.0) return 0.0;
  const double area = 0.25 * pi * diameter * diameter;
  const double velocity = mdot / (rho * area);
  const double re = rho * velocity * diameter / mu;
  double f;  // Darcy friction factor
  if (re < 2300.0)
    f = 64.0 / re;
  else
    f = 0.3164 / std::pow(re, 0.25);  // Blasius
  return f * (length / diameter) * 0.5 * rho * velocity * velocity;
}
}  // namespace

LhpPressureBudget LoopHeatPipe::pressure_budget(double q_w, double t_vapor_k,
                                                double elevation_m) const {
  if (q_w < 0.0) throw std::invalid_argument("pressure_budget: negative power");
  const auto s = fluid_->saturation(t_vapor_k);
  constexpr double g_accel = 9.80665;
  const double mdot = q_w / s.h_fg;

  LhpPressureBudget b;
  b.capillary_available = 2.0 * s.sigma / design_.wick_pore_radius;
  // Darcy flow of liquid through the primary wick.
  b.wick = s.mu_liquid * design_.wick_thickness * mdot /
           (s.rho_liquid * design_.wick_permeability * design_.wick_area);
  b.vapor_line = tube_pressure_drop(mdot, design_.vapor_line_length,
                                    design_.vapor_line_diameter, s.rho_vapor, s.mu_vapor);
  b.liquid_line = tube_pressure_drop(mdot, design_.liquid_line_length,
                                     design_.liquid_line_diameter, s.rho_liquid, s.mu_liquid);
  b.gravity = std::max(elevation_m, 0.0) * s.rho_liquid * g_accel;
  return b;
}

double LoopHeatPipe::max_power(double t_vapor_k, double elevation_m) const {
  const auto margin = [&](double q) {
    return pressure_budget(q, t_vapor_k, elevation_m).margin();
  };
  if (margin(0.0) <= 0.0) return 0.0;  // gravity head alone exceeds the pump
  double hi = 10.0;
  while (margin(hi) > 0.0) {
    hi *= 2.0;
    if (hi > 1e6) return 1e6;  // effectively unlimited for this design
  }
  return numeric::brent(margin, 0.0, hi, {.tolerance = 1e-6, .max_iterations = 200});
}

double LoopHeatPipe::thermal_resistance(double q_w, double t_vapor_k) const {
  (void)t_vapor_k;
  // Variable-conductance condenser: at low power, part of the condenser is
  // flooded with subcooled liquid, shrinking the effective two-phase area.
  // Model the open fraction as proportional to power up to the design point
  // where the full condenser is active.
  const double frac = std::clamp(q_w / design_.condenser_full_power,
                                 design_.condenser_open_fraction_min, 1.0);
  const double r_cond = 1.0 / (design_.condenser_ua * frac);
  return design_.evaporator_resistance + r_cond;
}

LhpOperatingPoint LoopHeatPipe::operate(double q_w, double t_sink_k, double elevation_m) const {
  if (q_w < 0.0) throw std::invalid_argument("operate: negative power");
  LhpOperatingPoint pt;
  pt.power = q_w;
  pt.resistance = thermal_resistance(q_w, t_sink_k);
  const double frac = std::clamp(q_w / design_.condenser_full_power,
                                 design_.condenser_open_fraction_min, 1.0);
  pt.vapor_temperature = t_sink_k + q_w / (design_.condenser_ua * frac);
  pt.evaporator_temperature = t_sink_k + q_w * pt.resistance;
  // Clamp the budget evaluation into the fluid table to keep sweeps robust;
  // the capillary margin is then evaluated at the nearest tabulated state.
  const double t_eval =
      std::clamp(pt.vapor_temperature, fluid_->t_min() + 1e-9, fluid_->t_max() - 1e-9);
  pt.budget = pressure_budget(q_w, t_eval, elevation_m);
  pt.within_capillary_limit = pt.budget.margin() > 0.0;
  return pt;
}

}  // namespace aeropack::twophase
