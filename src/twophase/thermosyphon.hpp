// Closed two-phase thermosyphon: gravity-driven counterpart to the heat pipe
// (no wick — the condensate falls back to the evaporator). Mentioned in the
// paper alongside HP and LHP as a candidate passive technology. Works only
// with the condenser above the evaporator; its flooding (counter-current
// flow) limit follows the Kutateladze criterion.
#pragma once

#include "materials/fluids.hpp"

namespace aeropack::twophase {

struct ThermosyphonGeometry {
  double inner_diameter = 8e-3;     ///< [m]
  double evaporator_length = 0.1;   ///< [m]
  double condenser_length = 0.15;   ///< [m]
  double fill_ratio = 0.5;          ///< liquid fill / evaporator volume

  void validate() const;
};

class Thermosyphon {
 public:
  Thermosyphon(const materials::WorkingFluid& fluid, ThermosyphonGeometry geometry);

  /// Counter-current flooding limit (Kutateladze, ESDU correlation form) at
  /// the given vapor temperature and inclination from vertical
  /// (0 = vertical, condenser up). Returns 0 for inclinations >= 90 deg
  /// (evaporator no longer below the condenser). [W]
  double flooding_limit(double t_vapor_k, double inclination_rad = 0.0) const;

  /// Film-wise boiling + condensation resistance estimate (Nusselt falling
  /// film in the condenser, Rohsenow-style pool boiling in the evaporator,
  /// linearized at the given flux). [K/W]
  double thermal_resistance(double t_vapor_k, double q_w) const;

 private:
  const materials::WorkingFluid* fluid_;
  ThermosyphonGeometry geometry_;
};

}  // namespace aeropack::twophase
