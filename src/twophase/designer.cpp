#include "twophase/designer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "materials/solid.hpp"

namespace aeropack::twophase {

void TransportRequirement::validate() const {
  if (power <= 0.0 || transport_length <= 0.0 || evaporator_length <= 0.0 ||
      condenser_length <= 0.0 || margin < 1.0 || max_resistance <= 0.0)
    throw std::invalid_argument("TransportRequirement: invalid values");
}

namespace {

double shell_mass(const HeatPipeGeometry& g, const Wick& w,
                  const materials::SolidMaterial& wall, double rho_fluid) {
  const double ro = 0.5 * g.outer_diameter;
  const double ri = g.inner_radius();
  const double rv = g.vapor_radius();
  const double l = g.total_length();
  const double pi = std::numbers::pi;
  const double v_wall = pi * (ro * ro - ri * ri) * l;
  const double v_wick = pi * (ri * ri - rv * rv) * l;
  // Wick: solid fraction of wall metal + porosity filled with liquid.
  return wall.density * (v_wall + (1.0 - w.porosity) * v_wick) +
         rho_fluid * w.porosity * v_wick;
}

}  // namespace

std::vector<DesignCandidate> enumerate_designs(const TransportRequirement& req) {
  req.validate();
  std::vector<DesignCandidate> winners;

  struct FluidOption {
    const materials::WorkingFluid* fluid;
    materials::SolidMaterial wall;
  };
  // Copper/water for cabin-range temperatures; aluminum/ammonia for cold
  // plates (compatibility rules of the trade).
  std::vector<FluidOption> fluids;
  if (req.t_vapor >= materials::water().t_min() && req.t_vapor <= materials::water().t_max())
    fluids.push_back({&materials::water(), materials::copper()});
  if (req.t_vapor >= materials::ammonia().t_min() &&
      req.t_vapor <= materials::ammonia().t_max())
    fluids.push_back({&materials::ammonia(), materials::aluminum_6061()});
  if (req.t_vapor >= materials::methanol().t_min() &&
      req.t_vapor <= materials::methanol().t_max())
    fluids.push_back({&materials::methanol(), materials::copper()});

  for (const auto& fo : fluids) {
    for (const Wick& wick :
         {Wick::sintered_powder(), Wick::screen_mesh(), Wick::axial_grooves()}) {
      for (double od : {3e-3, 4e-3, 6e-3, 8e-3, 10e-3, 12e-3}) {
        HeatPipeGeometry g;
        g.outer_diameter = od;
        g.wall_thickness = std::max(0.3e-3, od / 12.0);
        g.wick_thickness = std::max(0.5e-3, od / 8.0);
        g.evaporator_length = req.evaporator_length;
        g.adiabatic_length = req.transport_length;
        g.condenser_length = req.condenser_length;
        if (g.vapor_radius() <= 0.2e-3) continue;

        const HeatPipe pipe(*fo.fluid, g, wick, fo.wall);
        const auto lim = pipe.limits(req.t_vapor, req.adverse_tilt_rad);
        const double resistance = pipe.thermal_resistance(req.t_vapor);
        if (lim.governing < req.margin * req.power) continue;
        if (resistance > req.max_resistance) continue;

        DesignCandidate c;
        c.geometry = g;
        c.wick = wick;
        c.fluid = fo.fluid->name();
        c.capacity = lim.governing;
        c.resistance = resistance;
        c.governing_limit = lim.governing_name;
        c.mass = shell_mass(g, wick, fo.wall,
                            fo.fluid->saturation(req.t_vapor).rho_liquid);
        winners.push_back(std::move(c));
      }
    }
  }
  std::sort(winners.begin(), winners.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) { return a.mass < b.mass; });
  return winners;
}

std::optional<DesignCandidate> design_heat_pipe(const TransportRequirement& req) {
  auto all = enumerate_designs(req);
  if (all.empty()) return std::nullopt;
  return all.front();
}

}  // namespace aeropack::twophase
