// Conventional heat-pipe design model (paper ref [3], Peterson).
//
// Computes the classical operating limits — capillary, sonic, entrainment,
// boiling, viscous — and the conduction-path thermal resistance of a
// cylindrical wicked heat pipe. Used by the COSEE SEB model to carry heat
// from the dissipating components to the box edge.
#pragma once

#include <string>

#include "materials/fluids.hpp"
#include "materials/solid.hpp"

namespace aeropack::twophase {

/// Capillary wick structure parameters.
struct Wick {
  std::string kind;
  double permeability = 0.0;          ///< Darcy permeability K [m^2]
  double porosity = 0.0;              ///< [-]
  double effective_pore_radius = 0.0; ///< r_eff for capillary pressure [m]

  /// Effective conductivity of the liquid-saturated wick against a solid
  /// matrix of conductivity k_solid (Maxwell lower-bound form for sintered
  /// structures). [W/m K]
  double effective_conductivity(double k_liquid, double k_solid) const;

  static Wick sintered_powder();   ///< fine copper powder
  static Wick screen_mesh();       ///< 2-layer 100-mesh screen
  static Wick axial_grooves();     ///< aluminum extruded grooves
};

/// Cylindrical heat-pipe geometry. Lengths along the pipe axis.
struct HeatPipeGeometry {
  double outer_diameter = 6e-3;    ///< [m]
  double wall_thickness = 0.5e-3;  ///< [m]
  double wick_thickness = 0.75e-3; ///< [m]
  double evaporator_length = 40e-3;
  double adiabatic_length = 100e-3;
  double condenser_length = 60e-3;

  double inner_radius() const { return 0.5 * outer_diameter - wall_thickness; }
  double vapor_radius() const { return inner_radius() - wick_thickness; }
  double vapor_area() const;
  double wick_area() const;
  double total_length() const {
    return evaporator_length + adiabatic_length + condenser_length;
  }
  /// Effective length for pressure-drop integrals: La + (Le + Lc)/2.
  double effective_length() const {
    return adiabatic_length + 0.5 * (evaporator_length + condenser_length);
  }
  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// All limits evaluated at one operating temperature / tilt.
struct HeatPipeLimits {
  double capillary = 0.0;    ///< [W]
  double sonic = 0.0;
  double entrainment = 0.0;
  double boiling = 0.0;
  double viscous = 0.0;
  double governing = 0.0;    ///< min of the above
  std::string governing_name;
};

class HeatPipe {
 public:
  HeatPipe(const materials::WorkingFluid& fluid, HeatPipeGeometry geometry, Wick wick,
           materials::SolidMaterial wall);

  /// Operating limits at vapor temperature `t_vapor_k` with the evaporator
  /// elevated `tilt_rad` above the condenser (adverse tilt positive; a
  /// gravity-aided pipe passes a negative angle).
  HeatPipeLimits limits(double t_vapor_k, double tilt_rad = 0.0) const;

  /// Maximum transportable power = governing limit. [W]
  double max_power(double t_vapor_k, double tilt_rad = 0.0) const;

  /// End-to-end thermal resistance (evaporator wall + wick, condenser wick +
  /// wall; vapor path treated isothermal). [K/W]
  double thermal_resistance(double t_vapor_k) const;

  const HeatPipeGeometry& geometry() const { return geometry_; }
  const Wick& wick() const { return wick_; }
  const materials::WorkingFluid& fluid() const { return *fluid_; }

 private:
  const materials::WorkingFluid* fluid_;
  HeatPipeGeometry geometry_;
  Wick wick_;
  materials::SolidMaterial wall_;
};

}  // namespace aeropack::twophase
