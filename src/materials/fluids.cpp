#include "materials/fluids.hpp"

#include <stdexcept>

namespace aeropack::materials {

using numeric::Vector;

WorkingFluid::WorkingFluid(std::string name, double molar_mass_kg_per_mol, double gamma,
                           double t_min_k, double t_max_k, Vector t_kelvin, Vector p_sat_pa,
                           Vector rho_l, Vector rho_v, Vector h_fg, Vector mu_l, Vector mu_v,
                           Vector sigma, Vector k_l, Vector cp_l)
    : name_(std::move(name)),
      molar_mass_(molar_mass_kg_per_mol),
      gamma_(gamma),
      t_min_(t_min_k),
      t_max_(t_max_k),
      p_sat_(t_kelvin, p_sat_pa),
      rho_l_(t_kelvin, rho_l),
      rho_v_(t_kelvin, rho_v),
      h_fg_(t_kelvin, h_fg),
      mu_l_(t_kelvin, mu_l),
      mu_v_(t_kelvin, mu_v),
      sigma_(t_kelvin, sigma),
      k_l_(t_kelvin, k_l),
      cp_l_(t_kelvin, cp_l),
      t_of_p_(p_sat_pa, t_kelvin) {}

SaturationState WorkingFluid::saturation(double t) const {
  if (t < t_min_ || t > t_max_)
    throw std::out_of_range(name_ + ": temperature outside saturation table (" +
                            std::to_string(t) + " K)");
  SaturationState s;
  s.temperature = t;
  s.pressure = p_sat_(t);
  s.rho_liquid = rho_l_(t);
  s.rho_vapor = rho_v_(t);
  s.h_fg = h_fg_(t);
  s.mu_liquid = mu_l_(t);
  s.mu_vapor = mu_v_(t);
  s.sigma = sigma_(t);
  s.k_liquid = k_l_(t);
  s.cp_liquid = cp_l_(t);
  s.molar_mass = molar_mass_;
  s.gamma = gamma_;
  return s;
}

double WorkingFluid::saturation_temperature(double pressure_pa) const {
  if (pressure_pa <= 0.0)
    throw std::invalid_argument(name_ + ": pressure must be positive");
  return t_of_p_(pressure_pa);
}

namespace {
constexpr double kC0 = 273.15;
Vector celsius(std::initializer_list<double> c) {
  Vector v;
  for (double x : c) v.push_back(x + kC0);
  return v;
}
Vector kilo(std::initializer_list<double> k) {
  Vector v;
  for (double x : k) v.push_back(x * 1e3);
  return v;
}
Vector micro(std::initializer_list<double> u) {
  Vector v;
  for (double x : u) v.push_back(x * 1e-6);
  return v;
}
Vector milli(std::initializer_list<double> m) {
  Vector v;
  for (double x : m) v.push_back(x * 1e-3);
  return v;
}
Vector plain(std::initializer_list<double> p) { return Vector(p); }
}  // namespace

const WorkingFluid& water() {
  static const WorkingFluid fluid(
      "water", 18.015e-3, 1.33, 20.0 + kC0, 150.0 + kC0,
      celsius({20, 40, 60, 80, 100, 120, 150}),
      kilo({2.34, 7.38, 19.9, 47.4, 101.3, 198.5, 476.0}),       // Psat [kPa -> Pa]
      plain({998, 992, 983, 972, 958, 943, 917}),                 // rho_l
      plain({0.0173, 0.0512, 0.130, 0.293, 0.598, 1.122, 2.55}),  // rho_v
      kilo({2454, 2407, 2359, 2309, 2257, 2203, 2114}),           // h_fg [kJ/kg -> J/kg]
      micro({1002, 653, 467, 355, 282, 232, 182}),                // mu_l [uPa s -> Pa s]
      micro({9.7, 10.3, 10.9, 11.6, 12.3, 13.0, 14.2}),           // mu_v
      milli({72.7, 69.6, 66.2, 62.7, 58.9, 54.9, 48.7}),          // sigma [mN/m -> N/m]
      plain({0.598, 0.631, 0.654, 0.670, 0.681, 0.684, 0.684}),   // k_l
      plain({4182, 4179, 4185, 4197, 4216, 4245, 4310}));         // cp_l
  return fluid;
}

const WorkingFluid& ammonia() {
  static const WorkingFluid fluid(
      "ammonia", 17.031e-3, 1.31, -40.0 + kC0, 60.0 + kC0,
      celsius({-40, -20, 0, 20, 40, 60}),
      kilo({71.7, 190.2, 429.4, 857.5, 1555.0, 2614.0}),
      plain({690, 665, 639, 610, 579, 545}),
      plain({0.644, 1.604, 3.457, 6.703, 12.03, 20.34}),
      kilo({1390, 1329, 1262, 1186, 1099, 997}),
      micro({281, 236, 190, 152, 122, 98}),
      micro({7.9, 8.5, 9.2, 9.9, 10.7, 11.6}),
      milli({35.4, 31.6, 26.8, 21.9, 17.1, 12.3}),
      plain({0.64, 0.59, 0.54, 0.50, 0.45, 0.40}),
      plain({4450, 4520, 4600, 4740, 4930, 5200}));
  return fluid;
}

const WorkingFluid& acetone() {
  static const WorkingFluid fluid(
      "acetone", 58.08e-3, 1.12, 0.0 + kC0, 100.0 + kC0,
      celsius({0, 20, 40, 60, 80, 100}),
      kilo({9.3, 24.6, 56.3, 115.4, 215.7, 374.0}),
      plain({812, 790, 768, 745, 719, 693}),
      plain({0.26, 0.64, 1.41, 2.79, 5.10, 8.70}),
      kilo({564, 545, 524, 502, 477, 449}),
      micro({395, 322, 269, 226, 192, 165}),
      micro({6.8, 7.3, 7.9, 8.5, 9.1, 9.7}),
      milli({26.2, 23.7, 21.2, 18.6, 16.2, 13.8}),
      plain({0.171, 0.161, 0.152, 0.142, 0.132, 0.122}),
      plain({2120, 2180, 2240, 2310, 2390, 2480}));
  return fluid;
}

const WorkingFluid& methanol() {
  static const WorkingFluid fluid(
      "methanol", 32.042e-3, 1.20, 0.0 + kC0, 100.0 + kC0,
      celsius({0, 20, 40, 60, 80, 100}),
      kilo({4.0, 12.9, 35.4, 84.4, 180.5, 351.0}),
      plain({810, 792, 774, 756, 736, 714}),
      plain({0.057, 0.169, 0.43, 0.975, 1.98, 3.62}),
      kilo({1200, 1170, 1135, 1095, 1050, 1000}),
      micro({810, 585, 450, 350, 280, 230}),
      micro({8.8, 9.4, 10.1, 10.8, 11.5, 12.3}),
      milli({24.5, 22.6, 20.9, 19.0, 17.2, 15.4}),
      plain({0.210, 0.204, 0.198, 0.192, 0.186, 0.180}),
      plain({2430, 2530, 2650, 2790, 2950, 3130}));
  return fluid;
}

const WorkingFluid& ethanol() {
  static const WorkingFluid fluid(
      "ethanol", 46.069e-3, 1.13, 0.0 + kC0, 100.0 + kC0,
      celsius({0, 20, 40, 60, 80, 100}),
      kilo({1.6, 5.9, 18.0, 47.0, 108.3, 225.8}),
      plain({806, 789, 772, 754, 735, 716}),
      plain({0.033, 0.114, 0.35, 0.88, 1.94, 3.85}),
      kilo({960, 930, 900, 865, 825, 780}),
      micro({1770, 1200, 834, 592, 435, 330}),
      micro({8.0, 8.6, 9.2, 9.9, 10.6, 11.3}),
      milli({24.3, 22.3, 20.2, 18.2, 16.2, 14.2}),
      plain({0.174, 0.170, 0.166, 0.161, 0.156, 0.151}),
      plain({2270, 2440, 2650, 2900, 3190, 3520}));
  return fluid;
}

std::vector<const WorkingFluid*> all_working_fluids() {
  return {&water(), &ammonia(), &acetone(), &methanol(), &ethanol()};
}

}  // namespace aeropack::materials
