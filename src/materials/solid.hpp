// Solid material catalogue for avionics packaging: structural alloys, PCB
// laminates, die/substrate ceramics and the carbon-composite seat structure
// discussed in the paper's COSEE section.
//
// Values are room-temperature engineering data from standard handbooks; the
// toolkit treats them as constants over the avionics range (-55..125 C),
// which is the approximation the paper's design levels 1-2 use as well.
#pragma once

#include <string>

namespace aeropack::materials {

/// Isotropic (or transversely isotropic, for laminates) solid properties.
struct SolidMaterial {
  std::string name;
  double density = 0.0;              ///< [kg/m^3]
  double conductivity = 0.0;         ///< in-plane thermal conductivity [W/m K]
  double conductivity_through = 0.0; ///< through-thickness [W/m K] (== conductivity if isotropic)
  double specific_heat = 0.0;        ///< [J/kg K]
  double youngs_modulus = 0.0;       ///< [Pa]
  double poisson_ratio = 0.0;        ///< [-]
  double cte = 0.0;                  ///< coefficient of thermal expansion [1/K]
  double yield_strength = 0.0;       ///< [Pa] (0.2% offset or laminate allowable)
  double fatigue_exponent = 0.0;     ///< Basquin exponent b in S = S_f (2N)^-b
  double emissivity = 0.0;           ///< surface emissivity as typically finished

  bool isotropic() const { return conductivity == conductivity_through; }
  /// Thermal diffusivity alpha = k / (rho cp), in-plane. [m^2/s]
  double diffusivity() const { return conductivity / (density * specific_heat); }
};

// Structural / thermal metals.
SolidMaterial aluminum_6061();
SolidMaterial aluminum_7075();
SolidMaterial copper();
SolidMaterial steel_304();
SolidMaterial titanium_6al4v();
SolidMaterial kovar();

// Electronics stack.
SolidMaterial fr4();          ///< bare laminate (no copper), transversely isotropic
SolidMaterial silicon();
SolidMaterial alumina_96();
SolidMaterial solder_sac305();

// COSEE seat structure option (paper: "rather poor thermal conductivity").
SolidMaterial carbon_composite();

/// Effective in-plane / through-thickness conductivity of a PCB built from
/// FR4 with `copper_layers` copper planes of `copper_layer_thickness` each in
/// a board of total thickness `board_thickness` (parallel/series mixing rule;
/// this is the "copper layers" optimization lever of the paper's Level-2
/// design stage).
struct PcbStackup {
  double board_thickness = 1.6e-3;         ///< [m]
  int copper_layers = 4;
  double copper_layer_thickness = 35e-6;   ///< [m] (35 um = 1 oz)
  double copper_coverage = 0.7;            ///< fraction of each plane actually copper

  /// Copper volume fraction of the board.
  double copper_fraction() const;
  /// In-plane (parallel) effective conductivity. [W/m K]
  double conductivity_in_plane() const;
  /// Through-thickness (series) effective conductivity. [W/m K]
  double conductivity_through() const;
  /// Effective density and specific heat (mass-weighted). [kg/m^3], [J/kg K]
  double density() const;
  double specific_heat() const;
  /// The stackup rendered as a transversely isotropic SolidMaterial.
  SolidMaterial as_material() const;
};

}  // namespace aeropack::materials
