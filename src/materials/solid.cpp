#include "materials/solid.hpp"

#include <stdexcept>

namespace aeropack::materials {

namespace {
SolidMaterial iso(std::string name, double rho, double k, double cp, double e, double nu,
                  double cte, double yield, double b, double eps) {
  SolidMaterial m;
  m.name = std::move(name);
  m.density = rho;
  m.conductivity = k;
  m.conductivity_through = k;
  m.specific_heat = cp;
  m.youngs_modulus = e;
  m.poisson_ratio = nu;
  m.cte = cte;
  m.yield_strength = yield;
  m.fatigue_exponent = b;
  m.emissivity = eps;
  return m;
}
}  // namespace

SolidMaterial aluminum_6061() {
  return iso("Al 6061-T6", 2700.0, 167.0, 896.0, 68.9e9, 0.33, 23.6e-6, 276e6, 0.085, 0.80);
}

SolidMaterial aluminum_7075() {
  return iso("Al 7075-T6", 2810.0, 130.0, 960.0, 71.7e9, 0.33, 23.4e-6, 503e6, 0.085, 0.80);
}

SolidMaterial copper() {
  return iso("Cu C11000", 8960.0, 390.0, 385.0, 117e9, 0.34, 17.0e-6, 70e6, 0.12, 0.15);
}

SolidMaterial steel_304() {
  return iso("Steel 304", 8000.0, 16.2, 500.0, 193e9, 0.29, 17.3e-6, 215e6, 0.09, 0.35);
}

SolidMaterial titanium_6al4v() {
  return iso("Ti-6Al-4V", 4430.0, 6.7, 526.0, 114e9, 0.34, 8.6e-6, 880e6, 0.08, 0.30);
}

SolidMaterial kovar() {
  return iso("Kovar", 8360.0, 17.0, 460.0, 138e9, 0.30, 5.9e-6, 345e6, 0.09, 0.25);
}

SolidMaterial fr4() {
  SolidMaterial m = iso("FR4 laminate", 1850.0, 0.8, 1100.0, 18.6e9, 0.14, 14.0e-6, 310e6,
                        0.11, 0.90);
  m.conductivity = 0.8;           // in-plane (glass weave)
  m.conductivity_through = 0.30;  // through thickness (resin-dominated)
  return m;
}

SolidMaterial silicon() {
  return iso("Silicon", 2330.0, 148.0, 700.0, 130e9, 0.28, 2.6e-6, 120e6, 0.05, 0.70);
}

SolidMaterial alumina_96() {
  return iso("Alumina 96%", 3800.0, 24.0, 880.0, 310e9, 0.22, 7.1e-6, 250e6, 0.05, 0.80);
}

SolidMaterial solder_sac305() {
  return iso("SAC305 solder", 7400.0, 58.0, 220.0, 51e9, 0.36, 21.7e-6, 32e6, 0.10, 0.20);
}

SolidMaterial carbon_composite() {
  // Quasi-isotropic CFRP layup as used for the alternative COSEE seat frame.
  SolidMaterial m = iso("CFRP quasi-iso", 1600.0, 5.0, 1050.0, 60e9, 0.30, 2.5e-6, 600e6,
                        0.07, 0.85);
  m.conductivity = 5.0;
  m.conductivity_through = 0.8;
  return m;
}

double PcbStackup::copper_fraction() const {
  if (board_thickness <= 0.0 || copper_layers < 0 || copper_layer_thickness < 0.0 ||
      copper_coverage < 0.0 || copper_coverage > 1.0)
    throw std::invalid_argument("PcbStackup: invalid geometry");
  const double t_cu = copper_layers * copper_layer_thickness * copper_coverage;
  if (t_cu >= board_thickness)
    throw std::invalid_argument("PcbStackup: copper exceeds board thickness");
  return t_cu / board_thickness;
}

double PcbStackup::conductivity_in_plane() const {
  const double f = copper_fraction();
  return f * materials::copper().conductivity + (1.0 - f) * fr4().conductivity;
}

double PcbStackup::conductivity_through() const {
  const double f = copper_fraction();
  // Series stack: resistances add through the thickness.
  return 1.0 / (f / materials::copper().conductivity + (1.0 - f) / fr4().conductivity_through);
}

double PcbStackup::density() const {
  const double f = copper_fraction();
  return f * materials::copper().density + (1.0 - f) * fr4().density;
}

double PcbStackup::specific_heat() const {
  const double f = copper_fraction();
  const double rho_cu = materials::copper().density;
  const double rho_fr4 = fr4().density;
  const double mf_cu = f * rho_cu / (f * rho_cu + (1.0 - f) * rho_fr4);
  return mf_cu * materials::copper().specific_heat + (1.0 - mf_cu) * fr4().specific_heat;
}

SolidMaterial PcbStackup::as_material() const {
  SolidMaterial m = fr4();
  m.name = "PCB stackup (" + std::to_string(copper_layers) + " Cu layers)";
  m.density = density();
  m.specific_heat = specific_heat();
  m.conductivity = conductivity_in_plane();
  m.conductivity_through = conductivity_through();
  return m;
}

}  // namespace aeropack::materials
