// Air thermophysical properties and the ICAO standard atmosphere.
//
// Avionics bays see cabin altitude (2400 m typical) up to unpressurized
// flight levels; natural-convection capability degrades with density, which
// matters for the paper's Level-1 cooling-technology selection.
#pragma once

namespace aeropack::materials {

/// Air state at a given film temperature and static pressure.
struct AirState {
  double temperature = 293.15;   ///< [K]
  double pressure = 101325.0;    ///< [Pa]
  double density = 0.0;          ///< [kg/m^3]
  double viscosity = 0.0;        ///< dynamic [Pa s]
  double conductivity = 0.0;     ///< [W/m K]
  double specific_heat = 0.0;    ///< cp [J/kg K]
  double prandtl = 0.0;          ///< [-]
  double beta = 0.0;             ///< volumetric expansion 1/T [1/K]

  /// Kinematic viscosity [m^2/s].
  double kinematic_viscosity() const { return viscosity / density; }
  /// Thermal diffusivity [m^2/s].
  double diffusivity() const { return conductivity / (density * specific_heat); }
};

/// Air properties from Sutherland-law viscosity/conductivity and ideal gas
/// density. Valid roughly 200..600 K. Throws std::invalid_argument outside
/// 150..1000 K.
AirState air_at(double temperature_kelvin, double pressure_pa = 101325.0);

/// ICAO standard atmosphere (troposphere + lower stratosphere, 0..20 km).
struct IsaPoint {
  double altitude = 0.0;     ///< geopotential [m]
  double temperature = 0.0;  ///< [K]
  double pressure = 0.0;     ///< [Pa]
  double density = 0.0;      ///< [kg/m^3]
};

IsaPoint isa_atmosphere(double altitude_m);

/// Air state in an equipment bay at a given pressure altitude with a local
/// ambient temperature override (bays are warmer than ISA ambient).
AirState bay_air(double altitude_m, double ambient_temperature_kelvin);

}  // namespace aeropack::materials
