// Saturated thermophysical properties of two-phase working fluids used in
// heat pipes, loop heat pipes and thermosyphons (paper section IV).
//
// Properties are tabulated from standard saturation data and interpolated
// with monotone piecewise-linear tables. Each fluid exposes a validity range;
// queries outside it throw std::out_of_range so design code fails loudly
// instead of extrapolating into nonsense.
#pragma once

#include <string>
#include <vector>

#include "numeric/interp.hpp"

namespace aeropack::materials {

/// Saturation-state property bundle at a given temperature.
struct SaturationState {
  double temperature = 0.0;      ///< [K]
  double pressure = 0.0;         ///< saturation pressure [Pa]
  double rho_liquid = 0.0;       ///< [kg/m^3]
  double rho_vapor = 0.0;        ///< [kg/m^3]
  double h_fg = 0.0;             ///< latent heat [J/kg]
  double mu_liquid = 0.0;        ///< [Pa s]
  double mu_vapor = 0.0;         ///< [Pa s]
  double sigma = 0.0;            ///< surface tension [N/m]
  double k_liquid = 0.0;         ///< liquid conductivity [W/m K]
  double cp_liquid = 0.0;        ///< liquid specific heat [J/kg K]
  double molar_mass = 0.0;       ///< [kg/mol]
  double gamma = 0.0;            ///< vapor cp/cv [-]

  /// Specific gas constant of the vapor [J/kg K].
  double gas_constant() const { return 8.314462618 / molar_mass; }

  /// Liquid transport figure of merit (merit number) for heat pipes:
  /// M = rho_l sigma h_fg / mu_l  [W/m^2]
  double merit_number() const { return rho_liquid * sigma * h_fg / mu_liquid; }
};

/// A two-phase working fluid defined by saturation tables.
class WorkingFluid {
 public:
  WorkingFluid(std::string name, double molar_mass_kg_per_mol, double gamma, double t_min_k,
               double t_max_k, numeric::Vector t_kelvin, numeric::Vector p_sat_pa,
               numeric::Vector rho_l, numeric::Vector rho_v, numeric::Vector h_fg,
               numeric::Vector mu_l, numeric::Vector mu_v, numeric::Vector sigma,
               numeric::Vector k_l, numeric::Vector cp_l);

  const std::string& name() const { return name_; }
  double t_min() const { return t_min_; }
  double t_max() const { return t_max_; }

  /// All saturation properties at temperature [K]. Throws std::out_of_range
  /// outside [t_min, t_max].
  SaturationState saturation(double temperature_kelvin) const;

  /// Saturation temperature [K] for a given pressure [Pa] (inverse lookup).
  double saturation_temperature(double pressure_pa) const;

 private:
  std::string name_;
  double molar_mass_, gamma_;
  double t_min_, t_max_;
  numeric::LinearTable p_sat_, rho_l_, rho_v_, h_fg_, mu_l_, mu_v_, sigma_, k_l_, cp_l_;
  numeric::LinearTable t_of_p_;
};

/// Catalogue (constructed on first use, cached).
const WorkingFluid& water();
const WorkingFluid& ammonia();
const WorkingFluid& acetone();
const WorkingFluid& methanol();
const WorkingFluid& ethanol();

/// All catalogued fluids, for sweeps.
std::vector<const WorkingFluid*> all_working_fluids();

}  // namespace aeropack::materials
