#include "materials/air.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::materials {

AirState air_at(double temperature_kelvin, double pressure_pa) {
  if (temperature_kelvin < 150.0 || temperature_kelvin > 1000.0)
    throw std::invalid_argument("air_at: temperature out of range (150..1000 K)");
  if (pressure_pa <= 0.0) throw std::invalid_argument("air_at: pressure must be positive");

  AirState s;
  s.temperature = temperature_kelvin;
  s.pressure = pressure_pa;
  constexpr double r_air = 287.058;  // [J/kg K]
  s.density = pressure_pa / (r_air * temperature_kelvin);
  // Sutherland's law for viscosity.
  constexpr double mu_ref = 1.716e-5, t_ref = 273.15, s_mu = 110.4;
  s.viscosity = mu_ref * std::pow(temperature_kelvin / t_ref, 1.5) *
                (t_ref + s_mu) / (temperature_kelvin + s_mu);
  // Sutherland-type law for conductivity (fits 0.0241 W/mK at 0 C, 0.0314 at 100 C).
  constexpr double k_ref = 0.0241, s_k = 194.0;
  s.conductivity = k_ref * std::pow(temperature_kelvin / t_ref, 1.5) *
                   (t_ref + s_k) / (temperature_kelvin + s_k);
  // cp varies ~1% over the avionics range; treat as constant.
  s.specific_heat = 1006.0;
  s.prandtl = s.viscosity * s.specific_heat / s.conductivity;
  s.beta = 1.0 / temperature_kelvin;
  return s;
}

IsaPoint isa_atmosphere(double altitude_m) {
  if (altitude_m < -500.0 || altitude_m > 20000.0)
    throw std::invalid_argument("isa_atmosphere: altitude out of range (-500..20000 m)");
  constexpr double t0 = 288.15, p0 = 101325.0, lapse = 0.0065, g = 9.80665, r_air = 287.058;
  IsaPoint pt;
  pt.altitude = altitude_m;
  if (altitude_m <= 11000.0) {
    pt.temperature = t0 - lapse * altitude_m;
    pt.pressure = p0 * std::pow(pt.temperature / t0, g / (lapse * r_air));
  } else {
    const double t11 = t0 - lapse * 11000.0;
    const double p11 = p0 * std::pow(t11 / t0, g / (lapse * r_air));
    pt.temperature = t11;
    pt.pressure = p11 * std::exp(-g * (altitude_m - 11000.0) / (r_air * t11));
  }
  pt.density = pt.pressure / (r_air * pt.temperature);
  return pt;
}

AirState bay_air(double altitude_m, double ambient_temperature_kelvin) {
  const IsaPoint pt = isa_atmosphere(altitude_m);
  return air_at(ambient_temperature_kelvin, pt.pressure);
}

}  // namespace aeropack::materials
