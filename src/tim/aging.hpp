// TIM degradation over service: greases pump out under thermal-cycling
// shear and dry out at temperature; pads relax. The interface resistance
// grows until the joint no longer meets its budget — the maintenance-
// interval question behind the paper's insistence that the two-phase chain
// "requires the use of many thermal interfaces".
#pragma once

#include "tim/tim_material.hpp"

namespace aeropack::tim {

/// Degradation model parameters (grease-like defaults).
struct AgingModel {
  /// Fractional resistance growth per decade of thermal cycles, scaled by
  /// the cycle swing relative to 40 K.
  double pump_out_per_decade = 0.15;
  double reference_swing = 40.0;      ///< [K]
  /// Arrhenius dry-out: fractional growth per 1000 h at reference temp.
  double dry_out_per_1000h = 0.02;
  double reference_temperature = 353.15;  ///< [K]
  double dry_out_activation_ev = 0.3;

  /// Adhesives neither pump out nor dry out appreciably.
  static AgingModel cured_adhesive();
  /// Silicone grease (the default values).
  static AgingModel grease();
  /// Elastomer pad: slow compression-set growth only.
  static AgingModel gap_pad();
};

/// Resistance growth factor after `cycles` thermal cycles of swing
/// `delta_t` and `hours` at `temperature_k` (multiplies the fresh
/// specific resistance).
double aging_factor(const AgingModel& m, double cycles, double delta_t_k, double hours,
                    double temperature_k);

/// Aged copy of a material: same composition, contact resistance scaled by
/// the aging factor (pump-out thins the wetted area, which acts at the
/// boundaries).
TimMaterial aged(const TimMaterial& fresh, const AgingModel& m, double cycles,
                 double delta_t_k, double hours, double temperature_k);

/// Service hours until the joint resistance exceeds `budget_factor` times
/// its fresh value, for a duty of `cycles_per_1000h` cycles of `delta_t_k`
/// at `temperature_k`. Returns +inf if it never does within 3e5 h.
double service_hours_to_budget(const TimMaterial& fresh, const AgingModel& m,
                               double budget_factor, double cycles_per_1000h,
                               double delta_t_k, double temperature_k,
                               double pressure_pa = 0.3e6);

}  // namespace aeropack::tim
