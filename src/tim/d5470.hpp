// Virtual ASTM D5470 thermal-interface tester.
//
// NANOPACK built a physical tester "according to the ASTM standard D5470
// (achieved accuracy +/-1 K mm^2/W)" that "also measures thermal interface
// material's thickness (with +/-2 um accuracy)". This module simulates that
// instrument: two instrumented copper meter bars squeeze the specimen; the
// temperature gradient in each bar (from thermocouples with realistic noise)
// extrapolates to the specimen faces; resistance follows from flux and
// face-temperature drop. Repeating at several bond lines separates bulk
// conductivity from contact resistance (the standard's line-fit method).
#pragma once

#include <cstdint>
#include <vector>

#include "tim/tim_material.hpp"

namespace aeropack::tim {

struct D5470Config {
  double bar_area = 1e-4;                ///< meter-bar cross-section (1 cm^2) [m^2]
  double bar_conductivity = 390.0;       ///< copper [W/m K]
  double thermocouple_spacing = 10e-3;   ///< along each bar [m]
  int thermocouples_per_bar = 4;
  double heat_flow = 10.0;               ///< imposed axial heat [W]
  double thermocouple_noise = 0.05;      ///< 1-sigma sensor noise [K]
  double thickness_noise = 2e-6;         ///< 1-sigma micrometer noise [m]
  double parasitic_loss_fraction = 0.01; ///< radial losses along the stack
  std::uint64_t seed = 42;
};

struct D5470Measurement {
  double measured_resistance = 0.0;   ///< area-specific [K m^2/W]
  double measured_blt = 0.0;          ///< [m]
  double true_resistance = 0.0;
  double true_blt = 0.0;
  double error_kmm2 = 0.0;            ///< measurement error [K mm^2/W]
};

/// One virtual measurement of a specimen at the given assembly pressure.
D5470Measurement measure_once(const TimMaterial& specimen, double pressure_pa,
                              const D5470Config& config = {});

struct D5470Characterization {
  double conductivity = 0.0;         ///< slope-derived bulk k [W/m K]
  double contact_resistance = 0.0;   ///< intercept / 2, one boundary [K m^2/W]
  double resistance_accuracy_kmm2 = 0.0;  ///< RMS error across repeats [K mm^2/W]
  double thickness_accuracy_um = 0.0;     ///< RMS thickness error [um]
  std::vector<D5470Measurement> points;
};

/// Full ASTM line-fit characterization: measure the specimen at several
/// pressures (=> several bond lines), fit R''(BLT) = BLT/k + 2 Rc, and
/// report the achieved accuracies (the paper's +/-1 K mm^2/W, +/-2 um).
D5470Characterization characterize(const TimMaterial& specimen,
                                   const std::vector<double>& pressures_pa,
                                   int repeats_per_point = 5, const D5470Config& config = {});

}  // namespace aeropack::tim
