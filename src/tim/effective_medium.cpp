#include "tim/effective_medium.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/rootfind.hpp"

namespace aeropack::tim {

namespace {
void check_inputs(double k_matrix, double k_filler, double phi) {
  if (k_matrix <= 0.0 || k_filler <= 0.0)
    throw std::invalid_argument("effective_medium: conductivities must be > 0");
  if (phi < 0.0 || phi > 1.0)
    throw std::invalid_argument("effective_medium: phi must be in [0, 1]");
}
}  // namespace

double k_maxwell(double k_matrix, double k_filler, double phi) {
  check_inputs(k_matrix, k_filler, phi);
  const double num = k_filler + 2.0 * k_matrix + 2.0 * phi * (k_filler - k_matrix);
  const double den = k_filler + 2.0 * k_matrix - phi * (k_filler - k_matrix);
  return k_matrix * num / den;
}

double k_bruggeman(double k_matrix, double k_filler, double phi) {
  check_inputs(k_matrix, k_filler, phi);
  // Solve phi (kf - ke)/(kf + 2 ke) + (1-phi)(km - ke)/(km + 2 ke) = 0.
  const auto f = [&](double ke) {
    return phi * (k_filler - ke) / (k_filler + 2.0 * ke) +
           (1.0 - phi) * (k_matrix - ke) / (k_matrix + 2.0 * ke);
  };
  const double lo = std::min(k_matrix, k_filler);
  const double hi = std::max(k_matrix, k_filler);
  if (lo == hi) return lo;
  return numeric::brent(f, lo, hi, {.tolerance = 1e-12 * hi, .max_iterations = 200});
}

double k_lewis_nielsen(double k_matrix, double k_filler, double phi, double shape_factor,
                       double phi_max) {
  check_inputs(k_matrix, k_filler, phi);
  if (shape_factor <= 0.0 || phi_max <= 0.0 || phi_max > 1.0)
    throw std::invalid_argument("k_lewis_nielsen: invalid shape/packing parameters");
  if (phi >= phi_max)
    throw std::invalid_argument("k_lewis_nielsen: phi exceeds maximum packing fraction");
  const double a = shape_factor;
  const double b = (k_filler / k_matrix - 1.0) / (k_filler / k_matrix + a);
  const double psi = 1.0 + ((1.0 - phi_max) / (phi_max * phi_max)) * phi;
  return k_matrix * (1.0 + a * b * phi) / (1.0 - b * psi * phi);
}

double filler_fraction_for(double k_target, double k_matrix, double k_filler,
                           double shape_factor, double phi_max) {
  if (k_target <= k_matrix)
    throw std::invalid_argument("filler_fraction_for: target below matrix conductivity");
  const double phi_hi = phi_max - 1e-6;
  if (k_lewis_nielsen(k_matrix, k_filler, phi_hi, shape_factor, phi_max) < k_target)
    throw std::runtime_error("filler_fraction_for: target unreachable below max packing");
  const auto f = [&](double phi) {
    return k_lewis_nielsen(k_matrix, k_filler, phi, shape_factor, phi_max) - k_target;
  };
  return numeric::brent(f, 0.0, phi_hi, {.tolerance = 1e-10, .max_iterations = 200});
}

double k_cnt_array(double phi, double k_tube, double efficiency) {
  if (phi < 0.0 || phi > 1.0 || k_tube <= 0.0 || efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("k_cnt_array: invalid parameters");
  return phi * k_tube * efficiency;
}

}  // namespace aeropack::tim
