#include "tim/d5470.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/stats.hpp"

namespace aeropack::tim {

D5470Measurement measure_once(const TimMaterial& specimen, double pressure_pa,
                              const D5470Config& config) {
  if (config.thermocouples_per_bar < 2)
    throw std::invalid_argument("measure_once: need at least 2 thermocouples per bar");
  numeric::Rng rng(config.seed);
  return [&] {
    // Delegate to a shared implementation via characterize's path below.
    D5470Measurement m;
    const double area = config.bar_area;
    m.true_blt = specimen.blt(pressure_pa);
    m.true_resistance = specimen.specific_resistance(pressure_pa);

    // The flux actually crossing the joint (radial parasitics bleed off a
    // little of the imposed heat between the upper and lower bars).
    const double q_top = config.heat_flow;
    const double q_joint = config.heat_flow * (1.0 - config.parasitic_loss_fraction);
    const double flux_top = q_top / area;
    const double flux_joint = q_joint / area;

    // Ideal thermocouple readings along each bar (linear gradients).
    const double grad_top = flux_top / config.bar_conductivity;      // [K/m]
    const double grad_bot = flux_joint / config.bar_conductivity;

    // Build noisy readings; positions measured from the joint faces.
    const int n = config.thermocouples_per_bar;
    numeric::Vector pos(n), t_top(n), t_bot(n);
    const double t_face_hot = 350.0;  // arbitrary absolute offset, cancels out
    const double t_face_cold = t_face_hot - m.true_resistance * flux_joint;
    for (int i = 0; i < n; ++i) {
      const double x = config.thermocouple_spacing * static_cast<double>(i + 1);
      pos[i] = x;
      t_top[i] = t_face_hot + grad_top * x + rng.normal(0.0, config.thermocouple_noise);
      t_bot[i] = t_face_cold - grad_bot * x + rng.normal(0.0, config.thermocouple_noise);
    }

    // Least-squares linear fit T(x) for each bar, extrapolated to x = 0.
    const auto fit = [&](const numeric::Vector& xs, const numeric::Vector& ts, double& c0,
                         double& c1) {
      const double mx = numeric::mean(xs);
      const double mt = numeric::mean(ts);
      double sxx = 0.0, sxt = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxt += (xs[i] - mx) * (ts[i] - mt);
      }
      c1 = sxt / sxx;
      c0 = mt - c1 * mx;
    };
    double top0 = 0.0, top_slope = 0.0, bot0 = 0.0, bot_slope = 0.0;
    fit(pos, t_top, top0, top_slope);
    fit(pos, t_bot, bot0, bot_slope);

    // Measured flux from the gradient in the lower (metered) bar.
    const double measured_flux = -bot_slope * config.bar_conductivity;
    const double dt_faces = top0 - bot0;
    m.measured_resistance = dt_faces / measured_flux;
    m.measured_blt = m.true_blt + rng.normal(0.0, config.thickness_noise);
    m.error_kmm2 = (m.measured_resistance - m.true_resistance) * 1e6;
    return m;
  }();
}

D5470Characterization characterize(const TimMaterial& specimen,
                                   const std::vector<double>& pressures_pa,
                                   int repeats_per_point, const D5470Config& config) {
  if (pressures_pa.size() < 2)
    throw std::invalid_argument("characterize: need >= 2 pressures for the line fit");
  if (repeats_per_point < 1)
    throw std::invalid_argument("characterize: repeats must be >= 1");

  D5470Characterization out;
  numeric::Vector blts, rs, r_errors, t_errors;
  std::uint64_t seed = config.seed;
  for (double p : pressures_pa) {
    for (int rep = 0; rep < repeats_per_point; ++rep) {
      D5470Config c = config;
      c.seed = ++seed * 0x9e3779b97f4a7c15ULL;
      const auto m = measure_once(specimen, p, c);
      out.points.push_back(m);
      blts.push_back(m.measured_blt);
      rs.push_back(m.measured_resistance);
      r_errors.push_back(m.error_kmm2);
      t_errors.push_back((m.measured_blt - m.true_blt) * 1e6);
    }
  }

  // ASTM line fit: R''(BLT) = BLT / k + 2 Rc.
  const double mb = numeric::mean(blts);
  const double mr = numeric::mean(rs);
  double sbb = 0.0, sbr = 0.0;
  for (std::size_t i = 0; i < blts.size(); ++i) {
    sbb += (blts[i] - mb) * (blts[i] - mb);
    sbr += (blts[i] - mb) * (rs[i] - mr);
  }
  if (sbb <= 0.0) throw std::runtime_error("characterize: degenerate bond-line spread");
  const double slope = sbr / sbb;           // = 1/k
  const double intercept = mr - slope * mb; // = 2 Rc
  out.conductivity = (slope > 0.0) ? 1.0 / slope : 0.0;
  out.contact_resistance = 0.5 * intercept;
  out.resistance_accuracy_kmm2 = numeric::rms(r_errors);
  out.thickness_accuracy_um = numeric::rms(t_errors);
  return out;
}

}  // namespace aeropack::tim
