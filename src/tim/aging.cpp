#include "tim/aging.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "reliability/mtbf.hpp"

namespace aeropack::tim {

AgingModel AgingModel::cured_adhesive() {
  AgingModel m;
  m.pump_out_per_decade = 0.0;
  m.dry_out_per_1000h = 0.002;
  return m;
}

AgingModel AgingModel::grease() { return AgingModel{}; }

AgingModel AgingModel::gap_pad() {
  AgingModel m;
  m.pump_out_per_decade = 0.03;  // compression set, not pump-out
  m.dry_out_per_1000h = 0.005;
  return m;
}

double aging_factor(const AgingModel& m, double cycles, double delta_t_k, double hours,
                    double temperature_k) {
  if (cycles < 0.0 || hours < 0.0 || delta_t_k < 0.0 || temperature_k <= 0.0)
    throw std::invalid_argument("aging_factor: invalid history");
  // Pump-out: log-linear in cycles, scaled quadratically with the swing
  // (shear displacement ~ CTE mismatch ~ dT; damage ~ dT^2).
  double factor = 1.0;
  if (cycles > 1.0 && m.pump_out_per_decade > 0.0) {
    const double swing_scale = (delta_t_k / m.reference_swing) * (delta_t_k / m.reference_swing);
    factor += m.pump_out_per_decade * swing_scale * std::log10(cycles);
  }
  // Dry-out: linear in time, Arrhenius in temperature.
  const double af = reliability::arrhenius_factor(m.reference_temperature, temperature_k,
                                                  m.dry_out_activation_ev);
  factor += m.dry_out_per_1000h * af * hours / 1000.0;
  return factor;
}

TimMaterial aged(const TimMaterial& fresh, const AgingModel& m, double cycles,
                 double delta_t_k, double hours, double temperature_k) {
  const double f = aging_factor(m, cycles, delta_t_k, hours, temperature_k);
  TimMaterial out = fresh;
  out.name = fresh.name + " (aged)";
  // Degradation concentrates at the boundaries: scale Rc so that the total
  // fresh resistance grows by f at the reference pressure.
  const double fresh_r = fresh.specific_resistance(0.3e6);
  const double target_r = f * fresh_r;
  const double bulk = fresh.blt(0.3e6) / fresh.conductivity;
  out.contact_resistance = std::max((target_r - bulk) / 2.0, fresh.contact_resistance);
  return out;
}

double service_hours_to_budget(const TimMaterial& fresh, const AgingModel& m,
                               double budget_factor, double cycles_per_1000h,
                               double delta_t_k, double temperature_k, double pressure_pa) {
  if (budget_factor <= 1.0)
    throw std::invalid_argument("service_hours_to_budget: budget factor must exceed 1");
  if (cycles_per_1000h < 0.0)
    throw std::invalid_argument("service_hours_to_budget: negative cycling rate");
  const double fresh_r = fresh.specific_resistance(pressure_pa);
  for (double hours = 500.0; hours <= 3e5; hours += 500.0) {
    const double cycles = cycles_per_1000h * hours / 1000.0;
    const auto a = aged(fresh, m, cycles, delta_t_k, hours, temperature_k);
    if (a.specific_resistance(pressure_pa) >= budget_factor * fresh_r) return hours;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace aeropack::tim
