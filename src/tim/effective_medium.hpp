// Effective-medium conductivity models for particle-filled thermal interface
// materials — the physics behind the NANOPACK adhesives (silver flakes /
// micro silver spheres in epoxy matrices) and metal-polymer CNT composites.
#pragma once

namespace aeropack::tim {

/// Maxwell-Garnett (dilute spherical inclusions). Accurate for phi < ~0.25.
double k_maxwell(double k_matrix, double k_filler, double phi);

/// Bruggeman symmetric effective-medium (handles percolation of conductive
/// filler around phi ~ 1/3 for spheres).
double k_bruggeman(double k_matrix, double k_filler, double phi);

/// Lewis-Nielsen with maximum packing fraction phi_max and shape factor A
/// (A = 1.5 spheres, ~ 4-8 flakes/rods; phi_max = 0.637 random spheres,
/// ~0.52 flakes). The standard engineering model for filled TIMs.
double k_lewis_nielsen(double k_matrix, double k_filler, double phi, double shape_factor = 1.5,
                       double phi_max = 0.637);

/// Filler volume fraction needed to reach a target conductivity with the
/// Lewis-Nielsen model (bisection; throws std::runtime_error if unreachable
/// below phi_max).
double filler_fraction_for(double k_target, double k_matrix, double k_filler,
                           double shape_factor = 1.5, double phi_max = 0.637);

/// Aligned CNT array effective conductivity: phi * k_tube * efficiency, with
/// `efficiency` lumping tube-tube and tube-cap contact losses (typically
/// 0.1-0.4 for as-grown arrays).
double k_cnt_array(double phi, double k_tube, double efficiency);

}  // namespace aeropack::tim
