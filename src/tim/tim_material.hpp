// Thermal interface material model: bulk conductivity + bond-line thickness
// (squeeze-flow vs assembly pressure) + boundary contact resistances, with a
// catalogue of the paper's NANOPACK materials and the conventional products
// they are benchmarked against.
//
// Total interfacial resistance (area-specific, [K mm^2/W] in reports):
//   R'' = BLT / k  +  2 Rc''
#pragma once

#include <string>
#include <vector>

namespace aeropack::tim {

struct TimMaterial {
  std::string name;
  double conductivity = 1.0;        ///< bulk k [W/m K]
  double blt_zero_pressure = 100e-6;///< BLT at reference (low) pressure [m]
  double blt_min = 10e-6;           ///< asymptotic BLT at high pressure [m]
  double pressure_scale = 0.3e6;    ///< squeeze-flow pressure scale [Pa]
  double contact_resistance = 1.0e-6;  ///< one-boundary Rc'' [K m^2/W]
  double electrical_resistivity = 0.0; ///< [Ohm m], 0 = insulating
  double shear_strength = 0.0;      ///< [Pa] (adhesives)
  bool cures_in_place = false;      ///< adhesive (BLT set at cure, not pressure)

  /// Bond-line thickness at assembly pressure [m].
  double blt(double pressure_pa) const;
  /// Area-specific total resistance [K m^2/W] at assembly pressure.
  double specific_resistance(double pressure_pa) const;
  /// Same in the paper's reporting unit [K mm^2/W].
  double specific_resistance_kmm2(double pressure_pa) const;
  /// Absolute resistance of a joint of area [m^2] at pressure. [K/W]
  double joint_resistance(double area_m2, double pressure_pa) const;
};

/// Hierarchical-nested-channel (HNC) surface machining: reduces achieved BLT
/// by > 20 % (paper result) by giving excess material escape channels.
TimMaterial with_hnc_surface(TimMaterial m, double blt_reduction = 0.22);

// --- NANOPACK project materials (paper section IV.B results) --------------
TimMaterial nanopack_mono_epoxy_silver_flake();  ///< 6 W/m K, electrically conductive, 14 MPa
TimMaterial nanopack_multi_epoxy_silver_sphere();///< 9.5 W/m K
TimMaterial nanopack_cnt_metal_polymer();        ///< 20 W/m K composite
TimMaterial nanopack_gold_nanosponge();          ///< contact-resistance enhancer

// --- Conventional comparators ----------------------------------------------
TimMaterial conventional_grease();    ///< ~3 W/m K silicone grease
TimMaterial conventional_gap_pad();   ///< ~1.5 W/m K elastomer pad
TimMaterial conventional_adhesive();  ///< ~1 W/m K filled epoxy
TimMaterial dry_contact();            ///< no TIM: air gap + contact points

std::vector<TimMaterial> all_tim_materials();

/// NANOPACK project targets (paper): intrinsic k up to 20 W/m K, interface
/// resistance < 5 K mm^2/W at BLT < 20 um.
struct NanopackTargets {
  double conductivity = 20.0;              ///< [W/m K]
  double specific_resistance_kmm2 = 5.0;   ///< [K mm^2/W]
  double blt = 20e-6;                      ///< [m]
};

/// Does the material meet the project targets at the given pressure?
bool meets_nanopack_targets(const TimMaterial& m, double pressure_pa,
                            const NanopackTargets& targets = {});

}  // namespace aeropack::tim
