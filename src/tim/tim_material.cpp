#include "tim/tim_material.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::tim {

double TimMaterial::blt(double pressure_pa) const {
  if (pressure_pa < 0.0) throw std::invalid_argument("TimMaterial::blt: negative pressure");
  if (cures_in_place) return blt_zero_pressure;  // set by cure fixture, not pressure
  // Squeeze-flow saturation: BLT(P) = blt_min + (blt0 - blt_min) / (1 + P/P0).
  return blt_min + (blt_zero_pressure - blt_min) / (1.0 + pressure_pa / pressure_scale);
}

double TimMaterial::specific_resistance(double pressure_pa) const {
  return blt(pressure_pa) / conductivity + 2.0 * contact_resistance;
}

double TimMaterial::specific_resistance_kmm2(double pressure_pa) const {
  return specific_resistance(pressure_pa) * 1e6;  // K m^2/W -> K mm^2/W
}

double TimMaterial::joint_resistance(double area_m2, double pressure_pa) const {
  if (area_m2 <= 0.0) throw std::invalid_argument("joint_resistance: area must be > 0");
  return specific_resistance(pressure_pa) / area_m2;
}

TimMaterial with_hnc_surface(TimMaterial m, double blt_reduction) {
  if (blt_reduction <= 0.0 || blt_reduction >= 1.0)
    throw std::invalid_argument("with_hnc_surface: reduction in (0, 1)");
  m.name += " + HNC";
  m.blt_zero_pressure *= (1.0 - blt_reduction);
  m.blt_min *= (1.0 - blt_reduction);
  return m;
}

TimMaterial nanopack_mono_epoxy_silver_flake() {
  TimMaterial m;
  m.name = "NANOPACK mono-epoxy Ag flake";
  m.conductivity = 6.0;
  m.blt_zero_pressure = 30e-6;
  m.blt_min = 15e-6;
  m.contact_resistance = 0.6e-6;
  m.electrical_resistivity = 1e-6;  // 10^-4 Ohm cm
  m.shear_strength = 14e6;
  m.cures_in_place = true;
  m.blt_zero_pressure = 18e-6;  // cured bond line
  return m;
}

TimMaterial nanopack_multi_epoxy_silver_sphere() {
  TimMaterial m;
  m.name = "NANOPACK multi-epoxy Ag sphere";
  m.conductivity = 9.5;
  m.blt_zero_pressure = 20e-6;
  m.blt_min = 12e-6;
  m.contact_resistance = 0.5e-6;
  m.electrical_resistivity = 1e-7;  // 10^-5 Ohm cm
  m.shear_strength = 9e6;
  m.cures_in_place = true;
  return m;
}

TimMaterial nanopack_cnt_metal_polymer() {
  TimMaterial m;
  m.name = "NANOPACK CNT metal-polymer";
  m.conductivity = 20.0;
  m.blt_zero_pressure = 25e-6;
  m.blt_min = 15e-6;
  m.pressure_scale = 0.2e6;
  m.contact_resistance = 1.2e-6;
  m.electrical_resistivity = 5e-7;
  return m;
}

TimMaterial nanopack_gold_nanosponge() {
  TimMaterial m;
  m.name = "NANOPACK Au nanosponge";
  m.conductivity = 12.0;
  m.blt_zero_pressure = 8e-6;
  m.blt_min = 3e-6;
  m.pressure_scale = 0.15e6;
  m.contact_resistance = 0.15e-6;  // the nanosponge's raison d'etre
  m.electrical_resistivity = 1e-7;
  return m;
}

TimMaterial conventional_grease() {
  TimMaterial m;
  m.name = "silicone grease";
  m.conductivity = 3.0;
  m.blt_zero_pressure = 80e-6;
  m.blt_min = 20e-6;
  m.contact_resistance = 2.0e-6;
  return m;
}

TimMaterial conventional_gap_pad() {
  TimMaterial m;
  m.name = "gap pad";
  m.conductivity = 1.5;
  m.blt_zero_pressure = 500e-6;
  m.blt_min = 250e-6;
  m.pressure_scale = 0.4e6;
  m.contact_resistance = 5.0e-6;
  return m;
}

TimMaterial conventional_adhesive() {
  TimMaterial m;
  m.name = "filled epoxy adhesive";
  m.conductivity = 1.0;
  m.blt_zero_pressure = 60e-6;
  m.blt_min = 60e-6;
  m.contact_resistance = 3.0e-6;
  m.shear_strength = 10e6;
  m.cures_in_place = true;
  return m;
}

TimMaterial dry_contact() {
  TimMaterial m;
  m.name = "dry contact (no TIM)";
  m.conductivity = 0.026;  // air in the gap
  m.blt_zero_pressure = 25e-6;
  m.blt_min = 8e-6;
  m.pressure_scale = 1.0e6;
  m.contact_resistance = 20e-6;
  return m;
}

std::vector<TimMaterial> all_tim_materials() {
  return {nanopack_mono_epoxy_silver_flake(), nanopack_multi_epoxy_silver_sphere(),
          nanopack_cnt_metal_polymer(),       nanopack_gold_nanosponge(),
          conventional_grease(),              conventional_gap_pad(),
          conventional_adhesive(),            dry_contact()};
}

bool meets_nanopack_targets(const TimMaterial& m, double pressure_pa,
                            const NanopackTargets& targets) {
  return m.conductivity >= targets.conductivity &&
         m.specific_resistance_kmm2(pressure_pa) <= targets.specific_resistance_kmm2 &&
         m.blt(pressure_pa) <= targets.blt;
}

}  // namespace aeropack::tim
