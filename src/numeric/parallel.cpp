#include "numeric/parallel.hpp"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace aeropack::numeric {

namespace detail {
thread_local ThreadPool* t_pool = nullptr;
}  // namespace detail

ThreadPool* exchange_current_pool(ThreadPool* p) {
  ThreadPool* prev = detail::t_pool;
  detail::t_pool = p;
  return prev;
}

namespace {

// Re-read on every call so set_thread_count(0) picks up AEROPACK_THREADS
// changes made after startup (the restore path is pinned by tests).
std::size_t default_thread_count() {
  if (const char* env = std::getenv("AEROPACK_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t& thread_count_storage() {
  static std::size_t n = default_thread_count();
  return n;
}

}  // namespace

std::size_t thread_count() {
  if (detail::t_pool != nullptr) return detail::t_pool->threads();
  return thread_count_storage();
}

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* job = nullptr;
  // Claims are generation-tagged through a monotonic window: the current
  // job owns task ids [task_base, task_end) and next_task never passes
  // task_end (CAS, not fetch_add), so a worker lingering in drain() from a
  // previous job cannot claim — or burn — a slot of the next job during
  // run()'s setup. task_base and job are plain members: they are written
  // before the release store of task_end and only read after a claim
  // validated against an acquire load of it.
  std::atomic<std::size_t> next_task{0};
  std::atomic<std::size_t> task_end{0};
  std::atomic<std::size_t> completed{0};
  std::size_t task_base = 0;
  std::size_t generation = 0;
  bool stop = false;
  std::exception_ptr error;

  // Claim tasks until the current window is exhausted. A claim is valid
  // only while next_task < task_end; since next_task equals the previous
  // window's end when run() publishes a new one (every prior task was
  // claimed before run() returned), any valid claim lies inside the
  // current window, and the acquire load of task_end that admitted it
  // synchronizes with run()'s release store — job and task_base are
  // visible.
  void drain() {
    for (;;) {
      const std::size_t end = task_end.load(std::memory_order_acquire);
      std::size_t t = next_task.load(std::memory_order_relaxed);
      do {
        if (t >= end) return;
      } while (!next_task.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
      try {
        (*job)(t - task_base);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      // A valid claim implies `end` is the current job's window end, so
      // end - task_base is this job's task count. Exactly that many valid
      // claims exist — completed cannot overshoot.
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 >= end - task_base) {
        std::lock_guard<std::mutex> lock(mutex);
        cv_done.notify_all();
      }
    }
  }

  void worker_loop() {
    std::size_t seen;
    {
      // Workers spawned by resize() join a pool whose generation already
      // advanced; start from it so they don't drain an exhausted window.
      // Safe: spawning never overlaps an in-flight job on this pool.
      std::lock_guard<std::mutex> lock(mutex);
      seen = generation;
    }
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
      }
      drain();
    }
  }

  void spawn(std::size_t workers) {
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads.emplace_back([this] { worker_loop(); });
  }

  void join_all() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv_work.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
    stop = false;
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), workers_(threads == 0 ? 0 : threads - 1) {
  impl_->spawn(workers_);
}

ThreadPool::~ThreadPool() {
  impl_->join_all();
  delete impl_;
}

void ThreadPool::resize(std::size_t threads) {
  if (threads == 0) threads = 1;
  if (threads == this->threads()) return;
  impl_->join_all();
  workers_ = threads - 1;
  impl_->spawn(workers_);
}

ThreadPool& ThreadPool::instance() {
  // Process-lifetime pool, intentionally leaked at exit (never a static
  // object) to avoid static-destruction-order races with user code. A
  // thread-count change resizes this same object in place, so references
  // returned here stay valid forever; sizing is still unsynchronized, so
  // instance() and set_thread_count() must only be called from the single
  // thread that drives the default pool's kernels.
  static ThreadPool* const pool = new ThreadPool(thread_count_storage());
  if (pool->threads() != thread_count_storage()) pool->resize(thread_count_storage());
  return *pool;
}

void set_thread_count(std::size_t n) {
  if (detail::t_pool != nullptr)
    throw std::logic_error(
        "numeric::set_thread_count: this thread is bound to an ExecutionContext "
        "pool; set ExecutionConfig::threads when building the context instead");
  thread_count_storage() = (n == 0) ? default_thread_count() : n;
  ThreadPool::instance();  // resize eagerly so the next kernel is consistent
}

void ThreadPool::run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn) {
  if (n_tasks == 0) return;
  // Deepest task window published at once. Thread-dependent (scheduling)
  // telemetry: report-only, excluded from the deterministic-counter
  // contracts in tests/obs/. Recorded into the driving thread's current
  // registry — workers never touch instruments.
  static thread_local obs::HighwaterHandle queue_hw{"numeric.pool.queue_depth_highwater"};
  queue_hw.record(n_tasks);
  if (workers_ == 0 || n_tasks == 1) {
    for (std::size_t t = 0; t < n_tasks; ++t) fn(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->completed.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    ++impl_->generation;
    // next_task sits exactly at the previous window's end here: the prior
    // run() only returned once all its tasks were claimed, and claims never
    // pass task_end. The new window starts there; the release store of
    // task_end publishes job / task_base to any worker whose claim it
    // admits.
    impl_->task_base = impl_->next_task.load(std::memory_order_relaxed);
    impl_->task_end.store(impl_->task_base + n_tasks, std::memory_order_release);
  }
  impl_->cv_work.notify_all();
  impl_->drain();  // calling thread participates
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->cv_done.wait(lock,
                        [&] { return impl_->completed.load(std::memory_order_acquire) >= n_tasks; });
    if (impl_->error) {
      std::exception_ptr e = impl_->error;
      impl_->error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  static thread_local obs::CounterHandle for_calls{"numeric.parallel_for.calls"};
  static thread_local obs::CounterHandle for_chunks{"numeric.parallel_for.chunks"};
  for_calls.add();
  const std::size_t n = end - begin;
  const std::size_t threads = pool.threads();
  if (threads == 1 || n < 2) {
    for_chunks.add();
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(threads, n);
  for_chunks.add(chunks);
  const std::size_t base = n / chunks, extra = n % chunks;
  pool.run(chunks, [&](std::size_t c) {
    // First `extra` chunks carry one extra element.
    const std::size_t lo = begin + c * base + std::min(c, extra);
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    fn(lo, hi);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(current_pool(), begin, end, fn);
}

namespace {

/// Fixed reduction chunk: independent of thread count, so per-chunk partial
/// sums and their in-order combination are reproducible bit-for-bit.
constexpr std::size_t kReductionChunk = 2048;

template <typename ChunkSum>
double chunked_reduce(ThreadPool& pool, std::size_t n, ChunkSum&& chunk_sum) {
  const std::size_t chunks = (n + kReductionChunk - 1) / kReductionChunk;
  if (chunks <= 1) return n == 0 ? 0.0 : chunk_sum(0, n);
  std::vector<double> partial(chunks, 0.0);
  const auto fill = [&](std::size_t c) {
    const std::size_t lo = c * kReductionChunk;
    const std::size_t hi = std::min(lo + kReductionChunk, n);
    partial[c] = chunk_sum(lo, hi);
  };
  if (pool.threads() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fill(c);
  } else {
    pool.run(chunks, fill);
  }
  double acc = 0.0;
  for (const double p : partial) acc += p;  // in chunk order: deterministic
  return acc;
}

}  // namespace

double parallel_dot(ThreadPool& pool, const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("parallel_dot: size mismatch");
  return chunked_reduce(pool, a.size(), [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += a[i] * b[i];
    return s;
  });
}

double parallel_dot(const Vector& a, const Vector& b) {
  return parallel_dot(current_pool(), a, b);
}

double parallel_norm2(ThreadPool& pool, const Vector& v) {
  return std::sqrt(parallel_dot(pool, v, v));
}

double parallel_norm2(const Vector& v) { return parallel_norm2(current_pool(), v); }

void parallel_axpy(ThreadPool& pool, double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("parallel_axpy: size mismatch");
  parallel_for(pool, 0, x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void parallel_axpy(double alpha, const Vector& x, Vector& y) {
  parallel_axpy(current_pool(), alpha, x, y);
}

}  // namespace aeropack::numeric
