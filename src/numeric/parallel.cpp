#include "numeric/parallel.hpp"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace aeropack::numeric {

namespace detail {
thread_local ThreadPool* t_pool = nullptr;
}  // namespace detail

ThreadPool* exchange_current_pool(ThreadPool* p) {
  ThreadPool* prev = detail::t_pool;
  detail::t_pool = p;
  return prev;
}

namespace {

// Re-read on every call so set_thread_count(0) picks up AEROPACK_THREADS
// changes made after startup (the restore path is pinned by tests).
std::size_t default_thread_count() {
  if (const char* env = std::getenv("AEROPACK_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t& thread_count_storage() {
  static std::size_t n = default_thread_count();
  return n;
}

// Spin budget before a thread gives up and parks on the condition variable:
// a polite-pause phase (stays off the bus, leaves the core's SMT sibling
// alone) followed by a short yielding phase (matters on machines with fewer
// cores than threads, where the partner we are waiting on needs our core).
// Calibrated alongside the grain thresholds — see tools/calibrate_grain.cpp.
constexpr int kSpinRelax = 1024;
constexpr int kSpinYield = 64;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

std::size_t thread_count() {
  if (detail::t_pool != nullptr) return detail::t_pool->threads();
  return thread_count_storage();
}

struct ThreadPool::Impl {
  // One cache line per worker: 1 while that worker is parked (or about to
  // park) on cv_work. run() only touches the mutex/cv when a slot reads 1,
  // so a warm dispatch is mutex-free.
  struct ParkSlot {
    alignas(64) std::atomic<unsigned> parked{0};
  };

  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* job = nullptr;
  // Claims are generation-tagged through a monotonic window: the current
  // job owns task ids [task_base, task_end) and next_task never passes
  // task_end (CAS, not fetch_add), so a worker lingering in drain() from a
  // previous job cannot claim — or burn — a slot of the next job during
  // run()'s setup. task_base and job are plain members: they are written
  // before the release store of task_end and only read after a claim
  // validated against an acquire load of it.
  std::atomic<std::size_t> next_task{0};
  std::atomic<std::size_t> task_end{0};
  std::atomic<std::size_t> completed{0};
  std::size_t task_base = 0;
  // Bumped (seq_cst) once per published job; workers spin on it. Replaces
  // the old mutex-guarded generation counter.
  std::atomic<std::uint64_t> job_seq{0};
  std::atomic<bool> stop{false};
  // 1 while the driving thread is parked (or about to park) on cv_done.
  std::atomic<unsigned> driver_parked{0};
  std::unique_ptr<ParkSlot[]> park;
  std::size_t n_workers = 0;
  std::exception_ptr error;

  // Claim tasks until the current window is exhausted. A claim is valid
  // only while next_task < task_end; since next_task equals the previous
  // window's end when run() publishes a new one (every prior task was
  // claimed before run() returned), any valid claim lies inside the
  // current window, and the acquire load of task_end that admitted it
  // synchronizes with run()'s release store — job and task_base are
  // visible.
  void drain() {
    for (;;) {
      const std::size_t end = task_end.load(std::memory_order_acquire);
      std::size_t t = next_task.load(std::memory_order_relaxed);
      do {
        if (t >= end) return;
      } while (!next_task.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
      // Snapshot the window's plain fields between the claim and the
      // completion RMW. In that interval they cannot change (task t is
      // claimed but not completed, so the driver is still waiting and the
      // next run() cannot have started rewriting them), and the release
      // half of the fetch_add below keeps these reads from sinking past the
      // point where the driver is allowed to proceed. Reading task_base in
      // the fetch_add expression itself would race with the next publish.
      const std::function<void(std::size_t)>* const fn = job;
      const std::size_t base = task_base;
      const std::size_t count = end - base;
      try {
        (*fn)(t - base);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      // A valid claim implies `end` is the current job's window end, so
      // `count` is this job's task count. Exactly that many valid claims
      // exist — completed cannot overshoot. seq_cst pairs with the driver's
      // park protocol below; the RMW chain also forms a release sequence, so
      // the driver's final acquire/seq_cst read of `completed` synchronizes
      // with every task (and any `error` written under the mutex before it).
      if (completed.fetch_add(1, std::memory_order_seq_cst) + 1 >= count) {
        // Wake the driver only if it actually parked. If the seq_cst load
        // below reads 0, it precedes the driver's seq_cst parked store in
        // the total order, so our fetch_add above does too — the driver's
        // pre-wait predicate (seq_cst load of completed) then sees the full
        // count and never blocks. If it reads 1, the empty lock/unlock
        // ensures the driver is either not yet waiting (its predicate runs
        // after our unlock and sees the count via the mutex) or already
        // waiting (the notify reaches it).
        if (driver_parked.load(std::memory_order_seq_cst) != 0) {
          { std::lock_guard<std::mutex> lock(mutex); }
          cv_done.notify_all();
        }
      }
    }
  }

  // Publish-side half of the park protocol: after the (seq_cst) job_seq
  // bump, scan the park slots with seq_cst loads. A slot read as 0 means
  // that worker's park store follows our scan — and therefore our bump —
  // in the seq_cst total order, so its pre-wait predicate (seq_cst load of
  // job_seq) sees the new job and it never blocks. A slot read as 1 gets
  // the mutex take-and-drop + notify, which cannot lose the wakeup: the
  // worker is either already waiting (notified) or will run its predicate
  // after our unlock and observe the bump through the mutex.
  void wake_parked() {
    bool any = false;
    for (std::size_t w = 0; w < n_workers && !any; ++w)
      any = park[w].parked.load(std::memory_order_seq_cst) != 0;
    if (any) {
      { std::lock_guard<std::mutex> lock(mutex); }
      cv_work.notify_all();
    }
  }

  void worker_loop(std::size_t self) {
    // Workers spawned by resize() join a pool whose job_seq already
    // advanced; start from its current value so they don't drain an
    // exhausted window. Safe: spawning never overlaps an in-flight job.
    std::uint64_t seen = job_seq.load(std::memory_order_acquire);
    for (;;) {
      // Spin-then-park: catch back-to-back dispatches from a hot solver
      // loop without a futex round-trip, then get fully off-CPU.
      bool woke = false;
      for (int i = 0; i < kSpinRelax && !woke; ++i) {
        if (job_seq.load(std::memory_order_acquire) != seen) woke = true;
        else if (stop.load(std::memory_order_acquire)) return;
        else cpu_relax();
      }
      for (int i = 0; i < kSpinYield && !woke; ++i) {
        if (job_seq.load(std::memory_order_acquire) != seen) woke = true;
        else if (stop.load(std::memory_order_acquire)) return;
        else std::this_thread::yield();
      }
      if (!woke) {
        park[self].parked.store(1, std::memory_order_seq_cst);
        {
          std::unique_lock<std::mutex> lock(mutex);
          // seq_cst loads in the predicate: see wake_parked() for why the
          // first (pre-wait) evaluation is guaranteed to observe a bump
          // whose publisher read this slot as 0.
          cv_work.wait(lock, [&] {
            return stop.load(std::memory_order_seq_cst) ||
                   job_seq.load(std::memory_order_seq_cst) != seen;
          });
        }
        park[self].parked.store(0, std::memory_order_relaxed);
        if (stop.load(std::memory_order_acquire)) return;
      }
      seen = job_seq.load(std::memory_order_acquire);
      drain();
    }
  }

  void spawn(std::size_t workers) {
    n_workers = workers;
    park = workers > 0 ? std::make_unique<ParkSlot[]>(workers) : nullptr;
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads.emplace_back([this, i] { worker_loop(i); });
  }

  void join_all() {
    stop.store(true, std::memory_order_seq_cst);
    { std::lock_guard<std::mutex> lock(mutex); }
    cv_work.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
    stop.store(false, std::memory_order_relaxed);
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), workers_(threads == 0 ? 0 : threads - 1) {
  impl_->spawn(workers_);
}

ThreadPool::~ThreadPool() {
  impl_->join_all();
  delete impl_;
}

void ThreadPool::resize(std::size_t threads) {
  if (threads == 0) threads = 1;
  if (threads == this->threads()) return;
  impl_->join_all();
  workers_ = threads - 1;
  impl_->spawn(workers_);
}

ThreadPool& ThreadPool::instance() {
  // Process-lifetime pool, intentionally leaked at exit (never a static
  // object) to avoid static-destruction-order races with user code. A
  // thread-count change resizes this same object in place, so references
  // returned here stay valid forever; sizing is still unsynchronized, so
  // instance() and set_thread_count() must only be called from the single
  // thread that drives the default pool's kernels.
  static ThreadPool* const pool = new ThreadPool(thread_count_storage());
  if (pool->threads() != thread_count_storage()) pool->resize(thread_count_storage());
  return *pool;
}

void set_thread_count(std::size_t n) {
  if (detail::t_pool != nullptr)
    throw std::logic_error(
        "numeric::set_thread_count: this thread is bound to an ExecutionContext "
        "pool; set ExecutionConfig::threads when building the context instead");
  thread_count_storage() = (n == 0) ? default_thread_count() : n;
  ThreadPool::instance();  // resize eagerly so the next kernel is consistent
}

void ThreadPool::run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn) {
  if (n_tasks == 0) return;
  // Deepest task window published at once. Thread-dependent (scheduling)
  // telemetry: report-only, excluded from the deterministic-counter
  // contracts in tests/obs/. Recorded into the driving thread's current
  // registry — workers never touch instruments.
  static thread_local obs::HighwaterHandle queue_hw{"numeric.pool.queue_depth_highwater"};
  queue_hw.record(n_tasks);
  if (workers_ == 0 || n_tasks == 1) {
    for (std::size_t t = 0; t < n_tasks; ++t) fn(t);
    return;
  }
  Impl& im = *impl_;
  // Job setup is mutex-free: `job`, `task_base`, `completed` and `error`
  // cannot be touched by a stale worker (its claims are bounded by the old
  // window, which the previous run() fully consumed), and the release store
  // of task_end publishes them to every worker the new window admits.
  // `error` reads/writes never race either: writes happen under the mutex
  // between a valid claim and the matching completed increment, and the
  // driver only resets/reads outside [publish, all-complete).
  im.job = &fn;
  im.completed.store(0, std::memory_order_relaxed);
  im.error = nullptr;
  im.task_base = im.next_task.load(std::memory_order_relaxed);
  im.task_end.store(im.task_base + n_tasks, std::memory_order_release);
  im.job_seq.fetch_add(1, std::memory_order_seq_cst);
  im.wake_parked();
  im.drain();  // calling thread participates
  // Completion: spin briefly (workers finishing their last task are at most
  // a few hundred ns away on a warm pool), then park on cv_done behind the
  // driver_parked flag — the mirror of the worker protocol in drain().
  bool done = false;
  for (int i = 0; i < kSpinRelax && !done; ++i) {
    if (im.completed.load(std::memory_order_acquire) >= n_tasks) done = true;
    else cpu_relax();
  }
  for (int i = 0; i < kSpinYield && !done; ++i) {
    if (im.completed.load(std::memory_order_acquire) >= n_tasks) done = true;
    else std::this_thread::yield();
  }
  if (!done) {
    im.driver_parked.store(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(im.mutex);
      im.cv_done.wait(lock, [&] {
        return im.completed.load(std::memory_order_seq_cst) >= n_tasks;
      });
    }
    im.driver_parked.store(0, std::memory_order_relaxed);
  }
  if (im.error) {
    std::exception_ptr e = im.error;
    im.error = nullptr;
    std::rethrow_exception(e);
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  grain::Work work) {
  if (begin >= end) return;
  static thread_local obs::CounterHandle for_calls{"numeric.parallel_for.calls"};
  static thread_local obs::CounterHandle for_chunks{"numeric.parallel_for.chunks"};
  for_calls.add();
  const std::size_t n = end - begin;
  // Granularity gate: below the calibrated threshold the whole range runs
  // inline — identical results (elementwise kernels are exact), no dispatch.
  const std::size_t planned = grain::plan_threads(work, pool.threads());
  if (planned == 1 || n < 2) {
    for_chunks.add();
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(planned, n);
  for_chunks.add(chunks);
  const std::size_t base = n / chunks, extra = n % chunks;
  pool.run(chunks, [&](std::size_t c) {
    // First `extra` chunks carry one extra element.
    const std::size_t lo = begin + c * base + std::min(c, extra);
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    fn(lo, hi);
  });
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(pool, begin, end, fn,
               grain::Work::elements(end > begin ? end - begin : 0,
                                     grain::Cost::kStream));
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  grain::Work work) {
  parallel_for(current_pool(), begin, end, fn, work);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(current_pool(), begin, end, fn);
}

namespace {

/// Fixed reduction chunk: independent of thread count, so per-chunk partial
/// sums and their in-order combination are reproducible bit-for-bit.
constexpr std::size_t kReductionChunk = 2048;

template <typename ChunkSum>
double chunked_reduce(ThreadPool& pool, std::size_t n, grain::Work work,
                      ChunkSum&& chunk_sum) {
  const std::size_t chunks = (n + kReductionChunk - 1) / kReductionChunk;
  if (chunks <= 1) return n == 0 ? 0.0 : chunk_sum(0, n);
  std::vector<double> partial(chunks, 0.0);
  const auto fill = [&](std::size_t c) {
    const std::size_t lo = c * kReductionChunk;
    const std::size_t hi = std::min(lo + kReductionChunk, n);
    partial[c] = chunk_sum(lo, hi);
  };
  // The chunk layout is fixed; grain only decides who executes the chunks,
  // so the serial fallback is bit-identical to the fanned-out path.
  if (grain::plan_threads(work, pool.threads()) == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fill(c);
  } else {
    pool.run(chunks, fill);
  }
  double acc = 0.0;
  for (const double p : partial) acc += p;  // in chunk order: deterministic
  return acc;
}

/// Two-accumulator variant for the fused CG kernels: same fixed chunk
/// layout, each partial pair summed in chunk order.
template <typename ChunkSum>
void chunked_reduce2(ThreadPool& pool, std::size_t n, grain::Work work,
                     double& r0, double& r1, ChunkSum&& chunk_sum) {
  r0 = 0.0;
  r1 = 0.0;
  const std::size_t chunks = (n + kReductionChunk - 1) / kReductionChunk;
  if (chunks <= 1) {
    if (n != 0) chunk_sum(0, n, r0, r1);
    return;
  }
  std::vector<double> p0(chunks, 0.0), p1(chunks, 0.0);
  const auto fill = [&](std::size_t c) {
    const std::size_t lo = c * kReductionChunk;
    const std::size_t hi = std::min(lo + kReductionChunk, n);
    chunk_sum(lo, hi, p0[c], p1[c]);
  };
  if (grain::plan_threads(work, pool.threads()) == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fill(c);
  } else {
    pool.run(chunks, fill);
  }
  double a0 = 0.0, a1 = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    a0 += p0[c];
    a1 += p1[c];
  }
  r0 = a0;
  r1 = a1;
}

}  // namespace

double parallel_dot(ThreadPool& pool, const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("parallel_dot: size mismatch");
  return chunked_reduce(pool, a.size(),
                        grain::Work::elements(a.size(), grain::Cost::kDot),
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) s += a[i] * b[i];
                          return s;
                        });
}

double parallel_dot(const Vector& a, const Vector& b) {
  return parallel_dot(current_pool(), a, b);
}

double parallel_norm2(ThreadPool& pool, const Vector& v) {
  return std::sqrt(parallel_dot(pool, v, v));
}

double parallel_norm2(const Vector& v) { return parallel_norm2(current_pool(), v); }

void parallel_axpy(ThreadPool& pool, double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("parallel_axpy: size mismatch");
  parallel_for(pool, 0, x.size(),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
               },
               grain::Work::elements(x.size(), grain::Cost::kStream));
}

void parallel_axpy(double alpha, const Vector& x, Vector& y) {
  parallel_axpy(current_pool(), alpha, x, y);
}

CgFused cg_fused_update(ThreadPool& pool, double alpha, const Vector& p,
                        const Vector& ap, const Vector& inv_d, Vector& x,
                        Vector& r, Vector& z) {
  const std::size_t n = p.size();
  if (ap.size() != n || inv_d.size() != n || x.size() != n || r.size() != n ||
      z.size() != n)
    throw std::invalid_argument("cg_fused_update: size mismatch");
  // Negating alpha once reproduces parallel_axpy(-alpha, ap, r) bit-for-bit;
  // computing x[i] + alpha * (-ap[i]) would not.
  const double neg_alpha = -alpha;
  CgFused out;
  chunked_reduce2(pool, n, grain::Work::elements(n, grain::Cost::kFusedCg),
                  out.rr, out.rz,
                  [&](std::size_t lo, std::size_t hi, double& s_rr, double& s_rz) {
                    double rr = 0.0, rz = 0.0;
                    for (std::size_t i = lo; i < hi; ++i) {
                      x[i] += alpha * p[i];
                      r[i] += neg_alpha * ap[i];
                      const double zi = inv_d[i] * r[i];
                      z[i] = zi;
                      rr += r[i] * r[i];
                      rz += r[i] * zi;
                    }
                    s_rr = rr;
                    s_rz = rz;
                  });
  return out;
}

CgFused cg_fused_update(double alpha, const Vector& p, const Vector& ap,
                        const Vector& inv_d, Vector& x, Vector& r, Vector& z) {
  return cg_fused_update(current_pool(), alpha, p, ap, inv_d, x, r, z);
}

double fused_hadamard_dot(ThreadPool& pool, const Vector& d, const Vector& r,
                          Vector& z) {
  const std::size_t n = d.size();
  if (r.size() != n || z.size() != n)
    throw std::invalid_argument("fused_hadamard_dot: size mismatch");
  return chunked_reduce(pool, n, grain::Work::elements(n, grain::Cost::kDot),
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            const double zi = d[i] * r[i];
                            z[i] = zi;
                            s += r[i] * zi;
                          }
                          return s;
                        });
}

double fused_hadamard_dot(const Vector& d, const Vector& r, Vector& z) {
  return fused_hadamard_dot(current_pool(), d, r, z);
}

}  // namespace aeropack::numeric
