// Time integrators: explicit RK4, adaptive RK45 (Cash-Karp), and the
// Newmark-beta scheme for second-order structural dynamics M x'' + C x' + K x = f(t).
#pragma once

#include <cstddef>
#include <functional>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

/// dy/dt = f(t, y)
using OdeRhs = std::function<Vector(double, const Vector&)>;

struct OdeTrace {
  Vector times;
  std::vector<Vector> states;
};

/// Classic fixed-step RK4 from t0 to t1 with n_steps steps.
OdeTrace rk4(const OdeRhs& f, const Vector& y0, double t0, double t1, std::size_t n_steps);

struct Rk45Options {
  double abs_tol = 1e-8;
  double rel_tol = 1e-6;
  double initial_step = 1e-3;
  double min_step = 1e-12;
  std::size_t max_steps = 1000000;
};

/// Adaptive Cash-Karp RK45. Throws std::runtime_error if the step size
/// underflows or the step budget is exhausted.
OdeTrace rk45(const OdeRhs& f, const Vector& y0, double t0, double t1,
              const Rk45Options& opts = {});

/// Newmark-beta (average acceleration: beta=1/4, gamma=1/2 by default;
/// unconditionally stable for linear problems) for
///   M a + C v + K x = f(t)
struct NewmarkOptions {
  double beta = 0.25;
  double gamma = 0.5;
};

struct NewmarkTrace {
  Vector times;
  std::vector<Vector> displacement;
  std::vector<Vector> velocity;
  std::vector<Vector> acceleration;
};

NewmarkTrace newmark(const Matrix& m, const Matrix& c, const Matrix& k,
                     const std::function<Vector(double)>& force, const Vector& x0,
                     const Vector& v0, double t0, double t1, std::size_t n_steps,
                     const NewmarkOptions& opts = {});

}  // namespace aeropack::numeric
