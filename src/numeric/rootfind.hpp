// Scalar root-finding and fixed-point iteration used by the nonlinear
// thermal / two-phase network solvers (natural-convection film coefficients
// depend on the unknown surface temperature).
#pragma once

#include <functional>

namespace aeropack::numeric {

struct RootOptions {
  double tolerance = 1e-10;  ///< |f| or bracket-width target
  std::size_t max_iterations = 200;
};

/// Brent's method on a bracketing interval [a, b] with f(a) f(b) <= 0.
/// Throws std::invalid_argument if the interval does not bracket a root,
/// std::runtime_error if it fails to converge.
double brent(const std::function<double(double)>& f, double a, double b,
             const RootOptions& opts = {});

/// Bisection (kept for pedagogy/tests; Brent is preferred).
double bisect(const std::function<double(double)>& f, double a, double b,
              const RootOptions& opts = {});

/// Damped fixed-point iteration x <- (1-w) x + w g(x). Returns the fixed
/// point; throws std::runtime_error on non-convergence.
double fixed_point(const std::function<double(double)>& g, double x0, double relaxation = 0.5,
                   const RootOptions& opts = {});

/// Expand an initial guess interval geometrically until it brackets a root of
/// f, then solve with Brent. `hi_limit` caps the expansion.
double brent_auto_bracket(const std::function<double(double)>& f, double lo, double hi,
                          double hi_limit, const RootOptions& opts = {});

}  // namespace aeropack::numeric
