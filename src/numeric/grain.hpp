// numeric::grain — granularity-aware dispatch thresholds for the parallel
// layer.
//
// Every parallel entry point estimates its work as `elements × cost class`
// and asks plan_threads() how many threads that work justifies. Below the
// fan-out threshold the kernel runs as a plain serial loop: no pool, no
// dispatch, no synchronization — which is what keeps an 84-DOF modal solve
// or an 8^3 grid from paying microseconds of wakeup latency for microseconds
// of arithmetic. Above it, the thread count is capped so every participating
// thread carries at least kMinWorkPerThread units.
//
// Because the deterministic-reduction contract fixes the chunk size and
// summation order independently of thread count (see parallel.hpp), the
// serial fallback is bit-identical to the parallel path — grain decisions
// never change results, only scheduling.
//
// The constants below are calibrated: regenerate them with the
// `calibrate_grain` tool (tools/calibrate_grain.cpp), which measures the
// warm dispatch round-trip and the per-element cost of each kernel class on
// the target machine and prints a replacement block for this header.
#pragma once

#include <cstddef>
#include <cstdint>

namespace aeropack::numeric::grain {

/// Relative per-element cost class of a kernel, in stream-element units
/// (one load + one fused multiply-add + one store ≈ 1.0).
enum class Cost : std::uint8_t {
  kStream = 0,  ///< copy / axpy / scale / elementwise update
  kDot,         ///< chunked reduction (dot, norm2)
  kSpmv,        ///< CSR multiply, estimated per *nonzero* (irregular gather)
  kCell,        ///< FV assembly fill, per cell (7-point stencil + indexing)
  kFusedCg,     ///< fused CG update: ~4 streams + 2 reductions per element
};

/// Weight of one element of `c` relative to one stream element.
constexpr double cost_weight(Cost c) {
  switch (c) {
    case Cost::kStream: return 1.0;
    case Cost::kDot: return 1.0;
    case Cost::kSpmv: return 1.5;
    case Cost::kCell: return 6.0;
    case Cost::kFusedCg: return 3.0;
  }
  return 1.0;
}

/// Work estimate a kernel hands to the dispatch layer. Callers that know
/// their true element count use elements(); parallel_for's plain overload
/// defaults to one stream unit per index, which under-estimates loops whose
/// body touches many elements per index — those sites must pass an explicit
/// estimate (see CONTRIBUTING.md "Kernels and grain estimates").
struct Work {
  double units = 0.0;

  static constexpr Work elements(std::size_t n, Cost c) {
    return Work{static_cast<double>(n) * cost_weight(c)};
  }
};

// Calibrated thresholds (stream-element units). Regenerate with
// `calibrate_grain`; the defaults below are deliberately conservative so a
// kernel only fans out when the win is clear on commodity hardware:
//  - kMinWorkToFanOut: total work below which dispatch never pays for
//    itself — one warm spin-park round-trip costs on the order of a few
//    thousand stream elements.
//  - kMinWorkPerThread: each additional thread must bring at least this
//    much work, which caps the fan-out width on mid-size problems.
inline constexpr double kMinWorkToFanOut = 16384.0;
inline constexpr double kMinWorkPerThread = 8192.0;

/// True when the AEROPACK_GRAIN environment variable disables granularity
/// gating (value "0" or "off"): every kernel then fans out across the full
/// pool exactly as before this layer existed. Read once per process.
bool disabled();

/// Physical parallelism of this machine (hardware_concurrency, min 1).
/// Fan-out is capped here even when the pool is larger: extra pool threads
/// on a compute-bound kernel only oversubscribe cores — context switches
/// with no bandwidth or ALU gain. Pools sized past the hardware remain
/// valid (determinism does not depend on who executes a chunk); they just
/// stop being scheduled wider than the machine.
std::size_t hardware_parallelism();

/// True while a ScopedForceFanOut is alive on any thread.
bool fan_out_forced();

/// Test hook: while alive, plan_threads() returns the full pool width for
/// any work estimate, so determinism/bit-identity suites exercise the real
/// parallel paths even for small inputs or on small machines. Nests.
class ScopedForceFanOut {
 public:
  ScopedForceFanOut();
  ~ScopedForceFanOut();
  ScopedForceFanOut(const ScopedForceFanOut&) = delete;
  ScopedForceFanOut& operator=(const ScopedForceFanOut&) = delete;
};

/// Number of threads `w` justifies on a pool of `pool_threads` (>= 1).
/// Returns 1 (serial fallback) below kMinWorkToFanOut, otherwise
/// min(pool_threads, hardware_parallelism(), 1 + w / kMinWorkPerThread).
inline std::size_t plan_threads(const Work& w, std::size_t pool_threads) {
  if (pool_threads <= 1) return 1;
  if (disabled() || fan_out_forced()) return pool_threads;
  if (w.units < kMinWorkToFanOut) return 1;
  const std::size_t hw = hardware_parallelism();
  const std::size_t cap = pool_threads < hw ? pool_threads : hw;
  const auto justified =
      1 + static_cast<std::size_t>(w.units / kMinWorkPerThread);
  return justified < cap ? justified : cap;
}

/// Smallest element count of class `c` that plan_threads() will fan out
/// (the serial-threshold boundary; exercised by the grain boundary tests).
inline constexpr std::size_t fan_out_elements(Cost c) {
  const double n = kMinWorkToFanOut / cost_weight(c);
  std::size_t k = static_cast<std::size_t>(n);
  return static_cast<double>(k) < n ? k + 1 : k;
}

}  // namespace aeropack::numeric::grain
