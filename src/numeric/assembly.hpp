// Triplet-buffered sparse assembly: scatter dense element matrices into a
// coordinate buffer, finalize once to a sorted CsrMatrix.
//
// This is the shared structural-assembly primitive the FEM stack sits on
// (see fem/dof_map.hpp for the companion DOF bookkeeping): every model —
// 2-D frames, 3-D space frames, ACM plates — scatters its element matrices
// through one SparseAssembler instead of hand-rolling dense K/M fills.
// Entries flagged kDiscard (fixed DOFs) are dropped during the scatter, so
// the assembler produces the constraint-reduced operator directly.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::numeric {

/// Accumulates element contributions as (i, j, v) triplets and finalizes to
/// CSR. Duplicate coordinates are summed in a deterministic order (stable
/// insertion order within each coordinate), so assembly is bit-identical
/// run to run and independent of the thread count.
class SparseAssembler {
 public:
  /// Row/column index marking a discarded (fixed/constrained) DOF in
  /// scatter(); such rows and columns of the element matrix are skipped.
  static constexpr std::size_t kDiscard = static_cast<std::size_t>(-1);

  SparseAssembler(std::size_t rows, std::size_t cols);

  /// Pre-size the triplet buffer (e.g. element_count * block_size^2).
  void reserve(std::size_t entries);

  /// Accumulate a single coefficient.
  void add(std::size_t i, std::size_t j, double v);

  /// Scatter a square dense element matrix: entry (r, c) accumulates into
  /// global (dofs[r], dofs[c]). dofs.size() must equal element.rows() ==
  /// element.cols(); indices equal to kDiscard drop their row/column.
  void scatter(const std::vector<std::size_t>& dofs, const Matrix& element);

  std::size_t rows() const { return builder_.rows(); }
  std::size_t cols() const { return builder_.cols(); }
  std::size_t entry_count() const { return builder_.entry_count(); }

  /// Sort, merge duplicates and build the CSR matrix. The assembler can keep
  /// accumulating afterwards (finalize is non-destructive).
  CsrMatrix finalize() const;

 private:
  SparseBuilder builder_;
};

}  // namespace aeropack::numeric
