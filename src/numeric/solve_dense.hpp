// Direct dense solvers: LU with partial pivoting, Cholesky, inverse.
#pragma once

#include "numeric/dense.hpp"

namespace aeropack::numeric {

/// LU factorization with partial pivoting of a square matrix (PA = LU).
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;
  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;
  /// det(A), from the product of U's diagonal and the permutation sign.
  double determinant() const;
  bool singular() const { return singular_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool singular_ = false;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Throws std::domain_error if A is not (numerically) positive definite.
class CholeskyFactorization {
 public:
  explicit CholeskyFactorization(const Matrix& a);

  Vector solve(const Vector& b) const;
  /// Solve L y = b (forward substitution only).
  Vector solve_lower(const Vector& b) const;
  /// Solve L^T y = b (backward substitution only).
  Vector solve_lower_transposed(const Vector& b) const;
  const Matrix& lower() const { return l_; }

 private:
  Matrix l_;
};

/// Solve A x = b via pivoted LU. Throws std::domain_error if A is singular.
Vector solve(const Matrix& a, const Vector& b);
/// Matrix inverse via pivoted LU. Throws std::domain_error if A is singular.
Matrix inverse(const Matrix& a);
/// Solve a complex system (Ar + i Ai)(xr + i xi) = (br + i bi) by the real
/// 2n x 2n equivalent. Used for harmonic (frequency-domain) response.
void solve_complex(const Matrix& ar, const Matrix& ai, const Vector& br, const Vector& bi,
                   Vector& xr, Vector& xi);

/// Solve a tridiagonal system (Thomas algorithm). `lower` has n-1 entries,
/// `diag` n, `upper` n-1. Throws std::domain_error on zero pivot.
Vector solve_tridiagonal(const Vector& lower, const Vector& diag, const Vector& upper,
                         const Vector& rhs);

}  // namespace aeropack::numeric
