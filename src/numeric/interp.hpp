// 1-D interpolation tables: linear, log-log (for vibration PSD curves per
// DO-160, which are straight lines on log-log axes), and monotone natural
// cubic splines (for fluid property fits).
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

/// Piecewise-linear table y(x); x must be strictly increasing.
class LinearTable {
 public:
  LinearTable() = default;
  LinearTable(Vector x, Vector y);

  /// Interpolate; clamps to end values outside the range.
  double operator()(double x) const;
  /// Interpolate with linear extrapolation outside the range.
  double extrapolate(double x) const;
  double x_min() const { return x_.front(); }
  double x_max() const { return x_.back(); }
  std::size_t size() const { return x_.size(); }

  /// Trapezoidal integral of the table over its full range.
  double integral() const;

 private:
  std::size_t segment(double x) const;
  Vector x_, y_;
};

/// Table that is piecewise-linear in (log10 x, log10 y) space — the standard
/// representation of random-vibration acceleration spectral density curves.
/// x and y must be strictly positive, x strictly increasing.
class LogLogTable {
 public:
  LogLogTable() = default;
  LogLogTable(Vector x, Vector y);

  double operator()(double x) const;
  double x_min() const;
  double x_max() const;

  /// Exact integral of y dx over [a, b] using the power-law form of each
  /// segment (y = c x^m). Used for RMS of PSD curves.
  double integral(double a, double b) const;
  double integral() const { return integral(x_min(), x_max()); }

 private:
  LinearTable log_table_;
};

/// Natural cubic spline with clamped (constant) extrapolation.
class CubicSpline {
 public:
  CubicSpline() = default;
  CubicSpline(Vector x, Vector y);

  double operator()(double x) const;
  double derivative(double x) const;

 private:
  Vector x_, y_, m_;  // m_: second derivatives at knots
};

}  // namespace aeropack::numeric
