// Gauss-Legendre quadrature (used by the plate finite element) and simple
// composite rules.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace aeropack::numeric {

struct QuadraturePoint {
  double x;       ///< abscissa on [-1, 1]
  double weight;
};

/// Gauss-Legendre points for n in [1, 8]. Throws std::invalid_argument
/// outside that range.
std::vector<QuadraturePoint> gauss_legendre(std::size_t n);

/// Integrate f over [a, b] with an n-point Gauss rule.
double integrate_gauss(const std::function<double(double)>& f, double a, double b,
                       std::size_t n = 5);

/// Composite Simpson with `panels` panels (must be even and >= 2).
double integrate_simpson(const std::function<double(double)>& f, double a, double b,
                         std::size_t panels = 128);

}  // namespace aeropack::numeric
