#include "numeric/rootfind.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::numeric {

double brent(const std::function<double(double)>& f, double a, double b,
             const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) throw std::invalid_argument("brent: interval does not bracket a root");

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::fabs(b) + 0.5 * opts.tolerance;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) return b;
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::fabs(d) > tol1)
      b += d;
    else
      b += (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw std::runtime_error("brent: failed to converge");
}

double bisect(const std::function<double(double)>& f, double a, double b,
              const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) throw std::invalid_argument("bisect: interval does not bracket a root");
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0 || 0.5 * (b - a) < opts.tolerance) return m;
    if ((fm > 0.0) == (fa > 0.0)) {
      a = m;
      fa = fm;
    } else {
      b = m;
    }
  }
  return 0.5 * (a + b);
}

double fixed_point(const std::function<double(double)>& g, double x0, double relaxation,
                   const RootOptions& opts) {
  if (relaxation <= 0.0 || relaxation > 1.0)
    throw std::invalid_argument("fixed_point: relaxation must be in (0, 1]");
  double x = x0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double xn = (1.0 - relaxation) * x + relaxation * g(x);
    if (std::fabs(xn - x) < opts.tolerance * (1.0 + std::fabs(xn))) return xn;
    x = xn;
  }
  throw std::runtime_error("fixed_point: failed to converge");
}

double brent_auto_bracket(const std::function<double(double)>& f, double lo, double hi,
                          double hi_limit, const RootOptions& opts) {
  double fl = f(lo);
  double fh = f(hi);
  std::size_t guard = 0;
  while (fl * fh > 0.0) {
    hi = lo + (hi - lo) * 2.0;
    if (hi > hi_limit || ++guard > 60)
      throw std::runtime_error("brent_auto_bracket: no bracket found");
    fh = f(hi);
  }
  return brent(f, lo, hi, opts);
}

}  // namespace aeropack::numeric
