#include "numeric/dense.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace aeropack::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("Matrix: zero dimension");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  if (rows_ == 0) throw std::invalid_argument("Matrix: empty initializer");
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::asymmetry() const {
  if (!square()) throw std::logic_error("Matrix::asymmetry: not square");
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      worst = std::max(worst, std::fabs((*this)(i, j) - (*this)(j, i)));
  return worst;
}

void Matrix::symmetrize() {
  if (!square()) throw std::logic_error("Matrix::symmetrize: not square");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("Matrix*: shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("Matrix*Vector: shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) os << m(i, j) << (j + 1 < m.cols() ? ' ' : '\n');
  }
  return os;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  if (lhs.size() != rhs.size()) throw std::invalid_argument("Vector+: size mismatch");
  for (std::size_t i = 0; i < lhs.size(); ++i) lhs[i] += rhs[i];
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  if (lhs.size() != rhs.size()) throw std::invalid_argument("Vector-: size mismatch");
  for (std::size_t i = 0; i < lhs.size(); ++i) lhs[i] -= rhs[i];
  return lhs;
}

Vector operator*(double s, Vector v) {
  for (double& x : v) x *= s;
  return v;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::fabs(x));
  return worst;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double max_element(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("max_element: empty");
  return *std::max_element(v.begin(), v.end());
}

double min_element(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("min_element: empty");
  return *std::min_element(v.begin(), v.end());
}

Vector linspace(double a, double b, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  Vector v(n);
  const double step = (b - a) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = a + step * static_cast<double>(i);
  v.back() = b;
  return v;
}

}  // namespace aeropack::numeric
