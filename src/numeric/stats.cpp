#include "numeric/stats.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::numeric {

double mean(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty vector");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stddev(const Vector& v) {
  if (v.size() < 2) return 0.0;
  const double mu = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double rms(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("rms: empty vector");
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

Rng::Rng(std::uint64_t seed) : state_(seed ? seed : 1u) {}

std::uint64_t Rng::next() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1DULL;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mu, double sigma) { return mu + sigma * normal(); }

}  // namespace aeropack::numeric
