// Small statistics helpers for measurement simulation (virtual ASTM D5470
// tester) and random-vibration post-processing.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

double mean(const Vector& v);
/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(const Vector& v);
double rms(const Vector& v);

/// Deterministic xorshift-based uniform/normal generator — keeps benchmark
/// output reproducible without seeding std::mt19937 everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal (Box-Muller).
  double normal();
  /// Normal with given mean / standard deviation.
  double normal(double mu, double sigma);

 private:
  std::uint64_t next();
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace aeropack::numeric
