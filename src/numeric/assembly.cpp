#include "numeric/assembly.hpp"

#include <stdexcept>

namespace aeropack::numeric {

SparseAssembler::SparseAssembler(std::size_t rows, std::size_t cols) : builder_(rows, cols) {}

void SparseAssembler::reserve(std::size_t entries) { builder_.reserve(entries); }

void SparseAssembler::add(std::size_t i, std::size_t j, double v) { builder_.add(i, j, v); }

void SparseAssembler::scatter(const std::vector<std::size_t>& dofs, const Matrix& element) {
  if (!element.square() || dofs.size() != element.rows())
    throw std::invalid_argument("SparseAssembler::scatter: dof/element shape mismatch");
  const std::size_t n = dofs.size();
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t gi = dofs[r];
    if (gi == kDiscard) continue;
    for (std::size_t c = 0; c < n; ++c) {
      const std::size_t gj = dofs[c];
      if (gj == kDiscard) continue;
      builder_.add(gi, gj, element(r, c));
    }
  }
}

CsrMatrix SparseAssembler::finalize() const { return builder_.build(); }

}  // namespace aeropack::numeric
