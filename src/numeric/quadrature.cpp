#include "numeric/quadrature.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::numeric {

std::vector<QuadraturePoint> gauss_legendre(std::size_t n) {
  switch (n) {
    case 1:
      return {{0.0, 2.0}};
    case 2:
      return {{-0.5773502691896257, 1.0}, {0.5773502691896257, 1.0}};
    case 3:
      return {{-0.7745966692414834, 5.0 / 9.0},
              {0.0, 8.0 / 9.0},
              {0.7745966692414834, 5.0 / 9.0}};
    case 4:
      return {{-0.8611363115940526, 0.3478548451374538},
              {-0.3399810435848563, 0.6521451548625461},
              {0.3399810435848563, 0.6521451548625461},
              {0.8611363115940526, 0.3478548451374538}};
    case 5:
      return {{-0.9061798459386640, 0.2369268850561891},
              {-0.5384693101056831, 0.4786286704993665},
              {0.0, 0.5688888888888889},
              {0.5384693101056831, 0.4786286704993665},
              {0.9061798459386640, 0.2369268850561891}};
    case 6:
      return {{-0.9324695142031521, 0.1713244923791704},
              {-0.6612093864662645, 0.3607615730481386},
              {-0.2386191860831969, 0.4679139345726910},
              {0.2386191860831969, 0.4679139345726910},
              {0.6612093864662645, 0.3607615730481386},
              {0.9324695142031521, 0.1713244923791704}};
    case 7:
      return {{-0.9491079123427585, 0.1294849661688697},
              {-0.7415311855993945, 0.2797053914892766},
              {-0.4058451513773972, 0.3818300505051189},
              {0.0, 0.4179591836734694},
              {0.4058451513773972, 0.3818300505051189},
              {0.7415311855993945, 0.2797053914892766},
              {0.9491079123427585, 0.1294849661688697}};
    case 8:
      return {{-0.9602898564975363, 0.1012285362903763},
              {-0.7966664774136267, 0.2223810344533745},
              {-0.5255324099163290, 0.3137066458778873},
              {-0.1834346424956498, 0.3626837833783620},
              {0.1834346424956498, 0.3626837833783620},
              {0.5255324099163290, 0.3137066458778873},
              {0.7966664774136267, 0.2223810344533745},
              {0.9602898564975363, 0.1012285362903763}};
    default:
      throw std::invalid_argument("gauss_legendre: n must be in [1, 8]");
  }
}

double integrate_gauss(const std::function<double(double)>& f, double a, double b,
                       std::size_t n) {
  const auto pts = gauss_legendre(n);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double acc = 0.0;
  for (const auto& p : pts) acc += p.weight * f(mid + half * p.x);
  return acc * half;
}

double integrate_simpson(const std::function<double(double)>& f, double a, double b,
                         std::size_t panels) {
  if (panels < 2 || panels % 2 != 0)
    throw std::invalid_argument("integrate_simpson: panels must be even and >= 2");
  const double h = (b - a) / static_cast<double>(panels);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < panels; ++i)
    acc += f(a + h * static_cast<double>(i)) * ((i % 2 == 1) ? 4.0 : 2.0);
  return acc * h / 3.0;
}

}  // namespace aeropack::numeric
