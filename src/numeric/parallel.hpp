// Shared-memory parallel execution layer: a small static-partition thread
// pool plus deterministic data-parallel kernels for the iterative solvers.
//
// Design constraints (see DESIGN.md "Threading model" and "Execution
// contexts"):
//  - Pools are first-class objects: every kernel has an overload taking the
//    `ThreadPool&` it must run on, and the legacy free-function signatures
//    resolve the calling thread's *current* pool — the one bound by
//    aeropack::ExecutionContext::Use, defaulting to the process-wide
//    ThreadPool::instance(). Concurrent solves on distinct pools from
//    distinct threads are safe; one pool must still only be driven by one
//    thread at a time.
//  - The default pool's thread count comes from the AEROPACK_THREADS
//    environment variable (default: hardware concurrency);
//    set_thread_count() overrides at runtime and resizes the default pool
//    IN PLACE, so references from ThreadPool::instance() stay valid across
//    resizes for the whole process lifetime.
//  - Dispatch is granularity-aware (numeric/grain.hpp): every kernel
//    estimates its work (elements × cost class) and runs as a plain serial
//    loop below the calibrated fan-out threshold — small solves never touch
//    the pool, so threads cannot make them slower.
//  - Workers use a bounded spin-then-park wakeup protocol (per-worker state
//    word, exponential backoff to a condition variable), so a warm dispatch
//    costs ~100 ns instead of a futex wake chain.
//  - At n == 1 every entry point degrades to a plain serial loop — no pool,
//    no synchronization, exceptions propagate directly.
//  - Reductions (dot / norm2, and the fused CG kernels) accumulate
//    fixed-size chunks and sum the per-chunk partials in chunk order, so the
//    floating-point result is bit-identical for ANY thread count (including
//    the serial fallback).
//  - Exceptions thrown inside worker tasks are captured and rethrown on the
//    calling thread (first one wins).
#pragma once

#include <cstddef>
#include <functional>

#include "numeric/dense.hpp"
#include "numeric/grain.hpp"

namespace aeropack::numeric {

class ThreadPool;

namespace detail {
/// Pool bound to this thread by ExecutionContext::Use; null means the
/// process-wide default. Not touched directly — see current_pool() below.
extern thread_local ThreadPool* t_pool;
}  // namespace detail

/// Number of threads parallel kernels on this thread will use (>= 1): the
/// current pool's size when an ExecutionContext is bound, else the
/// process-wide setting.
std::size_t thread_count();

/// Override the process-wide thread count; 0 restores the default, re-reading
/// AEROPACK_THREADS (falling back to hardware concurrency). Must not be
/// called concurrently with running parallel kernels, and throws
/// std::logic_error when the calling thread is bound to an ExecutionContext
/// pool (size that context instead). The default pool resizes in place:
/// ThreadPool& references from instance() remain valid.
void set_thread_count(std::size_t n);

/// Static-partition pool: `threads - 1` persistent workers, the calling
/// thread participates as the last worker. No work stealing — tasks are
/// claimed from a shared atomic counter, which for the `parallel_for` use of
/// one chunk per thread amounts to a static partition. One pool, one driving
/// thread at a time; distinct pools may be driven concurrently.
///
/// Wakeup: workers spin briefly on an atomic job sequence (cpu-relax, then
/// yielding backoff), then park on a condition variable behind a per-worker
/// state word. run() only touches the mutex/cv when a worker is actually
/// parked, so back-to-back dispatches on a warm pool are lock-free.
class ThreadPool {
 public:
  /// Standalone pool with `threads` total participants (0 is clamped to 1,
  /// i.e. no workers — every run() is inline). Owned by ExecutionContext in
  /// normal use.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool sized by the set_thread_count() setting. The object
  /// lives (at one address) for the whole process: set_thread_count()
  /// resizes it in place, so holding the returned reference across a resize
  /// is safe. Drive it from one thread at a time.
  static ThreadPool& instance();

  std::size_t threads() const { return workers_ + 1; }

  /// Run fn(task_index) for every task_index in [0, n_tasks). Blocks until
  /// all tasks complete. The first exception thrown by a task is rethrown
  /// here. Serial (inline) when n_tasks <= 1 or the pool has no workers.
  void run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn);

 private:
  friend void set_thread_count(std::size_t);
  /// Join all workers and respawn `threads - 1` new ones. Callable only
  /// while no job is in flight on this pool.
  void resize(std::size_t threads);

  struct Impl;
  Impl* impl_;
  std::size_t workers_ = 0;
};

/// Pool the parallel kernels of this thread run on: the one bound by
/// ExecutionContext::Use, or the process default.
inline ThreadPool& current_pool() {
  return detail::t_pool != nullptr ? *detail::t_pool : ThreadPool::instance();
}

/// Bind `p` as this thread's current pool (nullptr restores the process
/// default); returns the previous binding. Prefer ExecutionContext::Use,
/// which pairs this with the matching obs-registry binding.
ThreadPool* exchange_current_pool(ThreadPool* p);

/// Split [begin, end) into one contiguous chunk per planned thread and run
/// fn(chunk_begin, chunk_end) on each. fn must only write disjoint state per
/// index; the partition boundaries carry no floating-point consequence for
/// elementwise kernels. `work` is the grain estimate gating fan-out: below
/// the calibrated threshold the whole range runs as one inline serial call.
/// The overloads without `work` assume one stream element per index — loops
/// whose body is heavier per index (FV cell fills, SpMV rows) must pass an
/// explicit estimate. The pool-less overloads run on current_pool().
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  grain::Work work);
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  grain::Work work);
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic chunked reductions. The chunk size is a compile-time
/// constant (not thread-dependent), so results are identical across thread
/// counts — and across pools — to the last bit.
double parallel_dot(ThreadPool& pool, const Vector& a, const Vector& b);
double parallel_dot(const Vector& a, const Vector& b);
double parallel_norm2(ThreadPool& pool, const Vector& v);
double parallel_norm2(const Vector& v);

/// y += alpha * x, partitioned across threads (elementwise, exact).
void parallel_axpy(ThreadPool& pool, double alpha, const Vector& x, Vector& y);
void parallel_axpy(double alpha, const Vector& x, Vector& y);

/// Fused single-pass CG kernels. Each replaces a sequence of axpy/hadamard
/// passes plus chunked reductions with one sweep over the operands, roughly
/// halving the memory traffic of a CG iteration. Per element the arithmetic
/// is identical to the unfused sequence, and the reductions use the same
/// fixed chunk size and in-order partial summation — so the results are
/// bit-identical to the separate kernels at every thread count.
struct CgFused {
  double rr = 0.0;  ///< <r, r> after the update
  double rz = 0.0;  ///< <r, z> after the update
};

/// x += alpha*p; r += (-alpha)*ap; z = inv_d ∘ r; returns {<r,r>, <r,z>}.
CgFused cg_fused_update(ThreadPool& pool, double alpha, const Vector& p,
                        const Vector& ap, const Vector& inv_d, Vector& x,
                        Vector& r, Vector& z);
CgFused cg_fused_update(double alpha, const Vector& p, const Vector& ap,
                        const Vector& inv_d, Vector& x, Vector& r, Vector& z);

/// z = d ∘ r; returns <r, z> (deterministic chunked reduction).
double fused_hadamard_dot(ThreadPool& pool, const Vector& d, const Vector& r,
                          Vector& z);
double fused_hadamard_dot(const Vector& d, const Vector& r, Vector& z);

}  // namespace aeropack::numeric
