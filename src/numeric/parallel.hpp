// Shared-memory parallel execution layer: a small static-partition thread
// pool plus deterministic data-parallel kernels for the iterative solvers.
//
// Design constraints (see DESIGN.md "Threading model"):
//  - Thread count comes from the AEROPACK_THREADS environment variable
//    (default: hardware concurrency); set_thread_count() overrides at runtime.
//  - At n == 1 every entry point degrades to a plain serial loop — no pool,
//    no synchronization, exceptions propagate directly.
//  - Reductions (dot / norm2) accumulate fixed-size chunks and sum the
//    per-chunk partials in chunk order, so the floating-point result is
//    bit-identical for ANY thread count (including the serial fallback).
//  - Exceptions thrown inside worker tasks are captured and rethrown on the
//    calling thread (first one wins).
#pragma once

#include <cstddef>
#include <functional>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

/// Number of threads parallel kernels will use (>= 1).
std::size_t thread_count();

/// Override the thread count; 0 restores the AEROPACK_THREADS / hardware
/// default. Must not be called concurrently with running parallel kernels.
/// Resizing replaces the process-wide pool: any ThreadPool& previously
/// obtained from ThreadPool::instance() is invalidated.
void set_thread_count(std::size_t n);

/// Static-partition pool: `thread_count() - 1` persistent workers, the
/// calling thread participates as the last worker. No work stealing — tasks
/// are claimed from a shared atomic counter, which for the `parallel_for`
/// use of one chunk per thread amounts to a static partition.
class ThreadPool {
 public:
  /// Process-wide pool sized by thread_count(); resized lazily on demand.
  /// Call only from the single thread that drives the parallel kernels
  /// (resizing is unsynchronized), and do not hold the returned reference
  /// across set_thread_count() — resizing replaces the pool.
  static ThreadPool& instance();

  std::size_t threads() const { return workers_ + 1; }

  /// Run fn(task_index) for every task_index in [0, n_tasks). Blocks until
  /// all tasks complete. The first exception thrown by a task is rethrown
  /// here. Serial (inline) when n_tasks <= 1 or the pool has no workers.
  void run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn);

  ~ThreadPool();

 private:
  explicit ThreadPool(std::size_t workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  friend void set_thread_count(std::size_t);
  struct Impl;
  Impl* impl_;
  std::size_t workers_ = 0;
};

/// Split [begin, end) into one contiguous chunk per thread and run
/// fn(chunk_begin, chunk_end) on each. fn must only write disjoint state per
/// index; the partition boundaries carry no floating-point consequence for
/// elementwise kernels. Serial loop when thread_count() == 1.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic chunked reductions. The chunk size is a compile-time
/// constant (not thread-dependent), so results are identical across thread
/// counts to the last bit.
double parallel_dot(const Vector& a, const Vector& b);
double parallel_norm2(const Vector& v);

/// y += alpha * x, partitioned across threads (elementwise, exact).
void parallel_axpy(double alpha, const Vector& x, Vector& y);

}  // namespace aeropack::numeric
