// Chebyshev polynomial acceleration of the Jacobi preconditioner.
//
// ChebyshevJacobi applies z = q(D^-1 A) D^-1 r where q is the degree-(m-1)
// Chebyshev polynomial whose residual 1 - lambda q(lambda) is equioscillating
// on the eigenvalue interval [lambda_min, lambda_max] of the Jacobi-scaled
// operator B = D^-1 A. Used as the CG preconditioner it behaves like m
// Jacobi-CG iterations per CG iteration at the price of m-1 extra SpMVs —
// trading global reductions (latency-bound) for streaming work
// (bandwidth-bound) and cutting the iteration count at 32^3-64^3 FV grids.
//
// B is similar to the symmetric D^-1/2 A D^-1/2, so q(B) D^-1 is symmetric;
// it is positive definite as long as [lambda_min, lambda_max] covers the
// true spectrum (|1 - lambda q| < 1 there implies q > 0). The bounds from
// estimate_jacobi_spectrum() carry safety margins for exactly that reason,
// and callers must fall back to plain Jacobi when the estimate degenerates
// (see SpectralBounds::usable()).
//
// Determinism: apply() is a fixed sequence of SpMVs and elementwise sweeps,
// and the bound estimate is a Gershgorin scan plus a fixed-iteration power
// method from a fixed start vector — every operation rides the deterministic
// parallel layer, so results are bit-identical across thread counts and
// pools.
#pragma once

#include <cstddef>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::numeric {

class ThreadPool;

/// Eigenvalue bounds of the Jacobi-preconditioned operator D^-1 A.
struct SpectralBounds {
  double lambda_min = 0.0;
  double lambda_max = 0.0;

  /// True when the estimate brackets a usable SPD interval.
  bool usable() const {
    return lambda_min > 0.0 && lambda_max > lambda_min;
  }
};

/// Estimate [lambda_min, lambda_max] of D^-1 A deterministically.
/// lambda_max is the Gershgorin row-sum bound max_i sum_j |a_ij|/|a_ii| — a
/// guaranteed cover (power iteration cannot reach the clustered top of
/// Poisson-like spectra, and an undershot upper bound makes the polynomial
/// amplify the missed modes). lambda_min comes from `iterations` fixed power
/// steps on the shifted operator s*I - D^-1 A from the all-ones vector
/// (narrowed by 5%, clamped into [lambda_max/64, lambda_max)). Costs
/// `iterations` SpMVs — negligible against the solve it accelerates.
SpectralBounds estimate_jacobi_spectrum(ThreadPool& pool, const CsrMatrix& a,
                                        const Vector& inv_d,
                                        std::size_t iterations = 10);

/// Fixed-degree Chebyshev smoother on the Jacobi-preconditioned operator,
/// in the standard three-term form (theta/delta center/half-width). One
/// apply() costs degree-1 SpMVs plus degree elementwise sweeps. Degree 1
/// reproduces scaled Jacobi; callers gate on degree >= 2.
class ChebyshevJacobi {
 public:
  /// `a` and `inv_d` must outlive the object; `bounds` must be usable().
  ChebyshevJacobi(const CsrMatrix& a, const Vector& inv_d,
                  const SpectralBounds& bounds, std::size_t degree);

  std::size_t degree() const { return degree_; }

  /// z = q(D^-1 A) D^-1 r. `jacobi_r` is the precomputed D^-1 r (the fused
  /// CG update already produces it, saving one sweep); z is resized. r, and
  /// jacobi_r must not alias z.
  void apply(ThreadPool& pool, const Vector& r, const Vector& jacobi_r,
             Vector& z);

 private:
  const CsrMatrix* a_;
  const Vector* inv_d_;
  std::size_t degree_;
  double theta_, delta_, sigma1_;
  Vector d_, az_;  // iteration scratch, reused across apply() calls
};

}  // namespace aeropack::numeric
