#include "numeric/polyfit.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/solve_dense.hpp"
#include "numeric/stats.hpp"

namespace aeropack::numeric {

double PolyFit::operator()(double x) const {
  const double t = x - x_offset;
  double acc = 0.0;
  for (std::size_t i = coefficients.size(); i-- > 0;) acc = acc * t + coefficients[i];
  return acc;
}

double PolyFit::derivative(double x) const {
  const double t = x - x_offset;
  double acc = 0.0;
  for (std::size_t i = coefficients.size(); i-- > 1;)
    acc = acc * t + static_cast<double>(i) * coefficients[i];
  return acc;
}

PolyFit polyfit(const Vector& x, const Vector& y, std::size_t degree) {
  if (x.size() != y.size()) throw std::invalid_argument("polyfit: size mismatch");
  if (x.size() <= degree) throw std::invalid_argument("polyfit: not enough points");

  PolyFit fit;
  fit.x_offset = mean(x);
  const std::size_t n = x.size();
  const std::size_t m = degree + 1;

  // Normal equations on the centered Vandermonde system.
  Matrix ata(m, m);
  Vector aty(m, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double t = x[s] - fit.x_offset;
    Vector row(m);
    double p = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = p;
      p *= t;
    }
    for (std::size_t i = 0; i < m; ++i) {
      aty[i] += row[i] * y[s];
      for (std::size_t j = 0; j < m; ++j) ata(i, j) += row[i] * row[j];
    }
  }
  fit.coefficients = solve(ata, aty);

  // Residual statistics.
  double ss_res = 0.0, ss_tot = 0.0;
  const double y_mean = mean(y);
  for (std::size_t s = 0; s < n; ++s) {
    const double e = y[s] - fit(x[s]);
    ss_res += e * e;
    ss_tot += (y[s] - y_mean) * (y[s] - y_mean);
  }
  fit.rms_residual = std::sqrt(ss_res / static_cast<double>(n));
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

void linear_fit(const Vector& x, const Vector& y, double& slope, double& intercept) {
  const PolyFit fit = polyfit(x, y, 1);
  slope = fit.coefficients[1];
  intercept = fit.coefficients[0] - fit.coefficients[1] * fit.x_offset;
}

}  // namespace aeropack::numeric
