#include "numeric/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "numeric/solve_dense.hpp"

namespace aeropack::numeric {

EigenResult eigen_symmetric(const Matrix& a, double symmetry_tol) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: matrix must be square");
  const double scale = std::max(a.norm(), 1.0);
  if (a.asymmetry() > symmetry_tol * scale)
    throw std::invalid_argument("eigen_symmetric: matrix not symmetric");

  const std::size_t n = a.rows();
  Matrix d = a;
  d.symmetrize();
  Matrix v = Matrix::identity(n);

  constexpr std::size_t kMaxSweeps = 100;
  std::size_t sweep = 0;
  for (; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    if (std::sqrt(off) <= 1e-14 * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,theta) on both sides of D and accumulate V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenResult res;
  res.sweeps = sweep;
  res.eigenvalues.resize(n);
  res.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.eigenvalues[j] = d(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, j) = v(i, order[j]);
  }
  return res;
}

EigenResult eigen_generalized(const Matrix& k, const Matrix& m) {
  if (!k.square() || !m.square() || k.rows() != m.rows())
    throw std::invalid_argument("eigen_generalized: shape mismatch");
  const std::size_t n = k.rows();
  const CholeskyFactorization chol(m);

  // A = L^-1 K L^-T, built column by column.
  Matrix a(n, n);
  Vector col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = k(i, j);
    const Vector y = chol.solve_lower(col);
    for (std::size_t i = 0; i < n; ++i) a(i, j) = y[i];
  }
  // Now apply L^-1 from the right: A <- A L^-T, i.e. rows solved against L.
  Vector row(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row[j] = a(i, j);
    const Vector y = chol.solve_lower(row);  // (L^-T applied right == L^-1 on the row)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = y[j];
  }
  a.symmetrize();

  EigenResult std_res = eigen_symmetric(a, 1e-6);

  // Back-transform eigenvectors: phi = L^-T y; they come out M-orthonormal.
  EigenResult res;
  res.sweeps = std_res.sweeps;
  res.eigenvalues = std_res.eigenvalues;
  res.eigenvectors = Matrix(n, n);
  Vector y(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) y[i] = std_res.eigenvectors(i, j);
    const Vector phi = chol.solve_lower_transposed(y);
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, j) = phi[i];
  }
  return res;
}

Vector natural_frequencies_hz(const EigenResult& modes) {
  Vector f(modes.eigenvalues.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double lam = std::max(modes.eigenvalues[i], 0.0);
    f[i] = std::sqrt(lam) / (2.0 * std::numbers::pi);
  }
  return f;
}

}  // namespace aeropack::numeric
