#include "numeric/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "numeric/parallel.hpp"
#include "numeric/solve_dense.hpp"
#include "numeric/sparse_cholesky.hpp"
#include "obs/registry.hpp"

namespace aeropack::numeric {

EigenResult eigen_symmetric(const Matrix& a, double symmetry_tol) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: matrix must be square");
  const double scale = std::max(a.norm(), 1.0);
  if (a.asymmetry() > symmetry_tol * scale)
    throw std::invalid_argument("eigen_symmetric: matrix not symmetric");

  const std::size_t n = a.rows();
  Matrix d = a;
  d.symmetrize();
  Matrix v = Matrix::identity(n);

  constexpr std::size_t kMaxSweeps = 100;
  std::size_t sweep = 0;
  for (; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    if (std::sqrt(off) <= 1e-14 * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,theta) on both sides of D and accumulate V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenResult res;
  res.sweeps = sweep;
  res.eigenvalues.resize(n);
  res.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.eigenvalues[j] = d(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, j) = v(i, order[j]);
  }
  return res;
}

EigenResult eigen_generalized(const Matrix& k, const Matrix& m) {
  if (!k.square() || !m.square() || k.rows() != m.rows())
    throw std::invalid_argument("eigen_generalized: shape mismatch");
  const std::size_t n = k.rows();
  std::unique_ptr<CholeskyFactorization> chol_ptr;
  try {
    chol_ptr = std::make_unique<CholeskyFactorization>(m);
  } catch (const std::domain_error&) {
    throw std::domain_error(
        "eigen_generalized: mass matrix is not positive definite (indefinite or singular M)");
  }
  const CholeskyFactorization& chol = *chol_ptr;

  // A = L^-1 K L^-T, built column by column.
  Matrix a(n, n);
  Vector col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = k(i, j);
    const Vector y = chol.solve_lower(col);
    for (std::size_t i = 0; i < n; ++i) a(i, j) = y[i];
  }
  // Now apply L^-1 from the right: A <- A L^-T, i.e. rows solved against L.
  Vector row(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row[j] = a(i, j);
    const Vector y = chol.solve_lower(row);  // (L^-T applied right == L^-1 on the row)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = y[j];
  }
  a.symmetrize();

  EigenResult std_res = eigen_symmetric(a, 1e-6);

  // Back-transform eigenvectors: phi = L^-T y; they come out M-orthonormal.
  EigenResult res;
  res.sweeps = std_res.sweeps;
  res.eigenvalues = std_res.eigenvalues;
  res.eigenvectors = Matrix(n, n);
  Vector y(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) y[i] = std_res.eigenvectors(i, j);
    const Vector phi = chol.solve_lower_transposed(y);
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, j) = phi[i];
  }
  return res;
}

Vector ShiftedFactorization::solve(const Vector& b) const {
  if (factor) return factor->solve(b);
  IterativeOptions io;
  io.tolerance = 1e-13;
  io.max_iterations = std::max<std::size_t>(10000, 20 * b.size());
  IterativeResult res = conjugate_gradient(matrix, b, io);
  if (!res.converged)
    throw std::domain_error(
        "eigen_generalized_sparse: CG fallback did not converge on the shifted operator");
  return std::move(res.x);
}

std::size_t ShiftedFactorization::cost_bytes() const {
  std::size_t bytes = matrix.values().size() * (sizeof(double) + sizeof(std::size_t)) +
                      matrix.row_ptr().size() * sizeof(std::size_t);
  if (factor) bytes += factor->envelope_size() * sizeof(double);
  return bytes;
}

ShiftedFactorization factorize_shift_invert(const CsrMatrix& k, const CsrMatrix& m,
                                            const SparseEigenOptions& opts) {
  std::vector<double> shifts{opts.shift};
  if (opts.shift == 0.0) {
    const Vector kd = k.diagonal();
    const Vector md = m.diagonal();
    double scale = 0.0;
    for (std::size_t i = 0; i < kd.size(); ++i)
      if (md[i] > 0.0) scale = std::max(scale, kd[i] / md[i]);
    if (scale <= 0.0) scale = 1.0;
    for (const double f : {1e-2, 1e-1, 1.0}) shifts.push_back(-f * scale);
  }
  static thread_local obs::CounterHandle retries{"numeric.eigen.shift_retries"};
  static thread_local obs::CounterHandle fallbacks{"numeric.eigen.cg_fallbacks"};
  for (const double sigma : shifts) {
    ShiftedFactorization op;
    op.sigma = sigma;
    op.matrix = (sigma == 0.0) ? k : add_scaled(k, -sigma, m);
    try {
      op.factor = std::make_shared<const SkylineCholesky>(op.matrix, opts.max_envelope);
      return op;
    } catch (const std::length_error&) {
      fallbacks.add();
      return op;  // envelope over budget: iterative fallback on this shift
    } catch (const std::domain_error&) {
      retries.add();
      continue;  // indefinite at this shift, try a more negative one
    }
  }
  throw std::domain_error(
      "eigen_generalized_sparse: K - sigma*M not positive definite for any trial shift "
      "(is the mass matrix positive definite?)");
}

namespace {

/// Deterministic start block for the subspace iteration (Bathe's recipe):
/// column 0 carries the mass/stiffness diagonal ratios, the middle columns
/// are unit vectors at the largest-ratio DOFs, the last column is filled
/// from a fixed-seed LCG so the block spans a generic subspace.
std::vector<Vector> starting_block(const CsrMatrix& k, const CsrMatrix& m, std::size_t q) {
  const std::size_t n = k.rows();
  const Vector kd = k.diagonal();
  const Vector md = m.diagonal();
  Vector ratio(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) ratio[i] = (kd[i] > 0.0) ? md[i] / kd[i] : 0.0;

  std::vector<Vector> x(q, Vector(n, 0.0));
  x[0] = ratio;
  if (parallel_norm2(x[0]) == 0.0) x[0].assign(n, 1.0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ratio[a] > ratio[b]; });
  for (std::size_t j = 1; j + 1 < q; ++j) x[j][order[(j - 1) % n]] = 1.0;

  if (q > 1) {
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      x[q - 1][i] = static_cast<double>(state >> 11) /
                        static_cast<double>(std::uint64_t{1} << 53) -
                    0.5;
    }
  }
  return x;
}

void check_sparse_eigen_shapes(const CsrMatrix& k, const CsrMatrix& m, std::size_t n_modes) {
  if (k.rows() != k.cols() || m.rows() != m.cols() || k.rows() != m.rows())
    throw std::invalid_argument("eigen_generalized_sparse: shape mismatch");
  const std::size_t n = k.rows();
  if (n == 0 || n_modes == 0 || n_modes > n)
    throw std::invalid_argument("eigen_generalized_sparse: invalid mode count");
}

/// The subspace iteration itself, on an already-built shift-invert operator.
/// No instrumentation of its own beyond the per-sweep counter: the public
/// overloads own the solve counter and timer span so the factorizing and
/// cache-hit paths report identically shaped telemetry.
EigenResult run_subspace_iteration(const CsrMatrix& k, const CsrMatrix& m,
                                   std::size_t n_modes, const SparseEigenOptions& opts,
                                   const ShiftedFactorization& op) {
  const std::size_t n = k.rows();
  static thread_local obs::CounterHandle sweeps{"numeric.eigen.subspace_iterations"};

  const std::size_t q =
      std::min(n, std::max(2 * n_modes, n_modes + opts.subspace_extra));

  std::vector<Vector> x = starting_block(k, m, q);
  std::vector<Vector> y(q), ky(q), my(q);
  Vector prev(n_modes, 0.0);
  EigenResult ritz;  // q x q Rayleigh-Ritz solution of the current subspace

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    sweeps.add();
    // Inverse-iterate the block: y_j = (K - sigma*M)^-1 (M x_j).
    Vector rhs;
    for (std::size_t j = 0; j < q; ++j) {
      m.multiply(x[j], rhs);
      y[j] = op.solve(rhs);
    }
    // Project onto the subspace: Kr = Y^T K Y, Mr = Y^T M Y (with the
    // *unshifted* K so the Ritz values are the physical eigenvalues).
    for (std::size_t j = 0; j < q; ++j) {
      ky[j] = k.multiply(y[j]);
      my[j] = m.multiply(y[j]);
    }
    Matrix kr(q, q), mr(q, q);
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = i; j < q; ++j) {
        kr(i, j) = kr(j, i) = parallel_dot(y[i], ky[j]);
        mr(i, j) = mr(j, i) = parallel_dot(y[i], my[j]);
      }
    try {
      ritz = eigen_generalized(kr, mr);
    } catch (const std::domain_error&) {
      throw std::domain_error(
          "eigen_generalized_sparse: Rayleigh-Ritz mass projection lost rank "
          "(mass matrix indefinite or start block degenerate)");
    }
    // X <- Y * Q; since Mr = Y^T M Y and Q is Mr-orthonormal, the new block
    // is M-orthonormal, which keeps the iteration well conditioned.
    for (std::size_t j = 0; j < q; ++j) {
      Vector& col = x[j];
      col.assign(n, 0.0);
      for (std::size_t s = 0; s < q; ++s) {
        const double w = ritz.eigenvectors(s, j);
        if (w != 0.0) parallel_axpy(w, y[s], col);
      }
    }
    double drift = 0.0;
    for (std::size_t j = 0; j < n_modes; ++j) {
      const double lam = ritz.eigenvalues[j];
      drift = std::max(drift, std::fabs(lam - prev[j]) / std::max(std::fabs(lam), 1e-30));
      prev[j] = lam;
    }
    if (it > 0 && drift <= opts.tolerance) break;
  }

  EigenResult res;
  res.sweeps = ritz.sweeps;
  res.eigenvalues.assign(ritz.eigenvalues.begin(),
                         ritz.eigenvalues.begin() + static_cast<std::ptrdiff_t>(n_modes));
  res.eigenvectors = Matrix(n, n_modes);
  for (std::size_t j = 0; j < n_modes; ++j)
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, j) = x[j][i];
  return res;
}

}  // namespace

EigenResult eigen_generalized_sparse(const CsrMatrix& k, const CsrMatrix& m,
                                     std::size_t n_modes, const SparseEigenOptions& opts) {
  check_sparse_eigen_shapes(k, m, n_modes);
  static thread_local obs::CounterHandle solves{"numeric.eigen.sparse_solves"};
  obs::ScopedTimer span("numeric.eigen_sparse");
  solves.add();
  const ShiftedFactorization op = factorize_shift_invert(k, m, opts);
  return run_subspace_iteration(k, m, n_modes, opts, op);
}

EigenResult eigen_generalized_sparse(const CsrMatrix& k, const CsrMatrix& m,
                                     std::size_t n_modes, const SparseEigenOptions& opts,
                                     const ShiftedFactorization& op) {
  check_sparse_eigen_shapes(k, m, n_modes);
  if (op.matrix.rows() != k.rows() || op.matrix.cols() != k.cols())
    throw std::invalid_argument(
        "eigen_generalized_sparse: shifted factorization does not match the pencil size");
  static thread_local obs::CounterHandle solves{"numeric.eigen.sparse_solves"};
  obs::ScopedTimer span("numeric.eigen_sparse");
  solves.add();
  return run_subspace_iteration(k, m, n_modes, opts, op);
}

EigenResult eigen_generalized_sparse(ThreadPool& pool, const CsrMatrix& k,
                                     const CsrMatrix& m, std::size_t n_modes,
                                     const SparseEigenOptions& opts) {
  // Bind `pool` as the calling thread's current pool for the duration, so
  // every kernel in the iteration (SpMV, dots, axpys, the CG fallback) lands
  // on it without threading a handle through each call site.
  ThreadPool* const prev = exchange_current_pool(&pool);
  try {
    EigenResult res = eigen_generalized_sparse(k, m, n_modes, opts);
    exchange_current_pool(prev);
    return res;
  } catch (...) {
    exchange_current_pool(prev);
    throw;
  }
}

Vector natural_frequencies_hz(const Vector& eigenvalues) {
  double lam_max = 0.0;
  for (const double lam : eigenvalues) lam_max = std::max(lam_max, lam);
  const double zero_tol = 1e-8 * std::max(lam_max, 1.0);
  Vector f(eigenvalues.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double lam = eigenvalues[i];
    if (lam < -zero_tol)
      throw std::domain_error(
          "natural_frequencies_hz: negative eigenvalue (indefinite stiffness/mass pencil)");
    f[i] = std::sqrt(std::max(lam, 0.0)) / (2.0 * std::numbers::pi);
  }
  return f;
}

Vector natural_frequencies_hz(const EigenResult& modes) {
  return natural_frequencies_hz(modes.eigenvalues);
}

}  // namespace aeropack::numeric
