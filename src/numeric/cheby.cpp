#include "numeric/cheby.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/parallel.hpp"

namespace aeropack::numeric {

namespace {

/// One application of B = D^-1 A: out = inv_d ∘ (A v). `tmp` holds A v.
void apply_jacobi_operator(ThreadPool& pool, const CsrMatrix& a,
                           const Vector& inv_d, const Vector& v, Vector& tmp,
                           Vector& out) {
  a.multiply(pool, v, tmp);
  out.resize(tmp.size());
  parallel_for(pool, 0, tmp.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = inv_d[i] * tmp[i];
  });
}

}  // namespace

SpectralBounds estimate_jacobi_spectrum(ThreadPool& pool, const CsrMatrix& a,
                                        const Vector& inv_d,
                                        std::size_t iterations) {
  if (a.rows() != a.cols() || inv_d.size() != a.rows())
    throw std::invalid_argument("estimate_jacobi_spectrum: shape mismatch");
  const std::size_t n = a.rows();
  SpectralBounds bounds;
  if (n == 0) return bounds;

  // Upper bound by Gershgorin row sums of B = D^-1 A: lambda_max <=
  // max_i sum_j |a_ij| / |a_ii|. A guaranteed cover is non-negotiable here:
  // eigenvalues above lambda_max are AMPLIFIED by the polynomial (the
  // preconditioner can even go indefinite), while eigenvalues below
  // lambda_min merely converge at the unaccelerated rate. Power iteration
  // is useless for this bound — the top of a Poisson-like spectrum is
  // clustered, so it underestimates for any affordable iteration count.
  const std::vector<std::size_t>& row_ptr = a.row_ptr();
  const std::vector<double>& values = a.values();
  double gersh = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      row += std::fabs(values[k]);
    row *= std::fabs(inv_d[i]);
    if (row > gersh) gersh = row;
  }
  if (!(gersh > 0.0)) return bounds;  // degenerate matrix: caller falls back
  bounds.lambda_max = gersh;

  // Lower bound by power iteration on the flipped operator s*I - B, whose
  // dominant eigenvalue is s - lambda_min. The estimate only needs to land
  // inside the low cluster (see above), so a fixed small iteration count
  // from the all-ones vector — the smooth, low-eigenvalue direction — is
  // enough, and deterministic.
  const double s = gersh;
  Vector v(n, 1.0), bv(n), tmp(n);
  const auto normalize_into = [&](const Vector& src, double nrm, Vector& dst) {
    const double inv = 1.0 / nrm;
    parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) dst[i] = inv * src[i];
    });
  };
  normalize_into(v, parallel_norm2(pool, v), v);
  double mu = 0.0;
  for (std::size_t k = 0; k < iterations; ++k) {
    a.multiply(pool, v, tmp);
    parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) bv[i] = s * v[i] - inv_d[i] * tmp[i];
    });
    mu = parallel_norm2(pool, bv);
    if (mu == 0.0) break;
    normalize_into(bv, mu, v);
  }
  double lo = 0.95 * (s - mu);
  // ||.||-based estimates of the flipped operator can overshoot s (B is
  // only similar to symmetric, not symmetric); clamp into a usable interval
  // rather than losing the whole acceleration.
  const double floor_ = bounds.lambda_max / 64.0;
  if (!(lo > floor_)) lo = floor_;
  if (lo >= bounds.lambda_max) lo = floor_;
  bounds.lambda_min = lo;
  return bounds;
}

ChebyshevJacobi::ChebyshevJacobi(const CsrMatrix& a, const Vector& inv_d,
                                 const SpectralBounds& bounds,
                                 std::size_t degree)
    : a_(&a), inv_d_(&inv_d), degree_(degree) {
  if (!bounds.usable())
    throw std::invalid_argument("ChebyshevJacobi: unusable spectral bounds");
  if (degree_ < 1) throw std::invalid_argument("ChebyshevJacobi: degree < 1");
  theta_ = 0.5 * (bounds.lambda_max + bounds.lambda_min);
  delta_ = 0.5 * (bounds.lambda_max - bounds.lambda_min);
  sigma1_ = theta_ / delta_;
}

void ChebyshevJacobi::apply(ThreadPool& pool, const Vector& r,
                            const Vector& jacobi_r, Vector& z) {
  const std::size_t n = jacobi_r.size();
  const Vector& inv_d = *inv_d_;
  z.resize(n);
  d_.resize(n);
  // First term: z = d = (1/theta) D^-1 r.
  const double inv_theta = 1.0 / theta_;
  parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double di = inv_theta * jacobi_r[i];
      d_[i] = di;
      z[i] = di;
    }
  });
  double rho = 1.0 / sigma1_;
  for (std::size_t k = 2; k <= degree_; ++k) {
    a_->multiply(pool, z, az_);
    const double rho_next = 1.0 / (2.0 * sigma1_ - rho);
    const double c_d = rho_next * rho;
    const double c_w = 2.0 * rho_next / delta_;
    parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const double w = inv_d[i] * (r[i] - az_[i]);
        const double di = c_d * d_[i] + c_w * w;
        d_[i] = di;
        z[i] += di;
      }
    });
    rho = rho_next;
  }
}

}  // namespace aeropack::numeric
