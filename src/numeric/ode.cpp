#include "numeric/ode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/solve_dense.hpp"

namespace aeropack::numeric {

OdeTrace rk4(const OdeRhs& f, const Vector& y0, double t0, double t1, std::size_t n_steps) {
  if (n_steps == 0) throw std::invalid_argument("rk4: n_steps must be > 0");
  if (t1 <= t0) throw std::invalid_argument("rk4: t1 must exceed t0");
  const double h = (t1 - t0) / static_cast<double>(n_steps);
  OdeTrace trace;
  trace.times.reserve(n_steps + 1);
  trace.states.reserve(n_steps + 1);
  Vector y = y0;
  double t = t0;
  trace.times.push_back(t);
  trace.states.push_back(y);
  for (std::size_t s = 0; s < n_steps; ++s) {
    const Vector k1 = f(t, y);
    Vector tmp = y;
    axpy(0.5 * h, k1, tmp);
    const Vector k2 = f(t + 0.5 * h, tmp);
    tmp = y;
    axpy(0.5 * h, k2, tmp);
    const Vector k3 = f(t + 0.5 * h, tmp);
    tmp = y;
    axpy(h, k3, tmp);
    const Vector k4 = f(t + h, tmp);
    for (std::size_t i = 0; i < y.size(); ++i)
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    t = t0 + h * static_cast<double>(s + 1);
    trace.times.push_back(t);
    trace.states.push_back(y);
  }
  return trace;
}

OdeTrace rk45(const OdeRhs& f, const Vector& y0, double t0, double t1, const Rk45Options& opts) {
  if (t1 <= t0) throw std::invalid_argument("rk45: t1 must exceed t0");
  // Cash-Karp coefficients.
  static constexpr double a2 = 0.2, a3 = 0.3, a4 = 0.6, a5 = 1.0, a6 = 0.875;
  static constexpr double b21 = 0.2;
  static constexpr double b31 = 3.0 / 40.0, b32 = 9.0 / 40.0;
  static constexpr double b41 = 0.3, b42 = -0.9, b43 = 1.2;
  static constexpr double b51 = -11.0 / 54.0, b52 = 2.5, b53 = -70.0 / 27.0, b54 = 35.0 / 27.0;
  static constexpr double b61 = 1631.0 / 55296.0, b62 = 175.0 / 512.0, b63 = 575.0 / 13824.0,
                          b64 = 44275.0 / 110592.0, b65 = 253.0 / 4096.0;
  static constexpr double c1 = 37.0 / 378.0, c3 = 250.0 / 621.0, c4 = 125.0 / 594.0,
                          c6 = 512.0 / 1771.0;
  static constexpr double d1 = c1 - 2825.0 / 27648.0, d3 = c3 - 18575.0 / 48384.0,
                          d4 = c4 - 13525.0 / 55296.0, d5 = -277.0 / 14336.0,
                          d6 = c6 - 0.25;

  OdeTrace trace;
  Vector y = y0;
  double t = t0;
  double h = opts.initial_step;
  trace.times.push_back(t);
  trace.states.push_back(y);
  const std::size_t n = y.size();

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    if (t >= t1) return trace;
    h = std::min(h, t1 - t);

    const Vector k1 = f(t, y);
    Vector tmp(n);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * b21 * k1[i];
    const Vector k2 = f(t + a2 * h, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * (b31 * k1[i] + b32 * k2[i]);
    const Vector k3 = f(t + a3 * h, tmp);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    const Vector k4 = f(t + a4 * h, tmp);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    const Vector k5 = f(t + a5 * h, tmp);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] + b64 * k4[i] + b65 * k5[i]);
    const Vector k6 = f(t + a6 * h, tmp);

    double err = 0.0;
    Vector ynew(n);
    for (std::size_t i = 0; i < n; ++i) {
      ynew[i] = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c6 * k6[i]);
      const double ei =
          h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i] + d6 * k6[i]);
      const double scale = opts.abs_tol + opts.rel_tol * std::max(std::fabs(y[i]), std::fabs(ynew[i]));
      err = std::max(err, std::fabs(ei) / scale);
    }

    if (err <= 1.0) {
      t += h;
      y = std::move(ynew);
      trace.times.push_back(t);
      trace.states.push_back(y);
      const double grow = (err > 0.0) ? 0.9 * std::pow(err, -0.2) : 5.0;
      h *= std::clamp(grow, 0.2, 5.0);
    } else {
      h *= std::clamp(0.9 * std::pow(err, -0.25), 0.1, 0.9);
      if (h < opts.min_step) throw std::runtime_error("rk45: step size underflow");
    }
  }
  throw std::runtime_error("rk45: max step budget exhausted");
}

NewmarkTrace newmark(const Matrix& m, const Matrix& c, const Matrix& k,
                     const std::function<Vector(double)>& force, const Vector& x0,
                     const Vector& v0, double t0, double t1, std::size_t n_steps,
                     const NewmarkOptions& opts) {
  const std::size_t n = x0.size();
  if (!m.square() || m.rows() != n || c.rows() != n || k.rows() != n || v0.size() != n)
    throw std::invalid_argument("newmark: shape mismatch");
  if (n_steps == 0 || t1 <= t0) throw std::invalid_argument("newmark: invalid time span");
  const double dt = (t1 - t0) / static_cast<double>(n_steps);
  const double beta = opts.beta;
  const double gamma = opts.gamma;

  // Initial acceleration from the equation of motion.
  Vector f0 = force(t0);
  Vector rhs0 = f0 - (c * v0) - (k * x0);
  LuFactorization mlu(m);
  Vector a = mlu.solve(rhs0);

  // Effective stiffness (constant for linear problems).
  Matrix keff = k;
  {
    Matrix tmp = m;
    tmp *= 1.0 / (beta * dt * dt);
    keff += tmp;
    Matrix tmpc = c;
    tmpc *= gamma / (beta * dt);
    keff += tmpc;
  }
  LuFactorization klu(keff);

  NewmarkTrace trace;
  trace.times.push_back(t0);
  trace.displacement.push_back(x0);
  trace.velocity.push_back(v0);
  trace.acceleration.push_back(a);

  Vector x = x0, v = v0;
  for (std::size_t s = 1; s <= n_steps; ++s) {
    const double t = t0 + dt * static_cast<double>(s);
    const Vector ft = force(t);
    // Predictors.
    Vector xm(n), vm(n);
    for (std::size_t i = 0; i < n; ++i) {
      xm[i] = x[i] / (beta * dt * dt) + v[i] / (beta * dt) + (0.5 / beta - 1.0) * a[i];
      vm[i] = gamma / (beta * dt) * x[i] + (gamma / beta - 1.0) * v[i] +
              dt * (gamma / (2.0 * beta) - 1.0) * a[i];
    }
    Vector rhs = ft + (m * xm) + (c * vm);
    Vector xnew = klu.solve(rhs);
    Vector anew(n), vnew(n);
    for (std::size_t i = 0; i < n; ++i) {
      anew[i] = (xnew[i] - x[i]) / (beta * dt * dt) - v[i] / (beta * dt) -
                (0.5 / beta - 1.0) * a[i];
      vnew[i] = v[i] + dt * ((1.0 - gamma) * a[i] + gamma * anew[i]);
    }
    x = std::move(xnew);
    v = std::move(vnew);
    a = std::move(anew);
    trace.times.push_back(t);
    trace.displacement.push_back(x);
    trace.velocity.push_back(v);
    trace.acceleration.push_back(a);
  }
  return trace;
}

}  // namespace aeropack::numeric
