// Sparse matrix support (triplet builder + CSR) and iterative Krylov solvers.
//
// The finite-volume thermal solver and the larger FEM meshes assemble into
// SparseBuilder, convert to CSR once, then solve with conjugate gradients.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

class CsrMatrix;
class ThreadPool;

/// Coordinate-format accumulator; duplicate (i,j) entries are summed on build.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols);

  /// Pre-size the triplet buffer.
  void reserve(std::size_t entries) { entries_.reserve(entries); }

  void add(std::size_t i, std::size_t j, double v);
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return entries_.size(); }

  CsrMatrix build() const;

 private:
  struct Entry {
    std::size_t i, j;
    double v;
  };
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix (immutable structure, mutable values).
///
/// Invariant (checked at construction): column indices are strictly
/// increasing within every row. SparseBuilder::build() guarantees this;
/// at() exploits it with a binary search.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x. Row-partitioned across threads (see numeric/parallel.hpp);
  /// each row's accumulation order is fixed, so the result is identical
  /// for every thread count. The pool-less overloads run on the calling
  /// thread's current pool.
  Vector multiply(const Vector& x) const;
  Vector multiply(ThreadPool& pool, const Vector& x) const;
  /// y = A x without allocating (y is resized to rows()). y must not alias
  /// x: y is zeroed up front, before other threads' row chunks read x.
  void multiply(const Vector& x, Vector& y) const;
  void multiply(ThreadPool& pool, const Vector& x, Vector& y) const;
  /// Extract the diagonal (missing entries are 0).
  Vector diagonal() const;
  /// Max |a_ij - a_ji|; O(nnz log nnz) via lookup. For tests.
  double asymmetry() const;
  Matrix to_dense() const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Value at (i, j), 0 if not stored.
  double at(std::size_t i, std::size_t j) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// c = a + alpha * b (structures merged row-wise; both operands must share
/// dimensions). Used to form the shifted operator K - sigma*M for the
/// shift-invert eigensolver without densifying.
CsrMatrix add_scaled(const CsrMatrix& a, double alpha, const CsrMatrix& b);

struct IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final ||b - Ax|| / ||b||
  bool converged = false;
};

struct IterativeOptions {
  std::size_t max_iterations = 10000;
  double tolerance = 1e-10;  ///< relative residual target
  /// Chebyshev polynomial degree for the CG preconditioner (numeric/cheby.hpp):
  /// 0 or 1 keeps plain Jacobi (the default — existing goldens and counter
  /// expectations assume it); >= 2 spends degree-1 extra SpMVs per iteration
  /// to cut the iteration count on large grids. Falls back to Jacobi when the
  /// spectral-bound estimate degenerates.
  std::size_t chebyshev_degree = 0;
};

/// Preconditioned (Jacobi) conjugate gradient for SPD systems.
///
/// `x0` (optional) warm-starts the iteration; the Picard/transient loops of
/// the FV thermal solver pass the previous pass/step solution, cutting the
/// inner iteration count sharply. SpMV and all reductions run on the
/// parallel layer with deterministic chunked partial sums, so the returned
/// solution is bit-identical across thread counts — and across pools. The
/// pool-less overload runs on the calling thread's current pool.
IterativeResult conjugate_gradient(const CsrMatrix& a, const Vector& b,
                                   const IterativeOptions& opts = {},
                                   const Vector* x0 = nullptr);
IterativeResult conjugate_gradient(ThreadPool& pool, const CsrMatrix& a, const Vector& b,
                                   const IterativeOptions& opts = {},
                                   const Vector* x0 = nullptr);

/// BiCGSTAB for general nonsymmetric systems (Jacobi preconditioned).
IterativeResult bicgstab(const CsrMatrix& a, const Vector& b, const IterativeOptions& opts = {});

}  // namespace aeropack::numeric
