// Structural content hashing for shareable solver artifacts.
//
// The scenario service (core::ArtifactCache) keys immutable artifacts — FV
// assemblies, skyline factorizations, compact models — by a hash of every
// input the artifact depends on. Hash-equality must imply that rebuilding
// the artifact would reproduce it bit-for-bit, so the hasher folds in the
// *exact* IEEE-754 bit pattern of every double (no rounding, no
// normalization: +0.0 and -0.0 hash differently, as they must — they can
// produce different downstream bits). FNV-1a over the byte stream keeps the
// hash stable across runs, platforms of the same endianness, and thread
// counts; it is a cache key, not a cryptographic digest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

class CsrMatrix;

/// Incremental 64-bit FNV-1a hasher. add() calls chain; insertion order is
/// part of the hash, so producers must feed fields in one fixed order.
class StructuralHasher {
 public:
  StructuralHasher& add(std::uint64_t v) {
    for (int s = 0; s < 64; s += 8) byte(static_cast<unsigned char>(v >> s));
    return *this;
  }
  /// Exact bit pattern of the double (not its rounded value).
  StructuralHasher& add(double v);
  /// Length-prefixed so "ab"+"c" and "a"+"bc" hash differently.
  StructuralHasher& add(std::string_view s);
  StructuralHasher& add(const std::vector<double>& v);
  StructuralHasher& add(const std::vector<std::size_t>& v);

  std::uint64_t value() const { return state_; }

 private:
  void byte(unsigned char b) {
    state_ = (state_ ^ b) * 1099511628211ull;  // FNV-1a prime
  }
  std::uint64_t state_ = 1469598103934665603ull;  // FNV offset basis
};

/// Hash of a CSR matrix: dimensions, structure and exact value bits.
std::uint64_t hash_csr(const CsrMatrix& a);

}  // namespace aeropack::numeric
